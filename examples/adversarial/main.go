// Command adversarial starts from the hardest initial shape for opaque
// robots (all on one straight line, where most robots can see only their
// immediate neighbours) and runs under a hostile scheduler. The example
// reports how long each phase of the algorithm took under every adversary.
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	fatgather "github.com/fatgather/fatgather"
)

func main() {
	const n = 5
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "adversary\tgathered\tevents\tto full visibility\tto gathered\tcollisions")
	for _, adv := range fatgather.Adversaries() {
		res, err := fatgather.Run(fatgather.Options{
			N:         n,
			Workload:  fatgather.WorkloadCollinear,
			Adversary: adv,
			Seed:      7,
			MaxEvents: 150000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%d\t%d\n",
			adv, res.Gathered, res.Events, res.EventsToFullVisibility, res.EventsToGathered, res.Collisions)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
