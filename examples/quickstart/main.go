// Command quickstart gathers a handful of fat robots and prints what
// happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fatgather "github.com/fatgather/fatgather"
)

func main() {
	res, err := fatgather.Run(fatgather.Options{
		N:        6,
		Workload: fatgather.WorkloadClustered,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gathered: %v (all robots terminated: %v)\n", res.Gathered, res.AllTerminated)
	fmt.Printf("events: %d, cycles: %d, total distance: %.1f\n", res.Events, res.Cycles, res.DistanceTraveled)
	fmt.Println("final configuration:")
	fmt.Print(fatgather.RenderASCII(res.Final, 64, 20))
}
