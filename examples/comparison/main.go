// Command comparison runs the paper's algorithm head to head with the
// baseline algorithms (centroid gatherer, small-n gatherer, transparent-robot
// gatherer) on the same workloads and reports which of them actually reach a
// connected, fully visible configuration.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	fatgather "github.com/fatgather/fatgather"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tn\tgathered\tevents\tdistance")
	for _, alg := range fatgather.Algorithms() {
		for _, n := range []int{3, 5, 8} {
			res, err := fatgather.Run(fatgather.Options{
				N:         n,
				Workload:  fatgather.WorkloadClustered,
				Algorithm: alg,
				Seed:      2,
				MaxEvents: 80000,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%d\t%v\t%d\t%.1f\n", alg, n, res.Gathered, res.Events, res.DistanceTraveled)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nExpected shape: only agm-gathering keeps gathering as n grows beyond 4;")
	fmt.Println("the baselines either lose visibility (gravity), deadlock into separate")
	fmt.Println("clumps (smalln), or rely on assumptions the opaque-robot model violates")
	fmt.Println("(transparent).")
}
