// Command visualize runs a gathering and writes SVG snapshots of the
// initial and final configurations, plus reproductions of the paper's
// geometric figures, into ./out (created if needed).
//
//	go run ./examples/visualize
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	fatgather "github.com/fatgather/fatgather"
	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/viz"
)

func main() {
	outDir := "out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name, contents string) {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}

	initial, err := fatgather.GenerateWorkload(fatgather.WorkloadNestedHulls, 10, 4)
	if err != nil {
		log.Fatal(err)
	}
	write("initial.svg", fatgather.RenderSVG(initial))

	res, err := fatgather.Run(fatgather.Options{Initial: initial, N: len(initial), Seed: 4, MaxEvents: 300000})
	if err != nil {
		log.Fatal(err)
	}
	write("final.svg", fatgather.RenderSVG(res.Final))
	fmt.Printf("gathered: %v after %d events\n", res.Gathered, res.Events)

	// Paper figure reproductions.
	write("fig1-state-cycle.svg", viz.FigureStateCycle())
	write("fig2-move-to-point.svg", viz.FigureMoveToPoint(geom.V(0, 0), geom.V(8, 0), 8))
	hull := config.Geometric{geom.V(0, 0), geom.V(12, 0), geom.V(14, 9), geom.V(6, 14), geom.V(-2, 9)}
	write("fig3-find-points.svg", viz.FigureFindPoints(hull, 8))
	write("fig5-straight-line.svg", viz.FigureStraightLine(geom.V(0, 0), geom.V(5, 0.08), geom.V(10, 0), 8))
}
