// Package fatgather is the public API of the fat-robot gathering library: a
// from-scratch Go implementation of "A Distributed Algorithm for Gathering
// Many Fat Mobile Robots in the Plane" (Agathangelou, Georgiou, Mavronicolas,
// PODC 2013), together with the asynchronous Look-Compute-Move simulator,
// adversary models, workload generators and baselines needed to evaluate it.
//
// The typical entry point is Run:
//
//	result, err := fatgather.Run(fatgather.Options{
//		N:        8,
//		Workload: fatgather.WorkloadClustered,
//		Seed:     1,
//	})
//
// which places 8 robots, runs the paper's distributed algorithm under an
// asynchronous adversary, and reports whether (and how fast) the robots
// gathered into a connected, fully visible configuration.
package fatgather
