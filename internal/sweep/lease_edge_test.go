package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCheckLeaseTTL pins the validation boundary every backend shares: a TTL
// must be positive (a zero TTL would mint an instantly-expired lease that any
// peer reclaims immediately, silently disabling mutual exclusion) and must
// stay inside MaxLeaseHorizon (beyond it, peers treat the lease as the debris
// of a skewed clock and reclaim it anyway).
func TestCheckLeaseTTL(t *testing.T) {
	for _, ttl := range []time.Duration{time.Millisecond, time.Minute, MaxLeaseHorizon} {
		if err := CheckLeaseTTL(ttl); err != nil {
			t.Errorf("CheckLeaseTTL(%v) = %v, want nil", ttl, err)
		}
	}
	for _, ttl := range []time.Duration{0, -time.Second, MaxLeaseHorizon + time.Nanosecond, 48 * time.Hour} {
		if err := CheckLeaseTTL(ttl); err == nil {
			t.Errorf("CheckLeaseTTL(%v) = nil, want error", ttl)
		}
	}
}

func edgeManager(t *testing.T, owner string, ttl time.Duration) *leaseManager {
	t.Helper()
	m := newLeaseManager(t.TempDir(), Shard{Owner: owner, TTL: ttl})
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestClaimRejectsBadTTL: the manager refuses to mint a lease it could not
// defend — zero, negative and beyond-horizon TTLs all fail the claim itself
// rather than producing a lease peers would instantly reclaim.
func TestClaimRejectsBadTTL(t *testing.T) {
	for _, ttl := range []time.Duration{0, -time.Second, MaxLeaseHorizon + time.Hour} {
		m := edgeManager(t, "w1", ttl)
		if l, _, err := m.claim("g"); err == nil || l != nil {
			t.Errorf("claim with ttl=%v = (%v, %v), want rejection", ttl, l, err)
		}
		if _, err := os.Stat(m.pathFor("g")); !os.IsNotExist(err) {
			t.Errorf("claim with ttl=%v left a lease file behind", ttl)
		}
	}
}

// TestRenewRejectsBadTTL: renewal re-validates the TTL (a worker whose config
// mutated mid-run must not extend a lease beyond the horizon either).
func TestRenewRejectsBadTTL(t *testing.T) {
	m := edgeManager(t, "w1", time.Minute)
	l, _, err := m.claim("g")
	if err != nil || l == nil {
		t.Fatalf("claim: (%v, %v)", l, err)
	}
	for _, ttl := range []time.Duration{0, -time.Minute, MaxLeaseHorizon + time.Hour} {
		l.m.ttl = ttl
		if ok, err := l.renew(); err == nil || ok {
			t.Errorf("renew with ttl=%v = (%v, %v), want rejection", ttl, ok, err)
		}
	}
}

func writeLeaseJSON(t *testing.T, m *leaseManager, group string, rec leaseRecord) {
	t.Helper()
	blob, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(m.pathFor(group), append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestClaimReclaimsClockSkewedLease: a lease whose expiry sits further out
// than MaxLeaseHorizon can only come from a peer with a broken clock; honoring
// it would park the group forever. The claim must treat it like an expired
// lease: move it aside and take over.
func TestClaimReclaimsClockSkewedLease(t *testing.T) {
	m := edgeManager(t, "w2", time.Minute)
	writeLeaseJSON(t, m, "g", leaseRecord{
		Owner:   "skewed-peer",
		Group:   "g",
		Expires: time.Now().Add(1000 * time.Hour).UnixNano(),
	})
	l, reclaimed, err := m.claim("g")
	if err != nil || l == nil || !reclaimed {
		t.Fatalf("claim over skewed lease = (%v, %v, %v), want reclaim", l, reclaimed, err)
	}
	rec, err := readLease(l.path)
	if err != nil || rec.Owner != "w2" {
		t.Fatalf("lease after reclaim = (%+v, %v), want owner w2", rec, err)
	}
}

// TestClaimReclaimsCorruptLease walks the torn-write taxonomy: a truncated
// JSON prefix, an empty file, a record with no owner, and a negative expiry
// are all the debris of a dead or broken writer — each must be reclaimed, not
// trusted and not fatal.
func TestClaimReclaimsCorruptLease(t *testing.T) {
	cases := []struct {
		name string
		blob string
	}{
		{"torn", `{"owner":"dead","gro`},
		{"empty", ""},
		{"ownerless", `{"group":"g","expires_unix_ns":9999999999999999999}`},
		{"negative-expiry", `{"owner":"dead","group":"g","expires_unix_ns":-1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := edgeManager(t, "w2", time.Minute)
			if err := os.WriteFile(m.pathFor("g"), []byte(tc.blob), 0o644); err != nil {
				t.Fatal(err)
			}
			l, reclaimed, err := m.claim("g")
			if err != nil || l == nil || !reclaimed {
				t.Fatalf("claim over %s lease = (%v, %v, %v), want reclaim", tc.name, l, reclaimed, err)
			}
			if rec, err := readLease(l.path); err != nil || rec.Owner != "w2" {
				t.Fatalf("lease after reclaim = (%+v, %v), want owner w2", rec, err)
			}
		})
	}
}

// TestReadLeaseRejectsGarbage: readLease is the trust boundary for lease
// files; anything that does not parse into a JSON object errors rather than
// yielding a zero record a caller might mistake for expired-and-reclaimable.
func TestReadLeaseRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "lease.json")
	for _, blob := range []string{`{"owner":`, "not json at all", ""} {
		if err := os.WriteFile(p, []byte(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		if rec, err := readLease(p); err == nil {
			t.Errorf("readLease(%q) = (%+v, nil), want error", blob, rec)
		}
	}
	if _, err := readLease(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("readLease on a missing file = nil error")
	}
}

// TestFSBackendTryClaimTTLValidation: the backend surface rejects bad TTLs
// with the same message the manager uses, so a misconfigured worker fails
// loudly on its first claim instead of sweeping without mutual exclusion.
func TestFSBackendTryClaimTTLValidation(t *testing.T) {
	b, err := NewFSBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.TryClaim("g", "w1", 0); err == nil || !strings.Contains(err.Error(), "must be positive") {
		t.Fatalf("TryClaim ttl=0 error = %v, want ttl-must-be-positive", err)
	}
	if _, err := b.TryClaim("g", "w1", MaxLeaseHorizon+time.Hour); err == nil || !strings.Contains(err.Error(), "lease horizon") {
		t.Fatalf("TryClaim beyond horizon error = %v, want horizon rejection", err)
	}
	if ok, err := b.RenewLease("g", "w1", -time.Second); err == nil || ok {
		t.Fatalf("RenewLease ttl<0 = (%v, %v), want rejection", ok, err)
	}
}
