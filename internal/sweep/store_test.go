package sweep

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/workload"
)

// smallCells is a fast heterogeneous batch for store tests.
func smallCells(seeds int) []engine.Cell {
	return engine.Batch{
		Workloads:   []workload.Kind{workload.KindClustered, workload.KindRing},
		Ns:          []int{3, 4},
		Adversaries: []string{"random-async", "stop-happy"},
		Seeds:       seeds,
		MaxEvents:   400,
	}.Cells()
}

// sameResult compares two cell results through the store's own JSON encoding,
// which is exactly the fidelity the resume contract promises (errors compare
// by message).
func sameResult(t *testing.T, label string, a, b engine.CellResult) {
	t.Helper()
	if (a.Err == nil) != (b.Err == nil) {
		t.Fatalf("%s: err %v vs %v", label, a.Err, b.Err)
	}
	if a.Err != nil && a.Err.Error() != b.Err.Error() {
		t.Fatalf("%s: err %q vs %q", label, a.Err, b.Err)
	}
	ja, err := json.Marshal(toResultRecord(a.Result))
	if err != nil {
		t.Fatalf("%s: marshal: %v", label, err)
	}
	jb, err := json.Marshal(toResultRecord(b.Result))
	if err != nil {
		t.Fatalf("%s: marshal: %v", label, err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("%s: results differ:\n%s\nvs\n%s", label, ja, jb)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	cells := smallCells(1)
	results := engine.Run(cells, engine.Options{})

	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if err := st.Append(cells[i].Key(), r); err != nil {
			t.Fatal(err)
		}
	}
	if st.Done() != len(cells) {
		t.Fatalf("Done = %d, want %d", st.Done(), len(cells))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(re.Warnings()) != 0 {
		t.Fatalf("clean store produced warnings: %v", re.Warnings())
	}
	if re.Done() != len(cells) {
		t.Fatalf("reloaded Done = %d, want %d", re.Done(), len(cells))
	}
	for i, c := range cells {
		got, ok := re.Lookup(c.Key())
		if !ok {
			t.Fatalf("cell %d [%s] missing after reload", i, c.Key())
		}
		sameResult(t, c.Key(),
			engine.CellResult{Result: got.Result, Err: got.Err}, results[i])
		if got.Elapsed != results[i].Elapsed {
			t.Fatalf("cell %d elapsed %v vs %v", i, got.Elapsed, results[i].Elapsed)
		}
	}
}

func TestStoreSkipsCorruptLines(t *testing.T) {
	cells := smallCells(1)
	results := engine.Run(cells[:3], engine.Options{})
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if err := st.Append(cells[i].Key(), r); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Corrupt the middle line.
	data, err := os.ReadFile(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = "{\"schema\":1,\"key\":garbage\n"
	if err := os.WriteFile(st.Path(), []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Done() != 2 {
		t.Fatalf("Done = %d after corruption, want 2", re.Done())
	}
	warns := re.Warnings()
	if len(warns) != 1 || !strings.Contains(warns[0], "corrupt") {
		t.Fatalf("expected one corrupt-line warning, got %v", warns)
	}
	// The skipped cell is simply missing, so a resume re-runs it.
	if _, ok := re.Lookup(cells[1].Key()); ok {
		t.Fatal("corrupt record should not resolve")
	}
	// The file was compacted: reopening is clean.
	re.Close()
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if len(again.Warnings()) != 0 || again.Done() != 2 {
		t.Fatalf("compacted store not clean: %d done, warnings %v", again.Done(), again.Warnings())
	}
}

func TestStoreTruncatedTrailingLine(t *testing.T) {
	cells := smallCells(1)
	results := engine.Run(cells[:2], engine.Options{})
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if err := st.Append(cells[i].Key(), r); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Simulate a kill mid-write: cut the file in the middle of the last line.
	data, err := os.ReadFile(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.Path(), data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Done() != 1 {
		t.Fatalf("Done = %d after truncation, want 1", re.Done())
	}
	if len(re.Warnings()) == 0 {
		t.Fatal("expected a warning for the truncated line")
	}
	// Appending after compaction must yield a well-formed file.
	if err := re.Append(cells[1].Key(), results[1]); err != nil {
		t.Fatal(err)
	}
	re.Close()
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if len(again.Warnings()) != 0 || again.Done() != 2 {
		t.Fatalf("store not clean after truncate+append: %d done, warnings %v", again.Done(), again.Warnings())
	}
}

func TestStoreSchemaMismatchForcesCleanRerun(t *testing.T) {
	cells := smallCells(1)
	results := engine.Run(cells[:2], engine.Options{})
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if err := st.Append(cells[i].Key(), r); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Rewrite the first record as if produced by an older engine.
	data, err := os.ReadFile(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), engine.Version, "fatgather-engine/0", 1)
	if mutated == string(data) {
		t.Fatal("test setup: engine version not found in store file")
	}
	if err := os.WriteFile(st.Path(), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Done() != 0 {
		t.Fatalf("Done = %d after version mismatch, want 0 (clean re-run)", re.Done())
	}
	warns := re.Warnings()
	if len(warns) == 0 || !strings.Contains(warns[0], "mismatch") {
		t.Fatalf("expected mismatch warning, got %v", warns)
	}
	// The stale file was discarded on disk too.
	data, err = os.ReadFile(re.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("stale store file not discarded: %d bytes remain", len(data))
	}
}

func TestStoreReset(t *testing.T) {
	cells := smallCells(1)
	results := engine.Run(cells[:1], engine.Options{})
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(cells[0].Key(), results[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Reset(); err != nil {
		t.Fatal(err)
	}
	if st.Done() != 0 {
		t.Fatalf("Done = %d after Reset, want 0", st.Done())
	}
	if _, ok := st.Lookup(cells[0].Key()); ok {
		t.Fatal("Lookup succeeded after Reset")
	}
	if err := st.Append(cells[0].Key(), results[0]); err != nil {
		t.Fatal(err)
	}
	if st.Done() != 1 {
		t.Fatalf("Done = %d after re-append, want 1", st.Done())
	}
}

func TestStoreErroredCellRoundTrip(t *testing.T) {
	bad := engine.Cell{Workload: "bogus", N: 3, MaxEvents: 10}
	res := engine.Run([]engine.Cell{bad}, engine.Options{})
	if res[0].Err == nil {
		t.Fatal("expected an error result")
	}
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(bad.Key(), res[0]); err != nil {
		t.Fatal(err)
	}
	st.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok := re.Lookup(bad.Key())
	if !ok {
		t.Fatal("errored cell not stored")
	}
	if got.Err == nil || got.Err.Error() != res[0].Err.Error() {
		t.Fatalf("error round-trip: %v vs %v", got.Err, res[0].Err)
	}
}

// TestStoreReloadIncremental pins Reload's tail-reading contract: records a
// peer appends are merged without re-parsing the whole file, a torn trailing
// line is left for the next Reload (and consumed once completed), and a
// compaction underneath resets the scan.
func TestStoreReloadIncremental(t *testing.T) {
	cells := smallCells(1)
	results := engine.Run(cells[:4], engine.Options{})
	dir := t.TempDir()

	mine, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mine.Close()
	peer, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	if err := peer.Append(cells[0].Key(), results[0]); err != nil {
		t.Fatal(err)
	}
	if fresh, err := mine.Reload(); err != nil || fresh != 1 {
		t.Fatalf("first Reload: fresh=%d err=%v, want 1", fresh, err)
	}
	if fresh, err := mine.Reload(); err != nil || fresh != 0 {
		t.Fatalf("idempotent Reload: fresh=%d err=%v, want 0", fresh, err)
	}

	// A peer's append in flight: write only half of the next record's line.
	full, err := os.ReadFile(mine.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.Append(cells[1].Key(), results[1]); err != nil {
		t.Fatal(err)
	}
	grown, err := os.ReadFile(mine.Path())
	if err != nil {
		t.Fatal(err)
	}
	line := grown[len(full):]
	if err := os.WriteFile(mine.Path(), append(full, line[:len(line)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if fresh, err := mine.Reload(); err != nil || fresh != 0 {
		t.Fatalf("torn-tail Reload: fresh=%d err=%v, want 0 (line incomplete)", fresh, err)
	}
	// The append completes: the record is consumed exactly once.
	if err := os.WriteFile(mine.Path(), grown, 0o644); err != nil {
		t.Fatal(err)
	}
	if fresh, err := mine.Reload(); err != nil || fresh != 1 {
		t.Fatalf("completed-tail Reload: fresh=%d err=%v, want 1", fresh, err)
	}
	if _, ok := mine.Lookup(cells[1].Key()); !ok {
		t.Fatal("completed record not merged")
	}

	// A shrink (exclusive compaction/reset underneath) triggers a rescan.
	if err := os.WriteFile(mine.Path(), full, 0o644); err != nil {
		t.Fatal(err)
	}
	if fresh, err := mine.Reload(); err != nil || fresh != 0 {
		t.Fatalf("post-shrink Reload: fresh=%d err=%v, want 0 (all known)", fresh, err)
	}
}
