package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/workload"
)

// adaptiveShardCells: six cell groups with two initial replicas each — enough
// groups that a two-worker fleet genuinely splits the work.
func adaptiveShardCells() []engine.Cell {
	return engine.Batch{
		Workloads: []workload.Kind{workload.KindClustered, workload.KindRing},
		Ns:        []int{3, 4, 5},
		Seeds:     2,
		MaxEvents: 300,
	}.Cells()
}

// tightAdaptive is an adaptive config that forces every group to grow beyond
// its initial replicas (an unreachable target with a small cap), so the
// cross-worker trajectory really exercises the extra-replica protocol.
func tightAdaptive() Adaptive {
	return Adaptive{TargetCI: 1e-12, MaxSeeds: 4}
}

func sameAdaptiveRun(t *testing.T, label string, gotRes, wantRes []engine.CellResult, gotInfos, wantInfos []GroupSeeds) {
	t.Helper()
	if len(gotRes) != len(wantRes) {
		t.Fatalf("%s: %d results, want %d", label, len(gotRes), len(wantRes))
	}
	for i := range wantRes {
		if gotRes[i].Index != i {
			t.Fatalf("%s: result %d has index %d", label, i, gotRes[i].Index)
		}
		if gotRes[i].Cell.Key() != wantRes[i].Cell.Key() {
			t.Fatalf("%s: result %d is cell %s, want %s (trajectory order diverged)",
				label, i, gotRes[i].Cell.Key(), wantRes[i].Cell.Key())
		}
		sameResult(t, fmt.Sprintf("%s result %d", label, i), gotRes[i], wantRes[i])
	}
	if !reflect.DeepEqual(gotInfos, wantInfos) {
		t.Fatalf("%s: group seed schedules diverged:\n%+v\nvs\n%+v", label, gotInfos, wantInfos)
	}
}

// TestRunAdaptiveShardedTwoConcurrentWorkers is the acceptance test for the
// cross-worker adaptive protocol: two workers drain one adaptive sweep
// concurrently through leases and the shared store, and each returns the
// complete result set — same cells, same per-group seed counts, bit-identical
// results, in the exact order the single-process scheduler produces — while
// no seed replica is executed twice fleet-wide.
func TestRunAdaptiveShardedTwoConcurrentWorkers(t *testing.T) {
	cells := adaptiveShardCells()
	ad := tightAdaptive()
	wantRes, wantInfos, _ := RunAdaptive(cells, Options{}, ad)

	dir := t.TempDir()
	const workers = 2
	outs := make([][]engine.CellResult, workers)
	infos := make([][]GroupSeeds, workers)
	stats := make([]ShardStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := OpenShared(dir)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer st.Close()
			outs[w], infos[w], stats[w] = RunAdaptiveSharded(cells, Options{Store: st},
				ad, fastShard(fmt.Sprintf("w%d", w)))
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	executed := 0
	for w := 0; w < workers; w++ {
		sameAdaptiveRun(t, fmt.Sprintf("worker %d", w), outs[w], wantRes, infos[w], wantInfos)
		executed += stats[w].Executed
	}
	// No duplicated seeds: the fleet executed each replica of the adaptive
	// trajectory exactly once, and the store holds each record exactly once.
	if executed != len(wantRes) {
		t.Fatalf("fleet executed %d replicas, want exactly %d", executed, len(wantRes))
	}
	data, err := os.ReadFile(filepath.Join(dir, resultsFile))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != len(wantRes) {
		t.Fatalf("store holds %d records, want %d", got, len(wantRes))
	}
	// Every group's adaptive-state record was published and closed.
	pub := newAdaptivePublisher(dir, "check")
	for _, info := range wantInfos {
		st, ok := pub.read(info.Key, engine.Version)
		if !ok {
			t.Fatalf("group %s: adaptive-state record missing or unreadable", info.Key)
		}
		if !st.Closed || st.Seeds != info.Seeds {
			t.Fatalf("group %s: state record %+v, want closed with %d seeds", info.Key, st, info.Seeds)
		}
	}
	// All leases released.
	entries, err := os.ReadDir(filepath.Join(dir, leasesDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d lease files left behind", len(entries))
	}
}

// TestRunAdaptiveShardedKillMidAdaptive simulates a worker killed in the
// middle of an adaptive sweep: the store holds a prefix of the trajectory, an
// expired lease guards an unfinished group, and the dead worker's open
// adaptive-state record is still published. A surviving worker must reclaim
// the lease, re-evaluate the CI against the merged history, finish the
// remaining seed blocks and produce results identical to an uninterrupted
// single-process adaptive run.
func TestRunAdaptiveShardedKillMidAdaptive(t *testing.T) {
	cells := adaptiveShardCells()
	ad := tightAdaptive()
	wantRes, wantInfos, _ := RunAdaptive(cells, Options{}, ad)

	dir := t.TempDir()
	st, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The dead worker checkpointed roughly the first half of the trajectory
	// (a prefix in canonical order: whole rounds land before later rounds).
	k := len(wantRes) / 2
	for i := 0; i < k; i++ {
		if err := st.Append(wantRes[i].Cell.Key(), wantRes[i]); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	// ...died holding the lease on the last cell's group, with an open
	// (non-closed) state record published for it.
	victim := cells[len(cells)-1]
	writeStaleLease(t, dir, victim, "dead-worker")
	deadPub := newAdaptivePublisher(dir, "dead-worker")
	if err := deadPub.publish(adaptiveState{
		Version: AdaptiveStateVersion, Engine: engine.Version,
		Group: groupKeyOf(victim), Seeds: 2, HalfWidth: 12345, Closed: false,
	}); err != nil {
		t.Fatal(err)
	}

	re, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, infos, stats := RunAdaptiveSharded(cells, Options{Store: re}, ad, fastShard("survivor"))
	if stats.LeasesReclaimed != 1 {
		t.Fatalf("LeasesReclaimed = %d, want 1", stats.LeasesReclaimed)
	}
	if stats.Executed != len(wantRes)-k {
		t.Fatalf("Executed = %d, want %d (the dead worker's unfinished replicas)", stats.Executed, len(wantRes)-k)
	}
	if stats.Restored != k {
		t.Fatalf("Restored = %d, want %d", stats.Restored, k)
	}
	sameAdaptiveRun(t, "survivor", res, wantRes, infos, wantInfos)
	// The survivor's closed state record replaced the dead worker's open one.
	got, ok := newAdaptivePublisher(dir, "check").read(groupKeyOf(victim), engine.Version)
	if !ok || !got.Closed {
		t.Fatalf("victim group state record not closed after recovery: %+v (ok=%v)", got, ok)
	}
}

// TestRunAdaptiveShardedResumesStoreWithoutStateRecords is the regression
// test for old stores: a sweep directory written by the single-process
// adaptive scheduler (no adaptive/ directory, no leases) must resume cleanly
// under the sharded runner — the full trajectory is recomputed from the
// result records alone, nothing re-runs, and the output is identical.
func TestRunAdaptiveShardedResumesStoreWithoutStateRecords(t *testing.T) {
	cells := adaptiveShardCells()
	ad := tightAdaptive()

	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, wantInfos, _ := RunAdaptive(cells, Options{Store: st}, ad)
	st.Close()
	if _, err := os.Stat(filepath.Join(dir, adaptiveDir)); !os.IsNotExist(err) {
		t.Fatalf("single-process adaptive run published state records (err=%v); the old-store regression test needs a store without them", err)
	}

	re, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, infos, stats := RunAdaptiveSharded(cells, Options{Store: re}, ad, fastShard("late-joiner"))
	if stats.Executed != 0 {
		t.Fatalf("resuming an old adaptive store executed %d replicas, want 0", stats.Executed)
	}
	if stats.Restored != len(wantRes) {
		t.Fatalf("Restored = %d, want %d", stats.Restored, len(wantRes))
	}
	sameAdaptiveRun(t, "late joiner", res, wantRes, infos, wantInfos)
}

// emptyShardIndex finds a static shard index that owns none of the cell
// groups (with more shards than groups one always exists), so tests can pin
// the behavior of a worker whose own partition is empty.
func emptyShardIndex(t *testing.T, cells []engine.Cell, shards int) int {
	t.Helper()
	owned := make(map[int]bool)
	for _, c := range cells {
		owned[int(shardHash(groupKeyOf(c))%uint64(shards))] = true
	}
	for idx := 0; idx < shards; idx++ {
		if !owned[idx] {
			return idx
		}
	}
	t.Fatalf("no empty shard index among %d shards", shards)
	return -1
}

// TestRunShardedStealsTailGroups pins lease-aware work stealing on the fixed
// grid: a worker whose static share is empty — the extreme "drained
// partition" — must, with Steal set, claim and complete every tail group
// instead of waiting forever, and the stolen results are byte-identical to
// the unsharded run.
func TestRunShardedStealsTailGroups(t *testing.T) {
	cells := smallCells(1)
	ref := engine.Run(cells, engine.Options{})

	shards := 16 // more shards than groups: an empty share must exist
	idx := emptyShardIndex(t, cells, shards)

	dir := t.TempDir()
	st, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh := fastShard("thief")
	sh.Shards, sh.Index, sh.Steal = shards, idx, true
	res, stats := RunSharded(cells, Options{Store: st}, sh)
	if stats.GroupsStolen == 0 {
		t.Fatal("empty-share worker stole no groups")
	}
	if stats.GroupsStolen != stats.GroupsClaimed {
		t.Fatalf("GroupsStolen = %d, GroupsClaimed = %d; every claimed group lay outside the share", stats.GroupsStolen, stats.GroupsClaimed)
	}
	if stats.Executed != len(cells) {
		t.Fatalf("Executed = %d, want %d", stats.Executed, len(cells))
	}
	for i := range cells {
		sameResult(t, fmt.Sprintf("cell %d", i), res[i], ref[i])
	}
}

// TestRunAdaptiveShardedStealsTailGroups is the same drained-partition
// stealing contract on the adaptive path: the thief completes every foreign
// group's full adaptive trajectory, byte-identical to the unsharded adaptive
// run.
func TestRunAdaptiveShardedStealsTailGroups(t *testing.T) {
	cells := adaptiveShardCells()
	ad := tightAdaptive()
	wantRes, wantInfos, _ := RunAdaptive(cells, Options{}, ad)

	shards := 32
	idx := emptyShardIndex(t, cells, shards)

	dir := t.TempDir()
	st, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh := fastShard("thief")
	sh.Shards, sh.Index, sh.Steal = shards, idx, true
	res, infos, stats := RunAdaptiveSharded(cells, Options{Store: st}, ad, sh)
	if stats.GroupsStolen == 0 {
		t.Fatal("empty-share adaptive worker stole no groups")
	}
	if stats.Executed != len(wantRes) {
		t.Fatalf("Executed = %d, want %d", stats.Executed, len(wantRes))
	}
	sameAdaptiveRun(t, "thief", res, wantRes, infos, wantInfos)
}

// TestRunAdaptiveShardedStaticPartition pins static adaptive mode (no owner,
// no shared anything): each shard runs the full adaptive trajectory of
// exactly its own groups, reports foreign input cells as not claimed, and the
// two shards' group schedules union to the unsharded schedule.
func TestRunAdaptiveShardedStaticPartition(t *testing.T) {
	cells := adaptiveShardCells()
	ad := tightAdaptive()
	_, wantInfos, _ := RunAdaptive(cells, Options{}, ad)
	wantByKey := make(map[string]GroupSeeds)
	for _, info := range wantInfos {
		wantByKey[info.Key] = info
	}

	seen := make(map[string]int)
	for idx := 0; idx < 2; idx++ {
		res, infos, stats := RunAdaptiveSharded(cells, Options{}, ad, Shard{Shards: 2, Index: idx})
		if stats.GroupsClaimed != len(infos) {
			t.Fatalf("shard %d claimed %d groups but reported %d schedules", idx, stats.GroupsClaimed, len(infos))
		}
		for _, info := range infos {
			seen[info.Key]++
			if want := wantByKey[info.Key]; !reflect.DeepEqual(info, want) {
				t.Fatalf("shard %d group %s schedule %+v, want %+v", idx, info.Key, info, want)
			}
		}
		kept := DropNotClaimed(append([]engine.CellResult(nil), res...))
		wantKept := 0
		for _, info := range infos {
			wantKept += info.Seeds
		}
		if len(kept) != wantKept {
			t.Fatalf("shard %d kept %d results, want %d (its groups' full trajectories)", idx, len(kept), wantKept)
		}
	}
	if len(seen) != len(wantInfos) {
		t.Fatalf("shards covered %d groups, want %d", len(seen), len(wantInfos))
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("group %s covered by %d shards, want exactly 1", key, n)
		}
	}
}

// TestAdaptiveStatePublisherRoundTrip pins the record format: publish, read
// back (including the +Inf half-width of an all-failed group), reject torn
// and version-mismatched records.
func TestAdaptiveStatePublisherRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pub := newAdaptivePublisher(dir, "w1")
	st := adaptiveState{
		Version: AdaptiveStateVersion, Engine: engine.Version,
		Group: "g1", Seeds: 7, HalfWidth: 123.25, Closed: true,
	}
	if err := pub.publish(st); err != nil {
		t.Fatal(err)
	}
	got, ok := pub.read("g1", engine.Version)
	if !ok {
		t.Fatal("published record not readable")
	}
	if got.Seeds != 7 || !got.Closed || got.HalfWidth != 123.25 || got.Owner != "w1" {
		t.Fatalf("round trip mangled the record: %+v", got)
	}

	// +Inf half-width survives the JSON round trip.
	inf := st
	inf.Group = "g2"
	inf.HalfWidth = infHalfWidth()
	if err := pub.publish(inf); err != nil {
		t.Fatal(err)
	}
	if got, ok := pub.read("g2", engine.Version); !ok || got.HalfWidth != infHalfWidth() {
		t.Fatalf("infinite half-width lost: %+v (ok=%v)", got, ok)
	}

	// An update replaces the record atomically.
	st.Seeds = 9
	if err := pub.publish(st); err != nil {
		t.Fatal(err)
	}
	if got, _ := pub.read("g1", engine.Version); got.Seeds != 9 {
		t.Fatalf("update not visible: %+v", got)
	}

	// Torn record: ignored, not fatal.
	if err := os.WriteFile(pub.pathFor("g3"), []byte(`{"version":1,"gro`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := pub.read("g3", engine.Version); ok {
		t.Fatal("torn record read as valid")
	}
	// Engine-version mismatch: ignored.
	if _, ok := pub.read("g1", "other-engine/9"); ok {
		t.Fatal("engine-mismatched record read as valid")
	}
}

func infHalfWidth() float64 {
	var zero float64
	return 1 / zero
}

// TestRunAdaptiveShardedSoloMatchesRunAdaptive pins the degenerate fleet: one
// cooperative worker alone walks the identical trajectory (and leaves a
// store a plain adaptive run can resume from, and vice versa).
func TestRunAdaptiveShardedSoloMatchesRunAdaptive(t *testing.T) {
	cells := adaptiveShardCells()
	ad := Adaptive{TargetCI: 50, MaxSeeds: 6}
	wantRes, wantInfos, _ := RunAdaptive(cells, Options{}, ad)

	dir := t.TempDir()
	st, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, infos, stats := RunAdaptiveSharded(cells, Options{Store: st}, ad, fastShard("solo"))
	st.Close()
	sameAdaptiveRun(t, "solo", res, wantRes, infos, wantInfos)
	if stats.Executed != len(wantRes) {
		t.Fatalf("solo worker executed %d, want %d", stats.Executed, len(wantRes))
	}

	// The single-process scheduler resumes from the sharded store untouched.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res2, infos2, stats2 := RunAdaptive(cells, Options{Store: re}, ad)
	if stats2.Executed != 0 {
		t.Fatalf("plain adaptive resume executed %d replicas over a sharded store, want 0", stats2.Executed)
	}
	sameAdaptiveRun(t, "plain resume", res2, wantRes, infos2, wantInfos)
}

// TestRunAdaptiveShardedOnResultStreamsInOrder pins the streaming contract:
// OnResult fires once per replica, in canonical index order, after the drain.
func TestRunAdaptiveShardedOnResultStreamsInOrder(t *testing.T) {
	cells := adaptiveShardCells()
	ad := tightAdaptive()
	dir := t.TempDir()
	st, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var seen []int
	res, _, _ := RunAdaptiveSharded(cells, Options{Store: st, OnResult: func(r engine.CellResult) {
		seen = append(seen, r.Index)
	}}, ad, fastShard("solo"))
	if len(seen) != len(res) {
		t.Fatalf("OnResult fired %d times, want %d", len(seen), len(res))
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("OnResult order broken at %d: got index %d", i, idx)
		}
	}
}

// TestRunAdaptiveShardedSurvivesAppendFailures pins the broken-disk
// degradation: when every checkpoint append fails (here: a closed store, so
// Lookup works but Append errors), the worker must still drive every group's
// trajectory to closure from its in-memory results — append failures mean
// re-runs on a later resume, never a stalled sweep — and report the failures
// in AppendErrs.
func TestRunAdaptiveShardedSurvivesAppendFailures(t *testing.T) {
	cells := adaptiveShardCells()
	ad := tightAdaptive()
	wantRes, wantInfos, _ := RunAdaptive(cells, Options{}, ad)

	dir := t.TempDir()
	st, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Close() // Lookup keeps working; every Append now fails

	res, infos, stats := RunAdaptiveSharded(cells, Options{Store: st}, ad, fastShard("w"))
	if stats.AppendErrs != len(wantRes) {
		t.Fatalf("AppendErrs = %d, want %d (no replica could be checkpointed)", stats.AppendErrs, len(wantRes))
	}
	if stats.Executed != len(wantRes) {
		t.Fatalf("Executed = %d, want %d", stats.Executed, len(wantRes))
	}
	sameAdaptiveRun(t, "broken disk", res, wantRes, infos, wantInfos)
}

// TestRunAdaptiveShardedWaitsForFreshForeignLease pins lease respect on the
// adaptive path: a group freshly leased by a live peer is not re-run; the
// worker polls, merges the peer's records once they land, and still returns
// the full trajectory.
func TestRunAdaptiveShardedWaitsForFreshForeignLease(t *testing.T) {
	cells := adaptiveShardCells()
	ad := tightAdaptive()
	wantRes, wantInfos, _ := RunAdaptive(cells, Options{}, ad)

	dir := t.TempDir()
	peerGroup := groupKeyOf(cells[0])
	m := newLeaseManager(dir, Shard{Owner: "peer", TTL: time.Minute})
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	l, _, err := m.claim(peerGroup)
	if err != nil || l == nil {
		t.Fatalf("peer claim failed: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(100 * time.Millisecond)
		st, err := OpenShared(dir)
		if err != nil {
			t.Errorf("peer: %v", err)
			return
		}
		defer st.Close()
		for _, r := range wantRes {
			if groupKeyOf(r.Cell) != peerGroup {
				continue
			}
			if err := st.Append(r.Cell.Key(), r); err != nil {
				t.Errorf("peer append: %v", err)
			}
		}
		l.release()
	}()

	st, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, infos, stats := RunAdaptiveSharded(cells, Options{Store: st}, ad, fastShard("waiter"))
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	peerReplicas := 0
	for _, r := range wantRes {
		if groupKeyOf(r.Cell) == peerGroup {
			peerReplicas++
		}
	}
	if stats.Executed != len(wantRes)-peerReplicas {
		t.Fatalf("Executed = %d, want %d (the peer ran its group)", stats.Executed, len(wantRes)-peerReplicas)
	}
	sameAdaptiveRun(t, "waiter", res, wantRes, infos, wantInfos)
}
