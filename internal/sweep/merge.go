package sweep

import (
	"fmt"
	"io"

	"github.com/fatgather/fatgather/internal/engine"
)

// MergeStats reports what a MergeDirs call did.
type MergeStats struct {
	// Sources is the number of source stores that were readable.
	Sources int
	// Added is the number of records copied into the destination.
	Added int
	// Skipped is the number of source records the destination already held
	// (same cell key — bit-identical by the determinism contract, so keeping
	// the first copy is always safe).
	Skipped int
	// AppendErrs counts records that could not be written to the destination.
	AppendErrs int
}

// MergeDirs merges the completed-cell records of the source sweep
// directories into the destination directory, so statically sharded sweeps
// that ran without a shared filesystem can be combined afterwards (copy the
// shard directories to one host, merge, then resume from the merged store to
// render the full tables).
//
// Sources are opened read-only and never modified. Records written under a
// different schema or engine version are rejected — the mismatch surfaces
// through warnf and the source contributes nothing — because stale-version
// results must never leak into a live store. Duplicate cell keys across
// sources are skipped (first copy wins; duplicates are bit-identical by the
// determinism contract). The destination is created if missing and may
// already hold records: merging is idempotent.
func MergeDirs(dst string, srcs []string, warnf func(format string, args ...any)) (stats MergeStats, err error) {
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	out, oerr := Open(dst)
	if oerr != nil {
		return stats, fmt.Errorf("sweep: merge destination: %w", oerr)
	}
	// The destination is a written store: a swallowed close error would
	// report a merge complete whose records never durably reached disk
	// (gatherlint errclose).
	defer closeKeeping(&err, out, "sweep: close merge destination")
	for _, w := range out.Warnings() {
		warnf("%s", w)
	}
	for _, dir := range srcs {
		src, err := OpenReadOnly(dir)
		if err != nil {
			return stats, fmt.Errorf("sweep: merge source %s: %w", dir, err)
		}
		for _, w := range src.Warnings() {
			warnf("%s: %s", dir, w)
		}
		stats.Sources++
		for _, key := range src.Keys() {
			if _, ok := out.Lookup(key); ok {
				stats.Skipped++
				continue
			}
			st, _ := src.Lookup(key)
			rec := engine.CellResult{Result: st.Result, Err: st.Err, Elapsed: st.Elapsed}
			if err := out.Append(key, rec); err != nil {
				stats.AppendErrs++
				warnf("%s: %v", dir, err)
				continue
			}
			stats.Added++
		}
	}
	return stats, nil
}

// closeKeeping closes c and, when no earlier error is pending, promotes the
// close error into *err. Write paths use it so durability failures surface
// instead of vanishing in a deferred Close.
func closeKeeping(err *error, c io.Closer, what string) {
	if cerr := c.Close(); cerr != nil && *err == nil {
		*err = fmt.Errorf("%s: %w", what, cerr)
	}
}
