package netbackend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/fatgather/fatgather/internal/sweep"
)

// DefaultRetryFor bounds how long the client retries transport failures and
// 5xx responses before giving up. It deliberately exceeds a realistic
// coordinator restart (crash, redeploy, failover) so a mid-sweep gatherd kill
// degrades to a pause, not a failed sweep: claims that time out anyway only
// cost duplicated bit-identical work, never divergent tables.
const DefaultRetryFor = 30 * time.Second

// retryBackoffBase is the first retry delay; it doubles per attempt up to
// retryBackoffCap.
const (
	retryBackoffBase = 50 * time.Millisecond
	retryBackoffCap  = time.Second
)

// Client is the sweep.Backend over a gatherd coordinator: record append and
// reload, cell-group leases and adaptive state all travel the /v1 HTTP API of
// one named store. Construct one per worker per store with NewClient and open
// it with sweep.OpenBackend.
//
// Connection errors and 5xx responses are retried with exponential backoff
// for up to RetryFor (the coordinator may be restarting); 4xx responses are
// returned immediately (the request itself is wrong).
type Client struct {
	base  string // coordinator base URL, no trailing slash
	store string
	hc    *http.Client
	// RetryFor overrides DefaultRetryFor when set before first use (chaos
	// tests shorten it; operators with slow failover may lengthen it).
	RetryFor time.Duration
}

// NewClient validates the coordinator URL and store name and returns a
// backend for that store. It performs no I/O: the first request finds out
// whether the coordinator is reachable (and retries while it is not).
func NewClient(coordinator, store string) (*Client, error) {
	u, err := url.Parse(coordinator)
	if err != nil {
		return nil, fmt.Errorf("gatherd: bad coordinator URL %q: %w", coordinator, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("gatherd: coordinator URL must be http(s)://host[:port], got %q", coordinator)
	}
	if err := CheckStoreName(store); err != nil {
		return nil, err
	}
	return &Client{
		base:     strings.TrimRight(u.String(), "/"),
		store:    store,
		hc:       &http.Client{Timeout: 30 * time.Second},
		RetryFor: DefaultRetryFor,
	}, nil
}

// String returns the store's coordinator URL (shown in warnings and logs).
func (c *Client) String() string {
	return c.base + "/v1/stores/" + c.store
}

// Close releases idle connections. The coordinator's state is unaffected.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// do issues one request, retrying transport errors and 5xx responses with
// exponential backoff until RetryFor elapses. The caller owns the returned
// response body.
func (c *Client) do(method, path string, query url.Values, body []byte) (*http.Response, error) {
	reqURL := c.String() + path
	if len(query) > 0 {
		reqURL += "?" + query.Encode()
	}
	deadline := time.Now().Add(c.RetryFor)
	backoff := retryBackoffBase
	for {
		req, err := http.NewRequest(method, reqURL, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("gatherd: %s %s: %w", method, path, err)
		}
		resp, err := c.hc.Do(req)
		if err == nil && resp.StatusCode < 500 {
			return resp, nil
		}
		var status string
		if err == nil {
			status = resp.Status
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for reuse
			resp.Body.Close()              //nolint:errcheck
		}
		if time.Now().After(deadline) {
			if err != nil {
				return nil, fmt.Errorf("gatherd: %s %s: %w", method, path, err)
			}
			return nil, fmt.Errorf("gatherd: %s %s: coordinator returned %s", method, path, status)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > retryBackoffCap {
			backoff = retryBackoffCap
		}
	}
}

// errFromResponse drains a non-2xx response into an error carrying the
// server's message.
func errFromResponse(method, path string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close() //nolint:errcheck
	return fmt.Errorf("gatherd: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
}

// ReadRecords fetches the record log from off onward; the X-Gatherd-Start
// header carries the offset the bytes actually start at (0 after the
// coordinator replaced or lost its log — the store rescans).
func (c *Client) ReadRecords(off int64) ([]byte, int64, error) {
	q := url.Values{"off": {strconv.FormatInt(off, 10)}}
	resp, err := c.do(http.MethodGet, "/records", q, nil)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, errFromResponse("GET", "/records", resp)
	}
	start, err := strconv.ParseInt(resp.Header.Get("X-Gatherd-Start"), 10, 64)
	if err != nil {
		start = off
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if err != nil {
		return nil, 0, fmt.Errorf("gatherd: GET /records: %w", err)
	}
	return data, start, nil
}

// AppendRecord streams one record line to the coordinator.
func (c *Client) AppendRecord(line []byte) error {
	return c.expectNoContent(http.MethodPost, "/records", nil, line)
}

// RewriteRecords replaces the coordinator's record log.
func (c *Client) RewriteRecords(data []byte) error {
	return c.expectNoContent(http.MethodPut, "/records", nil, data)
}

// expectNoContent issues a request whose success is 204.
func (c *Client) expectNoContent(method, path string, query url.Values, body []byte) error {
	resp, err := c.do(method, path, query, body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent {
		return errFromResponse(method, path, resp)
	}
	resp.Body.Close() //nolint:errcheck
	return nil
}

// leaseCall posts a lease request and decodes the JSON reply into out.
func (c *Client) leaseCall(path, group, owner string, ttl time.Duration, out any) error {
	body, err := json.Marshal(leaseReq{Group: group, Owner: owner, TTLNanos: int64(ttl)})
	if err != nil {
		return fmt.Errorf("gatherd: encode lease request: %w", err)
	}
	resp, err := c.do(http.MethodPost, path, nil, body)
	if err != nil {
		return err
	}
	if out == nil {
		if resp.StatusCode != http.StatusNoContent {
			return errFromResponse("POST", path, resp)
		}
		resp.Body.Close() //nolint:errcheck
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return errFromResponse("POST", path, resp)
	}
	err = json.NewDecoder(resp.Body).Decode(out)
	resp.Body.Close() //nolint:errcheck
	if err != nil {
		return fmt.Errorf("gatherd: POST %s: decode reply: %w", path, err)
	}
	return nil
}

// TryClaim arbitrates a cell-group claim through the coordinator.
func (c *Client) TryClaim(group, owner string, ttl time.Duration) (sweep.LeaseStatus, error) {
	var reply struct {
		Status string `json:"status"`
	}
	if err := c.leaseCall("/claim", group, owner, ttl, &reply); err != nil {
		return sweep.LeaseHeld, err
	}
	switch reply.Status {
	case "won":
		return sweep.LeaseWon, nil
	case "reclaimed":
		return sweep.LeaseReclaimed, nil
	case "held":
		return sweep.LeaseHeld, nil
	default:
		return sweep.LeaseHeld, fmt.Errorf("gatherd: POST /claim: unknown status %q", reply.Status)
	}
}

// RenewLease extends the owner's lease through the coordinator.
func (c *Client) RenewLease(group, owner string, ttl time.Duration) (bool, error) {
	var reply struct {
		Renewed bool `json:"renewed"`
	}
	if err := c.leaseCall("/renew", group, owner, ttl, &reply); err != nil {
		return false, err
	}
	return reply.Renewed, nil
}

// ReleaseLease drops the owner's lease through the coordinator.
func (c *Client) ReleaseLease(group, owner string) error {
	return c.leaseCall("/release", group, owner, 0, nil)
}

// PublishState replaces a group's adaptive-state record on the coordinator.
// The owner travels inside the body (the coordinator replaces atomically, so
// it needs no publisher disambiguation the way the FS temp files do).
func (c *Client) PublishState(group, owner string, body []byte) error {
	return c.expectNoContent(http.MethodPut, "/state", url.Values{"group": {group}}, body)
}

// LoadState fetches a group's adaptive-state record; a 404 is "not published"
// (the worker recomputes), never an error.
func (c *Client) LoadState(group string) ([]byte, bool, error) {
	resp, err := c.do(http.MethodGet, "/state", url.Values{"group": {group}}, nil)
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()              //nolint:errcheck
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, errFromResponse("GET", "/state", resp)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if err != nil {
		return nil, false, fmt.Errorf("gatherd: GET /state: %w", err)
	}
	return body, true, nil
}

// Backend conformance is compile-checked here rather than discovered at the
// first OpenBackend call.
var _ sweep.Backend = (*Client)(nil)
