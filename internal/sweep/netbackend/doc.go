// Package netbackend implements the sweep coordination backend over HTTP:
// Server is the in-process heart of the gatherd coordinator (cmd/gatherd) —
// an append-only record log, a TTL lease table and adaptive-state records per
// named store, behind a small versioned JSON/bytes API — and Client is the
// sweep.Backend that workers point at it with gatherbench -coordinator.
//
// The wire protocol (ProtoVersion, FORMAT.md) is versioned separately from
// the on-disk record schema (sweep.SchemaVersion): record lines cross the
// wire as opaque JSONL bytes, so a schema bump never touches the transport
// and a transport change never invalidates stored records. Lease arbitration
// mirrors the filesystem backend's semantics exactly — one winner per group,
// fresh foreign leases respected, stale/corrupt/clock-skewed leases reclaimed
// — which the internal/sweep/backendtest conformance suite enforces against
// both implementations.
package netbackend
