package netbackend_test

import (
	"net/http/httptest"
	"testing"

	"github.com/fatgather/fatgather/internal/sweep"
	"github.com/fatgather/fatgather/internal/sweep/backendtest"
	"github.com/fatgather/fatgather/internal/sweep/netbackend"
)

// TestGatherdConformance proves the network backend against the same
// conformance suite the filesystem backend passes: one in-process gatherd per
// subtest, one Client per connector call (two calls = two workers coordinated
// by the same daemon).
func TestGatherdConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) func() sweep.Backend {
		srv, err := netbackend.NewServer("")
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			_ = srv.Close()
		})
		return func() sweep.Backend {
			c, err := netbackend.NewClient(ts.URL, "conformance")
			if err != nil {
				t.Fatalf("NewClient(%s): %v", ts.URL, err)
			}
			return c
		}
	})
}
