package netbackend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/fatgather/fatgather/internal/obs"
	"github.com/fatgather/fatgather/internal/sweep"
)

// ProtoVersion is the version of the gatherd wire protocol (the /v1 path
// prefix). It is deliberately independent of sweep.SchemaVersion: record
// lines cross the wire as opaque bytes, so bumping the record schema never
// forces a transport bump, and vice versa. GET /v1/proto reports it so
// mixed-version fleets fail fast instead of mis-parsing.
const ProtoVersion = 1

// Telemetry (internal/obs): coordinator-side counters, served on gatherd's
// own /metrics endpoint. The worker-side sweep counters keep counting in each
// worker process; these count what the fleet did as a whole.
var (
	obsClaims    = obs.NewCounter("fatgather_gatherd_lease_claims_total")
	obsReclaims  = obs.NewCounter("fatgather_gatherd_lease_reclaims_total")
	obsHeld      = obs.NewCounter("fatgather_gatherd_lease_conflicts_total")
	obsRenewals  = obs.NewCounter("fatgather_gatherd_lease_renewals_total")
	obsAppends   = obs.NewCounter("fatgather_gatherd_records_appended_total")
	obsPublishes = obs.NewCounter("fatgather_gatherd_state_publishes_total")
	obsLeases    = obs.NewGauge("fatgather_gatherd_active_leases")
	obsStores    = obs.NewGauge("fatgather_gatherd_stores")
)

// storeNameRE bounds store names to one safe path component: they name
// directories under -dir and appear in URLs, so no separators, no "..".
var storeNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// CheckStoreName validates a coordinator store name (one path-safe
// component). Client and Server both enforce it, so a bad name fails at
// construction rather than as a 404 mid-sweep.
func CheckStoreName(name string) error {
	if !storeNameRE.MatchString(name) || name == "." || name == ".." {
		return fmt.Errorf("gatherd: invalid store name %q (want a single path-safe component)", name)
	}
	return nil
}

// leaseEntry is one live lease in a store's lease table.
type leaseEntry struct {
	owner   string
	expires time.Time
}

// storeState is one named store: the append-only record log, the cell-group
// lease table and the adaptive-state records. The log is the ground truth
// and is the only part persisted under -dir; leases expire by design and
// adaptive state is always recomputable from the log, so losing either on a
// coordinator restart only costs duplicated (bit-identical) work.
type storeState struct {
	log    []byte
	leases map[string]leaseEntry
	states map[string][]byte
	f      *os.File // append-through handle when persisted; nil in memory mode
}

// Server is the gatherd coordination core: named stores, each an append-only
// record log plus a TTL lease table plus adaptive-state records, behind the
// /v1 HTTP API. All state lives behind one mutex — coordination traffic is
// tiny (one claim per cell group, one append per cell) compared to the
// simulation work it arbitrates.
type Server struct {
	mu     sync.Mutex
	stores map[string]*storeState
	dir    string // persistence root; "" keeps everything in memory
	now    func() time.Time
}

// NewServer creates a coordination server. A non-empty dir persists each
// store's record log under dir/<store>/results.jsonl — the layout gatherbench
// merge and a filesystem resume already understand — and reloads it on
// restart; leases and adaptive state are kept in memory only (see
// storeState).
func NewServer(dir string) (*Server, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("gatherd: create dir: %w", err)
		}
	}
	return &Server{
		stores: make(map[string]*storeState),
		dir:    dir,
		now:    time.Now,
	}, nil
}

// Close releases the persisted stores' file handles.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, st := range s.stores {
		if st.f != nil {
			if err := st.f.Close(); err != nil && first == nil {
				first = err
			}
			st.f = nil
		}
	}
	return first
}

// storeFor returns (creating if needed) a named store. Callers hold s.mu.
func (s *Server) storeFor(name string) (*storeState, error) {
	if err := CheckStoreName(name); err != nil {
		return nil, err
	}
	if st, ok := s.stores[name]; ok {
		return st, nil
	}
	st := &storeState{
		leases: make(map[string]leaseEntry),
		states: make(map[string][]byte),
	}
	if s.dir != "" {
		storeDir := filepath.Join(s.dir, name)
		if err := os.MkdirAll(storeDir, 0o755); err != nil {
			return nil, fmt.Errorf("gatherd: create store dir: %w", err)
		}
		path := filepath.Join(storeDir, "results.jsonl")
		log, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("gatherd: load store: %w", err)
		}
		st.log = log
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("gatherd: open store: %w", err)
		}
		st.f = f
	}
	s.stores[name] = st
	obsStores.Set(float64(len(s.stores)))
	return st, nil
}

// persistedPath returns the record-log path of a persisted store.
func (s *Server) persistedPath(name string) string {
	return filepath.Join(s.dir, name, "results.jsonl")
}

// activeLeases recounts the live-lease gauge. Callers hold s.mu.
func (s *Server) activeLeases() {
	n := 0
	t := s.now()
	for _, st := range s.stores {
		for _, e := range st.leases {
			if t.Before(e.expires) {
				n++
			}
		}
	}
	obsLeases.Set(float64(n))
}

// Handler returns the /v1 coordination API (plus /healthz and /v1/proto).
// cmd/gatherd mounts it next to the internal/obs handler, so one listener
// serves coordination, /metrics and /progress together.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/proto", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"proto\":%d}\n", ProtoVersion)
	})
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/stores/{store}/records", s.handleReadRecords)
	mux.HandleFunc("POST /v1/stores/{store}/records", s.handleAppendRecord)
	mux.HandleFunc("PUT /v1/stores/{store}/records", s.handleReplaceRecords)
	mux.HandleFunc("POST /v1/stores/{store}/claim", s.handleClaim)
	mux.HandleFunc("POST /v1/stores/{store}/renew", s.handleRenew)
	mux.HandleFunc("POST /v1/stores/{store}/release", s.handleRelease)
	mux.HandleFunc("GET /v1/stores/{store}/state", s.handleLoadState)
	mux.HandleFunc("PUT /v1/stores/{store}/state", s.handlePublishState)
	return mux
}

// handleStatus reports the coordinator's stores with record-log sizes and
// live lease counts, as JSON (a human- and test-friendly complement to
// /metrics).
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	type storeStatus struct {
		Name     string `json:"name"`
		LogBytes int    `json:"log_bytes"`
		Leases   int    `json:"leases"`
		States   int    `json:"states"`
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.stores))
	for name := range s.stores {
		names = append(names, name)
	}
	sort.Strings(names)
	out := struct {
		Proto  int           `json:"proto"`
		Stores []storeStatus `json:"stores"`
	}{Proto: ProtoVersion, Stores: []storeStatus{}}
	t := s.now()
	for _, name := range names {
		st := s.stores[name]
		live := 0
		for _, e := range st.leases {
			if t.Before(e.expires) {
				live++
			}
		}
		out.Stores = append(out.Stores, storeStatus{
			Name: name, LogBytes: len(st.log), Leases: live, States: len(st.states),
		})
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// withStore resolves the {store} path value and runs fn under the server
// mutex, translating name errors to 400.
func (s *Server) withStore(w http.ResponseWriter, r *http.Request, fn func(st *storeState) error) {
	s.mu.Lock()
	st, err := s.storeFor(r.PathValue("store"))
	if err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	err = fn(st)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleReadRecords serves the record log from ?off=N onward. Like
// FSBackend.ReadRecords, an offset beyond the current log (a worker that
// outlived a coordinator restart, or a replaced log) rewinds to 0; the
// X-Gatherd-Start header tells the worker where the returned bytes actually
// begin so it can rescan.
func (s *Server) handleReadRecords(w http.ResponseWriter, r *http.Request) {
	var off int64
	if q := r.URL.Query().Get("off"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v < 0 {
			http.Error(w, "gatherd: bad off parameter", http.StatusBadRequest)
			return
		}
		off = v
	}
	s.withStore(w, r, func(st *storeState) error {
		if off > int64(len(st.log)) {
			off = 0
		}
		w.Header().Set("X-Gatherd-Start", strconv.FormatInt(off, 10))
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(st.log[off:])
		return nil
	})
}

// handleAppendRecord appends one newline-terminated record line to the log
// (and through to disk for persisted stores).
func (s *Server) handleAppendRecord(w http.ResponseWriter, r *http.Request) {
	line, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "gatherd: read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(line) == 0 || line[len(line)-1] != '\n' {
		// A non-terminated line would fuse with the next worker's append into
		// one corrupt record; reject it at the door.
		http.Error(w, "gatherd: record must be newline-terminated", http.StatusBadRequest)
		return
	}
	s.withStore(w, r, func(st *storeState) error {
		if st.f != nil {
			if _, err := st.f.Write(line); err != nil {
				return fmt.Errorf("gatherd: persist record: %w", err)
			}
		}
		st.log = append(st.log, line...)
		obsAppends.Inc()
		w.WriteHeader(http.StatusNoContent)
		return nil
	})
}

// handleReplaceRecords replaces the whole record log (compaction / reset).
func (s *Server) handleReplaceRecords(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "gatherd: read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	name := r.PathValue("store")
	s.withStore(w, r, func(st *storeState) error {
		if st.f != nil {
			// Same discipline as FSBackend.rewrite: temp + rename, then move
			// the append handle to the new inode.
			path := s.persistedPath(name)
			tmp := path + ".tmp"
			if err := os.WriteFile(tmp, data, 0o644); err != nil {
				return fmt.Errorf("gatherd: replace store: %w", err)
			}
			if err := os.Rename(tmp, path); err != nil {
				return fmt.Errorf("gatherd: replace store: %w", err)
			}
			if err := st.f.Close(); err != nil {
				st.f = nil
				return fmt.Errorf("gatherd: replace store: %w", err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				st.f = nil
				return fmt.Errorf("gatherd: replace store: %w", err)
			}
			st.f = f
		}
		st.log = bytes.Clone(data)
		w.WriteHeader(http.StatusNoContent)
		return nil
	})
}

// leaseReq is the JSON body of claim, renew and release requests.
type leaseReq struct {
	Group string `json:"group"`
	Owner string `json:"owner"`
	// TTLNanos is the lease TTL in nanoseconds (claim and renew only).
	TTLNanos int64 `json:"ttl_ns"`
}

func decodeLeaseReq(w http.ResponseWriter, r *http.Request) (leaseReq, bool) {
	var req leaseReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "gatherd: bad lease request: "+err.Error(), http.StatusBadRequest)
		return req, false
	}
	if req.Group == "" || req.Owner == "" {
		http.Error(w, "gatherd: lease request needs group and owner", http.StatusBadRequest)
		return req, false
	}
	return req, true
}

// handleClaim arbitrates a cell-group claim, mirroring the filesystem lease
// semantics exactly: an absent lease is won, a fresh foreign lease (expiry in
// the future but within sweep.MaxLeaseHorizon) is respected, and anything
// else — expired, clock-skewed beyond the horizon, or this owner's own lease
// — is reclaimed.
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeLeaseReq(w, r)
	if !ok {
		return
	}
	ttl := time.Duration(req.TTLNanos)
	if err := sweep.CheckLeaseTTL(ttl); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.withStore(w, r, func(st *storeState) error {
		t := s.now()
		status := "won"
		if e, held := st.leases[req.Group]; held {
			fresh := t.Before(e.expires) && e.expires.Sub(t) <= sweep.MaxLeaseHorizon
			if e.owner != req.Owner && fresh {
				obsHeld.Inc()
				w.Header().Set("Content-Type", "application/json")
				fmt.Fprintln(w, `{"status":"held"}`)
				return nil
			}
			status = "reclaimed"
		}
		st.leases[req.Group] = leaseEntry{owner: req.Owner, expires: t.Add(ttl)}
		obsClaims.Inc()
		if status == "reclaimed" {
			obsReclaims.Inc()
		}
		s.activeLeases()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":%q}\n", status)
		return nil
	})
}

// handleRenew extends a lease, mirroring the filesystem renew: a foreign
// lease backs the caller off (renewed=false), a missing lease is recreated
// for the caller (a release/renew race heals itself).
func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeLeaseReq(w, r)
	if !ok {
		return
	}
	ttl := time.Duration(req.TTLNanos)
	if err := sweep.CheckLeaseTTL(ttl); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.withStore(w, r, func(st *storeState) error {
		w.Header().Set("Content-Type", "application/json")
		if e, held := st.leases[req.Group]; held && e.owner != req.Owner {
			fmt.Fprintln(w, `{"renewed":false}`)
			return nil
		}
		st.leases[req.Group] = leaseEntry{owner: req.Owner, expires: s.now().Add(ttl)}
		obsRenewals.Inc()
		s.activeLeases()
		fmt.Fprintln(w, `{"renewed":true}`)
		return nil
	})
}

// handleRelease drops a lease if (and only if) the caller still owns it.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeLeaseReq(w, r)
	if !ok {
		return
	}
	s.withStore(w, r, func(st *storeState) error {
		if e, held := st.leases[req.Group]; held && e.owner == req.Owner {
			delete(st.leases, req.Group)
			s.activeLeases()
		}
		w.WriteHeader(http.StatusNoContent)
		return nil
	})
}

// handleLoadState serves a group's adaptive-state record; 404 when none is
// published (the worker recomputes from the record log).
func (s *Server) handleLoadState(w http.ResponseWriter, r *http.Request) {
	group := r.URL.Query().Get("group")
	if group == "" {
		http.Error(w, "gatherd: state request needs a group parameter", http.StatusBadRequest)
		return
	}
	s.withStore(w, r, func(st *storeState) error {
		body, ok := st.states[group]
		if !ok {
			http.Error(w, "gatherd: no state for group", http.StatusNotFound)
			return nil
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(body)
		return nil
	})
}

// handlePublishState replaces a group's adaptive-state record. Replacement
// under the server mutex is atomic by construction — readers see the old
// record or the new one, never a torn mix (the property the filesystem
// backend needs hard links for).
func (s *Server) handlePublishState(w http.ResponseWriter, r *http.Request) {
	group := r.URL.Query().Get("group")
	if group == "" {
		http.Error(w, "gatherd: state request needs a group parameter", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "gatherd: read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.withStore(w, r, func(st *storeState) error {
		st.states[group] = bytes.Clone(body)
		obsPublishes.Inc()
		w.WriteHeader(http.StatusNoContent)
		return nil
	})
}
