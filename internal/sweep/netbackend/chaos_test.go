package netbackend_test

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/sweep"
	"github.com/fatgather/fatgather/internal/sweep/backendtest"
	"github.com/fatgather/fatgather/internal/sweep/netbackend"
)

// groupKeyOf reproduces the sharded runners' seedless group identity.
func groupKeyOf(c engine.Cell) string {
	c.WorkloadSeed = 0
	c.AdversarySeed = 0
	return c.Key()
}

func newTestClient(t *testing.T, base, store string) *netbackend.Client {
	t.Helper()
	c, err := netbackend.NewClient(base, store)
	if err != nil {
		t.Fatalf("NewClient(%s, %s): %v", base, store, err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestWorkerDiesMidClaimAgainstGatherd is the network mirror of the FS
// stale-lease reclaim test: a worker claims a cell group from gatherd,
// streams a prefix of the sweep's records, and is SIGKILLed — which over HTTP
// means its lease simply stops being renewed and its connection vanishes. A
// surviving worker must wait out the TTL, reclaim the group through the
// coordinator, finish the sweep, and produce results byte-identical to an
// uninterrupted run.
func TestWorkerDiesMidClaimAgainstGatherd(t *testing.T) {
	cells := backendtest.Cells(2)
	ref := engine.Run(cells, engine.Options{})

	srv, err := netbackend.NewServer("")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close()
	})

	// The doomed worker: finishes the first quarter of the cells, claims the
	// last cell's group with a short lease, then dies without releasing or
	// renewing — exactly the state a SIGKILL leaves on the coordinator.
	doomed := newTestClient(t, ts.URL, "chaos")
	dst, err := sweep.OpenBackend(doomed)
	if err != nil {
		t.Fatal(err)
	}
	k := len(cells) / 4
	for i := 0; i < k; i++ {
		if err := dst.Append(cells[i].Key(), ref[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	staleGroup := groupKeyOf(cells[len(cells)-1])
	if st, err := doomed.TryClaim(staleGroup, "doomed", 300*time.Millisecond); err != nil || st != sweep.LeaseWon {
		t.Fatalf("doomed claim = (%v, %v), want LeaseWon", st, err)
	}

	// The survivor: a second client on the same store must restore the dead
	// worker's records, poll the leased group until the TTL runs out, and
	// reclaim it from the coordinator.
	survivor := newTestClient(t, ts.URL, "chaos")
	st, err := sweep.OpenBackend(survivor)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, stats := RunShardedOn(t, cells, st)
	if stats.LeasesReclaimed < 1 {
		t.Fatalf("LeasesReclaimed = %d, want >= 1 (the doomed worker's lease)", stats.LeasesReclaimed)
	}
	if stats.Executed != len(cells)-k {
		t.Fatalf("Executed = %d, want %d (the doomed worker's unfinished cells)", stats.Executed, len(cells)-k)
	}
	if stats.Restored != k {
		t.Fatalf("Restored = %d, want %d", stats.Restored, k)
	}
	for i := range cells {
		backendtest.SameResult(t, fmt.Sprintf("cell %d", i), res[i], ref[i])
	}
}

// RunShardedOn runs one worker over a store with the test-tuned shard (short
// poll so lease expiry is noticed quickly, honest TTL for its own leases).
func RunShardedOn(t *testing.T, cells []engine.Cell, st *sweep.Store) ([]engine.CellResult, sweep.ShardStats) {
	t.Helper()
	return sweep.RunSharded(cells, sweep.Options{Store: st}, sweep.Shard{
		Owner: "survivor",
		TTL:   5 * time.Second,
		Poll:  10 * time.Millisecond,
	})
}

// TestGatherdRestartMidSweep kills the coordinator itself mid-sweep and
// brings an EMPTY replacement up on the same address: the worker's in-flight
// requests fail, its retry loop backs off until the new listener answers, its
// heartbeat recreates the lease the restart lost, and its next reload rescans
// from offset zero. The sweep must complete with tables byte-identical to an
// undisturbed run — a coordinator crash costs a pause, never divergence.
func TestGatherdRestartMidSweep(t *testing.T) {
	cells := backendtest.Cells(2)
	ref := engine.Run(cells, engine.Options{})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	// First incarnation: counts successful record appends and signals the
	// test to pull the plug after the second one lands.
	srv1, err := netbackend.NewServer("")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv1.Close()
	var (
		mu       sync.Mutex
		appends  int
		restartc = make(chan struct{})
		once     sync.Once
	)
	h1 := srv1.Handler()
	hs1 := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h1.ServeHTTP(w, r)
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/records") {
			mu.Lock()
			appends++
			n := appends
			mu.Unlock()
			if n == 2 {
				once.Do(func() { close(restartc) })
			}
		}
	})}
	go hs1.Serve(ln) //nolint:errcheck // closed deliberately mid-test

	worker := newTestClient(t, "http://"+addr, "chaos")
	st, err := sweep.OpenBackend(worker)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	type outcome struct {
		res   []engine.CellResult
		stats sweep.ShardStats
	}
	donec := make(chan outcome, 1)
	go func() {
		res, stats := RunShardedOn(t, cells, st)
		donec <- outcome{res, stats}
	}()

	// Pull the plug after the second append, then resurrect gatherd on the
	// same address with a brand-new, empty server: every record and lease
	// accumulated so far is gone (the in-memory deployment).
	select {
	case <-restartc:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never reached the second record append")
	}
	_ = hs1.Close()
	var ln2 net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv2, err := netbackend.NewServer("")
	if err != nil {
		t.Fatalf("NewServer (second incarnation): %v", err)
	}
	defer srv2.Close()
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(ln2) //nolint:errcheck
	defer hs2.Close() //nolint:errcheck

	var got outcome
	select {
	case got = <-donec:
	case <-time.After(60 * time.Second):
		t.Fatal("worker did not finish after the coordinator restart")
	}
	if got.stats.Executed != len(cells) {
		t.Fatalf("Executed = %d, want %d (sole worker runs everything)", got.stats.Executed, len(cells))
	}
	for i := range cells {
		backendtest.SameResult(t, fmt.Sprintf("cell %d", i), got.res[i], ref[i])
	}
	mu.Lock()
	n := appends
	mu.Unlock()
	if n < 2 {
		t.Fatalf("first incarnation saw %d appends, want >= 2 (restart must interrupt a live sweep)", n)
	}
}
