package sweep

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// LeaseStatus is the outcome of a Backend.TryClaim attempt.
type LeaseStatus int

const (
	// LeaseHeld means another worker holds a fresh lease on the group; the
	// caller backs off and leaves the group to its current owner.
	LeaseHeld LeaseStatus = iota
	// LeaseWon means the claim succeeded on a previously unclaimed group.
	LeaseWon
	// LeaseReclaimed means the claim succeeded by taking over a stale,
	// corrupt or abandoned predecessor lease (a dead worker's group re-runs).
	LeaseReclaimed
)

// MaxLeaseHorizon bounds how far in the future a lease expiry may lie before
// readers treat the lease as corrupt and reclaimable. A lease written by a
// worker with a badly skewed clock would otherwise pin its group until that
// far-future expiry passes — long after the worker died — stalling the whole
// fleet on a single bad wall clock. No legitimate TTL approaches this bound
// (the default is 30s), so CheckLeaseTTL also rejects TTLs beyond it: a
// worker must never publish a lease its peers would judge corrupt.
const MaxLeaseHorizon = 24 * time.Hour

// CheckLeaseTTL validates a lease TTL for claim and renew operations: it must
// be positive (a zero or negative TTL would publish an already-expired lease,
// turning every claim into a reclaim race) and within MaxLeaseHorizon.
// Backend implementations call it so both sides of the wire enforce the same
// contract.
func CheckLeaseTTL(ttl time.Duration) error {
	if ttl <= 0 {
		return fmt.Errorf("sweep: lease ttl must be positive, got %v", ttl)
	}
	if ttl > MaxLeaseHorizon {
		return fmt.Errorf("sweep: lease ttl %v exceeds the %v lease horizon (peers would treat the lease as clock-skewed and reclaim it)", ttl, MaxLeaseHorizon)
	}
	return nil
}

// Backend is the coordination medium of a sweep: everything the resumable and
// sharded runners need from shared state — the append-only record log, the
// cell-group lease table, and the adaptive-state records — behind one
// transport-agnostic interface. FSBackend implements it over a shared
// filesystem (the original temp-file + hard-link protocol); netbackend.Client
// implements it over the gatherd HTTP coordinator. The conformance suite in
// internal/sweep/backendtest pins the semantics every implementation must
// share, so tables stay byte-identical across transports and fleet sizes.
//
// Record methods move opaque JSONL bytes: all parsing, schema gating and
// corruption handling stays in Store, above the transport. Lease and state
// methods likewise carry opaque group keys and bodies; arbitration semantics
// (one winner per group, stale/corrupt reclaim, foreign-owner backoff) are
// part of this contract.
type Backend interface {
	// ReadRecords returns the record-log bytes from offset off to the current
	// end, together with the offset the returned data actually starts at:
	// normally start == off, but a log that shrank underneath the reader (an
	// exclusive compaction, a reset, or a coordinator restart) is served from
	// the beginning with start == 0 so the caller rescans. A missing log
	// reads as empty.
	ReadRecords(off int64) (data []byte, start int64, err error)
	// AppendRecord appends one newline-terminated record line to the log.
	AppendRecord(line []byte) error
	// RewriteRecords atomically replaces the whole record log (compaction and
	// reset). Readers never observe a torn log: they see the old bytes or the
	// new ones.
	RewriteRecords(data []byte) error

	// TryClaim attempts to take the lease on a cell group for owner with the
	// given TTL. Exactly one contending worker wins; a fresh foreign lease
	// reports LeaseHeld, and a stale, corrupt or abandoned lease (including
	// one whose expiry lies beyond MaxLeaseHorizon — a skewed clock) is taken
	// over as LeaseReclaimed. Claiming a group this owner already holds also
	// reports LeaseReclaimed (a restarted worker reclaims itself).
	TryClaim(group, owner string, ttl time.Duration) (LeaseStatus, error)
	// RenewLease extends the owner's lease by ttl. It reports false without
	// error when the lease meanwhile belongs to another owner (the caller
	// stalled past its TTL and a peer reclaimed the group): the worker backs
	// off and keeps running, which at worst duplicates bit-identical records.
	// A missing lease is recreated (a release/renew race heals itself).
	RenewLease(group, owner string, ttl time.Duration) (bool, error)
	// ReleaseLease drops the owner's lease on the group; a lease now owned by
	// someone else is left untouched.
	ReleaseLease(group, owner string) error

	// PublishState atomically replaces the adaptive-state record of a cell
	// group. The body is opaque to the transport; owner only disambiguates
	// concurrent publishers (the FS backend keys its temp files by it).
	PublishState(group, owner string, body []byte) error
	// LoadState returns a group's adaptive-state record, reporting ok ==
	// false when none is published. Missing, torn or stale records are never
	// errors — readers recompute from the record log.
	LoadState(group string) (body []byte, ok bool, err error)

	// String describes the backend's location (a file path, a coordinator
	// URL) for warnings and logs.
	String() string
	// Close releases the backend's resources. Append fails afterwards.
	Close() error
}

// FSBackend is the shared-filesystem Backend: the JSONL record file, lease
// files and adaptive-state records of one sweep directory, published with the
// temp-file + hard-link/rename discipline that gives every operation exactly
// one winner on a POSIX filesystem (including NFS). It is the default backend
// behind Open/OpenShared and the reference implementation the backendtest
// conformance suite measures other transports against.
type FSBackend struct {
	dir  string
	path string // <dir>/results.jsonl
	st   fsStateDir
	// now is the lease clock, injectable for tests (the determinism contract
	// keeps wall-clock reads out of result paths; lease arbitration only
	// affects who does work, never what comes out).
	now func() time.Time

	mu sync.Mutex
	f  *os.File // append handle; nil in read-only mode
}

// NewFSBackend creates (if needed) the sweep directory and opens the record
// log for appending.
func NewFSBackend(dir string) (*FSBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create dir: %w", err)
	}
	b := newReadOnlyFSBackend(dir)
	f, err := os.OpenFile(b.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	b.f = f
	return b, nil
}

// newReadOnlyFSBackend wires an FSBackend without an append handle (and
// without creating anything): AppendRecord and RewriteRecords fail, reads
// work. OpenReadOnly uses it so merge sources are never modified.
func newReadOnlyFSBackend(dir string) *FSBackend {
	return &FSBackend{
		dir:  dir,
		path: filepath.Join(dir, resultsFile),
		st:   fsStateDir{dir: filepath.Join(dir, adaptiveDir)},
		now:  time.Now,
	}
}

// errReadOnly guards the write paths of a backend opened without a handle.
var errReadOnly = errors.New("sweep: store is read-only")

// String returns the record file path.
func (b *FSBackend) String() string { return b.path }

// Dir returns the sweep directory the backend lives in.
func (b *FSBackend) Dir() string { return b.dir }

// ReadRecords reads the record file from off to its current end. A file that
// shrank below off (compacted or reset underneath the reader) is served from
// the start; a missing file reads as empty.
func (b *FSBackend) ReadRecords(off int64) ([]byte, int64, error) {
	f, err := os.Open(b.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	//gatherlint:ignore errclose read-only scan handle; a close error cannot un-persist records
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	if off < 0 || fi.Size() < off {
		off = 0 // compacted/reset underneath the reader: rescan
	}
	if fi.Size() == off {
		return nil, off, nil
	}
	data := make([]byte, fi.Size()-off)
	if _, err := f.ReadAt(data, off); err != nil {
		return nil, 0, err
	}
	return data, off, nil
}

// AppendRecord appends one record line through the O_APPEND handle: the line
// reaches the operating system before AppendRecord returns, so a killed
// process loses at most the line being written.
func (b *FSBackend) AppendRecord(line []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return errReadOnly
	}
	_, err := b.f.Write(line)
	return err
}

// RewriteRecords atomically replaces the record file.
func (b *FSBackend) RewriteRecords(data []byte) error { return b.rewrite(data) }

// rewrite publishes the replacement file via temp + rename, then reopens the
// append handle: the rename left the old handle pointing at the unlinked
// inode, so appends must move to the new file.
func (b *FSBackend) rewrite(data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return errReadOnly
	}
	tmp := b.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, b.path); err != nil {
		return err
	}
	if err := b.f.Close(); err != nil {
		b.f = nil
		return err
	}
	f, err := os.OpenFile(b.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.f = nil
		return err
	}
	b.f = f
	return nil
}

// managerFor builds the lease-file manager for one (owner, ttl) pair; the
// manager itself (claim/renew/release over lease files) predates the Backend
// interface and stays the FS arbitration engine.
func (b *FSBackend) managerFor(owner string, ttl time.Duration) *leaseManager {
	return &leaseManager{
		dir:   filepath.Join(b.dir, leasesDir),
		owner: owner,
		ttl:   ttl,
		now:   b.now,
	}
}

// TryClaim arbitrates a cell-group claim through the lease files.
func (b *FSBackend) TryClaim(group, owner string, ttl time.Duration) (LeaseStatus, error) {
	l, reclaimed, err := b.managerFor(owner, ttl).claim(group)
	switch {
	case err != nil:
		return LeaseHeld, err
	case l == nil:
		return LeaseHeld, nil
	case reclaimed:
		return LeaseReclaimed, nil
	default:
		return LeaseWon, nil
	}
}

// RenewLease extends the owner's lease file, backing off (false) when the
// file meanwhile belongs to another owner.
func (b *FSBackend) RenewLease(group, owner string, ttl time.Duration) (bool, error) {
	m := b.managerFor(owner, ttl)
	l := &lease{m: m, path: m.pathFor(group), group: group}
	return l.renew()
}

// ReleaseLease removes the owner's lease file (foreign leases are left
// untouched).
func (b *FSBackend) ReleaseLease(group, owner string) error {
	m := b.managerFor(owner, 0)
	l := &lease{m: m, path: m.pathFor(group), group: group}
	l.release()
	return nil
}

// PublishState atomically publishes a group's adaptive-state record.
func (b *FSBackend) PublishState(group, owner string, body []byte) error {
	return b.st.PublishState(group, owner, body)
}

// LoadState reads a group's adaptive-state record; missing or unreadable
// records report ok == false (the reader recomputes from the record log).
func (b *FSBackend) LoadState(group string) ([]byte, bool, error) {
	return b.st.LoadState(group)
}

// Close releases the append handle. Reads keep working.
func (b *FSBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil
	}
	err := b.f.Close()
	b.f = nil
	return err
}
