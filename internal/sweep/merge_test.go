package sweep

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/workload"
)

// mergeCells is a small grid split across two stores in the merge tests.
func mergeCells(t *testing.T) []engine.Cell {
	t.Helper()
	var cells []engine.Cell
	for seed := int64(1); seed <= 4; seed++ {
		cells = append(cells, engine.Cell{
			Workload: workload.KindClustered, N: 3, WorkloadSeed: seed,
			Adversary: "fair", AdversarySeed: seed, MaxEvents: 500,
		})
	}
	return cells
}

func runInto(t *testing.T, dir string, cells []engine.Cell) {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, stats := Run(cells, Options{Store: st}); stats.AppendErrs > 0 {
		t.Fatalf("%d append errors", stats.AppendErrs)
	}
}

func TestMergeDirsCombinesDisjointStores(t *testing.T) {
	cells := mergeCells(t)
	dirA, dirB := t.TempDir(), t.TempDir()
	runInto(t, dirA, cells[:2])
	runInto(t, dirB, cells[2:])

	dst := t.TempDir()
	stats, err := MergeDirs(dst, []string{dirA, dirB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 4 || stats.Skipped != 0 || stats.Sources != 2 {
		t.Fatalf("stats %+v, want 4 added / 0 skipped / 2 sources", stats)
	}

	// Resuming the full grid from the merged store executes nothing.
	merged, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	results, runStats := Run(cells, Options{Store: merged})
	if runStats.Executed != 0 || runStats.Restored != 4 {
		t.Fatalf("merged store incomplete: %+v", runStats)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("restored cell errored: %v", r.Err)
		}
	}
}

func TestMergeDirsIsIdempotentAndDedupes(t *testing.T) {
	cells := mergeCells(t)
	dirA := t.TempDir()
	runInto(t, dirA, cells)

	dst := t.TempDir()
	if _, err := MergeDirs(dst, []string{dirA}, nil); err != nil {
		t.Fatal(err)
	}
	stats, err := MergeDirs(dst, []string{dirA}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 0 || stats.Skipped != len(cells) {
		t.Fatalf("re-merge stats %+v, want everything skipped", stats)
	}
}

func TestMergeDirsRejectsVersionMismatch(t *testing.T) {
	src := t.TempDir()
	stale := `{"schema":1,"engine":"fatgather-engine/0-stale","key":"k1","elapsed_ns":5}` + "\n"
	if err := os.WriteFile(filepath.Join(src, resultsFile), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	var warned []string
	warnf := func(format string, args ...any) { warned = append(warned, format) }

	dst := t.TempDir()
	stats, err := MergeDirs(dst, []string{src}, warnf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 0 {
		t.Fatalf("merged %d stale records, want 0", stats.Added)
	}
	if len(warned) == 0 {
		t.Fatal("version mismatch produced no warning")
	}
	// The rejected source file must be untouched (read-only open).
	data, err := os.ReadFile(filepath.Join(src, resultsFile))
	if err != nil || string(data) != stale {
		t.Fatalf("merge modified the rejected source: %q, %v", data, err)
	}
}

func TestMergeDirsMissingSourceErrors(t *testing.T) {
	if _, err := MergeDirs(t.TempDir(), []string{filepath.Join(t.TempDir(), "nope")}, nil); err == nil {
		t.Fatal("missing source directory accepted")
	}
}

func TestOpenReadOnlyDoesNotCompactOrAppend(t *testing.T) {
	dir := t.TempDir()
	runInto(t, dir, mergeCells(t)[:1])
	// Corrupt trailing line: an exclusive Open would compact it away.
	path := filepath.Join(dir, resultsFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	st, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done() != 1 {
		t.Fatalf("read-only store loaded %d cells, want 1", st.Done())
	}
	if err := st.Append("x", engine.CellResult{}); err == nil {
		t.Fatal("read-only store accepted an append")
	}
	warned := false
	for _, w := range st.Warnings() {
		if strings.Contains(w, "corrupt") {
			warned = true
		}
	}
	if !warned {
		t.Fatal("corrupt line produced no warning")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatal("OpenReadOnly modified the store file")
	}
}

func TestStoreKeysSortedAndComplete(t *testing.T) {
	dir := t.TempDir()
	cells := mergeCells(t)
	runInto(t, dir, cells)
	st, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := st.Keys()
	if len(keys) != len(cells) {
		t.Fatalf("%d keys, want %d", len(keys), len(cells))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %q before %q", keys[i-1], keys[i])
		}
	}
	for _, c := range cells {
		if _, ok := st.Lookup(c.Key()); !ok {
			t.Fatalf("key %q missing", c.Key())
		}
	}
}

// errCloser fails its Close with a fixed error.
type errCloser struct{ err error }

func (c errCloser) Close() error { return c.err }

// closeKeeping is the errclose fix behind MergeDirs: a destination-store
// close error must surface to the caller instead of vanishing in a deferred
// Close, and it must never mask an earlier error.
func TestCloseKeepingPromotesCloseError(t *testing.T) {
	var err error
	closeKeeping(&err, errCloser{err: errors.New("boom")}, "close dst")
	if err == nil || !strings.Contains(err.Error(), "close dst") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("close error not promoted: %v", err)
	}

	prior := errors.New("earlier failure")
	err = prior
	closeKeeping(&err, errCloser{err: errors.New("boom")}, "close dst")
	if err != prior {
		t.Fatalf("earlier error was masked: %v", err)
	}

	err = nil
	closeKeeping(&err, errCloser{}, "close dst")
	if err != nil {
		t.Fatalf("clean close produced an error: %v", err)
	}
}
