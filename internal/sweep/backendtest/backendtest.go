// Package backendtest is the conformance suite for sweep.Backend
// implementations: one exported harness (Run) that pins the coordination
// semantics the sharded runners rely on — append-then-reload round trips,
// claim/renew/expire/reclaim/release ordering, adaptive-state publication
// with corruption-ignore, and byte-identical two-worker tables — so that the
// filesystem backend, the gatherd network backend, and any future transport
// (object-store CAS) all prove the same contract with the same tests.
//
// A backend under test is described by a Factory: called once per subtest, it
// returns a connector that opens one more worker's view onto the same fresh
// coordination medium (the same sweep directory, the same coordinator store).
// Two connector calls therefore model two cooperating workers.
package backendtest

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/sweep"
	"github.com/fatgather/fatgather/internal/workload"
)

// Factory prepares one fresh, isolated coordination medium per call and
// returns a connector for it. Each connector call opens a NEW backend view
// over that SAME medium; Run closes every view it opens.
type Factory func(t *testing.T) func() sweep.Backend

// Run exercises a backend implementation against the full conformance suite.
func Run(t *testing.T, factory Factory) {
	t.Run("RecordRoundTrip", func(t *testing.T) { testRecordRoundTrip(t, factory(t)) })
	t.Run("RecordReloadTail", func(t *testing.T) { testRecordReloadTail(t, factory(t)) })
	t.Run("LeaseOrdering", func(t *testing.T) { testLeaseOrdering(t, factory(t)) })
	t.Run("LeaseExpiry", func(t *testing.T) { testLeaseExpiry(t, factory(t)) })
	t.Run("LeaseTTLValidation", func(t *testing.T) { testLeaseTTLValidation(t, factory(t)) })
	t.Run("AdaptiveState", func(t *testing.T) { testAdaptiveState(t, factory(t)) })
	t.Run("TwoWorkerByteIdentical", func(t *testing.T) { testTwoWorkerByteIdentical(t, factory(t)) })
	t.Run("TwoWorkerAdaptiveByteIdentical", func(t *testing.T) { testTwoWorkerAdaptive(t, factory(t)) })
}

// Cells is the suite's small heterogeneous batch — four cell groups (two
// robot counts x two adversaries), seeds replicas each — exported so chaos
// tests outside the package can drive the same workload.
func Cells(seeds int) []engine.Cell {
	return engine.Batch{
		Workloads:   []workload.Kind{workload.KindClustered},
		Ns:          []int{3, 4},
		Adversaries: []string{"random-async", "stop-happy"},
		Seeds:       seeds,
		MaxEvents:   400,
	}.Cells()
}

// groupKey reproduces the sharded runners' seedless group identity.
func groupKey(c engine.Cell) string {
	c.WorkloadSeed = 0
	c.AdversarySeed = 0
	return c.Key()
}

// SameResult compares two cell results with the fidelity the resume contract
// promises: errors by message, results through their JSON encoding (which
// round-trips float64 exactly).
func SameResult(t *testing.T, label string, a, b engine.CellResult) {
	t.Helper()
	sameErr := func(what string, x, y error) {
		t.Helper()
		if (x == nil) != (y == nil) {
			t.Fatalf("%s: %s %v vs %v", label, what, x, y)
		}
		if x != nil && x.Error() != y.Error() {
			t.Fatalf("%s: %s %q vs %q", label, what, x, y)
		}
	}
	sameErr("err", a.Err, b.Err)
	sameErr("result err", a.Result.Err, b.Result.Err)
	ra, rb := a.Result, b.Result
	ra.Err, rb.Err = nil, nil
	ja, err := json.Marshal(ra)
	if err != nil {
		t.Fatalf("%s: marshal: %v", label, err)
	}
	jb, err := json.Marshal(rb)
	if err != nil {
		t.Fatalf("%s: marshal: %v", label, err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("%s: results differ:\n%s\nvs\n%s", label, ja, jb)
	}
}

func openStore(t *testing.T, b sweep.Backend) *sweep.Store {
	t.Helper()
	st, err := sweep.OpenBackend(b)
	if err != nil {
		t.Fatalf("OpenBackend(%s): %v", b, err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

// testRecordRoundTrip appends a sweep's records through one view and opens a
// second view cold: the restored set must be complete and identical.
func testRecordRoundTrip(t *testing.T, connect func() sweep.Backend) {
	cells := Cells(1)
	results := engine.Run(cells, engine.Options{})

	w := openStore(t, connect())
	for i, r := range results {
		if err := w.Append(cells[i].Key(), r); err != nil {
			t.Fatal(err)
		}
	}

	r := openStore(t, connect())
	if len(r.Warnings()) != 0 {
		t.Fatalf("clean medium produced warnings: %v", r.Warnings())
	}
	if r.Done() != len(cells) {
		t.Fatalf("restored %d cells, want %d", r.Done(), len(cells))
	}
	for i, c := range cells {
		st, ok := r.Lookup(c.Key())
		if !ok {
			t.Fatalf("cell %d missing after round trip", i)
		}
		got := engine.CellResult{Result: st.Result, Err: st.Err}
		want := engine.CellResult{Result: results[i].Result, Err: results[i].Err}
		SameResult(t, fmt.Sprintf("cell %d", i), got, want)
	}
}

// testRecordReloadTail pins the incremental Reload contract: a second view
// that already loaded the log must learn exactly the records appended since,
// through tail reads only.
func testRecordReloadTail(t *testing.T, connect func() sweep.Backend) {
	cells := Cells(1)
	results := engine.Run(cells, engine.Options{})

	w := openStore(t, connect())
	r := openStore(t, connect())
	if r.Done() != 0 {
		t.Fatalf("fresh medium restored %d cells", r.Done())
	}
	half := len(cells) / 2
	for i := 0; i < half; i++ {
		if err := w.Append(cells[i].Key(), results[i]); err != nil {
			t.Fatal(err)
		}
	}
	if fresh, err := r.Reload(); err != nil || fresh != half {
		t.Fatalf("first Reload = (%d, %v), want (%d, nil)", fresh, err, half)
	}
	for i := half; i < len(cells); i++ {
		if err := w.Append(cells[i].Key(), results[i]); err != nil {
			t.Fatal(err)
		}
	}
	if fresh, err := r.Reload(); err != nil || fresh != len(cells)-half {
		t.Fatalf("second Reload = (%d, %v), want (%d, nil)", fresh, err, len(cells)-half)
	}
	if fresh, err := r.Reload(); err != nil || fresh != 0 {
		t.Fatalf("idle Reload = (%d, %v), want (0, nil)", fresh, err)
	}
}

// testLeaseOrdering pins the claim/renew/release arbitration semantics.
func testLeaseOrdering(t *testing.T, connect func() sweep.Backend) {
	b1, b2 := connect(), connect()
	defer func() { _ = b1.Close() }()
	defer func() { _ = b2.Close() }()
	const g = "group-a"
	ttl := 30 * time.Second

	if st, err := b1.TryClaim(g, "w1", ttl); err != nil || st != sweep.LeaseWon {
		t.Fatalf("first claim = (%v, %v), want LeaseWon", st, err)
	}
	if st, err := b2.TryClaim(g, "w2", ttl); err != nil || st != sweep.LeaseHeld {
		t.Fatalf("contending claim = (%v, %v), want LeaseHeld", st, err)
	}
	// A restarted worker reclaims its own lease.
	if st, err := b1.TryClaim(g, "w1", ttl); err != nil || st != sweep.LeaseReclaimed {
		t.Fatalf("self re-claim = (%v, %v), want LeaseReclaimed", st, err)
	}
	if ok, err := b1.RenewLease(g, "w1", ttl); err != nil || !ok {
		t.Fatalf("own renew = (%v, %v), want (true, nil)", ok, err)
	}
	// A foreign renew backs off without error.
	if ok, err := b2.RenewLease(g, "w2", ttl); err != nil || ok {
		t.Fatalf("foreign renew = (%v, %v), want (false, nil)", ok, err)
	}
	// A foreign release is a no-op.
	if err := b2.ReleaseLease(g, "w2"); err != nil {
		t.Fatalf("foreign release: %v", err)
	}
	if st, err := b2.TryClaim(g, "w2", ttl); err != nil || st != sweep.LeaseHeld {
		t.Fatalf("claim after foreign release = (%v, %v), want LeaseHeld", st, err)
	}
	// The owner's release frees the group for the peer.
	if err := b1.ReleaseLease(g, "w1"); err != nil {
		t.Fatalf("own release: %v", err)
	}
	if st, err := b2.TryClaim(g, "w2", ttl); err != nil || st != sweep.LeaseWon {
		t.Fatalf("claim after release = (%v, %v), want LeaseWon", st, err)
	}
	// A renew of a missing lease recreates it for the caller.
	if err := b2.ReleaseLease(g, "w2"); err != nil {
		t.Fatalf("release: %v", err)
	}
	if ok, err := b2.RenewLease(g, "w2", ttl); err != nil || !ok {
		t.Fatalf("renew of missing lease = (%v, %v), want (true, nil)", ok, err)
	}
	if st, err := b1.TryClaim(g, "w1", ttl); err != nil || st != sweep.LeaseHeld {
		t.Fatalf("claim after recreating renew = (%v, %v), want LeaseHeld", st, err)
	}
}

// testLeaseExpiry pins that an expired lease is reclaimed, not respected.
func testLeaseExpiry(t *testing.T, connect func() sweep.Backend) {
	b1, b2 := connect(), connect()
	defer func() { _ = b1.Close() }()
	defer func() { _ = b2.Close() }()
	const g = "group-exp"
	if st, err := b1.TryClaim(g, "w1", 50*time.Millisecond); err != nil || st != sweep.LeaseWon {
		t.Fatalf("claim = (%v, %v), want LeaseWon", st, err)
	}
	time.Sleep(120 * time.Millisecond)
	if st, err := b2.TryClaim(g, "w2", 30*time.Second); err != nil || st != sweep.LeaseReclaimed {
		t.Fatalf("claim of expired lease = (%v, %v), want LeaseReclaimed", st, err)
	}
}

// testLeaseTTLValidation pins that degenerate TTLs are rejected at the
// backend boundary on every transport.
func testLeaseTTLValidation(t *testing.T, connect func() sweep.Backend) {
	b := connect()
	defer func() { _ = b.Close() }()
	for _, ttl := range []time.Duration{0, -time.Second, sweep.MaxLeaseHorizon + time.Hour} {
		if _, err := b.TryClaim("group-ttl", "w1", ttl); err == nil {
			t.Fatalf("TryClaim accepted ttl %v", ttl)
		}
		if _, err := b.RenewLease("group-ttl", "w1", ttl); err == nil {
			t.Fatalf("RenewLease accepted ttl %v", ttl)
		}
	}
	// The rejected claims must not have left a lease behind.
	if st, err := b.TryClaim("group-ttl", "w2", time.Minute); err != nil || st != sweep.LeaseWon {
		t.Fatalf("claim after rejected TTLs = (%v, %v), want LeaseWon", st, err)
	}
}

// testAdaptiveState pins the adaptive-state publication contract: opaque
// bodies, atomic replacement, absence reported as ok=false.
func testAdaptiveState(t *testing.T, connect func() sweep.Backend) {
	b1, b2 := connect(), connect()
	defer func() { _ = b1.Close() }()
	defer func() { _ = b2.Close() }()
	const g = "group-state"
	if _, ok, err := b1.LoadState(g); err != nil || ok {
		t.Fatalf("LoadState on fresh medium = (ok=%v, %v), want (false, nil)", ok, err)
	}
	first := []byte(`{"version":1,"group":"group-state","seeds":2}` + "\n")
	if err := b1.PublishState(g, "w1", first); err != nil {
		t.Fatalf("publish: %v", err)
	}
	got, ok, err := b2.LoadState(g)
	if err != nil || !ok {
		t.Fatalf("LoadState after publish = (ok=%v, %v)", ok, err)
	}
	if string(got) != string(first) {
		t.Fatalf("state round trip: got %q want %q", got, first)
	}
	second := []byte(`{"version":1,"group":"group-state","seeds":5}` + "\n")
	if err := b2.PublishState(g, "w2", second); err != nil {
		t.Fatalf("republish: %v", err)
	}
	if got, _, _ := b1.LoadState(g); string(got) != string(second) {
		t.Fatalf("republish did not replace: got %q want %q", got, second)
	}
	// Other groups stay independent.
	if _, ok, _ := b1.LoadState("group-other"); ok {
		t.Fatal("LoadState leaked state across groups")
	}
}

// testTwoWorkerByteIdentical is the determinism acceptance test through the
// backend under test: two workers drain one shared medium concurrently and
// each must return the complete result set, bit-identical to a plain engine
// run, with every cell executed exactly once fleet-wide.
func testTwoWorkerByteIdentical(t *testing.T, connect func() sweep.Backend) {
	cells := Cells(2)
	ref := engine.Run(cells, engine.Options{})

	const workers = 2
	outs := make([][]engine.CellResult, workers)
	stats := make([]sweep.ShardStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := sweep.OpenBackend(connect())
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer st.Close()
			sh := sweep.Shard{Owner: fmt.Sprintf("w%d", w), TTL: 5 * time.Second, Poll: 10 * time.Millisecond}
			outs[w], stats[w] = sweep.RunSharded(cells, sweep.Options{Store: st, Cache: workload.NewCache()}, sh)
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	executed := 0
	for w := 0; w < workers; w++ {
		if len(outs[w]) != len(cells) {
			t.Fatalf("worker %d returned %d results, want %d", w, len(outs[w]), len(cells))
		}
		for i := range cells {
			SameResult(t, fmt.Sprintf("worker %d cell %d", w, i), outs[w][i], ref[i])
		}
		executed += stats[w].Executed
	}
	if executed != len(cells) {
		t.Fatalf("fleet executed %d cells, want exactly %d", executed, len(cells))
	}
}

// testTwoWorkerAdaptive runs the cooperative adaptive protocol through the
// backend under test, with a corrupt adaptive-state record pre-published for
// one group: both workers must ignore it (recompute from the record log) and
// return tables byte-identical to a single-process adaptive run.
func testTwoWorkerAdaptive(t *testing.T, connect func() sweep.Backend) {
	cells := Cells(2)
	ad := sweep.Adaptive{TargetCI: 1e-9, MaxSeeds: 3}
	refRes, refSeeds, _ := sweep.RunAdaptive(cells, sweep.Options{Cache: workload.NewCache()}, ad)

	vandal := connect()
	if err := vandal.PublishState(groupKey(cells[0]), "vandal", []byte(`{"version":1,"gro`)); err != nil {
		t.Fatalf("pre-publishing torn state: %v", err)
	}
	_ = vandal.Close()

	const workers = 2
	outs := make([][]engine.CellResult, workers)
	seeds := make([][]sweep.GroupSeeds, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := sweep.OpenBackend(connect())
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer st.Close()
			sh := sweep.Shard{Owner: fmt.Sprintf("w%d", w), TTL: 5 * time.Second, Poll: 10 * time.Millisecond}
			outs[w], seeds[w], _ = sweep.RunAdaptiveSharded(cells, sweep.Options{Store: st, Cache: workload.NewCache()}, ad, sh)
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for w := 0; w < workers; w++ {
		if len(outs[w]) != len(refRes) {
			t.Fatalf("worker %d returned %d results, want %d", w, len(outs[w]), len(refRes))
		}
		for i := range refRes {
			SameResult(t, fmt.Sprintf("worker %d result %d", w, i), outs[w][i], refRes[i])
		}
		if len(seeds[w]) != len(refSeeds) {
			t.Fatalf("worker %d returned %d group seedings, want %d", w, len(seeds[w]), len(refSeeds))
		}
		for i, gs := range refSeeds {
			if seeds[w][i] != gs {
				t.Fatalf("worker %d group %d seeding %+v, want %+v", w, i, seeds[w][i], gs)
			}
		}
	}
}
