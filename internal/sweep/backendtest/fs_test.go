package backendtest

import (
	"testing"

	"github.com/fatgather/fatgather/internal/sweep"
)

// TestFSBackendConformance proves the reference filesystem implementation
// against the contract it defined: one temp sweep directory per subtest, one
// FSBackend view per connector call (two calls = two workers sharing the
// directory, exactly like two OpenShared processes).
func TestFSBackendConformance(t *testing.T) {
	Run(t, func(t *testing.T) func() sweep.Backend {
		dir := t.TempDir()
		return func() sweep.Backend {
			b, err := sweep.NewFSBackend(dir)
			if err != nil {
				t.Fatalf("NewFSBackend(%s): %v", dir, err)
			}
			return b
		}
	})
}
