package sweep

import (
	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/metrics"
	"github.com/fatgather/fatgather/internal/obs"
	"github.com/fatgather/fatgather/internal/sim"
)

// Telemetry (internal/obs): open/closed group gauges, write-only per the
// one-way contract — the stopping rule consults only its own samples. The
// per-group CI state feeding /progress flows through obs.SweepAdaptive.
var (
	obsAdaptiveOpen   = obs.NewGauge("fatgather_sweep_adaptive_groups_open")
	obsAdaptiveClosed = obs.NewGauge("fatgather_sweep_adaptive_groups_closed")
)

// DefaultMaxSeeds is the per-group seed cap when Adaptive.MaxSeeds is unset.
const DefaultMaxSeeds = 32

// Adaptive configures adaptive seed scheduling: after the initial replicas,
// every cell group (same cell modulo seeds) keeps receiving one extra seed
// replica per round until the 95% confidence interval half-width of Metric
// over the group's successful runs falls to TargetCI or below, or the group
// reaches MaxSeeds replicas.
type Adaptive struct {
	// TargetCI is the 95% CI half-width to reach (same unit as Metric).
	TargetCI float64
	// MaxSeeds caps the replicas per group (default DefaultMaxSeeds). The
	// initial replicas count against the cap.
	MaxSeeds int
	// Metric extracts the observable whose confidence interval is tracked;
	// nil means the event count (the cost measure every experiment reports).
	Metric func(sim.Result) float64
}

func (a Adaptive) withDefaults() Adaptive {
	if a.MaxSeeds <= 0 {
		a.MaxSeeds = DefaultMaxSeeds
	}
	if a.Metric == nil {
		a.Metric = func(r sim.Result) float64 { return float64(r.Events) }
	}
	return a
}

// stopAt is the adaptive stopping rule, shared by the single-process and the
// sharded scheduler so both walk the exact same deterministic trajectory: a
// group stops growing after seeds replicas when it hit the cap, when the CI
// over the successful runs' metric values reached the target, or when every
// replica so far failed to run (more seeds cannot tighten an interval that
// has no observations). values must be the metric values of the successful
// runs among exactly the first seeds replicas.
func (a Adaptive) stopAt(seeds int, values []float64) bool {
	if seeds >= a.MaxSeeds {
		return true
	}
	if metrics.CI95HalfWidth(values) <= a.TargetCI {
		return true
	}
	return len(values) == 0 && seeds >= 2
}

// nextReplica derives a group's next seed replica from its sample cell and
// the maximum workload seed consumed so far: workload seed maxSeed+1, and the
// adversary seed derived exactly like engine.Batch.Cells does. The full
// adversary label (not the bare name) feeds the seed stream: fault variants
// of one strategy must draw decorrelated schedules, and for fault-free cells
// label == name so historic replica seeds are preserved.
func nextReplica(sample engine.Cell, maxSeed int64) engine.Cell {
	next := sample
	next.WorkloadSeed = maxSeed + 1
	next.AdversarySeed = engine.DeriveSeed(next.WorkloadSeed,
		engine.StreamOf(string(next.Workload), next.AdversaryLabel(), next.AlgorithmName()),
		int64(next.N))
	return next
}

// GroupSeeds records what adaptive scheduling did to one cell group.
type GroupSeeds struct {
	// Key is the group key: the cell key with both seeds zeroed.
	Key string
	// Seeds is the number of seed replicas the group actually consumed.
	Seeds int
	// HalfWidth is the final 95% CI half-width of the metric over the
	// group's successful runs (+Inf with fewer than two successes).
	HalfWidth float64
	// Converged reports whether the group reached the target (false means it
	// stopped at the seed cap instead).
	Converged bool
}

// groupKeyOf collapses a cell to its group identity: the cell key with the
// seed coordinates removed, so replicas of the same grid point share a group.
func groupKeyOf(c engine.Cell) string {
	c.WorkloadSeed = 0
	c.AdversarySeed = 0
	return c.Key()
}

// adaptiveGroup is the running state of one cell group.
type adaptiveGroup struct {
	key     string
	sample  engine.Cell
	values  []float64
	seeds   int
	maxSeed int64
}

// RunAdaptive runs the cells with adaptive seed scheduling on top of the
// resumable store. The input cells are the initial replicas; extra replicas
// are derived deterministically (workload seed maxSeed+1, adversary seed via
// engine.DeriveSeed, exactly like Batch.Cells), so an adaptive sweep is as
// reproducible — and as resumable — as a fixed one. Results are returned in
// deterministic order: the input cells first, then each round's extra
// replicas in group order; OnResult streams them in that same order.
func RunAdaptive(cells []engine.Cell, opts Options, ad Adaptive) ([]engine.CellResult, []GroupSeeds, Stats) {
	ad = ad.withDefaults()
	var (
		all     []engine.CellResult
		stats   Stats
		order   []string
		groups  = make(map[string]*adaptiveGroup)
		pending = cells
	)
	observe := func(r engine.CellResult) {
		key := groupKeyOf(r.Cell)
		g, ok := groups[key]
		if !ok {
			g = &adaptiveGroup{key: key, sample: r.Cell}
			groups[key] = g
			order = append(order, key)
		}
		g.seeds++
		if r.Cell.WorkloadSeed > g.maxSeed {
			g.maxSeed = r.Cell.WorkloadSeed
		}
		if r.Err == nil {
			g.values = append(g.values, ad.Metric(r.Result))
		}
	}
	userOnResult := opts.OnResult
	offset := 0
	if userOnResult != nil {
		opts.OnResult = func(r engine.CellResult) {
			r.Index += offset // round-local to global
			userOnResult(r)
		}
	}
	for len(pending) > 0 {
		offset = len(all)
		res, st := Run(pending, opts)
		stats.Executed += st.Executed
		stats.Restored += st.Restored
		stats.AppendErrs += st.AppendErrs
		for i := range res {
			res[i].Index = len(all) + i // re-index from round-local to global
			observe(res[i])
		}
		all = append(all, res...)
		// The group set grows as rounds discover cells; keep the live total
		// current for /progress.
		obs.SweepGroups(len(order))

		pending = pending[:0:0]
		open := 0
		for _, key := range order {
			g := groups[key]
			hw := metrics.CI95HalfWidth(g.values)
			if ad.stopAt(g.seeds, g.values) {
				obs.SweepAdaptive(key, g.seeds, hw, true)
				continue
			}
			open++
			obs.SweepAdaptive(key, g.seeds, hw, false)
			pending = append(pending, nextReplica(g.sample, g.maxSeed))
		}
		obsAdaptiveOpen.Set(float64(open))
		obsAdaptiveClosed.Set(float64(len(order) - open))
	}
	infos := make([]GroupSeeds, 0, len(order))
	for _, key := range order {
		g := groups[key]
		hw := metrics.CI95HalfWidth(g.values)
		infos = append(infos, GroupSeeds{
			Key:       key,
			Seeds:     g.seeds,
			HalfWidth: hw,
			Converged: hw <= ad.TargetCI,
		})
	}
	return all, infos, stats
}
