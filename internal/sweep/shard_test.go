package sweep

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fatgather/fatgather/internal/engine"
)

// fastShard is a Shard tuned for tests: long enough TTL that healthy workers
// never lose a lease, short enough poll that waiting is cheap.
func fastShard(owner string) Shard {
	return Shard{Owner: owner, TTL: 5 * time.Second, Poll: 10 * time.Millisecond}
}

// writeStaleLease plants an expired lease for a cell group, as a worker
// killed mid-group would leave behind.
func writeStaleLease(t *testing.T, dir string, cell engine.Cell, owner string) string {
	t.Helper()
	m := newLeaseManager(dir, Shard{Owner: owner, TTL: time.Minute})
	m.now = func() time.Time { return time.Now().Add(-2 * time.Minute) }
	l, reclaimed, err := m.claim(groupKeyOf(cell))
	if err != nil || l == nil {
		t.Fatalf("planting stale lease: %v (lease %v)", err, l)
	}
	if reclaimed {
		t.Fatal("planting stale lease reclaimed an existing one")
	}
	return l.path
}

// TestRunShardedTwoConcurrentWorkers is the acceptance test for cooperative
// sharding: two workers drain one sweep directory concurrently, and each
// returns the complete result set, bit-identical to a plain engine run —
// while every cell is executed exactly once across the pair.
func TestRunShardedTwoConcurrentWorkers(t *testing.T) {
	cells := smallCells(2)
	ref := engine.Run(cells, engine.Options{})

	dir := t.TempDir()
	const workers = 2
	outs := make([][]engine.CellResult, workers)
	stats := make([]ShardStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := OpenShared(dir)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer st.Close()
			outs[w], stats[w] = RunSharded(cells, Options{Store: st}, fastShard(fmt.Sprintf("w%d", w)))
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	executed := 0
	for w := 0; w < workers; w++ {
		if len(outs[w]) != len(cells) {
			t.Fatalf("worker %d returned %d results, want %d", w, len(outs[w]), len(cells))
		}
		for i := range cells {
			if outs[w][i].Index != i {
				t.Fatalf("worker %d result %d has index %d", w, i, outs[w][i].Index)
			}
			sameResult(t, fmt.Sprintf("worker %d cell %d", w, i), outs[w][i], ref[i])
		}
		executed += stats[w].Executed
	}
	// The leases make the split exact: every cell ran exactly once in the
	// whole fleet, and the store holds each record exactly once.
	if executed != len(cells) {
		t.Fatalf("fleet executed %d cells, want exactly %d", executed, len(cells))
	}
	data, err := os.ReadFile(filepath.Join(dir, resultsFile))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != len(cells) {
		t.Fatalf("store holds %d records, want %d", got, len(cells))
	}
	// All leases were released.
	entries, err := os.ReadDir(filepath.Join(dir, leasesDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d lease files left behind", len(entries))
	}
}

// TestRunShardedReclaimsStaleLease simulates a worker killed mid-sweep: the
// store holds a prefix of the records and an expired lease guards one of the
// unfinished groups. A fresh worker must take the lease over, finish the
// sweep, and return results identical to an uninterrupted run.
func TestRunShardedReclaimsStaleLease(t *testing.T) {
	cells := smallCells(1)
	ref := engine.Run(cells, engine.Options{})

	dir := t.TempDir()
	st, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The dead worker completed the first third of the cells...
	k := len(cells) / 3
	for i := 0; i < k; i++ {
		if err := st.Append(cells[i].Key(), ref[i]); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	// ...and died holding the lease on the last cell's group.
	writeStaleLease(t, dir, cells[len(cells)-1], "dead-worker")

	re, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, stats := RunSharded(cells, Options{Store: re}, fastShard("survivor"))
	if stats.LeasesReclaimed != 1 {
		t.Fatalf("LeasesReclaimed = %d, want 1", stats.LeasesReclaimed)
	}
	if stats.Executed != len(cells)-k {
		t.Fatalf("Executed = %d, want %d (the dead worker's unfinished cells)", stats.Executed, len(cells)-k)
	}
	if stats.Restored != k {
		t.Fatalf("Restored = %d, want %d", stats.Restored, k)
	}
	for i := range cells {
		sameResult(t, fmt.Sprintf("cell %d", i), res[i], ref[i])
	}
}

// TestRunShardedWaitsForFreshForeignLease pins the skip-then-merge path: a
// group freshly leased by a live peer is not re-run; the worker waits, picks
// the peer's records up from the shared store once they land, and still
// returns the full result set.
func TestRunShardedWaitsForFreshForeignLease(t *testing.T) {
	cells := smallCells(1)
	ref := engine.Run(cells, engine.Options{})

	dir := t.TempDir()
	peerGroup := groupKeyOf(cells[0])
	var peerIdx []int
	for i, c := range cells {
		if groupKeyOf(c) == peerGroup {
			peerIdx = append(peerIdx, i)
		}
	}
	// The "peer": holds a fresh lease on cells[0]'s group, finishes it after
	// a delay, then releases.
	m := newLeaseManager(dir, Shard{Owner: "peer", TTL: time.Minute})
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	l, _, err := m.claim(peerGroup)
	if err != nil || l == nil {
		t.Fatalf("peer claim failed: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(100 * time.Millisecond)
		st, err := OpenShared(dir)
		if err != nil {
			t.Errorf("peer: %v", err)
			return
		}
		defer st.Close()
		for _, i := range peerIdx {
			if err := st.Append(cells[i].Key(), ref[i]); err != nil {
				t.Errorf("peer append: %v", err)
			}
		}
		l.release()
	}()

	st, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, stats := RunSharded(cells, Options{Store: st}, fastShard("waiter"))
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if stats.Restored != len(peerIdx) {
		t.Fatalf("Restored = %d, want %d (the peer's group)", stats.Restored, len(peerIdx))
	}
	if stats.Executed != len(cells)-len(peerIdx) {
		t.Fatalf("Executed = %d, want %d", stats.Executed, len(cells)-len(peerIdx))
	}
	if stats.GroupsSkipped < 1 {
		t.Fatalf("GroupsSkipped = %d, want >= 1", stats.GroupsSkipped)
	}
	for i := range cells {
		sameResult(t, fmt.Sprintf("cell %d", i), res[i], ref[i])
	}
}

// TestLeaseContention pins the O_EXCL claim: many workers racing for the same
// cell group yield exactly one holder.
func TestLeaseContention(t *testing.T) {
	dir := t.TempDir()
	const workers = 8
	var won int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := newLeaseManager(dir, Shard{Owner: fmt.Sprintf("w%d", w), TTL: time.Minute})
			l, reclaimed, err := m.claim("contested-group")
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			if reclaimed {
				t.Errorf("worker %d reclaimed a lease that was never stale", w)
			}
			if l != nil {
				mu.Lock()
				won++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if won != 1 {
		t.Fatalf("%d workers won the contested lease, want exactly 1", won)
	}
}

// TestLeaseHeartbeatKeepsLeaseFresh exercises renewal under -race: while the
// heartbeat runs, a foreign worker cannot claim the group even long after the
// original TTL; once the heartbeat stops, the lease goes stale and is
// reclaimed.
func TestLeaseHeartbeatKeepsLeaseFresh(t *testing.T) {
	dir := t.TempDir()
	const ttl = 300 * time.Millisecond
	holder := newLeaseManager(dir, Shard{Owner: "holder", TTL: ttl})
	l, _, err := holder.claim("hb-group")
	if err != nil || l == nil {
		t.Fatalf("claim failed: %v", err)
	}
	stop := l.heartbeat(ttl / 6)

	rival := newLeaseManager(dir, Shard{Owner: "rival", TTL: ttl})
	deadline := time.Now().Add(4 * ttl) // far beyond the unrenewed expiry
	for time.Now().Before(deadline) {
		got, reclaimed, err := rival.claim("hb-group")
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			t.Fatalf("rival claimed a heartbeating lease (reclaimed=%v)", reclaimed)
		}
		time.Sleep(ttl / 10)
	}
	stop()

	// Without renewals the lease expires and the rival takes it over.
	time.Sleep(ttl + ttl/2)
	got, reclaimed, err := rival.claim("hb-group")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || !reclaimed {
		t.Fatalf("rival did not reclaim the expired lease (lease %v, reclaimed %v)", got, reclaimed)
	}
}

// TestLeaseCorruptFileIsReclaimed treats a torn lease file (a worker killed
// mid-write) as stale.
func TestLeaseCorruptFileIsReclaimed(t *testing.T) {
	dir := t.TempDir()
	m := newLeaseManager(dir, Shard{Owner: "w", TTL: time.Minute})
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(m.pathFor("g"), []byte(`{"owner":"dead","exp`), 0o644); err != nil {
		t.Fatal(err)
	}
	l, reclaimed, err := m.claim("g")
	if err != nil {
		t.Fatal(err)
	}
	if l == nil || !reclaimed {
		t.Fatalf("corrupt lease not reclaimed (lease %v, reclaimed %v)", l, reclaimed)
	}
}

// TestRunShardedStaticPartition pins static mode without a store: the two
// shards run disjoint, complementary subsets, skipped cells carry
// ErrNotClaimed, and the union matches the reference run.
func TestRunShardedStaticPartition(t *testing.T) {
	cells := smallCells(1)
	ref := engine.Run(cells, engine.Options{})

	covered := make([]int, len(cells))
	for idx := 0; idx < 2; idx++ {
		res, stats := RunSharded(cells, Options{}, Shard{Shards: 2, Index: idx})
		if stats.Restored != 0 {
			t.Fatalf("shard %d restored %d cells without a store", idx, stats.Restored)
		}
		for i := range cells {
			if errors.Is(res[i].Err, ErrNotClaimed) {
				continue
			}
			covered[i]++
			sameResult(t, fmt.Sprintf("shard %d cell %d", idx, i), res[i], ref[i])
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("cell %d covered by %d shards, want exactly 1", i, c)
		}
	}
}

// TestRunShardedStaticWithStoreMerges pins the static+store composition: a
// second shard run over the same directory restores the first shard's cells
// and completes the rest, ending with the full result set.
func TestRunShardedStaticWithStoreMerges(t *testing.T) {
	cells := smallCells(1)
	ref := engine.Run(cells, engine.Options{})
	dir := t.TempDir()

	st0, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, stats0 := RunSharded(cells, Options{Store: st0}, Shard{Shards: 2, Index: 0})
	st0.Close()
	if stats0.Executed == 0 || stats0.Executed == len(cells) {
		t.Fatalf("shard 0 executed %d of %d cells, want a strict subset", stats0.Executed, len(cells))
	}

	// Shard 1 (lease mode) waits for shard 0's share — which is already in
	// the store — and runs only its own.
	st1, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	res, stats1 := RunSharded(cells, Options{Store: st1}, Shard{Owner: "b", Shards: 2, Index: 1, TTL: 5 * time.Second, Poll: 5 * time.Millisecond})
	if stats1.Executed != len(cells)-stats0.Executed {
		t.Fatalf("shard 1 executed %d cells, want %d", stats1.Executed, len(cells)-stats0.Executed)
	}
	for i := range cells {
		sameResult(t, fmt.Sprintf("cell %d", i), res[i], ref[i])
	}
}

// TestRunShardedOnResultStreamsInOrder pins the collector contract in sharded
// mode: OnResult fires once per cell, in index order, after the drain.
func TestRunShardedOnResultStreamsInOrder(t *testing.T) {
	cells := smallCells(1)
	dir := t.TempDir()
	st, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var seen []int
	RunSharded(cells, Options{Store: st, OnResult: func(r engine.CellResult) {
		seen = append(seen, r.Index)
	}}, fastShard("solo"))
	if len(seen) != len(cells) {
		t.Fatalf("OnResult fired %d times, want %d", len(seen), len(cells))
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("OnResult order broken at %d: got index %d", i, idx)
		}
	}
}

// TestLeaseReclaimContention pins the atomic take-over: many workers racing
// to reclaim the same stale lease yield exactly one new holder — a
// remove+recreate reclaim would let a slow racer delete the winner's fresh
// lease and produce two holders.
func TestLeaseReclaimContention(t *testing.T) {
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		writeStaleLease(t, dir, engine.Cell{Workload: "clustered", N: 3}, "dead")

		const workers = 4
		winners := make([]*lease, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				m := newLeaseManager(dir, Shard{Owner: fmt.Sprintf("w%d", w), TTL: time.Minute})
				l, _, err := m.claim(groupKeyOf(engine.Cell{Workload: "clustered", N: 3}))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				winners[w] = l
			}(w)
		}
		wg.Wait()
		var won []*lease
		for _, l := range winners {
			if l != nil {
				won = append(won, l)
			}
		}
		if len(won) != 1 {
			t.Fatalf("round %d: %d workers hold the reclaimed lease, want exactly 1", round, len(won))
		}
		// The lease on disk belongs to the winner.
		rec, err := readLease(won[0].path)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if rec.Owner != won[0].m.owner {
			t.Fatalf("round %d: lease on disk owned by %q, winner is %q", round, rec.Owner, won[0].m.owner)
		}
	}
}
