package sweep

import (
	"os"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/workload"
)

// TestRunKillAndResume is the core resume contract at the result level: a
// sweep killed midway (its store holds a prefix of the records, the last one
// torn mid-write) resumes to results identical to an uninterrupted run while
// executing strictly fewer cells. The table-level byte-identity acceptance
// test lives in internal/experiments.
func TestRunKillAndResume(t *testing.T) {
	cells := smallCells(2)
	reference := engine.Run(cells, engine.Options{})

	// Uninterrupted sweep with a store.
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	full, stats := Run(cells, Options{Store: st, Cache: workload.NewCache()})
	if stats.Executed != len(cells) || stats.Restored != 0 {
		t.Fatalf("fresh run stats %+v", stats)
	}
	st.Close()
	for i := range cells {
		sameResult(t, "fresh vs engine", full[i], reference[i])
	}

	// Kill the sweep midway: keep the first half of the records and tear the
	// next one in the middle of its line, as a SIGKILL during a write would.
	data, err := os.ReadFile(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	keep := len(cells) / 2
	partial := strings.Join(lines[:keep], "") + lines[keep][:len(lines[keep])/2]
	if err := os.WriteFile(st.Path(), []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: only the missing cells run, and the merged results (and their
	// streaming order) are identical to the uninterrupted run.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var streamed []int
	resumed, stats := Run(cells, Options{
		Store: re,
		Cache: workload.NewCache(),
		OnResult: func(r engine.CellResult) {
			streamed = append(streamed, r.Index)
		},
	})
	if stats.Restored != keep {
		t.Fatalf("resumed run restored %d cells, want %d", stats.Restored, keep)
	}
	if stats.Executed >= len(cells) {
		t.Fatalf("resumed run executed %d cells, want strictly fewer than %d", stats.Executed, len(cells))
	}
	if stats.Executed+stats.Restored != len(cells) {
		t.Fatalf("stats don't cover the batch: %+v", stats)
	}
	for i := range cells {
		sameResult(t, cells[i].Key(), resumed[i], reference[i])
	}
	if len(streamed) != len(cells) {
		t.Fatalf("OnResult called %d times for %d cells", len(streamed), len(cells))
	}
	for i, idx := range streamed {
		if idx != i {
			t.Fatalf("OnResult order %v not strictly increasing", streamed)
		}
	}
	// Everything is checkpointed again after the resume.
	if re.Done() != len(cells) {
		t.Fatalf("store holds %d cells after resume, want %d", re.Done(), len(cells))
	}
}

func TestRunWithoutStoreMatchesEngine(t *testing.T) {
	cells := smallCells(1)
	want := engine.Run(cells, engine.Options{})
	got, stats := Run(cells, Options{})
	if stats.Executed != len(cells) || stats.Restored != 0 {
		t.Fatalf("stats %+v", stats)
	}
	for i := range cells {
		sameResult(t, cells[i].Key(), got[i], want[i])
	}
}

// TestRunWorkloadCacheHits proves the memoizing cache actually deduplicates
// generation across the adversary axis (same kind, n, seed in every group)
// without changing results.
func TestRunWorkloadCacheHits(t *testing.T) {
	cells := engine.Batch{
		Workloads:   []workload.Kind{workload.KindClustered},
		Ns:          []int{4},
		Adversaries: []string{"random-async", "stop-happy", "fair"},
		Seeds:       2,
		MaxEvents:   300,
	}.Cells()
	want := engine.Run(cells, engine.Options{})

	cache := workload.NewCache()
	got, _ := Run(cells, Options{Cache: cache})
	for i := range cells {
		sameResult(t, cells[i].Key(), got[i], want[i])
	}
	hits, misses := cache.Stats()
	if misses != 2 { // 2 distinct (kind, n, seed) triples
		t.Fatalf("cache generated %d placements, want 2", misses)
	}
	if hits != int64(len(cells))-2 {
		t.Fatalf("cache hits = %d, want %d", hits, len(cells)-2)
	}
}

func TestRunCheckpointsInvalidCells(t *testing.T) {
	cells := []engine.Cell{
		{Workload: workload.KindClustered, N: 3, WorkloadSeed: 1, MaxEvents: 300},
		{Workload: "bogus", N: 3, MaxEvents: 300},
	}
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Run(cells, Options{Store: st})
	if res[1].Err == nil {
		t.Fatal("invalid cell should error")
	}
	st.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	resumed, stats := Run(cells, Options{Store: re})
	if stats.Executed != 0 || stats.Restored != 2 {
		t.Fatalf("resume stats %+v, want everything restored", stats)
	}
	if resumed[1].Err == nil || !strings.Contains(resumed[1].Err.Error(), "bogus") {
		t.Fatalf("restored error lost its message: %v", resumed[1].Err)
	}
}
