package sweep

import (
	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/obs"
	"github.com/fatgather/fatgather/internal/workload"
)

// Telemetry (internal/obs): write-only handles, one-way contract — the
// resumable layer counts what it executed vs restored but never reads the
// counters back.
var (
	obsCellsExecuted = obs.NewCounter("fatgather_sweep_cells_executed_total")
	obsCellsRestored = obs.NewCounter("fatgather_sweep_cells_restored_total")
)

// Options configures a resumable sweep run.
type Options struct {
	// Engine is the underlying engine configuration (worker count, workload
	// hook). Its OnResult is ignored — use Options.OnResult, which also sees
	// the cells restored from the store.
	Engine engine.Options
	// Store, when non-nil, is consulted for completed cells before running
	// and receives every fresh result as workers finish.
	Store *Store
	// Cache, when non-nil, memoizes workload generation per (kind, n, seed)
	// for the cells that actually run (ignored when Engine.Workloads is set).
	Cache *workload.Cache
	// OnResult, when non-nil, is invoked once per cell in strictly increasing
	// Index order — restored and freshly computed cells interleaved exactly as
	// an uninterrupted run would stream them. It runs on the calling
	// goroutine.
	OnResult func(engine.CellResult)
}

// Stats reports what a resumable run actually did.
type Stats struct {
	// Executed is the number of cells that ran in this process.
	Executed int
	// Restored is the number of cells served from the store.
	Restored int
	// AppendErrs counts results that could not be checkpointed (the run
	// continues; those cells simply re-run on resume).
	AppendErrs int
}

// Run executes the cells like engine.Run, but consults the store first: cells
// whose key is already checkpointed are restored instead of re-run, and every
// fresh result is streamed to the store as its worker finishes. The returned
// results (and the OnResult stream) are identical to an uninterrupted
// engine.Run — byte-identical tables — while a resumed run executes only the
// missing cells.
func Run(cells []engine.Cell, opts Options) ([]engine.CellResult, Stats) {
	n := len(cells)
	results := make([]engine.CellResult, n)
	var stats Stats

	keys := make([]string, n)
	missing := make([]int, 0, n)
	for i, c := range cells {
		keys[i] = c.Key()
		if opts.Store != nil {
			if st, ok := opts.Store.Lookup(keys[i]); ok {
				results[i] = engine.CellResult{
					Index:   i,
					Cell:    c,
					Result:  st.Result,
					Err:     st.Err,
					Elapsed: st.Elapsed,
				}
				stats.Restored++
				continue
			}
		}
		missing = append(missing, i)
	}
	stats.Executed = len(missing)
	obsCellsExecuted.Add(int64(stats.Executed))
	obsCellsRestored.Add(int64(stats.Restored))
	obs.SweepCells(int64(stats.Executed), int64(stats.Restored))

	eopts := opts.Engine
	if eopts.Workloads == nil && opts.Cache != nil {
		eopts.Workloads = opts.Cache.Generate
	}

	// Stream restored and fresh results interleaved in global cell order:
	// everything before a fresh cell is either restored (pre-filled above) or
	// an earlier fresh cell (already streamed, since the engine reports the
	// missing subset in increasing order).
	emitted := 0
	emitThrough := func(limit int) {
		for ; emitted < limit; emitted++ {
			if opts.OnResult != nil {
				opts.OnResult(results[emitted])
			}
		}
	}

	sub := make([]engine.Cell, len(missing))
	for k, i := range missing {
		sub[k] = cells[i]
	}
	eopts.OnResult = func(r engine.CellResult) {
		g := missing[r.Index]
		r.Index = g
		results[g] = r
		if opts.Store != nil {
			if err := opts.Store.Append(keys[g], r); err != nil {
				stats.AppendErrs++
			}
		}
		emitThrough(g + 1)
	}
	engine.Run(sub, eopts)
	emitThrough(n)
	return results, stats
}
