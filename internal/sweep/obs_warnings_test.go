package sweep

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/obs"
)

// TestStoreWarningsEmitTelemetry pins the load-time warning telemetry: a
// corrupt store line and a schema/engine mismatch must increment their obs
// counters and emit serialized logfmt warn lines the moment the store is
// opened — so warnings are visible on resume, merge, and read-only scans, not
// only to callers that remember to drain Warnings(). (Tests may read obs
// counters; the obsread one-way contract covers only shipped sources.)
func TestStoreWarningsEmitTelemetry(t *testing.T) {
	cells := smallCells(1)
	results := engine.Run(cells[:2], engine.Options{})
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if err := st.Append(cells[i].Key(), r); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Corrupt the first record's JSON.
	data, err := os.ReadFile(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[0] = "{\"schema\":garbage\n"
	if err := os.WriteFile(st.Path(), []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	restore := obs.SetDefaultOutput(&log)
	defer restore()

	before := obsCorruptLines.Value()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
	if got := obsCorruptLines.Value(); got != before+1 {
		t.Fatalf("corrupt-line counter went %d -> %d, want +1", before, got)
	}
	if out := log.String(); !strings.Contains(out, "level=warn component=sweep") ||
		!strings.Contains(out, "corrupt") {
		t.Fatalf("corrupt line produced no serialized warn line:\n%s", out)
	}

	// Rebuild a clean store, then age its engine version: the mismatch path
	// has its own counter.
	dir2 := t.TempDir()
	st2, err := Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Append(cells[0].Key(), results[0]); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	data, err = os.ReadFile(st2.Path())
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), engine.Version, "fatgather-engine/0", 1)
	if mutated == string(data) {
		t.Fatal("test setup: engine version not found in store file")
	}
	if err := os.WriteFile(st2.Path(), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	log.Reset()
	before = obsSchemaMismatch.Value()
	re2, err := Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	re2.Close()
	if got := obsSchemaMismatch.Value(); got != before+1 {
		t.Fatalf("schema-mismatch counter went %d -> %d, want +1", before, got)
	}
	if out := log.String(); !strings.Contains(out, "level=warn component=sweep") ||
		!strings.Contains(out, "mismatch") {
		t.Fatalf("schema mismatch produced no serialized warn line:\n%s", out)
	}
}
