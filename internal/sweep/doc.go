// Package sweep is the persistent, resumable and shardable layer over the
// batch engine. It provides four building blocks:
//
//   - Store: an append-only JSONL checkpoint of completed cells. Every
//     engine.CellResult streams to disk as its worker finishes, and on
//     restart the completed-cell set is loaded so only the missing cells
//     re-run — with tables byte-identical to an uninterrupted run. See
//     FORMAT.md in this directory for the on-disk record and lease formats.
//   - Run: engine.Run behind the store — restored and fresh results are
//     streamed interleaved in deterministic cell order.
//   - RunAdaptive: adaptive seed scheduling on top of Run — each cell group
//     keeps receiving seed replicas until the 95% confidence interval
//     half-width of its metric is tight enough, or a cap is reached.
//   - RunSharded: multi-process (or multi-host, over a shared filesystem)
//     sweeps. Each worker claims cell groups through lease files in the
//     sweep directory (O_EXCL create with owner id and expiry timestamp),
//     heartbeats its lease while running, skips groups completed in the
//     store or freshly leased by peers, and reclaims expired leases so a
//     killed worker's cells are re-run. Cooperating workers drain the sweep
//     and every one of them returns the complete result set, byte-identical
//     to a single-process run. With Shard.Steal, a worker that drains its
//     static share claims unclaimed or expired tail groups outside it
//     instead of idling.
//   - RunAdaptiveSharded: RunAdaptive across a cooperating fleet. The
//     adaptive trajectory of a cell group is a deterministic function of its
//     stored per-replica results, so any worker can claim a group, run its
//     next seed block, and re-evaluate the stopping rule against the merged
//     cross-worker history; per-group adaptive-state records (seeds
//     consumed, CI half-width, open/closed) are published next to the leases
//     with the same atomic discipline. Every worker converges on identical
//     per-group seed counts and the exact result order RunAdaptive produces.
//
// Correctness never depends on lease arbitration: records are keyed by the
// cell's full identity and are bit-identical no matter which worker produced
// them, so a lost lease race can at worst duplicate work. The workload cache
// hook (Options.Cache) memoizes placement generation per (kind, n, seed)
// across all of these run modes.
package sweep
