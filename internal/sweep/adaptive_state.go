package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// AdaptiveStateVersion is the version of the adaptive-state record layout.
// Records with a different version are ignored (the reader recomputes the
// state from the result store instead), never rewritten by a reader.
const AdaptiveStateVersion = 1

// adaptiveDir is the subdirectory of a sweep directory that holds per-group
// adaptive-state records.
const adaptiveDir = "adaptive"

// adaptiveState is the JSON body of one per-group adaptive-state record: the
// published progress of adaptive seed scheduling on one cell group — seeds
// consumed, the running confidence interval, and whether the group is closed
// — so anything watching a fleet (operators, tests, the CI smoke job) can
// see the sweep's shape without replaying the CI evaluation against the
// whole result store.
//
// The record is a publication of state that is always recomputable from the
// result store (the store is the ground truth; the adaptive schedule is a
// deterministic function of the stored per-seed results), and the workers
// themselves always recompute rather than read records back — which is also
// what makes stores written before adaptive sharding existed (no adaptive/
// directory at all) resume cleanly, and why a missing, torn or
// version-mismatched record is never an error.
type adaptiveState struct {
	// Version is the record layout version (AdaptiveStateVersion).
	Version int `json:"version"`
	// Engine is the engine semantics version that produced the underlying
	// results; a mismatch invalidates the record like it invalidates records
	// in the result store.
	Engine string `json:"engine"`
	// Group is the cell-group key the record covers.
	Group string `json:"group"`
	// Seeds is the number of seed replicas executed so far (the group's
	// final consumption once Closed).
	Seeds int `json:"seeds"`
	// HalfWidth is the 95% CI half-width of the scheduling metric over the
	// group's successful runs after Seeds replicas. Serialized as a string
	// ("+Inf" for fewer than two successes) because JSON has no infinity.
	HalfWidth float64 `json:"-"`
	// Closed reports that the group stopped growing: it either converged to
	// the target or hit the seed cap. Open records are progress reports.
	Closed bool `json:"closed"`
	// Owner is the worker that published the record (informational).
	Owner string `json:"owner,omitempty"`
	// Updated is the publication time in Unix nanoseconds (informational;
	// the protocol never compares it against a clock).
	Updated int64 `json:"updated_unix_ns"`
}

// adaptiveStateJSON is the wire form of adaptiveState: HalfWidth crosses as a
// string so that +Inf (a group with fewer than two successful runs) survives
// the JSON round trip.
type adaptiveStateJSON struct {
	adaptiveState
	HalfWidthStr string `json:"half_width"`
}

func (a adaptiveState) marshal() []byte {
	body, _ := json.Marshal(adaptiveStateJSON{
		adaptiveState: a,
		HalfWidthStr:  fmt.Sprintf("%g", a.HalfWidth),
	})
	return append(body, '\n')
}

// stateSink is the adaptive-state corner of the Backend interface: opaque
// per-group bodies published atomically and read back best-effort. Both
// fsStateDir (the adaptive/ directory of a sweep directory) and every full
// Backend satisfy it.
type stateSink interface {
	PublishState(group, owner string, body []byte) error
	LoadState(group string) (body []byte, ok bool, err error)
}

// fsStateDir publishes adaptive-state records into one adaptive/ directory.
// The discipline mirrors the lease files: a record is materialized in a temp
// file first and enters the directory atomically (hard-link for the first
// publication, rename for updates), so a reader never observes a torn record
// — at worst a stale or missing one, both of which degrade to recomputation
// from the result store.
type fsStateDir struct {
	dir string // <sweep dir>/adaptive
}

// pathFor returns the state file path for a cell group (same hash scheme as
// the lease files, so the two directories line up for debugging).
func (d fsStateDir) pathFor(groupKey string) string {
	return filepath.Join(d.dir, fmt.Sprintf("state-%016x.json", shardHash(groupKey)))
}

// LoadState reads a group's raw state record; a missing or unreadable file
// reports ok == false, never an error.
func (d fsStateDir) LoadState(group string) ([]byte, bool, error) {
	data, err := os.ReadFile(d.pathFor(group))
	if err != nil {
		return nil, false, nil
	}
	return data, true, nil
}

// PublishState atomically replaces a group's state record; the owner keys the
// temp file so concurrent publishers never collide before the atomic step.
func (d fsStateDir) PublishState(group, owner string, body []byte) error {
	return d.publish(group, owner, body)
}

func (d fsStateDir) publish(group, owner string, body []byte) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return fmt.Errorf("sweep: create adaptive dir: %w", err)
	}
	path := d.pathFor(group)
	tmp := fmt.Sprintf("%s.pub.%016x", path, shardHash(owner))
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return fmt.Errorf("sweep: write adaptive state: %w", err)
	}
	// First publication: link into place so a concurrent first publisher
	// cannot be half-overwritten; afterwards, atomic replace.
	if err := os.Link(tmp, path); err == nil {
		os.Remove(tmp)
		return nil
	} else if !errors.Is(err, os.ErrExist) {
		os.Remove(tmp)
		return fmt.Errorf("sweep: publish adaptive state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sweep: publish adaptive state: %w", err)
	}
	return nil
}

// adaptivePublisher reads and atomically publishes adaptive-state records
// through a state sink — the adaptive/ directory of a sweep directory, or
// whatever Backend the sweep coordinates over.
type adaptivePublisher struct {
	fs    fsStateDir // FS path helper; zero when the sink is not a directory
	sink  stateSink
	owner string
}

func newAdaptivePublisher(sweepDir, owner string) *adaptivePublisher {
	d := fsStateDir{dir: filepath.Join(sweepDir, adaptiveDir)}
	return &adaptivePublisher{fs: d, sink: d, owner: owner}
}

// newStatePublisher is newAdaptivePublisher over an arbitrary backend: the
// cooperating adaptive runners publish through the same medium that carries
// the records and leases.
func newStatePublisher(b Backend, owner string) *adaptivePublisher {
	return &adaptivePublisher{sink: b, owner: owner}
}

// pathFor returns the state file path for a cell group of a directory-backed
// publisher (tests inspect and corrupt records through it).
func (p *adaptivePublisher) pathFor(groupKey string) string {
	return p.fs.pathFor(groupKey)
}

// read returns the published state of a cell group. ok is false when the
// record is missing, torn, unparseable, from another layout or engine
// version, or names a different group (a hash collision): all of those mean
// "recompute from the store".
func (p *adaptivePublisher) read(groupKey string, engineVersion string) (adaptiveState, bool) {
	data, ok, err := p.sink.LoadState(groupKey)
	if err != nil || !ok {
		return adaptiveState{}, false
	}
	var wire adaptiveStateJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return adaptiveState{}, false
	}
	st := wire.adaptiveState
	if _, err := fmt.Sscanf(wire.HalfWidthStr, "%g", &st.HalfWidth); err != nil {
		return adaptiveState{}, false
	}
	if st.Version != AdaptiveStateVersion || st.Engine != engineVersion || st.Group != groupKey {
		return adaptiveState{}, false
	}
	return st, true
}

// publish writes a group's state record atomically, replacing any previous
// record. Publication failures are reported but never fatal: the record is an
// accelerator and an observability artifact, the result store alone carries
// correctness.
func (p *adaptivePublisher) publish(st adaptiveState) error {
	st.Owner = p.owner
	//gatherlint:ignore nondetsource Updated is observability metadata on an accelerator record; results never read it
	st.Updated = time.Now().UnixNano()
	return p.sink.PublishState(st.Group, p.owner, st.marshal())
}
