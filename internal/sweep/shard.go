package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/obs"
)

// Telemetry (internal/obs): write-only lease-layer counters, one-way
// contract — arbitration never consults them. The live /progress view is fed
// through the obs.Sweep* write helpers at the claim/run sites below.
var (
	obsLeaseClaims   = obs.NewCounter("fatgather_sweep_lease_claims_total")
	obsLeaseRenewals = obs.NewCounter("fatgather_sweep_lease_renewals_total")
	obsLeaseReclaims = obs.NewCounter("fatgather_sweep_lease_reclaims_total")
	obsGroupSteals   = obs.NewCounter("fatgather_sweep_group_steals_total")
)

// ErrNotClaimed marks a cell that a statically sharded worker skipped because
// the cell's group belongs to another shard and no shared store was available
// to merge the peer's result from. Callers that render partial tables filter
// these results out; in cooperative (lease) mode they never occur, because the
// coordinator drains the store until every cell is complete.
var ErrNotClaimed = errors.New("sweep: cell not claimed by this shard")

// Default lease-layer timing knobs (see Shard).
const (
	// DefaultLeaseTTL is the lease expiry when Shard.TTL is unset. A worker
	// that misses heartbeats for this long is presumed dead and its cell
	// groups are reclaimed by peers.
	DefaultLeaseTTL = 30 * time.Second
	// DefaultPoll is the store re-scan interval when Shard.Poll is unset.
	DefaultPoll = 200 * time.Millisecond
)

// leasesDir is the subdirectory of a sweep directory that holds lease files.
const leasesDir = "leases"

// Shard configures one worker of a multi-process sharded sweep. Two modes
// compose:
//
//   - Cooperative (lease-based): Owner names this worker uniquely, and cell
//     groups are claimed at run time through lease files in the shared sweep
//     directory — whichever worker gets to a group first runs it, dead
//     workers' leases expire and are reclaimed. Requires a Store.
//   - Static: Shards/Index partition the cell groups up front by a stable
//     hash; this worker only ever runs groups with hash%Shards == Index.
//     Works without a shared store (each worker renders its own share).
//
// When both are set, the worker claims leases only inside its static share
// and waits for peers to fill in the rest.
type Shard struct {
	// Owner is this worker's unique id (hostname+pid works well). Non-empty
	// Owner enables cooperative lease-based claiming and makes the run drain
	// the whole sweep: cells completed by peers are merged from the shared
	// store, so every cooperating worker returns the complete result set.
	Owner string
	// TTL is how long a lease outlives its last heartbeat (default
	// DefaultLeaseTTL). Shorter TTLs reclaim dead workers' groups faster but
	// tolerate less scheduling jitter between heartbeats.
	TTL time.Duration
	// Heartbeat is the lease renewal interval (default TTL/3).
	Heartbeat time.Duration
	// Poll is how often a waiting worker re-reads the shared store and
	// re-tries claims while peers hold the remaining groups (default
	// DefaultPoll).
	Poll time.Duration
	// Shards and Index configure static sharding: when Shards > 1, this
	// worker only runs cell groups whose stable hash maps to Index
	// (0 <= Index < Shards). Zero or one means no static partition.
	Shards int
	// Index is this worker's static shard index.
	Index int
	// Steal enables lease-aware work stealing in cooperative mode with a
	// static partition: once this worker's own share has no claimable group
	// left, it claims unclaimed or expired tail groups outside its share
	// instead of idling until peers finish. Fresh foreign leases are still
	// respected (the lease layer keeps arbitrating), so stolen groups run
	// exactly once fleet-wide and results stay byte-identical — stealing
	// changes who does the work, never what comes out. Requires Owner; a
	// no-op without a static partition (every group is already this
	// worker's).
	Steal bool
}

func (sh Shard) withDefaults() Shard {
	if sh.TTL <= 0 {
		sh.TTL = DefaultLeaseTTL
	}
	if sh.Heartbeat <= 0 {
		sh.Heartbeat = sh.TTL / 3
	}
	if sh.Poll <= 0 {
		sh.Poll = DefaultPoll
	}
	return sh
}

// mine reports whether a cell group falls in this worker's static share.
func (sh Shard) mine(groupKey string) bool {
	if sh.Shards <= 1 {
		return true
	}
	return int(shardHash(groupKey)%uint64(sh.Shards)) == sh.Index
}

// shardHash maps a group key to a stable 64-bit hash, used both for static
// shard assignment and for lease file names. FNV-1a: stable across runs,
// builds and hosts, which is what makes the static partition deterministic.
func shardHash(groupKey string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(groupKey))
	return h.Sum64()
}

// ShardStats extends the resumable-run stats with what the shard coordinator
// did: how many cell groups this worker claimed and ran, how many it skipped
// because a peer completed or held them, and how many stale leases it took
// over from dead workers.
type ShardStats struct {
	Stats
	// GroupsClaimed counts the cell groups this worker claimed and ran.
	GroupsClaimed int
	// GroupsSkipped counts the groups this worker did not run: completed or
	// freshly leased by peers, or outside its static share.
	GroupsSkipped int
	// LeasesReclaimed counts expired (or corrupt) leases this worker took
	// over — each one is a dead peer's group being re-run.
	LeasesReclaimed int
	// GroupsStolen counts the claimed groups that lay outside this worker's
	// static share (Shard.Steal): tail work taken over from the fleet once
	// the worker's own share was drained. Always <= GroupsClaimed.
	GroupsStolen int
	// LeaseErrs counts groups whose lease could not be claimed or created at
	// all (lease directory unwritable, I/O errors). Such groups run without
	// a lease — liveness and correctness never depend on lease arbitration,
	// only work-splitting does — so a positive count means possible
	// duplicated work, and callers should surface it as a warning.
	LeaseErrs int
}

// DropNotClaimed filters out the results a static shard did not cover
// (Err == ErrNotClaimed), in place. Cooperative (lease) runs never produce
// such results; static shards without a shared store use this to aggregate
// only what actually ran.
func DropNotClaimed(results []engine.CellResult) []engine.CellResult {
	kept := results[:0]
	for _, r := range results {
		if !errors.Is(r.Err, ErrNotClaimed) {
			kept = append(kept, r)
		}
	}
	return kept
}

// leaseRecord is the JSON body of a lease file.
type leaseRecord struct {
	// Owner is the worker id that holds the lease.
	Owner string `json:"owner"`
	// Group is the cell-group key the lease covers (informational: the file
	// name already binds the lease to the group's hash).
	Group string `json:"group"`
	// Expires is the lease expiry as Unix nanoseconds; a lease whose expiry
	// is in the past is stale and may be reclaimed by any worker.
	Expires int64 `json:"expires_unix_ns"`
}

// leaseManager claims, renews and releases lease files for one worker.
type leaseManager struct {
	dir   string // <sweep dir>/leases
	owner string
	ttl   time.Duration
	now   func() time.Time
}

func newLeaseManager(sweepDir string, sh Shard) *leaseManager {
	return &leaseManager{
		dir:   filepath.Join(sweepDir, leasesDir),
		owner: sh.Owner,
		ttl:   sh.TTL,
		now:   time.Now,
	}
}

// pathFor returns the lease file path for a cell group.
func (m *leaseManager) pathFor(groupKey string) string {
	return filepath.Join(m.dir, fmt.Sprintf("lease-%016x.json", shardHash(groupKey)))
}

// lease is one held lease.
type lease struct {
	m     *leaseManager
	path  string
	group string
}

// claim tries to take the lease for a cell group. It returns (nil, false)
// when another worker holds a fresh lease; otherwise the claimed lease and
// whether it was reclaimed from a stale/corrupt predecessor. A fresh claim
// is an atomic link into place, so exactly one contending worker wins; a
// stale lease is reclaimed by atomically renaming its inode aside (again,
// one winner), re-verifying that what was grabbed really is the stale lease
// — a plain remove+recreate could delete a lease that a faster reclaimer
// had already replaced — and only then claiming. Losing any of these races
// is reported as "not claimed".
func (m *leaseManager) claim(groupKey string) (*lease, bool, error) {
	if err := CheckLeaseTTL(m.ttl); err != nil {
		return nil, false, err
	}
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		return nil, false, fmt.Errorf("sweep: create lease dir: %w", err)
	}
	l := &lease{m: m, path: m.pathFor(groupKey), group: groupKey}
	err := l.create()
	if err == nil {
		return l, false, nil
	}
	if !errors.Is(err, os.ErrExist) {
		return nil, false, err
	}
	rec, rerr := readLease(l.path)
	if rerr == nil && rec.Owner != m.owner && m.fresh(rec) {
		return nil, false, nil // fresh foreign lease
	}
	// Stale, corrupt/torn, clock-skewed, or our own (a restarted worker
	// reclaims itself): take the inode by renaming it to a name private to
	// this owner.
	aside := fmt.Sprintf("%s.reclaim.%016x", l.path, shardHash(m.owner))
	if err := os.Rename(l.path, aside); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// Released or reclaimed underneath us; try a fresh claim.
			if cerr := l.create(); cerr == nil {
				return l, false, nil
			} else if errors.Is(cerr, os.ErrExist) {
				return nil, false, nil
			} else {
				return nil, false, cerr
			}
		}
		return nil, false, fmt.Errorf("sweep: reclaim lease: %w", err)
	}
	if got, gerr := readLease(aside); gerr == nil && got.Owner != m.owner && m.fresh(got) {
		// Between our read and the rename, a faster reclaimer replaced the
		// stale lease with a fresh one of its own — we grabbed a live lease.
		// Put it back (atomically; if a third worker claimed the path in the
		// gap, leave their lease and just drop the grabbed one: its owner
		// backs off at the next renew, which at worst duplicates work).
		if lerr := os.Link(aside, l.path); lerr != nil && !errors.Is(lerr, os.ErrExist) {
			os.Remove(aside)
			return nil, false, fmt.Errorf("sweep: reclaim lease: %w", lerr)
		}
		os.Remove(aside)
		return nil, false, nil
	}
	os.Remove(aside)
	if err := l.create(); err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return l, true, nil
}

// fresh reports whether a lease record is live: not yet expired, with an
// expiry no further out than MaxLeaseHorizon. A farther expiry can only come
// from a peer's badly skewed clock or a corrupt record; honoring it would pin
// the group until that far-future instant passes — long after the writer died
// — so such a lease is treated as reclaimable instead.
func (m *leaseManager) fresh(rec leaseRecord) bool {
	now := m.now()
	return now.UnixNano() < rec.Expires && rec.Expires <= now.Add(MaxLeaseHorizon).UnixNano()
}

// create atomically publishes a fresh lease file: the body is written to a
// private temp file and hard-linked into place. Linking is atomic and fails
// with EEXIST when the lease exists, so exactly one contender wins AND a
// visible lease file is always complete — a create-then-write sequence would
// let a peer read the empty file mid-claim, judge it corrupt, and "reclaim"
// a lease that was being taken (observed as duplicated groups in two-process
// runs).
func (l *lease) create() error {
	tmp := fmt.Sprintf("%s.claim.%016x", l.path, shardHash(l.m.owner))
	if err := os.WriteFile(tmp, l.body(), 0o644); err != nil {
		return fmt.Errorf("sweep: write lease: %w", err)
	}
	defer os.Remove(tmp)
	if err := os.Link(tmp, l.path); err != nil {
		if errors.Is(err, os.ErrExist) {
			return os.ErrExist
		}
		return fmt.Errorf("sweep: claim lease: %w", err)
	}
	return nil
}

func (l *lease) body() []byte {
	rec := leaseRecord{
		Owner:   l.m.owner,
		Group:   l.group,
		Expires: l.m.now().Add(l.m.ttl).UnixNano(),
	}
	body, _ := json.Marshal(rec)
	return append(body, '\n')
}

// renew extends the lease expiry by atomically replacing the lease file
// (write-to-temp + rename, so readers never see a torn lease). If the file
// meanwhile belongs to another owner — this worker stalled past its TTL and a
// peer reclaimed the group — renew backs off and reports false; the worker
// keeps running, which at worst duplicates the group's cells with
// bit-identical records.
func (l *lease) renew() (bool, error) {
	if err := CheckLeaseTTL(l.m.ttl); err != nil {
		return false, err
	}
	if rec, err := readLease(l.path); err == nil && rec.Owner != l.m.owner {
		return false, nil
	}
	tmp := fmt.Sprintf("%s.renew.%016x", l.path, shardHash(l.m.owner))
	if err := os.WriteFile(tmp, l.body(), 0o644); err != nil {
		return false, fmt.Errorf("sweep: renew lease: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return false, fmt.Errorf("sweep: renew lease: %w", err)
	}
	return true, nil
}

// release removes the lease file (only if still ours).
func (l *lease) release() {
	if rec, err := readLease(l.path); err == nil && rec.Owner != l.m.owner {
		return
	}
	_ = os.Remove(l.path)
}

// heartbeat renews the lease every interval until the returned stop function
// is called. Renewal failures are ignored: the lease then simply expires and
// the group becomes reclaimable, which is safe (duplicate runs append
// bit-identical records).
func (l *lease) heartbeat(every time.Duration) (stop func()) {
	return heartbeatLoop(every, l.renew)
}

// heartbeatLoop runs renew every interval until it reports false (the lease
// was lost to a peer — stop renewing and let arbitration stand) or the
// returned stop function is called. Renewal errors are ignored: the lease
// then simply expires and the group becomes reclaimable.
func heartbeatLoop(every time.Duration, renew func() (bool, error)) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if ok, _ := renew(); !ok {
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

func readLease(path string) (leaseRecord, error) {
	var rec leaseRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, err
	}
	if rec.Owner == "" {
		return rec, errors.New("sweep: lease without owner")
	}
	return rec, nil
}

// claimer arbitrates cell-group claims for one worker through the store's
// coordination backend — lease files for FSBackend, gatherd's lease table for
// the network backend. It is the transport-independent face the sharded
// runners use, and the one place the worker-side lease telemetry counts.
type claimer struct {
	b     Backend
	owner string
	ttl   time.Duration
}

func newClaimer(b Backend, sh Shard) *claimer {
	return &claimer{b: b, owner: sh.Owner, ttl: sh.TTL}
}

// claim tries to take the lease on a cell group. It returns (nil, false)
// when another worker holds a fresh lease; otherwise the claimed lease and
// whether it was reclaimed from a stale/corrupt/abandoned predecessor.
func (c *claimer) claim(group string) (*claimed, bool, error) {
	status, err := c.b.TryClaim(group, c.owner, c.ttl)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case LeaseWon:
		obsLeaseClaims.Inc()
		return &claimed{c: c, group: group}, false, nil
	case LeaseReclaimed:
		obsLeaseClaims.Inc()
		obsLeaseReclaims.Inc()
		return &claimed{c: c, group: group}, true, nil
	default:
		return nil, false, nil
	}
}

// claimed is one lease held through a claimer.
type claimed struct {
	c     *claimer
	group string
}

// renew extends the lease, backing off (false) when a peer meanwhile
// reclaimed the group.
func (l *claimed) renew() (bool, error) {
	ok, err := l.c.b.RenewLease(l.group, l.c.owner, l.c.ttl)
	if err == nil && ok {
		obsLeaseRenewals.Inc()
	}
	return ok, err
}

// release drops the lease (only if still ours).
func (l *claimed) release() {
	_ = l.c.b.ReleaseLease(l.group, l.c.owner)
}

// heartbeat renews the lease every interval until stopped or lost.
func (l *claimed) heartbeat(every time.Duration) (stop func()) {
	return heartbeatLoop(every, l.renew)
}

// RunSharded executes the cells as one worker of a multi-process sweep: cell
// groups (cells that differ only in their seeds) are claimed through lease
// files in the shared sweep directory, groups completed or freshly leased by
// peers are skipped, and expired leases are reclaimed so a killed worker's
// groups re-run. In cooperative mode (Shard.Owner set, which requires
// opts.Store) the call drains the whole sweep: it keeps claiming, re-reading
// the shared store and waiting on peers until every cell is complete, so the
// returned results — and the OnResult stream, emitted at the end in index
// order — are byte-identical to a single-process run no matter how many
// workers cooperate. In static mode without a store, cells outside this
// worker's share come back with Err == ErrNotClaimed.
//
// Safety does not depend on the leases: every record in the store is keyed by
// the cell's identity and bit-identical across workers, so the worst a lost
// lease race can cause is duplicated work, never divergent results.
func RunSharded(cells []engine.Cell, opts Options, sh Shard) ([]engine.CellResult, ShardStats) {
	sh = sh.withDefaults()
	n := len(cells)
	results := make([]engine.CellResult, n)
	have := make([]bool, n)
	var stats ShardStats

	// Group the cells by their seedless identity, in first-seen (and hence
	// deterministic) order.
	keys := make([]string, n)
	groupIdx := make(map[string][]int)
	var order []string
	for i, c := range cells {
		keys[i] = c.Key()
		gk := groupKeyOf(c)
		if _, ok := groupIdx[gk]; !ok {
			order = append(order, gk)
		}
		groupIdx[gk] = append(groupIdx[gk], i)
	}

	obs.SweepGroups(len(order))

	var lm *claimer
	if sh.Owner != "" && opts.Store != nil {
		lm = newClaimer(opts.Store.Backend(), sh)
	}

	// Inner runs go through the resumable layer but must not stream: the
	// sharded coordinator emits the merged results at the end, in index
	// order, exactly as an unsharded run would.
	eopts := opts
	eopts.OnResult = nil

	// fillFromStore copies every store-completed cell of a group into the
	// results and reports whether the whole group is now present.
	fillFromStore := func(g []int) bool {
		all := true
		for _, i := range g {
			if have[i] {
				continue
			}
			if opts.Store == nil {
				all = false
				continue
			}
			if st, ok := opts.Store.Lookup(keys[i]); ok {
				results[i] = engine.CellResult{
					Index:   i,
					Cell:    cells[i],
					Result:  st.Result,
					Err:     st.Err,
					Elapsed: st.Elapsed,
				}
				have[i] = true
				stats.Restored++
				obsCellsRestored.Inc()
				obs.SweepCells(0, 1)
			} else {
				all = false
			}
		}
		return all
	}

	// runGroup executes a group's still-missing cells through the resumable
	// layer (which checkpoints them as they finish).
	runGroup := func(g []int) {
		var missing []int
		for _, i := range g {
			if !have[i] {
				missing = append(missing, i)
			}
		}
		sub := make([]engine.Cell, len(missing))
		for k, i := range missing {
			sub[k] = cells[i]
		}
		res, st := Run(sub, eopts)
		stats.Executed += st.Executed
		stats.Restored += st.Restored
		stats.AppendErrs += st.AppendErrs
		for k, r := range res {
			i := missing[k]
			r.Index = i
			results[i] = r
			have[i] = true
		}
	}

	allDone := func() bool {
		for _, h := range have {
			if !h {
				return false
			}
		}
		return true
	}

	ran := make(map[string]bool)
	// visit tries to advance one incomplete cell group (the caller has
	// already ruled out groups the store completes) and reports whether this
	// worker acted on it — claimed it, ran it, or hit the leaseless
	// fallback. A false return means a peer holds a fresh lease.
	visit := func(gk string) bool {
		g := groupIdx[gk]
		// stolen marks tail work taken outside this worker's static share;
		// recorded live for /progress and the steal counter.
		stolen := sh.Shards > 1 && !sh.mine(gk)
		markRun := func() {
			ran[gk] = true
			if stolen {
				obsGroupSteals.Inc()
			}
			obs.SweepGroupClaimed(stolen)
			obs.SweepGroupDone()
		}
		if lm == nil {
			runGroup(g)
			markRun()
			return true
		}
		l, reclaimed, err := lm.claim(gk)
		if err != nil {
			// The lease layer itself is broken (unwritable lease
			// directory, I/O error). Leases only split work — never
			// correctness — so run the group leaseless rather than
			// spinning forever on a claim that will never succeed;
			// the worst case is duplicated, bit-identical records.
			stats.LeaseErrs++
			runGroup(g)
			markRun()
			return true
		}
		if l == nil {
			return false // freshly leased by a peer
		}
		if reclaimed {
			stats.LeasesReclaimed++
			obs.SweepLeaseReclaimed()
		}
		// The peer that held this lease may have finished the group
		// between our store scan and the claim: re-read the store so
		// only genuinely missing cells run.
		if opts.Store != nil {
			_, _ = opts.Store.Reload()
		}
		if !fillFromStore(g) {
			stopHB := l.heartbeat(sh.Heartbeat)
			runGroup(g)
			stopHB()
			markRun()
		}
		// A group that turned out complete after the claim (the peer
		// released between our store scan and the claim) counts as
		// skipped, not claimed: no cell of it ran here.
		l.release()
		return true
	}
	for {
		progress := false
		actedOwn := false
		for _, gk := range order {
			if fillFromStore(groupIdx[gk]) {
				continue
			}
			if !sh.mine(gk) {
				continue
			}
			if visit(gk) {
				progress = true
				actedOwn = true
			}
		}
		// Work stealing: once this worker's static share offers nothing to
		// claim, take over unclaimed or expired tail groups outside the
		// share instead of idling until their shard catches up. The lease
		// layer keeps arbitrating — fresh foreign leases are respected — so
		// a stolen group still runs exactly once fleet-wide.
		if lm != nil && sh.Steal && sh.Shards > 1 && !actedOwn {
			for _, gk := range order {
				if sh.mine(gk) || fillFromStore(groupIdx[gk]) {
					continue
				}
				if visit(gk) {
					progress = true
				}
			}
		}
		if allDone() {
			break
		}
		if lm == nil {
			// Static mode without leases never waits: cells outside this
			// worker's share (and peers' unfinished work) are reported as
			// not claimed.
			break
		}
		// Cooperative mode drains the sweep: peers hold the remaining
		// groups, so wait for their records to land in the shared store (or
		// for their leases to expire and become reclaimable).
		if !progress {
			time.Sleep(sh.Poll)
		}
		if opts.Store != nil {
			_, _ = opts.Store.Reload()
		}
	}

	for _, gk := range order {
		if ran[gk] {
			stats.GroupsClaimed++
			if !sh.mine(gk) {
				stats.GroupsStolen++
			}
		} else {
			stats.GroupsSkipped++
		}
	}
	for i := range cells {
		if !have[i] {
			results[i] = engine.CellResult{Index: i, Cell: cells[i], Err: ErrNotClaimed}
		}
	}
	if opts.OnResult != nil {
		// Not-claimed placeholders are a static-mode artifact of the returned
		// slice, not real cell outcomes: the stream stays a (possibly
		// partial) prefix-ordered view of what an uninterrupted run would
		// emit, so collectors never see the sentinel as an errored run.
		for _, r := range results {
			if errors.Is(r.Err, ErrNotClaimed) {
				continue
			}
			opts.OnResult(r)
		}
	}
	return results, stats
}
