package sweep

import (
	"os"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/adversary"
	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/workload"
)

// livelockCell is a round-robin-lag cell that certifies a livelock well
// inside its budget (see internal/sim/livelock_test.go).
func livelockCell(seed int64) engine.Cell {
	cell := engine.Cell{
		Workload:     workload.KindNestedHulls,
		N:            6,
		WorkloadSeed: seed,
		Adversary:    adversary.NameRoundRobinLag,
		MaxEvents:    30000,
	}
	cell.AdversarySeed = seed
	return cell
}

// TestStoreRoundTripsLivelockTrace pins that the bounded livelock snippet
// survives the checkpoint: a restored livelocked cell renders the same
// record — snippet included — as the fresh run.
func TestStoreRoundTripsLivelockTrace(t *testing.T) {
	cells := []engine.Cell{livelockCell(1)}
	results := engine.Run(cells, engine.Options{})
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if results[0].Result.Outcome.String() != "livelocked" {
		t.Fatalf("outcome = %v, test needs a livelocked cell", results[0].Result.Outcome)
	}
	if results[0].Result.LivelockTrace == nil {
		t.Fatal("livelocked run carries no trace snippet")
	}

	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(cells[0].Key(), results[0]); err != nil {
		t.Fatal(err)
	}
	st.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	stored, ok := re.Lookup(cells[0].Key())
	if !ok {
		t.Fatal("livelocked cell not restored")
	}
	restored := stored.Result.LivelockTrace
	if restored == nil {
		t.Fatal("restored result lost its livelock trace")
	}
	if restored.Len() != results[0].Result.LivelockTrace.Len() {
		t.Fatalf("restored snippet has %d frames, want %d",
			restored.Len(), results[0].Result.LivelockTrace.Len())
	}
	sameResult(t, "livelocked cell", results[0],
		engine.CellResult{Result: stored.Result, Err: stored.Err})
}

// TestV2StoreDiscardedCleanly pins the migration contract of the schema bump
// to v3: a store written under schema 2 is discarded wholesale on open and
// the sweep re-runs cleanly, never mixing pre-certification records (which
// burned the budget on livelocks) with current ones.
func TestV2StoreDiscardedCleanly(t *testing.T) {
	cells := smallCells(1)
	results := engine.Run(cells[:1], engine.Options{})
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(cells[0].Key(), results[0]); err != nil {
		t.Fatal(err)
	}
	st.Close()

	data, err := os.ReadFile(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), `"schema":3`, `"schema":2`, 1)
	if mutated == string(data) {
		t.Fatal("test setup: schema field not found in store file")
	}
	if err := os.WriteFile(st.Path(), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Done() != 0 {
		t.Fatalf("Done = %d after v2 records, want 0 (clean re-run)", re.Done())
	}
	warns := re.Warnings()
	if len(warns) == 0 || !strings.Contains(warns[0], "mismatch") {
		t.Fatalf("expected mismatch warning, got %v", warns)
	}
}

// TestAdaptiveLivelockedGroupConvergesEarly: certification makes livelocked
// replicas cheap and (for a deterministic strategy) identical in event
// count, so the adaptive scheduler sees a zero-width confidence interval
// and stops the group at the initial replicas instead of growing it toward
// the seed cap — livelocked groups behave like stalled ones.
func TestAdaptiveLivelockedGroupConvergesEarly(t *testing.T) {
	cells := []engine.Cell{livelockCell(1), livelockCell(2)}
	_, infos, _ := RunAdaptive(cells, Options{}, Adaptive{TargetCI: 500, MaxSeeds: 8})
	if len(infos) != 1 {
		t.Fatalf("expected 1 group, got %d", len(infos))
	}
	g := infos[0]
	if !g.Converged {
		t.Fatalf("livelocked group did not converge: %+v", g)
	}
	if g.Seeds != 2 {
		t.Fatalf("livelocked group consumed %d seeds, want the 2 initial replicas", g.Seeds)
	}
	if g.HalfWidth > 500 {
		t.Fatalf("half-width %g above target", g.HalfWidth)
	}
}
