package sweep

import (
	"math"
	"reflect"
	"testing"

	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/sim"
	"github.com/fatgather/fatgather/internal/workload"
)

// adaptiveCells: two groups (n=3 and n=4), two initial seed replicas each.
func adaptiveCells() []engine.Cell {
	return engine.Batch{
		Workloads: []workload.Kind{workload.KindClustered},
		Ns:        []int{3, 4},
		Seeds:     2,
		MaxEvents: 300,
	}.Cells()
}

func TestRunAdaptiveAlreadyConverged(t *testing.T) {
	cells := adaptiveCells()
	// An enormous target: the initial replicas are already tight enough.
	res, infos, stats := RunAdaptive(cells, Options{}, Adaptive{TargetCI: math.MaxFloat64})
	if len(res) != len(cells) {
		t.Fatalf("converged run added cells: %d results for %d cells", len(res), len(cells))
	}
	if stats.Executed != len(cells) {
		t.Fatalf("stats %+v", stats)
	}
	if len(infos) != 2 {
		t.Fatalf("expected 2 groups, got %d", len(infos))
	}
	for _, g := range infos {
		if g.Seeds != 2 || !g.Converged {
			t.Fatalf("group %q: seeds %d converged %v, want 2/true", g.Key, g.Seeds, g.Converged)
		}
	}
}

func TestRunAdaptiveGrowsToCap(t *testing.T) {
	cells := adaptiveCells()
	// An impossible target: every group must grow to the seed cap.
	res, infos, _ := RunAdaptive(cells, Options{}, Adaptive{TargetCI: 1e-12, MaxSeeds: 4})
	if len(res) != 8 { // 2 groups x 4 seeds
		t.Fatalf("expected 8 results, got %d", len(res))
	}
	for _, g := range infos {
		if g.Seeds != 4 {
			t.Fatalf("group %q consumed %d seeds, want cap 4", g.Key, g.Seeds)
		}
		if g.Converged {
			t.Fatalf("group %q cannot converge to 1e-12", g.Key)
		}
		if math.IsInf(g.HalfWidth, 1) {
			t.Fatalf("group %q half-width not computed", g.Key)
		}
	}
	// Replica seeds continue the initial range and stay decorrelated.
	seen := map[string]bool{}
	for i, r := range res {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		key := r.Cell.Key()
		if seen[key] {
			t.Fatalf("duplicate replica key %s", key)
		}
		seen[key] = true
	}
}

func TestRunAdaptiveDeterministicAndResumable(t *testing.T) {
	cells := adaptiveCells()
	ad := Adaptive{TargetCI: 50, MaxSeeds: 6,
		Metric: func(r sim.Result) float64 { return float64(r.Events) }}

	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res1, infos1, stats1 := RunAdaptive(cells, Options{Store: st, Cache: workload.NewCache()}, ad)
	st.Close()

	// Same schedule without a store: adaptive growth is deterministic.
	res2, infos2, _ := RunAdaptive(cells, Options{}, ad)
	if !reflect.DeepEqual(infos1, infos2) {
		t.Fatalf("adaptive schedules diverged:\n%+v\nvs\n%+v", infos1, infos2)
	}
	if len(res1) != len(res2) {
		t.Fatalf("%d vs %d results", len(res1), len(res2))
	}
	for i := range res1 {
		sameResult(t, res1[i].Cell.Key(), res1[i], res2[i])
	}

	// Resume: the whole adaptive schedule is served from the store.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res3, infos3, stats3 := RunAdaptive(cells, Options{Store: re}, ad)
	if stats3.Executed != 0 {
		t.Fatalf("resumed adaptive run executed %d cells, want 0 (fresh executed %d)", stats3.Executed, stats1.Executed)
	}
	if stats3.Restored != len(res1) {
		t.Fatalf("resumed adaptive run restored %d of %d", stats3.Restored, len(res1))
	}
	if !reflect.DeepEqual(infos1, infos3) {
		t.Fatalf("resumed schedule diverged:\n%+v\nvs\n%+v", infos1, infos3)
	}
	for i := range res1 {
		sameResult(t, res1[i].Cell.Key(), res1[i], res3[i])
	}
}

func TestRunAdaptiveGivesUpOnDeadGroups(t *testing.T) {
	cells := []engine.Cell{{Workload: "bogus", N: 3, MaxEvents: 100}}
	res, infos, _ := RunAdaptive(cells, Options{}, Adaptive{TargetCI: 1, MaxSeeds: 16})
	if len(res) > 2 {
		t.Fatalf("dead group kept growing: %d results", len(res))
	}
	if len(infos) != 1 || infos[0].Converged {
		t.Fatalf("dead group infos %+v", infos)
	}
}
