package sweep

import (
	"errors"
	"time"

	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/metrics"
	"github.com/fatgather/fatgather/internal/obs"
)

// adaptiveShardGroup is one cell group of a sharded adaptive sweep: the
// group's input replicas (in input order) plus the positions they occupy in
// the input slice.
type adaptiveShardGroup struct {
	key     string
	sample  engine.Cell
	initial []engine.Cell
}

// adaptiveProgress is a group's position on its adaptive trajectory, as
// derived from the result store alone. The trajectory — which seed replicas a
// group consumes, and when it stops — is a deterministic function of the
// per-replica results (the stopping rule Adaptive.stopAt evaluated on seed
// prefixes), so every worker that sees the same store history computes the
// same progress. That recomputability is the convergence contract of the
// cross-worker protocol: the store is the ground truth, and the published
// adaptive-state records are observability artifacts for operators and
// tests, never read back by the workers themselves.
type adaptiveProgress struct {
	// results holds the completed replicas in trajectory order; when closed
	// it is the group's full replica set.
	results []engine.CellResult
	// pending is the next block of work: the still-missing initial replicas,
	// or the single next extra replica once the initial block is complete.
	// Empty iff closed.
	pending []engine.Cell
	// seeds is the number of replicas consumed so far (final once closed).
	seeds int
	// halfWidth is the 95% CI half-width over the successful replicas so far.
	halfWidth float64
	// closed reports that the stopping rule fired: converged or at the cap.
	closed bool
}

// eval walks the group's deterministic seed trajectory against the store's
// current in-memory view plus a local overlay of results this worker ran but
// could not checkpoint (Append failures must not stall the trajectory —
// exactly like the in-memory accumulation of RunAdaptive, they only mean the
// cells re-run on a later resume): first the input replicas, then derived
// extras (nextReplica) for as long as the stopping rule keeps the group open
// and a result for the next replica is known. It never runs anything —
// callers run progress.pending and re-eval.
//
// collect controls whether pr.results is materialized. The cooperative wait
// loop peeks at groups on every poll tick just to learn closed/pending;
// copying every stored result (with its snapshot series) there would be
// sustained allocation churn proportional to the whole sweep, so peeks pass
// false and the full result set is built exactly once, at collection time.
func (g *adaptiveShardGroup) eval(ad Adaptive, store *Store, local map[string]Stored, collect bool) adaptiveProgress {
	var pr adaptiveProgress
	var values []float64
	var maxSeed int64
	lookup := func(key string) (Stored, bool) {
		if st, ok := store.Lookup(key); ok {
			return st, true
		}
		st, ok := local[key]
		return st, ok
	}
	have := 0
	observe := func(c engine.Cell, st Stored) {
		have++
		if collect {
			pr.results = append(pr.results, engine.CellResult{
				Cell:    c,
				Result:  st.Result,
				Err:     st.Err,
				Elapsed: st.Elapsed,
			})
		}
		if st.Err == nil {
			values = append(values, ad.Metric(st.Result))
		}
	}
	for _, c := range g.initial {
		if c.WorkloadSeed > maxSeed {
			maxSeed = c.WorkloadSeed
		}
		if st, ok := lookup(c.Key()); ok {
			observe(c, st)
		} else {
			pr.pending = append(pr.pending, c)
		}
	}
	if len(pr.pending) > 0 {
		// The stopping rule is only ever evaluated on complete seed prefixes
		// (exactly like the single-process scheduler, which finishes a round
		// before deciding): the initial block must land first.
		pr.seeds = have
		pr.halfWidth = metrics.CI95HalfWidth(values)
		return pr
	}
	pr.seeds = len(g.initial)
	for !ad.stopAt(pr.seeds, values) {
		next := nextReplica(g.sample, maxSeed)
		maxSeed = next.WorkloadSeed
		st, ok := lookup(next.Key())
		if !ok {
			pr.pending = append(pr.pending, next)
			pr.halfWidth = metrics.CI95HalfWidth(values)
			return pr
		}
		observe(next, st)
		pr.seeds++
	}
	pr.closed = true
	pr.halfWidth = metrics.CI95HalfWidth(values)
	return pr
}

// RunAdaptiveSharded runs an adaptive sweep as one worker of a multi-process
// fleet: the cross-worker generalization of RunAdaptive over the RunSharded
// lease machinery. Cell groups are claimed through lease files in the shared
// sweep directory; the claiming worker merges the fleet's stored history,
// runs the group's next seed block, re-evaluates the confidence interval
// against the merged history, and repeats until the group's stopping rule
// fires, publishing per-group adaptive-state records (seeds consumed, CI
// half-width, open/closed) alongside the leases. Because the adaptive
// trajectory is a deterministic function of the stored per-replica results,
// every worker converges on identical per-group seed counts and returns the
// complete result set in the exact order RunAdaptive would produce — tables
// are byte-identical for any fleet size, with no replica executed twice while
// leases hold.
//
// Modes mirror RunSharded: cooperative mode (Shard.Owner set, requires
// opts.Store) drains the whole sweep, waiting on peers and reclaiming expired
// leases; with Shard.Steal a worker whose static share is exhausted claims
// unclaimed or expired tail groups outside its share instead of idling.
// Static mode (Shards > 1 without Owner) runs only this worker's share
// adaptively — group trajectories are independent, so static shards need no
// coordination — and reports foreign groups' input cells with ErrNotClaimed
// unless a shared store already holds them. The returned GroupSeeds cover the
// groups this worker can account for (all of them in cooperative mode).
func RunAdaptiveSharded(cells []engine.Cell, opts Options, ad Adaptive, sh Shard) ([]engine.CellResult, []GroupSeeds, ShardStats) {
	ad = ad.withDefaults()
	sh = sh.withDefaults()
	var stats ShardStats

	groups := make(map[string]*adaptiveShardGroup)
	var order []string
	for _, c := range cells {
		gk := groupKeyOf(c)
		g, ok := groups[gk]
		if !ok {
			g = &adaptiveShardGroup{key: gk, sample: c}
			groups[gk] = g
			order = append(order, gk)
		}
		g.initial = append(g.initial, c)
	}

	obs.SweepGroups(len(order))

	eopts := opts
	eopts.OnResult = nil

	closed := make(map[string]adaptiveProgress)
	infosByKey := make(map[string]GroupSeeds)
	record := func(gk string, pr adaptiveProgress) {
		closed[gk] = pr
		infosByKey[gk] = GroupSeeds{
			Key:       gk,
			Seeds:     pr.seeds,
			HalfWidth: pr.halfWidth,
			Converged: pr.halfWidth <= ad.TargetCI,
		}
	}

	if sh.Owner != "" && opts.Store != nil {
		runAdaptiveCooperative(groups, order, eopts, ad, sh, &stats, record)
	} else {
		runAdaptiveStatic(cells, groups, order, eopts, ad, sh, &stats, record)
	}

	// Assemble the canonical result order — the exact order RunAdaptive
	// emits: the input cells first, then round by round one extra replica per
	// still-open group, groups in first-seen order.
	var out []engine.CellResult
	pos := make(map[string]int)
	for _, c := range cells {
		gk := groupKeyOf(c)
		p := pos[gk]
		pos[gk]++
		if pr, ok := closed[gk]; ok {
			out = append(out, pr.results[p])
		} else {
			out = append(out, engine.CellResult{Cell: c, Err: ErrNotClaimed})
		}
	}
	for r := 0; ; r++ {
		emitted := false
		for _, gk := range order {
			pr, ok := closed[gk]
			if !ok {
				continue
			}
			idx := len(groups[gk].initial) + r
			if idx < len(pr.results) {
				out = append(out, pr.results[idx])
				emitted = true
			}
		}
		if !emitted {
			break
		}
	}
	collected := 0
	for i := range out {
		out[i].Index = i
		if !isNotClaimed(out[i].Err) {
			collected++
		}
	}
	// Everything collected but not executed here was served from the store —
	// either resumed from an earlier run or appended by peers.
	stats.Restored = collected - stats.Executed

	infos := make([]GroupSeeds, 0, len(infosByKey))
	for _, gk := range order {
		if info, ok := infosByKey[gk]; ok {
			infos = append(infos, info)
		}
	}

	stats.GroupsSkipped = len(order) - stats.GroupsClaimed
	if opts.OnResult != nil {
		for _, r := range out {
			if isNotClaimed(r.Err) {
				continue
			}
			opts.OnResult(r)
		}
	}
	return out, infos, stats
}

// isNotClaimed reports the static-mode placeholder error.
func isNotClaimed(err error) bool {
	return err != nil && errors.Is(err, ErrNotClaimed)
}

// runAdaptiveCooperative is the lease-coordinated worker loop: claim open
// groups (own share first, then — with Steal — foreign tail groups), run each
// claimed group's seed blocks to closure against the merged store history,
// publish adaptive-state records, and wait on peers for the rest.
func runAdaptiveCooperative(groups map[string]*adaptiveShardGroup, order []string,
	eopts Options, ad Adaptive, sh Shard, stats *ShardStats, record func(string, adaptiveProgress)) {
	store := eopts.Store
	lm := newClaimer(store.Backend(), sh)
	pub := newStatePublisher(store.Backend(), sh.Owner)

	closed := make(map[string]bool)
	// local holds results this worker ran that the store could not persist
	// (Append failures): eval consults it so a broken disk degrades to
	// re-runs on resume, never to a stalled trajectory.
	local := make(map[string]Stored)
	stateOf := func(gk string, pr adaptiveProgress) adaptiveState {
		return adaptiveState{
			Version:   AdaptiveStateVersion,
			Engine:    engine.Version,
			Group:     gk,
			Seeds:     pr.seeds,
			HalfWidth: pr.halfWidth,
			Closed:    pr.closed,
		}
	}

	// attemptRun claims one open group and runs it to closure. It reports
	// whether this worker made progress on the group (claimed it, or closed
	// it leaselessly); false means a peer holds a fresh lease.
	attemptRun := func(gk string, stealing bool) bool {
		g := groups[gk]
		l, reclaimed, err := lm.claim(gk)
		if err != nil {
			// The lease layer is broken (unwritable dir, I/O error). Leases
			// only split work, never guard correctness — duplicate replicas
			// append bit-identical records — so run leaseless rather than
			// spinning on a claim that cannot succeed.
			stats.LeaseErrs++
		} else if l == nil {
			return false
		}
		if reclaimed {
			stats.LeasesReclaimed++
			obs.SweepLeaseReclaimed()
		}
		// Merge the fleet's history before deciding what is left to run: the
		// previous holder may have finished (or advanced) the group between
		// our store scan and the claim.
		_, _ = store.Reload()
		pr := g.eval(ad, store, local, false)
		ran := !pr.closed
		if ran {
			obs.SweepGroupClaimed(stealing)
			if stealing {
				obsGroupSteals.Inc()
			}
			var stopHB func()
			if l != nil {
				stopHB = l.heartbeat(sh.Heartbeat)
			}
			for !pr.closed {
				_ = pub.publish(stateOf(gk, pr))
				obs.SweepAdaptive(gk, pr.seeds, pr.halfWidth, false)
				res, st := Run(pr.pending, eopts)
				stats.Executed += st.Executed
				stats.AppendErrs += st.AppendErrs
				// Run appended this block to the store (and its in-memory
				// view), so the next eval sees the merged history including
				// this worker's replicas; the local overlay covers any
				// result the append could not persist.
				for _, r := range res {
					local[r.Cell.Key()] = Stored{Result: r.Result, Err: r.Err, Elapsed: r.Elapsed}
				}
				pr = g.eval(ad, store, local, false)
			}
			if stopHB != nil {
				stopHB()
			}
			stats.GroupsClaimed++
			if stealing {
				stats.GroupsStolen++
			}
			obs.SweepGroupDone()
		}
		record(gk, g.eval(ad, store, local, true))
		closed[gk] = true
		_ = pub.publish(stateOf(gk, pr))
		obs.SweepAdaptive(gk, pr.seeds, pr.halfWidth, pr.closed)
		if l != nil {
			l.release()
		}
		return true
	}

	for {
		progress := false
		ranMine := false
		for _, gk := range order {
			if closed[gk] {
				continue
			}
			// Groups already closed by the fleet are collected lease-free:
			// the stored history alone proves the trajectory ended. The peek
			// (collect=false) keeps the poll loop allocation-free; the full
			// result set is materialized once, here, at collection.
			if pr := groups[gk].eval(ad, store, local, false); pr.closed {
				record(gk, groups[gk].eval(ad, store, local, true))
				closed[gk] = true
				obs.SweepAdaptive(gk, pr.seeds, pr.halfWidth, true)
				progress = true
				continue
			}
			if !sh.mine(gk) {
				continue
			}
			if attemptRun(gk, false) {
				progress = true
				ranMine = true
			}
		}
		// Work stealing: a worker whose static share is drained claims
		// unclaimed or expired foreign tail groups instead of idling. Fresh
		// foreign leases are still respected — the lease layer arbitrates,
		// stealing only widens which groups this worker is willing to claim.
		if sh.Steal && sh.Shards > 1 && !ranMine {
			for _, gk := range order {
				if closed[gk] || sh.mine(gk) {
					continue
				}
				if attemptRun(gk, true) {
					progress = true
				}
			}
		}
		obsAdaptiveOpen.Set(float64(len(order) - len(closed)))
		obsAdaptiveClosed.Set(float64(len(closed)))
		if len(closed) == len(order) {
			return
		}
		if !progress {
			time.Sleep(sh.Poll)
		}
		_, _ = store.Reload()
	}
}

// runAdaptiveStatic is the coordination-free partition: adaptive trajectories
// are independent per group, so a static shard simply runs its own groups
// through the single-process scheduler (one call, preserving cross-group
// parallelism) and, when a shared store is available, collects foreign groups
// that peers already closed. It never waits.
func runAdaptiveStatic(cells []engine.Cell, groups map[string]*adaptiveShardGroup, order []string,
	eopts Options, ad Adaptive, sh Shard, stats *ShardStats, record func(string, adaptiveProgress)) {
	var mine []engine.Cell
	for _, c := range cells {
		if sh.mine(groupKeyOf(c)) {
			mine = append(mine, c)
		}
	}
	results, infos, st := RunAdaptive(mine, eopts, ad)
	stats.Executed = st.Executed
	stats.AppendErrs = st.AppendErrs

	byGroup := make(map[string][]engine.CellResult)
	for _, r := range results {
		gk := groupKeyOf(r.Cell)
		byGroup[gk] = append(byGroup[gk], r)
	}
	infoByKey := make(map[string]GroupSeeds, len(infos))
	for _, info := range infos {
		infoByKey[info.Key] = info
	}
	for _, gk := range order {
		if !sh.mine(gk) {
			// A shared store may already hold a foreign group's full
			// trajectory (a peer shard ran it); collect it, else leave the
			// group to its shard.
			if eopts.Store != nil {
				if pr := groups[gk].eval(ad, eopts.Store, nil, true); pr.closed {
					record(gk, pr)
				}
			}
			continue
		}
		info := infoByKey[gk]
		record(gk, adaptiveProgress{
			results:   byGroup[gk],
			seeds:     info.Seeds,
			halfWidth: info.HalfWidth,
			closed:    true,
		})
		stats.GroupsClaimed++
	}
}
