package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/core"
	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/obs"
	"github.com/fatgather/fatgather/internal/sim"
	"github.com/fatgather/fatgather/internal/trace"
)

// Telemetry (internal/obs): write-only handles, one-way contract. Store
// warnings additionally go through the obs logger at load time, so corrupt-
// line skips are visible on every path that opens a store (resume, merge,
// read-only scans) — not only where a caller remembers to print Warnings().
var (
	obsCorruptLines   = obs.NewCounter("fatgather_sweep_store_corrupt_lines_total")
	obsSchemaMismatch = obs.NewCounter("fatgather_sweep_store_schema_mismatch_total")
	obsStoreLoads     = obs.NewHistogram("fatgather_sweep_store_load_seconds")
	obsStoreAppends   = obs.NewHistogram("fatgather_sweep_store_append_seconds")
	obsRecordsAdded   = obs.NewCounter("fatgather_sweep_store_records_appended_total")
)

// SchemaVersion is the version of the JSONL record layout. Records written
// with a different schema (or by a different engine.Version) force a clean
// re-run: stale results must never leak into a resumed sweep. Version 2
// added the survivor-relative crash metrics (crashed_count,
// survivors_gathered) to the result record; version-1 records lack them, so
// restoring them would render different robustness tables than a fresh run.
// Version 3 added livelock certification: the livelock_trace snippet field,
// and — together with the engine bump to fatgather-engine/3 — the fact that
// zero-progress runs now end OutcomeLivelocked well before the budget, so
// v2 records of such runs describe executions the current engine no longer
// produces. v2 stores are discarded on open and re-run cleanly.
const SchemaVersion = 3

// resultsFile is the name of the record file inside a sweep directory.
const resultsFile = "results.jsonl"

// record is one JSONL line: a completed cell keyed by its engine cell key,
// stamped with the schema and engine versions that produced it.
type record struct {
	Schema  int           `json:"schema"`
	Engine  string        `json:"engine"`
	Key     string        `json:"key"`
	Elapsed int64         `json:"elapsed_ns"`
	Err     string        `json:"err,omitempty"`
	Result  *resultRecord `json:"result,omitempty"`
}

// resultRecord mirrors sim.Result field-for-field with JSON-able types
// (the error becomes a string). encoding/json round-trips float64 exactly
// (shortest representation that parses back to the same bits), so a restored
// result renders byte-identical tables.
type resultRecord struct {
	Outcome           int                   `json:"outcome"`
	Algorithm         string                `json:"algorithm"`
	Adversary         string                `json:"adversary"`
	N                 int                   `json:"n"`
	Events            int                   `json:"events"`
	Cycles            int                   `json:"cycles"`
	TerminatedCount   int                   `json:"terminated_count"`
	Collisions        int                   `json:"collisions"`
	Stops             int                   `json:"stops"`
	Arrivals          int                   `json:"arrivals"`
	TotalDistance     float64               `json:"total_distance"`
	Final             config.Geometric      `json:"final,omitempty"`
	Milestones        sim.Milestones        `json:"milestones"`
	StateVisits       map[core.AlgState]int `json:"state_visits,omitempty"`
	HullAreaSeries    []float64             `json:"hull_area_series,omitempty"`
	SpreadSeries      []float64             `json:"spread_series,omitempty"`
	ConnectedAtEnd    bool                  `json:"connected_at_end"`
	FullyVisibleAtEnd bool                  `json:"fully_visible_at_end"`
	CrashedCount      int                   `json:"crashed_count,omitempty"`
	SurvivorsGathered bool                  `json:"survivors_gathered"`
	LivelockTrace     *trace.Trace          `json:"livelock_trace,omitempty"`
	Err               string                `json:"err,omitempty"`
}

func toResultRecord(r sim.Result) *resultRecord {
	out := &resultRecord{
		Outcome:           int(r.Outcome),
		Algorithm:         r.Algorithm,
		Adversary:         r.Adversary,
		N:                 r.N,
		Events:            r.Events,
		Cycles:            r.Cycles,
		TerminatedCount:   r.TerminatedCount,
		Collisions:        r.Collisions,
		Stops:             r.Stops,
		Arrivals:          r.Arrivals,
		TotalDistance:     r.TotalDistance,
		Final:             r.Final,
		Milestones:        r.Milestones,
		StateVisits:       r.StateVisits,
		HullAreaSeries:    r.HullAreaSeries,
		SpreadSeries:      r.SpreadSeries,
		ConnectedAtEnd:    r.ConnectedAtEnd,
		FullyVisibleAtEnd: r.FullyVisibleAtEnd,
		CrashedCount:      r.CrashedCount,
		SurvivorsGathered: r.SurvivorsGathered,
		LivelockTrace:     r.LivelockTrace,
	}
	if r.Err != nil {
		out.Err = r.Err.Error()
	}
	return out
}

func (r *resultRecord) simResult() sim.Result {
	out := sim.Result{
		Outcome:           sim.Outcome(r.Outcome),
		Algorithm:         r.Algorithm,
		Adversary:         r.Adversary,
		N:                 r.N,
		Events:            r.Events,
		Cycles:            r.Cycles,
		TerminatedCount:   r.TerminatedCount,
		Collisions:        r.Collisions,
		Stops:             r.Stops,
		Arrivals:          r.Arrivals,
		TotalDistance:     r.TotalDistance,
		Final:             r.Final,
		Milestones:        r.Milestones,
		StateVisits:       r.StateVisits,
		HullAreaSeries:    r.HullAreaSeries,
		SpreadSeries:      r.SpreadSeries,
		ConnectedAtEnd:    r.ConnectedAtEnd,
		FullyVisibleAtEnd: r.FullyVisibleAtEnd,
		CrashedCount:      r.CrashedCount,
		SurvivorsGathered: r.SurvivorsGathered,
		LivelockTrace:     r.LivelockTrace,
	}
	if r.Err != "" {
		out.Err = errors.New(r.Err)
	}
	return out
}

// Stored is a completed cell loaded from (or just written to) the store.
type Stored struct {
	Result  sim.Result
	Err     error
	Elapsed time.Duration
}

// Store is an append-only JSONL checkpoint of completed sweep cells over a
// coordination Backend (a sweep directory by default, the gatherd coordinator
// over HTTP). Opening a store loads every readable record; corrupt or
// truncated lines (a sweep killed mid-write) are skipped with a warning and
// the log is compacted, so the cells they described simply re-run. Records
// written under a different schema or engine version discard the whole log:
// a version mismatch forces a clean re-run.
//
// Store is safe for concurrent use, although the engine's in-order streaming
// collector only ever appends from one goroutine.
type Store struct {
	mu       sync.Mutex
	b        Backend
	dir      string
	path     string
	done     map[string]Stored
	warnings []string
	// appendable is false for read-only stores; Append and Reset then fail
	// with the same error a closed store reports.
	appendable bool
	closed     bool
	// reloadOff is the byte offset up to which Reload has already parsed the
	// record log: under shared semantics the log is strictly append-only, so
	// each Reload only reads the tail the fleet appended since the last one.
	reloadOff int64
}

// Open creates (if needed) the sweep directory and loads the completed-cell
// set from its record file. The returned store is ready for Lookup and
// Append; Close releases the file handle.
//
// Open assumes this process is the only writer: corrupt or truncated lines
// are compacted away by atomically rewriting the record file. When several
// processes share one sweep directory (lease-based sharding), use OpenShared
// instead.
func Open(dir string) (*Store, error) { return open(dir, false) }

// OpenReadOnly loads the completed-cell set of an existing sweep directory
// without creating, compacting, truncating or appending anything: corrupt
// lines are skipped with a warning, and a schema/engine version mismatch
// discards the loaded set (with a warning) but leaves the file untouched.
// Append and Reset fail on the returned store; Lookup, Keys, Done and
// Warnings work. The merge tool reads its sources this way so that a
// version-mismatched source is rejected, never rewritten.
func OpenReadOnly(dir string) (*Store, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("sweep: open store: %s is not a directory", dir)
	}
	// Read-only + shared: never compact, never append.
	return newStore(newReadOnlyFSBackend(dir), true, false)
}

// OpenShared is Open for sweep directories that other live processes may be
// appending to concurrently. It never compacts the record file on load —
// rewriting it would race a peer's in-flight appends — so corrupt lines are
// merely skipped (their cells re-run) and stay in the file until a later
// exclusive Open compacts them. A schema or engine version mismatch still
// discards the file: mixed-version records must never cohabit a store.
func OpenShared(dir string) (*Store, error) { return open(dir, true) }

// OpenBackend opens a store over an explicit coordination backend (the
// gatherd client, a conformance-suite medium). Backend stores always use
// shared semantics — peers may be appending through the same coordinator, so
// corrupt lines are skipped rather than compacted away — and are never Reset
// by the callers that thread a coordinator through (the coordinator's log
// outlives any single worker, like a resumed shared directory).
func OpenBackend(b Backend) (*Store, error) { return newStore(b, true, true) }

func open(dir string, shared bool) (*Store, error) {
	b, err := NewFSBackend(dir)
	if err != nil {
		return nil, err
	}
	s, err := newStore(b, shared, true)
	if err != nil {
		_ = b.Close()
		return nil, err
	}
	return s, nil
}

// newStore loads the completed-cell set over an open backend. shared suppresses
// corrupt-line compaction (peers may be appending); appendable false makes
// Append and Reset fail (read-only scans).
func newStore(b Backend, shared, appendable bool) (*Store, error) {
	s := &Store{
		b:          b,
		path:       b.String(),
		done:       make(map[string]Stored),
		appendable: appendable,
	}
	if d, ok := b.(interface{ Dir() string }); ok {
		s.dir = d.Dir()
	}
	good, corrupt, mismatch, consumed, err := s.load()
	if err != nil {
		return nil, err
	}
	if appendable && (mismatch || (corrupt && !shared)) {
		// Compact: rewrite only the good records, atomically, so a partial
		// trailing line never corrupts the records appended after it. (On a
		// version mismatch "good" is empty: the whole log is discarded.)
		if err := s.rewrite(good); err != nil {
			return nil, err
		}
		consumed = 0
		for _, line := range good {
			consumed += int64(len(line)) + 1
		}
	}
	// Reload starts scanning where the initial load stopped.
	s.reloadOff = consumed
	return s, nil
}

// load reads the record log (if any) into s.done. It returns the raw good
// lines (for compaction), what went wrong — corrupt reports skipped lines,
// mismatch reports a record from another schema/engine version (which
// additionally discards everything loaded so far — clean re-run) — and the
// byte offset after the last complete line, so Reload can resume scanning
// there instead of re-parsing the whole log.
func (s *Store) load() (good []string, corrupt, mismatch bool, consumed int64, err error) {
	//gatherlint:ignore nondetsource store-load latency is wall-clock telemetry only, never folded into results
	loadStart := time.Now()
	//gatherlint:ignore nondetsource wall-clock telemetry only (see loadStart above)
	defer func() { obsStoreLoads.Observe(time.Since(loadStart).Seconds()) }()
	data, _, err := s.b.ReadRecords(0)
	if err != nil {
		return nil, false, false, 0, fmt.Errorf("sweep: read store: %w", err)
	}
	consumed = int64(strings.LastIndexByte(string(data), '\n') + 1)
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec record
		if uerr := json.Unmarshal([]byte(line), &rec); uerr != nil || rec.Key == "" {
			w := fmt.Sprintf("%s:%d: skipping corrupt record (cell will re-run)", s.path, i+1)
			s.warnings = append(s.warnings, w)
			obsCorruptLines.Inc()
			obs.Warnf("sweep", "%s", w)
			corrupt = true
			continue
		}
		if rec.Schema != SchemaVersion || rec.Engine != engine.Version {
			w := fmt.Sprintf(
				"%s: schema/engine mismatch (have schema %d engine %q, want schema %d engine %q): discarding store, clean re-run",
				s.path, rec.Schema, rec.Engine, SchemaVersion, engine.Version)
			s.warnings = append(s.warnings, w)
			obsSchemaMismatch.Inc()
			obs.Warnf("sweep", "%s", w)
			s.done = make(map[string]Stored)
			return nil, corrupt, true, 0, nil
		}
		s.done[rec.Key] = rec.stored()
		good = append(good, line)
	}
	return good, corrupt, false, consumed, nil
}

// Reload reads the record-log tail appended by other processes since the
// last Reload (the sharded coordinator calls it between claim passes, often
// on a sub-second poll, so it must not re-parse the whole log every time).
// Only complete, newline-terminated lines are consumed — a torn trailing
// line is a peer's append in flight and is left for the next Reload — and
// corrupt lines or records from another schema/engine version are skipped
// silently; records already in memory are kept as-is. If the log shrank (an
// exclusive opener compacted or reset it, or a memory-only coordinator
// restarted empty), the next Reload rescans from the start. It returns the
// number of newly learned cells.
func (s *Store) Reload() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, start, err := s.b.ReadRecords(s.reloadOff)
	if err != nil {
		return 0, fmt.Errorf("sweep: reload store: %w", err)
	}
	end := strings.LastIndexByte(string(data), '\n')
	if end < 0 {
		// Nothing complete beyond start: either fully caught up, or only a
		// torn line so far (a peer's append in flight) — retry next poll. A
		// shrunken log (start rewound to 0) rescans from the top then.
		s.reloadOff = start
		return 0, nil
	}
	chunk := string(data[:end+1])
	s.reloadOff = start + int64(end+1)
	fresh := 0
	for _, line := range strings.Split(chunk, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec record
		if uerr := json.Unmarshal([]byte(line), &rec); uerr != nil || rec.Key == "" {
			continue
		}
		if rec.Schema != SchemaVersion || rec.Engine != engine.Version {
			continue
		}
		if _, ok := s.done[rec.Key]; !ok {
			s.done[rec.Key] = rec.stored()
			fresh++
		}
	}
	return fresh, nil
}

func (rec record) stored() Stored {
	st := Stored{Elapsed: time.Duration(rec.Elapsed)}
	if rec.Err != "" {
		st.Err = errors.New(rec.Err)
	}
	if rec.Result != nil {
		st.Result = rec.Result.simResult()
	}
	return st
}

// rewrite atomically replaces the record log with the given lines.
func (s *Store) rewrite(lines []string) error {
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if err := s.b.RewriteRecords([]byte(b.String())); err != nil {
		return fmt.Errorf("sweep: compact store: %w", err)
	}
	return nil
}

// Lookup returns the stored result for a cell key.
func (s *Store) Lookup(key string) (Stored, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.done[key]
	return st, ok
}

// Append streams one completed cell to disk and to the in-memory
// completed-cell set. The record reaches the operating system before Append
// returns, so a killed process loses at most the line being written.
func (s *Store) Append(key string, r engine.CellResult) error {
	rec := record{
		Schema:  SchemaVersion,
		Engine:  engine.Version,
		Key:     key,
		Elapsed: int64(r.Elapsed),
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	} else {
		rec.Result = toResultRecord(r.Result)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweep: encode record: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !s.appendable {
		return errors.New("sweep: store is closed")
	}
	//gatherlint:ignore nondetsource append latency is wall-clock telemetry only, never folded into results
	appendStart := time.Now()
	if err := s.b.AppendRecord(line); err != nil {
		return fmt.Errorf("sweep: append record: %w", err)
	}
	//gatherlint:ignore nondetsource wall-clock telemetry only (see appendStart above)
	obsStoreAppends.Observe(time.Since(appendStart).Seconds())
	obsRecordsAdded.Inc()
	s.done[key] = rec.stored()
	return nil
}

// Keys returns the stored cell keys in sorted order (a stable iteration
// order for tools that copy stores, like the merge tool).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.done))
	for k := range s.done {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Done returns the number of completed cells the store knows about.
func (s *Store) Done() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

// Warnings returns the problems encountered while loading the store
// (corrupt lines skipped, version mismatches).
func (s *Store) Warnings() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.warnings...)
}

// Path returns the record location — the record file path for filesystem
// stores, the coordinator store URL for network ones (useful in logs and
// tests).
func (s *Store) Path() string { return s.path }

// Dir returns the sweep directory the store lives in ("" for stores over
// non-filesystem backends).
func (s *Store) Dir() string { return s.dir }

// Backend returns the coordination backend the store was opened over; the
// sharded runners claim cell-group leases and publish adaptive state through
// it, so leases always travel the same medium as the records they guard.
func (s *Store) Backend() Backend { return s.b }

// Reset discards every stored record: the next run is a clean sweep.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !s.appendable {
		return errors.New("sweep: store is closed")
	}
	if err := s.b.RewriteRecords(nil); err != nil {
		return fmt.Errorf("sweep: reset store: %w", err)
	}
	s.done = make(map[string]Stored)
	s.reloadOff = 0
	return nil
}

// Close releases the store's backend resources. Lookup keeps working; Append
// and Reset fail after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.b.Close()
}
