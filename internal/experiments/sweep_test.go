package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// sweepTables renders the five checkpointable experiments at a small budget.
func sweepTables(cfg Config) []string {
	return []string{
		E5GatheringVsN(cfg, []int{3, 4}).String(),
		E7PhaseTwo(cfg, []int{3}).String(),
		E9Adversaries(cfg, 3).String(),
		E10Baselines(cfg, []int{3}).String(),
		E11Delta(cfg, 3).String(),
	}
}

// TestSweepKillAndResumeTablesByteIdentical is the acceptance test for the
// resumable sweep store: a sweep killed midway (each experiment's store is
// cut to a prefix, the torn record included) and then resumed must render
// tables byte-identical to an uninterrupted run — while executing strictly
// fewer cells, which the cell-count accounting in internal/sweep pins and
// this test re-checks through the store files themselves.
func TestSweepKillAndResumeTablesByteIdentical(t *testing.T) {
	base := Config{Seeds: 2, MaxEvents: 2500}

	// Reference: uninterrupted, fully in memory.
	want := sweepTables(base)

	// Checkpointed run.
	dir := t.TempDir()
	ck := base
	ck.SweepDir = dir
	ck.Warnf = t.Logf
	if got := sweepTables(ck); !equalTables(got, want) {
		t.Fatal("checkpointed tables differ from in-memory tables")
	}

	// Kill each experiment's sweep midway: keep roughly half the records and
	// tear the next line in the middle, as a SIGKILL mid-write would.
	totalRecords, keptRecords := 0, 0
	for _, id := range []string{"E5", "E7", "E9", "E10", "E11"} {
		path := filepath.Join(dir, id, "results.jsonl")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		lines := strings.SplitAfter(string(data), "\n")
		records := len(lines) - 1 // trailing split is empty
		keep := records / 2
		partial := strings.Join(lines[:keep], "") + lines[keep][:len(lines[keep])/2]
		if err := os.WriteFile(path, []byte(partial), 0o644); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		totalRecords += records
		keptRecords += keep
	}
	if keptRecords == 0 || keptRecords >= totalRecords {
		t.Fatalf("bad kill point: kept %d of %d records", keptRecords, totalRecords)
	}

	// Resume: byte-identical tables from strictly fewer executed cells.
	re := ck
	re.Resume = true
	executed := 0
	re.Warnf = func(format string, args ...any) {
		t.Logf(format, args...)
	}
	got := sweepTables(re)
	if !equalTables(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("resumed table %d differs:\n%s\nvs uninterrupted:\n%s", i, got[i], want[i])
			}
		}
		t.Fatal("resumed tables are not byte-identical")
	}
	// The resumed run re-executed only the killed tail: every store must hold
	// all records again, and the number of fresh lines equals total - kept.
	for _, id := range []string{"E5", "E7", "E9", "E10", "E11"} {
		path := filepath.Join(dir, id, "results.jsonl")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		executed += strings.Count(string(data), "\n")
	}
	if executed != totalRecords {
		t.Fatalf("stores hold %d records after resume, want %d", executed, totalRecords)
	}
	fresh := totalRecords - keptRecords
	if fresh >= totalRecords {
		t.Fatalf("resumed run executed %d cells, want strictly fewer than %d", fresh, totalRecords)
	}
}

// TestSweepResumeWithFullStoreExecutesNothing pins the "strictly fewer cells"
// half of the acceptance criterion at the strongest point: resuming a
// completed sweep executes zero cells (the stores gain no new records) yet
// still renders identical tables.
func TestSweepResumeWithFullStoreExecutesNothing(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seeds: 2, MaxEvents: 1500, SweepDir: dir, Warnf: t.Logf}
	want := sweepTables(cfg)

	sizes := map[string]int64{}
	for _, id := range []string{"E5", "E7", "E9", "E10", "E11"} {
		fi, err := os.Stat(filepath.Join(dir, id, "results.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		sizes[id] = fi.Size()
	}

	re := cfg
	re.Resume = true
	if got := sweepTables(re); !equalTables(got, want) {
		t.Fatal("fully resumed tables differ")
	}
	for id, size := range sizes {
		fi, err := os.Stat(filepath.Join(dir, id, "results.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != size {
			t.Fatalf("%s store grew from %d to %d bytes on a full resume", id, size, fi.Size())
		}
	}
}

// TestSweepWithoutResumeResetsStore pins the -out-without--resume semantics:
// an existing store is discarded and the sweep starts clean.
func TestSweepWithoutResumeResetsStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seeds: 1, MaxEvents: 800, SweepDir: dir}
	first := E5GatheringVsN(cfg, []int{3}).String()

	path := filepath.Join(dir, "E5", "results.jsonl")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Re-run without Resume: same table, and the store was rewritten from
	// scratch (same record count, not doubled).
	second := E5GatheringVsN(cfg, []int{3}).String()
	if first != second {
		t.Fatal("reset run rendered a different table")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(after), "\n") != strings.Count(string(before), "\n") {
		t.Fatalf("store not reset: %d lines before, %d after",
			strings.Count(string(before), "\n"), strings.Count(string(after), "\n"))
	}
}

// TestAdaptiveSeedScheduling exercises the adaptive mode end to end: a loose
// target keeps the grid unchanged, and the table notes record the per-group
// seed consumption.
func TestAdaptiveSeedScheduling(t *testing.T) {
	cfg := Config{Seeds: 2, MaxEvents: 1200, AdaptiveCI: 1e9}
	table := E5GatheringVsN(cfg, []int{3})
	notes := strings.Join(table.Notes, "\n")
	if !strings.Contains(notes, "adaptive:") || !strings.Contains(notes, "consumed 2 seeds") {
		t.Fatalf("adaptive notes missing or wrong:\n%s", notes)
	}

	// A tight target with a small cap must grow every group to the cap.
	cfg = Config{Seeds: 2, MaxEvents: 1200, AdaptiveCI: 1e-9, AdaptiveMaxSeeds: 3}
	table = E5GatheringVsN(cfg, []int{3})
	notes = strings.Join(table.Notes, "\n")
	if !strings.Contains(notes, "consumed 3 seeds") || !strings.Contains(notes, "hit seed cap") {
		t.Fatalf("adaptive cap not reflected in notes:\n%s", notes)
	}
	// The extra replicas show up in the runs column (3 seeds x 2 workloads).
	if len(table.Rows) != 1 || table.Rows[0][1] != "6" {
		t.Fatalf("expected 6 runs for n=3, got %+v", table.Rows)
	}
}

// TestAdaptiveShardedTwoWorkersE14ByteIdentical is the experiment-level
// acceptance test for cross-worker adaptive scheduling (the README's
// two-worker walkthrough in miniature): two cooperative workers drain one
// adaptive E14 sweep concurrently, the data-dependent seed grid converges
// fleet-wide, and both render tables byte-identical to a single adaptive
// process — with every seed replica checkpointed exactly once.
func TestAdaptiveShardedTwoWorkersE14ByteIdentical(t *testing.T) {
	base := Config{Seeds: 2, MaxEvents: 1500, AdaptiveCI: 0.000001, AdaptiveMaxSeeds: 3}
	want := E14CrashTolerance(base, 4).String()

	dir := t.TempDir()
	const workers = 2
	got := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := base
			c.SweepDir = dir
			c.ShardOwner = fmt.Sprintf("worker-%d", w)
			c.LeaseTTL = 5 * time.Second
			c.Warnf = t.Logf
			got[w] = E14CrashTolerance(c, 4).String()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if got[w] != want {
			t.Fatalf("worker %d adaptive tables are not byte-identical:\n%s\nvs single-process:\n%s", w, got[w], want)
		}
	}
	// No duplicated seeds: every store record is a distinct cell.
	data, err := os.ReadFile(filepath.Join(dir, "E14", "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	lines := 0
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		lines++
		keys[line[strings.Index(line, "\"key\""):strings.Index(line, "\"elapsed_ns\"")]] = true
	}
	if len(keys) != lines {
		t.Fatalf("%d records but only %d distinct cells (duplicated seeds)", lines, len(keys))
	}
}

// TestShardOwnerReportsWorkerAccounting pins the per-worker accounting line
// format: the CI adaptive-shard-smoke job greps for
// "worker <id> executed N cells" on the warning stream, so rewording the
// line must fail here before it silently breaks the workflow.
func TestShardOwnerReportsWorkerAccounting(t *testing.T) {
	cfg := Config{Seeds: 1, MaxEvents: 800, SweepDir: t.TempDir(), ShardOwner: "w1"}
	var lines []string
	cfg.Warnf = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	E5GatheringVsN(cfg, []int{3})
	pat := regexp.MustCompile(`worker w1 executed [1-9][0-9]* cells`)
	for _, l := range lines {
		if pat.MatchString(l) {
			return
		}
	}
	t.Fatalf("per-worker accounting line missing or reworded (CI greps it): %v", lines)
}

func equalTables(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedSweepTablesByteIdentical is the acceptance test for lease-based
// sharding at the experiment level: two workers drain the five multi-run
// experiments concurrently over one sweep directory, claiming cell groups
// through lease files, and each renders tables byte-identical to a
// single-process in-memory run.
func TestShardedSweepTablesByteIdentical(t *testing.T) {
	base := Config{Seeds: 2, MaxEvents: 2000}
	want := sweepTables(base)

	dir := t.TempDir()
	const workers = 2
	got := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := base
			c.SweepDir = dir
			c.ShardOwner = fmt.Sprintf("worker-%d", w)
			c.LeaseTTL = 5 * time.Second
			c.Warnf = t.Logf
			got[w] = sweepTables(c)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if !equalTables(got[w], want) {
			for i := range got[w] {
				if got[w][i] != want[i] {
					t.Errorf("worker %d table %d differs:\n%s\nvs single-process:\n%s", w, i, got[w][i], want[i])
				}
			}
			t.Fatalf("worker %d tables are not byte-identical", w)
		}
	}
	// The fleet split the work: every store holds each record exactly once.
	for _, id := range []string{"E5", "E7", "E9", "E10", "E11"} {
		path := filepath.Join(dir, id, "results.jsonl")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		keys := map[string]bool{}
		lines := 0
		for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			lines++
			keys[line[strings.Index(line, "\"key\""):strings.Index(line, "\"elapsed_ns\"")]] = true
		}
		if len(keys) != lines {
			t.Fatalf("%s: %d records but only %d distinct cells (duplicated work)", id, lines, len(keys))
		}
	}
}

// TestShardedSweepKillAndReclaimTablesByteIdentical mirrors the PR 2
// kill-and-resume test for the sharded path: a worker is "killed" mid-sweep
// (stores cut to a prefix with a torn trailing record), and a surviving
// sharded worker must finish the missing cells and render byte-identical
// tables.
func TestShardedSweepKillAndReclaimTablesByteIdentical(t *testing.T) {
	base := Config{Seeds: 2, MaxEvents: 2000}
	want := sweepTables(base)

	dir := t.TempDir()
	ck := base
	ck.SweepDir = dir
	ck.Warnf = t.Logf
	if got := sweepTables(ck); !equalTables(got, want) {
		t.Fatal("checkpointed tables differ from in-memory tables")
	}
	for _, id := range []string{"E5", "E7", "E9", "E10", "E11"} {
		path := filepath.Join(dir, id, "results.jsonl")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		lines := strings.SplitAfter(string(data), "\n")
		keep := (len(lines) - 1) / 2
		partial := strings.Join(lines[:keep], "") + lines[keep][:len(lines[keep])/2]
		if err := os.WriteFile(path, []byte(partial), 0o644); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}

	survivor := base
	survivor.SweepDir = dir
	survivor.ShardOwner = "survivor"
	survivor.LeaseTTL = time.Second
	survivor.Warnf = t.Logf
	if got := sweepTables(survivor); !equalTables(got, want) {
		t.Fatal("sharded survivor tables are not byte-identical to the single-process run")
	}
}
