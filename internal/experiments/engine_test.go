package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/fatgather/fatgather/internal/baseline"
	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/sim"
)

// TestE5E10EngineBitIdenticalToSequential is the acceptance check for the
// batch engine: the exact E5 and E10 cell grids at 8 seeds per cell, run
// through the parallel engine, must produce per-seed results bit-identical
// to plain sequential execution of the same cells.
func TestE5E10EngineBitIdenticalToSequential(t *testing.T) {
	cfg := Config{Seeds: 8, MaxEvents: 4000}
	cells := e5Cells(cfg, []int{3, 5})
	cells = append(cells, e10Cells(cfg, []int{3, 5},
		[]sim.Algorithm{sim.PaperAlgorithm{}, baseline.Gravity{}, baseline.SmallN{}, baseline.Transparent{}})...)

	parallel := engine.Run(cells, engine.Options{Workers: runtime.GOMAXPROCS(0)})
	for i, c := range cells {
		res, err := c.Run()
		if (err == nil) != (parallel[i].Err == nil) {
			t.Fatalf("cell %d: sequential err=%v engine err=%v", i, err, parallel[i].Err)
		}
		if !reflect.DeepEqual(res, parallel[i].Result) {
			t.Fatalf("cell %d (%s n=%d seed=%d): engine result differs from sequential execution",
				i, c.AlgorithmName(), c.N, c.WorkloadSeed)
		}
	}
}

// TestExperimentsIdenticalForAnyWorkerCount pins the refactored drivers: the
// printed tables must not depend on the worker pool size.
func TestExperimentsIdenticalForAnyWorkerCount(t *testing.T) {
	var ref []string
	for _, workers := range []int{1, 4} {
		cfg := Config{Seeds: 2, MaxEvents: 3000, Workers: workers}
		got := []string{
			E5GatheringVsN(cfg, []int{3, 4}).String(),
			E7PhaseTwo(cfg, []int{3}).String(),
			E9Adversaries(cfg, 3).String(),
			E10Baselines(cfg, []int{3}).String(),
			E11Delta(cfg, 3).String(),
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("table %d differs between workers=1 and workers=%d:\n%s\nvs\n%s", i, workers, ref[i], got[i])
			}
		}
	}
}

// benchWorkerCounts is {1, GOMAXPROCS}; on a single-core machine there is no
// all-cores datapoint to measure, so only the sequential entry runs.
func benchWorkerCounts() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkE5EngineWorkers measures the batch engine on the E5 grid at 8
// seeds per cell with 1 worker (the sequential path) and all cores; on a
// multi-core machine the all-core run is expected to be at least 2x faster.
func BenchmarkE5EngineWorkers(b *testing.B) {
	cfg := Config{Seeds: 8, MaxEvents: 20000}
	cells := e5Cells(cfg, []int{4, 8})
	for _, workers := range benchWorkerCounts() {
		name := "sequential"
		if workers > 1 {
			name = "all-cores"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.Run(cells, engine.Options{Workers: workers})
			}
		})
	}
}

// BenchmarkE10EngineWorkers is the E10 counterpart of BenchmarkE5EngineWorkers.
func BenchmarkE10EngineWorkers(b *testing.B) {
	cfg := Config{Seeds: 8, MaxEvents: 20000}
	cells := e10Cells(cfg, []int{4, 8},
		[]sim.Algorithm{sim.PaperAlgorithm{}, baseline.Gravity{}, baseline.SmallN{}, baseline.Transparent{}})
	for _, workers := range benchWorkerCounts() {
		name := "sequential"
		if workers > 1 {
			name = "all-cores"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.Run(cells, engine.Options{Workers: workers})
			}
		})
	}
}
