package experiments

import (
	"strings"
	"testing"
)

// quickCfg keeps the experiment drivers fast enough for unit tests.
var quickCfg = Config{Seeds: 1, MaxEvents: 20000}

func checkTable(t *testing.T, tbl Table, wantID string) {
	t.Helper()
	if tbl.ID != wantID {
		t.Fatalf("table id = %q want %q", tbl.ID, wantID)
	}
	if len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", wantID)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("%s row %d: %d cells for %d columns", wantID, i, len(row), len(tbl.Columns))
		}
	}
	s := tbl.String()
	if !strings.Contains(s, wantID) || !strings.Contains(s, tbl.Columns[0]) {
		t.Fatalf("%s: String() missing header", wantID)
	}
}

func TestE1(t *testing.T)  { checkTable(t, E1StateCycle(quickCfg), "E1") }
func TestE2(t *testing.T)  { checkTable(t, E2MoveToPoint(quickCfg), "E2") }
func TestE3(t *testing.T)  { checkTable(t, E3FindPoints(quickCfg), "E3") }
func TestE12(t *testing.T) { checkTable(t, E12Primitives(quickCfg), "E12") }

func TestE4StateCoverage(t *testing.T) {
	tbl := E4StateCoverage(quickCfg)
	checkTable(t, tbl, "E4")
	if len(tbl.Rows) != 17 {
		t.Fatalf("expected 17 state rows, got %d", len(tbl.Rows))
	}
	if len(tbl.Notes) == 0 {
		t.Fatal("coverage note missing")
	}
}

func TestE5SmallScale(t *testing.T) {
	tbl := E5GatheringVsN(quickCfg, []int{2, 3})
	checkTable(t, tbl, "E5")
	if len(tbl.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(tbl.Rows))
	}
}

func TestE6SmallScale(t *testing.T) { checkTable(t, E6PhaseOne(quickCfg, 3), "E6") }

func TestE7SmallScale(t *testing.T) {
	checkTable(t, E7PhaseTwo(quickCfg, []int{3}), "E7")
}

func TestE8SmallScale(t *testing.T) { checkTable(t, E8HullMonotonicity(quickCfg, 4), "E8") }

func TestE9SmallScale(t *testing.T) { checkTable(t, E9Adversaries(quickCfg, 3), "E9") }

func TestE10SmallScale(t *testing.T) {
	tbl := E10Baselines(quickCfg, []int{3})
	checkTable(t, tbl, "E10")
	if len(tbl.Rows) != 4 { // four algorithms, one n
		t.Fatalf("expected 4 rows, got %d", len(tbl.Rows))
	}
}

func TestE11SmallScale(t *testing.T) { checkTable(t, E11Delta(quickCfg, 3), "E11") }

// TestSuiteIDsMatchTables pins the single-source-of-truth property of the
// suite registry: the id each driver stamps on its Table must equal the id
// Suite (and therefore gatherbench's -only filter) selects it by.
func TestSuiteIDsMatchTables(t *testing.T) {
	for _, e := range Suite() {
		if got := e.Run(quickCfg).ID; got != e.ID {
			t.Fatalf("suite entry %q produces table id %q", e.ID, got)
		}
	}
}

func TestTableString(t *testing.T) {
	tbl := Table{
		ID:      "X",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "22"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	s := tbl.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "333") || !strings.Contains(s, "note: hello") {
		t.Fatalf("unexpected render:\n%s", s)
	}
}
