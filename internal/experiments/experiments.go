package experiments

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"github.com/fatgather/fatgather/internal/adversary"
	"github.com/fatgather/fatgather/internal/baseline"
	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/core"
	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/metrics"
	"github.com/fatgather/fatgather/internal/obs"
	"github.com/fatgather/fatgather/internal/sched"
	"github.com/fatgather/fatgather/internal/sim"
	"github.com/fatgather/fatgather/internal/sweep"
	"github.com/fatgather/fatgather/internal/sweep/netbackend"
	"github.com/fatgather/fatgather/internal/vision"
	"github.com/fatgather/fatgather/internal/workload"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// DefaultMaxEvents is the per-run event budget when Config.MaxEvents is
// unset, shared by the whole experiment suite and by gatherbench's
// -max-events default. It is deliberately smaller than sim.DefaultMaxEvents
// (200000): a sweep multiplies the budget across thousands of cells, so the
// suite trades the last slow-converging tail for cost, while a single
// interactive run keeps the headroom. Both defaults are pinned by tests.
const DefaultMaxEvents = 150000

// Config bundles the knobs shared by the experiment drivers.
type Config struct {
	Seeds     int // number of seeds per cell (default 5)
	MaxEvents int // event budget per run (default DefaultMaxEvents)
	// Adversary, when non-empty, is an adversary spec string
	// (adversary.ParseSpec: "fair", "crash(2)", "greedy-stall+noise=0.1")
	// that overrides the fixed adversary of the single-adversary multi-run
	// experiments (E5, E7, E10, E11). Experiments that sweep their own
	// adversary axis (E9, E13, E14, E15) ignore it. An invalid spec warns and
	// falls back to the driver default.
	Adversary string
	// Workers sizes the engine worker pool for the multi-run experiments
	// (E5, E7, E9, E10, E11); <=0 means GOMAXPROCS. Results are identical
	// for every worker count.
	Workers int
	// SweepDir, when non-empty, makes the multi-run experiments stream every
	// cell result to a per-experiment store under this directory
	// (SweepDir/E5, SweepDir/E7, ...) as workers finish, and — together with
	// Resume — reuse completed cells on restart. Tables are byte-identical to
	// an uninterrupted in-memory run.
	SweepDir string
	// Coordinator, when non-empty, is the base URL of a gatherd coordinator
	// (http://host:port): the multi-run experiments then checkpoint and
	// coordinate through per-experiment stores on the coordinator (store
	// names E5, E7, ...) instead of a shared filesystem directory. Mutually
	// exclusive with SweepDir. Coordinator runs always resume — the record
	// log is the fleet's shared state, never reset by one worker — and
	// compose with ShardOwner exactly like SweepDir does: leases just live on
	// the coordinator instead of in lease files.
	Coordinator string
	// Resume reuses the completed cells found in SweepDir; without it an
	// existing store is reset and the sweep starts clean.
	Resume bool
	// AdaptiveCI, when positive, enables adaptive seed scheduling: each cell
	// group keeps receiving seed replicas until the 95% CI half-width of its
	// event count falls to AdaptiveCI, or the group hits AdaptiveMaxSeeds.
	// The per-group seed consumption is recorded in the table notes.
	AdaptiveCI float64
	// AdaptiveMaxSeeds caps the replicas per group (default sweep.DefaultMaxSeeds).
	AdaptiveMaxSeeds int
	// ShardOwner, when non-empty, runs the multi-run experiments as one
	// worker of a cooperative multi-process sweep: cell groups are claimed
	// through lease files in the shared SweepDir, groups completed or leased
	// by peers are skipped, and expired leases (dead workers) are reclaimed.
	// Requires SweepDir; the store is never reset (sharded runs always
	// resume), and every worker renders the complete, byte-identical tables
	// once the fleet drains the sweep. Composes with AdaptiveCI: the fleet
	// then coordinates the data-dependent adaptive grid through the shared
	// store and per-group adaptive-state records, converging on the same
	// per-group seed counts (and tables) as a single-process adaptive run.
	ShardOwner string
	// LeaseTTL is the lease expiry in cooperative mode (default
	// sweep.DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Shards and ShardIndex statically partition the cell groups by a stable
	// hash when Shards > 1: this process only runs groups with
	// hash%Shards == ShardIndex. Unlike lease mode this needs no shared
	// store, but without one each process renders only its own share.
	Shards int
	// ShardIndex is this process's static shard (0 <= ShardIndex < Shards).
	ShardIndex int
	// Steal enables lease-aware work stealing when ShardOwner and Shards are
	// both set: a worker that drains its static share claims unclaimed or
	// expired tail groups outside it instead of idling until peers finish.
	// Results stay byte-identical — stealing only redistributes work.
	Steal bool
	// Warnf, when non-nil, receives sweep-store warnings (corrupt records
	// skipped on load, version mismatches, checkpoint failures).
	Warnf func(format string, args ...any)
}

// sharded reports whether any sharding mode is configured.
func (c Config) sharded() bool { return c.ShardOwner != "" || c.Shards > 1 }

// Validate checks the configuration up front and returns a clear error for
// combinations that would otherwise fail silently — most importantly a shard
// index outside [0, Shards), which would make every sharded run claim zero
// cell groups and render empty tables. cmd/gatherbench calls it after flag
// parsing; library callers should too. runCells additionally consults it and
// degrades a misconfigured sharded run to an unsharded one (with a warning)
// rather than doing no work.
func (c Config) Validate() error {
	if c.Seeds < 0 {
		return fmt.Errorf("experiments: Seeds must be non-negative, got %d", c.Seeds)
	}
	if c.MaxEvents < 0 {
		return fmt.Errorf("experiments: MaxEvents must be non-negative, got %d", c.MaxEvents)
	}
	if c.Adversary != "" {
		if _, err := adversary.ParseSpec(c.Adversary); err != nil {
			return fmt.Errorf("experiments: Adversary: %w", err)
		}
	}
	if c.SweepDir != "" && c.Coordinator != "" {
		return fmt.Errorf("experiments: SweepDir and Coordinator are mutually exclusive (pick one coordination medium)")
	}
	if c.Coordinator != "" {
		// The store name is appended per experiment; validate the URL with a
		// placeholder so a typo fails here, not on the first claim.
		if _, err := netbackend.NewClient(c.Coordinator, "validate"); err != nil {
			return fmt.Errorf("experiments: Coordinator: %w", err)
		}
	}
	if c.Resume && c.SweepDir == "" && c.Coordinator == "" {
		return fmt.Errorf("experiments: Resume requires SweepDir or Coordinator")
	}
	if c.AdaptiveCI < 0 {
		return fmt.Errorf("experiments: AdaptiveCI must be non-negative, got %g", c.AdaptiveCI)
	}
	if c.AdaptiveMaxSeeds < 0 {
		return fmt.Errorf("experiments: AdaptiveMaxSeeds must be non-negative, got %d", c.AdaptiveMaxSeeds)
	}
	if c.ShardOwner != "" && c.SweepDir == "" && c.Coordinator == "" {
		return fmt.Errorf("experiments: ShardOwner requires SweepDir or Coordinator (leases live in the shared sweep directory or on the coordinator)")
	}
	if c.LeaseTTL < 0 {
		return fmt.Errorf("experiments: LeaseTTL must be non-negative, got %v", c.LeaseTTL)
	}
	if c.LeaseTTL > 0 && c.ShardOwner == "" {
		return fmt.Errorf("experiments: LeaseTTL requires ShardOwner")
	}
	if c.Shards < 0 {
		return fmt.Errorf("experiments: Shards must be non-negative, got %d", c.Shards)
	}
	if c.Shards > 1 && (c.ShardIndex < 0 || c.ShardIndex >= c.Shards) {
		return fmt.Errorf("experiments: ShardIndex must be in [0, %d), got %d", c.Shards, c.ShardIndex)
	}
	if c.ShardIndex != 0 && c.Shards <= 1 {
		return fmt.Errorf("experiments: ShardIndex %d requires Shards > 1, got %d", c.ShardIndex, c.Shards)
	}
	if c.Steal && c.ShardOwner == "" {
		return fmt.Errorf("experiments: Steal requires ShardOwner (stealing is arbitrated through lease files)")
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 5
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = DefaultMaxEvents
	}
	return c
}

// engineOpts is the engine configuration the drivers share.
func (c Config) engineOpts() engine.Options {
	return engine.Options{Workers: c.Workers}
}

func (c Config) warnf(format string, args ...any) {
	if c.Warnf != nil {
		c.Warnf(format, args...)
		return
	}
	// Default warning sink: the serialized obs logger (one writer, logfmt
	// lines on stderr) instead of a silent drop — sweep-store corruption and
	// shard accounting stay visible to library callers that set no Warnf.
	obs.Warnf("experiments", format, args...)
}

// openCoordinatorStore opens an experiment's named store on a gatherd
// coordinator (the network counterpart of sweep.OpenShared on SweepDir/<id>).
func openCoordinatorStore(coordinator, id string) (*sweep.Store, error) {
	cli, err := netbackend.NewClient(coordinator, id)
	if err != nil {
		return nil, err
	}
	st, err := sweep.OpenBackend(cli)
	if err != nil {
		_ = cli.Close()
		return nil, err
	}
	return st, nil
}

// runCells executes an experiment's cell grid through the resumable sweep
// layer: workload generation is memoized per (kind, n, seed), results stream
// to SweepDir/<id> when checkpointing is on, and adaptive seed scheduling
// grows the grid when AdaptiveCI is set. With ShardOwner or Shards set, the
// grid runs as one worker of a multi-process sharded sweep instead (cells
// another shard owns and no store can merge are dropped from the returned
// slice, so partial static tables aggregate only what actually ran);
// adaptive scheduling composes with sharding through the cross-worker
// protocol (sweep.RunAdaptiveSharded), so a fleet converges on the same
// data-dependent grid — and tables — as a single adaptive process. The
// returned results are otherwise identical to engine.Run on the same cells
// (plus any adaptive replicas, reported in the GroupSeeds slice, which is nil
// for fixed-seed runs).
func (c Config) runCells(id string, cells []engine.Cell) ([]engine.CellResult, []sweep.GroupSeeds) {
	// Telemetry: mark the sweep active for /progress while the grid drains.
	// Write-only (one-way contract); the progress view never feeds back into
	// scheduling.
	obs.SweepBegin(id, c.ShardOwner)
	defer obs.SweepEnd()
	if err := c.Validate(); err != nil {
		// A misconfigured shard silently claims zero groups; running the
		// sweep unsharded (and saying so) is strictly more useful. Only the
		// sharding knobs are dropped — checkpointing (SweepDir/Resume) keeps
		// working, so a long degraded run still resumes after a crash.
		c.warnf("experiments: %s: %v (running unsharded)", id, err)
		c.ShardOwner = ""
		c.Shards, c.ShardIndex = 0, 0
		c.LeaseTTL = 0
		c.Steal = false
	}
	opts := sweep.Options{Engine: c.engineOpts(), Cache: workload.NewCache()}
	sharded := c.sharded()
	if c.Coordinator != "" {
		st, err := openCoordinatorStore(c.Coordinator, id)
		if err != nil {
			// Checkpointing is an accelerator, never a gate — same contract as
			// an unusable SweepDir: warn and run the sweep in memory.
			c.warnf("experiments: %s: %v (running without checkpoints)", id, err)
		} else {
			// Coordinator runs always resume; the record log is the fleet's
			// shared state and is never reset by one worker.
			defer st.Close()
			for _, w := range st.Warnings() {
				c.warnf("experiments: %s: %s", id, w)
			}
			opts.Store = st
		}
	}
	if c.SweepDir != "" {
		open := sweep.Open
		if sharded {
			// Peers may be appending to the same store concurrently: load
			// without compacting, and never reset (sharded runs always
			// resume — a reset would discard the fleet's work).
			open = sweep.OpenShared
		}
		st, err := open(filepath.Join(c.SweepDir, id))
		if err != nil {
			// Checkpointing is an accelerator, never a gate: warn and run the
			// sweep in memory.
			c.warnf("experiments: %s: %v (running without checkpoints)", id, err)
		} else {
			defer st.Close()
			if !c.Resume && !sharded {
				if rerr := st.Reset(); rerr != nil {
					c.warnf("experiments: %s: %v", id, rerr)
				}
			}
			for _, w := range st.Warnings() {
				c.warnf("experiments: %s: %s", id, w)
			}
			opts.Store = st
		}
	}
	if sharded && c.ShardOwner != "" && opts.Store == nil {
		c.warnf("experiments: %s: lease-based sharding requires a sweep store; running unsharded", id)
		sharded = false
	}
	shard := sweep.Shard{
		Owner:  c.ShardOwner,
		TTL:    c.LeaseTTL,
		Shards: c.Shards,
		Index:  c.ShardIndex,
		Steal:  c.Steal,
	}
	reportShardStats := func(stats sweep.ShardStats) {
		if stats.AppendErrs > 0 {
			c.warnf("experiments: %s: %d results could not be checkpointed", id, stats.AppendErrs)
		}
		if stats.LeaseErrs > 0 {
			c.warnf("experiments: %s: %d cell groups ran without a lease (lease dir trouble); peers may duplicate that work", id, stats.LeaseErrs)
		}
		if c.ShardOwner != "" {
			// A per-worker accounting line (on the warning stream, the only
			// side channel next to the shared tables): how the fleet's work
			// actually split. CI smoke jobs assert on it.
			c.warnf("experiments: %s: worker %s executed %d cells, restored %d (claimed %d groups, stole %d, reclaimed %d leases)",
				id, c.ShardOwner, stats.Executed, stats.Restored, stats.GroupsClaimed, stats.GroupsStolen, stats.LeasesReclaimed)
		}
	}
	if c.AdaptiveCI > 0 {
		ad := sweep.Adaptive{TargetCI: c.AdaptiveCI, MaxSeeds: c.AdaptiveMaxSeeds}
		if sharded {
			results, infos, stats := sweep.RunAdaptiveSharded(cells, opts, ad, shard)
			reportShardStats(stats)
			return sweep.DropNotClaimed(results), infos
		}
		results, infos, stats := sweep.RunAdaptive(cells, opts, ad)
		if stats.AppendErrs > 0 {
			c.warnf("experiments: %s: %d results could not be checkpointed", id, stats.AppendErrs)
		}
		return results, infos
	}
	if sharded {
		results, stats := sweep.RunSharded(cells, opts, shard)
		reportShardStats(stats)
		return sweep.DropNotClaimed(results), nil
	}
	results, stats := sweep.Run(cells, opts)
	if stats.AppendErrs > 0 {
		c.warnf("experiments: %s: %d results could not be checkpointed", id, stats.AppendErrs)
	}
	return results, nil
}

// collect folds cell results into groups in cell order (the streaming
// Collector fed after the fact — identical grouping either way).
func collect(results []engine.CellResult, keyOf func(engine.CellResult) string) []engine.Group {
	col := engine.NewCollector(keyOf)
	for _, r := range results {
		col.Add(r)
	}
	return col.Groups()
}

// adaptiveNotes records per-group seed consumption on a table when adaptive
// seed scheduling ran.
func adaptiveNotes(t *Table, infos []sweep.GroupSeeds) {
	for _, g := range infos {
		state := "converged"
		if !g.Converged {
			state = "hit seed cap"
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"adaptive: %s consumed %d seeds (95%% CI half-width %.1f, %s)",
			g.Key, g.Seeds, g.HalfWidth, state))
	}
}

// snapshotEvery is the configuration-snapshot cadence shared by every
// experiment run (both the direct drivers and the engine cell builders).
const snapshotEvery = 50

// adversarySpec resolves the adversary used by a single-adversary multi-run
// driver: the Config.Adversary override when set, the driver's default spec
// string otherwise. Invalid overrides warn and fall back to the default.
func (c Config) adversarySpec(def string) adversary.Spec {
	text := c.Adversary
	if text == "" {
		text = def
	}
	spec, err := adversary.ParseSpec(text)
	if err != nil {
		c.warnf("experiments: %v (falling back to %q)", err, def)
		spec, err = adversary.ParseSpec(def)
		if err != nil {
			panic(fmt.Sprintf("experiments: bad default adversary spec %q: %v", def, err))
		}
	}
	return spec
}

// stampAdversary writes an adversary spec into a cell's structured fields.
func stampAdversary(cell *engine.Cell, spec adversary.Spec) {
	cell.Adversary = spec.Strategy
	cell.Crash = spec.Crash
	cell.Noise = spec.Noise
	cell.Trunc = spec.Trunc
}

// runOnce runs the paper's algorithm on one workload instance.
func runOnce(cfg config.Geometric, adv sched.Adversary, maxEvents int, alg sim.Algorithm) sim.Result {
	res, err := sim.Run(cfg, sim.Options{
		Algorithm:     alg,
		Adversary:     adv,
		MaxEvents:     maxEvents,
		SnapshotEvery: snapshotEvery,
	})
	if err != nil {
		return sim.Result{Err: err}
	}
	return res
}

func fmtF(x float64) string  { return fmt.Sprintf("%.1f", x) }
func fmtF2(x float64) string { return fmt.Sprintf("%.2f", x) }

// E1StateCycle exercises the robot state machine of Figure 1: a tangent pair
// of robots runs Look-Compute and terminates; the table reports the event
// counts per state-machine transition kind.
func E1StateCycle(cfg Config) Table {
	cfg = cfg.withDefaults()
	res := runOnce(workload.TangentRing(2), sched.NewFair(), cfg.MaxEvents, nil)
	return Table{
		ID:      "E1",
		Title:   "Figure 1 — robot state-machine cycle (tangent pair, fair adversary)",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"outcome", res.Outcome.String()},
			{"events", fmt.Sprintf("%d", res.Events)},
			{"cycles", fmt.Sprintf("%d", res.Cycles)},
			{"terminated", fmt.Sprintf("%d/%d", res.TerminatedCount, res.N)},
			{"arrivals", fmt.Sprintf("%d", res.Arrivals)},
			{"collisions", fmt.Sprintf("%d", res.Collisions)},
		},
	}
}

// E2MoveToPoint reproduces the Figure 2 construction across m and distances:
// the offset of µ from the center line must equal 1/(2m)−ε and the tangency
// stop point must be at distance 2 from the target robot.
func E2MoveToPoint(cfg Config) Table {
	t := Table{
		ID:      "E2",
		Title:   "Figure 2 — Move-to-Point construction",
		Columns: []string{"m", "dist(c1,c2)", "offset(µ)", "1/(2m)-eps", "stop dist to c2"},
	}
	for _, m := range []int{2, 4, 8, 16, 32, 64} {
		for _, dist := range []float64{4, 10, 25} {
			c1 := geom.V(0, 0)
			c2 := geom.V(dist, 0)
			interior := geom.V(dist/2, 5)
			mu := core.MoveToPoint(c1, c2, m, interior)
			stop := core.TangencyTarget(c1, c2, mu)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", m),
				fmtF(dist),
				fmt.Sprintf("%.4f", mu.Y),
				fmt.Sprintf("%.4f", 1/(2*float64(m))-core.Epsilon(m)),
				fmt.Sprintf("%.4f", stop.Dist(c2)),
			})
		}
	}
	return t
}

// E3FindPoints reproduces Figures 3 and 5: Find-Points candidate counts on
// hulls with and without space, and the straight-line rectangle test.
func E3FindPoints(cfg Config) Table {
	t := Table{
		ID:      "E3",
		Title:   "Figures 3 & 5 — Find-Points candidates and straight-line rectangle",
		Columns: []string{"case", "result"},
	}
	bigSquare := config.Geometric{geom.V(0, 0), geom.V(10, 0), geom.V(10, 10), geom.V(0, 10)}
	tight := config.Geometric{geom.V(0, 0), geom.V(3.8, 0), geom.V(1.9, 3.29)}
	t.Rows = append(t.Rows,
		[]string{"find-points big square (n=4)", fmt.Sprintf("%d candidates", len(core.FindPoints(bigSquare, 4)))},
		[]string{"find-points tight triangle (n=3)", fmt.Sprintf("%d candidates", len(core.FindPoints(tight, 3)))},
		[]string{"rect test, sag=0.05 < 1/10", fmt.Sprintf("%v", core.InStraightLineRect(geom.V(0, 0), geom.V(5, 0.05), geom.V(10, 0), 10))},
		[]string{"rect test, sag=0.50 > 1/10", fmt.Sprintf("%v", core.InStraightLineRect(geom.V(0, 0), geom.V(5, 0.5), geom.V(10, 0), 10))},
	)
	return t
}

// E4StateCoverage verifies all 17 algorithmic states of Figure 4 are
// reachable, by running the algorithm over a battery of workloads and
// counting terminal-state visits (non-terminal states are visited on the way
// and recorded through decision traces).
func E4StateCoverage(cfg Config) Table {
	cfg = cfg.withDefaults()
	visited := make(map[core.AlgState]int)
	record := func(d core.Decision) {
		for _, s := range d.Trace {
			visited[s]++
		}
	}
	// Curated views driving specific branches.
	views := []core.View{
		core.NewView(geom.V(0, 0), nil, 1),                                                                     // Connected (single robot)
		core.NewView(geom.V(0, 0), []geom.Vec{geom.V(2, 0)}, 2),                                                // Connected pair
		core.NewView(geom.V(0, 0), []geom.Vec{geom.V(10, 0)}, 2),                                               // NotConnected
		core.NewView(geom.V(6, 0), []geom.Vec{geom.V(0, 0), geom.V(12, 0)}, 3),                                 // SeeTwoRobot
		core.NewView(geom.V(0, 0), []geom.Vec{geom.V(6, 0)}, 3),                                                // partial view
		core.NewView(geom.V(10, 9), []geom.Vec{geom.V(0, 0), geom.V(20, 0), geom.V(20, 20), geom.V(0, 20)}, 5), // NotChange
		core.NewView(geom.V(1.9, 1.1), []geom.Vec{geom.V(0, 0), geom.V(3.8, 0), geom.V(1.9, 3.29)}, 4),         // IsTouching/NoSpace
		core.NewView(geom.V(0, 0), []geom.Vec{geom.V(3.8, 0), geom.V(1.9, 3.29), geom.V(1.9, 1.1)}, 4),         // NoSpaceForMore
	}
	for _, v := range views {
		record(core.Decide(v))
	}
	// Add simulation-driven coverage.
	for _, kind := range []workload.Kind{workload.KindRandom, workload.KindCollinear, workload.KindClustered} {
		w, err := workload.Generate(kind, 6, 11)
		if err != nil {
			continue
		}
		res := runOnce(w, sched.NewRandomAsync(7), cfg.MaxEvents/10, nil)
		// Fold in declaration order, not map order (gatherlint detmaprange);
		// the sums commute, but the discipline is uniform.
		for _, s := range core.AllAlgStates() {
			visited[s] += res.StateVisits[s]
		}
	}
	t := Table{
		ID:      "E4",
		Title:   "Figure 4 — algorithmic state coverage",
		Columns: []string{"state", "visits"},
	}
	covered := 0
	for _, s := range core.AllAlgStates() {
		if visited[s] > 0 {
			covered++
		}
		t.Rows = append(t.Rows, []string{s.String(), fmt.Sprintf("%d", visited[s])})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d/%d states reached", covered, core.NumAlgStates))
	return t
}

// E5GatheringVsN measures success rate and cost of the paper's algorithm as n
// grows (Theorem 26 exercised empirically).
func E5GatheringVsN(cfg Config, ns []int) Table {
	cfg = cfg.withDefaults()
	if len(ns) == 0 {
		ns = []int{2, 3, 4, 5, 8, 12, 16}
	}
	t := Table{
		ID:      "E5",
		Title:   "Theorem 26 — gathering success and cost vs n (random + clustered workloads)",
		Columns: []string{"n", "runs", "gathered", "all-terminated", "median events", "median cycles", "median distance"},
	}
	results, infos := cfg.runCells("E5", e5Cells(cfg, ns))
	groups := collect(results, func(r engine.CellResult) string {
		return fmt.Sprintf("%d", r.Cell.N)
	})
	adaptiveNotes(&t, infos)
	for _, g := range groups {
		t.Rows = append(t.Rows, []string{
			g.Key,
			fmt.Sprintf("%d", g.Runs),
			fmtF2(g.GatheredRate),
			fmtF2(g.TerminatedRate),
			fmtF(g.Events.Median),
			fmtF(g.Cycles.Median),
			fmtF(g.Distance.Median),
		})
	}
	return t
}

// e5Cells is the E5 cell grid: (n x seed x {clustered, nested-hulls}) under
// the random-async adversary.
func e5Cells(cfg Config, ns []int) []engine.Cell {
	spec := cfg.adversarySpec("random-async")
	var cells []engine.Cell
	for _, n := range ns {
		for seed := 0; seed < cfg.Seeds; seed++ {
			for _, kind := range []workload.Kind{workload.KindClustered, workload.KindNestedHulls} {
				cell := engine.Cell{
					Workload:      kind,
					N:             n,
					WorkloadSeed:  int64(seed + 1),
					AdversarySeed: int64(100 + seed),
					MaxEvents:     cfg.MaxEvents,
					SnapshotEvery: snapshotEvery,
				}
				stampAdversary(&cell, spec)
				cells = append(cells, cell)
			}
		}
	}
	return cells
}

// E6PhaseOne measures the time to reach the phase-1 target (all robots on the
// hull and fully visible) per workload shape (Lemma 22).
func E6PhaseOne(cfg Config, n int) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E6",
		Title:   fmt.Sprintf("Lemma 22 — events until all-on-hull & fully visible (n=%d)", n),
		Columns: []string{"workload", "runs", "reached", "median events to safe config"},
	}
	for _, kind := range workload.Kinds() {
		var reached []bool
		var when []int
		for seed := 0; seed < cfg.Seeds; seed++ {
			w, err := workload.Generate(kind, n, int64(seed+1))
			if err != nil {
				continue
			}
			res := runOnce(w, sched.NewRandomAsync(int64(200+seed)), cfg.MaxEvents, nil)
			ok := res.Milestones.SafeConfig >= 0
			reached = append(reached, ok)
			if ok {
				when = append(when, res.Milestones.SafeConfig)
			}
		}
		medianStr := "-"
		if len(when) > 0 {
			medianStr = fmtF(metrics.SummarizeInts(when).Median)
		}
		t.Rows = append(t.Rows, []string{
			string(kind), fmt.Sprintf("%d", len(reached)),
			fmtF2(metrics.SuccessRate(reached)), medianStr,
		})
	}
	return t
}

// E7PhaseTwo measures the time from a safe (phase-2) configuration to a
// connected configuration (Lemma 23), starting from spread rings.
func E7PhaseTwo(cfg Config, ns []int) Table {
	cfg = cfg.withDefaults()
	if len(ns) == 0 {
		ns = []int{3, 5, 8, 12}
	}
	t := Table{
		ID:      "E7",
		Title:   "Lemma 23 — events from safe configuration to connected (ring starts)",
		Columns: []string{"n", "runs", "connected", "median events to connected"},
	}
	spec := cfg.adversarySpec("random-async")
	var cells []engine.Cell
	for _, n := range ns {
		for seed := 0; seed < cfg.Seeds; seed++ {
			cell := engine.Cell{
				Initial:       workload.Ring(n, 6+2*float64(n)),
				N:             n,
				AdversarySeed: int64(300 + seed),
				MaxEvents:     cfg.MaxEvents,
				SnapshotEvery: snapshotEvery,
			}
			stampAdversary(&cell, spec)
			cells = append(cells, cell)
		}
	}
	results, infos := cfg.runCells("E7", cells)
	adaptiveNotes(&t, infos)
	for _, n := range ns {
		var ok []bool
		var when []int
		for _, r := range results {
			if r.Cell.N != n || r.Err != nil {
				continue
			}
			good := r.Result.Milestones.Connected >= 0
			ok = append(ok, good)
			if good {
				when = append(when, r.Result.Milestones.Connected)
			}
		}
		medianStr := "-"
		if len(when) > 0 {
			medianStr = fmtF(metrics.SummarizeInts(when).Median)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", len(ok)),
			fmtF2(metrics.SuccessRate(ok)), medianStr,
		})
	}
	return t
}

// E8HullMonotonicity checks the hull-area series of runs against the paper's
// monotonicity lemmas: the hull never shrinks while robots remain inside it
// (Lemma 20) and never grows once the safe configuration is reached and
// convergence begins (Lemma 21) — measured as bounded drawdown/rise.
func E8HullMonotonicity(cfg Config, n int) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E8",
		Title:   fmt.Sprintf("Lemmas 20-21 — hull area evolution (n=%d)", n),
		Columns: []string{"workload", "initial area", "peak area", "final area", "max shrink before peak", "max growth after peak"},
	}
	for _, kind := range []workload.Kind{workload.KindRandom, workload.KindClustered, workload.KindNestedHulls} {
		w, err := workload.Generate(kind, n, 7)
		if err != nil {
			continue
		}
		res := runOnce(w, sched.NewRandomAsync(303), cfg.MaxEvents, nil)
		series := res.HullAreaSeries
		if len(series) == 0 {
			continue
		}
		peakIdx := 0
		for i, a := range series {
			if a > series[peakIdx] {
				peakIdx = i
			}
		}
		t.Rows = append(t.Rows, []string{
			string(kind),
			fmtF2(series[0]),
			fmtF2(series[peakIdx]),
			fmtF2(series[len(series)-1]),
			fmtF2(metrics.MaxDrawdown(series[:peakIdx+1])),
			fmtF2(metrics.MaxRise(series[peakIdx:])),
		})
	}
	return t
}

// E9Adversaries compares the cost of gathering under the adversary
// strategies (Lemma 25: bad configurations only delay, never prevent).
func E9Adversaries(cfg Config, n int) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E9",
		Title:   fmt.Sprintf("Lemma 25 — adversary strategies (n=%d, clustered workload)", n),
		Columns: []string{"adversary", "runs", "gathered", "median events", "median stops", "median collisions"},
	}
	var cells []engine.Cell
	for _, name := range sched.Names() {
		for seed := 0; seed < cfg.Seeds; seed++ {
			cells = append(cells, engine.Cell{
				Workload:      workload.KindClustered,
				N:             n,
				WorkloadSeed:  int64(seed + 1),
				Adversary:     name,
				AdversarySeed: int64(400 + seed),
				MaxEvents:     cfg.MaxEvents,
				SnapshotEvery: snapshotEvery,
			})
		}
	}
	results, infos := cfg.runCells("E9", cells)
	groups := collect(results, func(r engine.CellResult) string {
		return r.Cell.AdversaryName()
	})
	adaptiveNotes(&t, infos)
	for _, g := range groups {
		t.Rows = append(t.Rows, []string{
			g.Key, fmt.Sprintf("%d", g.Runs),
			fmtF2(g.GatheredRate),
			fmtF(g.Events.Median),
			fmtF(g.Stops.Median),
			fmtF(g.Collisions.Median),
		})
	}
	return t
}

// E10Baselines compares the paper's algorithm against the baselines on the
// same workloads and adversary.
func E10Baselines(cfg Config, ns []int) Table {
	cfg = cfg.withDefaults()
	if len(ns) == 0 {
		ns = []int{3, 4, 5, 8}
	}
	algs := []sim.Algorithm{sim.PaperAlgorithm{}, baseline.Gravity{}, baseline.SmallN{}, baseline.Transparent{}}
	t := Table{
		ID:      "E10",
		Title:   "Baselines — connected / gathered rates per algorithm and n (clustered workloads)",
		Columns: []string{"algorithm", "n", "runs", "connected", "gathered (conn+fully visible)"},
	}
	results, infos := cfg.runCells("E10", e10Cells(cfg, ns, algs))
	groups := collect(results, func(r engine.CellResult) string {
		return fmt.Sprintf("%s|%d", r.Cell.AlgorithmName(), r.Cell.N)
	})
	adaptiveNotes(&t, infos)
	for _, g := range groups {
		t.Rows = append(t.Rows, []string{
			g.Sample.AlgorithmName(), fmt.Sprintf("%d", g.Sample.N), fmt.Sprintf("%d", g.Runs),
			fmtF2(g.ConnectedRate), fmtF2(g.GatheredRate),
		})
	}
	t.Notes = append(t.Notes, "the paper's algorithm is the only one expected to keep full visibility while connecting for n >= 5")
	return t
}

// e10Cells is the E10 cell grid: (algorithm x n x seed) on clustered
// workloads under the random-async adversary, at half the event budget.
func e10Cells(cfg Config, ns []int, algs []sim.Algorithm) []engine.Cell {
	spec := cfg.adversarySpec("random-async")
	var cells []engine.Cell
	for _, alg := range algs {
		for _, n := range ns {
			for seed := 0; seed < cfg.Seeds; seed++ {
				cell := engine.Cell{
					Workload:      workload.KindClustered,
					N:             n,
					WorkloadSeed:  int64(seed + 1),
					Algorithm:     alg,
					AdversarySeed: int64(500 + seed),
					MaxEvents:     cfg.MaxEvents / 2,
					SnapshotEvery: snapshotEvery,
				}
				stampAdversary(&cell, spec)
				cells = append(cells, cell)
			}
		}
	}
	return cells
}

// E11Delta measures sensitivity to the liveness minimum-progress delta.
func E11Delta(cfg Config, n int) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E11",
		Title:   fmt.Sprintf("Liveness condition — sensitivity to delta (n=%d, clustered workload)", n),
		Columns: []string{"delta", "runs", "gathered", "median events"},
	}
	spec := cfg.adversarySpec("stop-happy")
	var cells []engine.Cell
	for _, delta := range []float64{0.01, 0.05, 0.1, 0.5, 1.0} {
		for seed := 0; seed < cfg.Seeds; seed++ {
			cell := engine.Cell{
				Workload:      workload.KindClustered,
				N:             n,
				WorkloadSeed:  int64(seed + 1),
				AdversarySeed: int64(600 + seed),
				Delta:         delta,
				MaxEvents:     cfg.MaxEvents,
			}
			stampAdversary(&cell, spec)
			cells = append(cells, cell)
		}
	}
	results, infos := cfg.runCells("E11", cells)
	groups := collect(results, func(r engine.CellResult) string {
		return fmt.Sprintf("%.2f", r.Cell.Delta)
	})
	adaptiveNotes(&t, infos)
	for _, g := range groups {
		t.Rows = append(t.Rows, []string{
			g.Key, fmt.Sprintf("%d", g.Runs),
			fmtF2(g.GatheredRate),
			fmtF(g.Events.Median),
		})
	}
	return t
}

// E12Primitives reports the scaling of the geometric primitives with n
// (supporting the claim that each Compute step is cheap).
func E12Primitives(cfg Config) Table {
	t := Table{
		ID:      "E12",
		Title:   "Geometry primitives — work per call vs n",
		Columns: []string{"n", "hull points", "components", "fully visible pairs checked"},
	}
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		pts := workload.Ring(n, 4*float64(n))
		hull := geom.ConvexHullWithCollinear(pts)
		comps := core.ConnectedComponents(pts, n)
		m := vision.Default
		pairs := 0
		for i := 0; i < len(pts) && i < 16; i++ { // sample to keep the driver fast
			for j := i + 1; j < len(pts) && j < 16; j++ {
				if m.Visible(pts, i, j) {
					pairs++
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", len(hull)),
			fmt.Sprintf("%d", len(comps)),
			fmt.Sprintf("%d", pairs),
		})
	}
	return t
}

// E13StrategyCross crosses every adversary strategy — the legacy policies
// plus the environment-aware greedy-stall, round-robin-lag and crash(1) —
// with workload shapes: the full robustness picture the correctness claims
// are stated against (the paper's Lemma 25 says bad schedules delay
// gathering but never prevent it; crash faults are outside the model and do
// prevent it, which the table makes visible).
func E13StrategyCross(cfg Config, n int) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E13",
		Title:   fmt.Sprintf("Robustness — adversary strategy cross vs workload (n=%d)", n),
		Columns: []string{"strategy", "workload", "runs", "gathered", "stalled", "livelocked", "median events", "median stops"},
	}
	workloads := []workload.Kind{workload.KindClustered, workload.KindNestedHulls, workload.KindRing}
	var cells []engine.Cell
	for _, name := range adversary.Names() {
		for _, wk := range workloads {
			for seed := 0; seed < cfg.Seeds; seed++ {
				cell := engine.Cell{
					Workload:      wk,
					N:             n,
					WorkloadSeed:  int64(seed + 1),
					Adversary:     name,
					MaxEvents:     cfg.MaxEvents,
					SnapshotEvery: snapshotEvery,
				}
				if name == adversary.NameCrash {
					cell.Crash = 1
				}
				cell.AdversarySeed = engine.DeriveSeed(int64(1300+seed),
					engine.StreamOf("E13", name, string(wk)), int64(n))
				cells = append(cells, cell)
			}
		}
	}
	results, infos := cfg.runCells("E13", cells)
	keyOf := func(r engine.CellResult) string {
		return fmt.Sprintf("%s|%s", r.Cell.AdversaryLabel(), r.Cell.Workload)
	}
	groups := collect(results, keyOf)
	adaptiveNotes(&t, infos)
	for _, g := range groups {
		t.Rows = append(t.Rows, []string{
			g.Sample.AdversaryLabel(), string(g.Sample.Workload), fmt.Sprintf("%d", g.Runs),
			fmtF2(g.GatheredRate), fmtF2(g.StalledRate), fmtF2(g.LivelockedRate),
			fmtF(g.Events.Median), fmtF(g.Stops.Median),
		})
	}
	t.Notes = append(t.Notes,
		"crash(1) stalls by design once every surviving robot terminates; every fault-free strategy should still gather (delay, not prevention)",
		"livelocked runs are certified zero-progress cycles (blocked-path schedules such as round-robin-lag); they end at certification instead of burning the event budget, so their median events measures time-to-certification, not the budget")
	return t
}

// E14CrashTolerance sweeps the crash-stop count k: how far the paper's
// algorithm degrades as robots fail permanently after their first move
// (crash faults are outside the paper's execution model, so this measures
// the undefended failure mode, not a violated claim).
func E14CrashTolerance(cfg Config, n int) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E14",
		Title:   fmt.Sprintf("Robustness — crash-stop tolerance (n=%d, clustered workload, fair scheduling)", n),
		Columns: []string{"crashed k", "runs", "gathered", "survivors-gathered", "connected", "stalled", "livelocked", "median events"},
	}
	var cells []engine.Cell
	for k := 0; k < 4; k++ {
		for seed := 0; seed < cfg.Seeds; seed++ {
			cell := engine.Cell{
				Workload:      workload.KindClustered,
				N:             n,
				WorkloadSeed:  int64(seed + 1),
				Adversary:     adversary.NameFair,
				MaxEvents:     cfg.MaxEvents,
				SnapshotEvery: snapshotEvery,
			}
			if k > 0 {
				cell.Adversary = adversary.NameCrash
				cell.Crash = k
			}
			cell.AdversarySeed = engine.DeriveSeed(int64(1400+seed),
				engine.StreamOf("E14", cell.AdversaryLabel()), int64(n))
			cells = append(cells, cell)
		}
	}
	results, infos := cfg.runCells("E14", cells)
	keyOf := func(r engine.CellResult) string { return fmt.Sprintf("%d", r.Cell.Crash) }
	groups := collect(results, keyOf)
	adaptiveNotes(&t, infos)
	for _, g := range groups {
		t.Rows = append(t.Rows, []string{
			g.Key, fmt.Sprintf("%d", g.Runs),
			fmtF2(g.GatheredRate), fmtF2(g.SurvivorsGatheredRate),
			fmtF2(g.ConnectedRate), fmtF2(g.StalledRate), fmtF2(g.LivelockedRate),
			fmtF(g.Events.Median),
		})
	}
	t.Notes = append(t.Notes,
		"k=0 is the fault-free fair baseline; a crashed robot freezes where its first move ended, so full gathering generally becomes impossible for k >= 1",
		"survivors-gathered evaluates the goal on the non-crashed robots alone (crashed bodies excluded): it can exceed gathered when survivors cluster away from a frozen peer, and fall below it when the crashed body is the only bridge holding the tangency graph together")
	return t
}

// E15NoiseThreshold sweeps bounded sensor noise (and, separately, movement
// truncation) under fair scheduling to find the fault magnitude at which
// gathering degrades: the paper assumes exact sensing, so this charts the
// assumption's safety margin.
func E15NoiseThreshold(cfg Config, n int) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E15",
		Title:   fmt.Sprintf("Robustness — sensor-noise and motion-truncation thresholds (n=%d, clustered workload)", n),
		Columns: []string{"fault", "runs", "gathered", "median events", "median collisions"},
	}
	var cells []engine.Cell
	add := func(noise, trunc float64) {
		for seed := 0; seed < cfg.Seeds; seed++ {
			cell := engine.Cell{
				Workload:      workload.KindClustered,
				N:             n,
				WorkloadSeed:  int64(seed + 1),
				Adversary:     adversary.NameFair,
				Noise:         noise,
				Trunc:         trunc,
				MaxEvents:     cfg.MaxEvents,
				SnapshotEvery: snapshotEvery,
			}
			cell.AdversarySeed = engine.DeriveSeed(int64(1500+seed),
				engine.StreamOf("E15", cell.AdversaryLabel()), int64(n))
			cells = append(cells, cell)
		}
	}
	for _, noise := range []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5} {
		add(noise, 0)
	}
	for _, trunc := range []float64{0.25, 0.5, 0.9} {
		add(0, trunc)
	}
	results, infos := cfg.runCells("E15", cells)
	groups := collect(results, func(r engine.CellResult) string {
		return r.Cell.AdversaryLabel()
	})
	adaptiveNotes(&t, infos)
	for _, g := range groups {
		t.Rows = append(t.Rows, []string{
			g.Sample.AdversaryLabel(), fmt.Sprintf("%d", g.Runs),
			fmtF2(g.GatheredRate),
			fmtF(g.Events.Median), fmtF(g.Collisions.Median),
		})
	}
	t.Notes = append(t.Notes,
		"noise displaces sensed centers (never the robot's own position); truncation scales each move grant below the liveness delta")
	return t
}

// Experiment pairs an experiment id with its driver (run with the suite's
// default arguments).
type Experiment struct {
	ID  string
	Run func(Config) Table
}

// Suite returns every experiment in suite order, with the default arguments
// used by cmd/gatherbench and All. It is the single definition of the suite.
func Suite() []Experiment {
	return []Experiment{
		{"E1", E1StateCycle},
		{"E2", E2MoveToPoint},
		{"E3", E3FindPoints},
		{"E4", E4StateCoverage},
		{"E5", func(c Config) Table { return E5GatheringVsN(c, nil) }},
		{"E6", func(c Config) Table { return E6PhaseOne(c, 6) }},
		{"E7", func(c Config) Table { return E7PhaseTwo(c, nil) }},
		{"E8", func(c Config) Table { return E8HullMonotonicity(c, 6) }},
		{"E9", func(c Config) Table { return E9Adversaries(c, 6) }},
		{"E10", func(c Config) Table { return E10Baselines(c, nil) }},
		{"E11", func(c Config) Table { return E11Delta(c, 6) }},
		{"E12", E12Primitives},
		{"E13", func(c Config) Table { return E13StrategyCross(c, 6) }},
		{"E14", func(c Config) Table { return E14CrashTolerance(c, 6) }},
		{"E15", func(c Config) Table { return E15NoiseThreshold(c, 6) }},
	}
}

// All runs every experiment with the given configuration, in order.
func All(cfg Config) []Table {
	suite := Suite()
	out := make([]Table, len(suite))
	for i, e := range suite {
		out[i] = e.Run(cfg)
	}
	return out
}
