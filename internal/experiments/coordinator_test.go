package experiments

import (
	"crypto/sha256"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fatgather/fatgather/internal/sweep/netbackend"
)

// e13CoordinatorHash pins the E13 table the coordinator acceptance test
// produces (Seeds 2, MaxEvents 2000, n=4). It was computed from a
// single-process run over a sweep directory; if it changes, simulation
// semantics changed — the coordinator transport must never move it.
const e13CoordinatorHash = "a04fd1981604b15e69a98e5a9e6ca515ddcdf7831429633ffecfd06b001efe29"

// TestCoordinatorShardedE13ByteIdentical is the acceptance test for the
// gatherd network backend at the experiment level: two workers drain E13
// concurrently through one in-process coordinator — no shared filesystem —
// and each renders a table byte-identical to a single-process run over a
// sweep directory, pinned by hash so CI notices a transport-induced
// divergence even if both paths drift together.
func TestCoordinatorShardedE13ByteIdentical(t *testing.T) {
	base := Config{Seeds: 2, MaxEvents: 2000}
	solo := base
	solo.SweepDir = t.TempDir()
	solo.Warnf = t.Logf
	want := E13StrategyCross(solo, 4).String()
	if got := fmt.Sprintf("%x", sha256.Sum256([]byte(want))); got != e13CoordinatorHash {
		t.Fatalf("solo E13 table hash %s, want pinned %s:\n%s", got, e13CoordinatorHash, want)
	}

	srv, err := netbackend.NewServer("")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		_ = srv.Close()
	}()

	const workers = 2
	got := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := base
			c.Coordinator = ts.URL
			c.ShardOwner = fmt.Sprintf("worker-%d", w)
			c.LeaseTTL = 5 * time.Second
			c.Warnf = t.Logf
			got[w] = E13StrategyCross(c, 4).String()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if got[w] != want {
			t.Fatalf("worker %d table differs from the single-process FS run:\n%s\nvs\n%s", w, got[w], want)
		}
	}

	// The fleet actually split the work through the coordinator: its E13
	// record log holds every cell exactly once (a lost race would only
	// duplicate bit-identical records; zero records would mean the workers
	// silently fell back to in-memory runs).
	cli, err := netbackend.NewClient(ts.URL, "E13")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	data, _, err := cli.ReadRecords(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("coordinator holds no E13 records; the workers did not coordinate through it")
	}
	keys := map[string]bool{}
	lines := 0
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		lines++
		keys[line[strings.Index(line, "\"key\""):strings.Index(line, "\"elapsed_ns\"")]] = true
	}
	if len(keys) != lines {
		t.Fatalf("coordinator log: %d records but only %d distinct cells (duplicated work)", lines, len(keys))
	}
}
