package experiments

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickRobustCfg keeps the robustness drivers fast: gathering rarely
// completes at this budget, which is fine — the tables only need rows.
var quickRobustCfg = Config{Seeds: 1, MaxEvents: 1500}

func TestE13SmallScale(t *testing.T) {
	tbl := E13StrategyCross(quickRobustCfg, 4)
	checkTable(t, tbl, "E13")
	// 8 strategies x 3 workloads.
	if len(tbl.Rows) != 24 {
		t.Fatalf("expected 24 strategy-workload rows, got %d", len(tbl.Rows))
	}
	s := tbl.String()
	for _, want := range []string{"fair", "greedy-stall", "round-robin-lag", "crash(1)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("E13 misses strategy %q:\n%s", want, s)
		}
	}
}

// TestE13LivelockCertification is the end-to-end regression for the
// livelock-misreporting bug: at a budget large enough for certification
// (the 1500-event quick config is below the detection window on purpose),
// every round-robin-lag cell must be reported livelocked in the E13 table,
// with a median event count far below the budget those runs used to burn.
func TestE13LivelockCertification(t *testing.T) {
	const budget = 30000
	tbl := E13StrategyCross(Config{Seeds: 2, MaxEvents: budget}, 6)
	liveCol, eventsCol := -1, -1
	for i, c := range tbl.Columns {
		switch c {
		case "livelocked":
			liveCol = i
		case "median events":
			eventsCol = i
		}
	}
	if liveCol < 0 || eventsCol < 0 {
		t.Fatalf("E13 columns missing livelocked/median events: %v", tbl.Columns)
	}
	checked := 0
	for _, row := range tbl.Rows {
		if row[0] != "round-robin-lag" {
			continue
		}
		checked++
		if row[liveCol] != "1.00" {
			t.Fatalf("round-robin-lag/%s: livelocked rate %s, want 1.00\n%s", row[1], row[liveCol], tbl.String())
		}
		var events float64
		if _, err := fmt.Sscanf(row[eventsCol], "%f", &events); err != nil {
			t.Fatalf("bad median events %q: %v", row[eventsCol], err)
		}
		if events >= budget/2 {
			t.Fatalf("round-robin-lag/%s: median events %.0f not well under the %d budget", row[1], events, budget)
		}
	}
	if checked != 3 {
		t.Fatalf("expected 3 round-robin-lag rows, checked %d", checked)
	}
}

func TestE14SmallScale(t *testing.T) {
	tbl := E14CrashTolerance(quickRobustCfg, 4)
	checkTable(t, tbl, "E14")
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected rows for k=0..3, got %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "0" || tbl.Rows[3][0] != "3" {
		t.Fatalf("crash counts out of order: %v", tbl.Rows)
	}
	// The survivor-relative column evaluates the goal on the non-crashed
	// robots alone. It is NOT ordered against the full-goal column in
	// general (a crashed body can bridge — or stand clear of — the
	// survivors), but for the fault-free k=0 row the two metrics are the
	// same predicate and must coincide.
	if tbl.Columns[3] != "survivors-gathered" {
		t.Fatalf("survivors-gathered column missing: %v", tbl.Columns)
	}
	for _, row := range tbl.Rows {
		var gathered, survivors float64
		if _, err := fmt.Sscanf(row[2], "%g", &gathered); err != nil {
			t.Fatalf("bad gathered cell %q: %v", row[2], err)
		}
		if _, err := fmt.Sscanf(row[3], "%g", &survivors); err != nil {
			t.Fatalf("bad survivors-gathered cell %q: %v", row[3], err)
		}
		if survivors < 0 || survivors > 1 {
			t.Fatalf("k=%s: survivors-gathered %.2f outside [0, 1]", row[0], survivors)
		}
		if row[0] == "0" && survivors != gathered {
			t.Fatalf("k=0: survivors-gathered %.2f != gathered %.2f (no crashes, the metrics must coincide)", survivors, gathered)
		}
	}
}

func TestE15SmallScale(t *testing.T) {
	tbl := E15NoiseThreshold(quickRobustCfg, 4)
	checkTable(t, tbl, "E15")
	s := tbl.String()
	for _, want := range []string{"fair+noise=0.5", "fair+trunc=0.9"} {
		if !strings.Contains(s, want) {
			t.Fatalf("E15 misses fault row %q:\n%s", want, s)
		}
	}
}

// TestFairPathByteIdenticalToPrePR pins the central acceptance criterion of
// the adversary subsystem: routing every legacy adversary through
// adversary.Strategy must leave the E5/E9/E10 tables byte-identical to the
// pre-subsystem code. The hash below was computed from gatherbench output
// (-only E5,E9,E10 -seeds 2 -max-events 1200) BEFORE internal/adversary
// existed; if it ever changes, simulation semantics changed.
func TestFairPathByteIdenticalToPrePR(t *testing.T) {
	const prePRHash = "c65f177ba1b5aae360aa409efc0b3b0a6a3bb8188fd93527748b164a0f916081"
	cfg := Config{Seeds: 2, MaxEvents: 1200}
	var b strings.Builder
	fmt.Fprintln(&b, E5GatheringVsN(cfg, nil).String())
	fmt.Fprintln(&b, E9Adversaries(cfg, 6).String())
	fmt.Fprintln(&b, E10Baselines(cfg, nil).String())
	if got := fmt.Sprintf("%x", sha256.Sum256([]byte(b.String()))); got != prePRHash {
		t.Fatalf("E5/E9/E10 tables diverged from the pre-adversary-subsystem output:\nhash %s, want %s\n%s",
			got, prePRHash, b.String())
	}
}

// TestE13ResumeByteIdentical: the robustness experiments must flow through
// the sweep store like every other multi-run experiment — strategy-aware
// cell keys included — so a resumed E13 re-renders byte-identically without
// executing anything.
func TestE13ResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := quickRobustCfg
	cfg.SweepDir = dir

	first := E13StrategyCross(cfg, 4).String()
	store := filepath.Join(dir, "E13", "results.jsonl")
	before, err := os.ReadFile(store)
	if err != nil {
		t.Fatalf("E13 store not written: %v", err)
	}
	// Every strategy must appear in the persisted keys (strategy-aware keys).
	for _, frag := range []string{"adv=crash", "adv=greedy-stall", "adv=round-robin-lag", "crash=1"} {
		if !strings.Contains(string(before), frag) {
			t.Fatalf("store keys miss %q", frag)
		}
	}

	cfg.Resume = true
	second := E13StrategyCross(cfg, 4).String()
	if first != second {
		t.Fatalf("resumed E13 differs:\n%s\nvs\n%s", first, second)
	}
	after, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("resume re-ran cells: store grew %d -> %d bytes", len(before), len(after))
	}
}

// TestE14ShardedByteIdentical: the crash sweep composes with cooperative
// sharding — a late worker over a drained store restores everything and
// renders the same bytes.
func TestE14ShardedByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := quickRobustCfg
	cfg.SweepDir = dir

	want := E14CrashTolerance(cfg, 4).String()

	shard := quickRobustCfg
	shard.SweepDir = dir
	shard.ShardOwner = "late-worker"
	got := E14CrashTolerance(shard, 4).String()
	if got != want {
		t.Fatalf("sharded E14 differs:\n%s\nvs\n%s", got, want)
	}
}

// TestConfigValidate covers the up-front validation (the silent-empty-table
// bug class: a shard index outside [0, Shards) used to claim zero groups).
func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{Seeds: 3, MaxEvents: 100},
		{Shards: 2, ShardIndex: 1, SweepDir: "x", Resume: true},
		{Adversary: "crash(2)"},
		{Coordinator: "http://localhost:9340", ShardOwner: "w1", Resume: true},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []struct {
		cfg  Config
		want string
	}{
		{Config{Shards: 2, ShardIndex: 2}, "ShardIndex must be in [0, 2)"},
		{Config{Shards: 2, ShardIndex: 5}, "ShardIndex must be in [0, 2)"},
		{Config{Shards: 2, ShardIndex: -1}, "ShardIndex must be in [0, 2)"},
		{Config{ShardIndex: 1}, "requires Shards > 1"},
		{Config{Shards: -1}, "Shards must be non-negative"},
		{Config{ShardOwner: "w"}, "ShardOwner requires SweepDir"},
		{Config{LeaseTTL: -1}, "LeaseTTL must be non-negative"},
		{Config{Resume: true}, "Resume requires SweepDir"},
		{Config{SweepDir: "x", Coordinator: "http://localhost:9340"}, "mutually exclusive"},
		{Config{Coordinator: "localhost:9340"}, "coordinator URL must be http(s)"},
		{Config{Adversary: "bogus"}, "unknown adversary strategy"},
		{Config{AdaptiveCI: -1}, "AdaptiveCI must be non-negative"},
	}
	for _, tc := range bad {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want substring %q", tc.cfg, err, tc.want)
		}
	}
}

// TestRunCellsDegradesOnInvalidShardConfig: a driver handed an invalid shard
// index must not render an empty table — it warns and runs unsharded.
func TestRunCellsDegradesOnInvalidShardConfig(t *testing.T) {
	cfg := quickRobustCfg
	cfg.Shards, cfg.ShardIndex = 2, 7 // invalid: index outside [0, 2)
	var warnings []string
	cfg.Warnf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	tbl := E14CrashTolerance(cfg, 4)
	if len(tbl.Rows) == 0 {
		t.Fatal("invalid shard config rendered an empty table")
	}
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "ShardIndex must be in [0, 2)") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no clear warning about the invalid shard config: %v", warnings)
	}
}

// TestAdversaryOverrideChangesE5: the Config.Adversary spec must reroute the
// single-adversary experiments; an invalid spec warns and falls back.
func TestAdversaryOverrideChangesE5(t *testing.T) {
	plain := E5GatheringVsN(quickRobustCfg, []int{3}).String()

	over := quickRobustCfg
	over.Adversary = "greedy-stall"
	changed := E5GatheringVsN(over, []int{3}).String()
	if changed == plain {
		t.Fatal("adversary override left E5 unchanged")
	}

	var warnings []string
	invalid := quickRobustCfg
	invalid.Adversary = "bogus"
	invalid.Warnf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	fallback := E5GatheringVsN(invalid, []int{3}).String()
	if fallback != plain {
		t.Fatal("invalid adversary spec did not fall back to the driver default")
	}
	if len(warnings) == 0 {
		t.Fatal("invalid adversary spec produced no warning")
	}
}

// TestAdaptiveShardedMatchesUnshardedAdaptive: Config composing AdaptiveCI
// with ShardOwner runs the cross-worker adaptive protocol; a solo cooperative
// worker must render bytes identical to the plain adaptive run — the
// library-level counterpart of the CLI test, and a second run over the same
// store must restore the full trajectory instead of re-running it.
func TestAdaptiveShardedMatchesUnshardedAdaptive(t *testing.T) {
	plainCfg := quickRobustCfg
	plainCfg.AdaptiveCI = 0.000001
	plainCfg.AdaptiveMaxSeeds = 2
	plain := E14CrashTolerance(plainCfg, 4).String()

	shardCfg := plainCfg
	shardCfg.SweepDir = t.TempDir()
	shardCfg.ShardOwner = "w1"
	shardCfg.Warnf = func(format string, args ...any) {
		// The per-worker accounting line is expected; anything else (a
		// composition or degradation warning) is a regression.
		if msg := fmt.Sprintf(format, args...); !strings.Contains(msg, "worker w") {
			t.Errorf("unexpected warning: %s", msg)
		}
	}
	got := E14CrashTolerance(shardCfg, 4).String()
	if got != plain {
		t.Fatalf("adaptive+sharded differs from plain adaptive:\n%s\nvs\n%s", got, plain)
	}

	// A late joiner over the drained store recomputes the trajectory from
	// the records (and the published adaptive-state) without running cells.
	path := filepath.Join(shardCfg.SweepDir, "E14", "results.jsonl")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	shardCfg.ShardOwner = "w2"
	if again := E14CrashTolerance(shardCfg, 4).String(); again != plain {
		t.Fatalf("late joiner rendered different tables:\n%s\nvs\n%s", again, plain)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("late joiner re-ran (or duplicated) stored replicas")
	}
}
