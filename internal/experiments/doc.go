// Package experiments contains the drivers that regenerate the evaluation
// artifacts E1..E15 (the suite index lives in Suite and is tabulated in the
// repository README). Each driver returns a Table that cmd/gatherbench
// prints and that the root bench_test.go executes as a benchmark, so every
// recorded number can be reproduced with either tool.
//
// The multi-run experiments (E5, E7, E9, E10, E11, E13, E14, E15) execute
// their cell grids on the parallel engine through the resumable sweep layer:
// Config wires worker counts, on-disk checkpointing (SweepDir/Resume),
// adaptive seed scheduling (AdaptiveCI) and multi-process sharding
// (ShardOwner/LeaseTTL or Shards/ShardIndex, plus lease-aware work stealing
// via Steal) into every one of them uniformly; AdaptiveCI and ShardOwner
// compose, so a fleet can drain one adaptive sweep cooperatively. Tables are
// byte-identical across worker counts, resumes and sharded fleets.
//
// E13-E15 are the robustness suite on top of internal/adversary: E13 crosses
// every adversary strategy with workload shapes, E14 sweeps the crash-stop
// count, and E15 charts the sensor-noise and motion-truncation magnitudes at
// which gathering degrades. The single-adversary experiments additionally
// accept a Config.Adversary spec override ("greedy-stall", "crash(2)",
// "fair+noise=0.1") so any of them can be re-run under hostile scheduling or
// injected faults.
package experiments
