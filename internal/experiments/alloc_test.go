package experiments

import (
	"testing"
)

// e5CellAllocPerEventBudget is the pinned per-event allocation budget for one
// E5 sweep cell run end to end through engine.Cell.Run — workload generation,
// adversary construction, the full event loop and result assembly. The event
// loop itself is nearly allocation-free since the incremental geometry cache
// (internal/geom/incr) took visibility, hull and connectivity recomputation
// off the per-event path; what remains is per-Compute work in core.Decide
// (view copy, decision trace, per-decision hull info). Measured ~21
// allocs/event on the n=8 grid cell; the budget leaves slack for Go-version
// variance while still failing on any structural regression — before the
// cache this figure was several hundred allocs/event.
const e5CellAllocPerEventBudget = 40

// TestE5CellAllocBudget pins the allocation cost of the E5 inner loop: the
// benchmark trajectory's headline figure (allocs/op of the sequential E5
// engine run) is this number times the event count, so a regression here is
// exactly a regression of the committed BENCH_<rev>.json snapshot.
func TestE5CellAllocBudget(t *testing.T) {
	cfg := Config{Seeds: 1, MaxEvents: 4000}
	cells := e5Cells(cfg, []int{8})
	if len(cells) == 0 {
		t.Fatal("no E5 cells generated")
	}
	c := cells[0]
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < 100 {
		t.Fatalf("cell ran only %d events; not a meaningful alloc sample", res.Events)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
	})
	perEvent := allocs / float64(res.Events)
	if perEvent > e5CellAllocPerEventBudget {
		t.Fatalf("E5 cell allocates %.1f allocs/event (%v allocs over %d events), budget %d",
			perEvent, allocs, res.Events, e5CellAllocPerEventBudget)
	}
}
