package metrics

import (
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	Count  int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary of the given observations. An empty sample
// yields a zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(n)
	variance := 0.0
	for _, x := range sorted {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(n)
	median := sorted[n/2]
	if n%2 == 0 {
		median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return Summary{
		Count:  n,
		Mean:   mean,
		Median: median,
		Min:    sorted[0],
		Max:    sorted[n-1],
		StdDev: math.Sqrt(variance),
	}
}

// SummarizeInts converts integer observations and summarizes them.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// CI95HalfWidth returns the half-width of the normal-approximation 95%
// confidence interval for the mean of the sample: 1.96 * s / sqrt(n), with s
// the sample (n-1) standard deviation. Samples with fewer than two
// observations have no interval and return +Inf, which is what adaptive seed
// schedulers want: such a group can never be considered converged.
func CI95HalfWidth(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.Inf(1)
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	variance := 0.0
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(n - 1)
	return 1.96 * math.Sqrt(variance/float64(n))
}

// SuccessRate returns the fraction of true values (0 for an empty sample).
func SuccessRate(outcomes []bool) float64 {
	if len(outcomes) == 0 {
		return 0
	}
	succ := 0
	for _, ok := range outcomes {
		if ok {
			succ++
		}
	}
	return float64(succ) / float64(len(outcomes))
}

// MonotoneDirection classifies how a series evolves.
type MonotoneDirection int

// Monotonicity classes.
const (
	// NonMonotone: the series both increases and decreases beyond tolerance.
	NonMonotone MonotoneDirection = iota
	// NonDecreasing: the series never decreases beyond tolerance.
	NonDecreasing
	// NonIncreasing: the series never increases beyond tolerance.
	NonIncreasing
	// Constant: the series stays within tolerance of its first value.
	Constant
)

// String implements fmt.Stringer.
func (m MonotoneDirection) String() string {
	switch m {
	case NonDecreasing:
		return "non-decreasing"
	case NonIncreasing:
		return "non-increasing"
	case Constant:
		return "constant"
	default:
		return "non-monotone"
	}
}

// Monotonicity classifies a series with the given tolerance for noise.
func Monotonicity(series []float64, tol float64) MonotoneDirection {
	if len(series) < 2 {
		return Constant
	}
	increases, decreases := false, false
	for i := 1; i < len(series); i++ {
		d := series[i] - series[i-1]
		if d > tol {
			increases = true
		}
		if d < -tol {
			decreases = true
		}
	}
	switch {
	case !increases && !decreases:
		return Constant
	case increases && !decreases:
		return NonDecreasing
	case decreases && !increases:
		return NonIncreasing
	default:
		return NonMonotone
	}
}

// MaxDrawdown returns the largest drop from a running maximum in the series
// (0 for non-decreasing series). It is used to quantify how badly a series
// violates monotonicity.
func MaxDrawdown(series []float64) float64 {
	best := 0.0
	runningMax := math.Inf(-1)
	for _, x := range series {
		if x > runningMax {
			runningMax = x
		}
		if dd := runningMax - x; dd > best {
			best = dd
		}
	}
	return best
}

// MaxRise returns the largest rise from a running minimum in the series
// (0 for non-increasing series).
func MaxRise(series []float64) float64 {
	best := 0.0
	runningMin := math.Inf(1)
	for _, x := range series {
		if x < runningMin {
			runningMin = x
		}
		if r := x - runningMin; r > best {
			best = r
		}
	}
	return best
}
