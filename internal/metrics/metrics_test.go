package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 || math.Abs(s.Median-2.5) > 1e-12 {
		t.Fatalf("mean/median = %v/%v", s.Mean, s.Median)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Fatalf("odd median = %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	ints := SummarizeInts([]int{1, 2, 3})
	if ints.Mean != 2 {
		t.Fatalf("ints mean = %v", ints.Mean)
	}
	constant := Summarize([]float64{7, 7, 7})
	if constant.StdDev != 0 {
		t.Fatalf("constant stddev = %v", constant.StdDev)
	}
}

func TestCI95HalfWidth(t *testing.T) {
	if !math.IsInf(CI95HalfWidth(nil), 1) || !math.IsInf(CI95HalfWidth([]float64{3}), 1) {
		t.Fatal("samples under two observations must have an infinite interval")
	}
	if got := CI95HalfWidth([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant sample has half-width %g, want 0", got)
	}
	// {1,2,3,4,5}: sample stddev sqrt(2.5), n=5 -> 1.96*sqrt(2.5/5) = 1.96*sqrt(0.5).
	want := 1.96 * math.Sqrt(0.5)
	if got := CI95HalfWidth([]float64{1, 2, 3, 4, 5}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("half-width %g, want %g", got, want)
	}
	// More observations tighten the interval.
	a := CI95HalfWidth([]float64{1, 9, 1, 9})
	b := CI95HalfWidth([]float64{1, 9, 1, 9, 1, 9, 1, 9, 1, 9, 1, 9, 1, 9, 1, 9})
	if b >= a {
		t.Fatalf("interval did not tighten: %g -> %g", a, b)
	}
}

func TestSuccessRate(t *testing.T) {
	if SuccessRate(nil) != 0 {
		t.Fatal("empty rate should be 0")
	}
	if got := SuccessRate([]bool{true, false, true, true}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("rate = %v", got)
	}
}

func TestMonotonicity(t *testing.T) {
	tests := []struct {
		name   string
		series []float64
		want   MonotoneDirection
	}{
		{"increasing", []float64{1, 2, 3, 4}, NonDecreasing},
		{"decreasing", []float64{4, 3, 2, 1}, NonIncreasing},
		{"constant", []float64{2, 2, 2}, Constant},
		{"noisy-constant", []float64{2, 2.0005, 1.9995}, Constant},
		{"mixed", []float64{1, 3, 2}, NonMonotone},
		{"short", []float64{5}, Constant},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Monotonicity(tt.series, 1e-2); got != tt.want {
				t.Fatalf("got %v want %v", got, tt.want)
			}
		})
	}
	if NonDecreasing.String() == "" || NonMonotone.String() == "" {
		t.Fatal("direction strings should be non-empty")
	}
}

func TestDrawdownAndRise(t *testing.T) {
	if got := MaxDrawdown([]float64{1, 5, 3, 4, 2}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("drawdown = %v", got)
	}
	if got := MaxDrawdown([]float64{1, 2, 3}); got != 0 {
		t.Fatalf("monotone drawdown = %v", got)
	}
	if got := MaxRise([]float64{5, 1, 4, 2}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("rise = %v", got)
	}
	if got := MaxRise([]float64{3, 2, 1}); got != 0 {
		t.Fatalf("monotone rise = %v", got)
	}
}

// Property: min <= median <= max and min <= mean <= max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
