// Package metrics provides the small statistical toolkit used by the
// experiment harness: summaries of samples (mean, median, min, max, standard
// deviation), success rates, and monotonicity checks over series (used to
// validate the paper's hull-monotonicity lemmas).
package metrics
