package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
)

// MinSeparation is the minimum center distance generators leave between
// robots (strictly more than tangency so that initial configurations are
// unambiguous).
const MinSeparation = 2*geom.UnitRadius + 0.2

// Kind names a workload family.
type Kind string

// Workload kinds.
const (
	KindRandom      Kind = "random"
	KindClustered   Kind = "clustered"
	KindCollinear   Kind = "collinear"
	KindGrid        Kind = "grid"
	KindRing        Kind = "ring"
	KindTwoClusters Kind = "two-clusters"
	KindNestedHulls Kind = "nested-hulls"
)

// Kinds returns all workload kinds in a stable order.
func Kinds() []Kind {
	return []Kind{KindRandom, KindClustered, KindCollinear, KindGrid, KindRing, KindTwoClusters, KindNestedHulls}
}

// Generate builds a configuration of the given kind. Unknown kinds return an
// error.
func Generate(kind Kind, n int, seed int64) (config.Geometric, error) {
	switch kind {
	case KindRandom:
		return Random(n, seed), nil
	case KindClustered:
		return Clustered(n, seed, 3), nil
	case KindCollinear:
		return Collinear(n, 3.0), nil
	case KindGrid:
		return Grid(n, 3.0), nil
	case KindRing:
		return Ring(n, 0), nil
	case KindTwoClusters:
		return TwoClusters(n, seed, 20), nil
	case KindNestedHulls:
		return NestedHulls(n, seed), nil
	default:
		return nil, fmt.Errorf("workload: unknown kind %q", kind)
	}
}

// Random places n robots uniformly at random (rejection sampling) inside a
// square whose side scales with sqrt(n), guaranteeing at least MinSeparation
// between centers.
func Random(n int, seed int64) config.Geometric {
	rng := rand.New(rand.NewSource(seed))
	side := math.Max(10, 4*math.Sqrt(float64(n))*geom.UnitRadius)
	return rejectionSample(n, rng, func() geom.Vec {
		return geom.V(rng.Float64()*side, rng.Float64()*side)
	})
}

// Clustered places n robots in k Gaussian-ish clusters whose centers are far
// apart.
func Clustered(n int, seed int64, k int) config.Geometric {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Vec, k)
	for i := range centers {
		angle := 2 * math.Pi * float64(i) / float64(k)
		radius := 8 * math.Sqrt(float64(n))
		centers[i] = geom.V(radius*math.Cos(angle), radius*math.Sin(angle))
	}
	clusterSpread := math.Max(6, 2.5*math.Sqrt(float64(n)/float64(k)))
	i := 0
	return rejectionSample(n, rng, func() geom.Vec {
		c := centers[i%k]
		i++
		return c.Add(geom.V(rng.NormFloat64()*clusterSpread, rng.NormFloat64()*clusterSpread))
	})
}

// Collinear places n robots evenly spaced on a horizontal line; spacing is
// the center distance (at least MinSeparation). This is the configuration in
// which visibility is most obstructed.
func Collinear(n int, spacing float64) config.Geometric {
	if spacing < MinSeparation {
		spacing = MinSeparation
	}
	out := make(config.Geometric, n)
	for i := range out {
		out[i] = geom.V(float64(i)*spacing, 0)
	}
	return out
}

// Grid places n robots on a square lattice with the given spacing.
func Grid(n int, spacing float64) config.Geometric {
	if spacing < MinSeparation {
		spacing = MinSeparation
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	out := make(config.Geometric, 0, n)
	for i := 0; len(out) < n; i++ {
		row := i / cols
		col := i % cols
		out = append(out, geom.V(float64(col)*spacing, float64(row)*spacing))
	}
	return out
}

// Ring places n robots evenly on a circle. A radius of 0 chooses the smallest
// radius that respects MinSeparation between neighbours (times a 1.5 margin).
func Ring(n int, radius float64) config.Geometric {
	if n == 1 {
		return config.Geometric{geom.V(0, 0)}
	}
	minRadius := MinSeparation / (2 * math.Sin(math.Pi/float64(n))) * 1.5
	if radius < minRadius {
		radius = minRadius
	}
	out := make(config.Geometric, n)
	for i := range out {
		a := 2 * math.Pi * float64(i) / float64(n)
		out[i] = geom.V(radius*math.Cos(a), radius*math.Sin(a))
	}
	return out
}

// TangentRing places n robots tangent to their neighbours around a ring (a
// connected configuration, useful for termination tests).
func TangentRing(n int) config.Geometric {
	if n == 1 {
		return config.Geometric{geom.V(0, 0)}
	}
	if n == 2 {
		return config.Geometric{geom.V(0, 0), geom.V(2, 0)}
	}
	radius := geom.UnitRadius / math.Sin(math.Pi/float64(n))
	out := make(config.Geometric, n)
	for i := range out {
		a := 2 * math.Pi * float64(i) / float64(n)
		out[i] = geom.V(radius*math.Cos(a), radius*math.Sin(a))
	}
	return out
}

// TwoClusters places n robots in two well-separated clusters (half each).
func TwoClusters(n int, seed int64, separation float64) config.Geometric {
	rng := rand.New(rand.NewSource(seed))
	if separation < 10 {
		separation = 10
	}
	left := geom.V(-separation/2, 0)
	right := geom.V(separation/2, 0)
	spread := math.Max(4, 2*math.Sqrt(float64(n)))
	i := 0
	return rejectionSample(n, rng, func() geom.Vec {
		c := left
		if i%2 == 1 {
			c = right
		}
		i++
		return c.Add(geom.V(rng.NormFloat64()*spread, rng.NormFloat64()*spread))
	})
}

// NestedHulls places robots on concentric rings (an "onion"), which forces
// many robots to start strictly inside the convex hull.
func NestedHulls(n int, seed int64) config.Geometric {
	rng := rand.New(rand.NewSource(seed))
	out := make(config.Geometric, 0, n)
	ringIdx := 0
	for len(out) < n {
		radius := 6 * float64(ringIdx+1)
		capacity := int(math.Floor(2 * math.Pi * radius / MinSeparation))
		if capacity < 1 {
			capacity = 1
		}
		count := capacity
		if remaining := n - len(out); count > remaining {
			count = remaining
		}
		phase := rng.Float64() * 2 * math.Pi
		for i := 0; i < count; i++ {
			a := phase + 2*math.Pi*float64(i)/float64(count)
			out = append(out, geom.V(radius*math.Cos(a), radius*math.Sin(a)))
		}
		ringIdx++
	}
	return out
}

// rejectionSample draws candidate positions from gen until n mutually
// separated positions are found. It widens nothing: gen is responsible for
// covering a large enough area; after repeated failures the candidate is
// nudged outward deterministically so that the function always terminates.
func rejectionSample(n int, rng *rand.Rand, gen func() geom.Vec) config.Geometric {
	out := make(config.Geometric, 0, n)
	failures := 0
	for len(out) < n {
		c := gen()
		if failures > 200 {
			// Escape pathological densities: push the candidate away from the
			// crowd along a random direction.
			dir := geom.V(rng.NormFloat64(), rng.NormFloat64()).Unit()
			c = c.Add(dir.Scale(float64(failures) * 0.1))
		}
		ok := true
		for _, e := range out {
			if c.Dist(e) < MinSeparation {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
			failures = 0
		} else {
			failures++
		}
	}
	return out
}
