// Package workload generates initial robot configurations for experiments:
// random spreads, clusters, collinear lines (the hardest case for
// visibility), grids, rings and nested hulls. All generators return valid
// (non-overlapping) configurations and are deterministic in their seed.
package workload
