package workload

import (
	"reflect"
	"sync"
	"testing"
)

func TestCacheMatchesGenerate(t *testing.T) {
	c := NewCache()
	for _, kind := range Kinds() {
		for seed := int64(1); seed <= 2; seed++ {
			want, werr := Generate(kind, 6, seed)
			got, gerr := c.Generate(kind, 6, seed)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s seed %d: err %v vs %v", kind, seed, werr, gerr)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s seed %d: cached configuration differs", kind, seed)
			}
		}
	}
}

func TestCacheCountsHitsAndMisses(t *testing.T) {
	c := NewCache()
	for i := 0; i < 5; i++ {
		if _, err := c.Generate(KindClustered, 4, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Generate(KindClustered, 5, 1); err != nil {
		t.Fatal(err)
	}
	hits, misses := c.Stats()
	if hits != 4 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 4/2", hits, misses)
	}
}

// TestCacheReturnsCopies pins that a caller mutating a returned configuration
// cannot poison later lookups.
func TestCacheReturnsCopies(t *testing.T) {
	c := NewCache()
	first, err := c.Generate(KindRing, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	first[0].X += 1000
	second, err := c.Generate(KindRing, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].X == first[0].X {
		t.Fatal("cache returned an aliased configuration")
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	if _, err := c.Generate("bogus", 4, 1); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, err := c.Generate("bogus", 4, 1); err == nil {
		t.Fatal("cached unknown kind must still error")
	}
}

// TestCacheConcurrent hammers one hot key and several cold keys from many
// goroutines; the race detector (CI runs -race) checks the locking, and the
// stats check proves each distinct key generated exactly once.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := c.Generate(KindClustered, 4, 1); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Generate(KindRandom, 3+g%3, int64(i%4+1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if want := int64(1 + 3*4); misses != want {
		t.Fatalf("generated %d distinct placements, want %d", misses, want)
	}
	if hits+misses != 8*20*2 {
		t.Fatalf("hits %d + misses %d != %d calls", hits, misses, 8*20*2)
	}
}
