package workload

import (
	"sync"

	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/obs"
)

// Telemetry (internal/obs): process-wide hit/miss counters across every
// Cache instance, write-only per the one-way contract (per-instance numbers
// stay available to callers through Stats, which reads the cache's own
// fields, not obs).
var (
	obsCacheHits   = obs.NewCounter("fatgather_workload_cache_hits_total")
	obsCacheMisses = obs.NewCounter("fatgather_workload_cache_misses_total")
)

// Cache memoizes Generate per (kind, n, seed), so that expanded batches stop
// regenerating identical placements across the adversary and algorithm axes
// of a sweep (those axes do not influence the initial configuration).
//
// Cache is safe for concurrent use. Each distinct key is generated exactly
// once, even under concurrent lookups; concurrent lookups of distinct keys
// generate in parallel. Get returns a fresh copy of the cached configuration,
// so callers may not worry about aliasing.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    int64
}

type cacheKey struct {
	kind Kind
	n    int
	seed int64
}

type cacheEntry struct {
	once sync.Once
	cfg  config.Geometric
	err  error
}

// NewCache returns an empty workload cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// Generate returns the configuration for (kind, n, seed), generating it on
// the first request and serving a copy of the memoized result afterwards. It
// has the same signature and semantics as the package-level Generate and is
// the natural engine.Options.Workloads hook.
func (c *Cache) Generate(kind Kind, n int, seed int64) (config.Geometric, error) {
	key := cacheKey{kind: kind, n: n, seed: seed}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		obsCacheMisses.Inc()
	} else {
		c.hits++
		obsCacheHits.Inc()
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.cfg, e.err = Generate(kind, n, seed)
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.cfg.Clone(), nil
}

// Stats reports the cache's lifetime counters: hits is the number of Generate
// calls served from memory, misses the number of placements actually
// generated.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, int64(len(c.entries))
}
