package workload

import (
	"testing"
	"testing/quick"

	"github.com/fatgather/fatgather/internal/geom"
)

func TestGenerateAllKindsValid(t *testing.T) {
	for _, kind := range Kinds() {
		for _, n := range []int{1, 2, 5, 12, 25} {
			cfg, err := Generate(kind, n, 7)
			if err != nil {
				t.Fatalf("%s n=%d: %v", kind, n, err)
			}
			if len(cfg) != n {
				t.Fatalf("%s n=%d: generated %d robots", kind, n, len(cfg))
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%s n=%d: invalid configuration: %v", kind, n, err)
			}
			if cfg.MinPairDistance() < MinSeparation-1e-9 && n > 1 {
				t.Fatalf("%s n=%d: robots closer than MinSeparation", kind, n)
			}
		}
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, err := Generate(Kind("bogus"), 3, 1); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(KindRandom, 10, 99)
	b, _ := Generate(KindRandom, 10, 99)
	for i := range a {
		if !a[i].Eq(b[i]) {
			t.Fatal("same seed should generate the same configuration")
		}
	}
	c, _ := Generate(KindRandom, 10, 100)
	same := true
	for i := range a {
		if !a[i].Eq(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should generate different configurations")
	}
}

func TestCollinear(t *testing.T) {
	cfg := Collinear(5, 3)
	for _, c := range cfg {
		if c.Y != 0 {
			t.Fatal("collinear workload should lie on the x axis")
		}
	}
	// Below minimum spacing gets clamped.
	tight := Collinear(3, 0.5)
	if tight.MinPairDistance() < MinSeparation-1e-9 {
		t.Fatal("spacing should be clamped to MinSeparation")
	}
}

func TestRingAndTangentRing(t *testing.T) {
	ring := Ring(8, 0)
	if err := ring.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(Ring(1, 0)) != 1 {
		t.Fatal("ring of one robot")
	}
	tr := TangentRing(8)
	if !tr.Connected() {
		t.Fatal("tangent ring should be connected")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !TangentRing(2).Connected() || !TangentRing(1).Connected() {
		t.Fatal("small tangent rings should be connected")
	}
}

func TestGridShape(t *testing.T) {
	cfg := Grid(7, 4)
	if len(cfg) != 7 {
		t.Fatalf("grid size = %d", len(cfg))
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedHullsHasInteriorRobots(t *testing.T) {
	cfg := NestedHulls(20, 5)
	if cfg.AllOnHull() {
		t.Fatal("nested hulls should place robots strictly inside the hull")
	}
}

func TestTwoClustersSeparation(t *testing.T) {
	cfg := TwoClusters(10, 3, 40)
	left, right := 0, 0
	for _, c := range cfg {
		if c.X < 0 {
			left++
		} else {
			right++
		}
	}
	if left == 0 || right == 0 {
		t.Fatalf("two clusters should straddle the origin: left=%d right=%d", left, right)
	}
}

// Property: every generator yields valid configurations for arbitrary seeds.
func TestGeneratorValidityProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, kindRaw uint8) bool {
		kinds := Kinds()
		kind := kinds[int(kindRaw)%len(kinds)]
		n := int(nRaw%15) + 1
		cfg, err := Generate(kind, n, seed)
		if err != nil {
			return false
		}
		return cfg.Validate() == nil && len(cfg) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMinSeparationConstant(t *testing.T) {
	if MinSeparation <= 2*geom.UnitRadius {
		t.Fatal("MinSeparation must exceed the tangency distance")
	}
}
