package robot

import (
	"testing"

	"github.com/fatgather/fatgather/internal/geom"
)

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{Wait, "Wait"},
		{Look, "Look"},
		{Compute, "Compute"},
		{Move, "Move"},
		{Terminate, "Terminate"},
		{State(42), "State(42)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q want %q", int(tt.s), got, tt.want)
		}
	}
	if !Wait.Valid() || State(0).Valid() || State(99).Valid() {
		t.Fatal("Valid misclassifies states")
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	r := New(3, geom.V(0, 0))
	if !r.Idle() || r.Terminated() || r.Moving() {
		t.Fatal("new robot should be idle")
	}
	view := []geom.Vec{geom.V(0, 0), geom.V(5, 0)}
	if err := r.BeginLook(view); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginCompute(); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginMove(geom.V(4, 0)); err != nil {
		t.Fatal(err)
	}
	if !r.Moving() {
		t.Fatal("robot should be moving")
	}
	if got := r.RemainingDistance(); got != 4 {
		t.Fatalf("remaining = %v", got)
	}
	moved := r.Advance(1.5)
	if moved != 1.5 {
		t.Fatalf("advance = %v", moved)
	}
	if r.AtTarget(1e-9) {
		t.Fatal("not yet at target")
	}
	moved = r.Advance(100)
	if moved != 2.5 {
		t.Fatalf("advance clamped = %v", moved)
	}
	if !r.AtTarget(1e-9) {
		t.Fatal("should be at target")
	}
	if err := r.FinishMove(); err != nil {
		t.Fatal(err)
	}
	if !r.Idle() {
		t.Fatal("should be back in Wait")
	}
	if len(r.View) != 0 {
		t.Fatal("view should be forgotten (obliviousness)")
	}
	if r.Cycles != 1 {
		t.Fatalf("cycles = %d", r.Cycles)
	}
	if r.DistanceTraveled != 4 {
		t.Fatalf("distance = %v", r.DistanceTraveled)
	}
}

func TestTerminationPath(t *testing.T) {
	r := New(0, geom.V(1, 1))
	if err := r.BeginLook(nil); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginCompute(); err != nil {
		t.Fatal(err)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if !r.Terminated() {
		t.Fatal("robot should be terminated")
	}
}

func TestInvalidTransitions(t *testing.T) {
	r := New(0, geom.V(0, 0))
	if err := r.BeginCompute(); err == nil {
		t.Fatal("Compute from Wait should fail")
	}
	if err := r.BeginMove(geom.V(1, 1)); err == nil {
		t.Fatal("Move from Wait should fail")
	}
	if err := r.Done(); err == nil {
		t.Fatal("Done from Wait should fail")
	}
	if err := r.FinishMove(); err == nil {
		t.Fatal("FinishMove from Wait should fail")
	}
	if err := r.BeginLook(nil); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginLook(nil); err == nil {
		t.Fatal("Look from Look should fail")
	}
}

func TestAdvanceWhenNotMoving(t *testing.T) {
	r := New(0, geom.V(0, 0))
	if got := r.Advance(5); got != 0 {
		t.Fatalf("advance while idle = %v", got)
	}
	if got := r.RemainingDistance(); got != 0 {
		t.Fatalf("remaining while idle = %v", got)
	}
}

func TestAdvanceZeroLengthMove(t *testing.T) {
	r := New(0, geom.V(2, 2))
	_ = r.BeginLook(nil)
	_ = r.BeginCompute()
	_ = r.BeginMove(geom.V(2, 2)) // stay in place
	if got := r.Advance(1); got != 0 {
		t.Fatalf("advance on zero-length move = %v", got)
	}
	if !r.AtTarget(1e-9) {
		t.Fatal("robot with zero-length move is at its target")
	}
	if err := r.FinishMove(); err != nil {
		t.Fatal(err)
	}
}
