// Package robot models a single fat robot as the five-state machine of
// Section 2 of the paper: Wait, Look, Compute, Move, Terminate, together with
// the bookkeeping the simulator needs (current view snapshot, start and
// target of the ongoing motion). Robots are history oblivious: whatever was
// computed during a cycle is erased whenever the robot returns to Wait.
package robot
