package robot

import (
	"fmt"

	"github.com/fatgather/fatgather/internal/geom"
)

// State is one of the five robot states of the paper's state machine.
type State int

// Robot states. Wait is the initial state; Terminate is absorbing.
const (
	Wait State = iota + 1
	Look
	Compute
	Move
	Terminate
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Wait:
		return "Wait"
	case Look:
		return "Look"
	case Compute:
		return "Compute"
	case Move:
		return "Move"
	case Terminate:
		return "Terminate"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Valid reports whether s is one of the five defined states.
func (s State) Valid() bool { return s >= Wait && s <= Terminate }

// Robot is the mutable per-robot record kept by the simulator. The fields
// mirror the paper's model: only the center and the state exist "physically";
// View/Start/Target are the transient contents of the current
// Look-Compute-Move cycle and are erased on re-entering Wait (obliviousness).
type Robot struct {
	// ID is the simulator-internal index of the robot. Robots are anonymous
	// in the model; the ID is used only for bookkeeping and reporting.
	ID int
	// Center is the current position of the robot's center.
	Center geom.Vec
	// State is the current state of the robot's state machine.
	State State
	// View is the snapshot of visible robot centers taken in the most recent
	// Look, including the robot's own center. It is only meaningful between
	// Look and the end of the ensuing Move.
	View []geom.Vec
	// Start is the position at which the current Move began.
	Start geom.Vec
	// Target is the destination of the current Move (the point returned by
	// the local algorithm).
	Target geom.Vec
	// Cycles counts completed Look-Compute-Move cycles (diagnostics only; the
	// robot itself is oblivious and never reads this).
	Cycles int
	// DistanceTraveled accumulates the total distance moved (diagnostics
	// only).
	DistanceTraveled float64
}

// New returns a robot in the initial Wait state at the given center.
func New(id int, center geom.Vec) *Robot {
	return &Robot{ID: id, Center: center, State: Wait}
}

// Terminated reports whether the robot has reached the absorbing Terminate
// state.
func (r *Robot) Terminated() bool { return r.State == Terminate }

// Idle reports whether the robot is in Wait (and therefore eligible for a
// Look event).
func (r *Robot) Idle() bool { return r.State == Wait }

// Moving reports whether the robot is currently in the Move state.
func (r *Robot) Moving() bool { return r.State == Move }

// BeginLook transitions Wait -> Look and records the snapshot. It returns an
// error if the robot is not in Wait.
func (r *Robot) BeginLook(view []geom.Vec) error {
	if r.State != Wait {
		return fmt.Errorf("robot %d: Look event in state %v", r.ID, r.State)
	}
	r.State = Look
	// Copy into the robot's own (reused) buffer: the caller may recycle view,
	// and the snapshot must stay stable until the cycle's Move completes.
	r.View = append(r.View[:0], view...)
	return nil
}

// BeginCompute transitions Look -> Compute. It returns an error if the robot
// is not in Look.
func (r *Robot) BeginCompute() error {
	if r.State != Look {
		return fmt.Errorf("robot %d: Compute event in state %v", r.ID, r.State)
	}
	r.State = Compute
	return nil
}

// BeginMove transitions Compute -> Move toward the given target. It returns
// an error if the robot is not in Compute.
func (r *Robot) BeginMove(target geom.Vec) error {
	if r.State != Compute {
		return fmt.Errorf("robot %d: Move event in state %v", r.ID, r.State)
	}
	r.State = Move
	r.Start = r.Center
	r.Target = target
	return nil
}

// Done transitions Compute -> Terminate (the local algorithm returned the
// special point ⊥). It returns an error if the robot is not in Compute.
func (r *Robot) Done() error {
	if r.State != Compute {
		return fmt.Errorf("robot %d: Done event in state %v", r.ID, r.State)
	}
	r.State = Terminate
	r.forget()
	return nil
}

// FinishMove transitions Move -> Wait after the robot has stopped at its
// current center (because it arrived, was stopped by the adversary, or
// collided). It erases the cycle's transient memory, per the obliviousness
// assumption.
func (r *Robot) FinishMove() error {
	if r.State != Move {
		return fmt.Errorf("robot %d: finish-move in state %v", r.ID, r.State)
	}
	r.State = Wait
	r.Cycles++
	r.forget()
	return nil
}

// Advance moves the robot along its current trajectory by dist (never past
// the target) and returns the actual distance covered. It is a no-op for a
// robot that is not moving.
func (r *Robot) Advance(dist float64) float64 {
	if r.State != Move || dist <= 0 {
		return 0
	}
	remaining := r.Center.Dist(r.Target)
	if remaining <= 0 {
		return 0
	}
	step := dist
	if step > remaining {
		step = remaining
	}
	dir := r.Target.Sub(r.Center).Unit()
	r.Center = r.Center.Add(dir.Scale(step))
	r.DistanceTraveled += step
	return step
}

// RemainingDistance returns the distance from the robot's current center to
// its target; zero when not moving.
func (r *Robot) RemainingDistance() float64 {
	if r.State != Move {
		return 0
	}
	return r.Center.Dist(r.Target)
}

// AtTarget reports whether a moving robot has reached its target (within
// tol).
func (r *Robot) AtTarget(tol float64) bool {
	return r.State == Move && r.Center.Dist(r.Target) <= tol
}

// forget erases the transient per-cycle memory (obliviousness). The View
// backing array is truncated, not released, so the next Look reuses it.
func (r *Robot) forget() {
	r.View = r.View[:0]
	r.Start = geom.Vec{}
	r.Target = geom.Vec{}
}
