// Package sim is the discrete-event simulator that realizes the paper's
// execution model (Section 2 and Section 5): an execution is an alternating
// sequence of robot configurations and adversary-chosen events
// (Look, Compute, Done, Move, Stop, Collide, Arrive). The simulator enforces
// the physical constraints of the fat-robot model — motion stops at the first
// tangency, discs never overlap — and the liveness conditions (minimum
// progress delta, every robot scheduled).
//
// Event selection is delegated to an internal/adversary.Strategy, consulted
// with the full scheduling environment (states, centers, move targets) at
// every step. Strategies that implement adversary.Perturber additionally
// inject bounded faults at two fixed points: Look snapshots (sensor noise,
// never touching the physical configuration) and Move grants (truncation,
// applied after the liveness clamp). A strategy may also decline to schedule
// anyone (crash-stop exhaustion), which ends the run with OutcomeStalled.
package sim
