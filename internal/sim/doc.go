// Package sim is the discrete-event simulator that realizes the paper's
// execution model (Section 2 and Section 5): an execution is an alternating
// sequence of robot configurations and adversary-chosen events
// (Look, Compute, Done, Move, Stop, Collide, Arrive). The simulator enforces
// the physical constraints of the fat-robot model — motion stops at the first
// tangency, discs never overlap — and the liveness conditions (minimum
// progress delta, every robot scheduled).
package sim
