package sim

import (
	"errors"
	"testing"

	"github.com/fatgather/fatgather/internal/adversary"
	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/robot"
	"github.com/fatgather/fatgather/internal/sched"
	"github.com/fatgather/fatgather/internal/workload"
)

// livelockCase is a known round-robin-lag blocked-path livelock: before
// certification existed this configuration burned the full budget and was
// misreported as budget-exhausted (measured: 150000 events, last progress
// before event 500).
func livelockCase(t *testing.T) (config.Geometric, Options) {
	t.Helper()
	cfg, err := workload.Generate(workload.KindNestedHulls, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, Options{
		Strategy:  adversary.NewRoundRobinLag(),
		MaxEvents: 150000,
	}
}

func TestRoundRobinLagLivelockCertified(t *testing.T) {
	cfg, opts := livelockCase(t)
	res, err := Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeLivelocked {
		t.Fatalf("outcome = %v (events=%d), want livelocked", res.Outcome, res.Events)
	}
	// "Well under budget": the detector needs roughly the activation window
	// plus a few cycle lengths past the livelock onset, nowhere near 150000.
	if res.Events >= 10000 {
		t.Fatalf("certified only after %d events; want well under the 150000 budget", res.Events)
	}
	if res.Err != nil {
		t.Fatalf("unexpected run error: %v", res.Err)
	}
}

func TestLivelockTraceSnippet(t *testing.T) {
	cfg, opts := livelockCase(t)
	res, err := Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.LivelockTrace
	if tr == nil {
		t.Fatal("certified livelock should carry a trace snippet")
	}
	if tr.Len() == 0 || tr.Len() > DefaultLivelockTraceFrames {
		t.Fatalf("snippet has %d frames, want 1..%d", tr.Len(), DefaultLivelockTraceFrames)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("snippet invalid: %v", err)
	}
	if tr.N != res.N || tr.Algorithm != res.Algorithm || tr.Adversary != res.Adversary {
		t.Fatalf("snippet metadata %q/%q/%d does not match result %q/%q/%d",
			tr.Algorithm, tr.Adversary, tr.N, res.Algorithm, res.Adversary, res.N)
	}
	// The last frame is the configuration at certification: positions are
	// frozen, so it must equal the final configuration bit for bit.
	last := tr.Config(tr.Len() - 1)
	for i, c := range last {
		if c != res.Final[i] {
			t.Fatalf("snippet last frame robot %d at %v, final config at %v", i, c, res.Final[i])
		}
	}
	// Every frame of a zero-progress cycle holds the same frozen positions.
	first := tr.Config(0)
	for i := range first {
		if first[i] != last[i] {
			t.Fatalf("robot %d moved inside the certified cycle: %v -> %v", i, first[i], last[i])
		}
	}
}

func TestLivelockDetectionDeterministic(t *testing.T) {
	cfg, opts := livelockCase(t)
	a, err := Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg, opts = livelockCase(t)
	b, err := Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != b.Outcome || a.Events != b.Events || a.TotalDistance != b.TotalDistance {
		t.Fatalf("two identical runs diverged: (%v, %d, %g) vs (%v, %d, %g)",
			a.Outcome, a.Events, a.TotalDistance, b.Outcome, b.Events, b.TotalDistance)
	}
	if a.LivelockTrace.Len() != b.LivelockTrace.Len() {
		t.Fatalf("snippet lengths diverged: %d vs %d", a.LivelockTrace.Len(), b.LivelockTrace.Len())
	}
}

func TestLivelockDetectionDisabled(t *testing.T) {
	cfg, opts := livelockCase(t)
	opts.MaxEvents = 20000 // keep the burn cheap; still far beyond certification
	opts.NoLivelockDetection = true
	res, err := Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeBudgetExhausted {
		t.Fatalf("outcome = %v, want the pre-detector budget-exhausted behavior", res.Outcome)
	}
	if res.Events != 20000 {
		t.Fatalf("events = %d, want the full 20000 budget burned", res.Events)
	}
	if res.LivelockTrace != nil {
		t.Fatal("disabled detector must not record a snippet")
	}
}

func TestLivelockWindowDefersCertification(t *testing.T) {
	cfg, opts := livelockCase(t)
	opts.MaxEvents = 20000
	opts.LivelockWindow = 19999 // window beyond budget: detector stays dormant
	res, err := Run(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeBudgetExhausted {
		t.Fatalf("outcome = %v, want budget-exhausted with an oversized window", res.Outcome)
	}
}

// TestHealthyRunsUnaffected pins that detection never fires on runs that make
// progress and terminate: same outcome, events, and distance as with the
// detector off. The two-robot configuration gathers and terminates under
// every registered adversary (see TestTwoRobotsGatherUnderEveryAdversary).
func TestHealthyRunsUnaffected(t *testing.T) {
	for _, name := range sched.Names() {
		cfg := config.Geometric{geom.V(0, 0), geom.V(9, 3)}
		on, err := Run(cfg, Options{Adversary: sched.Registry(11)[name](), MaxEvents: 150000})
		if err != nil {
			t.Fatal(err)
		}
		off, err := Run(cfg, Options{Adversary: sched.Registry(11)[name](), MaxEvents: 150000, NoLivelockDetection: true})
		if err != nil {
			t.Fatal(err)
		}
		if on.Outcome != off.Outcome || on.Events != off.Events || on.TotalDistance != off.TotalDistance {
			t.Fatalf("adv=%s: detector changed a healthy run: (%v, %d, %g) vs (%v, %d, %g)",
				name, on.Outcome, on.Events, on.TotalDistance, off.Outcome, off.Events, off.TotalDistance)
		}
		if on.LivelockTrace != nil {
			t.Fatalf("adv=%s: healthy run recorded a livelock snippet", name)
		}
	}
}

// badPickStrategy returns a fixed robot ID regardless of the candidate set.
type badPickStrategy struct{ id int }

func (badPickStrategy) Name() string                        { return "bad-pick" }
func (b badPickStrategy) Next(_ []int, _ adversary.Env) int { return b.id }
func (badPickStrategy) Move(_ int, r float64, _ adversary.Env) sched.MoveAction {
	return sched.MoveAction{Distance: r}
}

func TestStepRejectsOutOfRangePick(t *testing.T) {
	for _, id := range []int{-5, 99} {
		res, err := Run(config.Geometric{geom.V(0, 0), geom.V(9, 0)}, Options{
			Strategy: badPickStrategy{id: id}, MaxEvents: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OutcomeError {
			t.Fatalf("pick %d: outcome = %v, want error", id, res.Outcome)
		}
		if !errors.Is(res.Err, ErrBadSchedule) {
			t.Fatalf("pick %d: err = %v, want ErrBadSchedule", id, res.Err)
		}
		if res.Events != 0 {
			t.Fatalf("pick %d: %d events executed after an invalid pick", id, res.Events)
		}
	}
}

// TestStepRejectsTerminatedPick pins the second half of the old coercion bug:
// picking a robot that already terminated (in range, but not a candidate)
// must fail loudly instead of silently running candidates[0].
func TestStepRejectsTerminatedPick(t *testing.T) {
	// Robot 0 terminates after one full cycle of a single-robot run; then a
	// strategy that keeps picking it must trip ErrBadSchedule.
	s, err := New(config.Geometric{geom.V(0, 0), geom.V(9, 0)}, Options{
		Strategy: badPickStrategy{id: 0}, MaxEvents: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive robot 0 by hand until it terminates (two robots at distance 9
	// are mutually invisible under the default model only if out of range;
	// instead terminate robot 0 artificially via its state machine).
	r := s.Robots()[0]
	if err := r.BeginLook([]geom.Vec{r.Center}); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginCompute(); err != nil {
		t.Fatal(err)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if r.State != robot.Terminate {
		t.Fatalf("setup failed: robot 0 in state %v", r.State)
	}
	if err := s.Step(); !errors.Is(err, ErrBadSchedule) {
		t.Fatalf("err = %v, want ErrBadSchedule for a terminated pick", err)
	}
}

func TestLivelockOutcomeStrings(t *testing.T) {
	if OutcomeLivelocked.String() != "livelocked" || OutcomeError.String() != "error" {
		t.Fatalf("unexpected outcome strings: %v %v", OutcomeLivelocked, OutcomeError)
	}
}

func TestDefaultMaxEventsPinned(t *testing.T) {
	if DefaultMaxEvents != 200000 {
		t.Fatalf("sim.DefaultMaxEvents = %d; changing the single-run budget is a conscious decision (see Options.MaxEvents)", DefaultMaxEvents)
	}
}
