package sim

import (
	"testing"

	"github.com/fatgather/fatgather/internal/adversary"
	"github.com/fatgather/fatgather/internal/workload"
)

// TestCrashStrategyStallsRun pins the crash-stop end-to-end semantics: with
// every robot crashed after its first move, the run must end stalled (not
// burn the whole event budget), with nobody terminated.
func TestCrashStrategyStallsRun(t *testing.T) {
	n := 4
	strat, err := adversary.New(adversary.Spec{Strategy: adversary.NameCrash, Crash: n}, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(workload.Ring(n, 14), Options{Strategy: strat, MaxEvents: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeStalled {
		t.Fatalf("outcome %v, want %v", res.Outcome, OutcomeStalled)
	}
	if res.Events >= 100000 {
		t.Fatalf("stall burned the whole budget (%d events): Run did not cut the run short", res.Events)
	}
	if res.TerminatedCount != 0 {
		t.Fatalf("%d robots terminated under full crash", res.TerminatedCount)
	}
	if res.Adversary != "crash(4)" {
		t.Fatalf("result adversary %q, want crash(4)", res.Adversary)
	}
}

// TestPartialCrashKeepsSurvivorsLive: with k < n crashed, the run continues
// (survivors keep getting events) and never reports more than n-k
// terminations by the paper's algorithm.
func TestPartialCrashKeepsSurvivorsLive(t *testing.T) {
	strat, err := adversary.New(adversary.Spec{Strategy: adversary.NameCrash, Crash: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(workload.Ring(4, 14), Options{Strategy: strat, MaxEvents: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == OutcomeAllTerminated {
		t.Fatalf("all robots terminated despite a crashed one")
	}
	if err := res.Final.Validate(); err != nil {
		t.Fatalf("final configuration invalid under crash faults: %v", err)
	}
}

// TestSurvivorMetricsReported pins the survivor-relative result fields:
// crash runs report how many robots crash-stopped and whether the survivors
// alone satisfy the gathering goal; fault-free runs report zero crashes and
// a survivor flag identical to the full goal.
func TestSurvivorMetricsReported(t *testing.T) {
	// Fault-free: survivors == everyone.
	plain, err := Run(workload.TangentRing(2), Options{MaxEvents: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if plain.CrashedCount != 0 {
		t.Fatalf("fault-free run reports %d crashed robots", plain.CrashedCount)
	}
	if plain.SurvivorsGathered != plain.Gathered() {
		t.Fatalf("fault-free SurvivorsGathered %v != Gathered %v", plain.SurvivorsGathered, plain.Gathered())
	}

	// Full crash: everybody freezes after the first move, n robots crashed,
	// and the survivor goal over the empty set is trivially false or true —
	// pin the count, not the vacuous predicate.
	strat, err := adversary.New(adversary.Spec{Strategy: adversary.NameCrash, Crash: 4}, 11)
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := Run(workload.Ring(4, 14), Options{Strategy: strat, MaxEvents: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if crashed.CrashedCount != 4 {
		t.Fatalf("crash(4) run reports %d crashed robots, want 4", crashed.CrashedCount)
	}

	// Partial crash, decorated with noise so the crash layer sits under
	// another decorator: the count must still surface through the stack.
	strat, err = adversary.New(adversary.Spec{Strategy: adversary.NameFair, Crash: 1, Noise: 0.01}, 7)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := Run(workload.Ring(4, 14), Options{Strategy: strat, MaxEvents: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if partial.CrashedCount != 1 {
		t.Fatalf("crash=1 through a fault decorator reports %d crashed robots, want 1", partial.CrashedCount)
	}
}

// TestNoiseKeepsPhysicalInvariants: sensor noise corrupts only the snapshots,
// so the no-overlap invariant must survive arbitrarily large noise.
func TestNoiseKeepsPhysicalInvariants(t *testing.T) {
	strat, err := adversary.New(adversary.Spec{Strategy: adversary.NameRandomAsync, Noise: 1.5}, 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(workload.Ring(5, 16), Options{
		Strategy:           strat,
		MaxEvents:          5000,
		ValidateEveryEvent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("invariant violated under noise: %v", res.Err)
	}
}

// TestTruncationSlowsButNeverFreezes: motion truncation scales each grant by
// a factor in (1-trunc, 1], so a truncated run needs at least as many events
// to terminate as the unfaulted one — but the residual progress per event
// stays positive, so it must still terminate within a generous budget.
func TestTruncationSlowsButNeverFreezes(t *testing.T) {
	run := func(trunc float64) Result {
		strat, err := adversary.New(adversary.Spec{Strategy: adversary.NameFair, Trunc: trunc}, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(workload.Ring(4, 14), Options{Strategy: strat, MaxEvents: 200000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, truncated := run(0), run(0.9)
	if plain.Outcome != OutcomeAllTerminated {
		t.Fatalf("unfaulted run did not terminate: %v", plain.Outcome)
	}
	// Termination is NOT guaranteed under truncation (that degradation is
	// what E15 charts); what must hold is that the fault never speeds the
	// run up and never corrupts the physical configuration.
	if truncated.Events < plain.Events {
		t.Fatalf("truncation sped the run up: %d events vs %d unfaulted", truncated.Events, plain.Events)
	}
	if err := truncated.Final.Validate(); err != nil {
		t.Fatalf("final configuration invalid under truncation: %v", err)
	}
}

// TestLegacyAdversaryOptionStillWorks pins backward compatibility: Options
// with only the legacy Adversary field must behave as before (wrapped fair).
func TestLegacyAdversaryOptionStillWorks(t *testing.T) {
	res, err := Run(workload.TangentRing(2), Options{MaxEvents: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adversary != "fair" {
		t.Fatalf("default adversary %q, want fair", res.Adversary)
	}
	if res.Outcome != OutcomeAllTerminated {
		t.Fatalf("tangent pair under fair did not terminate: %v", res.Outcome)
	}
}
