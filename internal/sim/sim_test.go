package sim

import (
	"errors"
	"reflect"
	"testing"

	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/core"
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/sched"
	"github.com/fatgather/fatgather/internal/workload"
)

func v(x, y float64) geom.Vec { return geom.V(x, y) }

func TestNewRejectsInvalidInitial(t *testing.T) {
	if _, err := New(config.Geometric{v(0, 0), v(1, 0)}, Options{}); !errors.Is(err, ErrInvalidInitial) {
		t.Fatalf("expected ErrInvalidInitial, got %v", err)
	}
	if _, err := New(config.Geometric{}, Options{}); !errors.Is(err, ErrInvalidInitial) {
		t.Fatalf("expected ErrInvalidInitial for empty config, got %v", err)
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeAllTerminated.String() != "all-terminated" ||
		OutcomeGathered.String() != "gathered" ||
		OutcomeBudgetExhausted.String() != "budget-exhausted" {
		t.Fatal("unexpected outcome strings")
	}
	if Outcome(99).String() == "" {
		t.Fatal("unknown outcome should still stringify")
	}
}

func TestSingleRobotTerminatesImmediately(t *testing.T) {
	res, err := Run(config.Geometric{v(0, 0)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeAllTerminated {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.TerminatedCount != 1 {
		t.Fatalf("terminated = %d", res.TerminatedCount)
	}
}

func TestTwoRobotsGatherUnderEveryAdversary(t *testing.T) {
	for _, name := range sched.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			adv := sched.Registry(11)[name]()
			res, err := Run(config.Geometric{v(0, 0), v(9, 3)}, Options{
				Adversary:          adv,
				MaxEvents:          30000,
				ValidateEveryEvent: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome != OutcomeAllTerminated {
				t.Fatalf("outcome = %v (events=%d)", res.Outcome, res.Events)
			}
			if !res.Gathered() {
				t.Fatal("two robots should end gathered")
			}
			if res.Err != nil {
				t.Fatalf("unexpected run error: %v", res.Err)
			}
		})
	}
}

func TestSmallClusterGathersAndTerminates(t *testing.T) {
	// Seeds chosen so that the run completes well inside the event budget;
	// convergence for every seed at larger n is the subject of the
	// experiment harness (internal/experiments), not of this unit test.
	cases := []struct {
		n    int
		seed int64
	}{{3, 1}, {4, 2}, {5, 3}}
	for _, tc := range cases {
		cfg, err := workload.Generate(workload.KindClustered, tc.n, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, Options{Adversary: sched.NewRandomAsync(42), MaxEvents: 150000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OutcomeAllTerminated {
			t.Fatalf("n=%d: outcome = %v", tc.n, res.Outcome)
		}
		if !res.Gathered() {
			t.Fatalf("n=%d: final configuration not gathered", tc.n)
		}
		if err := res.Final.Validate(); err != nil {
			t.Fatalf("n=%d: final configuration invalid: %v", tc.n, err)
		}
		if res.Milestones.Gathered < 0 || res.Milestones.Connected < 0 {
			t.Fatalf("n=%d: milestones not recorded: %+v", tc.n, res.Milestones)
		}
	}
}

func TestNoOverlapInvariantThroughoutRun(t *testing.T) {
	cfg, err := workload.Generate(workload.KindNestedHulls, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, Options{
		Adversary:          sched.NewStopHappy(5),
		MaxEvents:          40000,
		ValidateEveryEvent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("invariant violated: %v", res.Err)
	}
}

func TestStopWhenGathered(t *testing.T) {
	cfg, err := workload.Generate(workload.KindClustered, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, Options{
		Adversary:        sched.NewRandomAsync(9),
		StopWhenGathered: true,
		MaxEvents:        150000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeGathered && res.Outcome != OutcomeAllTerminated {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if !res.Gathered() {
		t.Fatal("run should end gathered")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	cfg, err := workload.Generate(workload.KindRandom, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, Options{MaxEvents: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeBudgetExhausted {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.Events > 50 {
		t.Fatalf("events %d exceeded budget", res.Events)
	}
}

func TestSnapshotSeries(t *testing.T) {
	cfg, err := workload.Generate(workload.KindClustered, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, Options{SnapshotEvery: 10, MaxEvents: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HullAreaSeries) == 0 || len(res.SpreadSeries) == 0 {
		t.Fatal("expected recorded series")
	}
	for _, a := range res.HullAreaSeries {
		if a < 0 {
			t.Fatal("negative hull area recorded")
		}
	}
}

func TestBaselineAlgorithmPluggability(t *testing.T) {
	cfg := config.Geometric{v(0, 0), v(8, 0), v(4, 7)}
	res, err := Run(cfg, Options{Algorithm: gravityForTest{}, MaxEvents: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "test-gravity" {
		t.Fatalf("algorithm name = %q", res.Algorithm)
	}
	if err := res.Final.Validate(); err != nil {
		t.Fatalf("final configuration invalid: %v", err)
	}
}

func TestFirstContact(t *testing.T) {
	// Moving right toward a disc two units ahead of the contact distance.
	tHit, hits := geom.FirstDiscContact(v(0, 0), v(1, 0), v(4, 0), geom.UnitRadius, 10, config.ContactEps)
	if !hits || tHit <= 0 || tHit > 2.0001 {
		t.Fatalf("firstContact = %v %v", tHit, hits)
	}
	// Moving away from a touching disc is allowed.
	_, hits = geom.FirstDiscContact(v(0, 0), v(1, 0), v(-2, 0), geom.UnitRadius, 10, config.ContactEps)
	if hits {
		t.Fatal("moving away from a tangent disc should not be blocked")
	}
	// Moving into a touching disc is blocked immediately.
	tHit, hits = geom.FirstDiscContact(v(0, 0), v(1, 0), v(2, 0), geom.UnitRadius, 10, config.ContactEps)
	if !hits || tHit != 0 {
		t.Fatalf("head-on tangent contact: %v %v", tHit, hits)
	}
	// A disc far off the path never blocks.
	if _, hits = geom.FirstDiscContact(v(0, 0), v(1, 0), v(5, 10), geom.UnitRadius, 100, config.ContactEps); hits {
		t.Fatal("distant disc should not block")
	}
}

// gravityForTest is a minimal Algorithm used to exercise pluggability: move
// toward the centroid of the view and never terminate.
type gravityForTest struct{}

func (gravityForTest) Name() string { return "test-gravity" }

func (gravityForTest) Decide(view core.View) core.Decision {
	return core.Decision{Target: geom.Centroid(view.All()), Trace: []core.AlgState{core.StateStart, core.StateNotConnected}}
}

// Result.StateVisits is copied by enumerating core.AllAlgStates() rather than
// ranging over the internal map (gatherlint detmaprange). The copy must stay
// complete — every visited state survives with its exact count — and
// byte-for-byte reproducible across identical runs.
func TestStateVisitsCopyIsCompleteAndReproducible(t *testing.T) {
	run := func() Result {
		res, err := Run(config.Geometric{v(0, 0), v(6, 2), v(-3, 5)}, Options{
			Adversary: sched.Registry(41)["random-async"](),
			MaxEvents: 50000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.StateVisits) == 0 {
		t.Fatal("StateVisits is empty after a multi-robot run")
	}
	total := 0
	for _, st := range core.AllAlgStates() {
		total += a.StateVisits[st]
	}
	sum := 0
	for _, n := range a.StateVisits {
		sum += n
	}
	if total != sum {
		t.Fatalf("copy dropped visits: AllAlgStates sum %d != map sum %d", total, sum)
	}
	if !reflect.DeepEqual(a.StateVisits, b.StateVisits) {
		t.Fatalf("StateVisits not reproducible:\n  a=%v\n  b=%v", a.StateVisits, b.StateVisits)
	}
}
