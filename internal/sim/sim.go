package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/fatgather/fatgather/internal/adversary"
	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/core"
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/geom/incr"
	"github.com/fatgather/fatgather/internal/obs"
	"github.com/fatgather/fatgather/internal/robot"
	"github.com/fatgather/fatgather/internal/sched"
	"github.com/fatgather/fatgather/internal/trace"
	"github.com/fatgather/fatgather/internal/vision"
)

// Telemetry (internal/obs): write-only handles resolved once at init, per
// the one-way contract — this package never reads them back, so results are
// byte-identical with telemetry on or off. Per-event costs are batched
// (event/outcome counters flush once per run in result()) or sampled (step
// timing observes every stepSampleEvery-th event), keeping the hot path
// within its pinned allocation and throughput budgets.
var (
	obsEvents      = obs.NewCounter("fatgather_sim_events_total")
	obsLivelocks   = obs.NewCounter("fatgather_sim_livelocks_certified_total")
	obsStepSeconds = obs.NewHistogram("fatgather_sim_step_seconds")

	// obsRuns indexes the per-outcome run counters by Outcome value; the
	// label strings mirror Outcome.String().
	obsRuns = [...]*obs.Counter{
		OutcomeAllTerminated:   obs.NewCounter("fatgather_sim_runs_total", obs.L("outcome", "all-terminated")),
		OutcomeGathered:        obs.NewCounter("fatgather_sim_runs_total", obs.L("outcome", "gathered")),
		OutcomeBudgetExhausted: obs.NewCounter("fatgather_sim_runs_total", obs.L("outcome", "budget-exhausted")),
		OutcomeStalled:         obs.NewCounter("fatgather_sim_runs_total", obs.L("outcome", "stalled")),
		OutcomeLivelocked:      obs.NewCounter("fatgather_sim_runs_total", obs.L("outcome", "livelocked")),
		OutcomeError:           obs.NewCounter("fatgather_sim_runs_total", obs.L("outcome", "error")),
	}
)

// stepSampleEvery is the step-timing sampling period: Step observes the
// wall-clock duration of every 64th event, which keeps the per-event
// overhead of two clock reads off the common path while still populating
// the latency histogram densely (a typical cell runs thousands of events).
const stepSampleEvery = 64

// Algorithm is a pluggable local algorithm run in the Compute state. The
// paper's algorithm (PaperAlgorithm) is the default; baselines implement the
// same interface so they can be compared under identical scheduling.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Decide maps a local view to a decision (target point or terminate).
	Decide(v core.View) core.Decision
}

// PaperAlgorithm is the gathering algorithm of the paper (package core).
type PaperAlgorithm struct{}

// Name implements Algorithm.
func (PaperAlgorithm) Name() string { return "agm-gathering" }

// Decide implements Algorithm.
func (PaperAlgorithm) Decide(v core.View) core.Decision { return core.Decide(v) }

var _ Algorithm = PaperAlgorithm{}

// Outcome classifies how a run ended.
type Outcome int

// Run outcomes.
const (
	// OutcomeAllTerminated: every robot reached its Terminate state (the
	// paper's termination condition).
	OutcomeAllTerminated Outcome = iota + 1
	// OutcomeGathered: the global gathering goal (connected + fully visible)
	// holds and Options.StopWhenGathered was set.
	OutcomeGathered
	// OutcomeBudgetExhausted: the event budget ran out first.
	OutcomeBudgetExhausted
	// OutcomeStalled: the adversary strategy declined to schedule any robot
	// (every remaining candidate has crash-stopped), so no further event can
	// change the configuration.
	OutcomeStalled
	// OutcomeLivelocked: the zero-progress cycle detector certified a
	// livelock — the configuration recurred exactly (positions, protocol
	// states, targets, views) with no distance advanced and no robot
	// terminated in between — so the run can never make progress again.
	// Before this outcome existed such runs burned the whole event budget
	// and were misreported as OutcomeBudgetExhausted. See livelock.go.
	OutcomeLivelocked
	// OutcomeError: the run aborted on a simulation error (Result.Err holds
	// it) — an invariant violation under ValidateEveryEvent, an illegal
	// robot state transition, or a strategy scheduling outside the candidate
	// set (ErrBadSchedule).
	OutcomeError
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeAllTerminated:
		return "all-terminated"
	case OutcomeGathered:
		return "gathered"
	case OutcomeBudgetExhausted:
		return "budget-exhausted"
	case OutcomeStalled:
		return "stalled"
	case OutcomeLivelocked:
		return "livelocked"
	case OutcomeError:
		return "error"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// DefaultMaxEvents is the event budget when Options.MaxEvents is unset. It
// is deliberately larger than experiments.DefaultMaxEvents (150000): a
// single interactive run (gathersim) gets headroom for slow-converging
// seeds, while the experiment suite and gatherbench trade that tail
// coverage for sweep cost across thousands of cells. Both defaults are
// pinned by tests so a drift in either is a conscious decision.
const DefaultMaxEvents = 200000

// Options configures a simulation run.
type Options struct {
	// Algorithm is the local algorithm; nil means the paper's algorithm.
	Algorithm Algorithm
	// Strategy is the scheduling strategy (internal/adversary); it owns event
	// selection and may carry fault decorators (crash-stop, sensor noise,
	// movement truncation). When nil, Adversary (wrapped) or the fair
	// strategy is used.
	Strategy adversary.Strategy
	// Adversary is the legacy scheduler hook, consulted only when Strategy is
	// nil; nil means sched.NewFair(). A wrapped legacy adversary schedules
	// byte-identically to the pre-Strategy simulator.
	Adversary sched.Adversary
	// Vision is the visibility model; nil means vision.Default.
	Vision *vision.Model
	// Delta is the liveness minimum-progress distance; <=0 means
	// sched.DefaultDelta.
	Delta float64
	// MaxEvents bounds the number of events; <=0 means DefaultMaxEvents.
	// Note: the experiment suite (internal/experiments) and gatherbench run
	// with the smaller experiments.DefaultMaxEvents budget; the single-run
	// default here deliberately leaves extra headroom. See DefaultMaxEvents.
	MaxEvents int
	// StopWhenGathered ends the run as soon as the configuration is connected
	// and fully visible, even if robots have not locally terminated yet.
	StopWhenGathered bool
	// SnapshotEvery records the configuration (and hull area) every k events;
	// 0 disables snapshots.
	SnapshotEvery int
	// ValidateEveryEvent re-checks the no-overlap invariant after every
	// event; slower but used extensively in tests.
	ValidateEveryEvent bool
	// NoLivelockDetection disables the zero-progress cycle detector
	// (livelock.go); runs that would be certified livelocked then burn the
	// event budget and end OutcomeBudgetExhausted, as they did before the
	// detector existed.
	NoLivelockDetection bool
	// LivelockWindow is the number of consecutive zero-progress events after
	// which the detector starts fingerprinting configurations; <=0 means
	// DefaultLivelockWindow. The window must stay above any zero-progress
	// streak a healthy run exhibits (see livelock.go for measured streaks).
	LivelockWindow int
	// LivelockRecurrences is how many times one configuration signature must
	// recur with zero progress in between before the livelock is certified;
	// <=0 means DefaultLivelockRecurrences.
	LivelockRecurrences int
	// LivelockTraceFrames bounds the trace snippet captured around the
	// certified cycle (Result.LivelockTrace); 0 means
	// DefaultLivelockTraceFrames, negative disables snippet capture.
	LivelockTraceFrames int
}

func (o Options) withDefaults() Options {
	if o.Algorithm == nil {
		o.Algorithm = PaperAlgorithm{}
	}
	if o.Strategy == nil {
		if o.Adversary != nil {
			o.Strategy = adversary.Wrap(o.Adversary)
		} else {
			o.Strategy = adversary.Wrap(sched.NewFair())
		}
	}
	if o.Vision == nil {
		o.Vision = vision.Default
	}
	if o.Delta <= 0 {
		o.Delta = sched.DefaultDelta
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = DefaultMaxEvents
	}
	if o.LivelockWindow <= 0 {
		o.LivelockWindow = DefaultLivelockWindow
	}
	if o.LivelockRecurrences <= 0 {
		o.LivelockRecurrences = DefaultLivelockRecurrences
	}
	if o.LivelockTraceFrames == 0 {
		o.LivelockTraceFrames = DefaultLivelockTraceFrames
	}
	return o
}

// Milestones records the first event index at which each of the paper's
// intermediate properties held (-1 if never observed).
type Milestones struct {
	AllOnHull      int // |onCH(G)| = n
	FullyVisible   int // every robot sees every robot
	SafeConfig     int // all on hull AND fully visible (phase-2 precondition)
	Connected      int // tangency graph connected
	Gathered       int // connected AND fully visible (Definition 1)
	FirstTerminate int // first robot reached Terminate
}

// Result summarizes a run.
type Result struct {
	Outcome           Outcome
	Algorithm         string
	Adversary         string
	N                 int
	Events            int
	Cycles            int
	TerminatedCount   int
	Collisions        int
	Stops             int
	Arrivals          int
	TotalDistance     float64
	Final             config.Geometric
	Milestones        Milestones
	StateVisits       map[core.AlgState]int
	HullAreaSeries    []float64
	SpreadSeries      []float64
	ConnectedAtEnd    bool
	FullyVisibleAtEnd bool
	// CrashedCount is the number of robots that crash-stopped during the run
	// (0 unless the adversary injects crash faults).
	CrashedCount int
	// SurvivorsGathered reports whether the gathering goal — connected and
	// fully visible — holds for the non-crashed robots alone at the end of
	// the run, with the crashed robots' bodies removed from the evaluated
	// configuration. Equal to Gathered() in fault-free runs; under crash(k)
	// it measures how well the survivors solved their restricted task even
	// though a frozen peer makes the full goal unreachable.
	SurvivorsGathered bool
	// LivelockTrace is a bounded snippet of the certified zero-progress
	// cycle, recorded by the livelock detector for offline inspection
	// (gatherviz -trace). Nil unless Outcome is OutcomeLivelocked and
	// snippet capture is enabled (Options.LivelockTraceFrames >= 0).
	LivelockTrace *trace.Trace
	Err           error
}

// Gathered reports whether the final configuration satisfies the geometric
// gathering goal.
func (r Result) Gathered() bool { return r.ConnectedAtEnd && r.FullyVisibleAtEnd }

// ErrInvalidInitial is returned when the initial configuration has
// overlapping robots.
var ErrInvalidInitial = errors.New("sim: invalid initial configuration")

// Simulator runs one execution.
type Simulator struct {
	opts   Options
	robots []*robot.Robot
	n      int

	// geo is the incremental geometry cache (hull, connectivity, pairwise
	// visibility). Exactly one robot moves per event — only in eventAdvance —
	// so every position change is reported through geo.Move and the cached
	// predicates stay bit-identical to the from-scratch oracles on Config().
	geo *incr.Cache

	events      int
	collisions  int
	stops       int
	arrivals    int
	stateVisits map[core.AlgState]int

	milestones   Milestones
	areaSeries   []float64
	spreadSeries []float64

	// Reused adversary.Env buffers (rebuilt every Step; strategies must not
	// retain them).
	envStates  []robot.State
	envCenters []geom.Vec
	envTargets []geom.Vec

	// Reused per-event buffers. candBuf backs activeCandidates (strategies
	// copy what they keep); viewBuf backs the Look snapshot handed to
	// PerturbView/BeginLook, both of which copy; othersBuf backs the
	// self-filtered view handed to core.NewView, which copies.
	candBuf   []int
	viewBuf   []geom.Vec
	othersBuf []geom.Vec

	// Livelock detection state (livelock.go). progressed is set by any event
	// that advances a robot or terminates one; zeroStreak counts consecutive
	// events without progress.
	progressed bool
	zeroStreak int
	llSeen     map[string]int
	llSig      []byte
	llFrames   []trace.Frame
	llTrace    *trace.Trace
}

// ErrStalled is returned by Step when the adversary strategy declines to
// schedule any robot (adversary.NoRobot): no further event can change the
// configuration, so Run ends the run with OutcomeStalled.
var ErrStalled = errors.New("sim: adversary scheduled no robot (all remaining candidates crashed)")

// New creates a simulator for the given initial configuration.
func New(initial config.Geometric, opts Options) (*Simulator, error) {
	if err := initial.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInitial, err)
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("%w: no robots", ErrInvalidInitial)
	}
	o := opts.withDefaults()
	robots := make([]*robot.Robot, len(initial))
	for i, c := range initial {
		robots[i] = robot.New(i, c)
	}
	return &Simulator{
		opts:        o,
		robots:      robots,
		n:           len(initial),
		geo:         incr.New(o.Vision, initial),
		stateVisits: make(map[core.AlgState]int),
		milestones: Milestones{
			AllOnHull: -1, FullyVisible: -1, SafeConfig: -1,
			Connected: -1, Gathered: -1, FirstTerminate: -1,
		},
	}, nil
}

// Config returns the current geometric configuration.
func (s *Simulator) Config() config.Geometric {
	out := make(config.Geometric, s.n)
	for i, r := range s.robots {
		out[i] = r.Center
	}
	return out
}

// Robots exposes the robot records (read-only use intended).
func (s *Simulator) Robots() []*robot.Robot { return s.robots }

// Events returns the number of events executed so far.
func (s *Simulator) Events() int { return s.events }

// AllTerminated reports whether every robot has terminated.
func (s *Simulator) AllTerminated() bool {
	for _, r := range s.robots {
		if !r.Terminated() {
			return false
		}
	}
	return true
}

// Run executes events until termination, the gathering goal (if
// StopWhenGathered), or the event budget, and returns the result.
func (s *Simulator) Run() Result {
	s.observe()
	for s.events < s.opts.MaxEvents {
		if s.AllTerminated() {
			return s.result(OutcomeAllTerminated, nil)
		}
		if s.opts.StopWhenGathered && s.milestones.Gathered >= 0 {
			return s.result(OutcomeGathered, nil)
		}
		if err := s.Step(); errors.Is(err, ErrStalled) {
			return s.result(OutcomeStalled, nil)
		} else if errors.Is(err, ErrLivelocked) {
			return s.result(OutcomeLivelocked, nil)
		} else if err != nil {
			return s.result(OutcomeError, err)
		}
	}
	if s.AllTerminated() {
		return s.result(OutcomeAllTerminated, nil)
	}
	if s.opts.StopWhenGathered && s.milestones.Gathered >= 0 {
		return s.result(OutcomeGathered, nil)
	}
	return s.result(OutcomeBudgetExhausted, nil)
}

// env rebuilds the reused adversary.Env view of the current simulation state.
func (s *Simulator) env() adversary.Env {
	if s.envStates == nil {
		s.envStates = make([]robot.State, s.n)
		s.envCenters = make([]geom.Vec, s.n)
		s.envTargets = make([]geom.Vec, s.n)
	}
	for i, r := range s.robots {
		s.envStates[i] = r.State
		s.envCenters[i] = r.Center
		if r.State == robot.Move {
			s.envTargets[i] = r.Target
		} else {
			s.envTargets[i] = geom.Vec{}
		}
	}
	return adversary.Env{States: s.envStates, Centers: s.envCenters, Targets: s.envTargets}
}

// ErrBadSchedule is returned by Step when the strategy picks a robot outside
// the candidate set (out of range or already terminated). Such picks used to
// be silently coerced to candidates[0], which masked buggy strategies behind
// a quietly different schedule; now the run fails loudly (OutcomeError).
var ErrBadSchedule = errors.New("sim: strategy scheduled a robot outside the candidate set")

// Step executes a single event chosen by the adversary strategy. It returns
// ErrStalled when the strategy schedules no robot (see OutcomeStalled),
// ErrLivelocked when the zero-progress cycle detector certifies a livelock
// (see OutcomeLivelocked), and ErrBadSchedule on an invalid pick.
func (s *Simulator) Step() error {
	sampled := s.events%stepSampleEvery == 0
	var stepStart time.Time
	if sampled {
		//gatherlint:ignore nondetsource sampled wall-clock step timing is telemetry only, never folded into results
		stepStart = time.Now()
	}
	candidates := s.activeCandidates()
	if len(candidates) == 0 {
		return nil
	}
	env := s.env()
	id := s.opts.Strategy.Next(candidates, env)
	if id == adversary.NoRobot {
		return ErrStalled
	}
	valid := false
	for _, c := range candidates {
		if c == id {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("%w: strategy %q picked robot %d of %d (candidates %v)",
			ErrBadSchedule, s.opts.Strategy.Name(), id, s.n, candidates)
	}
	r := s.robots[id]

	var err error
	switch r.State {
	case robot.Wait:
		err = s.eventLook(r)
	case robot.Look:
		err = r.BeginCompute()
	case robot.Compute:
		err = s.eventComputeOutcome(r)
	case robot.Move:
		err = s.eventAdvance(r, env)
	default:
		return nil
	}
	if err != nil {
		return err
	}
	s.events++
	s.observe()
	if s.opts.ValidateEveryEvent {
		if verr := s.Config().Validate(); verr != nil {
			return fmt.Errorf("sim: invariant violated after event %d: %w", s.events, verr)
		}
	}
	if !s.opts.NoLivelockDetection && s.noteLivelockProgress() {
		return ErrLivelocked
	}
	if sampled {
		//gatherlint:ignore nondetsource sampled wall-clock step timing is telemetry only, never folded into results
		obsStepSeconds.Observe(time.Since(stepStart).Seconds())
	}
	return nil
}

func (s *Simulator) activeCandidates() []int {
	s.candBuf = s.candBuf[:0]
	for i, r := range s.robots {
		if !r.Terminated() {
			s.candBuf = append(s.candBuf, i)
		}
	}
	return s.candBuf
}

// eventLook implements the Look event: the robot snapshots the centers it can
// see (always including its own). A fault-injecting strategy may perturb the
// snapshot — but never the robot's self-observation or the physical
// configuration.
func (s *Simulator) eventLook(r *robot.Robot) error {
	s.viewBuf = s.geo.AppendViewCenters(s.viewBuf[:0], r.ID)
	view := s.viewBuf
	if p, ok := s.opts.Strategy.(adversary.Perturber); ok {
		view = p.PerturbView(r.ID, r.Center, view)
	}
	return r.BeginLook(view)
}

// eventComputeOutcome implements the Compute/Done/Move events: run the local
// algorithm on the robot's snapshot and either terminate or start moving.
func (s *Simulator) eventComputeOutcome(r *robot.Robot) error {
	self := r.Center
	s.othersBuf = s.othersBuf[:0]
	for _, c := range r.View {
		if !c.EqWithin(self, geom.Eps) {
			s.othersBuf = append(s.othersBuf, c)
		}
	}
	decision := s.opts.Algorithm.Decide(core.NewView(self, s.othersBuf, s.n))
	s.stateVisits[decision.Final()]++
	if decision.Terminate {
		if s.milestones.FirstTerminate < 0 {
			s.milestones.FirstTerminate = s.events
		}
		// A termination is progress: it shrinks the candidate set for good,
		// so the run cannot be cycling.
		s.progressed = true
		return r.Done()
	}
	return r.BeginMove(decision.Target)
}

// eventAdvance implements the Move/Stop/Collide/Arrive events for one
// activation of a moving robot: the adversary chooses the progress, motion is
// truncated at the first tangency, and the robot's state is updated.
func (s *Simulator) eventAdvance(r *robot.Robot, env adversary.Env) error {
	remaining := r.RemainingDistance()
	if remaining <= config.ContactEps {
		s.arrivals++
		return r.FinishMove()
	}
	action := s.opts.Strategy.Move(r.ID, remaining, env)
	dist := action.Distance
	minProgress := math.Min(s.opts.Delta, remaining)
	if dist < minProgress {
		dist = minProgress
	}
	if dist > remaining {
		dist = remaining
	}
	if p, ok := s.opts.Strategy.(adversary.Perturber); ok {
		// Movement truncation applies after the liveness clamp: the fault may
		// undercut the delta — that is the point — but never reverse motion
		// or overshoot.
		dist = p.PerturbMove(r.ID, dist, remaining)
		if dist < 0 {
			dist = 0
		}
		if dist > remaining {
			dist = remaining
		}
	}

	free, blockedBy := s.freeDistance(r, dist)
	r.Advance(free)
	if free > 0 {
		// Cumulative distance advanced: any positive step changes the
		// configuration, so the zero-progress streak resets — and this is the
		// single place a position changes, so the geometry cache updates here.
		s.geo.Move(r.ID, r.Center)
		s.progressed = true
	}

	switch {
	case blockedBy >= 0:
		// Touched another robot: Collide/Stop per the paper; either way the
		// robot returns to Wait.
		s.collisions++
		return r.FinishMove()
	case r.RemainingDistance() <= config.ContactEps:
		s.arrivals++
		return r.FinishMove()
	case action.Stop:
		s.stops++
		return r.FinishMove()
	default:
		// Remain in Move; a later activation continues the journey.
		return nil
	}
}

// freeDistance computes how far robot r can advance along its trajectory (up
// to want) before its disc becomes tangent to another robot's disc, and which
// robot blocks it (-1 if none within want).
func (s *Simulator) freeDistance(r *robot.Robot, want float64) (float64, int) {
	dir := r.Target.Sub(r.Center)
	if dir.Norm() < geom.Eps {
		return 0, -1
	}
	u := dir.Unit()
	best := want
	blocker := -1
	for _, other := range s.robots {
		if other.ID == r.ID {
			continue
		}
		t, hits := geom.FirstDiscContact(r.Center, u, other.Center, geom.UnitRadius, best, config.ContactEps)
		if hits && t <= best {
			best = t
			blocker = other.ID
		}
	}
	if best < 0 {
		best = 0
	}
	return best, blocker
}

// observe updates milestone bookkeeping and optional snapshot series. All
// predicates come from the incremental cache; each equals (bit-identically)
// the config.Geometric oracle it replaced, so milestone indices and the
// persisted snapshot series are unchanged.
func (s *Simulator) observe() {
	allOnHull := s.geo.AllOnHull()
	fully := s.geo.FullyVisible()
	connected := s.geo.Connected()
	if allOnHull && s.milestones.AllOnHull < 0 {
		s.milestones.AllOnHull = s.events
	}
	if fully && s.milestones.FullyVisible < 0 {
		s.milestones.FullyVisible = s.events
	}
	if allOnHull && fully && s.milestones.SafeConfig < 0 {
		s.milestones.SafeConfig = s.events
	}
	if connected && s.milestones.Connected < 0 {
		s.milestones.Connected = s.events
	}
	if connected && fully && s.milestones.Gathered < 0 {
		s.milestones.Gathered = s.events
	}
	if s.opts.SnapshotEvery > 0 && s.events%s.opts.SnapshotEvery == 0 {
		s.areaSeries = append(s.areaSeries, s.geo.HullArea())
		s.spreadSeries = append(s.spreadSeries, s.geo.Spread())
	}
}

func (s *Simulator) result(outcome Outcome, err error) Result {
	// Flush the batched telemetry for this run: one counter add per run
	// instead of one per event keeps atomic traffic off the event loop.
	obsEvents.Add(int64(s.events))
	if int(outcome) > 0 && int(outcome) < len(obsRuns) && obsRuns[outcome] != nil {
		obsRuns[outcome].Inc()
	}
	if outcome == OutcomeLivelocked {
		obsLivelocks.Inc()
	}
	cfg := s.Config()
	cycles := 0
	distance := 0.0
	terminated := 0
	for _, r := range s.robots {
		cycles += r.Cycles
		distance += r.DistanceTraveled
		if r.Terminated() {
			terminated++
		}
	}
	// Copy the visit counts by enumerating the (complete, declaration-
	// ordered) state list rather than ranging over the map, so no map
	// iteration happens on a result-producing path (gatherlint detmaprange).
	visits := make(map[core.AlgState]int, len(s.stateVisits))
	for _, st := range core.AllAlgStates() {
		if v, ok := s.stateVisits[st]; ok {
			visits[st] = v
		}
	}
	connected := s.geo.Connected()
	fully := s.geo.FullyVisible()
	// Survivor-relative goal: re-evaluate gathering on the sub-configuration
	// of the robots that did not crash-stop. Without crash faults the subsets
	// coincide, so the survivor flag is exactly Gathered().
	crashed := adversary.CrashedIDs(s.opts.Strategy)
	survivorsGathered := connected && fully
	if len(crashed) > 0 {
		crashedSet := make(map[int]bool, len(crashed))
		for _, id := range crashed {
			crashedSet[id] = true
		}
		survivors := make(config.Geometric, 0, s.n-len(crashed))
		for i, c := range cfg {
			if !crashedSet[i] {
				survivors = append(survivors, c)
			}
		}
		survivorsGathered = survivors.Gathered(s.opts.Vision)
	}
	return Result{
		Outcome:           outcome,
		Algorithm:         s.opts.Algorithm.Name(),
		Adversary:         s.opts.Strategy.Name(),
		N:                 s.n,
		Events:            s.events,
		Cycles:            cycles,
		TerminatedCount:   terminated,
		Collisions:        s.collisions,
		Stops:             s.stops,
		Arrivals:          s.arrivals,
		TotalDistance:     distance,
		Final:             cfg,
		Milestones:        s.milestones,
		StateVisits:       visits,
		HullAreaSeries:    append([]float64(nil), s.areaSeries...),
		SpreadSeries:      append([]float64(nil), s.spreadSeries...),
		ConnectedAtEnd:    connected,
		FullyVisibleAtEnd: fully,
		CrashedCount:      len(crashed),
		SurvivorsGathered: survivorsGathered,
		LivelockTrace:     s.llTrace,
		Err:               err,
	}
}

// Run is a convenience helper: build a simulator for the initial
// configuration and run it.
func Run(initial config.Geometric, opts Options) (Result, error) {
	s, err := New(initial, opts)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}
