package sim

// Livelock certification: detect zero-progress cycles and end the run with
// OutcomeLivelocked instead of burning the event budget.
//
// PR 4's round-robin-lag adversary exposed blocked-path livelocks: a robot
// forever targets a point behind a tangent neighbor, freeDistance returns 0,
// and every activation advances zero distance. Such a run is fully frozen —
// positions never change again — yet it used to consume the entire MaxEvents
// budget (the E13 default is 150000 events, with the last real progress
// often before event 500) and was then misreported as budget-exhausted.
//
// The detector is two-staged so the fair path pays almost nothing:
//
//  1. A streak counter. Every event either makes progress (a robot advanced
//     a positive distance, or a robot terminated) or it does not. Healthy
//     runs in the pinned experiment grids show zero-progress streaks up to
//     ~1150 events (E5 fair n=16: 1135; E9 random-async: 1037), so the
//     detector stays dormant until the streak reaches LivelockWindow
//     (default 2000) consecutive zero-progress events. Below the window the
//     per-event cost is one branch on a bool.
//  2. Configuration fingerprinting. Once the window is exceeded, every event
//     appends the exact joint configuration signature — per robot: protocol
//     state, position bits, move target bits, and a hash of the last view
//     snapshot — to a recurrence map. Zero progress freezes positions
//     bit-for-bit, so a true cycle repeats signatures exactly; when one
//     signature recurs LivelockRecurrences times (default 3) the livelock
//     is certified. Randomized strategies whose schedule never revisits the
//     exact joint state (view-noise faults re-perturb every Look) are
//     caught by a hard cap instead: a streak of
//     LivelockWindow*livelockHardCapFactor zero-progress events certifies
//     unconditionally, because by then the configuration has been frozen
//     for 8 windows with nothing left that could unfreeze it.
//
// Detection is deterministic (pure function of the event sequence) and is
// invisible to any run that ends within the window, which keeps the pinned
// fair-path byte-identical hashes valid: the pinned grids run with budgets
// <= 1200 events, strictly below the default window.
//
// While fingerprinting, the detector also keeps a bounded ring of trace
// frames (positions + protocol states + move targets); on certification the
// last LivelockTraceFrames of them become Result.LivelockTrace, a replayable
// snippet of the cycle for gatherviz -trace.

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"

	"github.com/fatgather/fatgather/internal/robot"
	"github.com/fatgather/fatgather/internal/trace"
)

// Livelock detector defaults (see Options.LivelockWindow and friends).
const (
	// DefaultLivelockWindow is the zero-progress streak length after which
	// configurations are fingerprinted. It must exceed the longest streak a
	// healthy (eventually progressing) run exhibits; the measured maximum
	// across the E5/E9/E10 grids is 1135.
	DefaultLivelockWindow = 2000
	// DefaultLivelockRecurrences is how many exact recurrences of one
	// configuration signature certify the livelock.
	DefaultLivelockRecurrences = 3
	// DefaultLivelockTraceFrames bounds the captured cycle snippet.
	DefaultLivelockTraceFrames = 24

	// livelockHardCapFactor: a zero-progress streak of window*factor events
	// certifies even without a signature recurrence (randomized schedules
	// over a joint state space too large to revisit exactly).
	livelockHardCapFactor = 8
	// livelockSeenCap bounds the signature map; on overflow the map is
	// cleared and recurrence counting restarts (the hard cap still ends the
	// run). Signatures are ~25 bytes per robot, so the cap also bounds
	// memory at roughly a few megabytes for moderate n.
	livelockSeenCap = 1 << 15
)

// ErrLivelocked is returned by Step when the detector certifies a
// zero-progress cycle; Run maps it to OutcomeLivelocked.
var ErrLivelocked = errors.New("sim: zero-progress cycle certified (livelock)")

// noteLivelockProgress consumes the per-event progress flag and advances the
// detector. It returns true when the livelock is certified, after storing
// the bounded cycle snippet in s.llTrace.
func (s *Simulator) noteLivelockProgress() bool {
	if s.progressed {
		s.progressed = false
		s.zeroStreak = 0
		s.llSeen = nil
		s.llFrames = s.llFrames[:0]
		return false
	}
	s.zeroStreak++
	if s.zeroStreak < s.opts.LivelockWindow {
		return false
	}
	sig := s.livelockSignature()
	if s.llSeen == nil {
		s.llSeen = make(map[string]int)
	} else if len(s.llSeen) >= livelockSeenCap {
		s.llSeen = make(map[string]int)
	}
	s.llSeen[sig]++
	s.captureLivelockFrame()
	if s.llSeen[sig] >= s.opts.LivelockRecurrences ||
		s.zeroStreak >= s.opts.LivelockWindow*livelockHardCapFactor {
		s.llTrace = s.buildLivelockTrace()
		return true
	}
	return false
}

// livelockSignature fingerprints the joint configuration exactly: per robot
// the protocol state, the position bits, the move target bits (movers only),
// and a 64-bit hash of the last view snapshot. Zero progress freezes
// positions bit-for-bit, so cycling runs repeat signatures exactly and
// collisions between distinct configurations are impossible (the signature
// is injective up to the view hash).
func (s *Simulator) livelockSignature() string {
	b := s.llSig[:0]
	for _, r := range s.robots {
		b = append(b, byte(r.State))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Center.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Center.Y))
		if r.State == robot.Move {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Target.X))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Target.Y))
		}
		if len(r.View) > 0 {
			h := fnv.New64a()
			var buf [8]byte
			for _, c := range r.View {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c.X))
				h.Write(buf[:])
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c.Y))
				h.Write(buf[:])
			}
			b = binary.LittleEndian.AppendUint64(b, h.Sum64())
		}
	}
	s.llSig = b
	return string(b)
}

// captureLivelockFrame appends the current configuration to the bounded
// snippet ring (oldest frame dropped first).
func (s *Simulator) captureLivelockFrame() {
	max := s.opts.LivelockTraceFrames
	if max < 0 {
		return
	}
	f := trace.Frame{
		Event:   s.events,
		Centers: make([]trace.Point, s.n),
		States:  make([]string, s.n),
		Targets: make([]*trace.Point, s.n),
	}
	for i, r := range s.robots {
		f.Centers[i] = trace.Point{X: r.Center.X, Y: r.Center.Y}
		f.States[i] = r.State.String()
		if r.State == robot.Move {
			f.Targets[i] = &trace.Point{X: r.Target.X, Y: r.Target.Y}
		}
	}
	if len(s.llFrames) >= max {
		copy(s.llFrames, s.llFrames[1:])
		s.llFrames = s.llFrames[:max-1]
	}
	s.llFrames = append(s.llFrames, f)
}

// buildLivelockTrace freezes the snippet ring into a standalone trace. The
// Seed field is zero: the simulator never learns the workload seed (the
// engine layer owns seeding); stores and CLI output carry the seed alongside.
func (s *Simulator) buildLivelockTrace() *trace.Trace {
	if len(s.llFrames) == 0 {
		return nil
	}
	t := trace.New(s.opts.Algorithm.Name(), s.opts.Strategy.Name(), s.n, 0)
	t.Frames = append([]trace.Frame(nil), s.llFrames...)
	return t
}
