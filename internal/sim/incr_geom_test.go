package sim

import (
	"math"
	"testing"

	"github.com/fatgather/fatgather/internal/adversary"
	"github.com/fatgather/fatgather/internal/workload"
)

// TestStepGeometryMatchesScratchOracles is the simulator-level differential
// test for the incremental geometry cache: drive real event sequences (the
// only code path that feeds geo.Move) under several strategies and, after
// every single Step, compare each cached predicate against the from-scratch
// config.Geometric / vision oracle on the live configuration. All comparisons
// are exact — bit-level for floats — because the observe()/result() values
// flow into pinned milestone indices, snapshot series and store records.
func TestStepGeometryMatchesScratchOracles(t *testing.T) {
	specs := []string{"fair", "greedy-stall", "random-async"}
	for _, spec := range specs {
		for _, kind := range []workload.Kind{workload.KindClustered, workload.KindNestedHulls} {
			for _, n := range []int{3, 6, 17} {
				cfg, err := workload.Generate(kind, n, 1)
				if err != nil {
					t.Fatalf("generate %s n=%d: %v", kind, n, err)
				}
				as, err := adversary.ParseSpec(spec)
				if err != nil {
					t.Fatalf("parse %q: %v", spec, err)
				}
				strat, err := adversary.New(as, 7)
				if err != nil {
					t.Fatalf("build %q: %v", spec, err)
				}
				s, err := New(cfg, Options{Strategy: strat, SnapshotEvery: 1})
				if err != nil {
					t.Fatal(err)
				}
				for ev := 0; ev < 120 && !s.AllTerminated(); ev++ {
					if err := s.Step(); err != nil {
						t.Fatalf("%s/%s/n=%d step %d: %v", spec, kind, n, ev, err)
					}
					live := s.Config()
					if got, want := s.geo.Connected(), live.Connected(); got != want {
						t.Fatalf("%s/%s/n=%d ev %d: Connected cache %v, oracle %v", spec, kind, n, ev, got, want)
					}
					if got, want := s.geo.FullyVisible(), live.FullyVisible(s.opts.Vision); got != want {
						t.Fatalf("%s/%s/n=%d ev %d: FullyVisible cache %v, oracle %v", spec, kind, n, ev, got, want)
					}
					if got, want := s.geo.AllOnHull(), live.AllOnHull(); got != want {
						t.Fatalf("%s/%s/n=%d ev %d: AllOnHull cache %v, oracle %v", spec, kind, n, ev, got, want)
					}
					ga, wa := s.geo.HullArea(), live.HullArea()
					if math.Float64bits(ga) != math.Float64bits(wa) {
						t.Fatalf("%s/%s/n=%d ev %d: HullArea cache %v, oracle %v (must be bit-identical)", spec, kind, n, ev, ga, wa)
					}
					gs, ws := s.geo.Spread(), live.Spread()
					if math.Float64bits(gs) != math.Float64bits(ws) {
						t.Fatalf("%s/%s/n=%d ev %d: Spread cache %v, oracle %v (must be bit-identical)", spec, kind, n, ev, gs, ws)
					}
				}
			}
		}
	}
}

// stepAllocBudget is the pinned per-event allocation budget for Simulator.Step
// averaged over a long fair-schedule run. The remaining allocations are the
// per-cycle Compute work (core.NewView's defensive copy plus the paper
// algorithm's per-decision hull construction and trace inside Decide) — the
// per-event geometry (visibility, hull, connectivity, spread) is
// allocation-free through the incremental cache. Measured ~20 allocs/op on an
// n=9 ring (versus several hundred before the cache); the budget leaves slack
// for Go-version variance but fails on any structural regression such as
// losing a reused buffer.
const stepAllocBudget = 28

// TestStepAllocBudget pins the simulator's per-event allocation count. This is
// the event-loop half of the alloc win (the geometry half is pinned at zero in
// internal/geom/incr); a regression here multiplies across every event of
// every sweep cell.
func TestStepAllocBudget(t *testing.T) {
	s, err := New(workload.Ring(9, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm all reused buffers through a few full Look-Compute-Move cycles.
	for i := 0; i < 64; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(400, func() {
		if s.AllTerminated() {
			return
		}
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if s.AllTerminated() {
		t.Fatal("run terminated during measurement; enlarge the workload")
	}
	if allocs > stepAllocBudget {
		t.Fatalf("Step allocates %v allocs/op on average, budget %d", allocs, stepAllocBudget)
	}
}
