package sim

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/sched"
	"github.com/fatgather/fatgather/internal/workload"
)

// TestStepInvariantsProperty is a property-based sweep over randomized
// (workload, n, seed, adversary) combinations. After every single Step it
// asserts the physical and geometric invariants of the model:
//
//  1. No two discs ever overlap: every pairwise center distance stays at
//     least 2r - ContactEps (the simulator's tangency tolerance).
//  2. Once the gathering goal (connected + fully visible) first holds, the
//     convex hull area never grows again (the Lemma 21 convergence
//     property). Before that point the hull may legitimately grow, because
//     phase 1 moves interior robots outward onto the hull.
func TestStepInvariantsProperty(t *testing.T) {
	const (
		combos    = 14
		maxEvents = 8000
	)
	rng := rand.New(rand.NewSource(20260728))
	kinds := workload.Kinds()
	advNames := sched.Names()

	for c := 0; c < combos; c++ {
		kind := kinds[rng.Intn(len(kinds))]
		n := 3 + rng.Intn(6)
		seed := rng.Int63n(1000) + 1
		advName := advNames[rng.Intn(len(advNames))]

		w, err := workload.Generate(kind, n, seed)
		if err != nil {
			t.Fatalf("generate %s n=%d: %v", kind, n, err)
		}
		adv := sched.Registry(seed + 77)[advName]()
		s, err := New(w, Options{Adversary: adv, MaxEvents: maxEvents})
		if err != nil {
			t.Fatalf("%s n=%d seed=%d: %v", kind, n, seed, err)
		}

		hullAtGoal := -1.0
		prevArea := -1.0
		for s.Events() < maxEvents && !s.AllTerminated() {
			if err := s.Step(); errors.Is(err, ErrLivelocked) {
				// A certified zero-progress cycle: the configuration is frozen
				// for good, so every remaining invariant holds trivially.
				break
			} else if err != nil {
				t.Fatalf("%s n=%d seed=%d adv=%s: step: %v", kind, n, seed, advName, err)
			}
			cfg := s.Config()
			if d := cfg.MinPairDistance(); n > 1 && d < 2*geom.UnitRadius-1e-7 {
				t.Fatalf("%s n=%d seed=%d adv=%s event=%d: discs overlap (min pair distance %.12f)",
					kind, n, seed, advName, s.Events(), d)
			}
			if s.milestones.Gathered >= 0 {
				area := cfg.HullArea()
				if hullAtGoal < 0 {
					hullAtGoal = area
				} else if area > prevArea+1e-9 {
					t.Fatalf("%s n=%d seed=%d adv=%s event=%d: hull area grew after gathering (%.12f -> %.12f)",
						kind, n, seed, advName, s.Events(), prevArea, area)
				}
				prevArea = area
			}
		}
	}
}

// TestValidateEveryEventAgrees runs the simulator's built-in per-event
// validation over the same property space; it must never trip.
func TestValidateEveryEventAgrees(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		w, err := workload.Generate(workload.KindClustered, 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, Options{
			Adversary:          sched.NewRandomAsync(seed + 5),
			MaxEvents:          6000,
			ValidateEveryEvent: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Err != nil {
			t.Fatalf("seed %d: invariant violation: %v", seed, res.Err)
		}
	}
}
