// Package baseline provides comparison algorithms for the experiments: the
// naïve centroid (gravity) gatherer, a transparent-fat-robot gatherer that
// pretends occlusion does not exist, and a specialized small-n gatherer in
// the spirit of Czyzowicz et al. (which the paper generalizes). None of these
// is expected to solve gathering for arbitrary n non-transparent fat robots;
// the benchmarks quantify exactly how and when they fall short.
package baseline
