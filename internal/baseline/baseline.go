package baseline

import (
	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/core"
	"github.com/fatgather/fatgather/internal/geom"
)

// Gravity is the naïve baseline: every robot walks straight toward the
// centroid of the robots it can see and terminates once it touches another
// robot while seeing no isolated robots. With opaque fat robots this
// frequently produces disconnected clumps and robots that shadow each other.
type Gravity struct{}

// Name implements sim.Algorithm.
func (Gravity) Name() string { return "baseline-gravity" }

// Decide implements sim.Algorithm.
func (Gravity) Decide(v core.View) core.Decision {
	all := v.All()
	trace := []core.AlgState{core.StateStart}
	if len(all) == 1 {
		return core.Decision{Target: v.Self, Terminate: true, Trace: append(trace, core.StateConnected)}
	}
	touching := false
	for _, c := range v.Others {
		if geom.DiscsTangent(v.Self, c, geom.UnitRadius, config.ContactEps) {
			touching = true
			break
		}
	}
	if touching && connectedView(all) {
		return core.Decision{Target: v.Self, Terminate: true, Trace: append(trace, core.StateConnected)}
	}
	center := geom.Centroid(all)
	if center.Dist(v.Self) <= config.ContactEps {
		return core.Decision{Target: v.Self, Trace: append(trace, core.StateNotConnected)}
	}
	return core.Decision{Target: center, Trace: append(trace, core.StateNotConnected)}
}

// Transparent is the transparent-fat-robot baseline (Chaudhuri &
// Mukhopadhyaya): it behaves like Gravity but is meant to be run with a
// see-through visibility model (vision with zero-radius blockers), i.e. the
// simulator supplies it with complete views. Under the paper's opaque model
// its assumptions are violated, which is precisely the comparison of
// interest.
type Transparent struct{}

// Name implements sim.Algorithm.
func (Transparent) Name() string { return "baseline-transparent" }

// Decide implements sim.Algorithm.
func (Transparent) Decide(v core.View) core.Decision {
	// Same movement rule as Gravity; the difference is the visibility model
	// it is paired with in the experiments.
	d := Gravity{}.Decide(v)
	return d
}

// SmallN is a specialized gatherer for n <= 4 robots in the spirit of
// Czyzowicz, Gąsieniec and Pelc: robots move toward the closest visible robot
// until they touch, then stay; with at most four robots this almost always
// forms a connected cluster. For n >= 5 it deadlocks into separate pairs,
// which is exactly the limitation that motivated the paper.
type SmallN struct{}

// Name implements sim.Algorithm.
func (SmallN) Name() string { return "baseline-smalln" }

// Decide implements sim.Algorithm.
func (SmallN) Decide(v core.View) core.Decision {
	trace := []core.AlgState{core.StateStart}
	if len(v.Others) == 0 {
		return core.Decision{Target: v.Self, Terminate: true, Trace: append(trace, core.StateConnected)}
	}
	touchingAny := false
	for _, c := range v.Others {
		if geom.DiscsTangent(v.Self, c, geom.UnitRadius, config.ContactEps) {
			touchingAny = true
			break
		}
	}
	if touchingAny {
		if connectedView(v.All()) && v.SeesAll() {
			return core.Decision{Target: v.Self, Terminate: true, Trace: append(trace, core.StateConnected)}
		}
		return core.Decision{Target: v.Self, Trace: append(trace, core.StateNotConnected)}
	}
	closest := v.Others[0]
	for _, c := range v.Others[1:] {
		if c.Dist(v.Self) < closest.Dist(v.Self) {
			closest = c
		}
	}
	return core.Decision{Target: closest, Trace: append(trace, core.StateNotConnected)}
}

// connectedView reports whether the discs at the given centers form a single
// tangency-connected component.
func connectedView(centers []geom.Vec) bool {
	return config.Geometric(centers).Connected()
}
