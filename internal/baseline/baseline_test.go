package baseline

import (
	"testing"

	"github.com/fatgather/fatgather/internal/core"
	"github.com/fatgather/fatgather/internal/geom"
)

func view(self geom.Vec, others []geom.Vec, n int) core.View {
	return core.NewView(self, others, n)
}

func TestGravityMovesTowardCentroid(t *testing.T) {
	d := Gravity{}.Decide(view(geom.V(0, 0), []geom.Vec{geom.V(10, 0), geom.V(0, 10)}, 3))
	if d.Terminate {
		t.Fatal("spread robots should not terminate")
	}
	want := geom.Centroid([]geom.Vec{geom.V(0, 0), geom.V(10, 0), geom.V(0, 10)})
	if !d.Target.EqWithin(want, 1e-9) {
		t.Fatalf("target %v want %v", d.Target, want)
	}
}

func TestGravityTerminatesWhenTouchingAndConnected(t *testing.T) {
	d := Gravity{}.Decide(view(geom.V(0, 0), []geom.Vec{geom.V(2, 0)}, 2))
	if !d.Terminate {
		t.Fatal("touching pair should terminate")
	}
	// Touching one robot but the view is disconnected: keep going.
	d = Gravity{}.Decide(view(geom.V(0, 0), []geom.Vec{geom.V(2, 0), geom.V(30, 0)}, 3))
	if d.Terminate {
		t.Fatal("disconnected view should not terminate")
	}
}

func TestGravitySingleRobot(t *testing.T) {
	if !(Gravity{}).Decide(view(geom.V(1, 1), nil, 1)).Terminate {
		t.Fatal("single robot terminates")
	}
}

func TestGravityAtCentroidStays(t *testing.T) {
	d := Gravity{}.Decide(view(geom.V(5, 5), []geom.Vec{geom.V(0, 0), geom.V(10, 10)}, 3))
	if !d.Target.EqWithin(geom.V(5, 5), 1e-9) {
		t.Fatalf("robot already at the centroid should stay, got %v", d.Target)
	}
}

func TestTransparentMirrorsGravity(t *testing.T) {
	v1 := view(geom.V(0, 0), []geom.Vec{geom.V(10, 0), geom.V(0, 10)}, 3)
	if (Transparent{}).Name() == (Gravity{}).Name() {
		t.Fatal("names must differ")
	}
	g := Gravity{}.Decide(v1)
	tr := Transparent{}.Decide(v1)
	if !g.Target.EqWithin(tr.Target, 1e-12) || g.Terminate != tr.Terminate {
		t.Fatal("transparent baseline should use the same movement rule")
	}
}

func TestSmallNMovesTowardClosest(t *testing.T) {
	d := SmallN{}.Decide(view(geom.V(0, 0), []geom.Vec{geom.V(10, 0), geom.V(4, 1)}, 3))
	if d.Terminate {
		t.Fatal("should not terminate while isolated")
	}
	if !d.Target.EqWithin(geom.V(4, 1), 1e-9) {
		t.Fatalf("should head to the closest robot, got %v", d.Target)
	}
}

func TestSmallNStopsWhenTouching(t *testing.T) {
	// Touching one robot but not seeing everyone: wait in place.
	d := SmallN{}.Decide(view(geom.V(0, 0), []geom.Vec{geom.V(2, 0)}, 3))
	if d.Terminate {
		t.Fatal("partial view should not terminate")
	}
	if !d.Target.EqWithin(geom.V(0, 0), 1e-9) {
		t.Fatal("touching robot should stay put")
	}
	// Touching and seeing a fully connected configuration: terminate.
	d = SmallN{}.Decide(view(geom.V(0, 0), []geom.Vec{geom.V(2, 0), geom.V(4, 0)}, 3))
	if !d.Terminate {
		t.Fatal("connected full view should terminate")
	}
	// Alone: terminate trivially.
	if !(SmallN{}).Decide(view(geom.V(0, 0), nil, 1)).Terminate {
		t.Fatal("single robot terminates")
	}
}

func TestBaselineNames(t *testing.T) {
	names := map[string]bool{
		Gravity{}.Name():     true,
		Transparent{}.Name(): true,
		SmallN{}.Name():      true,
	}
	if len(names) != 3 {
		t.Fatal("baseline names must be distinct")
	}
}
