// Package vision implements the visibility model of the paper: robots are
// opaque (non-transparent) closed unit discs, and robot ri sees robot rj if
// there is a straight segment from a point of ri's disc to a point of rj's
// disc that contains no point of any other robot's disc.
//
// Computing that predicate exactly (visibility between two discs amid disc
// obstacles) is expensive; this package provides a conservative sight-line
// test: a fixed family of candidate segments between the two discs is tested
// against all other closed discs. If any candidate is unobstructed the robots
// are mutually visible. Every candidate is a legitimate witness under the
// paper's definition, so a "visible" answer is always sound; the
// approximation may only under-report visibility in contrived near-tangent
// configurations, and the number of sampled candidates is configurable to
// tighten it (see Options).
package vision
