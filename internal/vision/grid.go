package vision

import (
	"math"

	"github.com/fatgather/fatgather/internal/geom"
)

// GridThreshold is the configuration size at or above which the batch
// visibility queries (View, FullyVisible, VisibilityCount, ...) build a
// uniform-grid spatial index instead of scanning every robot as a potential
// blocker for every candidate sight line. Below it the flat scan is cheaper
// than building the index.
//
// Re-measured after the scratch-buffer refactor (BenchmarkFullyVisibleGrid /
// BenchmarkFullyVisibleFlat plus a probe at n=4..12): the grid wins 1.3x at
// n=16, 1.26x at 32, 1.44x at 64 and 1.9x at 128, while the flat scan stays
// ~5% ahead at n<=12 — the crossover sits almost exactly at 16, so the
// threshold stands.
const GridThreshold = 16

// maxGridDim caps the grid resolution per axis; sparse configurations get
// proportionally larger cells instead of a huge, mostly-empty grid.
const maxGridDim = 128

// Index is a uniform-grid spatial index over a fixed set of disc centers,
// answering the same visibility queries as Model but fetching blocker
// candidates only from the grid cells a candidate sight line crosses,
// instead of scanning all n discs per segment.
//
// The index is purely an accelerator: every query returns exactly the same
// answer as the flat Model scan, because the grid walk yields a conservative
// superset of the discs within blocking distance of a segment and the final
// distance predicate is unchanged.
//
// Storage is a dense cells array in head/next (linked bucket) layout so that
// queries touch no maps and allocate nothing. Queries reuse a per-Index
// candidate-segment buffer, so an Index must not be queried from multiple
// goroutines concurrently (build one Index per goroutine; construction is
// cheap by design).
type Index struct {
	m       *Model
	centers []geom.Vec
	r       float64
	cell    float64
	minX    float64
	minY    float64
	cols    int
	rows    int
	head    []int32 // first disc index per cell, -1 when empty
	next    []int32 // next disc in the same cell, -1 at the end
	segs    []geom.Segment
}

// NewIndex builds the spatial index for a configuration of disc centers. The
// grid cell is at least one disc diameter, growing for sparse configurations
// so the grid stays O(n) cells (at most ~4*sqrt(n) per axis, capped at
// maxGridDim) — the index is rebuilt per configuration, so its construction
// cost must stay proportional to the discs, not the covered area.
func (m *Model) NewIndex(centers []geom.Vec) *Index {
	r := m.opts.radius()
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, c := range centers {
		minX = math.Min(minX, c.X)
		minY = math.Min(minY, c.Y)
		maxX = math.Max(maxX, c.X)
		maxY = math.Max(maxY, c.Y)
	}
	if len(centers) == 0 {
		minX, minY, maxX, maxY = 0, 0, 0, 0
	}
	span := math.Max(maxX-minX, maxY-minY)
	dim := 4*int(math.Sqrt(float64(len(centers)))) + 1
	if dim > maxGridDim {
		dim = maxGridDim
	}
	cell := math.Max(2*r, span/float64(dim))
	cols := int((maxX-minX)/cell) + 1
	rows := int((maxY-minY)/cell) + 1
	// Degenerate-geometry guard: coincident, single-robot or empty inputs
	// drive span to 0, and non-finite coordinates poison it entirely — either
	// can leave cell at 0/NaN and turn the cell-coordinate conversions in
	// colOf/rowOf into garbage (int(NaN) is implementation-defined). Fall
	// back to a single all-covering cell: every disc lands in bucket (0,0),
	// queries degrade to the flat scan, and answers stay exactly correct.
	// Finite inputs can't otherwise explode the grid (cell >= span/dim bounds
	// cols and rows by dim+1), so the guard also caps the allocation.
	if !(cell > 0) || math.IsInf(cell, 0) ||
		cols < 1 || rows < 1 || cols > dim+1 || rows > dim+1 ||
		!isFinite(minX) || !isFinite(minY) {
		minX, minY = 0, 0
		cell = 1
		cols, rows = 1, 1
	}
	ix := &Index{
		m:       m,
		centers: centers,
		r:       r,
		cell:    cell,
		minX:    minX,
		minY:    minY,
		cols:    cols,
		rows:    rows,
	}
	ix.head = make([]int32, ix.cols*ix.rows)
	for i := range ix.head {
		ix.head[i] = -1
	}
	ix.next = make([]int32, len(centers))
	for i, c := range centers {
		cx := ix.colOf(c.X)
		cy := ix.rowOf(c.Y)
		idx := cy*ix.cols + cx
		ix.next[i] = ix.head[idx]
		ix.head[idx] = int32(i)
	}
	return ix
}

// isFinite reports whether x is neither NaN nor infinite.
func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// colOf and rowOf clamp to the grid, which is safe for queries because every
// disc lies inside the grid's extent. On the degenerate 1x1 fallback grid the
// clamp maps every input — even non-finite ones — to cell 0.
func (ix *Index) colOf(x float64) int {
	c := int((x - ix.minX) / ix.cell)
	if c < 0 {
		return 0
	}
	if c >= ix.cols {
		return ix.cols - 1
	}
	return c
}

func (ix *Index) rowOf(y float64) int {
	r := int((y - ix.minY) / ix.cell)
	if r < 0 {
		return 0
	}
	if r >= ix.rows {
		return ix.rows - 1
	}
	return r
}

// Visible reports whether disc i can see disc j, identically to
// Model.Visible on the same centers.
func (ix *Index) Visible(i, j int) bool {
	if i == j {
		return true
	}
	if len(ix.centers) <= 2 {
		return true
	}
	ci, cj := ix.centers[i], ix.centers[j]
	ix.segs = ix.m.appendCandidateSegments(ix.segs[:0], ci, cj, ix.r)
	for _, seg := range ix.segs {
		if !ix.segmentBlocked(seg, i, j) {
			return true
		}
	}
	return false
}

// segmentBlocked reports whether any disc other than i and j comes within
// blocking distance of the candidate sight line. Blocker candidates come
// from the grid cells the segment's capsule (radius blockR) crosses, found
// by a column scanline: for each grid column overlapped by the capsule, only
// the cells spanned by the segment's y-range within that column (plus the
// blocking radius) are visited, so the walk costs O(length/cell) cells for
// any slope instead of O(n) discs. Falls back to the flat scan when the
// capsule covers more cells than there are discs.
func (ix *Index) segmentBlocked(seg geom.Segment, i, j int) bool {
	blockR := ix.r + BlockTol
	h := ix.cell
	ax, ay := seg.A.X, seg.A.Y
	bx, by := seg.B.X, seg.B.Y
	if bx < ax {
		ax, ay, bx, by = bx, by, ax, ay
	}
	x0 := ix.colOf(ax - blockR)
	x1 := ix.colOf(bx + blockR)
	yLo, yHi := math.Min(ay, by), math.Max(ay, by)

	// The scanline visits roughly 3 cells per column plus the segment's
	// vertical extent; when that exceeds n, the flat scan is cheaper.
	if 3*(x1-x0+1)+int((yHi-yLo)/h) > len(ix.centers) {
		for k, c := range ix.centers {
			if k == i || k == j {
				continue
			}
			if geom.DistancePointSegment(c, seg.A, seg.B) <= blockR {
				return true
			}
		}
		return false
	}

	dx := bx - ax
	for cx := x0; cx <= x1; cx++ {
		colLo := ix.minX + float64(cx)*h
		colHi := colLo + h
		// y-range of the segment over the x-interval of this column widened
		// by the blocking radius (clamped to the segment's x-extent).
		ya, yb := yLo, yHi
		if dx > geom.Eps {
			xa := math.Max(colLo-blockR, ax)
			xb := math.Min(colHi+blockR, bx)
			ya = ay + (xa-ax)/dx*(by-ay)
			yb = ay + (xb-ax)/dx*(by-ay)
			if ya > yb {
				ya, yb = yb, ya
			}
		}
		cy0 := ix.rowOf(ya - blockR)
		cy1 := ix.rowOf(yb + blockR)
		for cy := cy0; cy <= cy1; cy++ {
			for k := ix.head[cy*ix.cols+cx]; k >= 0; k = ix.next[k] {
				if int(k) == i || int(k) == j {
					continue
				}
				if geom.DistancePointSegment(ix.centers[k], seg.A, seg.B) <= blockR {
					return true
				}
			}
		}
	}
	return false
}

// View returns the indices of all discs visible from disc i (including i),
// in increasing index order.
func (ix *Index) View(i int) []int {
	out := make([]int, 0, len(ix.centers))
	for j := range ix.centers {
		if ix.Visible(i, j) {
			out = append(out, j)
		}
	}
	return out
}

// FullVisibility reports whether disc i sees every disc.
func (ix *Index) FullVisibility(i int) bool {
	for j := range ix.centers {
		if !ix.Visible(i, j) {
			return false
		}
	}
	return true
}

// FullyVisible reports whether every disc sees every other disc.
func (ix *Index) FullyVisible() bool {
	for i := range ix.centers {
		if !ix.FullVisibility(i) {
			return false
		}
	}
	return true
}
