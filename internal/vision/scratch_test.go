package vision

import (
	"math/rand"
	"testing"

	"github.com/fatgather/fatgather/internal/geom"
)

// randomScratchConfig places n unit discs with valid separation on a seeded
// grid-jittered layout (no workload import: package-internal test).
func randomScratchConfig(rng *rand.Rand, n int) []geom.Vec {
	out := make([]geom.Vec, 0, n)
	for len(out) < n {
		p := geom.V(rng.Float64()*40-20, rng.Float64()*40-20)
		ok := true
		for _, q := range out {
			if p.Dist(q) < 2*geom.UnitRadius+0.1 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	return out
}

// TestAppendCandidateSegmentsMatchesFresh pins the refactor that introduced
// the append-style candidate generator: for any pair it must produce exactly
// the segments of the allocating candidateSegments, bit for bit and in order,
// with preexisting dst contents preserved.
func TestAppendCandidateSegmentsMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := Default
	custom := New(Options{Radius: 1.5, BoundarySamples: 5})
	for trial := 0; trial < 200; trial++ {
		a := geom.V(rng.Float64()*30-15, rng.Float64()*30-15)
		b := geom.V(rng.Float64()*30-15, rng.Float64()*30-15)
		for _, model := range []*Model{m, custom} {
			r := model.opts.radius()
			want := model.candidateSegments(a, b, r)
			prefix := geom.Segment{A: geom.V(-1, -2), B: geom.V(-3, -4)}
			got := model.appendCandidateSegments([]geom.Segment{prefix}, a, b, r)
			if got[0] != prefix {
				t.Fatalf("trial %d: dst prefix clobbered", trial)
			}
			got = got[1:]
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d segments, want %d", trial, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("trial %d seg %d: %+v != %+v (must be bit-identical)", trial, k, got[k], want[k])
				}
			}
		}
	}
}

// TestVisibleScratchMatchesVisible is the differential oracle for the
// scratch-buffer pair query: over random valid configurations (including
// sizes that route batch queries through the grid) every ordered pair must
// agree with Model.Visible, and the scratch must be reusable across pairs and
// configurations without verdict drift.
func TestVisibleScratchMatchesVisible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sc Scratch
	for _, n := range []int{2, 3, 5, 9, 17, 24} {
		centers := randomScratchConfig(rng, n)
		for i := range centers {
			for j := range centers {
				want := Default.Visible(centers, i, j)
				if got := Default.VisibleScratch(&sc, centers, i, j); got != want {
					t.Fatalf("n=%d: VisibleScratch(%d,%d)=%v, Visible=%v", n, i, j, got, want)
				}
			}
		}
	}
}

// TestVisibleScratchAllocFree pins the warmed scratch pair query at zero
// allocations — the property the incremental cache's recompute path depends
// on.
func TestVisibleScratchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	centers := randomScratchConfig(rng, 12)
	var sc Scratch
	Default.VisibleScratch(&sc, centers, 0, 7) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		Default.VisibleScratch(&sc, centers, 0, 7)
		Default.VisibleScratch(&sc, centers, 3, 9)
	})
	if allocs != 0 {
		t.Fatalf("warmed VisibleScratch allocates %v allocs/op, want 0", allocs)
	}
}

// TestRadiusAccessor pins the Radius accessor to the effective option value.
func TestRadiusAccessor(t *testing.T) {
	if got := Default.Radius(); got != geom.UnitRadius {
		t.Fatalf("Default.Radius() = %v, want %v", got, geom.UnitRadius)
	}
	if got := New(Options{Radius: 2.5}).Radius(); got != 2.5 {
		t.Fatalf("Radius() = %v, want 2.5", got)
	}
}
