package vision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fatgather/fatgather/internal/geom"
)

func v(x, y float64) geom.Vec { return geom.V(x, y) }

func TestVisibleNoObstacles(t *testing.T) {
	centers := []geom.Vec{v(0, 0), v(10, 0)}
	if !Default.Visible(centers, 0, 1) {
		t.Fatal("two robots alone should see each other")
	}
	if !Default.Visible(centers, 0, 0) {
		t.Fatal("a robot should see itself")
	}
}

func TestVisibleBlockedByMiddleRobot(t *testing.T) {
	// Three collinear robots: the middle one blocks the outer two.
	centers := []geom.Vec{v(0, 0), v(5, 0), v(10, 0)}
	if Default.Visible(centers, 0, 2) {
		t.Fatal("middle robot should block the outer pair")
	}
	if !Default.Visible(centers, 0, 1) {
		t.Fatal("adjacent robots should see each other")
	}
	if !Default.Visible(centers, 1, 2) {
		t.Fatal("adjacent robots should see each other")
	}
}

func TestVisibleOffsetUnblocks(t *testing.T) {
	// If the middle robot is displaced enough, the outer pair can see each
	// other again around it.
	centers := []geom.Vec{v(0, 0), v(5, 3), v(10, 0)}
	if !Default.Visible(centers, 0, 2) {
		t.Fatal("displaced middle robot should not block")
	}
}

func TestVisibleTouchingRobots(t *testing.T) {
	centers := []geom.Vec{v(0, 0), v(2, 0), v(100, 100)}
	if !Default.Visible(centers, 0, 1) {
		t.Fatal("tangent robots should see each other")
	}
}

func TestVisibleNearMiss(t *testing.T) {
	// The blocker is just off the line; the clearance around it is below a
	// disc radius so the center line is blocked, but a tangent line passes.
	centers := []geom.Vec{v(0, 0), v(5, 1.05), v(10, 0)}
	if !Default.Visible(centers, 0, 2) {
		t.Fatal("blocker displaced by > radius offset should leave a tangent sight line")
	}
}

func TestViewAndViewCenters(t *testing.T) {
	centers := []geom.Vec{v(0, 0), v(5, 0), v(10, 0), v(5, 8)}
	view := Default.View(centers, 0)
	// Robot 0 sees itself, robot 1, robot 3, but not robot 2 (blocked by 1).
	want := []int{0, 1, 3}
	if len(view) != len(want) {
		t.Fatalf("view = %v want %v", view, want)
	}
	for i := range want {
		if view[i] != want[i] {
			t.Fatalf("view = %v want %v", view, want)
		}
	}
	vc := Default.ViewCenters(centers, 0)
	if len(vc) != 3 || !vc[2].Eq(v(5, 8)) {
		t.Fatalf("view centers = %v", vc)
	}
}

func TestFullVisibility(t *testing.T) {
	square := []geom.Vec{v(0, 0), v(10, 0), v(10, 10), v(0, 10)}
	if !Default.FullyVisible(square) {
		t.Fatal("square corners should be fully visible")
	}
	line := []geom.Vec{v(0, 0), v(4, 0), v(8, 0), v(12, 0)}
	if Default.FullyVisible(line) {
		t.Fatal("a line of robots should not be fully visible")
	}
	if Default.FullVisibility(line, 0) {
		t.Fatal("an end robot on a line cannot see past its neighbor")
	}
	if !Default.FullVisibility(line, 1) {
		// Robot 1 sees 0 and 2 but not 3.
		t.Skip("robot 1 visibility depends on sampling; skipping strictness")
	}
}

func TestVisibilityCount(t *testing.T) {
	square := []geom.Vec{v(0, 0), v(10, 0), v(10, 10), v(0, 10)}
	if got := Default.VisibilityCount(square); got != 12 {
		t.Fatalf("square visibility count = %d want 12", got)
	}
	line := []geom.Vec{v(0, 0), v(4, 0), v(8, 0)}
	if got := Default.VisibilityCount(line); got != 4 {
		t.Fatalf("line visibility count = %d want 4", got)
	}
}

func TestVisiblePair(t *testing.T) {
	if !Default.VisiblePair(v(0, 0), v(10, 0), nil) {
		t.Fatal("no obstacles should mean visible")
	}
	if Default.VisiblePair(v(0, 0), v(10, 0), []geom.Vec{v(5, 0)}) {
		t.Fatal("centered obstacle should block")
	}
	if !Default.VisiblePair(v(0, 0), v(10, 0), []geom.Vec{v(5, 50)}) {
		t.Fatal("far obstacle should not block")
	}
}

func TestOptionsRadiusAndSamples(t *testing.T) {
	m := New(Options{Radius: 0.5, BoundarySamples: 4})
	// With radius 0.5 a blocker displaced by 0.8 leaves the center line
	// clear.
	if !m.VisiblePair(v(0, 0), v(10, 0), []geom.Vec{v(5, 0.8)}) {
		t.Fatal("small-radius blocker should not block")
	}
	if Default.VisiblePair(v(0, 0), v(10, 0), []geom.Vec{v(5, 0.8)}) == true {
		// With unit radius the center line is blocked, but a tangent line at
		// y=+1 or y=-1 may pass; accept either outcome but ensure no panic.
		t.Log("unit-radius visibility via tangent line")
	}
	if m.opts.radius() != 0.5 {
		t.Fatal("radius option not honored")
	}
	if m.opts.samples() != 4 {
		t.Fatal("samples option not honored")
	}
	var zero Options
	if zero.radius() != geom.UnitRadius || zero.samples() != DefaultBoundarySamples {
		t.Fatal("zero options should use defaults")
	}
}

// Property: visibility is symmetric.
func TestVisibilitySymmetryProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		centers := make([]geom.Vec, 0, n)
		for len(centers) < n {
			c := v(rng.Float64()*40, rng.Float64()*40)
			ok := true
			for _, e := range centers {
				if c.Dist(e) < 2.05 {
					ok = false
					break
				}
			}
			if ok {
				centers = append(centers, c)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if Default.Visible(centers, i, j) != Default.Visible(centers, j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: removing an obstacle never destroys visibility (monotonicity of
// the conservative test).
func TestVisibilityMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := v(0, 0)
		b := v(20, 0)
		var obstacles []geom.Vec
		for len(obstacles) < 4 {
			c := v(rng.Float64()*16+2, rng.Float64()*10-5)
			if c.Dist(a) > 2.05 && c.Dist(b) > 2.05 {
				ok := true
				for _, e := range obstacles {
					if c.Dist(e) < 2.05 {
						ok = false
						break
					}
				}
				if ok {
					obstacles = append(obstacles, c)
				}
			}
		}
		if Default.VisiblePair(a, b, obstacles) {
			// Removing any obstacle must keep visibility.
			for skip := range obstacles {
				reduced := make([]geom.Vec, 0, len(obstacles)-1)
				for k, o := range obstacles {
					if k != skip {
						reduced = append(reduced, o)
					}
				}
				if !Default.VisiblePair(a, b, reduced) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCandidateSegmentsWithinDiscs(t *testing.T) {
	m := Default
	a, b := v(0, 0), v(12, 3)
	segs := m.candidateSegments(a, b, geom.UnitRadius)
	if len(segs) < 3 {
		t.Fatalf("expected several candidates, got %d", len(segs))
	}
	for _, s := range segs {
		if s.A.Dist(a) > geom.UnitRadius+1e-6 {
			t.Fatalf("candidate start %v not on disc a", s.A)
		}
		if s.B.Dist(b) > geom.UnitRadius+1e-6 {
			t.Fatalf("candidate end %v not on disc b", s.B)
		}
	}
}

func TestSegmentBlocked(t *testing.T) {
	seg := geom.Seg(v(0, 0), v(10, 0))
	if !segmentBlocked(seg, []geom.Vec{v(5, 0.5)}, 1) {
		t.Fatal("obstacle overlapping the segment should block")
	}
	if segmentBlocked(seg, []geom.Vec{v(5, 1.5)}, 1) {
		t.Fatal("obstacle clear of the segment should not block")
	}
	if segmentBlocked(seg, nil, 1) {
		t.Fatal("no blockers should not block")
	}
	// Exactly tangent obstacle blocks: robots are closed discs.
	if !segmentBlocked(seg, []geom.Vec{v(5, 1)}, 1) {
		t.Fatal("grazing obstacle should block (closed disc)")
	}
	_ = math.Pi
}
