package vision_test

import (
	"testing"

	"github.com/fatgather/fatgather/internal/vision"
	"github.com/fatgather/fatgather/internal/workload"
)

// The visibility-pair microbenchmark lives next to the package it measures
// (it used to hide under BenchmarkGeometryPrimitives in the repo root).
// Sub-benchmark names use the "n=128" form: scripts/bench-snapshot.sh strips
// a trailing "-<digits>" GOMAXPROCS suffix, which would also eat a bare
// "-128".

func BenchmarkVisibilityPair(b *testing.B) {
	pts := workload.Ring(128, 300)
	b.Run("fresh/n=128", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = vision.Default.Visible(pts, 0, 64)
		}
	})
	b.Run("scratch/n=128", func(b *testing.B) {
		b.ReportAllocs()
		var sc vision.Scratch
		vision.Default.VisibleScratch(&sc, pts, 0, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = vision.Default.VisibleScratch(&sc, pts, 0, 64)
		}
	})
}
