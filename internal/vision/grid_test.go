package vision_test

import (
	"fmt"
	"math"
	"testing"

	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/vision"
	"github.com/fatgather/fatgather/internal/workload"
)

var (
	dflt = vision.Default
)

// gridConfigs are the configurations the equivalence tests sweep: dense
// rings, random spreads, clusters and the degenerate collinear line (long
// skinny sight lines, the grid's worst case).
func gridConfigs(t testing.TB) map[string][]geom.Vec {
	t.Helper()
	out := map[string][]geom.Vec{
		"ring-40":   workload.Ring(40, 0),
		"ring-wide": workload.Ring(24, 200),
		"pair":      {geom.V(0, 0), geom.V(2, 0)},
	}
	for _, kind := range []workload.Kind{workload.KindRandom, workload.KindClustered, workload.KindCollinear, workload.KindGrid, workload.KindNestedHulls} {
		cfg, err := workload.Generate(kind, 32, 7)
		if err != nil {
			t.Fatalf("generate %s: %v", kind, err)
		}
		out[string(kind)] = cfg
	}
	return out
}

// bruteVisible is the reference flat scan: Model.Visible never uses the grid.
func bruteVisible(m *vision.Model, centers []geom.Vec, i, j int) bool {
	return m.Visible(centers, i, j)
}

// TestIndexMatchesFlatScan checks that the grid-accelerated queries return
// exactly the same answers as the flat blocker scan for every ordered pair.
func TestIndexMatchesFlatScan(t *testing.T) {
	for name, centers := range gridConfigs(t) {
		ix := dflt.NewIndex(centers)
		for i := range centers {
			for j := range centers {
				got := ix.Visible(i, j)
				want := bruteVisible(dflt, centers, i, j)
				if got != want {
					t.Fatalf("%s: Visible(%d,%d) grid=%v flat=%v", name, i, j, got, want)
				}
			}
		}
	}
}

// TestIndexDegenerateGeometry is the regression suite for the degenerate
// configurations that used to threaten the grid build: coincident centers
// and single robots drive the bounding-box span to 0, and non-finite
// coordinates poison the cell size entirely. The index must never panic on
// them and, wherever the flat model gives a defined answer, must agree with
// it exactly.
func TestIndexDegenerateGeometry(t *testing.T) {
	coincident := make([]geom.Vec, 20)
	for i := range coincident {
		coincident[i] = geom.V(3.5, -1.25)
	}
	vertical := make([]geom.Vec, 24)
	for i := range vertical {
		vertical[i] = geom.V(0, 3*float64(i)) // zero x-span
	}
	cases := map[string][]geom.Vec{
		"coincident":      coincident,
		"single":          {geom.V(7, 7)},
		"two-coincident":  {geom.V(1, 1), geom.V(1, 1)},
		"collinear-horiz": workload.Collinear(24, 3),
		"collinear-vert":  vertical,
		"tiny-span":       {geom.V(0, 0), geom.V(1e-12, 1e-12), geom.V(0, 1e-12)},
	}
	for name, centers := range cases {
		ix := dflt.NewIndex(centers)
		for i := range centers {
			for j := range centers {
				got := ix.Visible(i, j)
				want := bruteVisible(dflt, centers, i, j)
				if got != want {
					t.Fatalf("%s: Visible(%d,%d) grid=%v flat=%v", name, i, j, got, want)
				}
			}
		}
		if got, want := ix.FullyVisible(), dflt.FullyVisible(centers); got != want {
			t.Fatalf("%s: FullyVisible grid=%v flat=%v", name, got, want)
		}
	}
}

// TestIndexSingleRobotView pins the n=1 fast path end to end.
func TestIndexSingleRobotView(t *testing.T) {
	ix := dflt.NewIndex([]geom.Vec{geom.V(2, 3)})
	if view := ix.View(0); len(view) != 1 || view[0] != 0 {
		t.Fatalf("single robot view = %v, want [0]", view)
	}
	if !ix.FullVisibility(0) || !ix.FullyVisible() {
		t.Fatal("a single robot must be fully visible")
	}
}

// TestIndexNonFiniteCenters pins the guard against NaN/Inf coordinates: the
// build must fall back to a sane grid instead of converting NaN to a cell
// coordinate (implementation-defined) or allocating a garbage-sized table,
// and queries must not panic.
func TestIndexNonFiniteCenters(t *testing.T) {
	nan := math.NaN()
	cases := map[string][]geom.Vec{
		"nan-x":    {geom.V(0, 0), geom.V(nan, 1), geom.V(8, 0)},
		"nan-both": {geom.V(nan, nan), geom.V(nan, nan)},
		"inf-x":    {geom.V(0, 0), geom.V(math.Inf(1), 0), geom.V(4, 4)},
		"neg-inf":  {geom.V(math.Inf(-1), 0), geom.V(0, 0), geom.V(4, 0)},
	}
	for name, centers := range cases {
		ix := dflt.NewIndex(centers)
		for i := range centers {
			for j := range centers {
				ix.Visible(i, j) // must not panic
			}
		}
		_ = ix.FullyVisible()
		_ = name
	}
}

// TestIndexEmpty pins the zero-robot build.
func TestIndexEmpty(t *testing.T) {
	ix := dflt.NewIndex(nil)
	if !ix.FullyVisible() {
		t.Fatal("an empty configuration is vacuously fully visible")
	}
}

// TestIndexViewMatchesModelView checks the batch helpers against pairwise
// reference answers.
func TestIndexViewMatchesModelView(t *testing.T) {
	for name, centers := range gridConfigs(t) {
		ix := dflt.NewIndex(centers)
		for i := range centers {
			var want []int
			for j := range centers {
				if bruteVisible(dflt, centers, i, j) {
					want = append(want, j)
				}
			}
			got := ix.View(i)
			if len(got) != len(want) {
				t.Fatalf("%s: View(%d) = %v want %v", name, i, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("%s: View(%d) = %v want %v", name, i, got, want)
				}
			}
			// Model.View routes through the index above GridThreshold; it must
			// agree with the reference too.
			mv := dflt.View(centers, i)
			if len(mv) != len(want) {
				t.Fatalf("%s: Model.View(%d) = %v want %v", name, i, mv, want)
			}
		}
	}
}

// TestFullyVisibleMatchesFlatScan compares the whole-configuration predicate
// on both sides of the grid threshold.
func TestFullyVisibleMatchesFlatScan(t *testing.T) {
	for name, centers := range gridConfigs(t) {
		want := true
	outer:
		for i := range centers {
			for j := range centers {
				if !bruteVisible(dflt, centers, i, j) {
					want = false
					break outer
				}
			}
		}
		if got := dflt.FullyVisible(centers); got != want {
			t.Fatalf("%s: FullyVisible = %v want %v", name, got, want)
		}
		if got := dflt.NewIndex(centers).FullyVisible(); got != want {
			t.Fatalf("%s: Index.FullyVisible = %v want %v", name, got, want)
		}
	}
}

// TestVisibilityCountMatches cross-checks the ordered-pair count.
func TestVisibilityCountMatches(t *testing.T) {
	centers := workload.Ring(30, 0)
	want := 0
	for i := range centers {
		for j := range centers {
			if i != j && bruteVisible(dflt, centers, i, j) {
				want++
			}
		}
	}
	if got := dflt.VisibilityCount(centers); got != want {
		t.Fatalf("VisibilityCount = %d want %d", got, want)
	}
}

func benchmarkCenters(n int) []geom.Vec { return workload.Ring(n, 0) }

func BenchmarkFullyVisibleGrid(b *testing.B) {
	for _, n := range []int{16, 32, 64, 128} {
		centers := benchmarkCenters(n)
		b.Run(benchName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = dflt.NewIndex(centers).FullyVisible()
			}
		})
	}
}

func BenchmarkFullyVisibleFlat(b *testing.B) {
	for _, n := range []int{16, 32, 64, 128} {
		centers := benchmarkCenters(n)
		b.Run(benchName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				flat := true
			outer:
				for x := range centers {
					for y := range centers {
						if !dflt.Visible(centers, x, y) {
							flat = false
							break outer
						}
					}
				}
				_ = flat
			}
		})
	}
}

func benchName(n int) string { return fmt.Sprintf("n=%d", n) }
