package vision

import (
	"fmt"
	"math"

	"github.com/fatgather/fatgather/internal/geom"
)

// DefaultBoundarySamples is the default number of boundary points sampled on
// each disc (per side) when generating candidate sight lines, in addition to
// the center-center and common-tangent candidates.
const DefaultBoundarySamples = 8

// BlockTol is the numerical cushion used when deciding whether a candidate
// sight line is blocked by a disc. The paper's robots are closed discs, so a
// segment that merely grazes another robot's boundary already "contains a
// point of another robot" and is blocked; a candidate is therefore blocked
// when its distance to a blocker's center is at most radius+BlockTol.
const BlockTol = 1e-9

// Options configures the visibility model.
type Options struct {
	// Radius is the robot disc radius. Zero means geom.UnitRadius.
	Radius float64
	// BoundarySamples is the number of extra boundary points sampled per disc
	// for candidate sight lines. Zero means DefaultBoundarySamples.
	BoundarySamples int
}

func (o Options) radius() float64 {
	if o.Radius <= 0 {
		return geom.UnitRadius
	}
	return o.Radius
}

func (o Options) samples() int {
	if o.BoundarySamples <= 0 {
		return DefaultBoundarySamples
	}
	return o.BoundarySamples
}

// Model answers visibility queries for a fixed set of disc centers.
// The zero value uses unit-radius discs and the default sampling density.
type Model struct {
	opts Options
}

// New returns a visibility model with the given options.
func New(opts Options) *Model { return &Model{opts: opts} }

// Fingerprint returns a stable identity string for the model's effective
// parameters, used when a model is part of a persistent cell key: two models
// with equal fingerprints answer every query identically.
func (m *Model) Fingerprint() string {
	return fmt.Sprintf("r=%g,s=%d", m.opts.radius(), m.opts.samples())
}

// Default is a visibility model with default options (unit discs).
var Default = New(Options{})

// Radius returns the effective disc radius of the model (geom.UnitRadius for
// the zero options). Exposed so callers that cache visibility state (see
// internal/geom/incr) can reason about blocking distances with the same
// radius the model uses.
func (m *Model) Radius() float64 { return m.opts.radius() }

// Scratch holds reusable buffers for repeated visibility queries on a hot
// path. The zero value is ready to use; once the buffer has grown to the
// candidate-segment count (3 + 2*BoundarySamples), VisibleScratch allocates
// nothing. A Scratch is not safe for concurrent use.
type Scratch struct {
	segs []geom.Segment
}

// Visible reports whether the robot centered at centers[i] can see the robot
// centered at centers[j], given that every entry of centers is an opaque
// closed disc. A robot always sees itself. One-shot queries allocate the
// candidate buffer exactly once; hot paths should hold a Scratch and call
// VisibleScratch instead.
func (m *Model) Visible(centers []geom.Vec, i, j int) bool {
	if i == j {
		return true
	}
	if len(centers) <= 2 {
		// No third disc exists to block the pair.
		return true
	}
	r := m.opts.radius()
	for _, seg := range m.candidateSegments(centers[i], centers[j], r) {
		if !segmentBlockedExcept(seg, centers, i, j, r) {
			return true
		}
	}
	return false
}

// VisibleScratch answers exactly Visible(centers, i, j) — same candidates,
// same blockers, same scan order — but generates the candidate sight lines
// into the scratch's reused buffer and skips the blockers i and j in place
// instead of materializing a blocker slice.
func (m *Model) VisibleScratch(sc *Scratch, centers []geom.Vec, i, j int) bool {
	if i == j {
		return true
	}
	if len(centers) <= 2 {
		// No third disc exists to block the pair.
		return true
	}
	r := m.opts.radius()
	sc.segs = m.appendCandidateSegments(sc.segs[:0], centers[i], centers[j], r)
	for _, seg := range sc.segs {
		if !segmentBlockedExcept(seg, centers, i, j, r) {
			return true
		}
	}
	return false
}

// VisiblePair reports whether two discs at a and b can see each other given
// the obstacle discs (which must not include a or b).
func (m *Model) VisiblePair(a, b geom.Vec, obstacles []geom.Vec) bool {
	r := m.opts.radius()
	if len(obstacles) == 0 {
		return true
	}
	for _, seg := range m.candidateSegments(a, b, r) {
		if !segmentBlocked(seg, obstacles, r) {
			return true
		}
	}
	return false
}

// VisiblePairScratch answers exactly VisiblePair(a, b, obstacles) — same
// candidates, same blockers, same scan order — but generates the candidate
// sight lines into the scratch's reused buffer.
func (m *Model) VisiblePairScratch(sc *Scratch, a, b geom.Vec, obstacles []geom.Vec) bool {
	if len(obstacles) == 0 {
		return true
	}
	r := m.opts.radius()
	sc.segs = m.appendCandidateSegments(sc.segs[:0], a, b, r)
	for _, seg := range sc.segs {
		if !segmentBlocked(seg, obstacles, r) {
			return true
		}
	}
	return false
}

// View returns the indices of all robots visible from robot i (always
// including i itself), in increasing index order. Large configurations are
// answered through a uniform-grid index (see Index); the result is identical
// to the flat scan.
func (m *Model) View(centers []geom.Vec, i int) []int {
	if len(centers) >= GridThreshold {
		return m.NewIndex(centers).View(i)
	}
	out := make([]int, 0, len(centers))
	for j := range centers {
		if m.Visible(centers, i, j) {
			out = append(out, j)
		}
	}
	return out
}

// ViewCenters returns the centers of all robots visible from robot i
// (including robot i's own center).
func (m *Model) ViewCenters(centers []geom.Vec, i int) []geom.Vec {
	idx := m.View(centers, i)
	out := make([]geom.Vec, 0, len(idx))
	for _, j := range idx {
		out = append(out, centers[j])
	}
	return out
}

// FullVisibility reports whether robot i sees every robot in the
// configuration.
func (m *Model) FullVisibility(centers []geom.Vec, i int) bool {
	if len(centers) >= GridThreshold {
		return m.NewIndex(centers).FullVisibility(i)
	}
	for j := range centers {
		if !m.Visible(centers, i, j) {
			return false
		}
	}
	return true
}

// FullyVisible reports whether every robot sees every other robot (the
// paper's "fully visible configuration"). Large configurations are answered
// through a single uniform-grid index shared by all n^2 pair queries.
func (m *Model) FullyVisible(centers []geom.Vec) bool {
	if len(centers) >= GridThreshold {
		return m.NewIndex(centers).FullyVisible()
	}
	for i := range centers {
		if !m.FullVisibility(centers, i) {
			return false
		}
	}
	return true
}

// VisibilityCount returns the number of ordered pairs (i, j), i != j, such
// that robot i sees robot j. The maximum is n*(n-1).
func (m *Model) VisibilityCount(centers []geom.Vec) int {
	visible := func(i, j int) bool { return m.Visible(centers, i, j) }
	if len(centers) >= GridThreshold {
		ix := m.NewIndex(centers)
		visible = ix.Visible
	}
	count := 0
	for i := range centers {
		for j := range centers {
			if i != j && visible(i, j) {
				count++
			}
		}
	}
	return count
}

// candidateSegments generates the candidate sight lines between the discs at
// a and b: the center-center segment (clipped to the disc boundaries), the
// two outer common tangents, and sampled boundary-to-boundary segments on the
// halves of each disc facing the other.
func (m *Model) candidateSegments(a, b geom.Vec, r float64) []geom.Segment {
	return m.appendCandidateSegments(make([]geom.Segment, 0, 3+m.opts.samples()*2), a, b, r)
}

// appendCandidateSegments appends the candidate sight lines between the discs
// at a and b to dst and returns the extended slice. The arithmetic is kept
// expression-for-expression identical to the historical candidateSegments so
// every candidate endpoint — and therefore every visibility verdict and every
// pinned determinism hash downstream — stays bit-identical.
//
// Every candidate segment lies within distance r of the center segment
// [a, b]: each endpoint is on one of the two disc boundaries (distance
// exactly r from a center, which lies on [a, b]), and the distance to a
// segment is convex along a line, so the maximum over a candidate is attained
// at an endpoint. Callers that cache visibility rely on this corridor bound
// to decide which pairs a moved disc can possibly affect.
func (m *Model) appendCandidateSegments(dst []geom.Segment, a, b geom.Vec, r float64) []geom.Segment {
	dir := b.Sub(a)
	d := dir.Norm()
	if d <= 2*r+geom.Eps {
		// Touching or (illegally) overlapping discs: they trivially see each
		// other through the contact region; a degenerate segment at the
		// contact point witnesses it.
		mid := geom.Midpoint(a, b)
		return append(dst, geom.Segment{A: mid, B: mid})
	}
	u := dir.Unit()
	// Center-line candidate, clipped to the boundaries.
	dst = append(dst, geom.Segment{A: a.Add(u.Scale(r)), B: b.Sub(u.Scale(r))})
	// Outer common tangents.
	dst = geom.AppendOuterTangentSegments(dst, a, b, r)
	// Sampled boundary points on the facing halves.
	nSamples := m.opts.samples()
	base := u.Angle()
	for s := 1; s <= nSamples; s++ {
		// Spread angles in (-pi/2, pi/2) around the facing direction.
		off := (float64(s)/float64(nSamples+1) - 0.5) * math.Pi
		pa := geom.Circle{Center: a, Radius: r}.PointAtAngle(base + off)
		pb := geom.Circle{Center: b, Radius: r}.PointAtAngle(base + math.Pi - off)
		dst = append(dst, geom.Segment{A: pa, B: pb})
	}
	return dst
}

// segmentBlocked reports whether the segment comes within the closed disc of
// radius r of any blocker.
func segmentBlocked(seg geom.Segment, blockers []geom.Vec, r float64) bool {
	for _, c := range blockers {
		if geom.DistancePointSegment(c, seg.A, seg.B) <= r+BlockTol {
			return true
		}
	}
	return false
}

// segmentBlockedExcept is segmentBlocked over centers with the discs i and j
// skipped in place: identical verdicts to building the blocker slice, scan
// order preserved, no allocation.
func segmentBlockedExcept(seg geom.Segment, centers []geom.Vec, i, j int, r float64) bool {
	for k, c := range centers {
		if k == i || k == j {
			continue
		}
		if geom.DistancePointSegment(c, seg.A, seg.B) <= r+BlockTol {
			return true
		}
	}
	return false
}
