package vision

import (
	"fmt"
	"math"

	"github.com/fatgather/fatgather/internal/geom"
)

// DefaultBoundarySamples is the default number of boundary points sampled on
// each disc (per side) when generating candidate sight lines, in addition to
// the center-center and common-tangent candidates.
const DefaultBoundarySamples = 8

// BlockTol is the numerical cushion used when deciding whether a candidate
// sight line is blocked by a disc. The paper's robots are closed discs, so a
// segment that merely grazes another robot's boundary already "contains a
// point of another robot" and is blocked; a candidate is therefore blocked
// when its distance to a blocker's center is at most radius+BlockTol.
const BlockTol = 1e-9

// Options configures the visibility model.
type Options struct {
	// Radius is the robot disc radius. Zero means geom.UnitRadius.
	Radius float64
	// BoundarySamples is the number of extra boundary points sampled per disc
	// for candidate sight lines. Zero means DefaultBoundarySamples.
	BoundarySamples int
}

func (o Options) radius() float64 {
	if o.Radius <= 0 {
		return geom.UnitRadius
	}
	return o.Radius
}

func (o Options) samples() int {
	if o.BoundarySamples <= 0 {
		return DefaultBoundarySamples
	}
	return o.BoundarySamples
}

// Model answers visibility queries for a fixed set of disc centers.
// The zero value uses unit-radius discs and the default sampling density.
type Model struct {
	opts Options
}

// New returns a visibility model with the given options.
func New(opts Options) *Model { return &Model{opts: opts} }

// Fingerprint returns a stable identity string for the model's effective
// parameters, used when a model is part of a persistent cell key: two models
// with equal fingerprints answer every query identically.
func (m *Model) Fingerprint() string {
	return fmt.Sprintf("r=%g,s=%d", m.opts.radius(), m.opts.samples())
}

// Default is a visibility model with default options (unit discs).
var Default = New(Options{})

// Visible reports whether the robot centered at centers[i] can see the robot
// centered at centers[j], given that every entry of centers is an opaque
// closed disc. A robot always sees itself.
func (m *Model) Visible(centers []geom.Vec, i, j int) bool {
	if i == j {
		return true
	}
	r := m.opts.radius()
	ci, cj := centers[i], centers[j]

	blockers := make([]geom.Vec, 0, len(centers)-2)
	for k, c := range centers {
		if k == i || k == j {
			continue
		}
		blockers = append(blockers, c)
	}
	if len(blockers) == 0 {
		return true
	}

	for _, seg := range m.candidateSegments(ci, cj, r) {
		if !segmentBlocked(seg, blockers, r) {
			return true
		}
	}
	return false
}

// VisiblePair reports whether two discs at a and b can see each other given
// the obstacle discs (which must not include a or b).
func (m *Model) VisiblePair(a, b geom.Vec, obstacles []geom.Vec) bool {
	r := m.opts.radius()
	if len(obstacles) == 0 {
		return true
	}
	for _, seg := range m.candidateSegments(a, b, r) {
		if !segmentBlocked(seg, obstacles, r) {
			return true
		}
	}
	return false
}

// View returns the indices of all robots visible from robot i (always
// including i itself), in increasing index order. Large configurations are
// answered through a uniform-grid index (see Index); the result is identical
// to the flat scan.
func (m *Model) View(centers []geom.Vec, i int) []int {
	if len(centers) >= GridThreshold {
		return m.NewIndex(centers).View(i)
	}
	out := make([]int, 0, len(centers))
	for j := range centers {
		if m.Visible(centers, i, j) {
			out = append(out, j)
		}
	}
	return out
}

// ViewCenters returns the centers of all robots visible from robot i
// (including robot i's own center).
func (m *Model) ViewCenters(centers []geom.Vec, i int) []geom.Vec {
	idx := m.View(centers, i)
	out := make([]geom.Vec, 0, len(idx))
	for _, j := range idx {
		out = append(out, centers[j])
	}
	return out
}

// FullVisibility reports whether robot i sees every robot in the
// configuration.
func (m *Model) FullVisibility(centers []geom.Vec, i int) bool {
	if len(centers) >= GridThreshold {
		return m.NewIndex(centers).FullVisibility(i)
	}
	for j := range centers {
		if !m.Visible(centers, i, j) {
			return false
		}
	}
	return true
}

// FullyVisible reports whether every robot sees every other robot (the
// paper's "fully visible configuration"). Large configurations are answered
// through a single uniform-grid index shared by all n^2 pair queries.
func (m *Model) FullyVisible(centers []geom.Vec) bool {
	if len(centers) >= GridThreshold {
		return m.NewIndex(centers).FullyVisible()
	}
	for i := range centers {
		if !m.FullVisibility(centers, i) {
			return false
		}
	}
	return true
}

// VisibilityCount returns the number of ordered pairs (i, j), i != j, such
// that robot i sees robot j. The maximum is n*(n-1).
func (m *Model) VisibilityCount(centers []geom.Vec) int {
	visible := func(i, j int) bool { return m.Visible(centers, i, j) }
	if len(centers) >= GridThreshold {
		ix := m.NewIndex(centers)
		visible = ix.Visible
	}
	count := 0
	for i := range centers {
		for j := range centers {
			if i != j && visible(i, j) {
				count++
			}
		}
	}
	return count
}

// candidateSegments generates the candidate sight lines between the discs at
// a and b: the center-center segment (clipped to the disc boundaries), the
// two outer common tangents, and sampled boundary-to-boundary segments on the
// halves of each disc facing the other.
func (m *Model) candidateSegments(a, b geom.Vec, r float64) []geom.Segment {
	dir := b.Sub(a)
	d := dir.Norm()
	segs := make([]geom.Segment, 0, 3+m.opts.samples()*2)
	if d <= 2*r+geom.Eps {
		// Touching or (illegally) overlapping discs: they trivially see each
		// other through the contact region; a degenerate segment at the
		// contact point witnesses it.
		mid := geom.Midpoint(a, b)
		return []geom.Segment{{A: mid, B: mid}}
	}
	u := dir.Unit()
	// Center-line candidate, clipped to the boundaries.
	segs = append(segs, geom.Segment{A: a.Add(u.Scale(r)), B: b.Sub(u.Scale(r))})
	// Outer common tangents.
	segs = append(segs, geom.OuterTangentSegments(a, b, r)...)
	// Sampled boundary points on the facing halves.
	nSamples := m.opts.samples()
	base := u.Angle()
	for s := 1; s <= nSamples; s++ {
		// Spread angles in (-pi/2, pi/2) around the facing direction.
		off := (float64(s)/float64(nSamples+1) - 0.5) * math.Pi
		pa := geom.Circle{Center: a, Radius: r}.PointAtAngle(base + off)
		pb := geom.Circle{Center: b, Radius: r}.PointAtAngle(base + math.Pi - off)
		segs = append(segs, geom.Segment{A: pa, B: pb})
	}
	return segs
}

// segmentBlocked reports whether the segment comes within the closed disc of
// radius r of any blocker.
func segmentBlocked(seg geom.Segment, blockers []geom.Vec, r float64) bool {
	for _, c := range blockers {
		if geom.DistancePointSegment(c, seg.A, seg.B) <= r+BlockTol {
			return true
		}
	}
	return false
}
