package adversary

import (
	"math"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/robot"
	"github.com/fatgather/fatgather/internal/sched"
)

func TestSpecStringParseRoundTrip(t *testing.T) {
	specs := []Spec{
		{Strategy: NameFair},
		{Strategy: NameRandomAsync},
		{Strategy: NameGreedyStall},
		{Strategy: NameRoundRobinLag},
		{Strategy: NameCrash, Crash: 1},
		{Strategy: NameCrash, Crash: 3},
		{Strategy: NameFair, Noise: 0.1},
		{Strategy: NameFair, Trunc: 0.25},
		{Strategy: NameStopHappy, Crash: 2, Noise: 0.05, Trunc: 0.5},
	}
	for _, want := range specs {
		text := want.String()
		got, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		if got != want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", text, got, want)
		}
	}
}

func TestSpecStringCanonicalForms(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Strategy: NameFair}, "fair"},
		{Spec{Strategy: NameCrash}, "crash(1)"},
		{Spec{Strategy: NameCrash, Crash: 2}, "crash(2)"},
		{Spec{Strategy: NameFair, Crash: 2}, "fair+crash=2"},
		{Spec{Strategy: NameFair, Noise: 0.1, Trunc: 0.2}, "fair+noise=0.1+trunc=0.2"},
	}
	for _, tc := range cases {
		if got := tc.spec.String(); got != tc.want {
			t.Errorf("%+v.String() = %q, want %q", tc.spec, got, tc.want)
		}
	}
}

func TestParseSpecShorthand(t *testing.T) {
	got, err := ParseSpec("crash")
	if err != nil {
		t.Fatal(err)
	}
	if got.Crash != 1 {
		t.Fatalf("ParseSpec(\"crash\").Crash = %d, want the default 1", got.Crash)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"bogus", "unknown adversary strategy"},
		{"", "empty strategy name"},
		{"fair(2)", "takes no argument"},
		{"crash(x)", "bad crash count"},
		{"crash(2", "unclosed parenthesis"},
		{"fair+noise", "want key=value"},
		{"fair+noise=abc", "bad noise bound"},
		{"fair+wobble=1", "unknown fault"},
		{"fair+trunc=1", "truncation fraction must be in [0, 1)"},
		{"fair+noise=-1", "noise bound must be non-negative"},
		{"fair+crash=-1", "crash count must be non-negative"},
	}
	for _, tc := range cases {
		if _, err := ParseSpec(tc.text); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSpec(%q) error %v, want substring %q", tc.text, err, tc.want)
		}
	}
}

// TestWrapIsByteIdenticalToLegacy pins the adapter contract: a wrapped legacy
// adversary must consume its RNG exactly as the legacy interface did, so
// Next/Move sequences agree call for call.
func TestWrapIsByteIdenticalToLegacy(t *testing.T) {
	legacy := sched.NewRandomAsync(42)
	wrapped, err := New(Spec{Strategy: NameRandomAsync}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Name() != "random-async" {
		t.Fatalf("wrapped name %q", wrapped.Name())
	}
	states := []robot.State{robot.Wait, robot.Move, robot.Wait, robot.Move}
	env := Env{States: states}
	cands := []int{0, 1, 2, 3}
	for i := 0; i < 200; i++ {
		if got, want := wrapped.Next(cands, env), legacy.Next(cands, states); got != want {
			t.Fatalf("step %d: Next diverged: %d vs %d", i, got, want)
		}
		got, want := wrapped.Move(1, 3.5, env), legacy.Move(1, 3.5)
		if got != want {
			t.Fatalf("step %d: Move diverged: %+v vs %+v", i, got, want)
		}
	}
}

func TestGreedyStallDelaysHullShrinker(t *testing.T) {
	g := NewGreedyStall()
	// Robot 2 is moving from a hull corner toward the centroid: its arrival
	// shrinks the hull. Robot 1 moves along the hull edge (no shrink).
	env := Env{
		States:  []robot.State{robot.Wait, robot.Move, robot.Move, robot.Wait},
		Centers: []geom.Vec{geom.V(0, 0), geom.V(10, 0), geom.V(10, 10), geom.V(0, 10)},
		Targets: []geom.Vec{{}, geom.V(10, 5), geom.V(5, 5), {}},
	}
	cands := []int{0, 1, 2, 3}
	for i := 0; i < greedyStarveLimit-1; i++ {
		if got := g.Next(cands, env); got == 2 {
			t.Fatalf("victim activated on decision %d, before the starvation limit", i)
		}
	}
	if got := g.Next(cands, env); got != 2 {
		t.Fatalf("starved victim not forced after %d decisions, got %d", greedyStarveLimit, got)
	}
	// The victim crawls; a non-victim mover gets full speed.
	if a := g.Move(2, 4, env); a.Distance != 0 || a.Stop {
		t.Fatalf("victim move ruling %+v, want crawl", a)
	}
	if a := g.Move(1, 4, env); a.Distance != 4 {
		t.Fatalf("non-victim move ruling %+v, want full remaining", a)
	}
}

func TestRoundRobinLagRunsFullCycles(t *testing.T) {
	r := NewRoundRobinLag()
	states := []robot.State{robot.Wait, robot.Wait, robot.Wait}
	env := Env{States: states}
	cands := []int{0, 1, 2}
	step := func(want int) {
		t.Helper()
		if got := r.Next(cands, env); got != want {
			t.Fatalf("Next = %d, want %d (states %v)", got, want, states)
		}
	}
	// Robot 0's full cycle: Wait -> Look -> Compute -> Move -> Wait.
	step(0)
	states[0] = robot.Look
	step(0)
	states[0] = robot.Compute
	step(0)
	states[0] = robot.Move
	step(0)
	states[0] = robot.Wait // cycle complete: rotate to robot 1
	step(1)
	states[1] = robot.Look
	step(1)
}

func TestCrashStopsAfterFirstMove(t *testing.T) {
	// Base: fair round-robin over 3 robots, crash k=3 — every robot crashes
	// after its first completed move, so the run must eventually stall.
	strat, err := New(Spec{Strategy: NameCrash, Crash: 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	states := []robot.State{robot.Wait, robot.Wait, robot.Wait}
	env := Env{States: states}
	cands := []int{0, 1, 2}

	// Put robot 0 in Move, let the strategy observe it there, then complete
	// the move (back to Wait): the Move -> Wait transition is what the crash
	// decorator detects as a completed first move.
	moved := 0
	states[moved] = robot.Move
	if id := strat.Next(cands, env); id == NoRobot {
		t.Fatal("stalled before any move completed")
	}
	states[moved] = robot.Wait
	// From here on the crashed robot must never be scheduled again.
	for i := 0; i < 50; i++ {
		id := strat.Next(cands, env)
		if id == moved {
			t.Fatalf("crashed robot %d scheduled again on decision %d", moved, i)
		}
		if id == NoRobot {
			t.Fatalf("stalled while non-crashed robots remain")
		}
	}
	// Once only the crashed robot remains, the strategy stalls.
	if id := strat.Next([]int{moved}, env); id != NoRobot {
		t.Fatalf("Next over only-crashed candidates = %d, want NoRobot", id)
	}
}

func TestCrashSelectionIsSeedDeterministic(t *testing.T) {
	pick := func(seed int64) int {
		c := NewCrash(Wrap(sched.NewFair()), 1, seed)
		states := make([]robot.State, 6)
		for i := range states {
			states[i] = robot.Wait
		}
		env := Env{States: states}
		c.Next([]int{0, 1, 2, 3, 4, 5}, env)
		for i := range states {
			if c.chosen[i] {
				return i
			}
		}
		return -1
	}
	if a, b := pick(3), pick(3); a != b {
		t.Fatalf("same seed chose different crash victims: %d vs %d", a, b)
	}
}

func TestFaultsPerturbViewBoundedAndSelfExact(t *testing.T) {
	f := NewFaults(Wrap(sched.NewFair()), 0.25, 0, 99)
	self := geom.V(1, 1)
	view := []geom.Vec{geom.V(5, 5), self, geom.V(-3, 2)}
	for trial := 0; trial < 100; trial++ {
		got := f.PerturbView(0, self, view)
		if len(got) != len(view) {
			t.Fatalf("view length changed: %d", len(got))
		}
		if got[1] != self {
			t.Fatalf("self-observation perturbed: %v", got[1])
		}
		for i := range view {
			if d := got[i].Dist(view[i]); d > 0.25+1e-12 {
				t.Fatalf("offset %g exceeds the noise bound", d)
			}
		}
	}
}

func TestFaultsPerturbMoveBounded(t *testing.T) {
	f := NewFaults(Wrap(sched.NewFair()), 0, 0.5, 7)
	for trial := 0; trial < 100; trial++ {
		granted := 2.0
		got := f.PerturbMove(0, granted, 3.0)
		if got > granted || got < granted*(1-0.5) || math.IsNaN(got) {
			t.Fatalf("truncated grant %g outside (%g, %g]", got, granted*0.5, granted)
		}
	}
}

func TestNewDecoratedNamesAndPerturberVisibility(t *testing.T) {
	cases := []struct {
		spec     Spec
		wantName string
		perturbs bool
	}{
		{Spec{Strategy: NameFair}, "fair", false},
		{Spec{Strategy: NameCrash, Crash: 2}, "crash(2)", false},
		{Spec{Strategy: NameFair, Noise: 0.1}, "fair+noise=0.1", true},
		{Spec{Strategy: NameCrash, Crash: 1, Trunc: 0.5}, "crash(1)+trunc=0.5", true},
	}
	for _, tc := range cases {
		strat, err := New(tc.spec, 5)
		if err != nil {
			t.Fatal(err)
		}
		if strat.Name() != tc.wantName {
			t.Errorf("%+v: name %q, want %q", tc.spec, strat.Name(), tc.wantName)
		}
		if _, ok := strat.(Perturber); ok != tc.perturbs {
			t.Errorf("%+v: Perturber visibility %v, want %v", tc.spec, ok, tc.perturbs)
		}
	}
}
