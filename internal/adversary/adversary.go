package adversary

import (
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/robot"
	"github.com/fatgather/fatgather/internal/sched"
)

// NoRobot is the sentinel Strategy.Next returns when the strategy declines to
// activate any candidate — for example when every remaining candidate has
// crash-stopped. The simulator ends such a run immediately with
// sim.OutcomeStalled instead of burning the event budget on no-ops.
const NoRobot = -1

// Env is the read-only view of the simulation the scheduler hands a strategy
// at each decision point. It is richer than the candidate list alone so that
// geometry-aware strategies (greedy-stall) can rule on configurations, not
// just states.
//
// The slices are owned by the simulator and reused between calls: strategies
// must copy anything they want to keep across events.
type Env struct {
	// States[i] is robot i's current state-machine state.
	States []robot.State
	// Centers[i] is robot i's current center.
	Centers []geom.Vec
	// Targets[i] is robot i's move target; meaningful only while
	// States[i] == robot.Move (zero vector otherwise).
	Targets []geom.Vec
}

// Strategy owns event selection for a run: which robot is activated next, and
// how far an activated mover may advance. It generalizes the legacy
// sched.Adversary (which only saw robot states) with the full scheduling
// environment; legacy policies participate unchanged through Wrap.
//
// Implementations own their randomness, seeded at construction, so a run is
// reproducible from (strategy spec, seed) alone — the determinism contract
// every layer above the simulator relies on. A strategy instance is used by a
// single simulation and needs no internal locking.
type Strategy interface {
	// Name identifies the strategy (including any fault decoration) in
	// reports and stored results.
	Name() string
	// Next picks the robot activated next from the non-empty candidate list
	// (indices of non-terminated robots), or NoRobot to stall the run.
	Next(candidates []int, env Env) int
	// Move rules on one activation of the moving robot id whose remaining
	// distance to target is remaining. The simulator clamps the granted
	// distance to [min(delta, remaining), remaining].
	Move(id int, remaining float64, env Env) sched.MoveAction
}

// Perturber is the optional fault-injection hook a Strategy may additionally
// implement: the simulator consults it after the Look snapshot and after the
// liveness clamp of a Move grant. New(spec, seed) attaches one automatically
// when the spec carries noise or truncation; see Faults.
type Perturber interface {
	// PerturbView may displace the sensed centers of a Look snapshot by a
	// bounded offset. self is the looking robot's true center; entries equal
	// to it (the robot's self-observation) must be left exact. The returned
	// slice may alias view.
	PerturbView(id int, self geom.Vec, view []geom.Vec) []geom.Vec
	// PerturbMove may truncate the distance granted to one Move activation
	// (already clamped to the liveness minimum). The result is re-clamped by
	// the simulator to [0, remaining]. Truncation may undercut the liveness
	// delta — that is the fault being injected.
	PerturbMove(id int, granted, remaining float64) float64
}

// Unwrapper is implemented by decorators that delegate to an inner Strategy
// (Crash, Faults, the renaming wrappers). CrashedIDs uses it to find the
// crash decorator anywhere in a decoration stack.
type Unwrapper interface {
	// Unwrap returns the wrapped strategy.
	Unwrap() Strategy
}

// CrashedIDs reports the robots that have crash-stopped under the given
// strategy, in ascending id order, unwrapping any decorators on the way to
// the crash layer. It returns nil when the strategy injects no crash fault
// (or when no designated robot has completed its first move yet). The
// simulator calls it at the end of a run to compute survivor-relative
// metrics.
func CrashedIDs(s Strategy) []int {
	for s != nil {
		if c, ok := s.(*Crash); ok {
			return c.CrashedIDs()
		}
		u, ok := s.(Unwrapper)
		if !ok {
			return nil
		}
		s = u.Unwrap()
	}
	return nil
}

// wrapped adapts a legacy sched.Adversary to the Strategy interface. The
// adapter forwards exactly the information the legacy interface saw (states
// and remaining distance), so a wrapped adversary consumes its RNG in the
// same order and produces byte-identical schedules.
type wrapped struct{ a sched.Adversary }

// Wrap lifts a legacy sched.Adversary into a Strategy, byte-identically.
func Wrap(a sched.Adversary) Strategy { return wrapped{a: a} }

func (w wrapped) Name() string { return w.a.Name() }

func (w wrapped) Next(candidates []int, env Env) int {
	return w.a.Next(candidates, env.States)
}

func (w wrapped) Move(id int, remaining float64, _ Env) sched.MoveAction {
	return w.a.Move(id, remaining)
}

// splitmix64 is the SplitMix64 finalizer (same mix as engine.DeriveSeed,
// duplicated here because engine sits above this package in the import
// graph).
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// subseed derives an independent, always-positive RNG seed for one decorator
// stream (crash selection, noise, ...) so stacked decorators never share a
// random sequence with each other or with the base strategy.
func subseed(seed int64, stream uint64) int64 {
	const gamma = 0x9e3779b97f4a7c15
	z := splitmix64(uint64(seed) + gamma)
	z = splitmix64(z + stream*gamma + gamma)
	out := int64(z &^ (1 << 63))
	if out == 0 {
		out = 1
	}
	return out
}
