package adversary

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/sched"
)

// Faults decorates a base strategy with bounded sensing and motion faults:
// sensor noise (each sensed non-self center displaced by a uniform offset of
// at most Noise) and movement truncation (each Move grant scaled by a uniform
// factor in (1-Trunc, 1]). It implements Perturber; the simulator applies the
// hooks after the Look snapshot and after the liveness clamp.
//
// Both faults draw from one RNG stream seeded at construction, independent of
// the base strategy's, so (spec, seed) still pins the run bit-exactly.
type Faults struct {
	inner Strategy
	noise float64
	trunc float64
	rng   *rand.Rand
}

// NewFaults wraps a base strategy with seeded noise and truncation faults.
func NewFaults(inner Strategy, noise, trunc float64, seed int64) *Faults {
	return &Faults{inner: inner, noise: noise, trunc: trunc, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Strategy.
func (f *Faults) Name() string {
	name := f.inner.Name()
	if f.noise > 0 {
		name += fmt.Sprintf("+noise=%g", f.noise)
	}
	if f.trunc > 0 {
		name += fmt.Sprintf("+trunc=%g", f.trunc)
	}
	return name
}

// Unwrap returns the wrapped base strategy.
func (f *Faults) Unwrap() Strategy { return f.inner }

// Next implements Strategy, delegating to the base strategy.
func (f *Faults) Next(candidates []int, env Env) int { return f.inner.Next(candidates, env) }

// Move implements Strategy, delegating to the base strategy.
func (f *Faults) Move(id int, remaining float64, env Env) sched.MoveAction {
	return f.inner.Move(id, remaining, env)
}

// PerturbView implements Perturber: every sensed center except the robot's
// own observation is displaced uniformly within a disc of radius noise. The
// perturbation only corrupts the snapshot the local algorithm sees — the
// physical configuration is untouched, and motion is still truncated at real
// tangency, so the no-overlap invariant cannot be violated by noise alone.
func (f *Faults) PerturbView(_ int, self geom.Vec, view []geom.Vec) []geom.Vec {
	if f.noise <= 0 {
		return view
	}
	out := make([]geom.Vec, len(view))
	for i, c := range view {
		if c.EqWithin(self, geom.Eps) {
			out[i] = c // self-observation stays exact
			continue
		}
		theta := f.rng.Float64() * 2 * math.Pi
		rad := f.noise * math.Sqrt(f.rng.Float64())
		out[i] = c.Add(geom.V(rad*math.Cos(theta), rad*math.Sin(theta)))
	}
	return out
}

// PerturbMove implements Perturber: the granted distance is scaled by a
// uniform factor in (1-trunc, 1]. The result may undercut the liveness
// minimum-progress delta — exactly the fault E15 measures the tolerance for.
func (f *Faults) PerturbMove(_ int, granted, remaining float64) float64 {
	if f.trunc <= 0 {
		return granted
	}
	scaled := granted * (1 - f.trunc*f.rng.Float64())
	if scaled > remaining {
		scaled = remaining
	}
	return scaled
}

// Compile-time interface checks.
var (
	_ Strategy  = (*Faults)(nil)
	_ Perturber = (*Faults)(nil)
)
