// Package adversary is the pluggable adversary and fault-injection subsystem:
// it owns event selection for the simulator and the bounded sensing/motion
// faults that open the robustness workload dimension (experiments E13-E15).
//
// The package is organized in three layers:
//
//   - Strategy is the scheduling interface the simulator consults at every
//     event: which robot acts next (Next, handed the full scheduling Env of
//     states, centers and move targets) and how far a mover may advance
//     (Move). Legacy sched.Adversary policies participate byte-identically
//     through Wrap; the environment-aware strategies GreedyStall (delay the
//     robot whose move would shrink the hull most) and RoundRobinLag
//     (maximally skew activation phases) use the richer view.
//   - Decorators compose faults onto any base strategy: Crash permanently
//     stops k seeded-random robots after their first completed move
//     (returning NoRobot once only crashed robots remain, which the simulator
//     reports as a stalled run), and Faults implements the Perturber hook the
//     simulator applies to Look snapshots (bounded sensor noise) and Move
//     grants (bounded truncation).
//   - Spec is the declarative form that batch grids, sweep cell keys and CLI
//     flags thread through the system ("crash(2)", "fair+noise=0.1");
//     New(spec, seed) builds the decorated strategy with every random stream
//     derived independently from the one seed.
//
// Determinism contract: a Strategy owns all of its randomness, seeded at
// construction, so a run is a pure function of (spec, seed, initial
// configuration) — the property the engine's cell keys and the sweep store's
// resume identity rely on. Fault-free legacy specs construct the exact
// pre-fault adversaries and therefore reproduce historic results
// byte-identically.
package adversary
