package adversary

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/sched"
)

// Spec is the declarative description of an adversary: a base scheduling
// strategy plus optional fault decorations. It is what batch grids, sweep
// cell keys and CLI flags thread through the system; New turns it into a
// runnable Strategy.
//
// The zero value of every fault field means "off", so a Spec holding only a
// legacy strategy name describes exactly the pre-fault-injection adversary
// (and produces byte-identical schedules).
type Spec struct {
	// Strategy is the base strategy name (one of Names). The special name
	// "crash" is fair scheduling with Crash robots crash-stopped.
	Strategy string
	// Crash, when positive, crash-stops that many robots: each permanently
	// stops after completing its first Move (never activated again). With the
	// base strategy "crash" a zero Crash means 1.
	Crash int
	// Noise, when positive, bounds the sensor noise radius: every non-self
	// center in a Look snapshot is displaced by a uniform offset of at most
	// this distance.
	Noise float64
	// Trunc, when positive, truncates motion: each Move grant is scaled by a
	// uniform factor in (1-Trunc, 1], which may undercut the liveness delta.
	// Must be < 1 (a full truncation would freeze robots forever).
	Trunc float64
}

// Base strategy names. The first five are the legacy sched policies; the
// last three are the environment-aware strategies introduced with this
// package.
const (
	NameFair          = "fair"
	NameRandomAsync   = "random-async"
	NameStopHappy     = "stop-happy"
	NameSlowRobot     = "slow-robot"
	NameMoverStarver  = "mover-starver"
	NameGreedyStall   = "greedy-stall"
	NameRoundRobinLag = "round-robin-lag"
	NameCrash         = "crash"
)

// Names returns every base strategy name in stable suite order.
func Names() []string {
	return []string{
		NameFair, NameRandomAsync, NameStopHappy, NameSlowRobot,
		NameMoverStarver, NameGreedyStall, NameRoundRobinLag, NameCrash,
	}
}

// Known reports whether name is a registered base strategy name.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// crashK is the effective crash count: the "crash" base strategy defaults to
// one crashed robot.
func (s Spec) crashK() int {
	if s.Strategy == NameCrash && s.Crash == 0 {
		return 1
	}
	return s.Crash
}

// Normalized returns the spec with defaulted fields made explicit (the
// "crash" strategy's implicit Crash=1), so that two specs describing the
// same adversary compare — and key persistent stores — identically.
func (s Spec) Normalized() Spec {
	s.Crash = s.crashK()
	return s
}

// String renders the canonical spec string, parseable by ParseSpec:
// "crash(2)", "fair+noise=0.1", "random-async+crash=1+noise=0.05+trunc=0.2".
// For a fault-free legacy spec it is exactly the base strategy name.
func (s Spec) String() string {
	var b strings.Builder
	if s.Strategy == NameCrash {
		fmt.Fprintf(&b, "%s(%d)", NameCrash, s.crashK())
	} else {
		b.WriteString(s.Strategy)
		if s.Crash > 0 {
			fmt.Fprintf(&b, "+crash=%d", s.Crash)
		}
	}
	if s.Noise > 0 {
		fmt.Fprintf(&b, "+noise=%g", s.Noise)
	}
	if s.Trunc > 0 {
		fmt.Fprintf(&b, "+trunc=%g", s.Trunc)
	}
	return b.String()
}

// ParseSpec parses a spec string: a base strategy name, optionally with a
// crash count ("crash(2)") and "+key=value" fault suffixes ("noise", "trunc",
// "crash"). ParseSpec(s.String()) round-trips for every valid Spec.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	parts := strings.Split(strings.TrimSpace(text), "+")
	head := strings.TrimSpace(parts[0])
	if open := strings.IndexByte(head, '('); open >= 0 {
		if !strings.HasSuffix(head, ")") {
			return s, fmt.Errorf("adversary: malformed spec %q (unclosed parenthesis)", text)
		}
		arg := head[open+1 : len(head)-1]
		head = head[:open]
		if head != NameCrash {
			return s, fmt.Errorf("adversary: strategy %q takes no argument (only %s(k) does)", head, NameCrash)
		}
		k, err := strconv.Atoi(arg)
		if err != nil {
			return s, fmt.Errorf("adversary: bad crash count %q in spec %q", arg, text)
		}
		s.Crash = k
	}
	s.Strategy = head
	if s.Strategy == NameCrash && s.Crash == 0 {
		s.Crash = 1
	}
	for _, part := range parts[1:] {
		key, value, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return s, fmt.Errorf("adversary: malformed fault %q in spec %q (want key=value)", part, text)
		}
		switch key {
		case "crash":
			k, err := strconv.Atoi(value)
			if err != nil {
				return s, fmt.Errorf("adversary: bad crash count %q in spec %q", value, text)
			}
			s.Crash = k
		case "noise":
			f, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return s, fmt.Errorf("adversary: bad noise bound %q in spec %q", value, text)
			}
			s.Noise = f
		case "trunc":
			f, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return s, fmt.Errorf("adversary: bad truncation fraction %q in spec %q", value, text)
			}
			s.Trunc = f
		default:
			return s, fmt.Errorf("adversary: unknown fault %q in spec %q (want crash, noise or trunc)", key, text)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks the spec without constructing it: known base strategy and
// in-range fault magnitudes.
func (s Spec) Validate() error {
	if s.Strategy == "" {
		return fmt.Errorf("adversary: empty strategy name")
	}
	if !Known(s.Strategy) {
		return fmt.Errorf("adversary: unknown adversary strategy %q (have %s)", s.Strategy, strings.Join(Names(), ", "))
	}
	if s.Crash < 0 {
		return fmt.Errorf("adversary: crash count must be non-negative, got %d", s.Crash)
	}
	if s.Strategy == NameCrash && s.crashK() < 1 {
		return fmt.Errorf("adversary: the %s strategy needs a positive crash count, got %d", NameCrash, s.Crash)
	}
	if s.Noise < 0 {
		return fmt.Errorf("adversary: noise bound must be non-negative, got %g", s.Noise)
	}
	if s.Trunc < 0 || s.Trunc >= 1 {
		return fmt.Errorf("adversary: truncation fraction must be in [0, 1), got %g", s.Trunc)
	}
	return nil
}

// named pins a constructed strategy's report name to the canonical spec
// string, so stored results and table rows always show the full decoration
// regardless of how decorators compose.
type named struct {
	Strategy
	label string
}

func (n named) Name() string { return n.label }

// Unwrap returns the renamed strategy.
func (n named) Unwrap() Strategy { return n.Strategy }

// Perturb forwards the optional fault hook of the wrapped strategy, keeping
// the Perturber type assertion visible through the rename.
func (n named) PerturbView(id int, self geom.Vec, view []geom.Vec) []geom.Vec {
	return n.Strategy.(Perturber).PerturbView(id, self, view)
}

func (n named) PerturbMove(id int, granted, remaining float64) float64 {
	return n.Strategy.(Perturber).PerturbMove(id, granted, remaining)
}

// New constructs the runnable Strategy a spec describes, seeding every random
// stream (base strategy, crash selection, fault noise) independently from
// seed. Equal (spec, seed) pairs produce byte-identical schedules; fault-free
// legacy specs reproduce the pre-fault adversaries exactly.
func New(s Spec, seed int64) (Strategy, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = 1
	}
	var strat Strategy
	switch s.Strategy {
	case NameCrash:
		// Crash-stop scheduling over the friendliest base: fair round-robin,
		// so the table isolates the crash fault from scheduling hostility.
		strat = Wrap(sched.NewFair())
	case NameGreedyStall:
		strat = NewGreedyStall()
	case NameRoundRobinLag:
		strat = NewRoundRobinLag()
	default:
		ctor, ok := sched.Registry(seed)[s.Strategy]
		if !ok {
			return nil, fmt.Errorf("adversary: unknown strategy %q", s.Strategy)
		}
		strat = Wrap(ctor())
	}
	if k := s.crashK(); k > 0 {
		strat = NewCrash(strat, k, subseed(seed, 0xc7a54))
	}
	faulted := false
	if s.Noise > 0 || s.Trunc > 0 {
		strat = NewFaults(strat, s.Noise, s.Trunc, subseed(seed, 0xf4017))
		faulted = true
	}
	label := s.String()
	if strat.Name() == label {
		return strat, nil
	}
	if faulted {
		return named{Strategy: strat, label: label}, nil
	}
	return plainNamed{Strategy: strat, label: label}, nil
}

// plainNamed renames a strategy that carries no Perturber hook. (A separate
// type from named so that a renamed fault-free strategy does not satisfy
// Perturber by accident.)
type plainNamed struct {
	Strategy
	label string
}

func (n plainNamed) Name() string { return n.label }

// Unwrap returns the renamed strategy.
func (n plainNamed) Unwrap() Strategy { return n.Strategy }
