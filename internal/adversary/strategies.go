package adversary

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/robot"
	"github.com/fatgather/fatgather/internal/sched"
)

// greedyStarveLimit bounds how many consecutive scheduling decisions may
// bypass the stalled victim before it is forcibly activated: the liveness
// condition ("every robot takes infinitely many steps") must hold under every
// strategy, adversarial or not.
const greedyStarveLimit = 12

// GreedyStall is the hull-aware stalling adversary: at every decision point
// it identifies the moving robot whose completed move would shrink the convex
// hull of the configuration most — the robot making the most progress toward
// gathering — and delays it, activating everyone else round-robin and
// granting the victim only the liveness minimum when it must move. Fully
// deterministic (no randomness): the worst schedule it finds is reproducible
// from the configuration alone.
type GreedyStall struct {
	cursor  int
	starved map[int]int
	// lastVictim caches the victim computed by the most recent Next: the
	// simulator always calls Next then (at most once, on the same Env) Move
	// within one event, so Move can reuse it instead of recomputing the
	// hulls.
	lastVictim int
	// scratch is the candidate-configuration buffer reused by victimOf.
	scratch []geom.Vec
}

// NewGreedyStall returns a greedy hull-stalling strategy.
func NewGreedyStall() *GreedyStall {
	return &GreedyStall{starved: make(map[int]int), lastVictim: -1}
}

// Name implements Strategy.
func (g *GreedyStall) Name() string { return NameGreedyStall }

// victimOf returns the moving robot whose arrival at its target would shrink
// the hull area most (ties broken by lowest index), or -1 when no mover
// shrinks the hull.
func (g *GreedyStall) victimOf(env Env) int {
	if len(env.Centers) < 3 {
		return -1 // hull area is identically zero; nothing to stall on
	}
	area := geom.PolygonArea(geom.ConvexHull(env.Centers))
	if cap(g.scratch) < len(env.Centers) {
		g.scratch = make([]geom.Vec, len(env.Centers))
	}
	pts := g.scratch[:len(env.Centers)]
	victim, bestShrink := -1, 0.0
	for i, st := range env.States {
		if st != robot.Move {
			continue
		}
		copy(pts, env.Centers)
		pts[i] = env.Targets[i]
		shrink := area - geom.PolygonArea(geom.ConvexHull(pts))
		if shrink > bestShrink+geom.Eps {
			bestShrink = shrink
			victim = i
		}
	}
	return victim
}

// Next implements Strategy: activate anyone but the current victim,
// round-robin, forcing the victim through every greedyStarveLimit decisions.
func (g *GreedyStall) Next(candidates []int, env Env) int {
	v := g.victimOf(env)
	g.lastVictim = v
	if v < 0 {
		return g.roundRobin(candidates)
	}
	g.starved[v]++
	if g.starved[v] >= greedyStarveLimit {
		g.starved[v] = 0
		return v
	}
	others := make([]int, 0, len(candidates))
	for _, c := range candidates {
		if c != v {
			others = append(others, c)
		}
	}
	if len(others) == 0 {
		g.starved[v] = 0
		return v
	}
	return g.roundRobin(others)
}

// roundRobin picks the first candidate at or after the cursor, cyclically
// (the same discipline as the fair adversary).
func (g *GreedyStall) roundRobin(candidates []int) int {
	best := candidates[0]
	for _, c := range candidates {
		if c >= g.cursor {
			best = c
			break
		}
	}
	g.cursor = best + 1
	return best
}

// Move implements Strategy: the current victim (cached from the Next call of
// the same event — the Env cannot change in between) crawls by the liveness
// minimum; everyone else moves at full speed.
func (g *GreedyStall) Move(id int, remaining float64, _ Env) sched.MoveAction {
	if g.lastVictim == id {
		return sched.MoveAction{Distance: 0} // clamped up to min(delta, remaining)
	}
	return sched.MoveAction{Distance: remaining}
}

// RoundRobinLag maximally skews activation phases: instead of interleaving
// the robots' Look-Compute-Move cycles, it drives one focus robot through its
// entire cycle before granting the next robot a single event. Every robot
// therefore acts on a view that is a full round of cycles stale — the
// worst-case phase lag the execution model allows while staying fair.
// Deterministic.
type RoundRobinLag struct {
	focus   int
	sawMove bool
	started bool
}

// NewRoundRobinLag returns a phase-skewing round-robin strategy.
func NewRoundRobinLag() *RoundRobinLag { return &RoundRobinLag{} }

// Name implements Strategy.
func (r *RoundRobinLag) Name() string { return NameRoundRobinLag }

// Next implements Strategy: keep activating the focus robot until it
// completes a full cycle (returns to Wait after moving, or terminates), then
// rotate to the next candidate.
func (r *RoundRobinLag) Next(candidates []int, env Env) int {
	inSet := false
	for _, c := range candidates {
		if c == r.focus {
			inSet = true
			break
		}
	}
	cycled := inSet && r.sawMove && env.States[r.focus] == robot.Wait
	if !r.started {
		r.started = true
		r.focus = candidates[0]
		r.sawMove = false
		return r.focus
	}
	if !inSet || cycled {
		r.rotate(candidates)
	}
	if env.States[r.focus] == robot.Move {
		r.sawMove = true
	}
	return r.focus
}

// rotate advances the focus to the next candidate after the current focus in
// cyclic index order and resets the cycle tracker.
func (r *RoundRobinLag) rotate(candidates []int) {
	next := candidates[0]
	for _, c := range candidates {
		if c > r.focus {
			next = c
			break
		}
	}
	r.focus = next
	r.sawMove = false
}

// Move implements Strategy: full speed — the damage is done by phase lag, not
// by slow motion.
func (r *RoundRobinLag) Move(_ int, remaining float64, _ Env) sched.MoveAction {
	return sched.MoveAction{Distance: remaining}
}

// Crash is the crash-stop fault decorator: k robots, chosen uniformly at
// construction-seeded random once the population is known, permanently stop
// after completing their first Move — they are never activated again.
// Scheduling among the surviving robots is delegated to the wrapped base
// strategy. When only crashed robots remain un-terminated, Next returns
// NoRobot and the simulator ends the run as stalled.
type Crash struct {
	inner Strategy
	k     int
	rng   *rand.Rand
	// chosen[i] marks the robots designated to crash (fixed at first Next).
	chosen map[int]bool
	// moved[i] becomes true once robot i has completed at least one Move
	// (observed as a Move -> non-Move state transition).
	moved   map[int]bool
	wasMove map[int]bool
}

// NewCrash wraps a base strategy with crash-stop semantics for k robots.
func NewCrash(inner Strategy, k int, seed int64) *Crash {
	return &Crash{
		inner:   inner,
		k:       k,
		rng:     rand.New(rand.NewSource(seed)),
		moved:   make(map[int]bool),
		wasMove: make(map[int]bool),
	}
}

// Name implements Strategy.
func (c *Crash) Name() string { return fmt.Sprintf("%s+crash=%d", c.inner.Name(), c.k) }

// Crashed reports whether robot id has crash-stopped (designated and past its
// first completed move).
func (c *Crash) Crashed(id int) bool { return c.chosen[id] && c.moved[id] }

// CrashedIDs returns the ids of every crash-stopped robot in ascending order
// (designated robots that have not completed a move yet are still alive and
// excluded).
func (c *Crash) CrashedIDs() []int {
	var ids []int
	for id := range c.chosen {
		if c.Crashed(id) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Unwrap returns the wrapped base strategy.
func (c *Crash) Unwrap() Strategy { return c.inner }

// observe updates the completed-move tracking and lazily fixes the crash set.
func (c *Crash) observe(env Env) {
	if c.chosen == nil {
		n := len(env.States)
		c.chosen = make(map[int]bool, c.k)
		k := c.k
		if k > n {
			k = n
		}
		for _, i := range c.rng.Perm(n)[:k] {
			c.chosen[i] = true
		}
	}
	for i, st := range env.States {
		if c.wasMove[i] && st != robot.Move {
			c.moved[i] = true
		}
		c.wasMove[i] = st == robot.Move
	}
}

// Next implements Strategy: crashed robots are removed from the candidate
// list before the base strategy picks; NoRobot when none survive.
func (c *Crash) Next(candidates []int, env Env) int {
	c.observe(env)
	live := make([]int, 0, len(candidates))
	for _, cand := range candidates {
		if !c.Crashed(cand) {
			live = append(live, cand)
		}
	}
	if len(live) == 0 {
		return NoRobot
	}
	return c.inner.Next(live, env)
}

// Move implements Strategy, delegating to the base strategy.
func (c *Crash) Move(id int, remaining float64, env Env) sched.MoveAction {
	return c.inner.Move(id, remaining, env)
}

// Compile-time interface checks.
var (
	_ Strategy = (*GreedyStall)(nil)
	_ Strategy = (*RoundRobinLag)(nil)
	_ Strategy = (*Crash)(nil)
)
