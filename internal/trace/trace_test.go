package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
)

func sample() *Trace {
	tr := New("agm-gathering", "fair", 3, 42)
	tr.Append(0, config.Geometric{geom.V(0, 0), geom.V(5, 0), geom.V(2, 4)})
	tr.Append(10, config.Geometric{geom.V(1, 0), geom.V(4, 0), geom.V(2, 3)})
	return tr
}

func TestAppendAndConfig(t *testing.T) {
	tr := sample()
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	cfg := tr.Config(1)
	if len(cfg) != 3 || !cfg[0].Eq(geom.V(1, 0)) {
		t.Fatalf("config = %v", cfg)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != tr.Algorithm || back.Adversary != tr.Adversary ||
		back.N != tr.N || back.Seed != tr.Seed || back.Len() != tr.Len() {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	for i := 0; i < tr.Len(); i++ {
		a, b := tr.Config(i), back.Config(i)
		for j := range a {
			if !a[j].EqWithin(b[j], 1e-12) {
				t.Fatalf("frame %d robot %d mismatch", i, j)
			}
		}
	}
}

func TestDecodeError(t *testing.T) {
	if _, err := Decode(strings.NewReader("{not json")); err == nil {
		t.Fatal("invalid JSON should error")
	}
}

func TestValidate(t *testing.T) {
	tr := sample()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	// Overlapping robots in a frame.
	bad := New("x", "y", 2, 1)
	bad.Append(0, config.Geometric{geom.V(0, 0), geom.V(1, 0)})
	if err := bad.Validate(); err == nil {
		t.Fatal("overlapping frame should fail validation")
	}
	// Wrong robot count.
	short := New("x", "y", 3, 1)
	short.Append(0, config.Geometric{geom.V(0, 0), geom.V(5, 0)})
	if err := short.Validate(); err == nil {
		t.Fatal("frame with wrong robot count should fail validation")
	}
}
