package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
)

// Point is the JSON form of a robot center.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Frame is one recorded configuration. States and Targets are optional
// annotations used by livelock snippets (internal/sim): States holds the
// per-robot protocol state name and Targets the destination of each robot
// currently in its Move state (null for the others). Plain traces omit both.
type Frame struct {
	Event   int      `json:"event"`
	Centers []Point  `json:"centers"`
	States  []string `json:"states,omitempty"`
	Targets []*Point `json:"targets,omitempty"`
}

// Trace is a recorded execution.
type Trace struct {
	Algorithm string  `json:"algorithm"`
	Adversary string  `json:"adversary"`
	N         int     `json:"n"`
	Seed      int64   `json:"seed"`
	Frames    []Frame `json:"frames"`
}

// New creates an empty trace with the given metadata.
func New(algorithm, adversary string, n int, seed int64) *Trace {
	return &Trace{Algorithm: algorithm, Adversary: adversary, N: n, Seed: seed}
}

// Append records a configuration snapshot at the given event index.
func (t *Trace) Append(event int, cfg config.Geometric) {
	pts := make([]Point, len(cfg))
	for i, c := range cfg {
		pts[i] = Point{X: c.X, Y: c.Y}
	}
	t.Frames = append(t.Frames, Frame{Event: event, Centers: pts})
}

// Len returns the number of recorded frames.
func (t *Trace) Len() int { return len(t.Frames) }

// Config reconstructs the configuration of frame i.
func (t *Trace) Config(i int) config.Geometric {
	frame := t.Frames[i]
	out := make(config.Geometric, len(frame.Centers))
	for j, p := range frame.Centers {
		out[j] = geom.V(p.X, p.Y)
	}
	return out
}

// Encode writes the trace as JSON.
func (t *Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace encode: %w", err)
	}
	return nil
}

// Decode reads a trace from JSON.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace decode: %w", err)
	}
	return &t, nil
}

// Validate re-checks every recorded frame for the physical no-overlap
// invariant and consistent robot count; it returns the first violation.
func (t *Trace) Validate() error {
	for i := range t.Frames {
		cfg := t.Config(i)
		if len(cfg) != t.N {
			return fmt.Errorf("trace frame %d: %d robots, expected %d", i, len(cfg), t.N)
		}
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("trace frame %d: %w", i, err)
		}
		if f := t.Frames[i]; len(f.States) > 0 && len(f.States) != t.N {
			return fmt.Errorf("trace frame %d: %d states, expected %d", i, len(f.States), t.N)
		} else if len(f.Targets) > 0 && len(f.Targets) != t.N {
			return fmt.Errorf("trace frame %d: %d targets, expected %d", i, len(f.Targets), t.N)
		}
	}
	return nil
}
