// Package trace records executions as JSON documents (a sequence of
// configuration snapshots plus run metadata) so that runs can be archived,
// replayed, rendered, or re-validated offline.
package trace
