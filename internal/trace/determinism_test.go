package trace_test

import (
	"bytes"
	"errors"
	"testing"

	"github.com/fatgather/fatgather/internal/sched"
	"github.com/fatgather/fatgather/internal/sim"
	"github.com/fatgather/fatgather/internal/trace"
	"github.com/fatgather/fatgather/internal/workload"
)

// recordTrace runs one simulation from the given seed and returns the
// JSON-encoded trace of configuration snapshots every 50 events.
func recordTrace(t *testing.T, seed int64) []byte {
	t.Helper()
	const n = 6
	w, err := workload.Generate(workload.KindClustered, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(w, sim.Options{
		Adversary: sched.NewRandomAsync(seed + 9),
		MaxEvents: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("agm-gathering", "random-async", n, seed)
	tr.Append(0, s.Config())
	for s.Events() < 5000 && !s.AllTerminated() {
		// A certified livelock ends the run early; detection is deterministic,
		// so both recordings of one seed cut off at the same event.
		if err := s.Step(); errors.Is(err, sim.ErrLivelocked) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if s.Events()%50 == 0 {
			tr.Append(s.Events(), s.Config())
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("seed %d: recorded trace invalid: %v", seed, err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceByteIdenticalForSameSeed is the determinism contract of the whole
// pipeline (workload generator, adversary, simulator, trace encoder): the
// same seed must reproduce the execution byte for byte.
func TestTraceByteIdenticalForSameSeed(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a := recordTrace(t, seed)
		b := recordTrace(t, seed)
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two identical runs produced different trace bytes", seed)
		}
	}
}

// TestTraceDiffersAcrossSeeds guards against the opposite failure mode (the
// seed being ignored somewhere in the pipeline).
func TestTraceDiffersAcrossSeeds(t *testing.T) {
	if bytes.Equal(recordTrace(t, 1), recordTrace(t, 2)) {
		t.Fatal("different seeds produced identical traces")
	}
}
