package viz

import (
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
)

func square() config.Geometric {
	return config.Geometric{geom.V(0, 0), geom.V(8, 0), geom.V(8, 8), geom.V(0, 8)}
}

func TestSVGBasics(t *testing.T) {
	svg := SVG(square(), SVGOptions{DrawHull: true, Labels: true})
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if strings.Count(svg, "<circle") < 8 { // 4 discs + 4 center dots
		t.Fatalf("expected circles for every robot, got %d", strings.Count(svg, "<circle"))
	}
	if !strings.Contains(svg, "<polygon") {
		t.Fatal("hull polygon missing")
	}
	if !strings.Contains(svg, "<text") {
		t.Fatal("labels missing")
	}
}

func TestSVGWithoutOptions(t *testing.T) {
	svg := SVG(config.Geometric{geom.V(0, 0)}, SVGOptions{})
	if !strings.Contains(svg, "<circle") {
		t.Fatal("single robot should render")
	}
	if strings.Contains(svg, "<polygon") {
		t.Fatal("no hull requested")
	}
}

func TestSVGExtras(t *testing.T) {
	extra := Line(geom.V(0, 0), geom.V(5, 5), "#ff0000")
	svg := SVG(square(), SVGOptions{Extra: []string{extra, Marker(geom.V(1, 1), "#00ff00")}})
	if !strings.Contains(svg, "#ff0000") || !strings.Contains(svg, "#00ff00") {
		t.Fatal("extras not embedded")
	}
}

func TestASCII(t *testing.T) {
	art := ASCII(square(), 40, 16)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 16 {
		t.Fatalf("rows = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 40 {
			t.Fatalf("row width = %d", len(l))
		}
	}
	if !strings.Contains(art, "0") || !strings.Contains(art, "3") {
		t.Fatal("robot centers not drawn")
	}
	if !strings.Contains(art, "o") {
		t.Fatal("disc outlines not drawn")
	}
	empty := ASCII(nil, 10, 3)
	if !strings.Contains(empty, ".") {
		t.Fatal("empty configuration should render dots")
	}
	if def := ASCII(square(), 0, 0); def == "" {
		t.Fatal("default dimensions should render")
	}
}

func TestFigureGenerators(t *testing.T) {
	figs := map[string]string{
		"fig1": FigureStateCycle(),
		"fig2": FigureMoveToPoint(geom.V(0, 0), geom.V(8, 0), 8),
		"fig3": FigureFindPoints(config.Geometric{geom.V(0, 0), geom.V(12, 0), geom.V(14, 9), geom.V(6, 14), geom.V(-2, 9)}, 8),
		"fig5": FigureStraightLine(geom.V(0, 0), geom.V(5, 0.08), geom.V(10, 0), 8),
	}
	for name, svg := range figs {
		if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Fatalf("%s: not a complete SVG document", name)
		}
	}
	// Figure 3 must mark at least one valid candidate on this wide hull.
	if strings.Count(figs["fig3"], "<line") < 2 {
		t.Fatal("fig3 should contain candidate markers")
	}
}
