// Package viz renders robot configurations and executions: SVG documents for
// reports and the paper-figure reproductions, and compact ASCII sketches for
// terminals and tests.
package viz
