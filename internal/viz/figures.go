package viz

import (
	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/core"
	"github.com/fatgather/fatgather/internal/geom"
)

// FigureMoveToPoint reproduces Figure 2 of the paper: two unit discs, the
// perpendicular offset construction at c2, and the resulting target point µ.
// It returns a standalone SVG document.
func FigureMoveToPoint(c1, c2 geom.Vec, n int) string {
	interior := geom.Midpoint(c1, c2).Add(c2.Sub(c1).Unit().Perp().Scale(5))
	mu := core.MoveToPoint(c1, c2, n, interior)
	stop := core.TangencyTarget(c1, c2, mu)
	extras := []string{
		Line(c1, mu, "#e6550d"),
		Marker(mu, "#e6550d"),
		Marker(stop, "#31a354"),
		Line(c2, c2.Add(c2.Sub(c1).Unit().Perp().Scale(1)), "#756bb1"),
	}
	return SVG(config.Geometric{c1, c2}, SVGOptions{DrawHull: false, Labels: true, Extra: extras})
}

// FigureFindPoints reproduces Figure 3 of the paper: a convex hull of robots
// with the Find-Points candidate positions marked (valid candidates in green).
func FigureFindPoints(hull config.Geometric, n int) string {
	candidates := core.FindPoints(hull, n)
	extras := make([]string, 0, len(candidates))
	for _, p := range candidates {
		extras = append(extras, Marker(p, "#31a354"))
	}
	return SVG(hull, SVGOptions{DrawHull: true, Labels: true, Extra: extras})
}

// FigureStraightLine reproduces Figure 5 of the paper: three hull robots with
// the 1/n-wide rectangle around the chord of the outer two, illustrating the
// straight-line test of Procedure NotAllOnConvexHull.
func FigureStraightLine(cl, cm, cr geom.Vec, n int) string {
	w := 1 / float64(n)
	dir := cr.Sub(cl).Unit()
	off := dir.Perp().Scale(w)
	extras := []string{
		Line(cl.Add(off), cr.Add(off), "#756bb1"),
		Line(cl.Sub(off), cr.Sub(off), "#756bb1"),
		Line(cl.Add(off), cl.Sub(off), "#756bb1"),
		Line(cr.Add(off), cr.Sub(off), "#756bb1"),
		Line(cl, cr, "#e6550d"),
	}
	return SVG(config.Geometric{cl, cm, cr}, SVGOptions{DrawHull: false, Labels: true, Extra: extras})
}

// FigureStateCycle reproduces Figure 1 of the paper (the Wait/Look/Compute/
// Move/Terminate cycle) as a simple SVG state diagram. It is static by
// nature; the simulator's event loop is the executable counterpart.
func FigureStateCycle() string {
	type node struct {
		name string
		pos  geom.Vec
	}
	nodes := []node{
		{"Wait", geom.V(0, 0)},
		{"Look", geom.V(8, 0)},
		{"Compute", geom.V(16, 0)},
		{"Move", geom.V(24, 0)},
		{"Terminate", geom.V(16, -8)},
	}
	var extras []string
	arrows := [][2]int{{0, 1}, {1, 2}, {2, 3}, {2, 4}}
	for _, a := range arrows {
		extras = append(extras, Line(nodes[a[0]].pos, nodes[a[1]].pos, "#3182bd"))
	}
	// The Move -> Wait back edge (Arrive/Stop/Collide) drawn as a two-segment
	// detour below the axis.
	extras = append(extras,
		Line(nodes[3].pos, nodes[3].pos.Add(geom.V(0, -4)), "#31a354"),
		Line(nodes[3].pos.Add(geom.V(0, -4)), nodes[0].pos.Add(geom.V(0, -4)), "#31a354"),
		Line(nodes[0].pos.Add(geom.V(0, -4)), nodes[0].pos, "#31a354"),
	)
	cfg := make(config.Geometric, len(nodes))
	for i, nd := range nodes {
		cfg[i] = nd.pos
	}
	return SVG(cfg, SVGOptions{Labels: true, Extra: extras})
}
