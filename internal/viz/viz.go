package viz

import (
	"fmt"
	"strings"

	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
)

// SVGOptions controls SVG rendering.
type SVGOptions struct {
	// WidthPx is the pixel width of the output image (height follows the
	// aspect ratio). Zero means 640.
	WidthPx int
	// DrawHull adds the convex hull of the robot centers as a polygon.
	DrawHull bool
	// Labels adds the robot index next to each disc.
	Labels bool
	// Extra appends raw SVG fragments (already in world coordinates) before
	// the closing tag; used by the figure generators to add construction
	// lines.
	Extra []string
}

// SVG renders the configuration as a standalone SVG document.
func SVG(cfg config.Geometric, opts SVGOptions) string {
	width := opts.WidthPx
	if width <= 0 {
		width = 640
	}
	min, max := cfg.BoundingBox()
	pad := 2.0
	min = min.Sub(geom.V(pad, pad))
	max = max.Add(geom.V(pad, pad))
	worldW := max.X - min.X
	worldH := max.Y - min.Y
	if worldW <= 0 {
		worldW = 1
	}
	if worldH <= 0 {
		worldH = 1
	}
	height := int(float64(width) * worldH / worldW)
	if height <= 0 {
		height = width
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="%.3f %.3f %.3f %.3f">`+"\n",
		width, height, min.X, min.Y, worldW, worldH)
	// Flip the y axis so that +y is up, as in the math convention.
	fmt.Fprintf(&b, `<g transform="translate(0 %.3f) scale(1 -1)">`+"\n", max.Y+min.Y)
	fmt.Fprintf(&b, `<rect x="%.3f" y="%.3f" width="%.3f" height="%.3f" fill="white"/>`+"\n",
		min.X, min.Y, worldW, worldH)

	if opts.DrawHull && len(cfg) >= 3 {
		hull := geom.ConvexHull(cfg)
		var pts []string
		for _, p := range hull {
			pts = append(pts, fmt.Sprintf("%.4f,%.4f", p.X, p.Y))
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="none" stroke="#888" stroke-width="0.05" stroke-dasharray="0.3,0.2"/>`+"\n",
			strings.Join(pts, " "))
	}
	for i, c := range cfg {
		fmt.Fprintf(&b, `<circle cx="%.4f" cy="%.4f" r="%.3f" fill="#9ecae1" stroke="#3182bd" stroke-width="0.06"/>`+"\n",
			c.X, c.Y, geom.UnitRadius)
		fmt.Fprintf(&b, `<circle cx="%.4f" cy="%.4f" r="0.08" fill="#08519c"/>`+"\n", c.X, c.Y)
		if opts.Labels {
			fmt.Fprintf(&b, `<text x="%.4f" y="%.4f" font-size="0.6" transform="scale(1 -1) translate(0 %.4f)">%d</text>`+"\n",
				c.X+0.2, -c.Y, 2*c.Y, i)
		}
	}
	for _, extra := range opts.Extra {
		b.WriteString(extra)
		b.WriteString("\n")
	}
	b.WriteString("</g>\n</svg>\n")
	return b.String()
}

// Line returns an SVG fragment for a line segment in world coordinates,
// usable in SVGOptions.Extra.
func Line(a, b geom.Vec, color string) string {
	return fmt.Sprintf(`<line x1="%.4f" y1="%.4f" x2="%.4f" y2="%.4f" stroke="%s" stroke-width="0.05"/>`,
		a.X, a.Y, b.X, b.Y, color)
}

// Marker returns an SVG fragment for a small cross marker at p.
func Marker(p geom.Vec, color string) string {
	const s = 0.25
	return Line(p.Add(geom.V(-s, -s)), p.Add(geom.V(s, s)), color) +
		Line(p.Add(geom.V(-s, s)), p.Add(geom.V(s, -s)), color)
}

// ASCII renders the configuration on a character grid of the given size
// (cols x rows). Robot discs are drawn with 'o' and their centers with the
// last digit of their index. It is intentionally coarse: a readable sketch
// for terminals and golden tests, not a precise plot.
func ASCII(cfg config.Geometric, cols, rows int) string {
	if cols <= 0 {
		cols = 72
	}
	if rows <= 0 {
		rows = 24
	}
	if len(cfg) == 0 {
		return strings.Repeat(strings.Repeat(".", cols)+"\n", rows)
	}
	min, max := cfg.BoundingBox()
	pad := 0.5
	min = min.Sub(geom.V(pad, pad))
	max = max.Add(geom.V(pad, pad))
	w := max.X - min.X
	h := max.Y - min.Y
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	grid := make([][]byte, rows)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", cols))
	}
	toCell := func(p geom.Vec) (int, int) {
		cx := int((p.X - min.X) / w * float64(cols-1))
		cy := int((max.Y - p.Y) / h * float64(rows-1))
		return cx, cy
	}
	// Disc outlines.
	for _, c := range cfg {
		for _, ang := range angles(24) {
			p := geom.UnitDisc(c).PointAtAngle(ang)
			x, y := toCell(p)
			if x >= 0 && x < cols && y >= 0 && y < rows && grid[y][x] == '.' {
				grid[y][x] = 'o'
			}
		}
	}
	// Centers on top.
	for i, c := range cfg {
		x, y := toCell(c)
		if x >= 0 && x < cols && y >= 0 && y < rows {
			grid[y][x] = byte('0' + i%10)
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func angles(k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = 2 * 3.141592653589793 * float64(i) / float64(k)
	}
	return out
}
