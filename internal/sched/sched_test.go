package sched

import (
	"testing"

	"github.com/fatgather/fatgather/internal/robot"
)

func allStates(n int, s robot.State) []robot.State {
	out := make([]robot.State, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EventLook, EventCompute, EventDone, EventMove, EventStop, EventCollide, EventArrive}
	want := []string{"Look", "Compute", "Done", "Move", "Stop", "Collide", "Arrive"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q want %q", i, k.String(), want[i])
		}
	}
	if EventKind(42).String() == "" {
		t.Fatal("unknown kind should stringify")
	}
}

func TestFairRoundRobin(t *testing.T) {
	f := NewFair()
	candidates := []int{0, 1, 2, 3}
	states := allStates(4, robot.Wait)
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		seen[f.Next(candidates, states)]++
	}
	for id, count := range seen {
		if count != 2 {
			t.Fatalf("fair adversary scheduled robot %d %d times in 8 rounds", id, count)
		}
	}
	act := f.Move(0, 7.5)
	if act.Distance != 7.5 || act.Stop {
		t.Fatalf("fair move = %+v", act)
	}
}

func TestFairSkipsTerminated(t *testing.T) {
	f := NewFair()
	// Only robots 1 and 3 remain.
	candidates := []int{1, 3}
	states := allStates(4, robot.Wait)
	for i := 0; i < 6; i++ {
		got := f.Next(candidates, states)
		if got != 1 && got != 3 {
			t.Fatalf("fair scheduled non-candidate %d", got)
		}
	}
}

func TestRandomAsyncDeterministicPerSeed(t *testing.T) {
	a1 := NewRandomAsync(5)
	a2 := NewRandomAsync(5)
	candidates := []int{0, 1, 2, 3, 4}
	states := allStates(5, robot.Wait)
	for i := 0; i < 50; i++ {
		if a1.Next(candidates, states) != a2.Next(candidates, states) {
			t.Fatal("same seed should give the same schedule")
		}
		m1 := a1.Move(0, 3)
		m2 := a2.Move(0, 3)
		if m1 != m2 {
			t.Fatal("same seed should give the same move actions")
		}
		if m1.Distance < 0 || m1.Distance > 3 {
			t.Fatalf("move distance out of range: %v", m1.Distance)
		}
	}
}

func TestStopHappyAlwaysStops(t *testing.T) {
	a := NewStopHappy(1)
	for i := 0; i < 10; i++ {
		act := a.Move(i, 5)
		if !act.Stop {
			t.Fatal("stop-happy must request a stop")
		}
		if act.Distance != 0 {
			t.Fatal("stop-happy requests minimal progress")
		}
	}
	if got := a.Next([]int{2, 4}, allStates(5, robot.Wait)); got != 2 && got != 4 {
		t.Fatalf("picked non-candidate %d", got)
	}
}

func TestSlowRobotConsistency(t *testing.T) {
	a := NewSlowRobot(3, 0.5)
	first := a.Move(7, 10)
	for i := 0; i < 5; i++ {
		if a.Move(7, 10) != first {
			t.Fatal("a robot's slow/fast designation must not change")
		}
	}
	// Fraction clamping.
	if NewSlowRobot(1, -2).frac != 0 || NewSlowRobot(1, 5).frac != 1 {
		t.Fatal("fraction should be clamped to [0,1]")
	}
}

func TestMoverStarverPrefersIdle(t *testing.T) {
	a := NewMoverStarver(9)
	states := allStates(4, robot.Move)
	states[2] = robot.Wait
	idlePicks := 0
	const rounds = 200
	for i := 0; i < rounds; i++ {
		if a.Next([]int{0, 1, 2, 3}, states) == 2 {
			idlePicks++
		}
	}
	if idlePicks < rounds/2 {
		t.Fatalf("mover-starver picked the idle robot only %d/%d times", idlePicks, rounds)
	}
	act := a.Move(0, 4)
	if act.Distance < 0 || act.Distance > 4 {
		t.Fatalf("move distance out of range: %v", act.Distance)
	}
}

func TestRegistryAndNames(t *testing.T) {
	reg := Registry(1)
	names := Names()
	if len(reg) != len(names) {
		t.Fatalf("registry has %d entries, names %d", len(reg), len(names))
	}
	for _, name := range names {
		ctor, ok := reg[name]
		if !ok {
			t.Fatalf("name %q missing from registry", name)
		}
		adv := ctor()
		if adv.Name() != name {
			t.Fatalf("adversary %q reports name %q", name, adv.Name())
		}
	}
}
