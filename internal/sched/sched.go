package sched

import (
	"fmt"
	"math/rand"

	"github.com/fatgather/fatgather/internal/robot"
)

// DefaultDelta is the default minimum progress distance delta of the liveness
// condition. The robots do not know it.
const DefaultDelta = 0.05

// EventKind enumerates the events of the paper's execution model.
type EventKind int

// Event kinds (Section 2, "Adversary and events").
const (
	EventLook EventKind = iota + 1
	EventCompute
	EventDone
	EventMove
	EventStop
	EventCollide
	EventArrive
)

// String implements fmt.Stringer.
func (e EventKind) String() string {
	switch e {
	case EventLook:
		return "Look"
	case EventCompute:
		return "Compute"
	case EventDone:
		return "Done"
	case EventMove:
		return "Move"
	case EventStop:
		return "Stop"
	case EventCollide:
		return "Collide"
	case EventArrive:
		return "Arrive"
	default:
		return fmt.Sprintf("EventKind(%d)", int(e))
	}
}

// MoveAction is the adversary's ruling for one activation of a moving robot.
type MoveAction struct {
	// Distance is how far the robot advances along its trajectory in this
	// activation. The simulator clamps it to [min(delta, remaining),
	// remaining].
	Distance float64
	// Stop requests a Stop event after advancing, even if the robot has not
	// reached its target.
	Stop bool
}

// Adversary decides the schedule. Implementations own their randomness so
// that runs are reproducible from their seed.
type Adversary interface {
	// Name identifies the strategy in reports.
	Name() string
	// Next picks which robot is activated next from the non-empty candidate
	// list (indices of robots that are not terminated). states[i] is the
	// current state of robot i.
	Next(candidates []int, states []robot.State) int
	// Move rules on one activation of the moving robot id whose remaining
	// distance to target is remaining.
	Move(id int, remaining float64) MoveAction
}

// --- Fair (round-robin, full-speed) adversary ---

// Fair is the benign scheduler: robots are activated round-robin and always
// reach their targets in a single Move activation. It is the "friendliest"
// adversary allowed by the model.
type Fair struct {
	next int
}

// NewFair returns a fair round-robin adversary.
func NewFair() *Fair { return &Fair{} }

// Name implements Adversary.
func (f *Fair) Name() string { return "fair" }

// Next implements Adversary.
func (f *Fair) Next(candidates []int, _ []robot.State) int {
	// Pick the first candidate >= f.next (cyclically) to approximate
	// round-robin over the original indices.
	best := candidates[0]
	found := false
	for _, c := range candidates {
		if c >= f.next {
			best = c
			found = true
			break
		}
	}
	if !found {
		best = candidates[0]
	}
	f.next = best + 1
	return best
}

// Move implements Adversary.
func (f *Fair) Move(_ int, remaining float64) MoveAction {
	return MoveAction{Distance: remaining}
}

// --- Random asynchronous adversary ---

// RandomAsync activates uniformly random robots and lets them progress by a
// random fraction of their remaining distance, randomly stopping them early.
type RandomAsync struct {
	rng      *rand.Rand
	stopProb float64
}

// NewRandomAsync returns a random asynchronous adversary with the given seed.
func NewRandomAsync(seed int64) *RandomAsync {
	return &RandomAsync{rng: rand.New(rand.NewSource(seed)), stopProb: 0.3}
}

// Name implements Adversary.
func (a *RandomAsync) Name() string { return "random-async" }

// Next implements Adversary.
func (a *RandomAsync) Next(candidates []int, _ []robot.State) int {
	return candidates[a.rng.Intn(len(candidates))]
}

// Move implements Adversary.
func (a *RandomAsync) Move(_ int, remaining float64) MoveAction {
	frac := a.rng.Float64()
	return MoveAction{
		Distance: frac * remaining,
		Stop:     a.rng.Float64() < a.stopProb,
	}
}

// --- Stop-happy adversary ---

// StopHappy stalls every mover: each Move activation advances only the
// minimum the liveness condition allows and then stops the robot, maximizing
// the number of Look-Compute-Move cycles needed.
type StopHappy struct {
	rng *rand.Rand
}

// NewStopHappy returns a stop-happy adversary with the given seed.
func NewStopHappy(seed int64) *StopHappy {
	return &StopHappy{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Adversary.
func (a *StopHappy) Name() string { return "stop-happy" }

// Next implements Adversary.
func (a *StopHappy) Next(candidates []int, _ []robot.State) int {
	return candidates[a.rng.Intn(len(candidates))]
}

// Move implements Adversary.
func (a *StopHappy) Move(_ int, _ float64) MoveAction {
	// Distance 0 is clamped up to min(delta, remaining) by the simulator.
	return MoveAction{Distance: 0, Stop: true}
}

// --- Slow-robot adversary ---

// SlowRobot designates a subset of robots as "slow": their moves crawl by the
// minimum progress each activation, while everyone else moves at full speed.
// This realizes the adversarial strategy behind the paper's bad
// configurations of type 1 and 2 (a robot still acting on a stale view while
// the rest of the system has moved on).
type SlowRobot struct {
	rng  *rand.Rand
	slow map[int]bool
	frac float64
}

// NewSlowRobot returns a slow-robot adversary: each robot is independently
// slow with probability frac (clamped to [0,1]).
func NewSlowRobot(seed int64, frac float64) *SlowRobot {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return &SlowRobot{rng: rand.New(rand.NewSource(seed)), slow: make(map[int]bool), frac: frac}
}

// Name implements Adversary.
func (a *SlowRobot) Name() string { return "slow-robot" }

// Next implements Adversary.
func (a *SlowRobot) Next(candidates []int, _ []robot.State) int {
	return candidates[a.rng.Intn(len(candidates))]
}

// Move implements Adversary.
func (a *SlowRobot) Move(id int, remaining float64) MoveAction {
	isSlow, known := a.slow[id]
	if !known {
		isSlow = a.rng.Float64() < a.frac
		a.slow[id] = isSlow
	}
	if isSlow {
		return MoveAction{Distance: 0, Stop: false} // crawl by delta, stay in Move
	}
	return MoveAction{Distance: remaining}
}

// --- Mover-starving adversary ---

// MoverStarver prefers to activate robots that are NOT currently moving,
// letting movers linger in the Move state on stale views for as long as the
// liveness condition allows — the scheduling pattern behind the paper's bad
// configurations.
type MoverStarver struct {
	rng *rand.Rand
}

// NewMoverStarver returns a mover-starving adversary with the given seed.
func NewMoverStarver(seed int64) *MoverStarver {
	return &MoverStarver{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Adversary.
func (a *MoverStarver) Name() string { return "mover-starver" }

// Next implements Adversary.
func (a *MoverStarver) Next(candidates []int, states []robot.State) int {
	var idle []int
	for _, c := range candidates {
		if states[c] != robot.Move {
			idle = append(idle, c)
		}
	}
	// Mostly pick idle robots, but occasionally (1 in 8) advance a mover so
	// that the liveness condition ("every robot takes infinitely many steps")
	// is respected.
	if len(idle) > 0 && a.rng.Intn(8) != 0 {
		return idle[a.rng.Intn(len(idle))]
	}
	return candidates[a.rng.Intn(len(candidates))]
}

// Move implements Adversary.
func (a *MoverStarver) Move(_ int, remaining float64) MoveAction {
	if a.rng.Intn(4) == 0 {
		return MoveAction{Distance: remaining}
	}
	return MoveAction{Distance: 0, Stop: false}
}

// Registry returns the named adversary constructors available to the CLI and
// the experiment harness, keyed by name.
func Registry(seed int64) map[string]func() Adversary {
	return map[string]func() Adversary{
		"fair":          func() Adversary { return NewFair() },
		"random-async":  func() Adversary { return NewRandomAsync(seed) },
		"stop-happy":    func() Adversary { return NewStopHappy(seed) },
		"slow-robot":    func() Adversary { return NewSlowRobot(seed, 0.25) },
		"mover-starver": func() Adversary { return NewMoverStarver(seed) },
	}
}

// Names returns the registry keys in a stable order.
func Names() []string {
	return []string{"fair", "random-async", "stop-happy", "slow-robot", "mover-starver"}
}

// Compile-time interface checks.
var (
	_ Adversary = (*Fair)(nil)
	_ Adversary = (*RandomAsync)(nil)
	_ Adversary = (*StopHappy)(nil)
	_ Adversary = (*SlowRobot)(nil)
	_ Adversary = (*MoverStarver)(nil)
)
