// Package sched models the asynchronous adversary of the paper (Section 2):
// an omniscient scheduler that decides which robot takes its next step, how
// far moving robots progress before being stopped, and thereby which robots
// collide. The only restrictions are the paper's liveness conditions: every
// robot is scheduled infinitely often, and a moving robot always covers at
// least min(delta, distance-to-target) before it can be stopped.
//
// This package holds the event-model vocabulary (EventKind, MoveAction,
// DefaultDelta) and the legacy state-only scheduling policies (fair,
// random-async, stop-happy, slow-robot, mover-starver). The simulator itself
// schedules through the richer internal/adversary.Strategy interface; legacy
// policies participate byte-identically via adversary.Wrap, and the
// environment-aware strategies and fault decorators live in
// internal/adversary.
package sched
