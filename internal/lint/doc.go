// Package lint is gatherlint's engine: the static analyzers that enforce the
// repository's determinism contract, plus the loading and reporting machinery
// that runs them over type-checked packages.
//
// The suite (Analyzers) encodes invariants that ARCHITECTURE.md states in
// prose and that the runtime test suite can only verify after the fact, when
// a pinned hash flips:
//
//   - detmaprange: no raw map iteration in determinism-contract packages
//     (collect and sort the keys, the Store.Keys idiom).
//   - nondetsource: no wall clock, environment or global math/rand reads in
//     result-producing paths; randomness flows from seeded *rand.Rand values
//     and timestamps from injected clocks.
//   - floateq: no exact float ==/!= in geometry/simulation predicates outside
//     approved exact helpers; use the Eps tolerance predicates.
//   - publishdiscipline: all cross-process file publication in internal/sweep
//     goes through the audited temp+hard-link/rename helpers.
//   - errclose: no discarded Close/Sync errors on store/lease write paths.
//
// Exemptions are explicit and reviewed: a "//gatherlint:ignore <analyzer>
// <reason>" comment on (or directly above) the flagged line suppresses a
// finding, and a directive without a reason suppresses nothing.
//
// Packages are loaded through the go command (`go list -deps -export`) and
// type-checked against compiler export data, so the engine needs no
// dependencies outside the standard library; the analyzer API itself is the
// x/tools-compatible subset in internal/lint/analysis. Command gatherlint is
// the CLI front end, and scripts/lint.sh the one-stop entry point CI uses.
package lint
