package lint

import (
	"go/ast"

	"github.com/fatgather/fatgather/internal/lint/analysis"
)

// PublishDiscipline flags direct os.Rename/os.Link/os.WriteFile calls in the
// sweep package outside the blessed atomic-publish helpers.
//
// Everything a sweep worker makes visible to its peers — lease files,
// adaptive-state records, compacted stores — must appear atomically and
// complete, or a concurrent reader can observe a torn file, judge it corrupt
// and re-run (or worse, reclaim) work. The repo's discipline is write-to-
// private-temp then hard-link (first publication; fails EEXIST so exactly one
// contender wins) or rename (replacement), and it lives in a small set of
// audited helpers. Any new os-level publish call belongs inside one of them,
// or in a new helper added to publishAllowlist during review.
var PublishDiscipline = &analysis.Analyzer{
	Name: "publishdiscipline",
	Doc:  "flag raw file publication in internal/sweep outside the audited temp+link/rename helpers",
	Run:  runPublishDiscipline,
}

// publishPackages are the import-path suffixes PublishDiscipline applies to.
var publishPackages = []string{"internal/sweep"}

// publishAllowlist names the audited publish helpers: Store.rewrite
// (compaction), adaptivePublisher.publish (adaptive-state records), and the
// lease quartet lease.create/renew plus leaseManager.claim (reclaim shuffles
// a stale lease aside and back atomically).
var publishAllowlist = map[string]bool{
	"rewrite": true,
	"publish": true,
	"create":  true,
	"renew":   true,
	"claim":   true,
}

// publishCalls are the os package functions that make bytes visible at a
// path.
var publishCalls = map[string]bool{
	"Rename": true, "Link": true, "WriteFile": true,
}

func runPublishDiscipline(pass *analysis.Pass) error {
	if !pkgMatchesAny(pass.Pkg.Path(), publishPackages) {
		return nil
	}
	for _, f := range pass.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !publishCalls[fn.Name()] {
				return true
			}
			if publishAllowlist[enclosingFuncName(file, call.Pos())] {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct os.%s in internal/sweep: peers may observe a torn file; publish through the temp+link/rename helpers (lease.create/renew, adaptivePublisher.publish, Store.rewrite)", fn.Name())
			return true
		})
	}
	return nil
}
