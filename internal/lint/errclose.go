package lint

import (
	"go/ast"
	"go/types"

	"github.com/fatgather/fatgather/internal/lint/analysis"
)

// ErrClose flags discarded errors from Close/Sync on files (and on the sweep
// Store, which owns one) in the sweep package.
//
// The store and lease layers are write paths whose durability the resume
// protocol depends on: a swallowed Close error after appending records means
// a worker can report a cell checkpointed that never reached disk, and the
// next resume silently re-runs (or a peer silently trusts) a torn store. A
// bare `f.Close()` statement or `defer f.Close()` discards that error;
// capture it, or — on read-only paths where the error provably cannot lose
// data — acknowledge the discard explicitly with `_ = f.Close()` or a
// //gatherlint:ignore errclose directive naming the reason.
var ErrClose = &analysis.Analyzer{
	Name: "errclose",
	Doc:  "flag discarded Close/Sync errors on files and stores in internal/sweep",
	Run:  runErrClose,
}

// errClosePackages are the import-path suffixes ErrClose applies to.
var errClosePackages = []string{"internal/sweep"}

func runErrClose(pass *analysis.Pass) error {
	if !pkgMatchesAny(pass.Pkg.Path(), errClosePackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := ""
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
				kind = "discarded"
			case *ast.DeferStmt:
				call = stmt.Call
				kind = "deferred and discarded"
			case *ast.GoStmt:
				call = stmt.Call
				kind = "discarded"
			default:
				return true
			}
			if call == nil {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") || len(call.Args) != 0 {
				return true
			}
			recv := pass.TypesInfo.Types[sel.X].Type
			if recv == nil || (!isOSFile(recv) && !isSweepStore(recv)) {
				return true
			}
			// Only flag calls that actually return an error to discard.
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Results().Len() == 0 {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"%s error from %s on a store/lease write path; capture it (or `_ = x.%s()` / //gatherlint:ignore errclose <reason> on read-only paths)", kind, sel.Sel.Name, sel.Sel.Name)
			return true
		})
	}
	return nil
}

// isSweepStore reports whether t is the sweep package's Store type (or a
// pointer to it) — closing a written Store discards the same fsync/close
// error class as closing its underlying file.
func isSweepStore(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && pkgMatchesAny(obj.Pkg().Path(), errClosePackages) && obj.Name() == "Store"
}
