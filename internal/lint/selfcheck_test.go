package lint_test

import (
	"os/exec"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/lint"
)

// moduleRoot locates the module directory so the self-check runs over the
// whole tree regardless of the test's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// The repository must stay gatherlint-clean: every invariant the suite
// encodes holds on the tree that ships it. A finding here means either a
// real determinism hazard or a missing (reasoned) directive.
func TestRepositoryIsGatherlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// The loader must see every determinism-contract package: a rename that
// silently dropped one out of the watch set would turn the suite into a
// no-op without failing anything.
func TestWatchedPackagesExist(t *testing.T) {
	pkgs, err := lint.Load(moduleRoot(t), "./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, p := range pkgs {
		have[p.Path] = true
	}
	for _, want := range []string{
		"github.com/fatgather/fatgather/internal/sim",
		"github.com/fatgather/fatgather/internal/engine",
		"github.com/fatgather/fatgather/internal/sweep",
		"github.com/fatgather/fatgather/internal/geom",
		"github.com/fatgather/fatgather/internal/adversary",
		"github.com/fatgather/fatgather/internal/metrics",
		"github.com/fatgather/fatgather/internal/experiments",
		"github.com/fatgather/fatgather/internal/obs",
	} {
		if !have[want] {
			t.Errorf("determinism-contract package %s not loaded", want)
		}
	}
}
