package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/lint"
	"github.com/fatgather/fatgather/internal/lint/analysis"
)

// applyToSource type-checks one synthetic file as the package importPath and
// runs the analyzers over it.
func applyToSource(t *testing.T, importPath, src string, analyzers []*analysis.Analyzer) []lint.Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	files, err := lint.ParseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Export data is resolved from this test's directory (any module dir
	// works for stdlib imports); the temp dir itself is outside the module.
	exports, err := lint.ExportData(".", []string{"sort"})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.CheckFixture(fset, importPath, dir, files, exports)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Apply(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// A reasonless directive must not suppress the underlying finding, and must
// itself be reported: exemptions without justification are not exemptions.
func TestReasonlessDirectiveDoesNotSuppress(t *testing.T) {
	src := `package sim

func count(m map[string]int) int {
	n := 0
	//gatherlint:ignore detmaprange
	for range m {
		n++
	}
	return n
}
`
	findings := applyToSource(t, "tmp/internal/sim", src, []*analysis.Analyzer{lint.DetMapRange})
	var gotRange, gotDirective bool
	for _, f := range findings {
		switch {
		case f.Analyzer == "detmaprange" && strings.Contains(f.Message, "range over map"):
			gotRange = true
		case f.Analyzer == "directive" && strings.Contains(f.Message, "reason"):
			gotDirective = true
		}
	}
	if !gotRange {
		t.Errorf("reasonless directive suppressed the finding; got %v", findings)
	}
	if !gotDirective {
		t.Errorf("missing malformed-directive finding; got %v", findings)
	}
}

// A directive naming a different analyzer leaves the finding alone.
func TestDirectiveIsPerAnalyzer(t *testing.T) {
	src := `package sim

func count(m map[string]int) int {
	n := 0
	//gatherlint:ignore floateq wrong analyzer on purpose
	for range m {
		n++
	}
	return n
}
`
	findings := applyToSource(t, "tmp/internal/sim", src, []*analysis.Analyzer{lint.DetMapRange})
	if len(findings) != 1 || findings[0].Analyzer != "detmaprange" {
		t.Errorf("want exactly the detmaprange finding, got %v", findings)
	}
}

// "all" exempts every analyzer on the line.
func TestDirectiveAll(t *testing.T) {
	src := `package sim

func count(m map[string]int) int {
	n := 0
	//gatherlint:ignore all fixture exercising the catch-all
	for range m {
		n++
	}
	return n
}
`
	findings := applyToSource(t, "tmp/internal/sim", src, []*analysis.Analyzer{lint.DetMapRange})
	if len(findings) != 0 {
		t.Errorf("want no findings, got %v", findings)
	}
}
