package lint

import (
	"go/ast"
	"go/types"

	"github.com/fatgather/fatgather/internal/lint/analysis"
)

// NonDetSource flags calls that read a nondeterministic source — the wall
// clock, the process environment, or math/rand's implicitly seeded global
// generator — in determinism-contract packages.
//
// Every random draw in a result-producing path must come from a seeded
// *rand.Rand derived from the cell's coordinates (engine.DeriveSeed), and
// every timestamp from an injected clock (the lease layer's `now` field is
// the pattern). rand.New/rand.NewSource and friends are therefore allowed —
// they construct seeded generators — while the package-level draws
// (rand.Intn, rand.Float64, rand.Perm, ...) and time.Now/Since/Until and
// os.Getenv/LookupEnv/Environ are flagged. Only calls are detected: storing
// time.Now itself into an injectable clock field is exactly the approved
// remediation. Wall-clock telemetry that never feeds a pinned result (worker
// Elapsed, lease heartbeats) carries //gatherlint:ignore nondetsource
// directives naming that justification.
var NonDetSource = &analysis.Analyzer{
	Name: "nondetsource",
	Doc:  "flag wall-clock, environment and global math/rand reads in determinism-contract packages",
	Run:  runNonDetSource,
}

// seededConstructors are the math/rand and math/rand/v2 package-level
// functions that build explicitly seeded generators rather than drawing from
// the global one.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNonDetSource(pass *analysis.Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	// internal/obs is the one watched package allowed to read the wall clock
	// wholesale: timestamps and uptimes are telemetry's purpose, and the
	// one-way contract (enforced by obsread) guarantees none of those reads
	// can flow back into results. The scope is exactly the obs package —
	// packages that *use* obs stay fully watched.
	if pkgHasSuffix(pass.Pkg.Path(), "internal/obs") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(),
						"call to time.%s reads the wall clock in a determinism-contract package; inject a clock (cf. leaseManager.now) or //gatherlint:ignore nondetsource <reason>", fn.Name())
				}
			case "os":
				switch fn.Name() {
				case "Getenv", "LookupEnv", "Environ":
					pass.Reportf(call.Pos(),
						"call to os.%s reads the process environment in a determinism-contract package; thread configuration through explicit options", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"call to %s.%s draws from the global generator; use a seeded *rand.Rand (engine.DeriveSeed) instead", pkgBase(fn.Pkg().Path()), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

func pkgBase(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}
