package lint

import (
	"go/ast"

	"github.com/fatgather/fatgather/internal/lint/analysis"
)

// ObsRead enforces the one-way telemetry contract of internal/obs: packages
// under the determinism contract may WRITE telemetry (create instruments,
// increment counters, observe durations, publish progress) but never READ it
// back. A read — a counter value, a registry snapshot, the progress state —
// from a result-producing package is a channel through which telemetry could
// steer scheduling or results, silently breaking the pinned determinism
// hashes the moment someone branches on it. The read side (snapshots,
// Prometheus rendering, the HTTP handler) belongs to cmd/ binaries and the
// public fatgather package, which sit outside the contract.
//
// The analyzer is deny-by-default: any call that resolves to internal/obs is
// flagged unless its name is on the write-side allowlist below, so a newly
// added obs API is read-side until explicitly classified.
var ObsRead = &analysis.Analyzer{
	Name: "obsread",
	Doc:  "flag reads of the internal/obs telemetry registry in determinism-contract packages (telemetry is write-only there)",
	Run:  runObsRead,
}

// obsWriteAPI is the write-side surface of internal/obs — the only obs
// identifiers a determinism-contract package may call. Everything else
// (Value, Snapshot, ProgressSnapshot, WriteJSON, WritePrometheus, DumpJSON,
// Handler, SetDefaultOutput, ...) is the read/serving side.
var obsWriteAPI = map[string]bool{
	// Instrument constructors and labels (package-level helpers, plus the
	// get-or-create Registry methods of the same names).
	"NewCounter": true, "NewGauge": true, "NewHistogram": true, "L": true,
	"NewRegistry": true, "NewLogger": true,
	"Counter": true, "Gauge": true, "Histogram": true,
	// Instrument write methods.
	"Inc": true, "Add": true, "Set": true, "Observe": true,
	// Serialized logging.
	"Warnf": true, "Infof": true,
	// Sweep progress publication.
	"SweepBegin": true, "SweepEnd": true, "SweepGroups": true,
	"SweepGroupClaimed": true, "SweepGroupDone": true,
	"SweepLeaseReclaimed": true, "SweepCells": true, "SweepAdaptive": true,
}

func runObsRead(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	// internal/obs itself is exempt: the registry's own read side (snapshot
	// and rendering code) lives there by design.
	if !isDeterministicPkg(path) || pkgHasSuffix(path, "internal/obs") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if !pkgHasSuffix(fn.Pkg().Path(), "internal/obs") {
				return true
			}
			if obsWriteAPI[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to obs read API %s in a determinism-contract package violates the one-way telemetry contract (results must not depend on telemetry); move the read to a cmd/ or serving layer", fn.Name())
			return true
		})
	}
	return nil
}
