package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name, a doc string explaining the
// invariant it enforces, and a Run function applied to one type-checked
// package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //gatherlint:ignore directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by gatherlint's help.
	// The first line is the summary.
	Doc string
	// Run applies the check to a package, reporting findings through
	// Pass.Report/Reportf. It returns an error only for internal failures
	// (a finding is never an error).
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run invocation.
// The fields mirror the subset of golang.org/x/tools/go/analysis.Pass that
// the gatherlint suite needs.
type Pass struct {
	// Analyzer is the analyzer being applied.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type and object resolution for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
