// Package analysis is a minimal, dependency-free stand-in for the
// golang.org/x/tools/go/analysis framework: an Analyzer couples a named
// invariant with a Run function over one type-checked package (a Pass), and
// findings are reported as Diagnostics.
//
// The repository builds fully offline, so the real x/tools module cannot be
// pinned in go.mod; this package mirrors the subset of its API that the
// gatherlint suite uses (Analyzer, Pass, Diagnostic, Reportf) with the same
// field names and semantics. If the x/tools dependency ever becomes
// available, porting the suite is mechanical: swap the import path and
// change each Run's return type from error to (interface{}, error).
package analysis
