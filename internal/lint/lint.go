package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/fatgather/fatgather/internal/lint/analysis"
)

// deterministicPackages lists the import-path suffixes of the packages under
// the determinism contract (ARCHITECTURE.md): everything that contributes to
// pinned trace hashes or sweep tables. detmaprange and nondetsource apply to
// all of them; the narrower analyzers name their own subsets below.
var deterministicPackages = []string{
	"internal/sim",
	"internal/engine",
	"internal/sweep",
	"internal/geom",
	"internal/geom/incr",
	"internal/adversary",
	"internal/metrics",
	"internal/experiments",
	// internal/obs is under the contract for the generic analyzers — its
	// snapshots must render deterministically (collect-then-sort map walks,
	// no float equality) — but is exempted by name from nondetsource (reading
	// the wall clock is its job; see runNonDetSource) and from obsread (it
	// hosts the read side; see runObsRead).
	"internal/obs",
}

// pkgHasSuffix reports whether a package import path ends in the given
// slash-separated suffix ("a/b/internal/sim" and "internal/sim" both match
// "internal/sim"; "internal/simx" does not). Fixture packages under
// testdata/src get paths like "detmaprange/internal/sim", which is what makes
// the same analyzers testable against synthetic trees.
func pkgHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pkgMatchesAny reports whether the import path ends in any of the suffixes.
func pkgMatchesAny(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// isDeterministicPkg reports whether the package is under the determinism
// contract.
func isDeterministicPkg(path string) bool {
	return pkgMatchesAny(path, deterministicPackages)
}

// Analyzers returns the gatherlint suite in stable (reporting) order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetMapRange,
		NonDetSource,
		FloatEq,
		PublishDiscipline,
		ErrClose,
		ObsRead,
	}
}

// Finding is one rendered diagnostic: which analyzer fired, where, and why.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Apply runs the analyzers over one package and returns the findings that
// survive //gatherlint:ignore directives, plus a finding for every malformed
// directive (a directive without a reason suppresses nothing: the contract is
// that every exemption documents why it is safe).
func Apply(pkg *Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	dirs := directivesFor(pkg)
	var out []Finding
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if dirs.suppresses(pos, a.Name) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	out = append(out, dirs.malformed...)
	return out, nil
}

// Run applies the analyzers to every package and returns all surviving
// findings sorted by file position.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var all []Finding
	for _, pkg := range pkgs {
		fs, err := Apply(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// ---- ignore directives ----

// directivePrefix introduces an exemption comment:
//
//	//gatherlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or on the line directly above it. The reason is
// mandatory; "all" exempts every analyzer.
const directivePrefix = "//gatherlint:ignore"

// directiveIndex records, per file and line, which analyzers are exempted.
type directiveIndex struct {
	// byLine maps file -> line -> exempted analyzer names (or "all").
	byLine    map[string]map[int][]string
	malformed []Finding
}

func directivesFor(pkg *Package) *directiveIndex {
	idx := &directiveIndex{byLine: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					idx.malformed = append(idx.malformed, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "gatherlint:ignore needs an analyzer list and a reason: //gatherlint:ignore <analyzer>[,<analyzer>] <why this is safe>",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				m := idx.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					idx.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], names...)
			}
		}
	}
	return idx
}

// suppresses reports whether a directive on the diagnostic's line, or on the
// line directly above it, exempts the analyzer.
func (idx *directiveIndex) suppresses(pos token.Position, analyzer string) bool {
	m := idx.byLine[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range m[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// ---- shared AST/type helpers ----

// calleeFunc resolves a call expression to the *types.Func it invokes, or nil
// for calls through non-function objects (conversions, function-typed
// variables, built-ins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgLevelFunc reports whether fn is the package-level function pkgPath.name
// (methods never match).
func isPkgLevelFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// enclosingFuncName returns the name of the function declaration containing
// pos ("" at file scope). Method names are reported bare ("publish", not
// "(*adaptivePublisher).publish"), which is what the per-function allowlists
// key on; function literals keep their enclosing declaration's name, so an
// allowlist entry covers a helper including its closures.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd.Name.Name
		}
	}
	return ""
}

// innermostFuncBody returns the body of the innermost function (declaration
// or literal) whose extent contains pos, or nil at file scope.
func innermostFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		var body *ast.BlockStmt
		switch d := n.(type) {
		case *ast.FuncDecl:
			body = d.Body
		case *ast.FuncLit:
			body = d.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			if best == nil || (body.Pos() >= best.Pos() && body.End() <= best.End()) {
				best = body
			}
		}
		return true
	})
	return best
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isOSFile reports whether t is os.File or *os.File.
func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}
