// Package engine is a floateq fixture outside the analyzer's package set
// (floateq watches geom and sim only): nothing here may be flagged.
package engine

func rateEq(a, b float64) bool {
	return a == b
}
