// Package geom is a floateq fixture: its path ends in internal/geom, so
// exact float comparisons outside the allowlist are flagged.
package geom

type vec struct{ X, Y float64 }

type scalar float64

func bad(a, b float64) bool {
	return a == b // want "exact float == comparison"
}

func badNeq(a, b vec) bool {
	return a.X != b.X // want "exact float != comparison"
}

func badNamed(a, b scalar) bool {
	return a == b // want "exact float == comparison"
}

// zeroGuard compares against the exactly representable zero: allowed.
func zeroGuard(den float64) bool {
	return den == 0
}

// lexLess is allowlisted: a strict weak order must compare exactly.
func lexLess(a, b vec) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

func intEq(a, b int) bool {
	return a == b
}

func acknowledged(a, b float64) bool {
	//gatherlint:ignore floateq bit-identity check on purpose
	return a == b
}
