// Package sweep is a publishdiscipline fixture: its path ends in
// internal/sweep, so raw publication calls outside the blessed helpers are
// flagged.
package sweep

import "os"

func rogueWrite(path string) error {
	return os.WriteFile(path, []byte("x"), 0o644) // want "direct os.WriteFile"
}

func rogueRename(a, b string) error {
	return os.Rename(a, b) // want "direct os.Rename"
}

func rogueLink(a, b string) error {
	return os.Link(a, b) // want "direct os.Link"
}

// publish is a blessed helper name: the audited temp+link/rename sequence
// lives in functions like this one.
func publish(tmp, path string) error {
	if err := os.WriteFile(tmp, []byte("x"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// create is blessed too, including its closures.
func create(tmp, path string) error {
	link := func() error { return os.Link(tmp, path) }
	return link()
}

// reads never publish: not flagged.
func reads(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func acknowledged(path string) error {
	//gatherlint:ignore publishdiscipline private scratch file, never visible to peers
	return os.WriteFile(path, nil, 0o600)
}
