// Package sweep is an errclose fixture: its path ends in internal/sweep, so
// discarded Close/Sync errors on files and stores are flagged.
package sweep

import "os"

// Store mirrors the real sweep.Store shape: it owns a file and its Close
// returns that file's close error.
type Store struct{ f *os.File }

// Close forwards the file's close error: capturing the result is fine.
func (s *Store) Close() error { return s.f.Close() }

func bare(f *os.File) {
	f.Close() // want "discarded error from Close"
}

func deferred(f *os.File) {
	defer f.Close() // want "deferred and discarded error from Close"
}

func sync(f *os.File) {
	f.Sync() // want "discarded error from Sync"
}

func storeDiscard(s *Store) {
	defer s.Close() // want "deferred and discarded error from Close"
}

func acknowledged(f *os.File) {
	_ = f.Close()
}

func captured(f *os.File) error {
	return f.Close()
}

// quiet has an error-free Close: nothing to discard, never flagged.
type quiet struct{}

func (quiet) Close() {}

func quietUse(q quiet) {
	q.Close()
}

func readPath(f *os.File) {
	//gatherlint:ignore errclose read-only scan, a close error cannot lose data
	defer f.Close()
}
