// Package sim is an obsread fixture: its path ends in internal/sim, so the
// one-way telemetry contract applies — it may write to the real internal/obs
// registry but never read it back.
package sim

import (
	"io"

	"github.com/fatgather/fatgather/internal/obs"
)

var (
	events   = obs.NewCounter("fixture_events_total", obs.L("kind", "step"))
	inflight = obs.NewGauge("fixture_inflight")
	latency  = obs.NewHistogram("fixture_seconds")
)

// write exercises the approved direction: instruments only absorb values.
func write(seconds float64) {
	events.Inc()
	events.Add(3)
	inflight.Set(1)
	inflight.Add(-1)
	latency.Observe(seconds)
	obs.Warnf("sim", "corrupt record %d skipped", 7)
	obs.SweepBegin("E5", "w1")
	obs.SweepGroups(10)
	obs.SweepGroupClaimed(false)
	obs.SweepCells(4, 2)
	obs.SweepAdaptive("g", 3, 0.5, false)
	obs.SweepGroupDone()
	obs.SweepEnd()
}

// read violates the one-way contract in every clause: each call pulls
// telemetry state back into a result-producing package.
func read(w io.Writer) int64 {
	v := events.Value()                // want "obs read API Value"
	_ = obs.Default.Snapshot()         // want "obs read API Snapshot"
	_ = obs.ProgressSnapshot()         // want "obs read API ProgressSnapshot"
	_ = obs.Default.WritePrometheus(w) // want "obs read API WritePrometheus"
	_ = obs.Handler()                  // want "obs read API Handler"
	return v
}

// steering documents the directive escape hatch (and the hazard the analyzer
// exists for: branching on telemetry).
func steering() bool {
	//gatherlint:ignore obsread fixture documents the directive escape hatch
	return inflight.Value() > 0
}
