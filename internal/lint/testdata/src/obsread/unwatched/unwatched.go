// Package unwatched sits outside the determinism contract: serving layers
// read telemetry freely, so obsread must stay quiet here.
package unwatched

import (
	"io"

	"github.com/fatgather/fatgather/internal/obs"
)

func dump(w io.Writer) error {
	_ = obs.ProgressSnapshot()
	_ = obs.Handler()
	return obs.Default.WritePrometheus(w)
}
