// Package engine is a nondetsource fixture: its path ends in
// internal/engine, so it is treated as a determinism-contract package.
package engine

import (
	"math/rand"
	"os"
	"time"
)

func clock() int64 {
	t := time.Now()   // want "time.Now reads the wall clock"
	_ = time.Since(t) // want "time.Since reads the wall clock"
	return t.UnixNano()
}

func env() string {
	return os.Getenv("HOME") // want "os.Getenv reads the process environment"
}

func global() float64 {
	return rand.Float64() // want "rand.Float64 draws from the global generator"
}

func globalPerm(n int) []int {
	return rand.Perm(n) // want "rand.Perm draws from the global generator"
}

// seeded is the approved pattern: an explicit source, seeded from the cell.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// injected stores the clock function without calling it: the injection-point
// pattern (cf. leaseManager.now) is the remediation, not a violation.
type ticker struct{ now func() time.Time }

func injected() ticker {
	return ticker{now: time.Now}
}

// telemetry documents a wall-clock read that never feeds a pinned result.
func telemetry() time.Time {
	//gatherlint:ignore nondetsource wall-clock telemetry only, never folded into results
	return time.Now()
}
