// Package unwatched is a detmaprange fixture outside the determinism
// contract: nothing here may be flagged.
package unwatched

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
