// Package sim is a detmaprange fixture: its path ends in internal/sim, so it
// is treated as a determinism-contract package.
package sim

import (
	"slices"
	"sort"
)

// bad iterates a map directly; the sum is order-insensitive but the analyzer
// cannot know that, and the fix (sorted keys or a directive) is cheap.
func bad(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

// badKeys leaks map order into a slice: the canonical determinism bug.
func badKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	return keys
}

// harvested is the blessed idiom: collect, then sort before use.
func harvested(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// harvestedSlices blesses the slices.Sort spelling too.
func harvestedSlices(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// overSlice ranges over a slice: never flagged.
func overSlice(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}

// acknowledged documents why the iteration is safe.
func acknowledged(m map[string]int) int {
	n := 0
	//gatherlint:ignore detmaprange pure count, order cannot leak
	for range m {
		n++
	}
	return n
}
