package lint

import (
	"go/ast"
	"go/types"

	"github.com/fatgather/fatgather/internal/lint/analysis"
)

// DetMapRange flags `range` over a map in determinism-contract packages.
//
// Go map iteration order is deliberately randomized, so any map range whose
// body's effect depends on visit order (appending to a slice, writing output,
// picking a "first" element) silently breaks byte-identical results. The
// analyzer accepts the one blessed idiom — harvest the keys and sort before
// using them — by exempting a map range whose enclosing function sorts after
// the loop (sort.Strings/Ints/Slice/..., slices.Sort*), the pattern used by
// Store.Keys and Crash.CrashedIDs. Anything else must either iterate a sorted
// key slice instead or carry a //gatherlint:ignore detmaprange directive with
// a reason (e.g. a commutative accumulation).
var DetMapRange = &analysis.Analyzer{
	Name: "detmaprange",
	Doc:  "flag map iteration in determinism-contract packages unless keys are collected and sorted",
	Run:  runDetMapRange,
}

// sortNeutralizers are the sort entry points that bless a preceding
// key-harvest loop.
var sortNeutralizers = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Strings": true, "Ints": true,
		"Float64s": true, "Slice": true, "SliceStable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func runDetMapRange(pass *analysis.Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sortedAfter(pass, file, rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over map: iteration order is randomized; collect and sort the keys first (or //gatherlint:ignore detmaprange <reason>)")
			return true
		})
	}
	return nil
}

// sortedAfter reports whether the innermost function containing the range
// statement calls a sort function after the loop — the collect-then-sort
// idiom that neutralizes map iteration order.
func sortedAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) bool {
	body := innermostFuncBody(file, rng.Pos())
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if names, ok := sortNeutralizers[fn.Pkg().Path()]; ok && names[fn.Name()] {
			found = true
			return false
		}
		return true
	})
	return found
}
