package lint

import (
	"go/ast"
	"go/constant"
	"go/token"

	"github.com/fatgather/fatgather/internal/lint/analysis"
)

// FloatEq flags == and != on floating-point operands in the geometry and
// simulation packages.
//
// Exact float equality is almost always a robustness bug in geometric code:
// the predicates are specified with the Eps tolerance (Vec.Eq, EqWithin,
// Orientation), and an exact comparison that "works" on one platform's
// rounding can flip on another, breaking the byte-identical contract across
// toolchains. Two shapes are exempt: comparison against an exact zero
// constant (a representation guard, e.g. `den == 0`, is deterministic and
// intentional), and comparisons inside the floatEqAllowlist helpers whose
// whole point is exact ordering (lexLess's strict weak order for hull
// sorting must NOT be tolerance-based, or sorting breaks).
var FloatEq = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flag exact float ==/!= outside approved helpers in geometry/simulation packages",
	Run:  runFloatEq,
}

// floatEqPackages are the import-path suffixes FloatEq applies to.
var floatEqPackages = []string{"internal/geom", "internal/sim"}

// floatEqAllowlist names functions whose body may compare floats exactly:
// helpers that implement strict orderings or bit-level identity on purpose.
var floatEqAllowlist = map[string]bool{
	"lexLess": true,
}

func runFloatEq(pass *analysis.Pass) error {
	if !pkgMatchesAny(pass.Pkg.Path(), floatEqPackages) {
		return nil
	}
	for _, f := range pass.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.TypesInfo.Types[bin.X], pass.TypesInfo.Types[bin.Y]
			if xt.Type == nil || yt.Type == nil || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
				return true
			}
			if isExactZero(xt.Value) || isExactZero(yt.Value) {
				return true
			}
			if floatEqAllowlist[enclosingFuncName(file, bin.Pos())] {
				return true
			}
			pass.Reportf(bin.Pos(),
				"exact float %s comparison; use the Eps tolerance helpers (Vec.Eq, EqWithin) or an allowlisted exact helper", bin.Op)
			return true
		})
	}
	return nil
}

// isExactZero reports whether a constant operand is exactly zero.
func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	f := constant.ToFloat(v)
	return f.Kind() == constant.Float && constant.Sign(f) == 0
}
