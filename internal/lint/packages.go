package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (fixture packages use their
	// testdata-relative path).
	Path string
	// Dir is the directory holding the sources.
	Dir string
	// Fset positions Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -e -deps -export -json` in dir and returns the
// decoded package stream. The -export flag makes the go command produce
// (cached) export data for every listed package, which is what lets the
// type checker resolve imports without re-checking the world from source.
func goList(dir string, patterns ...string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportData returns an import-path -> export-data-file map covering the
// given import paths and their transitive dependencies, by asking the go
// command to build (or reuse cached) export data. dir anchors the go
// invocation; any directory inside a module (or GOPATH) works for stdlib
// paths.
func ExportData(dir string, imports []string) (map[string]string, error) {
	if len(imports) == 0 {
		return map[string]string{}, nil
	}
	pkgs, err := goList(dir, imports...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// exportLookup adapts an import-path -> export-file map to the lookup shape
// the stdlib gc importer wants.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// CheckFiles type-checks one package's parsed files, resolving imports
// through the given export-data lookup, and returns the package with a fully
// populated types.Info. Type errors fail the check: gatherlint only analyzes
// trees that compile.
func CheckFiles(fset *token.FileSet, importPath string, files []*ast.File, lookup func(path string) (io.ReadCloser, error)) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-check %s: %v", importPath, err)
	}
	return tpkg, info, nil
}

// ParseDir parses every non-test .go file of one directory (with comments,
// which the directive and fixture machinery needs) in file-name order.
func ParseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: read %s: %v", dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || filepath.Ext(n) != ".go" || isTestFile(n) {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", n, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// CheckFixture type-checks an already-parsed fixture package (linttest's
// loader) against the given export-data map and wraps it as a Package whose
// Path is the fixture's testdata-relative path.
func CheckFixture(fset *token.FileSet, importPath, dir string, files []*ast.File, exports map[string]string) (*Package, error) {
	tpkg, info, err := CheckFiles(fset, importPath, files, exportLookup(exports))
	if err != nil {
		return nil, err
	}
	return &Package{Path: importPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func isTestFile(name string) bool {
	return len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// Load loads and type-checks the packages matched by the go patterns
// (e.g. "./..."), anchored at dir. Only non-test sources are analyzed: the
// determinism contract covers what ships, and tests legitimately use wall
// clocks, environment variables and unseeded randomness.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := exportLookup(exports)
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, p := range listed {
		if p.Standard || p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, perr := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if perr != nil {
				return nil, fmt.Errorf("lint: parse %s: %v", name, perr)
			}
			files = append(files, f)
		}
		tpkg, info, cerr := CheckFiles(fset, p.ImportPath, files, lookup)
		if cerr != nil {
			return nil, cerr
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
