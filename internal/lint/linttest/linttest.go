package linttest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/lint"
	"github.com/fatgather/fatgather/internal/lint/analysis"
)

// wantRe matches one quoted expectation inside a `// want "..."` comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one `// want` entry: a regexp the diagnostic message on that
// line must match.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package rooted at srcRoot (pkgPaths are
// slash-separated paths under it, which double as the fixtures' import
// paths), applies the analyzer, and compares the surviving findings against
// the fixtures' `// want "regexp"` comments: every finding must be wanted and
// every want must fire. Directive suppression (//gatherlint:ignore) is active
// exactly as in a real run, so fixtures can regression-test the escape hatch.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		runOne(t, srcRoot, a, pkgPath)
	}
}

func runOne(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join(srcRoot, filepath.FromSlash(pkgPath))
	fset := token.NewFileSet()
	files, err := lint.ParseDir(fset, dir)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	if len(files) == 0 {
		t.Fatalf("%s: fixture package has no Go files", pkgPath)
	}
	imports := importsOf(files)
	exports, err := lint.ExportData(srcRoot, imports)
	if err != nil {
		t.Fatalf("%s: export data for %v: %v", pkgPath, imports, err)
	}
	pkg, err := lint.CheckFixture(fset, pkgPath, dir, files, exports)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	findings, err := lint.Apply(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	wants := wantsOf(t, fset, files)
	for _, f := range findings {
		if f.Analyzer != a.Name {
			// Directive-misuse findings surface under their own name; a
			// fixture line carrying a malformed directive wants them too.
			if !matchWant(wants, f.Pos, f.Message) {
				t.Errorf("%s: unexpected %s finding: %s", pkgPath, f.Analyzer, f)
			}
			continue
		}
		if !matchWant(wants, f.Pos, f.Message) {
			t.Errorf("%s: unexpected finding: %s", pkgPath, f)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: %s: expected a diagnostic matching %q, got none", pkgPath, key, e.re)
			}
		}
	}
}

// importsOf collects the distinct import paths of the fixture files.
func importsOf(files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	return out
}

// wantsOf indexes the `// want` expectations by file:line.
func wantsOf(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey(pos.Filename, pos.Line)
				for _, q := range wantRe.FindAllString(c.Text[idx+len("// want "):], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

func matchWant(wants map[string][]*expectation, pos token.Position, msg string) bool {
	for _, e := range wants[lineKey(pos.Filename, pos.Line)] {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}
