// Package linttest runs gatherlint analyzers over fixture packages and
// checks their findings against inline `// want "regexp"` comments — a
// dependency-free analogue of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under internal/lint/testdata/src; each fixture package's
// path below that root is also its import path, so a fixture at
// testdata/src/detmaprange/internal/sim exercises exactly the package-suffix
// matching a real internal/sim package would get. Expectations attach to the
// line carrying the comment, and every expectation must be matched by a
// finding (and vice versa) for the test to pass.
package linttest
