package lint_test

import (
	"testing"

	"github.com/fatgather/fatgather/internal/lint"
	"github.com/fatgather/fatgather/internal/lint/linttest"
)

// The fixtures under testdata/src give every analyzer at least one failing
// case (proving it fires), the approved idioms it must stay quiet on, the
// directive escape hatch, and a package outside its watch set.

func TestDetMapRange(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.DetMapRange,
		"detmaprange/internal/sim",
		"detmaprange/unwatched",
	)
}

func TestNonDetSource(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.NonDetSource,
		"nondetsource/internal/engine",
	)
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.FloatEq,
		"floateq/internal/geom",
		"floateq/internal/engine",
	)
}

func TestPublishDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.PublishDiscipline,
		"publishdiscipline/internal/sweep",
	)
}

func TestObsRead(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.ObsRead,
		"obsread/internal/sim",
		"obsread/unwatched",
	)
}

func TestErrClose(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.ErrClose,
		"errclose/internal/sweep",
	)
}

func TestAnalyzerNamesAreUniqueAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing name, doc or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
