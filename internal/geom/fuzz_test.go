package geom

import (
	"math"
	"testing"
)

// fuzzOK filters fuzz inputs down to the numerically meaningful range: the
// predicates are specified for finite coordinates of moderate magnitude (the
// simulator's world is tens of units across).
func fuzzOK(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
			return false
		}
	}
	return true
}

// FuzzSegmentsIntersect checks the structural invariants of the
// segment-segment predicates: swapping the two segments never changes the
// answer, endpoint reversal never changes the answer away from tolerance
// boundaries, and a reported intersection point actually lies on both
// segments (and is never NaN).
func FuzzSegmentsIntersect(f *testing.F) {
	f.Add(0.0, 0.0, 4.0, 0.0, 2.0, -2.0, 2.0, 2.0)    // plain crossing
	f.Add(0.0, 0.0, 4.0, 0.0, 5.0, 0.0, 9.0, 0.0)     // collinear disjoint
	f.Add(0.0, 0.0, 4.0, 0.0, 4.0, 0.0, 8.0, 3.0)     // shared endpoint
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)     // degenerate points
	f.Add(0.0, 0.0, 10.0, 1e-9, 0.0, 1e-9, 10.0, 0.0) // near-parallel sliver

	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, x3, y3, x4, y4 float64) {
		if !fuzzOK(x1, y1, x2, y2, x3, y3, x4, y4) {
			t.Skip()
		}
		p1, p2 := V(x1, y1), V(x2, y2)
		q1, q2 := V(x3, y3), V(x4, y4)

		got := SegmentsIntersect(p1, p2, q1, q2)
		if swapped := SegmentsIntersect(q1, q2, p1, p2); swapped != got {
			t.Fatalf("segment-swap asymmetry: (%v,%v)x(%v,%v): %v vs %v", p1, p2, q1, q2, got, swapped)
		}

		// Endpoint reversal flips the sign of every orientation determinant,
		// so the boolean must be stable whenever the determinants are away
		// from the collinearity tolerance.
		margin := 1e-3 * math.Max(1, math.Max(p1.Dist(p2), q1.Dist(q2)))
		robust := math.Abs(p2.Sub(p1).Cross(q1.Sub(p1))) > margin &&
			math.Abs(p2.Sub(p1).Cross(q2.Sub(p1))) > margin &&
			math.Abs(q2.Sub(q1).Cross(p1.Sub(q1))) > margin &&
			math.Abs(q2.Sub(q1).Cross(p2.Sub(q1))) > margin
		if robust {
			if rev := SegmentsIntersect(p2, p1, q2, q1); rev != got {
				t.Fatalf("endpoint-reversal asymmetry: (%v,%v)x(%v,%v): %v vs %v", p1, p2, q1, q2, got, rev)
			}
		}

		if pt, ok := SegmentIntersection(p1, p2, q1, q2); ok {
			if math.IsNaN(pt.X) || math.IsNaN(pt.Y) {
				t.Fatalf("SegmentIntersection returned NaN point for (%v,%v)x(%v,%v)", p1, p2, q1, q2)
			}
			scale := math.Max(1, math.Max(p1.Dist(p2), q1.Dist(q2)))
			if d := DistancePointSegment(pt, p1, p2); d > 1e-6*scale {
				t.Fatalf("intersection point %v is %.3g away from segment (%v,%v)", pt, d, p1, p2)
			}
			if d := DistancePointSegment(pt, q1, q2); d > 1e-6*scale {
				t.Fatalf("intersection point %v is %.3g away from segment (%v,%v)", pt, d, q1, q2)
			}
		}
	})
}

// FuzzFirstDiscContact checks the motion-blocking predicate used by the
// simulator: the reported contact parameter is finite, within limits, stops
// the mover exactly at tangency (center distance 2r), and never reports a
// contact that would require passing through the other disc first.
func FuzzFirstDiscContact(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 4.0, 0.0, 10.0)      // head-on hit
	f.Add(0.0, 0.0, math.Pi, 4.0, 0.0, 10.0)  // heading away
	f.Add(0.0, 0.0, 0.0, 2.0, 0.0, 10.0)      // already tangent
	f.Add(0.0, 0.0, 0.5, 3.0, 5.0, 100.0)     // oblique
	f.Add(0.0, 0.0, 0.0, 4.0, 1.999999, 50.0) // grazing
	f.Fuzz(func(t *testing.T, px, py, angle, qx, qy, limit float64) {
		if !fuzzOK(px, py, angle, qx, qy, limit) {
			t.Skip()
		}
		limit = math.Abs(limit)
		if limit > 1e4 {
			t.Skip()
		}
		p, q := V(px, py), V(qx, qy)
		sin, cos := math.Sincos(angle)
		u := V(cos, sin)
		const r = UnitRadius
		const contactEps = 1e-7

		tHit, hits := FirstDiscContact(p, u, q, r, limit, contactEps)
		if math.IsNaN(tHit) || math.IsInf(tHit, 0) {
			t.Fatalf("FirstDiscContact(%v,%v,%v) returned non-finite t %v", p, u, q, tHit)
		}
		if tHit < 0 || tHit > limit {
			t.Fatalf("contact parameter %v outside [0, %v]", tHit, limit)
		}
		if !hits {
			return
		}
		startDist := p.Dist(q)
		if startDist <= 2*r+contactEps {
			// Already-touching case: contact is immediate by definition.
			if tHit != 0 {
				t.Fatalf("touching discs must block at t=0, got %v", tHit)
			}
			return
		}
		// At the reported contact the discs are exactly tangent...
		at := p.Add(u.Scale(tHit))
		if d := at.Dist(q); math.Abs(d-2*r) > 1e-6 {
			t.Fatalf("contact at t=%v leaves center distance %v, want %v", tHit, d, 2*r)
		}
		// ... and the discs never overlapped on the way there.
		for _, frac := range []float64{0.25, 0.5, 0.75} {
			mid := p.Add(u.Scale(tHit * frac))
			if d := mid.Dist(q); d < 2*r-1e-6 {
				t.Fatalf("mover overlaps blocker before the reported contact (t=%v, d=%v)", tHit*frac, d)
			}
		}
	})
}

// FuzzDiscPredicates checks symmetry and mutual exclusion of the disc
// tangency/overlap predicates at a shared tolerance.
func FuzzDiscPredicates(f *testing.F) {
	f.Add(0.0, 0.0, 2.0, 0.0, 0.5)
	f.Add(0.0, 0.0, 1.0, 0.0, 1.0)
	f.Add(0.0, 0.0, 5.0, 5.0, 2.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, r float64) {
		if !fuzzOK(ax, ay, bx, by, r) || r <= 0 || r > 1e3 {
			t.Skip()
		}
		a, b := V(ax, ay), V(bx, by)
		const tol = 1e-7
		if DiscsTangent(a, b, r, tol) != DiscsTangent(b, a, r, tol) {
			t.Fatal("DiscsTangent is asymmetric")
		}
		if DiscsOverlap(a, b, r, tol) != DiscsOverlap(b, a, r, tol) {
			t.Fatal("DiscsOverlap is asymmetric")
		}
		if DiscsOverlap(a, b, r, tol) && DiscsTangent(a, b, r, tol) {
			t.Fatalf("discs at distance %v are both overlapping and tangent", a.Dist(b))
		}
	})
}
