package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasicOps(t *testing.T) {
	tests := []struct {
		name string
		got  Vec
		want Vec
	}{
		{"add", V(1, 2).Add(V(3, -1)), V(4, 1)},
		{"sub", V(1, 2).Sub(V(3, -1)), V(-2, 3)},
		{"scale", V(1, 2).Scale(2.5), V(2.5, 5)},
		{"neg", V(1, -2).Neg(), V(-1, 2)},
		{"perp", V(1, 0).Perp(), V(0, 1)},
		{"perpcw", V(1, 0).PerpCW(), V(0, -1)},
		{"lerp-mid", V(0, 0).Lerp(V(2, 4), 0.5), V(1, 2)},
		{"lerp-start", V(3, 7).Lerp(V(2, 4), 0), V(3, 7)},
		{"lerp-end", V(3, 7).Lerp(V(2, 4), 1), V(2, 4)},
		{"midpoint", Midpoint(V(0, 0), V(4, 2)), V(2, 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.EqWithin(tt.want, 1e-12) {
				t.Fatalf("got %v want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVecScalarOps(t *testing.T) {
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"dot", V(1, 2).Dot(V(3, 4)), 11},
		{"cross", V(1, 0).Cross(V(0, 1)), 1},
		{"cross-neg", V(0, 1).Cross(V(1, 0)), -1},
		{"norm", V(3, 4).Norm(), 5},
		{"norm2", V(3, 4).Norm2(), 25},
		{"dist", V(1, 1).Dist(V(4, 5)), 5},
		{"dist2", V(1, 1).Dist2(V(4, 5)), 25},
		{"angle-x", V(1, 0).Angle(), 0},
		{"angle-y", V(0, 1).Angle(), math.Pi / 2},
		{"clamp-lo", Clamp(-1, 0, 1), 0},
		{"clamp-hi", Clamp(2, 0, 1), 1},
		{"clamp-mid", Clamp(0.3, 0, 1), 0.3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !almostEq(tt.got, tt.want, 1e-12) {
				t.Fatalf("got %v want %v", tt.got, tt.want)
			}
		})
	}
}

func TestUnit(t *testing.T) {
	u := V(3, 4).Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Fatalf("unit norm = %v", u.Norm())
	}
	if !V(0, 0).Unit().Eq(V(0, 0)) {
		t.Fatal("unit of zero vector should be zero")
	}
}

func TestRotate(t *testing.T) {
	got := V(1, 0).Rotate(math.Pi / 2)
	if !got.EqWithin(V(0, 1), 1e-12) {
		t.Fatalf("rotate 90: got %v", got)
	}
	got = V(2, 0).RotateAround(V(1, 0), math.Pi)
	if !got.EqWithin(V(0, 0), 1e-12) {
		t.Fatalf("rotate around: got %v", got)
	}
}

func TestCentroid(t *testing.T) {
	if !Centroid(nil).Eq(V(0, 0)) {
		t.Fatal("centroid of empty should be origin")
	}
	c := Centroid([]Vec{V(0, 0), V(2, 0), V(2, 2), V(0, 2)})
	if !c.EqWithin(V(1, 1), 1e-12) {
		t.Fatalf("centroid = %v", c)
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2).IsFinite() {
		t.Fatal("finite vec reported non-finite")
	}
	if V(math.NaN(), 0).IsFinite() {
		t.Fatal("NaN vec reported finite")
	}
	if V(0, math.Inf(1)).IsFinite() {
		t.Fatal("Inf vec reported finite")
	}
}

func TestVecString(t *testing.T) {
	if V(1, 2).String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: rotating by theta then -theta is the identity.
func TestRotateInverseProperty(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) ||
			math.Abs(x) > 1e6 || math.Abs(y) > 1e6 || math.Abs(theta) > 1e3 {
			return true
		}
		v := V(x, y)
		back := v.Rotate(theta).Rotate(-theta)
		return back.EqWithin(v, 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the triangle inequality holds for Dist.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		for _, v := range []float64{ax, ay, bx, by, cx, cy} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return true
			}
		}
		a, b, c := V(ax, ay), V(bx, by), V(cx, cy)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: dot product of perpendicular vectors is zero.
func TestPerpOrthogonalProperty(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.Abs(x) > 1e8 || math.Abs(y) > 1e8 {
			return true
		}
		v := V(x, y)
		return math.Abs(v.Dot(v.Perp())) <= 1e-6*(1+v.Norm2())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
