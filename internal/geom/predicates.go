package geom

import "math"

// Orient is the sign of the orientation predicate for an ordered point
// triple.
type Orient int

// Orientation classes. Collinear is deliberately the zero value so that a
// degenerate triple is the default.
const (
	Collinear        Orient = 0
	CounterClockwise Orient = 1
	Clockwise        Orient = -1
)

// Orientation classifies the ordered triple (a, b, c): CounterClockwise if c
// lies to the left of the directed line a->b, Clockwise if to the right, and
// Collinear if the three points are collinear within tolerance Eps (scaled by
// the magnitude of the involved coordinates for robustness).
func Orientation(a, b, c Vec) Orient {
	cross := b.Sub(a).Cross(c.Sub(a))
	// Scale the tolerance with the extent of the triangle so the predicate is
	// meaningful both near the origin and far from it.
	scale := math.Max(1, math.Max(b.Sub(a).Norm(), c.Sub(a).Norm()))
	tol := Eps * scale
	switch {
	case cross > tol:
		return CounterClockwise
	case cross < -tol:
		return Clockwise
	default:
		return Collinear
	}
}

// CollinearPts reports whether a, b, c lie on a single straight line within
// the default tolerance.
func CollinearPts(a, b, c Vec) bool { return Orientation(a, b, c) == Collinear }

// CollinearWithin reports whether the perpendicular distance from c to the
// infinite line through a and b is at most tol. If a and b coincide it
// reports whether c is within tol of that point.
func CollinearWithin(a, b, c Vec, tol float64) bool {
	return DistancePointLine(c, a, b) <= tol
}

// DistancePointLine returns the perpendicular distance from p to the infinite
// line through a and b. If a == b it returns the distance from p to a.
func DistancePointLine(p, a, b Vec) float64 {
	ab := b.Sub(a)
	n := ab.Norm()
	if n < Eps {
		return p.Dist(a)
	}
	return math.Abs(ab.Cross(p.Sub(a))) / n
}

// DistancePointSegment returns the distance from p to the closed segment
// [a, b].
func DistancePointSegment(p, a, b Vec) float64 {
	return p.Dist(ClosestPointOnSegment(p, a, b))
}

// ClosestPointOnSegment returns the point of the closed segment [a, b] that is
// closest to p.
func ClosestPointOnSegment(p, a, b Vec) Vec {
	ab := b.Sub(a)
	den := ab.Norm2()
	if den < Eps*Eps {
		return a
	}
	t := Clamp(p.Sub(a).Dot(ab)/den, 0, 1)
	return a.Add(ab.Scale(t))
}

// ProjectPointOnLine returns the orthogonal projection of p onto the infinite
// line through a and b. If a == b it returns a.
func ProjectPointOnLine(p, a, b Vec) Vec {
	ab := b.Sub(a)
	den := ab.Norm2()
	if den < Eps*Eps {
		return a
	}
	t := p.Sub(a).Dot(ab) / den
	return a.Add(ab.Scale(t))
}

// Between reports whether point p lies on the closed segment [a, b] within
// the default tolerance.
func Between(a, b, p Vec) bool {
	return DistancePointSegment(p, a, b) <= Eps*math.Max(1, a.Dist(b))
}

// AngleAt returns the interior angle at vertex b of the path a-b-c, in
// radians in [0, pi].
func AngleAt(a, b, c Vec) float64 {
	u := a.Sub(b)
	w := c.Sub(b)
	nu, nw := u.Norm(), w.Norm()
	if nu < Eps || nw < Eps {
		return 0
	}
	cos := Clamp(u.Dot(w)/(nu*nw), -1, 1)
	return math.Acos(cos)
}

// NormalizeAngle maps an angle to the interval (-pi, pi].
func NormalizeAngle(a float64) float64 {
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}

// AngularDiff returns the absolute smallest difference between two angles,
// in [0, pi].
func AngularDiff(a, b float64) float64 {
	d := math.Abs(NormalizeAngle(a - b))
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}
