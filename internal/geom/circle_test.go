package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCircleContains(t *testing.T) {
	c := Circle{Center: V(0, 0), Radius: 2}
	if !c.Contains(V(1, 1)) {
		t.Fatal("interior point should be contained")
	}
	if !c.Contains(V(2, 0)) {
		t.Fatal("boundary point should be contained (closed disc)")
	}
	if c.Contains(V(3, 0)) {
		t.Fatal("exterior point should not be contained")
	}
	if c.ContainsStrict(V(2, 0), 1e-9) {
		t.Fatal("boundary point should not be strictly inside")
	}
	if !c.ContainsStrict(V(0.5, 0), 1e-9) {
		t.Fatal("interior point should be strictly inside")
	}
	if !c.OnBoundary(V(2, 0), 1e-9) {
		t.Fatal("boundary point should be on boundary")
	}
	if c.OnBoundary(V(1, 0), 1e-9) {
		t.Fatal("interior point should not be on boundary")
	}
}

func TestUnitDiscAndPointAtAngle(t *testing.T) {
	d := UnitDisc(V(3, 4))
	if d.Radius != UnitRadius {
		t.Fatalf("radius = %v", d.Radius)
	}
	p := d.PointAtAngle(0)
	if !p.EqWithin(V(4, 4), 1e-12) {
		t.Fatalf("point at 0 = %v", p)
	}
	p = d.PointAtAngle(math.Pi / 2)
	if !p.EqWithin(V(3, 5), 1e-12) {
		t.Fatalf("point at pi/2 = %v", p)
	}
}

func TestDiscsOverlapAndTangent(t *testing.T) {
	tests := []struct {
		name             string
		a, b             Vec
		overlap, tangent bool
	}{
		{"far", V(0, 0), V(5, 0), false, false},
		{"tangent", V(0, 0), V(2, 0), false, true},
		{"overlapping", V(0, 0), V(1.5, 0), true, false},
		{"coincident", V(0, 0), V(0, 0), true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DiscsOverlap(tt.a, tt.b, 1, 1e-9); got != tt.overlap {
				t.Fatalf("overlap got %v want %v", got, tt.overlap)
			}
			if got := DiscsTangent(tt.a, tt.b, 1, 1e-7); got != tt.tangent {
				t.Fatalf("tangent got %v want %v", got, tt.tangent)
			}
		})
	}
}

func TestSegmentIntersectsDisc(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Vec
		center Vec
		want   bool
	}{
		{"through-center", V(-5, 0), V(5, 0), V(0, 0), true},
		{"misses", V(-5, 3), V(5, 3), V(0, 0), false},
		{"tangent-line", V(-5, 1), V(5, 1), V(0, 0), false},
		{"stops-short", V(-5, 0), V(-3, 0), V(0, 0), false},
		{"grazes-inside", V(-5, 0.5), V(5, 0.5), V(0, 0), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentIntersectsDisc(tt.a, tt.b, tt.center, 1, 1e-9); got != tt.want {
				t.Fatalf("got %v want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentCircleIntersections(t *testing.T) {
	c := Circle{Center: V(0, 0), Radius: 1}
	pts := SegmentCircleIntersections(V(-2, 0), V(2, 0), c)
	if len(pts) != 2 {
		t.Fatalf("diameter chord: got %d points", len(pts))
	}
	pts = SegmentCircleIntersections(V(-2, 1), V(2, 1), c)
	if len(pts) != 1 {
		t.Fatalf("tangent: got %d points", len(pts))
	}
	pts = SegmentCircleIntersections(V(-2, 2), V(2, 2), c)
	if len(pts) != 0 {
		t.Fatalf("miss: got %d points", len(pts))
	}
	pts = SegmentCircleIntersections(V(0, 0), V(0.5, 0), c)
	if len(pts) != 0 {
		t.Fatalf("fully inside: got %d points", len(pts))
	}
	pts = SegmentCircleIntersections(V(0, 0), V(2, 0), c)
	if len(pts) != 1 || !pts[0].EqWithin(V(1, 0), 1e-9) {
		t.Fatalf("exiting: got %v", pts)
	}
}

func TestLineCircleIntersections(t *testing.T) {
	c := Circle{Center: V(0, 0), Radius: 1}
	pts := LineCircleIntersections(V(-10, 0), V(-9, 0), c)
	if len(pts) != 2 {
		t.Fatalf("line through circle defined by far points: got %d", len(pts))
	}
	pts = LineCircleIntersections(V(-10, 2), V(10, 2), c)
	if len(pts) != 0 {
		t.Fatalf("missing line: got %d", len(pts))
	}
	pts = LineCircleIntersections(V(-10, 1), V(10, 1), c)
	if len(pts) != 1 {
		t.Fatalf("tangent line: got %d", len(pts))
	}
}

func TestCircleCircleIntersections(t *testing.T) {
	a := Circle{Center: V(0, 0), Radius: 1}
	tests := []struct {
		name string
		b    Circle
		want int
	}{
		{"two-points", Circle{Center: V(1, 0), Radius: 1}, 2},
		{"tangent-external", Circle{Center: V(2, 0), Radius: 1}, 1},
		{"disjoint", Circle{Center: V(5, 0), Radius: 1}, 0},
		{"contained", Circle{Center: V(0.1, 0), Radius: 0.2}, 0},
		{"concentric", Circle{Center: V(0, 0), Radius: 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := CircleCircleIntersections(a, tt.b)
			if len(got) != tt.want {
				t.Fatalf("got %d points want %d (%v)", len(got), tt.want, got)
			}
			for _, p := range got {
				if !a.OnBoundary(p, 1e-7) || !tt.b.OnBoundary(p, 1e-7) {
					t.Fatalf("intersection %v not on both boundaries", p)
				}
			}
		})
	}
}

func TestOuterTangentSegments(t *testing.T) {
	segs := OuterTangentSegments(V(0, 0), V(10, 0), 1)
	if len(segs) != 2 {
		t.Fatalf("got %d segments", len(segs))
	}
	for _, s := range segs {
		if !almostEq(math.Abs(s.A.Y), 1, 1e-9) || !almostEq(math.Abs(s.B.Y), 1, 1e-9) {
			t.Fatalf("outer tangent endpoints should be at |y|=1: %v", s)
		}
		if !almostEq(s.Length(), 10, 1e-9) {
			t.Fatalf("outer tangent length should equal center distance: %v", s.Length())
		}
	}
	if OuterTangentSegments(V(1, 1), V(1, 1), 1) != nil {
		t.Fatal("coincident centers should yield nil")
	}
}

func TestInnerTangentSegments(t *testing.T) {
	segs := InnerTangentSegments(V(0, 0), V(10, 0), 1)
	if len(segs) != 2 {
		t.Fatalf("got %d segments", len(segs))
	}
	a := Circle{Center: V(0, 0), Radius: 1}
	b := Circle{Center: V(10, 0), Radius: 1}
	for _, s := range segs {
		if !a.OnBoundary(s.A, 1e-6) {
			t.Fatalf("tangency point %v not on circle a", s.A)
		}
		if !b.OnBoundary(s.B, 1e-6) {
			t.Fatalf("tangency point %v not on circle b", s.B)
		}
	}
	if InnerTangentSegments(V(0, 0), V(1.5, 0), 1) != nil {
		t.Fatal("overlapping discs have no inner tangents")
	}
	if InnerTangentSegments(V(0, 0), V(2, 0), 1) != nil {
		t.Fatal("tangent discs have no inner tangent segments")
	}
}

// Property: intersection points of two circles are equidistant from both
// centers by the respective radii.
func TestCircleIntersectionProperty(t *testing.T) {
	f := func(ax, ay, bx, by, r1, r2 float64) bool {
		for _, v := range []float64{ax, ay, bx, by, r1, r2} {
			if math.IsNaN(v) || math.Abs(v) > 1e3 {
				return true
			}
		}
		r1 = math.Abs(r1) + 0.1
		r2 = math.Abs(r2) + 0.1
		c1 := Circle{Center: V(ax, ay), Radius: r1}
		c2 := Circle{Center: V(bx, by), Radius: r2}
		for _, p := range CircleCircleIntersections(c1, c2) {
			if !almostEq(p.Dist(c1.Center), r1, 1e-6*(1+r1)) {
				return false
			}
			if !almostEq(p.Dist(c2.Center), r2, 1e-6*(1+r2)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
