// Package geom provides the 2-D computational-geometry substrate used by the
// fat-robot gathering algorithm: vectors, segments, circles, convex hulls,
// and the epsilon-tolerant predicates the algorithm relies on.
//
// All geometry is performed on float64 coordinates. Predicates that the paper
// states over exact reals (collinearity, tangency, "on the convex hull") are
// implemented with explicit tolerances; see Eps and the per-function
// documentation. The algorithm's own margins (1/n, 1/2n-epsilon) are orders of
// magnitude larger than these tolerances, so the classification of
// configurations is preserved.
package geom
