package geom

import "math"

// Segment is a closed straight line segment between two points.
type Segment struct {
	A Vec
	B Vec
}

// Seg is a convenience constructor for Segment.
func Seg(a, b Vec) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Vec { return Midpoint(s.A, s.B) }

// Direction returns the unit vector pointing from A to B (zero vector for a
// degenerate segment).
func (s Segment) Direction() Vec { return s.B.Sub(s.A).Unit() }

// PointAt returns the point A + t*(B-A); t in [0,1] stays on the segment.
func (s Segment) PointAt(t float64) Vec { return s.A.Lerp(s.B, t) }

// Contains reports whether p lies on the closed segment within tolerance.
func (s Segment) Contains(p Vec) bool { return Between(s.A, s.B, p) }

// DistanceTo returns the distance from p to the closed segment.
func (s Segment) DistanceTo(p Vec) float64 { return DistancePointSegment(p, s.A, s.B) }

// Closest returns the point of the segment closest to p.
func (s Segment) Closest(p Vec) Vec { return ClosestPointOnSegment(p, s.A, s.B) }

// SegmentsIntersect reports whether the closed segments [p1,p2] and [q1,q2]
// share at least one point.
func SegmentsIntersect(p1, p2, q1, q2 Vec) bool {
	o1 := Orientation(p1, p2, q1)
	o2 := Orientation(p1, p2, q2)
	o3 := Orientation(q1, q2, p1)
	o4 := Orientation(q1, q2, p2)

	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear special cases.
	if o1 == Collinear && Between(p1, p2, q1) {
		return true
	}
	if o2 == Collinear && Between(p1, p2, q2) {
		return true
	}
	if o3 == Collinear && Between(q1, q2, p1) {
		return true
	}
	if o4 == Collinear && Between(q1, q2, p2) {
		return true
	}
	return false
}

// SegmentIntersection returns the intersection point of the closed segments
// [p1,p2] and [q1,q2] and true, if the segments intersect in exactly one
// point. Overlapping collinear segments return the first shared endpoint
// found. If the segments do not intersect, ok is false.
func SegmentIntersection(p1, p2, q1, q2 Vec) (pt Vec, ok bool) {
	r := p2.Sub(p1)
	s := q2.Sub(q1)
	denom := r.Cross(s)
	qp := q1.Sub(p1)
	if math.Abs(denom) < Eps {
		// Parallel. Check collinear overlap and return a shared endpoint.
		if math.Abs(qp.Cross(r)) > Eps*math.Max(1, r.Norm()) {
			return Vec{}, false
		}
		for _, cand := range []Vec{q1, q2, p1, p2} {
			if Between(p1, p2, cand) && Between(q1, q2, cand) {
				return cand, true
			}
		}
		return Vec{}, false
	}
	t := qp.Cross(s) / denom
	u := qp.Cross(r) / denom
	const slack = 1e-12
	if t < -slack || t > 1+slack || u < -slack || u > 1+slack {
		return Vec{}, false
	}
	return p1.Add(r.Scale(t)), true
}

// LineIntersection returns the intersection point of the infinite lines
// through (p1,p2) and (q1,q2). ok is false when the lines are parallel (or a
// defining pair coincides).
func LineIntersection(p1, p2, q1, q2 Vec) (pt Vec, ok bool) {
	r := p2.Sub(p1)
	s := q2.Sub(q1)
	denom := r.Cross(s)
	if math.Abs(denom) < Eps {
		return Vec{}, false
	}
	t := q1.Sub(p1).Cross(s) / denom
	return p1.Add(r.Scale(t)), true
}

// SegmentDistance returns the minimum distance between the two closed
// segments.
func SegmentDistance(p1, p2, q1, q2 Vec) float64 {
	if SegmentsIntersect(p1, p2, q1, q2) {
		return 0
	}
	d := DistancePointSegment(p1, q1, q2)
	if v := DistancePointSegment(p2, q1, q2); v < d {
		d = v
	}
	if v := DistancePointSegment(q1, p1, p2); v < d {
		d = v
	}
	if v := DistancePointSegment(q2, p1, p2); v < d {
		d = v
	}
	return d
}
