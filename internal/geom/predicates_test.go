package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrientation(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c Vec
		want    Orient
	}{
		{"ccw", V(0, 0), V(1, 0), V(0, 1), CounterClockwise},
		{"cw", V(0, 0), V(0, 1), V(1, 0), Clockwise},
		{"collinear-horizontal", V(0, 0), V(1, 0), V(2, 0), Collinear},
		{"collinear-diag", V(0, 0), V(1, 1), V(5, 5), Collinear},
		{"collinear-repeat", V(1, 1), V(1, 1), V(2, 3), Collinear},
		{"ccw-far", V(100, 100), V(200, 100), V(150, 200), CounterClockwise},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Orientation(tt.a, tt.b, tt.c); got != tt.want {
				t.Fatalf("got %v want %v", got, tt.want)
			}
		})
	}
}

func TestCollinearPredicates(t *testing.T) {
	if !CollinearPts(V(0, 0), V(2, 2), V(7, 7)) {
		t.Fatal("expected collinear")
	}
	if CollinearPts(V(0, 0), V(2, 2), V(7, 7.5)) {
		t.Fatal("expected not collinear")
	}
	if !CollinearWithin(V(0, 0), V(10, 0), V(5, 0.05), 0.1) {
		t.Fatal("expected collinear within 0.1")
	}
	if CollinearWithin(V(0, 0), V(10, 0), V(5, 0.5), 0.1) {
		t.Fatal("expected not collinear within 0.1")
	}
}

func TestDistancePointLineAndSegment(t *testing.T) {
	tests := []struct {
		name    string
		p, a, b Vec
		line    float64
		seg     float64
	}{
		{"above-mid", V(5, 3), V(0, 0), V(10, 0), 3, 3},
		{"beyond-end", V(12, 0), V(0, 0), V(10, 0), 0, 2},
		{"before-start", V(-3, 4), V(0, 0), V(10, 0), 4, 5},
		{"degenerate", V(3, 4), V(0, 0), V(0, 0), 5, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DistancePointLine(tt.p, tt.a, tt.b); !almostEq(got, tt.line, 1e-9) {
				t.Fatalf("line dist got %v want %v", got, tt.line)
			}
			if got := DistancePointSegment(tt.p, tt.a, tt.b); !almostEq(got, tt.seg, 1e-9) {
				t.Fatalf("segment dist got %v want %v", got, tt.seg)
			}
		})
	}
}

func TestClosestPointOnSegment(t *testing.T) {
	got := ClosestPointOnSegment(V(5, 3), V(0, 0), V(10, 0))
	if !got.EqWithin(V(5, 0), 1e-9) {
		t.Fatalf("got %v", got)
	}
	got = ClosestPointOnSegment(V(-5, 3), V(0, 0), V(10, 0))
	if !got.EqWithin(V(0, 0), 1e-9) {
		t.Fatalf("clamped start: got %v", got)
	}
	got = ClosestPointOnSegment(V(50, -3), V(0, 0), V(10, 0))
	if !got.EqWithin(V(10, 0), 1e-9) {
		t.Fatalf("clamped end: got %v", got)
	}
}

func TestProjectPointOnLine(t *testing.T) {
	got := ProjectPointOnLine(V(5, 7), V(0, 0), V(1, 0))
	if !got.EqWithin(V(5, 0), 1e-9) {
		t.Fatalf("got %v", got)
	}
	// Projection can fall outside the defining segment.
	got = ProjectPointOnLine(V(-5, 7), V(0, 0), V(1, 0))
	if !got.EqWithin(V(-5, 0), 1e-9) {
		t.Fatalf("got %v", got)
	}
}

func TestBetween(t *testing.T) {
	if !Between(V(0, 0), V(10, 0), V(5, 0)) {
		t.Fatal("midpoint should be between")
	}
	if !Between(V(0, 0), V(10, 0), V(0, 0)) {
		t.Fatal("endpoint should be between")
	}
	if Between(V(0, 0), V(10, 0), V(11, 0)) {
		t.Fatal("point beyond end should not be between")
	}
	if Between(V(0, 0), V(10, 0), V(5, 1)) {
		t.Fatal("off-line point should not be between")
	}
}

func TestAngleAt(t *testing.T) {
	if got := AngleAt(V(1, 0), V(0, 0), V(0, 1)); !almostEq(got, math.Pi/2, 1e-9) {
		t.Fatalf("right angle: got %v", got)
	}
	if got := AngleAt(V(1, 0), V(0, 0), V(-1, 0)); !almostEq(got, math.Pi, 1e-9) {
		t.Fatalf("straight angle: got %v", got)
	}
	if got := AngleAt(V(0, 0), V(0, 0), V(1, 0)); got != 0 {
		t.Fatalf("degenerate angle: got %v", got)
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{3 * math.Pi, math.Pi},
		{-3 * math.Pi, math.Pi},
		{math.Pi / 2, math.Pi / 2},
		{2 * math.Pi, 0},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("NormalizeAngle(%v) = %v want %v", tt.in, got, tt.want)
		}
	}
}

func TestAngularDiff(t *testing.T) {
	if got := AngularDiff(0.1, -0.1); !almostEq(got, 0.2, 1e-9) {
		t.Fatalf("got %v", got)
	}
	if got := AngularDiff(math.Pi-0.05, -math.Pi+0.05); !almostEq(got, 0.1, 1e-9) {
		t.Fatalf("wraparound: got %v", got)
	}
}

// Property: orientation flips sign when two points are swapped.
func TestOrientationAntisymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		for _, v := range []float64{ax, ay, bx, by, cx, cy} {
			if math.IsNaN(v) || math.Abs(v) > 1e4 {
				return true
			}
		}
		a, b, c := V(ax, ay), V(bx, by), V(cx, cy)
		o1 := Orientation(a, b, c)
		o2 := Orientation(a, c, b)
		if o1 == Collinear || o2 == Collinear {
			return true // tolerance boundary, skip
		}
		return o1 == -o2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the closest point on a segment is never farther than either
// endpoint.
func TestClosestPointProperty(t *testing.T) {
	f := func(px, py, ax, ay, bx, by float64) bool {
		for _, v := range []float64{px, py, ax, ay, bx, by} {
			if math.IsNaN(v) || math.Abs(v) > 1e4 {
				return true
			}
		}
		p, a, b := V(px, py), V(ax, ay), V(bx, by)
		d := DistancePointSegment(p, a, b)
		return d <= p.Dist(a)+1e-9 && d <= p.Dist(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
