package geom

import (
	"fmt"
	"math"
)

// Eps is the default tolerance for geometric predicates (orientation,
// collinearity, point equality). It is intentionally small compared to the
// algorithm's structural margins (which are at least 1/(2n) for any practical
// n).
const Eps = 1e-9

// Vec is a point or vector in the plane. The zero value is the origin.
type Vec struct {
	X float64
	Y float64
}

// V is a convenience constructor for Vec.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Neg returns -v.
func (v Vec) Neg() Vec { return Vec{-v.X, -v.Y} }

// Dot returns the dot product v . w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z-component of the 3-D cross product v x w.
// It is positive when w is counter-clockwise from v.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec) Dist2(w Vec) float64 { return v.Sub(w).Norm2() }

// Unit returns v normalized to length 1. If v is (numerically) the zero
// vector it returns the zero vector.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n < Eps {
		return Vec{}
	}
	return Vec{v.X / n, v.Y / n}
}

// Perp returns v rotated by +90 degrees (counter-clockwise).
func (v Vec) Perp() Vec { return Vec{-v.Y, v.X} }

// PerpCW returns v rotated by -90 degrees (clockwise).
func (v Vec) PerpCW() Vec { return Vec{v.Y, -v.X} }

// Rotate returns v rotated by theta radians counter-clockwise about the
// origin.
func (v Vec) Rotate(theta float64) Vec {
	s, c := math.Sincos(theta)
	return Vec{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// RotateAround returns v rotated by theta radians counter-clockwise about
// pivot p.
func (v Vec) RotateAround(p Vec, theta float64) Vec {
	return v.Sub(p).Rotate(theta).Add(p)
}

// Lerp returns the linear interpolation between v and w at parameter t
// (t=0 gives v, t=1 gives w).
func (v Vec) Lerp(w Vec, t float64) Vec {
	return Vec{v.X + (w.X-v.X)*t, v.Y + (w.Y-v.Y)*t}
}

// Angle returns the angle of v in radians in (-pi, pi], measured
// counter-clockwise from the positive x axis.
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// AngleTo returns the angle from v to w (direction of w-v).
func (v Vec) AngleTo(w Vec) float64 { return w.Sub(v).Angle() }

// Eq reports whether v and w coincide within Eps in both coordinates.
func (v Vec) Eq(w Vec) bool {
	return math.Abs(v.X-w.X) <= Eps && math.Abs(v.Y-w.Y) <= Eps
}

// EqWithin reports whether v and w coincide within tol in Euclidean distance.
func (v Vec) EqWithin(w Vec, tol float64) bool { return v.Dist(w) <= tol }

// IsFinite reports whether both coordinates are finite (not NaN, not Inf).
func (v Vec) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsNaN(v.Y) && !math.IsInf(v.X, 0) && !math.IsInf(v.Y, 0)
}

// String implements fmt.Stringer.
func (v Vec) String() string { return fmt.Sprintf("(%.6g, %.6g)", v.X, v.Y) }

// Midpoint returns the midpoint of v and w.
func Midpoint(v, w Vec) Vec { return Vec{(v.X + w.X) / 2, (v.Y + w.Y) / 2} }

// Centroid returns the arithmetic mean of the given points. It returns the
// origin for an empty slice.
func Centroid(pts []Vec) Vec {
	if len(pts) == 0 {
		return Vec{}
	}
	var s Vec
	for _, p := range pts {
		s = s.Add(p)
	}
	return s.Scale(1 / float64(len(pts)))
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
