package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Vec{V(0, 0), V(4, 0), V(4, 4), V(0, 4), V(2, 2), V(1, 1)}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("expected 4 hull vertices, got %d: %v", len(hull), hull)
	}
	for _, p := range []Vec{V(2, 2), V(1, 1)} {
		for _, h := range hull {
			if h.Eq(p) {
				t.Fatalf("interior point %v on hull", p)
			}
		}
	}
	if !almostEq(PolygonArea(hull), 16, 1e-9) {
		t.Fatalf("hull area = %v", PolygonArea(hull))
	}
}

func TestConvexHullCCWOrder(t *testing.T) {
	pts := []Vec{V(0, 0), V(3, 1), V(4, 4), V(1, 3), V(2, 2)}
	hull := ConvexHull(pts)
	if len(hull) < 3 {
		t.Fatalf("hull too small: %v", hull)
	}
	for i := range hull {
		a := hull[i]
		b := hull[(i+1)%len(hull)]
		c := hull[(i+2)%len(hull)]
		if Orientation(a, b, c) == Clockwise {
			t.Fatalf("hull not CCW at %d: %v %v %v", i, a, b, c)
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Fatalf("empty input: %v", got)
	}
	if got := ConvexHull([]Vec{V(1, 1)}); len(got) != 1 {
		t.Fatalf("single point: %v", got)
	}
	if got := ConvexHull([]Vec{V(1, 1), V(2, 2)}); len(got) != 2 {
		t.Fatalf("two points: %v", got)
	}
	if got := ConvexHull([]Vec{V(1, 1), V(1, 1), V(1, 1)}); len(got) != 1 {
		t.Fatalf("duplicates: %v", got)
	}
	// All collinear: hull corners are the two extremes.
	got := ConvexHull([]Vec{V(0, 0), V(1, 0), V(2, 0), V(3, 0)})
	if len(got) != 2 {
		t.Fatalf("collinear: %v", got)
	}
}

func TestConvexHullWithCollinear(t *testing.T) {
	// A square with an extra point on the bottom edge: the edge point is on
	// the hull boundary but not a corner.
	pts := []Vec{V(0, 0), V(4, 0), V(4, 4), V(0, 4), V(2, 0), V(2, 2)}
	onHull := ConvexHullWithCollinear(pts)
	want := map[Vec]bool{V(0, 0): true, V(4, 0): true, V(4, 4): true, V(0, 4): true, V(2, 0): true}
	if len(onHull) != len(want) {
		t.Fatalf("expected %d on-hull points, got %d: %v", len(want), len(onHull), onHull)
	}
	for _, p := range onHull {
		if !want[p] {
			t.Fatalf("unexpected on-hull point %v", p)
		}
	}
	// Fully collinear input: every point is on the (degenerate) hull, in
	// order along the line.
	line := []Vec{V(3, 0), V(0, 0), V(1, 0), V(2, 0)}
	onHull = ConvexHullWithCollinear(line)
	if len(onHull) != 4 {
		t.Fatalf("collinear: expected 4, got %v", onHull)
	}
}

func TestOnHullAndIsHullVertex(t *testing.T) {
	pts := []Vec{V(0, 0), V(4, 0), V(4, 4), V(0, 4), V(2, 0), V(2, 2)}
	if !OnHull(pts, V(2, 0)) {
		t.Fatal("edge point should be on hull")
	}
	if IsHullVertex(pts, V(2, 0)) {
		t.Fatal("edge point should not be a hull vertex")
	}
	if !IsHullVertex(pts, V(4, 4)) {
		t.Fatal("corner should be a hull vertex")
	}
	if OnHull(pts, V(2, 2)) {
		t.Fatal("interior point should not be on hull")
	}
}

func TestPointInConvexPolygon(t *testing.T) {
	square := []Vec{V(0, 0), V(4, 0), V(4, 4), V(0, 4)}
	tests := []struct {
		name string
		p    Vec
		want bool
	}{
		{"center", V(2, 2), true},
		{"corner", V(0, 0), true},
		{"edge", V(2, 0), true},
		{"outside", V(5, 2), false},
		{"outside-diag", V(-1, -1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := PointInConvexPolygon(tt.p, square); got != tt.want {
				t.Fatalf("got %v want %v", got, tt.want)
			}
		})
	}
	if !PointInConvexPolygon(V(1, 1), []Vec{V(1, 1)}) {
		t.Fatal("single-vertex polygon should contain its vertex")
	}
	if !PointInConvexPolygon(V(1, 0), []Vec{V(0, 0), V(2, 0)}) {
		t.Fatal("two-vertex polygon should contain points on the segment")
	}
}

func TestPolygonMeasures(t *testing.T) {
	square := []Vec{V(0, 0), V(4, 0), V(4, 4), V(0, 4)}
	if !almostEq(PolygonArea(square), 16, 1e-9) {
		t.Fatalf("area = %v", PolygonArea(square))
	}
	if !almostEq(PolygonPerimeter(square), 16, 1e-9) {
		t.Fatalf("perimeter = %v", PolygonPerimeter(square))
	}
	if !PolygonCentroid(square).EqWithin(V(2, 2), 1e-9) {
		t.Fatalf("centroid = %v", PolygonCentroid(square))
	}
	if PolygonArea([]Vec{V(0, 0), V(1, 0)}) != 0 {
		t.Fatal("degenerate polygon area should be 0")
	}
	tri := []Vec{V(0, 0), V(4, 0), V(0, 3)}
	if !almostEq(PolygonArea(tri), 6, 1e-9) {
		t.Fatalf("triangle area = %v", PolygonArea(tri))
	}
	if !almostEq(PolygonPerimeter(tri), 12, 1e-9) {
		t.Fatalf("triangle perimeter = %v", PolygonPerimeter(tri))
	}
}

func TestHullContains(t *testing.T) {
	outer := []Vec{V(0, 0), V(10, 0), V(10, 10), V(0, 10)}
	inner := []Vec{V(2, 2), V(8, 2), V(8, 8), V(2, 8)}
	if !HullContains(outer, inner) {
		t.Fatal("outer hull should contain inner hull")
	}
	if HullContains(inner, outer) {
		t.Fatal("inner hull should not contain outer hull")
	}
	if !HullContains(outer, outer) {
		t.Fatal("hull should contain itself")
	}
}

// Property: every input point lies inside or on the convex hull.
func TestHullContainsAllPointsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%30) + 3
		pts := make([]Vec, count)
		for i := range pts {
			pts[i] = V(rng.Float64()*100-50, rng.Float64()*100-50)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			return true
		}
		for _, p := range pts {
			if !PointInConvexPolygon(p, hull) && distanceToPolygon(p, hull) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: hull of the hull is the hull (idempotence) and hull area never
// exceeds the bounding box area.
func TestHullIdempotenceProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%20) + 3
		pts := make([]Vec, count)
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for i := range pts {
			pts[i] = V(rng.Float64()*40-20, rng.Float64()*40-20)
			minX = math.Min(minX, pts[i].X)
			maxX = math.Max(maxX, pts[i].X)
			minY = math.Min(minY, pts[i].Y)
			maxY = math.Max(maxY, pts[i].Y)
		}
		hull := ConvexHull(pts)
		hull2 := ConvexHull(hull)
		if len(hull) != len(hull2) {
			return false
		}
		boxArea := (maxX - minX) * (maxY - minY)
		return PolygonArea(hull) <= boxArea+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// lexLess must stay an exact (tolerance-free) strict weak ordering: it
// canonicalizes hull input, and a fuzzy comparison would make the sort — and
// therefore the hull walk — input-order dependent. Sub-Eps coordinate
// differences must still order points deterministically.
func TestLexLessIsExactStrictWeakOrder(t *testing.T) {
	a := V(1.0, 0)
	b := V(1.0+Eps/8, 0) // closer than Eps: a fuzzy compare would tie these
	if !lexLess(a, b) || lexLess(b, a) {
		t.Fatalf("sub-Eps x difference must still order exactly: lexLess(a,b)=%v lexLess(b,a)=%v", lexLess(a, b), lexLess(b, a))
	}
	c := V(1.0, 2.0)
	d := V(1.0, 2.0+Eps/8)
	if !lexLess(c, d) || lexLess(d, c) {
		t.Fatalf("sub-Eps y difference must still order exactly")
	}
	if lexLess(a, a) {
		t.Fatalf("lexLess must be irreflexive")
	}
}

// ConvexHull output must not depend on the input permutation. This pins the
// sort.Slice(..., lexLess) canonicalization that replaced the inline
// comparator.
func TestConvexHullPermutationInvariant(t *testing.T) {
	pts := []Vec{V(0, 0), V(4, 0), V(4, 4), V(0, 4), V(2, 2), V(1, 3), V(3, 1)}
	want := ConvexHull(pts)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		perm := make([]Vec, len(pts))
		for i, j := range rng.Perm(len(pts)) {
			perm[i] = pts[j]
		}
		got := ConvexHull(perm)
		if len(got) != len(want) {
			t.Fatalf("trial %d: hull size %d != %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: hull[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}
