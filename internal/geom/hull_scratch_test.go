package geom

import (
	"math/rand"
	"testing"
)

// scratchPointSets is a deterministic spread of hull inputs: empty, singleton,
// duplicates, collinear runs, squares with edge midpoints, and random clouds.
func scratchPointSets() [][]Vec {
	sets := [][]Vec{
		nil,
		{V(1, 2)},
		{V(1, 2), V(1, 2), V(1, 2)},
		{V(0, 0), V(1, 0)},
		{V(0, 0), V(1, 0), V(2, 0), V(3, 0)},
		{V(0, 0), V(2, 0), V(2, 2), V(0, 2), V(1, 0), V(1, 1)},
		{V(0, 0), V(4, 0), V(4, 4), V(0, 4), V(2, 0), V(4, 2), V(2, 4), V(0, 2)},
	}
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{3, 5, 10, 25, 60, 128} {
		pts := make([]Vec, n)
		for i := range pts {
			pts[i] = V(rng.Float64()*100-50, rng.Float64()*100-50)
		}
		sets = append(sets, pts)
	}
	// Clouds with exact duplicates and near-duplicates sprinkled in.
	dup := make([]Vec, 0, 40)
	for i := 0; i < 20; i++ {
		p := V(rng.Float64()*10, rng.Float64()*10)
		dup = append(dup, p, p, V(p.X+Eps/2, p.Y))
	}
	sets = append(sets, dup)
	return sets
}

// TestHullScratchMatchesConvexHull is the differential oracle test for the
// scratch-buffer hull: for every input, the reused-buffer implementation must
// return exactly — bit for bit, in the same order — what the allocating
// ConvexHull returns, including when the scratch is reused across differently
// sized inputs (stale buffer contents must never leak).
func TestHullScratchMatchesConvexHull(t *testing.T) {
	var sc HullScratch
	for si, pts := range scratchPointSets() {
		want := ConvexHull(pts)
		got := sc.ConvexHull(pts)
		if len(got) != len(want) {
			t.Fatalf("set %d: scratch hull has %d vertices, ConvexHull has %d", si, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("set %d vertex %d: scratch %v != ConvexHull %v (must be bit-identical)",
					si, i, got[i], want[i])
			}
		}
	}
}

// TestHullScratchInputOrderInvariance re-checks the exactness argument behind
// the scratch hull: because lexLess strictly orders the deduped points, every
// input permutation (and either sort algorithm) must yield bit-identical hull
// vertices.
func TestHullScratchInputOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := make([]Vec, 40)
	for i := range base {
		base[i] = V(rng.Float64()*20-10, rng.Float64()*20-10)
	}
	want := ConvexHull(base)
	var sc HullScratch
	for trial := 0; trial < 20; trial++ {
		perm := make([]Vec, len(base))
		for i, j := range rng.Perm(len(base)) {
			perm[i] = base[j]
		}
		got := sc.ConvexHull(perm)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vertices, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d vertex %d: %v != %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestHullWithOnHullCountMatchesCollinearOracle is the differential oracle
// test for the boundary count: for every input it must equal
// len(ConvexHullWithCollinear(pts)) — the definition of config.OnHullCount —
// with the corners still bit-identical to ConvexHull.
func TestHullWithOnHullCountMatchesCollinearOracle(t *testing.T) {
	var sc HullScratch
	for si, pts := range scratchPointSets() {
		wantCorners := ConvexHull(pts)
		wantCount := len(ConvexHullWithCollinear(pts))
		corners, count := sc.HullWithOnHullCount(pts)
		if count != wantCount {
			t.Fatalf("set %d: boundary count %d, want %d", si, count, wantCount)
		}
		if len(corners) != len(wantCorners) {
			t.Fatalf("set %d: %d corners, want %d", si, len(corners), len(wantCorners))
		}
		for i := range wantCorners {
			if corners[i] != wantCorners[i] {
				t.Fatalf("set %d corner %d: %v != %v", si, i, corners[i], wantCorners[i])
			}
		}
	}
}

// TestHullScratchAllocFree pins the allocation budget of the warmed-up scratch
// hull at zero: the whole point of HullScratch is that the per-event hull
// recomputation in the simulator allocates nothing. A future change that
// reintroduces an allocation (e.g. swapping sort.Sort back to sort.Slice)
// fails here rather than silently regressing the event loop.
func TestHullScratchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Vec, 64)
	for i := range pts {
		pts[i] = V(rng.Float64()*100, rng.Float64()*100)
	}
	var sc HullScratch
	sc.ConvexHull(pts) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		sc.ConvexHull(pts)
	})
	if allocs != 0 {
		t.Fatalf("warmed HullScratch.ConvexHull allocates %v allocs/op, want 0", allocs)
	}
}
