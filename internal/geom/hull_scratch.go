package geom

import "sort"

// HullScratch holds reusable buffers for repeated convex-hull computations on
// a hot path (the simulator recomputes the global hull after every position
// change). The zero value is ready to use; after the buffers have grown to the
// working-set size, ConvexHull allocates nothing.
//
// A HullScratch is not safe for concurrent use.
type HullScratch struct {
	uniq vecSorter
	hull []Vec
}

// ConvexHull computes exactly the same hull as the package-level ConvexHull —
// same vertices, same order, bit-identical coordinates — but into the
// scratch's reused buffers. The returned slice aliases the scratch and is only
// valid until the next call.
//
// Output equality holds because the two implementations share the dedup code
// and the comparator: lexLess is a strict total order on the deduped points
// (dedup removes any pair within Eps, so no two survivors compare equal), and
// a strict total order has exactly one sorted arrangement — which sorting
// algorithm produces it is irrelevant. The monotone chain then walks the same
// sequence with the same Orientation predicate.
func (s *HullScratch) ConvexHull(pts []Vec) []Vec {
	s.uniq.v = appendDedupPoints(s.uniq.v[:0], pts)
	uniq := s.uniq.v
	n := len(uniq)
	s.hull = s.hull[:0]
	if n <= 2 {
		s.hull = append(s.hull, uniq...)
		return s.hull
	}
	sort.Sort(&s.uniq)

	hull := s.hull
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) != CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) != CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	s.hull = hull
	return hull[:len(hull)-1]
}

// HullWithOnHullCount computes the hull corners (exactly as ConvexHull, see
// above) together with the number of distinct input points on the hull
// boundary — exactly len(ConvexHullWithCollinear(pts)) — without allocating.
// The returned corner slice aliases the scratch and is only valid until the
// next call.
//
// The count matches ConvexHullWithCollinear because that function returns the
// dedup of the points it collects per edge, every collected point comes from
// the deduped input (whose points are pairwise distinct within Eps, so the
// final dedup keeps one copy of each), and therefore its length is the number
// of deduped points that satisfy the per-edge membership predicate for at
// least one hull edge [a, b) — the predicate replicated verbatim below. In
// the degenerate case (<= 2 corners) ConvexHullWithCollinear returns the
// deduped points themselves, so the count is their number.
func (s *HullScratch) HullWithOnHullCount(pts []Vec) (corners []Vec, onHull int) {
	corners = s.ConvexHull(pts)
	uniq := s.uniq.v // deduped input, left sorted by ConvexHull; order is irrelevant for counting
	if len(corners) <= 2 {
		return corners, len(uniq)
	}
	m := len(corners)
	for _, p := range uniq {
		for i := 0; i < m; i++ {
			a := corners[i]
			b := corners[(i+1)%m]
			if p.EqWithin(b, Eps) {
				continue
			}
			if p.EqWithin(a, Eps) || (CollinearWithin(a, b, p, Eps) && Between(a, b, p)) {
				onHull++
				break
			}
		}
	}
	return corners, onHull
}

// vecSorter sorts a point slice by lexLess through sort.Sort, which — unlike
// sort.Slice — does not allocate (no interface boxing of the closure).
type vecSorter struct{ v []Vec }

func (s *vecSorter) Len() int           { return len(s.v) }
func (s *vecSorter) Less(i, j int) bool { return lexLess(s.v[i], s.v[j]) }
func (s *vecSorter) Swap(i, j int)      { s.v[i], s.v[j] = s.v[j], s.v[i] }
