package geom

import (
	"math"
	"sort"
)

// ConvexHull computes the convex hull of the given points and returns the
// hull vertices in counter-clockwise order, starting from the lexicographically
// smallest point (lowest x, then lowest y). Interior points and points lying
// on a hull edge (collinear with hull vertices) are NOT included: only the
// corner vertices are returned. Duplicate input points are ignored.
//
// The implementation is Andrew's monotone chain, an equivalent of the Graham
// scan the paper references (Graham 1972); both return exactly the set
// onCH(c1..cm) used by the algorithm.
func ConvexHull(pts []Vec) []Vec {
	uniq := dedupPoints(pts)
	n := len(uniq)
	if n <= 2 {
		out := make([]Vec, n)
		copy(out, uniq)
		return out
	}
	sort.Slice(uniq, func(i, j int) bool { return lexLess(uniq[i], uniq[j]) })

	hull := make([]Vec, 0, 2*n)
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) != CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) != CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// lexLess is the strict lexicographic order on points (lowest x, then lowest
// y) that canonicalizes hull input. It must compare exactly — it is on
// gatherlint's floateq allowlist — because a tolerance-based comparison is
// not a strict weak ordering and would make the sort (and therefore the hull
// walk) input-order dependent.
func lexLess(a, b Vec) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// ConvexHullWithCollinear computes the convex hull and returns every input
// point that lies on the hull boundary, including points on the interior of
// hull edges, in counter-clockwise order. This matches the paper's notion of
// onCH when several robot centers are collinear on a hull edge: all of them
// are "on the convex hull" even though only the extreme two are corners.
func ConvexHullWithCollinear(pts []Vec) []Vec {
	corners := ConvexHull(pts)
	if len(corners) <= 2 {
		// Degenerate hull: every distinct point lies on it. Order along the
		// dominant direction.
		uniq := dedupPoints(pts)
		if len(uniq) <= 1 {
			return uniq
		}
		dir := uniq[0]
		var far Vec
		maxD := -1.0
		for _, p := range uniq {
			for _, q := range uniq {
				if d := p.Dist(q); d > maxD {
					maxD, dir, far = d, p, q
				}
			}
		}
		axis := far.Sub(dir)
		sort.Slice(uniq, func(i, j int) bool {
			return uniq[i].Sub(dir).Dot(axis) < uniq[j].Sub(dir).Dot(axis)
		})
		return uniq
	}
	uniq := dedupPoints(pts)
	var out []Vec
	for i := range corners {
		a := corners[i]
		b := corners[(i+1)%len(corners)]
		// Collect all points on edge [a, b), ordered by distance from a.
		var onEdge []Vec
		for _, p := range uniq {
			if p.EqWithin(b, Eps) {
				continue
			}
			if p.EqWithin(a, Eps) || (CollinearWithin(a, b, p, Eps) && Between(a, b, p)) {
				onEdge = append(onEdge, p)
			}
		}
		sort.Slice(onEdge, func(x, y int) bool {
			return onEdge[x].Dist2(a) < onEdge[y].Dist2(a)
		})
		out = append(out, onEdge...)
	}
	return dedupPoints(out)
}

// OnHull reports whether p is one of the points returned by
// ConvexHullWithCollinear(pts), i.e. whether p lies on the boundary of the
// convex hull of pts (as a vertex or on an edge).
func OnHull(pts []Vec, p Vec) bool {
	for _, q := range ConvexHullWithCollinear(pts) {
		if q.EqWithin(p, Eps) {
			return true
		}
	}
	return false
}

// IsHullVertex reports whether p is a corner vertex of the convex hull of
// pts (not merely on an edge).
func IsHullVertex(pts []Vec, p Vec) bool {
	for _, q := range ConvexHull(pts) {
		if q.EqWithin(p, Eps) {
			return true
		}
	}
	return false
}

// PointInConvexPolygon reports whether p lies inside or on the boundary of
// the convex polygon given by its vertices in counter-clockwise order.
func PointInConvexPolygon(p Vec, poly []Vec) bool {
	n := len(poly)
	if n == 0 {
		return false
	}
	if n == 1 {
		return p.EqWithin(poly[0], Eps)
	}
	if n == 2 {
		return Between(poly[0], poly[1], p)
	}
	for i := 0; i < n; i++ {
		a := poly[i]
		b := poly[(i+1)%n]
		if Orientation(a, b, p) == Clockwise {
			return false
		}
	}
	return true
}

// PolygonArea returns the (non-negative) area of the polygon given by its
// vertices in order (CW or CCW).
func PolygonArea(poly []Vec) float64 {
	n := len(poly)
	if n < 3 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += poly[i].Cross(poly[j])
	}
	return math.Abs(sum) / 2
}

// PolygonPerimeter returns the perimeter of the polygon given by its vertices
// in order.
func PolygonPerimeter(poly []Vec) float64 {
	n := len(poly)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += poly[i].Dist(poly[(i+1)%n])
	}
	return sum
}

// PolygonCentroid returns the centroid of the polygon area; for degenerate
// polygons (fewer than 3 vertices or zero area) it falls back to the vertex
// centroid.
func PolygonCentroid(poly []Vec) Vec {
	n := len(poly)
	if n < 3 {
		return Centroid(poly)
	}
	var cx, cy, a float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		cr := poly[i].Cross(poly[j])
		a += cr
		cx += (poly[i].X + poly[j].X) * cr
		cy += (poly[i].Y + poly[j].Y) * cr
	}
	if math.Abs(a) < Eps {
		return Centroid(poly)
	}
	a /= 2
	return Vec{cx / (6 * a), cy / (6 * a)}
}

// HullContains reports whether every vertex of inner's convex hull lies
// inside or on the convex hull of outer. It is the containment check used to
// verify the paper's hull-monotonicity lemmas (Lemma 20 and Lemma 21).
func HullContains(outer, inner []Vec) bool {
	oh := ConvexHull(outer)
	for _, p := range ConvexHull(inner) {
		if !PointInConvexPolygon(p, oh) {
			// Allow boundary slack: a point may drift by a tiny amount due to
			// floating-point motion updates.
			if distanceToPolygon(p, oh) > 1e-7 {
				return false
			}
		}
	}
	return true
}

func distanceToPolygon(p Vec, poly []Vec) float64 {
	if len(poly) == 0 {
		return math.Inf(1)
	}
	if PointInConvexPolygon(p, poly) {
		return 0
	}
	best := math.Inf(1)
	for i := range poly {
		d := DistancePointSegment(p, poly[i], poly[(i+1)%len(poly)])
		if d < best {
			best = d
		}
	}
	return best
}

// dedupPoints returns the input points with (near-)duplicates removed,
// preserving first occurrence order.
func dedupPoints(pts []Vec) []Vec {
	return appendDedupPoints(make([]Vec, 0, len(pts)), pts)
}

// appendDedupPoints appends the deduplicated points to dst (which must not
// overlap pts) and returns the extended slice. dst is scanned in full for
// duplicates, so pass a freshly truncated buffer.
func appendDedupPoints(dst []Vec, pts []Vec) []Vec {
	for _, p := range pts {
		dup := false
		for _, q := range dst {
			if q.EqWithin(p, Eps) {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, p)
		}
	}
	return dst
}
