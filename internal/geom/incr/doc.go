// Package incr maintains the global geometric predicates of a robot
// configuration — convex hull (corners, area, boundary count), tangency-graph
// connectivity and the full pairwise-visibility matrix — incrementally across
// single-robot moves, which is exactly the update pattern of the simulator's
// event loop (one position changes per event, and only on a Move event).
//
// The contract is strict equality, not approximation: every query answers
// bit-identically to the from-scratch predicates it replaces
// (geom.ConvexHull / config.Geometric.OnHullCount / config.Geometric.
// Connected / vision.Model visibility), so pinned determinism hashes,
// livelock fingerprints and sweep store records are unaffected by the cache.
// Differential tests (incr_test.go) and a fuzzer (fuzz_test.go) compare every
// operation against the from-scratch oracles after every move.
//
// Incrementality comes from two observations:
//
//   - Hull and connectivity depend on all positions, but are only recomputed
//     lazily after a move actually happened, into reused scratch buffers
//     (geom.HullScratch, a DFS over on-the-fly tangency tests) — zero
//     allocations per event instead of a dozen.
//
//   - A visibility verdict Visible(i, j) can change only if the moved disc
//     is one of i, j, or if the mover's old or new center lies within the
//     pair's blocking corridor: every candidate sight line between discs i
//     and j stays within distance r of the center segment [ci, cj]
//     (candidate endpoints lie on the disc boundaries and point-to-segment
//     distance is convex along a line), and a blocker only matters within
//     r+BlockTol of a candidate — so discs farther than 2r+BlockTol from
//     [ci, cj] can never flip the verdict. Pairs outside the corridor of the
//     mover keep their cached verdict; pairs inside it (typically O(n) of
//     the O(n^2) total) are recomputed exactly.
package incr
