package incr_test

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/geom/incr"
	"github.com/fatgather/fatgather/internal/vision"
	"github.com/fatgather/fatgather/internal/workload"
)

// decodeMove turns 5 fuzz bytes into one single-robot displacement: a robot
// index and a quantized (dx, dy) in [-8, 8) with 1/16 resolution — small
// enough to exercise corridor-interior updates, large enough to leave
// corridors entirely.
func decodeMove(buf []byte, n int) (robot int, dx, dy float64) {
	robot = int(buf[0]) % n
	dx = float64(int16(binary.LittleEndian.Uint16(buf[1:3]))) / 4096
	dy = float64(int16(binary.LittleEndian.Uint16(buf[3:5]))) / 4096
	return robot, dx, dy
}

// FuzzCacheMatchesScratch extends the FuzzConvexHull-style fuzzing in
// internal/geom to the incremental cache: fuzz an initial workload plus a
// move sequence and assert after every single move that the incremental state
// equals a from-scratch rebuild (incr.New on the same centers) on every
// predicate — visibility matrix, hull corners/area/boundary count,
// connectivity and spread. The corpus is seeded with the known livelock
// configurations from the PR 6 detector work (nested-hulls n=6 seed 1 under
// round-robin-lag; clustered n=5 seed 3 and clustered n=6 under fair /
// random-async schedules), whose repeated zero-progress collision loops are
// exactly the pathological move pattern the cache sees in production.
func FuzzCacheMatchesScratch(f *testing.F) {
	kinds := workload.Kinds()

	// Known livelock configurations (PR 6) as corpus seeds; the move bytes
	// nudge robot 0 back and forth, a minimal zero-progress-like loop.
	osc := []byte{
		0, 0x00, 0x10, 0x00, 0x00, // +1.0 in x
		0, 0x00, 0xf0, 0x00, 0x00, // -1.0 in x (back)
		0, 0x00, 0x10, 0x00, 0x00,
	}
	f.Add(uint8(6), uint8(6), int64(1), osc) // nested-hulls n=6 seed 1
	f.Add(uint8(1), uint8(5), int64(3), osc) // clustered n=5 seed 3
	f.Add(uint8(1), uint8(6), int64(1), osc) // clustered n=6
	f.Add(uint8(0), uint8(3), int64(7), []byte{2, 0xff, 0x7f, 0x01, 0x80})
	f.Add(uint8(4), uint8(17), int64(2), osc) // ring above the grid threshold

	f.Fuzz(func(t *testing.T, kindIdx, nRaw uint8, seed int64, moveData []byte) {
		kind := kinds[int(kindIdx)%len(kinds)]
		n := 1 + int(nRaw)%18
		cfg, err := workload.Generate(kind, n, seed)
		if err != nil {
			t.Skip() // some kinds reject some (n, seed) combinations
		}
		if len(moveData) > 16*5 {
			moveData = moveData[:16*5] // bound the per-exec cost
		}
		c := incr.New(vision.Default, cfg)
		centers := append([]geom.Vec(nil), cfg...)
		for len(moveData) >= 5 {
			robot, dx, dy := decodeMove(moveData, n)
			moveData = moveData[5:]
			if math.IsNaN(dx) || math.IsNaN(dy) {
				continue
			}
			centers[robot].X += dx
			centers[robot].Y += dy
			c.Move(robot, centers[robot])

			scratch := incr.New(vision.Default, centers)
			compareCaches(t, c, scratch)
		}
	})
}

// compareCaches asserts that the incrementally maintained cache and a
// from-scratch rebuild agree exactly on every predicate.
func compareCaches(t *testing.T, got, want *incr.Cache) {
	t.Helper()
	n := want.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if g, w := got.Visible(i, j), want.Visible(i, j); g != w {
				t.Fatalf("Visible(%d,%d): incremental %v, scratch %v", i, j, g, w)
			}
		}
	}
	if g, w := got.FullyVisible(), want.FullyVisible(); g != w {
		t.Fatalf("FullyVisible: incremental %v, scratch %v", g, w)
	}
	if g, w := got.Connected(), want.Connected(); g != w {
		t.Fatalf("Connected: incremental %v, scratch %v", g, w)
	}
	if g, w := got.OnHullCount(), want.OnHullCount(); g != w {
		t.Fatalf("OnHullCount: incremental %d, scratch %d", g, w)
	}
	if g, w := got.HullArea(), want.HullArea(); math.Float64bits(g) != math.Float64bits(w) {
		t.Fatalf("HullArea: incremental %v, scratch %v (must be bit-identical)", g, w)
	}
	gc, wc := got.HullCorners(), want.HullCorners()
	if len(gc) != len(wc) {
		t.Fatalf("HullCorners: incremental %d vertices, scratch %d", len(gc), len(wc))
	}
	for k := range wc {
		if gc[k] != wc[k] {
			t.Fatalf("HullCorners[%d]: incremental %v, scratch %v", k, gc[k], wc[k])
		}
	}
	if g, w := got.Spread(), want.Spread(); math.Float64bits(g) != math.Float64bits(w) {
		t.Fatalf("Spread: incremental %v, scratch %v", g, w)
	}
}
