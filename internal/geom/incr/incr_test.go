package incr_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/geom/incr"
	"github.com/fatgather/fatgather/internal/vision"
	"github.com/fatgather/fatgather/internal/workload"
)

// sameBits reports exact (bit-level) float equality — the cache's contract is
// bit-identity with the from-scratch oracles, not epsilon closeness.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// checkAgainstOracles compares every cached predicate against its from-scratch
// oracle on the cache's current centers. Exact equality throughout.
func checkAgainstOracles(t *testing.T, c *incr.Cache, m *vision.Model) {
	t.Helper()
	cfg := config.Geometric(append([]geom.Vec(nil), c.Centers()...))
	n := len(cfg)

	// Pairwise visibility matrix vs vision.Model.Visible.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got, want := c.Visible(i, j), m.Visible(cfg, i, j); got != want {
				t.Fatalf("Visible(%d,%d) = %v, oracle %v", i, j, got, want)
			}
		}
	}
	if got, want := c.FullyVisible(), m.FullyVisible(cfg); got != want {
		t.Fatalf("FullyVisible = %v, oracle %v", got, want)
	}

	// Look snapshots vs vision.Model.ViewCenters.
	for i := 0; i < n; i++ {
		want := m.ViewCenters(cfg, i)
		got := c.AppendViewCenters(nil, i)
		if len(got) != len(want) {
			t.Fatalf("ViewCenters(%d): %d centers, oracle %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("ViewCenters(%d)[%d] = %v, oracle %v", i, k, got[k], want[k])
			}
		}
	}

	// Hull predicates vs geom.ConvexHull / config.Geometric.
	wantCorners := geom.ConvexHull(cfg)
	gotCorners := c.HullCorners()
	if len(gotCorners) != len(wantCorners) {
		t.Fatalf("HullCorners: %d vertices, oracle %d", len(gotCorners), len(wantCorners))
	}
	for k := range wantCorners {
		if gotCorners[k] != wantCorners[k] {
			t.Fatalf("HullCorners[%d] = %v, oracle %v (must be bit-identical)", k, gotCorners[k], wantCorners[k])
		}
	}
	if got, want := c.OnHullCount(), cfg.OnHullCount(); got != want {
		t.Fatalf("OnHullCount = %d, oracle %d", got, want)
	}
	if got, want := c.AllOnHull(), cfg.AllOnHull(); got != want {
		t.Fatalf("AllOnHull = %v, oracle %v", got, want)
	}
	if got, want := c.HullArea(), cfg.HullArea(); !sameBits(got, want) {
		t.Fatalf("HullArea = %v (bits %x), oracle %v (bits %x)",
			got, math.Float64bits(got), want, math.Float64bits(want))
	}

	// Connectivity vs config.Geometric.Connected.
	if got, want := c.Connected(), cfg.Connected(); got != want {
		t.Fatalf("Connected = %v, oracle %v", got, want)
	}

	// Scalar series sources.
	if got, want := c.Spread(), cfg.Spread(); !sameBits(got, want) {
		t.Fatalf("Spread = %v, oracle %v (must be bit-identical)", got, want)
	}
	if got, want := c.Centroid(), geom.Centroid(cfg); got != want {
		t.Fatalf("Centroid = %v, oracle %v", got, want)
	}
}

// moveSequence applies steps random single-robot displacements, checking the
// cache against the oracles after every single move (the per-event pattern of
// the simulator: exactly one robot moves at a time). Displacements mix small
// simulator-scale steps with occasional large jumps so moves both stay inside
// and leave the blocking corridors of other pairs.
func moveSequence(t *testing.T, rng *rand.Rand, c *incr.Cache, m *vision.Model, steps int) {
	t.Helper()
	n := c.N()
	for s := 0; s < steps; s++ {
		i := rng.Intn(n)
		scale := 0.5
		if rng.Intn(4) == 0 {
			scale = 10 // corridor-leaving jump
		}
		p := c.Centers()[i]
		p.X += (rng.Float64()*2 - 1) * scale
		p.Y += (rng.Float64()*2 - 1) * scale
		c.Move(i, p)
		checkAgainstOracles(t, c, m)
	}
}

// TestCacheMatchesOraclesOverMoveSequences is the main differential property
// test: over every workload shape and a range of sizes (crossing the vision
// grid threshold), a randomized single-robot-move sequence must keep every
// cached predicate exactly equal to its from-scratch oracle.
func TestCacheMatchesOraclesOverMoveSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for _, kind := range workload.Kinds() {
		for _, n := range []int{1, 2, 3, 5, 8, 17} {
			cfg, err := workload.Generate(kind, n, 1)
			if err != nil {
				t.Fatalf("generate %s n=%d: %v", kind, n, err)
			}
			c := incr.New(vision.Default, cfg)
			checkAgainstOracles(t, c, vision.Default)
			steps := 12
			if n >= 17 {
				steps = 4 // oracle cost is O(n^3) per step
			}
			moveSequence(t, rng, c, vision.Default, steps)
		}
	}
}

// TestCacheCustomModel repeats the differential check under a non-default
// visibility model (larger radius, fewer boundary samples): the cache must
// take its blocking radius from the model, not assume unit discs.
func TestCacheCustomModel(t *testing.T) {
	m := vision.New(vision.Options{Radius: 1.75, BoundarySamples: 4})
	cfg, err := workload.Generate(workload.KindRandom, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := incr.New(m, cfg)
	checkAgainstOracles(t, c, m)
	moveSequence(t, rand.New(rand.NewSource(9)), c, m, 10)
}

// TestCacheReset pins the structural-change fallback: after Reset the cache
// must answer for the new configuration as if freshly built.
func TestCacheReset(t *testing.T) {
	a, err := workload.Generate(workload.KindClustered, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Generate(workload.KindNestedHulls, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := incr.New(vision.Default, a)
	c.Move(0, geom.V(100, 100))
	c.Reset(b)
	checkAgainstOracles(t, c, vision.Default)

	defer func() {
		if recover() == nil {
			t.Fatal("Reset with a different size must panic")
		}
	}()
	c.Reset(b[:3])
}

// TestCacheMoveAllocFree pins the per-move allocation budget of the warmed
// cache at zero: Move plus the full set of per-event queries (the observe()
// pattern in internal/sim) must not allocate. This is the core of the event
// loop's alloc win; a regression here silently re-inflates every simulation.
func TestCacheMoveAllocFree(t *testing.T) {
	cfg, err := workload.Generate(workload.KindClustered, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := incr.New(vision.Default, cfg)
	rng := rand.New(rand.NewSource(4))
	// Warm every lazy path once.
	c.Move(0, geom.V(cfg[0].X+0.25, cfg[0].Y))
	_, _, _, _, _ = c.AllOnHull(), c.FullyVisible(), c.Connected(), c.HullArea(), c.Spread()

	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		r := rng.Intn(c.N())
		p := c.Centers()[r]
		p.X += (rng.Float64()*2 - 1) * 0.3
		p.Y += (rng.Float64()*2 - 1) * 0.3
		c.Move(r, p)
		_ = c.AllOnHull()
		_ = c.FullyVisible()
		_ = c.Connected()
		_ = c.HullArea()
		_ = c.Spread()
		i++
	})
	if allocs != 0 {
		t.Fatalf("warmed Move+queries allocates %v allocs/op, want 0", allocs)
	}
}
