package incr

import (
	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/vision"
)

// corridorMargin is the absolute slack added to the blocking-corridor radius
// when deciding whether a moved disc can affect a cached pair verdict. The
// corridor bound 2r+BlockTol is mathematically exact; the margin only has to
// absorb floating-point rounding in DistancePointSegment (relative error
// ~1e-15 of coordinates, i.e. absolute ~1e-12 at simulation scale), which it
// exceeds by six orders of magnitude. Erring wide merely recomputes a pair
// that could not have changed — never the reverse.
const corridorMargin = 1e-6

// Cache is the incremental geometry state for one configuration of unit-disc
// robots under a fixed visibility model. Construct it with New, report every
// position change through Move, and read the cached predicates through the
// query methods; every answer is bit-identical to the from-scratch oracle on
// the current centers. A Cache is not safe for concurrent use.
type Cache struct {
	model   *vision.Model
	radius  float64
	centers []geom.Vec
	n       int

	// vis is the ordered n x n visibility matrix (row i, column j answers
	// "does i see j"); the diagonal is always true. Ordered — not unordered —
	// because the candidate-segment construction is not symmetric in ulps:
	// Visible(i, j) and Visible(j, i) agree in practice but are not provably
	// bit-identical, and the oracle FullyVisible iterates ordered pairs.
	vis   []bool
	invis int // number of false entries in vis

	vsc vision.Scratch

	hullDirty bool
	hullSc    geom.HullScratch
	corners   []geom.Vec // aliases hullSc; valid until the next recompute
	hullArea  float64
	onHull    int

	connDirty bool
	connected bool
	seen      []bool
	stack     []int
}

// New builds the cache for the given centers (copied) under the given
// visibility model (nil means vision.Default).
func New(m *vision.Model, centers []geom.Vec) *Cache {
	if m == nil {
		m = vision.Default
	}
	c := &Cache{
		model:  m,
		radius: m.Radius(),
		n:      len(centers),
	}
	c.centers = append([]geom.Vec(nil), centers...)
	c.vis = make([]bool, c.n*c.n)
	c.seen = make([]bool, c.n)
	c.stack = make([]int, 0, c.n)
	c.rebuildVisibility()
	c.hullDirty = true
	c.connDirty = true
	return c
}

// Reset re-initializes the cache from scratch for a new configuration of the
// same size (the structural-change fallback: when more than one position
// changed at once, incremental invalidation no longer applies).
func (c *Cache) Reset(centers []geom.Vec) {
	if len(centers) != c.n {
		panic("incr: Reset with a different configuration size")
	}
	copy(c.centers, centers)
	c.rebuildVisibility()
	c.hullDirty = true
	c.connDirty = true
}

// Centers exposes the cache's view of the current configuration. Read-only:
// mutate positions only through Move.
func (c *Cache) Centers() []geom.Vec { return c.centers }

// N returns the configuration size.
func (c *Cache) N() int { return c.n }

// Move records that robot i moved to p and re-establishes every cached
// verdict that the move could possibly have changed: both directions of every
// pair involving i, plus both directions of any pair whose blocking corridor
// contains i's old or new center. Hull and connectivity are marked stale and
// recomputed lazily on the next query.
func (c *Cache) Move(i int, p geom.Vec) {
	old := c.centers[i]
	c.centers[i] = p
	for j := 0; j < c.n; j++ {
		if j == i {
			continue
		}
		c.setVis(i, j, c.pairVisible(i, j))
		c.setVis(j, i, c.pairVisible(j, i))
	}
	thr := 2*c.radius + vision.BlockTol + corridorMargin
	for a := 0; a < c.n; a++ {
		if a == i {
			continue
		}
		ca := c.centers[a]
		for b := a + 1; b < c.n; b++ {
			if b == i {
				continue
			}
			cb := c.centers[b]
			if geom.DistancePointSegment(old, ca, cb) <= thr ||
				geom.DistancePointSegment(p, ca, cb) <= thr {
				c.setVis(a, b, c.pairVisible(a, b))
				c.setVis(b, a, c.pairVisible(b, a))
			}
		}
	}
	c.hullDirty = true
	c.connDirty = true
}

// Visible reports whether robot i sees robot j (cached; equals
// vision.Model.Visible on the current centers).
func (c *Cache) Visible(i, j int) bool {
	if i == j {
		return true
	}
	return c.vis[i*c.n+j]
}

// FullyVisible reports whether every robot sees every other robot (equals
// vision.Model.FullyVisible on the current centers).
func (c *Cache) FullyVisible() bool { return c.invis == 0 }

// AppendViewCenters appends the centers visible from robot i — robot i's Look
// snapshot, identical to vision.Model.ViewCenters — to dst and returns the
// extended slice.
func (c *Cache) AppendViewCenters(dst []geom.Vec, i int) []geom.Vec {
	row := c.vis[i*c.n : (i+1)*c.n]
	for j, v := range row {
		if v {
			dst = append(dst, c.centers[j])
		}
	}
	return dst
}

// Connected reports whether the tangency graph on the unit discs is connected
// (equals config.Geometric.Connected).
func (c *Cache) Connected() bool {
	if c.connDirty {
		c.recomputeConnected()
	}
	return c.connected
}

// OnHullCount returns the number of robots on the convex hull boundary
// (equals config.Geometric.OnHullCount).
func (c *Cache) OnHullCount() int {
	if c.hullDirty {
		c.recomputeHull()
	}
	return c.onHull
}

// AllOnHull reports whether every robot center lies on the convex hull
// boundary (equals config.Geometric.AllOnHull).
func (c *Cache) AllOnHull() bool { return c.OnHullCount() == c.n }

// HullArea returns the area of the convex hull of the centers, bit-identical
// to config.Geometric.HullArea (same corners in the same order through the
// same PolygonArea sum).
func (c *Cache) HullArea() float64 {
	if c.hullDirty {
		c.recomputeHull()
	}
	return c.hullArea
}

// HullCorners returns the hull corner vertices, CCW, bit-identical to
// geom.ConvexHull on the current centers. The slice aliases the cache and is
// only valid until the next Move/Reset-triggered recompute.
func (c *Cache) HullCorners() []geom.Vec {
	if c.hullDirty {
		c.recomputeHull()
	}
	return c.corners
}

// Centroid returns the centroid of the robot centers (equals geom.Centroid).
func (c *Cache) Centroid() geom.Vec { return geom.Centroid(c.centers) }

// Spread returns the maximum pairwise center distance, bit-identical to
// config.Geometric.Spread (same loop order, same comparison).
func (c *Cache) Spread() float64 {
	g := c.centers
	maxD := 0.0
	for i := 0; i < len(g); i++ {
		for j := i + 1; j < len(g); j++ {
			if d := g[i].Dist(g[j]); d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// pairVisible answers one ordered visibility query from scratch.
func (c *Cache) pairVisible(i, j int) bool {
	return c.model.VisibleScratch(&c.vsc, c.centers, i, j)
}

// rebuildVisibility recomputes the whole matrix. Large configurations go
// through the uniform-grid index exactly like the batch Model queries do (the
// grid answers are pinned identical to the flat scan); the per-move updates
// always use the flat scratch query, which is allocation-free.
func (c *Cache) rebuildVisibility() {
	c.invis = 0
	if c.n >= vision.GridThreshold {
		ix := c.model.NewIndex(c.centers)
		for i := 0; i < c.n; i++ {
			row := c.vis[i*c.n : (i+1)*c.n]
			for j := range row {
				v := i == j || ix.Visible(i, j)
				row[j] = v
				if !v {
					c.invis++
				}
			}
		}
		return
	}
	for i := 0; i < c.n; i++ {
		row := c.vis[i*c.n : (i+1)*c.n]
		for j := range row {
			v := i == j || c.pairVisible(i, j)
			row[j] = v
			if !v {
				c.invis++
			}
		}
	}
}

// setVis updates one ordered matrix entry, maintaining the invisible-pair
// count. i != j.
func (c *Cache) setVis(i, j int, v bool) {
	idx := i*c.n + j
	if c.vis[idx] != v {
		if v {
			c.invis--
		} else {
			c.invis++
		}
		c.vis[idx] = v
	}
}

// recomputeHull refreshes corners, area and boundary count from the current
// centers into the reused scratch.
func (c *Cache) recomputeHull() {
	c.corners, c.onHull = c.hullSc.HullWithOnHullCount(c.centers)
	c.hullArea = geom.PolygonArea(c.corners)
	c.hullDirty = false
}

// recomputeConnected refreshes the connectivity flag: a DFS over the tangency
// graph with edges tested on the fly (geom.DiscsTangent with the same
// unit-radius contact tolerance as config.Geometric.Touching), no adjacency
// lists materialized. Reachability does not depend on traversal order, so the
// flag matches config.Geometric.Connected exactly.
func (c *Cache) recomputeConnected() {
	c.connDirty = false
	n := c.n
	if n == 0 {
		c.connected = false
		return
	}
	if n == 1 {
		c.connected = true
		return
	}
	for i := range c.seen {
		c.seen[i] = false
	}
	c.stack = append(c.stack[:0], 0)
	c.seen[0] = true
	count := 1
	for len(c.stack) > 0 {
		cur := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		cc := c.centers[cur]
		for nb := 0; nb < n; nb++ {
			if c.seen[nb] || nb == cur {
				continue
			}
			if geom.DiscsTangent(cc, c.centers[nb], geom.UnitRadius, config.ContactEps) {
				c.seen[nb] = true
				count++
				c.stack = append(c.stack, nb)
			}
		}
	}
	c.connected = count == n
}
