package geom_test

import (
	"testing"

	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/workload"
)

// The hull microbenchmarks live next to the package they measure (they used
// to hide under BenchmarkGeometryPrimitives in the repo root, where -bench
// filtering and pprof attribution were awkward). Sub-benchmark names use the
// "n=128" form: scripts/bench-snapshot.sh strips a trailing "-<digits>"
// GOMAXPROCS suffix from benchmark names, which would also eat a bare "-128".

func BenchmarkConvexHull(b *testing.B) {
	pts := workload.Ring(128, 300)
	b.Run("fresh/n=128", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = geom.ConvexHull(pts)
		}
	})
	b.Run("scratch/n=128", func(b *testing.B) {
		b.ReportAllocs()
		var sc geom.HullScratch
		sc.ConvexHull(pts)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sc.ConvexHull(pts)
		}
	})
}
