package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(V(0, 0), V(3, 4))
	if !almostEq(s.Length(), 5, 1e-12) {
		t.Fatalf("length = %v", s.Length())
	}
	if !s.Midpoint().EqWithin(V(1.5, 2), 1e-12) {
		t.Fatalf("midpoint = %v", s.Midpoint())
	}
	if !almostEq(s.Direction().Norm(), 1, 1e-12) {
		t.Fatalf("direction not unit: %v", s.Direction())
	}
	if !s.PointAt(0.5).EqWithin(V(1.5, 2), 1e-12) {
		t.Fatalf("pointAt = %v", s.PointAt(0.5))
	}
	if !s.Contains(V(1.5, 2)) {
		t.Fatal("should contain midpoint")
	}
	if s.Contains(V(10, 10)) {
		t.Fatal("should not contain far point")
	}
	if !almostEq(s.DistanceTo(V(0, 5)), 3, 1e-9) {
		t.Fatalf("distanceTo = %v", s.DistanceTo(V(0, 5)))
	}
	if !s.Closest(V(0, 0)).EqWithin(V(0, 0), 1e-12) {
		t.Fatal("closest to endpoint should be endpoint")
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		name           string
		p1, p2, q1, q2 Vec
		want           bool
	}{
		{"crossing", V(0, 0), V(2, 2), V(0, 2), V(2, 0), true},
		{"touching-endpoint", V(0, 0), V(1, 1), V(1, 1), V(2, 0), true},
		{"parallel-disjoint", V(0, 0), V(1, 0), V(0, 1), V(1, 1), false},
		{"collinear-overlap", V(0, 0), V(2, 0), V(1, 0), V(3, 0), true},
		{"collinear-disjoint", V(0, 0), V(1, 0), V(2, 0), V(3, 0), false},
		{"T-junction", V(0, 0), V(2, 0), V(1, -1), V(1, 0), true},
		{"near-miss", V(0, 0), V(2, 0), V(1, 0.01), V(1, 1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentsIntersect(tt.p1, tt.p2, tt.q1, tt.q2); got != tt.want {
				t.Fatalf("got %v want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentIntersection(t *testing.T) {
	pt, ok := SegmentIntersection(V(0, 0), V(2, 2), V(0, 2), V(2, 0))
	if !ok || !pt.EqWithin(V(1, 1), 1e-9) {
		t.Fatalf("crossing: got %v ok=%v", pt, ok)
	}
	_, ok = SegmentIntersection(V(0, 0), V(1, 0), V(0, 1), V(1, 1))
	if ok {
		t.Fatal("parallel disjoint should not intersect")
	}
	pt, ok = SegmentIntersection(V(0, 0), V(2, 0), V(1, 0), V(3, 0))
	if !ok || !Between(V(0, 0), V(2, 0), pt) {
		t.Fatalf("collinear overlap: got %v ok=%v", pt, ok)
	}
	_, ok = SegmentIntersection(V(0, 0), V(1, 0), V(0.5, 1), V(0.5, 0.2))
	if ok {
		t.Fatal("segments that stop short should not intersect")
	}
}

func TestLineIntersection(t *testing.T) {
	pt, ok := LineIntersection(V(0, 0), V(1, 0), V(5, -1), V(5, 1))
	if !ok || !pt.EqWithin(V(5, 0), 1e-9) {
		t.Fatalf("got %v ok=%v", pt, ok)
	}
	_, ok = LineIntersection(V(0, 0), V(1, 0), V(0, 1), V(1, 1))
	if ok {
		t.Fatal("parallel lines should not intersect")
	}
	// Lines extend beyond segments.
	pt, ok = LineIntersection(V(0, 0), V(1, 1), V(10, 0), V(11, -1))
	if !ok || !pt.EqWithin(V(5, 5), 1e-9) {
		t.Fatalf("extended: got %v ok=%v", pt, ok)
	}
}

func TestSegmentDistance(t *testing.T) {
	if d := SegmentDistance(V(0, 0), V(2, 2), V(0, 2), V(2, 0)); d != 0 {
		t.Fatalf("intersecting segments distance = %v", d)
	}
	if d := SegmentDistance(V(0, 0), V(1, 0), V(0, 2), V(1, 2)); !almostEq(d, 2, 1e-9) {
		t.Fatalf("parallel distance = %v", d)
	}
	if d := SegmentDistance(V(0, 0), V(1, 0), V(3, 0), V(4, 0)); !almostEq(d, 2, 1e-9) {
		t.Fatalf("collinear gap distance = %v", d)
	}
}

// Property: the reported intersection point of two segments lies on both.
func TestSegmentIntersectionOnBothProperty(t *testing.T) {
	f := func(a, b, c, d, e, f64, g, h float64) bool {
		vals := []float64{a, b, c, d, e, f64, g, h}
		for _, v := range vals {
			if math.IsNaN(v) || math.Abs(v) > 1e3 {
				return true
			}
		}
		p1, p2, q1, q2 := V(a, b), V(c, d), V(e, f64), V(g, h)
		pt, ok := SegmentIntersection(p1, p2, q1, q2)
		if !ok {
			return true
		}
		tol := 1e-6 * (1 + p1.Dist(p2) + q1.Dist(q2))
		return DistancePointSegment(pt, p1, p2) <= tol && DistancePointSegment(pt, q1, q2) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SegmentsIntersect agrees with SegmentIntersection's ok result for
// non-degenerate inputs.
func TestIntersectConsistencyProperty(t *testing.T) {
	f := func(a, b, c, d, e, f64, g, h float64) bool {
		vals := []float64{a, b, c, d, e, f64, g, h}
		for _, v := range vals {
			if math.IsNaN(v) || math.Abs(v) > 1e3 {
				return true
			}
		}
		p1, p2, q1, q2 := V(a, b), V(c, d), V(e, f64), V(g, h)
		if p1.Dist(p2) < 1e-3 || q1.Dist(q2) < 1e-3 {
			return true
		}
		boolRes := SegmentsIntersect(p1, p2, q1, q2)
		_, ptRes := SegmentIntersection(p1, p2, q1, q2)
		if boolRes == ptRes {
			return true
		}
		// They may disagree only within tolerance of touching.
		return SegmentDistance(p1, p2, q1, q2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
