package geom

import "math"

// UnitRadius is the radius of a fat robot's disc, per the paper's model
// (robots are closed unit discs).
const UnitRadius = 1.0

// Circle is a circle (or closed disc, depending on usage) with a center and
// radius.
type Circle struct {
	Center Vec
	Radius float64
}

// UnitDisc returns the unit-radius circle centered at c, i.e. the footprint of
// a fat robot whose center is c.
func UnitDisc(c Vec) Circle { return Circle{Center: c, Radius: UnitRadius} }

// Contains reports whether p lies in the closed disc.
func (c Circle) Contains(p Vec) bool {
	return c.Center.Dist(p) <= c.Radius+Eps
}

// ContainsStrict reports whether p lies strictly inside the open disc, with a
// tolerance margin: points within tol of the boundary are treated as on the
// boundary (and therefore not strictly inside).
func (c Circle) ContainsStrict(p Vec, tol float64) bool {
	return c.Center.Dist(p) < c.Radius-tol
}

// OnBoundary reports whether p is within tol of the circle's boundary.
func (c Circle) OnBoundary(p Vec, tol float64) bool {
	return math.Abs(c.Center.Dist(p)-c.Radius) <= tol
}

// PointAtAngle returns the boundary point at the given angle (radians,
// measured counter-clockwise from the positive x-axis).
func (c Circle) PointAtAngle(theta float64) Vec {
	s, cos := math.Sincos(theta)
	return Vec{c.Center.X + c.Radius*cos, c.Center.Y + c.Radius*s}
}

// DiscsOverlap reports whether the open discs around a and b (both of radius
// r) overlap, i.e. their centers are closer than 2r (minus tolerance). Two
// tangent discs do NOT overlap.
func DiscsOverlap(a, b Vec, r, tol float64) bool {
	return a.Dist(b) < 2*r-tol
}

// DiscsTangent reports whether the discs of radius r centered at a and b are
// tangent within tolerance tol (center distance within tol of 2r).
func DiscsTangent(a, b Vec, r, tol float64) bool {
	return math.Abs(a.Dist(b)-2*r) <= tol
}

// SegmentIntersectsDisc reports whether the closed segment [a, b] intersects
// the OPEN disc of radius r around center. Touching the boundary (tangency)
// does not count as an intersection; tol shrinks the disc slightly to make
// the test robust against floating-point noise on exact tangencies.
func SegmentIntersectsDisc(a, b, center Vec, r, tol float64) bool {
	return DistancePointSegment(center, a, b) < r-tol
}

// FirstDiscContact returns the smallest t in [0, limit] at which a disc of
// radius r starting at p and moving along the unit vector u becomes tangent
// to the disc of radius r at q (center distance 2r). hits is false if no
// such t exists within the limit or the mover is heading away. contactEps is
// the tangency tolerance: discs already within 2r+contactEps are treated as
// touching, and block immediately only when the mover approaches.
func FirstDiscContact(p, u, q Vec, r, limit, contactEps float64) (t float64, hits bool) {
	contact := 2 * r
	f := p.Sub(q)
	dist := f.Norm()
	approachRate := f.Dot(u) // negative when approaching
	if dist <= contact+contactEps {
		// Already touching: blocked immediately only if moving closer.
		if approachRate < -Eps {
			return 0, true
		}
		return 0, false
	}
	// Solve |f + t*u|^2 = contact^2.
	b := 2 * approachRate
	c := f.Norm2() - contact*contact
	disc := b*b - 4*c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	t1 := (-b - sq) / 2
	if t1 < 0 || t1 > limit {
		return 0, false
	}
	return t1, true
}

// SegmentCircleIntersections returns the intersection points of the closed
// segment [a, b] with the circle boundary (0, 1 or 2 points).
func SegmentCircleIntersections(a, b Vec, c Circle) []Vec {
	d := b.Sub(a)
	f := a.Sub(c.Center)
	A := d.Dot(d)
	if A < Eps*Eps {
		if c.OnBoundary(a, Eps) {
			return []Vec{a}
		}
		return nil
	}
	B := 2 * f.Dot(d)
	C := f.Dot(f) - c.Radius*c.Radius
	disc := B*B - 4*A*C
	if disc < 0 {
		return nil
	}
	sq := math.Sqrt(disc)
	var out []Vec
	for _, t := range []float64{(-B - sq) / (2 * A), (-B + sq) / (2 * A)} {
		if t < -Eps || t > 1+Eps {
			continue
		}
		p := a.Add(d.Scale(Clamp(t, 0, 1)))
		dup := false
		for _, q := range out {
			if q.EqWithin(p, Eps) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

// LineCircleIntersections returns the intersection points of the infinite
// line through a and b with the circle boundary (0, 1 or 2 points).
func LineCircleIntersections(a, b Vec, c Circle) []Vec {
	d := b.Sub(a)
	f := a.Sub(c.Center)
	A := d.Dot(d)
	if A < Eps*Eps {
		return nil
	}
	B := 2 * f.Dot(d)
	C := f.Dot(f) - c.Radius*c.Radius
	disc := B*B - 4*A*C
	if disc < 0 {
		return nil
	}
	sq := math.Sqrt(disc)
	p1 := a.Add(d.Scale((-B - sq) / (2 * A)))
	p2 := a.Add(d.Scale((-B + sq) / (2 * A)))
	if p1.EqWithin(p2, Eps) {
		return []Vec{p1}
	}
	return []Vec{p1, p2}
}

// CircleCircleIntersections returns the intersection points of the boundaries
// of two circles (0, 1 or 2 points).
func CircleCircleIntersections(c1, c2 Circle) []Vec {
	d := c1.Center.Dist(c2.Center)
	if d < Eps {
		return nil // concentric (or identical): none or infinitely many
	}
	if d > c1.Radius+c2.Radius+Eps || d < math.Abs(c1.Radius-c2.Radius)-Eps {
		return nil
	}
	a := (c1.Radius*c1.Radius - c2.Radius*c2.Radius + d*d) / (2 * d)
	h2 := c1.Radius*c1.Radius - a*a
	if h2 < 0 {
		h2 = 0
	}
	h := math.Sqrt(h2)
	dir := c2.Center.Sub(c1.Center).Unit()
	mid := c1.Center.Add(dir.Scale(a))
	if h < Eps {
		return []Vec{mid}
	}
	off := dir.Perp().Scale(h)
	return []Vec{mid.Add(off), mid.Sub(off)}
}

// OuterTangentSegments returns the two outer common tangent segments between
// two circles of equal radius r centered at a and b. Each segment connects
// the tangency point on circle a to the tangency point on circle b. For
// coincident centers it returns nil.
//
// For equal radii the outer tangents are simply the two translates of the
// center segment by +-r along the perpendicular direction.
func OuterTangentSegments(a, b Vec, r float64) []Segment {
	return AppendOuterTangentSegments(nil, a, b, r)
}

// AppendOuterTangentSegments appends the two outer common tangent segments
// (see OuterTangentSegments) to dst and returns the extended slice, appending
// nothing for coincident centers. It exists so hot paths can reuse a segment
// buffer instead of allocating one per pair query.
func AppendOuterTangentSegments(dst []Segment, a, b Vec, r float64) []Segment {
	d := b.Sub(a)
	if d.Norm() < Eps {
		return dst
	}
	n := d.Unit().Perp().Scale(r)
	return append(dst,
		Segment{A: a.Add(n), B: b.Add(n)},
		Segment{A: a.Sub(n), B: b.Sub(n)},
	)
}

// InnerTangentSegments returns the inner common tangent segments between two
// circles of equal radius r centered at a and b (the tangents that cross
// between the circles). They exist only when the discs are disjoint (center
// distance > 2r); otherwise nil is returned.
func InnerTangentSegments(a, b Vec, r float64) []Segment {
	d := a.Dist(b)
	if d <= 2*r+Eps {
		return nil
	}
	mid := Midpoint(a, b)
	// Angle between the center line and the tangent line at the tangency
	// point: sin(alpha) = 2r/d for the inner tangent of equal circles.
	sin := 2 * r / d
	if sin > 1 {
		return nil
	}
	alpha := math.Asin(sin)
	dir := b.Sub(a).Unit()
	var segs []Segment
	for _, sgn := range []float64{1, -1} {
		// Tangency point on circle a: rotate dir by (pi/2 - alpha)*sgn... use
		// direct construction: the tangent from a touches its own circle at a
		// point whose radius vector is perpendicular to the tangent line. The
		// inner tangent passes through the midpoint of the centers.
		// Direction of the tangent line through mid:
		tangentDir := dir.Rotate(sgn * alpha)
		// Tangency points are the feet of perpendiculars from each center.
		pa := ProjectPointOnLine(a, mid, mid.Add(tangentDir))
		pb := ProjectPointOnLine(b, mid, mid.Add(tangentDir))
		segs = append(segs, Segment{A: pa, B: pb})
	}
	return segs
}
