package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	NewCounter("fatgather_httptest_total").Inc()
	h := Handler()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "fatgather_httptest_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", rec.Body.String())
	}

	// Counter monotonicity across scrapes.
	NewCounter("fatgather_httptest_total").Add(2)
	rec2 := get("/metrics")
	if !strings.Contains(rec2.Body.String(), "fatgather_httptest_total 3") {
		t.Fatalf("second scrape not monotone:\n%s", rec2.Body.String())
	}
}

func TestProgressEndpointIdle(t *testing.T) {
	// Graceful while no sweep is active: 200, valid JSON, active=false.
	SweepEnd()
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))
	if rec.Code != 200 {
		t.Fatalf("/progress status = %d, want 200 while idle", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/progress content-type = %q", ct)
	}
	var st ProgressState
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, rec.Body.String())
	}
	if st.Active {
		t.Fatal("idle /progress reports an active sweep")
	}
}

func TestProgressEndpointLiveSweep(t *testing.T) {
	SweepBegin("E13", "w1")
	defer SweepEnd()
	SweepGroups(4)
	SweepGroupClaimed(false)
	SweepGroupClaimed(true) // stolen
	SweepGroupDone()
	SweepLeaseReclaimed()
	SweepCells(10, 3)
	SweepAdaptive("g-open", 6, 0.08, false)
	SweepAdaptive("g-closed", 9, 0.04, true)

	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))
	var st ProgressState
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if !st.Active || st.Sweep == nil {
		t.Fatalf("expected active sweep, got %+v", st)
	}
	s := st.Sweep
	if s.Experiment != "E13" || s.Owner != "w1" {
		t.Fatalf("sweep identity = %q/%q", s.Experiment, s.Owner)
	}
	if s.TotalGroups != 4 || s.GroupsClaimed != 2 || s.GroupsStolen != 1 || s.GroupsDone != 1 || s.LeasesReclaimed != 1 {
		t.Fatalf("group counters wrong: %+v", s)
	}
	if s.CellsExecuted != 10 || s.CellsRestored != 3 {
		t.Fatalf("cell counters wrong: %+v", s)
	}
	if len(s.OpenGroups) != 1 || s.OpenGroups[0].Group != "g-open" || s.OpenGroups[0].Seeds != 6 {
		t.Fatalf("open groups wrong: %+v", s.OpenGroups)
	}
}

func TestPprofMounted(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("/debug/pprof/ status=%d body=%q", rec.Code, rec.Body.String())
	}
}
