package obs

import (
	"bufio"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var lineRe = regexp.MustCompile(`^ts=\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z level=(warn|info) component=[^ ]+ msg="(?:[^"\\]|\\.)*"$`)

func TestLoggerFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.Warnf("sweep", "skipping corrupt record at line %d", 7)
	l.Infof("bench", `quoted "msg" with
newline`)
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	n := 0
	for sc.Scan() {
		n++
		if !lineRe.MatchString(sc.Text()) {
			t.Errorf("line not machine-parseable logfmt: %q", sc.Text())
		}
	}
	if n != 2 {
		t.Fatalf("got %d lines, want 2 (one record must stay one physical line)", n)
	}
	if !strings.Contains(b.String(), "skipping corrupt record at line 7") {
		t.Fatalf("message lost: %q", b.String())
	}
}

func TestLoggerSerializesConcurrentWriters(t *testing.T) {
	var b strings.Builder
	var mu sync.Mutex // strings.Builder is not goroutine-safe; the logger serializes, but guard the sink anyway
	l := NewLogger(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	}))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Warnf("worker", "w%d line %d", w, i)
			}
		}(w)
	}
	wg.Wait()
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	lines := 0
	for sc.Scan() {
		lines++
		if !lineRe.MatchString(sc.Text()) {
			t.Fatalf("interleaved/partial line: %q", sc.Text())
		}
	}
	if lines != 400 {
		t.Fatalf("got %d lines, want 400", lines)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestDefaultLoggerCountsLines(t *testing.T) {
	var b strings.Builder
	restore := SetDefaultOutput(&b)
	defer restore()
	before := Default.Counter("fatgather_log_lines_total", L("level", "warn")).Value()
	Warnf("test", "hello %s", "world")
	after := Default.Counter("fatgather_log_lines_total", L("level", "warn")).Value()
	if after != before+1 {
		t.Fatalf("warn line counter %d -> %d, want +1", before, after)
	}
	if !strings.Contains(b.String(), `msg="hello world"`) {
		t.Fatalf("default logger output = %q", b.String())
	}
}
