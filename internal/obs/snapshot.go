package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of every metric in a registry, keyed by
// canonical series name (metric name plus sorted labels). encoding/json
// marshals map keys in sorted order, so the serialized form is stable for a
// given set of values. Snapshots are advisory telemetry: they are never part
// of sweep store identity or any pinned hash (see internal/sweep/FORMAT.md).
type Snapshot struct {
	// UptimeSeconds is the wall-clock age of the registry (process start for
	// Default), the denominator for rate summaries such as events/sec.
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]float64           `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. Read API: serving layer
// only — calling this from a determinism-contract package is a gatherlint
// obsread finding.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		//gatherlint:ignore nondetsource uptime is telemetry metadata, never folded into results
		UptimeSeconds: time.Since(r.start).Seconds(),
		Counters:      make(map[string]int64, len(r.counters)),
		Gauges:        make(map[string]float64, len(r.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(r.hists)),
	}
	// Map-to-map copies are order-independent, but collect-and-sort anyway so
	// the package honors the same detmaprange idiom it is linted under.
	for _, key := range sortedKeys(r.counters) {
		s.Counters[key] = r.counters[key].Value()
	}
	for _, key := range sortedKeys(r.gauges) {
		s.Gauges[key] = r.gauges[key].Value()
	}
	for _, key := range sortedKeys(r.hists) {
		s.Histograms[key] = r.hists[key].snapshot()
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the registry snapshot as indented JSON. Read API.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// DumpJSON writes the registry snapshot to the named file, for the
// -telemetry-out flag. Read API.
func (r *Registry) DumpJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create telemetry snapshot: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write telemetry snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: close telemetry snapshot: %w", err)
	}
	return nil
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric name, then each
// series sorted by canonical name; histograms expand into cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`. Read API.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type series struct {
		name string // metric name (TYPE line granularity)
		key  string // canonical series name (sort key)
		kind string
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	all := make([]series, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, key := range sortedKeys(r.counters) {
		c := r.counters[key]
		all = append(all, series{name: c.name, key: key, kind: "counter", c: c})
	}
	for _, key := range sortedKeys(r.gauges) {
		g := r.gauges[key]
		all = append(all, series{name: g.name, key: key, kind: "gauge", g: g})
	}
	for _, key := range sortedKeys(r.hists) {
		h := r.hists[key]
		all = append(all, series{name: h.name, key: key, kind: "histogram", h: h})
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].key < all[j].key
	})

	var b strings.Builder
	lastTyped := ""
	for _, s := range all {
		if s.name != lastTyped {
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
			lastTyped = s.name
		}
		switch s.kind {
		case "counter":
			fmt.Fprintf(&b, "%s %d\n", s.key, s.c.Value())
		case "gauge":
			fmt.Fprintf(&b, "%s %s\n", s.key, formatFloat(s.g.Value()))
		case "histogram":
			snap := s.h.snapshot()
			for _, bc := range snap.Buckets {
				le := "+Inf"
				if !math.IsInf(bc.LE, 1) {
					le = formatFloat(bc.LE)
				}
				fmt.Fprintf(&b, "%s %d\n", seriesKey(s.name+"_bucket", append(append([]Label(nil), s.h.labels...), L("le", le))), bc.Count)
			}
			fmt.Fprintf(&b, "%s %s\n", seriesKey(s.name+"_sum", s.h.labels), formatFloat(snap.Sum))
			fmt.Fprintf(&b, "%s %d\n", seriesKey(s.name+"_count", s.h.labels), snap.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MarshalJSON renders the bucket bound as a string, matching the Prometheus
// le label convention ("0.001", "+Inf"): encoding/json rejects the +Inf of
// the final bucket as a number.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = formatFloat(b.LE)
	}
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, le, b.Count)), nil
}
