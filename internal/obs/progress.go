package obs

import (
	"sort"
	"sync"
)

// progress is the process-wide live-sweep tracker behind /progress. The
// sweep layer updates it through the package-level Sweep* write helpers; the
// only read is ProgressSnapshot, which belongs to the serving layer. One
// sweep (experiment) is active at a time, matching how the experiment suite
// drives the sweep layer; a Begin while another sweep is active finalizes
// the previous one first.
type progress struct {
	mu        sync.Mutex
	active    bool
	current   SweepState
	completed []SweepSummary
}

var defaultProgress progress

// maxCompleted bounds the completed-sweep history kept for /progress.
const maxCompleted = 64

// SweepState is the live view of one sweep.
type SweepState struct {
	Experiment      string `json:"experiment"`
	Owner           string `json:"owner,omitempty"`
	TotalGroups     int    `json:"total_groups"`
	GroupsClaimed   int    `json:"groups_claimed"`
	GroupsDone      int    `json:"groups_done"`
	GroupsStolen    int    `json:"groups_stolen"`
	LeasesReclaimed int    `json:"leases_reclaimed"`
	CellsExecuted   int64  `json:"cells_executed"`
	CellsRestored   int64  `json:"cells_restored"`
	// OpenGroups lists the adaptive groups still accumulating seeds, with
	// their live confidence-interval half-widths; sorted by group key. Empty
	// for non-adaptive sweeps.
	OpenGroups []AdaptiveGroupState `json:"open_groups,omitempty"`

	// openByKey backs OpenGroups between snapshots.
	openByKey map[string]AdaptiveGroupState
}

// AdaptiveGroupState is the live adaptive-stopping state of one group.
type AdaptiveGroupState struct {
	Group     string  `json:"group"`
	Seeds     int     `json:"seeds"`
	HalfWidth float64 `json:"half_width"`
}

// SweepSummary is the terse record kept for a finished sweep.
type SweepSummary struct {
	Experiment    string `json:"experiment"`
	GroupsDone    int    `json:"groups_done"`
	CellsExecuted int64  `json:"cells_executed"`
	CellsRestored int64  `json:"cells_restored"`
}

// ProgressState is the /progress JSON document.
type ProgressState struct {
	// Active reports whether a sweep is running right now; when false the
	// remaining fields describe history only (the graceful idle response).
	Active bool `json:"active"`
	// Sweep is the live sweep, present only while Active.
	Sweep *SweepState `json:"sweep,omitempty"`
	// Completed lists finished sweeps, oldest first (bounded history).
	Completed []SweepSummary `json:"completed,omitempty"`
}

// SweepBegin marks a sweep as active. Write API.
func SweepBegin(experiment, owner string) {
	p := &defaultProgress
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active {
		p.finishLocked()
	}
	p.active = true
	p.current = SweepState{Experiment: experiment, Owner: owner, openByKey: map[string]AdaptiveGroupState{}}
}

// SweepEnd finalizes the active sweep. Write API.
func SweepEnd() {
	p := &defaultProgress
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active {
		p.finishLocked()
	}
}

func (p *progress) finishLocked() {
	p.completed = append(p.completed, SweepSummary{
		Experiment:    p.current.Experiment,
		GroupsDone:    p.current.GroupsDone,
		CellsExecuted: p.current.CellsExecuted,
		CellsRestored: p.current.CellsRestored,
	})
	if len(p.completed) > maxCompleted {
		p.completed = p.completed[len(p.completed)-maxCompleted:]
	}
	p.active = false
	p.current = SweepState{}
}

// SweepGroups records the total number of groups the active sweep will
// visit. Write API.
func SweepGroups(total int) {
	updateActive(func(s *SweepState) { s.TotalGroups = total })
}

// SweepGroupClaimed counts one group lease claim (stolen marks a
// work-stealing claim of another owner's leftover group). Write API.
func SweepGroupClaimed(stolen bool) {
	updateActive(func(s *SweepState) {
		s.GroupsClaimed++
		if stolen {
			s.GroupsStolen++
		}
	})
}

// SweepGroupDone counts one completed group. Write API.
func SweepGroupDone() {
	updateActive(func(s *SweepState) { s.GroupsDone++ })
}

// SweepLeaseReclaimed counts one expired lease taken over from a dead
// worker. Write API.
func SweepLeaseReclaimed() {
	updateActive(func(s *SweepState) { s.LeasesReclaimed++ })
}

// SweepCells adds executed/restored cell deltas. Write API.
func SweepCells(executed, restored int64) {
	updateActive(func(s *SweepState) {
		s.CellsExecuted += executed
		s.CellsRestored += restored
	})
}

// SweepAdaptive records the live adaptive-stopping state of one group:
// seeds run so far and the confidence-interval half-width. A closed group
// leaves the open set. Write API.
func SweepAdaptive(groupKey string, seeds int, halfWidth float64, closed bool) {
	updateActive(func(s *SweepState) {
		if closed {
			delete(s.openByKey, groupKey)
			return
		}
		s.openByKey[groupKey] = AdaptiveGroupState{Group: groupKey, Seeds: seeds, HalfWidth: halfWidth}
	})
}

func updateActive(f func(*SweepState)) {
	p := &defaultProgress
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.active {
		return
	}
	f(&p.current)
}

// ProgressSnapshot copies the live progress state. Read API: serving layer
// only — calling this from a determinism-contract package is a gatherlint
// obsread finding.
func ProgressSnapshot() ProgressState {
	p := &defaultProgress
	p.mu.Lock()
	defer p.mu.Unlock()
	st := ProgressState{Active: p.active}
	st.Completed = append([]SweepSummary(nil), p.completed...)
	if p.active {
		cur := p.current
		cur.OpenGroups = make([]AdaptiveGroupState, 0, len(cur.openByKey))
		for k := range cur.openByKey {
			cur.OpenGroups = append(cur.OpenGroups, cur.openByKey[k])
		}
		sort.Slice(cur.OpenGroups, func(i, j int) bool { return cur.OpenGroups[i].Group < cur.OpenGroups[j].Group })
		cur.openByKey = nil
		st.Sweep = &cur
	}
	return st
}
