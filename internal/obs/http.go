package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler returns the telemetry endpoint map on a private mux (nothing is
// registered on http.DefaultServeMux):
//
//	/metrics       Prometheus text exposition of the Default registry
//	/progress      JSON view of the live sharded sweep (ProgressState)
//	/debug/pprof/  net/http/pprof profiles (cpu, heap, goroutine, ...)
//
// Serving layer: handlers read snapshots, which is exactly where reads are
// allowed under the one-way contract.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", serveMetrics)
	mux.HandleFunc("/progress", serveProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	Default.WritePrometheus(w)
}

func serveProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ProgressSnapshot())
}
