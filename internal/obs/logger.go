package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Logger is a serialized structured logger: every line is emitted under one
// mutex through one writer, so concurrent workers can no longer interleave
// partial lines on stderr. The line format is machine-parseable logfmt:
//
//	ts=2026-08-08T12:00:00.000Z level=warn component=sweep msg="skipping corrupt record ..."
//
// Writing a line is telemetry (write API); the logger exposes nothing to
// read back, so it is one-way by construction. Each line also increments the
// fatgather_log_lines_total{level=...} counter on the Default registry, which
// is how warn-path activity (corrupt store lines, lease errors) becomes
// visible in /metrics.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger returns a logger writing to w.
func NewLogger(w io.Writer) *Logger { return &Logger{w: w} }

// defaultLogger serializes the process-wide warn path (package-level Warnf /
// Infof). Guarded by defaultMu so SetDefaultOutput can redirect it in tests
// and CLIs.
var (
	defaultMu     sync.Mutex
	defaultLogger = NewLogger(os.Stderr)
)

// SetDefaultOutput redirects the package-level logger (used by instrumented
// packages' warn paths) to w, returning a restore function. Serving-layer
// and test use only.
func SetDefaultOutput(w io.Writer) (restore func()) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	prev := defaultLogger
	defaultLogger = NewLogger(w)
	return func() {
		defaultMu.Lock()
		defer defaultMu.Unlock()
		defaultLogger = prev
	}
}

func defaultLog() *Logger {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	return defaultLogger
}

// Warnf emits one warn-level line on the process-wide logger. Write API.
func Warnf(component, format string, args ...any) {
	defaultLog().Warnf(component, format, args...)
}

// Infof emits one info-level line on the process-wide logger. Write API.
func Infof(component, format string, args ...any) {
	defaultLog().Infof(component, format, args...)
}

// Warnf emits one warn-level line. Write API.
func (l *Logger) Warnf(component, format string, args ...any) {
	l.logf("warn", component, format, args...)
}

// Infof emits one info-level line. Write API.
func (l *Logger) Infof(component, format string, args ...any) {
	l.logf("info", component, format, args...)
}

func (l *Logger) logf(level, component, format string, args ...any) {
	logLines(level).Inc()
	msg := fmt.Sprintf(format, args...)
	//gatherlint:ignore nondetsource log timestamps are telemetry metadata, never folded into results
	ts := time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	line := fmt.Sprintf("ts=%s level=%s component=%s msg=%q\n", ts, level, component, quoteSafe(msg))
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, line)
}

// quoteSafe keeps the msg value single-line so one log record is always one
// physical line (the %q quoting escapes the rest).
func quoteSafe(msg string) string {
	msg = strings.ReplaceAll(msg, "\n", " ")
	return strings.ReplaceAll(msg, "\r", " ")
}

// logLines resolves the per-level line counter lazily: levels are few, so
// the get-or-create lookup cost is irrelevant next to the format+write.
func logLines(level string) *Counter {
	return Default.Counter("fatgather_log_lines_total", L("level", level))
}
