// Package obs is the deterministic-safe telemetry layer: a stdlib-only
// metrics registry (counters, gauges, histograms, labeled families), a
// serialized structured logger, and a live sweep-progress tracker, exposed
// over HTTP (/metrics in Prometheus text format, /progress as JSON,
// net/http/pprof under /debug/pprof/) and as JSON snapshots.
//
// # The one-way contract
//
// Telemetry is strictly one-way. Result-producing packages (internal/sim,
// internal/engine, internal/sweep, ... — the gatherlint deterministicPackages
// list) may WRITE to obs — increment counters, set gauges, observe
// histograms, emit log lines, update sweep progress — but must never READ
// from it: no Value, no Snapshot, no ProgressSnapshot. Reads belong to the
// serving layer (the cmd/ binaries and the HTTP handlers). Because no pinned
// result can depend on a telemetry read, every determinism hash, sweep store
// byte and livelock fingerprint is byte-identical with telemetry on or off.
// The contract is enforced statically by gatherlint's obsread analyzer.
//
// Wall-clock reads that feed telemetry (step timing, per-cell elapsed, store
// latency) stay at the call sites in the instrumented packages, each behind
// the established `//gatherlint:ignore nondetsource` discipline; obs itself
// is exempt from nondetsource (reading the clock is its job — see
// internal/lint/nondetsource.go) but remains under every other gatherlint
// analyzer, so e.g. its snapshots must sort before iterating maps.
//
// # Hot-path cost
//
// Metric handles are package-level vars resolved once at init; writes are
// single atomic operations (histograms: one linear bucket scan over ~10
// bounds plus two atomic adds and a CAS loop for the sum). Per-event costs in
// the simulator are batched or sampled (see internal/sim) so the pinned
// allocation budgets and throughput benchmarks are unaffected.
package obs
