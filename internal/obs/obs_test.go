package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", L("kind", "a"))
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative deltas are ignored: counters stay monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", L("kind", "a")); again != c {
		t.Fatal("get-or-create returned a different counter for the same series")
	}
	if other := r.Counter("test_total", L("kind", "b")); other == c {
		t.Fatal("distinct label values must be distinct series")
	}

	g := r.Gauge("test_gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	h := r.Histogram("test_seconds")
	h.Observe(5e-7) // bucket le=1e-6
	h.Observe(0.05) // bucket le=0.1
	h.Observe(1000) // +Inf bucket
	snap := h.snapshot()
	if snap.Count != 3 {
		t.Fatalf("histogram count = %d, want 3", snap.Count)
	}
	if want := 5e-7 + 0.05 + 1000; math.Abs(snap.Sum-want) > 1e-9 {
		t.Fatalf("histogram sum = %v, want %v", snap.Sum, want)
	}
	last := snap.Buckets[len(snap.Buckets)-1]
	if !math.IsInf(last.LE, 1) || last.Count != 3 {
		t.Fatalf("+Inf bucket = %+v, want cumulative 3", last)
	}
	for i := 1; i < len(snap.Buckets); i++ {
		if snap.Buckets[i].Count < snap.Buckets[i-1].Count {
			t.Fatalf("bucket counts not cumulative: %+v", snap.Buckets)
		}
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("b", "2"), L("a", "1"))
	b := r.Counter("x_total", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order must not change series identity")
	}
}

func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total")
	h := r.Histogram("race_seconds")
	g := r.Gauge("race_gauge")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if got := h.snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_events_total").Add(7)
	r.Counter("app_runs_total", L("outcome", "gathered")).Add(2)
	r.Counter("app_runs_total", L("outcome", "stalled")).Inc()
	r.Gauge("app_workers").Set(4)
	r.Histogram("app_step_seconds").Observe(0.002)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE app_events_total counter\napp_events_total 7\n",
		"# TYPE app_runs_total counter\napp_runs_total{outcome=\"gathered\"} 2\napp_runs_total{outcome=\"stalled\"} 1\n",
		"# TYPE app_workers gauge\napp_workers 4\n",
		"# TYPE app_step_seconds histogram\n",
		"app_step_seconds_bucket{le=\"0.01\"} 1\n",
		"app_step_seconds_bucket{le=\"+Inf\"} 1\n",
		"app_step_seconds_sum 0.002\n",
		"app_step_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition output missing %q in:\n%s", want, out)
		}
	}
	// Rendering must be deterministic (sorted series).
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if out != b2.String() {
		t.Fatal("two renders of the same registry differ")
	}
}

func TestSnapshotKeys(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", L("k", "v")).Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c_seconds").Observe(1)
	s := r.Snapshot()
	if s.Counters[`a_total{k="v"}`] != 1 {
		t.Fatalf("counter key missing: %v", s.Counters)
	}
	if s.Gauges["b"] != 1 {
		t.Fatalf("gauge key missing: %v", s.Gauges)
	}
	if s.Histograms["c_seconds"].Count != 1 {
		t.Fatalf("histogram key missing: %v", s.Histograms)
	}
	if s.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v, want >= 0", s.UptimeSeconds)
	}
}
