package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value pair attached to a metric. Families of series
// under one metric name (e.g. run outcomes) are formed by registering the
// same name with different label sets.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer metric. The zero value is
// not usable; obtain counters from a Registry (or the package-level Counter
// helper) so they appear in snapshots.
type Counter struct {
	v      atomic.Int64
	name   string
	labels []Label
}

// Inc adds one. Write API.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotone; negative
// deltas are ignored). Write API.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count. Read API: serving layer only — calling
// this from a determinism-contract package is a gatherlint obsread finding.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits   atomic.Uint64
	name   string
	labels []Label
}

// Set replaces the gauge value. Write API.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative deltas decrease it). Write API.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value. Read API: serving layer only.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DurationBuckets is the default histogram bucket ladder, in seconds: a
// decade ladder from 100ns to 60s chosen to cover everything the repo
// observes, from a single simulator step to a full store load.
var DurationBuckets = []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 60}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts; an
// Observe is allocation-free (a linear scan over the bounds, two atomic adds
// and a CAS loop for the sum), cheap enough for per-cell and sampled
// per-event observation.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	name    string
	labels  []Label
}

// Observe records one value. Write API.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one cumulative histogram bucket: the number of observations
// <= LE (math.Inf(1) for the final bucket, rendered "+Inf" in the exposition
// format). Its JSON form renders LE as a string, exactly like the Prometheus
// le label, because JSON has no literal for infinities (see MarshalJSON in
// snapshot.go).
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// snapshot copies the histogram state with cumulative bucket counts.
// Read side; unexported so the read API surface stays on Registry.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Buckets: make([]BucketCount, len(h.bounds)+1),
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{LE: le, Count: cum}
	}
	return s
}

// Registry holds named metrics. Get-or-create lookups take a mutex; callers
// on hot paths resolve their handles once (package-level vars) and then only
// pay atomic writes.
type Registry struct {
	mu       sync.Mutex
	start    time.Time
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry whose uptime clock starts now.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry used by the package-level helpers and
// by everything the instrumented packages record.
var Default = NewRegistry()

// seriesKey renders the canonical identity of one series: the metric name
// plus its labels sorted by key. It is also the exposition-format series
// name, so snapshots can use it directly.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter registered under name+labels, creating it on
// first use. Write API (returns a write handle).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(name, labels)
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{name: name, labels: sortedLabels(labels)}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge registered under name+labels, creating it on first
// use. Write API.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(name, labels)
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{name: name, labels: sortedLabels(labels)}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram registered under name+labels with the
// DurationBuckets ladder, creating it on first use. Write API.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := seriesKey(name, labels)
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{
			bounds: DurationBuckets,
			counts: make([]atomic.Int64, len(DurationBuckets)+1),
			name:   name,
			labels: sortedLabels(labels),
		}
		r.hists[key] = h
	}
	return h
}

func sortedLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// NewCounter returns (get-or-create) a counter on the Default registry.
func NewCounter(name string, labels ...Label) *Counter { return Default.Counter(name, labels...) }

// NewGauge returns (get-or-create) a gauge on the Default registry.
func NewGauge(name string, labels ...Label) *Gauge { return Default.Gauge(name, labels...) }

// NewHistogram returns (get-or-create) a histogram on the Default registry.
func NewHistogram(name string, labels ...Label) *Histogram { return Default.Histogram(name, labels...) }
