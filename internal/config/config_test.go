package config

import (
	"errors"
	"math"
	"testing"

	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/vision"
)

func v(x, y float64) geom.Vec { return geom.V(x, y) }

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Geometric
		wantErr bool
	}{
		{"empty", Geometric{}, false},
		{"single", Geometric{v(0, 0)}, false},
		{"separate", Geometric{v(0, 0), v(5, 0)}, false},
		{"tangent", Geometric{v(0, 0), v(2, 0)}, false},
		{"overlap", Geometric{v(0, 0), v(1, 0)}, true},
		{"nan", Geometric{v(math.NaN(), 0)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v wantErr = %v", err, tt.wantErr)
			}
		})
	}
	err := Geometric{v(0, 0), v(1, 0)}.Validate()
	if !errors.Is(err, ErrOverlap) {
		t.Fatalf("expected ErrOverlap, got %v", err)
	}
}

func TestTouching(t *testing.T) {
	g := Geometric{v(0, 0), v(2, 0), v(10, 0)}
	if !g.Touching(0, 1) {
		t.Fatal("0 and 1 should touch")
	}
	if g.Touching(0, 2) {
		t.Fatal("0 and 2 should not touch")
	}
	if g.Touching(1, 1) {
		t.Fatal("a robot does not touch itself")
	}
	if !g.TouchingAny(0) {
		t.Fatal("0 touches someone")
	}
	if g.TouchingAny(2) {
		t.Fatal("2 touches nobody")
	}
}

func TestConnected(t *testing.T) {
	tests := []struct {
		name string
		cfg  Geometric
		want bool
	}{
		{"empty", Geometric{}, false},
		{"single", Geometric{v(0, 0)}, true},
		{"chain", Geometric{v(0, 0), v(2, 0), v(4, 0)}, true},
		{"gap", Geometric{v(0, 0), v(2, 0), v(10, 0)}, false},
		{"two-pairs", Geometric{v(0, 0), v(2, 0), v(10, 0), v(12, 0)}, false},
		{"L-shape", Geometric{v(0, 0), v(2, 0), v(2, 2)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.cfg.Connected(); got != tt.want {
				t.Fatalf("got %v want %v", got, tt.want)
			}
		})
	}
}

func TestConnectedComponentsTangent(t *testing.T) {
	g := Geometric{v(0, 0), v(2, 0), v(10, 0), v(12, 0), v(20, 20)}
	comps := g.ConnectedComponentsTangent()
	if len(comps) != 3 {
		t.Fatalf("expected 3 components, got %d: %v", len(comps), comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[2] != 2 || sizes[1] != 1 {
		t.Fatalf("unexpected component sizes: %v", comps)
	}
}

func TestHullPredicates(t *testing.T) {
	square := Geometric{v(0, 0), v(10, 0), v(10, 10), v(0, 10)}
	if !square.AllOnHull() {
		t.Fatal("square corners should all be on hull")
	}
	if square.OnHullCount() != 4 {
		t.Fatalf("hull count = %d", square.OnHullCount())
	}
	withInterior := Geometric{v(0, 0), v(10, 0), v(10, 10), v(0, 10), v(5, 5)}
	if withInterior.AllOnHull() {
		t.Fatal("interior robot should not be on hull")
	}
	if withInterior.OnHullCount() != 4 {
		t.Fatalf("hull count = %d", withInterior.OnHullCount())
	}
	if !almostEq(square.HullArea(), 100, 1e-9) {
		t.Fatalf("area = %v", square.HullArea())
	}
	if !almostEq(square.HullPerimeter(), 40, 1e-9) {
		t.Fatalf("perimeter = %v", square.HullPerimeter())
	}
}

func TestGatheredAndVisibility(t *testing.T) {
	m := vision.Default
	// Three tangent robots in a bent chain: connected and fully visible.
	bent := Geometric{v(0, 0), v(2, 0), v(3, math.Sqrt(3))}
	if !bent.Connected() {
		t.Fatal("bent chain should be connected")
	}
	if !bent.FullyVisible(m) {
		t.Fatal("bent chain of three should be fully visible")
	}
	if !bent.Gathered(m) {
		t.Fatal("bent chain should be gathered")
	}
	// Spread-out robots: fully visible but not connected.
	spread := Geometric{v(0, 0), v(10, 0), v(5, 10)}
	if spread.Gathered(m) {
		t.Fatal("spread robots are not gathered")
	}
	// Long straight tangent chain: connected but not fully visible.
	line := Geometric{v(0, 0), v(2, 0), v(4, 0), v(6, 0)}
	if !line.Connected() {
		t.Fatal("line should be connected")
	}
	if line.FullyVisible(m) {
		t.Fatal("straight chain should not be fully visible")
	}
	if line.Gathered(m) {
		t.Fatal("straight chain is not gathered")
	}
}

func TestScalarMeasures(t *testing.T) {
	g := Geometric{v(0, 0), v(3, 4), v(10, 0)}
	if !almostEq(g.Spread(), 10, 1e-9) {
		t.Fatalf("spread = %v", g.Spread())
	}
	if !almostEq(g.MinPairDistance(), 5, 1e-9) {
		t.Fatalf("min pair = %v", g.MinPairDistance())
	}
	if !math.IsInf(Geometric{v(0, 0)}.MinPairDistance(), 1) {
		t.Fatal("single robot min pair should be +Inf")
	}
	min, max := g.BoundingBox()
	if !min.EqWithin(v(-1, -1), 1e-9) || !max.EqWithin(v(11, 5), 1e-9) {
		t.Fatalf("bbox = %v %v", min, max)
	}
}

func TestClone(t *testing.T) {
	g := Geometric{v(0, 0), v(5, 5)}
	c := g.Clone()
	c[0] = v(99, 99)
	if g[0].Eq(v(99, 99)) {
		t.Fatal("clone should not alias")
	}
	if g.N() != 2 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestContactGraphSymmetry(t *testing.T) {
	g := Geometric{v(0, 0), v(2, 0), v(4, 0), v(4, 2)}
	adj := g.ContactGraph()
	for i, nbs := range adj {
		for _, j := range nbs {
			found := false
			for _, k := range adj[j] {
				if k == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("contact graph not symmetric: %d->%d", i, j)
			}
		}
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
