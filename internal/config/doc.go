// Package config defines geometric and robot configurations (Section 2 of
// the paper) and the predicates on them that the gathering problem is stated
// in terms of: validity (no overlapping discs), connectivity (the gathering
// goal), and full visibility.
package config
