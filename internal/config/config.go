package config

import (
	"errors"
	"fmt"
	"math"

	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/vision"
)

// ContactEps is the tolerance within which two unit discs are considered
// tangent (touching). It is also the tolerance used for overlap detection:
// centers closer than 2-ContactEps constitute an (illegal) overlap.
const ContactEps = 1e-7

// ErrOverlap is returned by Validate when two robot discs overlap.
var ErrOverlap = errors.New("config: robot discs overlap")

// Geometric is a geometric configuration: the centers of the n robots.
// Index identity is preserved across the whole execution (the robots
// themselves are anonymous; indices exist only for bookkeeping, exactly like
// the paper's "index used only for reference purposes").
type Geometric []geom.Vec

// Clone returns a deep copy of the configuration.
func (g Geometric) Clone() Geometric {
	out := make(Geometric, len(g))
	copy(out, g)
	return out
}

// N returns the number of robots.
func (g Geometric) N() int { return len(g) }

// Validate checks that the configuration is physically realizable: all
// coordinates finite and no two closed unit discs sharing more than a
// boundary point (centers at distance >= 2-ContactEps).
func (g Geometric) Validate() error {
	for i, c := range g {
		if !c.IsFinite() {
			return fmt.Errorf("config: robot %d has non-finite center %v", i, c)
		}
	}
	for i := 0; i < len(g); i++ {
		for j := i + 1; j < len(g); j++ {
			if g[i].Dist(g[j]) < 2*geom.UnitRadius-ContactEps {
				return fmt.Errorf("%w: robots %d and %d at distance %.9f",
					ErrOverlap, i, j, g[i].Dist(g[j]))
			}
		}
	}
	return nil
}

// Touching reports whether robots i and j are tangent (their discs touch).
func (g Geometric) Touching(i, j int) bool {
	if i == j {
		return false
	}
	return geom.DiscsTangent(g[i], g[j], geom.UnitRadius, ContactEps)
}

// TouchingAny reports whether robot i touches at least one other robot.
func (g Geometric) TouchingAny(i int) bool {
	for j := range g {
		if g.Touching(i, j) {
			return true
		}
	}
	return false
}

// ContactGraph returns the adjacency lists of the tangency graph.
func (g Geometric) ContactGraph() [][]int {
	adj := make([][]int, len(g))
	for i := range g {
		for j := range g {
			if g.Touching(i, j) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}

// Connected reports whether the configuration is connected in the paper's
// sense: the tangency graph on the discs is connected (every robot touches
// another robot and all robots form one connected formation). A single robot
// is connected by convention; an empty configuration is not.
func (g Geometric) Connected() bool {
	n := len(g)
	if n == 0 {
		return false
	}
	if n == 1 {
		return true
	}
	adj := g.ContactGraph()
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == n
}

// ConnectedComponentsTangent returns the connected components of the tangency
// graph as slices of robot indices.
func (g Geometric) ConnectedComponentsTangent() [][]int {
	n := len(g)
	adj := g.ContactGraph()
	seen := make([]bool, n)
	var comps [][]int
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, cur)
			for _, nb := range adj[cur] {
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// FullyVisible reports whether every robot can see every other robot under
// the given visibility model.
func (g Geometric) FullyVisible(m *vision.Model) bool {
	return m.FullyVisible(g)
}

// OnHullCount returns the number of robots whose centers lie on the boundary
// of the convex hull of all centers.
func (g Geometric) OnHullCount() int {
	return len(geom.ConvexHullWithCollinear(g))
}

// AllOnHull reports whether every robot center lies on the convex hull
// boundary.
func (g Geometric) AllOnHull() bool { return g.OnHullCount() == len(g) }

// HullArea returns the area of the convex hull of the robot centers.
func (g Geometric) HullArea() float64 { return geom.PolygonArea(geom.ConvexHull(g)) }

// HullPerimeter returns the perimeter of the convex hull of the robot
// centers.
func (g Geometric) HullPerimeter() float64 { return geom.PolygonPerimeter(geom.ConvexHull(g)) }

// Gathered reports whether the configuration satisfies the gathering goal of
// Definition 1 (geometric part): connected and fully visible.
func (g Geometric) Gathered(m *vision.Model) bool {
	return g.Connected() && g.FullyVisible(m)
}

// Spread returns the maximum pairwise center distance (the diameter of the
// configuration), a convenient scalar measure of how spread out the robots
// are.
func (g Geometric) Spread() float64 {
	maxD := 0.0
	for i := 0; i < len(g); i++ {
		for j := i + 1; j < len(g); j++ {
			if d := g[i].Dist(g[j]); d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// MinPairDistance returns the minimum pairwise center distance, or +Inf for
// fewer than two robots.
func (g Geometric) MinPairDistance() float64 {
	minD := math.Inf(1)
	for i := 0; i < len(g); i++ {
		for j := i + 1; j < len(g); j++ {
			if d := g[i].Dist(g[j]); d < minD {
				minD = d
			}
		}
	}
	return minD
}

// BoundingBox returns the axis-aligned bounding box of the robot discs
// (not just the centers): min and max corners.
func (g Geometric) BoundingBox() (min, max geom.Vec) {
	if len(g) == 0 {
		return geom.Vec{}, geom.Vec{}
	}
	min = geom.V(math.Inf(1), math.Inf(1))
	max = geom.V(math.Inf(-1), math.Inf(-1))
	for _, c := range g {
		min.X = math.Min(min.X, c.X-geom.UnitRadius)
		min.Y = math.Min(min.Y, c.Y-geom.UnitRadius)
		max.X = math.Max(max.X, c.X+geom.UnitRadius)
		max.Y = math.Max(max.Y, c.Y+geom.UnitRadius)
	}
	return min, max
}
