package engine

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/vision"
	"github.com/fatgather/fatgather/internal/workload"
)

// testCells is a small but heterogeneous batch: two workloads, two sizes,
// two adversaries, two seeds (16 cells).
func testCells() []Cell {
	return Batch{
		Workloads:   []workload.Kind{workload.KindClustered, workload.KindNestedHulls},
		Ns:          []int{4, 6},
		Adversaries: []string{"random-async", "stop-happy"},
		Seeds:       2,
		MaxEvents:   3000,
	}.Cells()
}

// sameCellResults compares everything except the wall-clock field.
func sameCellResults(t *testing.T, label string, a, b []CellResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d results vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Index != b[i].Index {
			t.Fatalf("%s: result %d has index %d vs %d", label, i, a[i].Index, b[i].Index)
		}
		if (a[i].Err == nil) != (b[i].Err == nil) {
			t.Fatalf("%s: cell %d err %v vs %v", label, i, a[i].Err, b[i].Err)
		}
		if !reflect.DeepEqual(a[i].Result, b[i].Result) {
			t.Fatalf("%s: cell %d results differ:\n%+v\nvs\n%+v", label, i, a[i].Result, b[i].Result)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cells := testCells()
	base := Run(cells, Options{Workers: 1})
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := Run(cells, Options{Workers: workers})
		sameCellResults(t, "workers", base, got)
	}
}

func TestRunMatchesSequentialReference(t *testing.T) {
	cells := testCells()
	par := Run(cells, Options{})
	for i, c := range cells {
		res, err := c.Run()
		if (err == nil) != (par[i].Err == nil) {
			t.Fatalf("cell %d: sequential err %v, engine err %v", i, err, par[i].Err)
		}
		if !reflect.DeepEqual(res, par[i].Result) {
			t.Fatalf("cell %d: engine result differs from sequential reference", i)
		}
	}
}

func TestOnResultStreamsInCellOrder(t *testing.T) {
	cells := testCells()
	var order []int
	Run(cells, Options{Workers: 3, OnResult: func(r CellResult) {
		order = append(order, r.Index)
	}})
	if len(order) != len(cells) {
		t.Fatalf("OnResult called %d times for %d cells", len(order), len(cells))
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("OnResult order %v not strictly increasing", order)
		}
	}
}

func TestRunEmptyBatch(t *testing.T) {
	if got := Run(nil, Options{}); len(got) != 0 {
		t.Fatalf("empty batch produced %d results", len(got))
	}
}

func TestBatchCellsExpansion(t *testing.T) {
	cells := testCells()
	if want := 2 * 2 * 2 * 2; len(cells) != want {
		t.Fatalf("expected %d cells, got %d", want, len(cells))
	}
	// Expansion is deterministic, including derived adversary seeds.
	again := testCells()
	if !reflect.DeepEqual(cells, again) {
		t.Fatal("Batch.Cells is not deterministic")
	}
	// Adversary seeds are positive and decorrelated across cells.
	seen := make(map[int64]int)
	for _, c := range cells {
		if c.AdversarySeed <= 0 {
			t.Fatalf("non-positive derived seed %d", c.AdversarySeed)
		}
		seen[c.AdversarySeed]++
	}
	if len(seen) < len(cells)/2 {
		t.Fatalf("derived seeds collide too much: %d distinct of %d", len(seen), len(cells))
	}
}

func TestBatchDefaults(t *testing.T) {
	cells := Batch{MaxEvents: 100}.Cells()
	if len(cells) != 5 { // 1 workload x 1 n x 1 adversary x 5 seeds
		t.Fatalf("default batch expanded to %d cells", len(cells))
	}
	if cells[0].Workload != workload.KindClustered || cells[0].N != 8 {
		t.Fatalf("unexpected default cell %+v", cells[0])
	}
	if cells[0].WorkloadSeed != 1 || cells[4].WorkloadSeed != 5 {
		t.Fatalf("default seed range wrong: %d..%d", cells[0].WorkloadSeed, cells[4].WorkloadSeed)
	}
}

func TestCellRunErrors(t *testing.T) {
	if _, err := (Cell{Workload: "no-such-workload", N: 3, MaxEvents: 10}).Run(); err == nil {
		t.Fatal("unknown workload should error")
	}
	if _, err := (Cell{Workload: workload.KindClustered, N: 3, WorkloadSeed: 1, Adversary: "no-such-adversary", MaxEvents: 10}).Run(); err == nil {
		t.Fatal("unknown adversary should error")
	}
}

func TestCellKey(t *testing.T) {
	base := Cell{Workload: workload.KindClustered, N: 4, WorkloadSeed: 1, MaxEvents: 100}
	if base.Key() != base.Key() {
		t.Fatal("Key is not deterministic")
	}
	// Every result-relevant field must move the key.
	variants := []Cell{
		{Workload: workload.KindRing, N: 4, WorkloadSeed: 1, MaxEvents: 100},
		{Workload: workload.KindClustered, N: 5, WorkloadSeed: 1, MaxEvents: 100},
		{Workload: workload.KindClustered, N: 4, WorkloadSeed: 2, MaxEvents: 100},
		{Workload: workload.KindClustered, N: 4, WorkloadSeed: 1, MaxEvents: 200},
		{Workload: workload.KindClustered, N: 4, WorkloadSeed: 1, MaxEvents: 100, Adversary: "fair"},
		{Workload: workload.KindClustered, N: 4, WorkloadSeed: 1, MaxEvents: 100, AdversarySeed: 7},
		{Workload: workload.KindClustered, N: 4, WorkloadSeed: 1, MaxEvents: 100, Delta: 0.5},
		{Workload: workload.KindClustered, N: 4, WorkloadSeed: 1, MaxEvents: 100, SnapshotEvery: 10},
		{Workload: workload.KindClustered, N: 4, WorkloadSeed: 1, MaxEvents: 100, StopWhenGathered: true},
		{Workload: workload.KindClustered, N: 4, WorkloadSeed: 1, MaxEvents: 100, Vision: vision.New(vision.Options{Radius: 2})},
	}
	seen := map[string]bool{base.Key(): true}
	for i, v := range variants {
		k := v.Key()
		if seen[k] {
			t.Fatalf("variant %d collides with a previous key: %s", i, k)
		}
		seen[k] = true
	}
	// Explicit initial configurations are keyed by content, not identity.
	a := Cell{Initial: workload.Ring(4, 0), MaxEvents: 100}
	b := Cell{Initial: workload.Ring(4, 0), MaxEvents: 100}
	c := Cell{Initial: workload.Ring(5, 0), MaxEvents: 100}
	if a.Key() != b.Key() {
		t.Fatal("equal initial configurations must share a key")
	}
	if a.Key() == c.Key() {
		t.Fatal("different initial configurations must not share a key")
	}
}

func TestValidateCells(t *testing.T) {
	good := Cell{Workload: workload.KindClustered, N: 3, WorkloadSeed: 1, MaxEvents: 100}
	if err := ValidateCells([]Cell{good}); err != nil {
		t.Fatalf("valid cell rejected: %v", err)
	}
	cases := []struct {
		name string
		cell Cell
		want string
	}{
		{"unknown workload", Cell{Workload: "bogus", N: 3}, "unknown workload"},
		{"zero n", Cell{Workload: workload.KindClustered, N: 0}, "N must be"},
		{"negative max events", Cell{Workload: workload.KindClustered, N: 3, MaxEvents: -1}, "MaxEvents"},
		{"negative delta", Cell{Workload: workload.KindClustered, N: 3, Delta: -0.5}, "Delta"},
		{"unknown adversary", Cell{Workload: workload.KindClustered, N: 3, Adversary: "bogus"}, "unknown adversary"},
		{"empty initial", Cell{Initial: config.Geometric{}}, "empty initial"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateCells([]Cell{good, tc.cell})
			if err == nil {
				t.Fatalf("invalid cell accepted: %+v", tc.cell)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the defect %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "cell 1 [") {
				t.Fatalf("error %q does not name the offending cell", err)
			}
		})
	}
}

// TestRunFailsFastOnInvalidCells pins that invalid cells never reach a
// worker: their error names the cell key, and the valid cells of the same
// batch still run and stream in order.
func TestRunFailsFastOnInvalidCells(t *testing.T) {
	cells := []Cell{
		{Workload: workload.KindClustered, N: 3, WorkloadSeed: 1, MaxEvents: 300},
		{Workload: "bogus", N: 3, MaxEvents: 300},
		{Workload: workload.KindClustered, N: 0, WorkloadSeed: 1, MaxEvents: 300},
		{Workload: workload.KindClustered, N: 3, WorkloadSeed: 2, MaxEvents: 300},
	}
	var order []int
	results := Run(cells, Options{Workers: 2, OnResult: func(r CellResult) {
		order = append(order, r.Index)
	}})
	for _, i := range []int{1, 2} {
		if results[i].Err == nil {
			t.Fatalf("invalid cell %d did not error", i)
		}
		if !strings.Contains(results[i].Err.Error(), "invalid cell ["+cells[i].Key()+"]") {
			t.Fatalf("cell %d error %q does not name its key", i, results[i].Err)
		}
	}
	for _, i := range []int{0, 3} {
		if results[i].Err != nil {
			t.Fatalf("valid cell %d failed: %v", i, results[i].Err)
		}
		if results[i].Result.Events <= 0 {
			t.Fatalf("valid cell %d did not run", i)
		}
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Fatalf("OnResult order %v with invalid cells", order)
	}
}

func TestAggregateGroups(t *testing.T) {
	cells := testCells()
	results, groups := Aggregate(cells, Options{}, func(r CellResult) string {
		return string(r.Cell.Workload)
	})
	if len(results) != len(cells) {
		t.Fatalf("%d results for %d cells", len(results), len(cells))
	}
	if len(groups) != 2 {
		t.Fatalf("expected 2 groups, got %d", len(groups))
	}
	// Groups appear in cell order and cover every run.
	if groups[0].Key != string(workload.KindClustered) {
		t.Fatalf("group order not cell order: %q first", groups[0].Key)
	}
	total := 0
	for _, g := range groups {
		total += g.Runs + g.Errors
		if g.Events.Count != g.Runs {
			t.Fatalf("group %q has %d event samples for %d runs", g.Key, g.Events.Count, g.Runs)
		}
		if g.GatheredRate < 0 || g.GatheredRate > 1 {
			t.Fatalf("group %q gathered rate %f", g.Key, g.GatheredRate)
		}
	}
	if total != len(cells) {
		t.Fatalf("groups cover %d cells of %d", total, len(cells))
	}
}

func TestCollectorCountsErrors(t *testing.T) {
	cells := []Cell{
		{Workload: workload.KindClustered, N: 3, WorkloadSeed: 1, MaxEvents: 500},
		{Workload: "bogus", N: 3, MaxEvents: 500},
	}
	_, groups := Aggregate(cells, Options{}, func(CellResult) string { return "all" })
	if len(groups) != 1 || groups[0].Runs != 1 || groups[0].Errors != 1 {
		t.Fatalf("unexpected groups %+v", groups)
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := make(map[int64]bool)
	for base := int64(-50); base < 50; base++ {
		s := DeriveSeed(base, 7)
		if s <= 0 {
			t.Fatalf("DeriveSeed(%d) = %d, want positive", base, s)
		}
		seen[s] = true
		if s != DeriveSeed(base, 7) {
			t.Fatal("DeriveSeed is not deterministic")
		}
	}
	if len(seen) != 100 {
		t.Fatalf("DeriveSeed collided: %d distinct of 100", len(seen))
	}
	if DeriveSeed(1, 2) == DeriveSeed(1, 3) {
		t.Fatal("stream coordinate ignored")
	}
}

func TestStreamOf(t *testing.T) {
	if StreamOf("a", "b") != StreamOf("a", "b") {
		t.Fatal("StreamOf not deterministic")
	}
	if StreamOf("a", "b") == StreamOf("ab") {
		t.Fatal("StreamOf must separate labels")
	}
	if StreamOf("x") < 0 {
		t.Fatal("StreamOf must be non-negative")
	}
}
