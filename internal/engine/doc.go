// Package engine is the parallel batch-simulation runner behind the
// experiment harness and the public fatgather.RunBatch API. A batch is a
// declarative cross product of workloads, robot counts, adversaries,
// algorithms and seed ranges; the engine expands it into independent cells,
// fans the cells across a worker pool, and streams the results back to a
// collector in deterministic cell order.
//
// Determinism is the engine's core contract: every cell owns all of its
// randomness (the workload seed and the adversary seed live in the Cell
// itself, and the adversary is constructed inside the worker), so the result
// of a batch is bit-identical regardless of the number of workers or the
// order in which the scheduler happens to interleave them. Seed fan-out for
// expanded batches uses a SplitMix64 derivation (DeriveSeed) so that cells
// get decorrelated but reproducible random streams.
package engine
