package engine

import (
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/workload"
)

// TestKeyFaultFieldsBackwardCompatible pins the resume-identity contract
// across the fault-injection addition: a fault-free cell's key must not
// change (stored sweeps stay resumable), while every fault knob folds into
// the key of a faulted cell.
func TestKeyFaultFieldsBackwardCompatible(t *testing.T) {
	base := Cell{Workload: workload.KindClustered, N: 5, WorkloadSeed: 3,
		Adversary: "fair", AdversarySeed: 9, MaxEvents: 1000}
	want := "wk=clustered|n=5|ws=3|alg=agm-gathering|adv=fair|as=9|delta=0|me=1000|snap=0|stop=false"
	if got := base.Key(); got != want {
		t.Fatalf("fault-free key changed:\n got %q\nwant %q", got, want)
	}

	faulted := base
	faulted.Crash, faulted.Noise, faulted.Trunc = 2, 0.1, 0.5
	key := faulted.Key()
	for _, frag := range []string{"|crash=2", "|noise=0.1", "|trunc=0.5"} {
		if !strings.Contains(key, frag) {
			t.Errorf("faulted key %q misses %q", key, frag)
		}
	}
	if faulted.Key() == base.Key() {
		t.Fatal("fault knobs do not change the cell key")
	}
}

// TestCrashKeyNormalized: the implicit crash(1) (Adversary "crash", Crash 0)
// and its explicit Crash=1 twin describe the same simulation and must share
// one store identity — a split here would make resumed sweeps miss every
// stored cell of the other representation.
func TestCrashKeyNormalized(t *testing.T) {
	implicit := Cell{Workload: workload.KindClustered, N: 4, WorkloadSeed: 1,
		Adversary: "crash", AdversarySeed: 2, MaxEvents: 100}
	explicit := implicit
	explicit.Crash = 1
	if implicit.Key() != explicit.Key() {
		t.Fatalf("implicit and explicit crash(1) keys differ:\n%q\n%q", implicit.Key(), explicit.Key())
	}
	if !strings.Contains(implicit.Key(), "|crash=1") {
		t.Fatalf("normalized crash key misses |crash=1: %q", implicit.Key())
	}
	if implicit.AdversaryLabel() != "crash(1)" {
		t.Fatalf("implicit crash label %q", implicit.AdversaryLabel())
	}
}

func TestCellAdversaryLabel(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{Cell{Adversary: "fair"}, "fair"},
		{Cell{}, "random-async"},
		{Cell{Adversary: "crash", Crash: 2}, "crash(2)"},
		{Cell{Adversary: "fair", Noise: 0.1, Trunc: 0.2}, "fair+noise=0.1+trunc=0.2"},
	}
	for _, tc := range cases {
		if got := tc.cell.AdversaryLabel(); got != tc.want {
			t.Errorf("AdversaryLabel() = %q, want %q", got, tc.want)
		}
	}
}

// TestValidateFaultKnobs: out-of-range fault knobs must be rejected up front.
func TestValidateFaultKnobs(t *testing.T) {
	ok := Cell{Workload: workload.KindClustered, N: 3}
	bad := []Cell{
		func() Cell { c := ok; c.Crash = -1; return c }(),
		func() Cell { c := ok; c.Noise = -0.5; return c }(),
		func() Cell { c := ok; c.Trunc = 1; return c }(),
		func() Cell { c := ok; c.Adversary = "crash"; c.Crash = -2; return c }(),
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid cell rejected: %v", err)
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad cell %d accepted: %+v", i, c)
		}
	}
}

// TestBatchParsesAdversarySpecs: spec strings on the batch's adversary axis
// expand into structured fault fields, and distinct fault levels land in
// distinct cells.
func TestBatchParsesAdversarySpecs(t *testing.T) {
	b := Batch{
		Ns:          []int{4},
		Adversaries: []string{"fair", "crash(2)", "fair+noise=0.1"},
		Seeds:       1,
		MaxEvents:   100,
	}
	cells := b.Cells()
	if len(cells) != 3 {
		t.Fatalf("expanded %d cells, want 3", len(cells))
	}
	if cells[0].AdversaryLabel() != "fair" || cells[0].Crash != 0 {
		t.Fatalf("plain spec mangled: %+v", cells[0])
	}
	if cells[1].Adversary != "crash" || cells[1].Crash != 2 {
		t.Fatalf("crash(2) not parsed: %+v", cells[1])
	}
	if cells[2].Adversary != "fair" || cells[2].Noise != 0.1 {
		t.Fatalf("noise spec not parsed: %+v", cells[2])
	}
	if err := ValidateCells(cells); err != nil {
		t.Fatalf("spec-built cells invalid: %v", err)
	}
	if cells[0].AdversarySeed == cells[2].AdversarySeed {
		t.Fatal("fault variants share an adversary seed (label not in the seed stream)")
	}
}

// TestFaultedCellRunsDeterministically: equal faulted cells produce equal
// results (the determinism contract extended to the fault decorators).
func TestFaultedCellRunsDeterministically(t *testing.T) {
	cell := Cell{Workload: workload.KindClustered, N: 4, WorkloadSeed: 2,
		Adversary: "random-async", AdversarySeed: 7, Noise: 0.2, Trunc: 0.3,
		Crash: 1, MaxEvents: 3000}
	a, err := cell.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cell.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.TotalDistance != b.TotalDistance || a.Outcome != b.Outcome {
		t.Fatalf("faulted cell not deterministic: %+v vs %+v", a, b)
	}
	if a.Adversary != "random-async+crash=1+noise=0.2+trunc=0.3" {
		t.Fatalf("result adversary label %q", a.Adversary)
	}
}
