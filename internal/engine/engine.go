package engine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/fatgather/fatgather/internal/adversary"
	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/metrics"
	"github.com/fatgather/fatgather/internal/obs"
	"github.com/fatgather/fatgather/internal/sim"
	"github.com/fatgather/fatgather/internal/vision"
	"github.com/fatgather/fatgather/internal/workload"
)

// Telemetry (internal/obs): write-only handles, one-way contract — the
// engine records pool activity but never reads telemetry back, so batch
// results stay bit-identical with telemetry on or off. Per-cell granularity
// (one histogram observation and a few atomic adds per cell) is far off the
// per-event hot path.
var (
	obsCellsStarted   = obs.NewCounter("fatgather_engine_cells_started_total")
	obsCellsCompleted = obs.NewCounter("fatgather_engine_cells_completed_total")
	obsCellErrors     = obs.NewCounter("fatgather_engine_cell_errors_total")
	obsCellSeconds    = obs.NewHistogram("fatgather_engine_cell_seconds")
	obsCellsInflight  = obs.NewGauge("fatgather_engine_cells_inflight")
	obsQueueDepth     = obs.NewGauge("fatgather_engine_queue_depth")
	obsWorkers        = obs.NewGauge("fatgather_engine_workers")
)

// DefaultAdversary is the adversary used when a Cell does not name one.
const DefaultAdversary = "random-async"

// Version identifies the simulation semantics of this engine build. Persistent
// result stores (internal/sweep) record it with every checkpointed cell and
// force a clean re-run on mismatch; bump it whenever a change makes previously
// stored results non-reproducible (algorithm, adversary, geometry or seed
// derivation changes).
// /3: livelock certification (sim/livelock.go) ends zero-progress runs
// early with OutcomeLivelocked, so any stored run longer than the detection
// window is no longer reproduced event-for-event by the current engine.
const Version = "fatgather-engine/3"

// Cell is one independent simulation: a fully self-contained specification
// whose result depends only on its own fields, never on the surrounding
// batch or on scheduling.
type Cell struct {
	// Workload and N select the generated initial placement; ignored when
	// Initial is non-nil.
	Workload workload.Kind
	N        int
	// WorkloadSeed drives the placement generator.
	WorkloadSeed int64
	// Initial, when non-nil, is used verbatim as the initial configuration.
	Initial config.Geometric
	// Algorithm is the local algorithm; nil means the paper's algorithm.
	// Algorithm implementations must be stateless (all built-ins are), since
	// a single value may be shared by many concurrent cells.
	Algorithm sim.Algorithm
	// Adversary names a base adversary strategy (adversary.Names); "" means
	// DefaultAdversary. The strategy instance is constructed per cell from
	// AdversarySeed.
	Adversary     string
	AdversarySeed int64
	// Crash, Noise and Trunc are the cell's fault-injection knobs (see
	// adversary.Spec): crash-stopped robot count, sensor noise radius and
	// movement truncation fraction. All zero means the fault-free adversary,
	// whose cell key — and therefore stored sweep identity — is unchanged
	// from pre-fault builds.
	Crash int
	Noise float64
	Trunc float64
	// Delta, MaxEvents, SnapshotEvery and StopWhenGathered are forwarded to
	// sim.Options.
	Delta            float64
	MaxEvents        int
	SnapshotEvery    int
	StopWhenGathered bool
	// Vision overrides the visibility model; nil means vision.Default.
	Vision *vision.Model
}

// AlgorithmName returns the report name of the cell's algorithm.
func (c Cell) AlgorithmName() string {
	if c.Algorithm == nil {
		return sim.PaperAlgorithm{}.Name()
	}
	return c.Algorithm.Name()
}

// AdversaryName returns the effective base adversary strategy name (without
// fault decorations; see AdversaryLabel for the full spec string).
func (c Cell) AdversaryName() string {
	if c.Adversary == "" {
		return DefaultAdversary
	}
	return c.Adversary
}

// AdversarySpec returns the cell's full adversary description — base
// strategy plus fault knobs — in normalized form (the "crash" strategy's
// implicit Crash=1 made explicit), so equal adversaries always produce equal
// specs, labels and keys regardless of how the cell was built.
func (c Cell) AdversarySpec() adversary.Spec {
	spec := adversary.Spec{Strategy: c.AdversaryName(), Crash: c.Crash, Noise: c.Noise, Trunc: c.Trunc}
	return spec.Normalized()
}

// AdversaryLabel returns the canonical spec string of the cell's adversary
// ("crash(2)", "fair+noise=0.1"); equal to AdversaryName for fault-free
// cells. Reports use it to label robustness rows.
func (c Cell) AdversaryLabel() string { return c.AdversarySpec().String() }

// Key returns the canonical identity string of the cell: every field that
// influences the cell's result is folded in (explicit initial configurations
// and custom vision models contribute a stable fingerprint). Two cells with
// equal keys produce bit-identical results, which is what makes the key usable
// as the resume identity in persistent sweep stores.
func (c Cell) Key() string {
	var b strings.Builder
	if c.Initial != nil {
		fmt.Fprintf(&b, "init=%s|n=%d", initialFingerprint(c.Initial), len(c.Initial))
	} else {
		fmt.Fprintf(&b, "wk=%s|n=%d|ws=%d", c.Workload, c.N, c.WorkloadSeed)
	}
	fmt.Fprintf(&b, "|alg=%s|adv=%s|as=%d|delta=%g|me=%d|snap=%d|stop=%t",
		c.AlgorithmName(), c.AdversaryName(), c.AdversarySeed,
		c.Delta, c.MaxEvents, c.SnapshotEvery, c.StopWhenGathered)
	// Fault knobs are appended only when set, so fault-free cells keep their
	// historic keys and stored sweeps stay resumable across this addition.
	// The normalized spec supplies the values, so Cell{Adversary: "crash"}
	// (implicit Crash=1) and its explicit Crash=1 twin share one identity.
	spec := c.AdversarySpec()
	if spec.Crash != 0 {
		fmt.Fprintf(&b, "|crash=%d", spec.Crash)
	}
	if spec.Noise != 0 {
		fmt.Fprintf(&b, "|noise=%g", spec.Noise)
	}
	if spec.Trunc != 0 {
		fmt.Fprintf(&b, "|trunc=%g", spec.Trunc)
	}
	if c.Vision != nil {
		fmt.Fprintf(&b, "|vis=%s", c.Vision.Fingerprint())
	}
	return b.String()
}

// initialFingerprint hashes an explicit initial configuration (exact float
// bits, order-sensitive) into a short stable identifier for cell keys.
func initialFingerprint(cfg config.Geometric) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range cfg {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.X))
		_, _ = h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Y))
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Validate checks the cell specification without running it: the workload
// kind must be known and N positive (unless an explicit Initial is given),
// the adversary must exist, and the numeric knobs must be non-negative.
// Run reports the same conditions, but only from inside a worker; Validate
// lets a batch be rejected up front with errors that name the bad cell.
func (c Cell) Validate() error {
	if c.Initial == nil {
		known := false
		for _, k := range workload.Kinds() {
			if c.Workload == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown workload kind %q", c.Workload)
		}
		if c.N < 1 {
			return fmt.Errorf("N must be at least 1, got %d", c.N)
		}
	} else if len(c.Initial) == 0 {
		return fmt.Errorf("empty initial configuration")
	}
	if c.MaxEvents < 0 {
		return fmt.Errorf("MaxEvents must be non-negative, got %d", c.MaxEvents)
	}
	if c.Delta < 0 {
		return fmt.Errorf("Delta must be non-negative, got %g", c.Delta)
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("SnapshotEvery must be non-negative, got %d", c.SnapshotEvery)
	}
	if err := c.AdversarySpec().Validate(); err != nil {
		return err
	}
	return nil
}

// ValidateCells validates an expanded batch up front and returns a single
// error naming every offending cell by index and key (nil when all cells are
// valid).
func ValidateCells(cells []Cell) error {
	var bad []string
	for i, c := range cells {
		if err := c.Validate(); err != nil {
			bad = append(bad, fmt.Sprintf("cell %d [%s]: %v", i, c.Key(), err))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("engine: invalid cells:\n  %s", strings.Join(bad, "\n  "))
}

// WorkloadFunc generates the initial placement for a (kind, n, seed) triple.
// It must be deterministic in its arguments and safe for concurrent use;
// workload.Generate is the reference implementation, and workload.Cache
// provides a memoizing one.
type WorkloadFunc func(kind workload.Kind, n int, seed int64) (config.Geometric, error)

// Run executes the cell sequentially in the calling goroutine. This is the
// reference (sequential) semantics that the parallel engine must reproduce
// bit-identically.
func (c Cell) Run() (sim.Result, error) {
	return c.runWith(workload.Generate)
}

// runWith is Run with a pluggable workload generator (the engine wires
// Options.Workloads through here).
func (c Cell) runWith(gen WorkloadFunc) (sim.Result, error) {
	initial := c.Initial
	if initial == nil {
		var err error
		initial, err = gen(c.Workload, c.N, c.WorkloadSeed)
		if err != nil {
			return sim.Result{}, fmt.Errorf("engine: cell workload: %w", err)
		}
	}
	strat, err := adversary.New(c.AdversarySpec(), c.AdversarySeed)
	if err != nil {
		return sim.Result{}, fmt.Errorf("engine: %w", err)
	}
	return sim.Run(initial, sim.Options{
		Algorithm:        c.Algorithm,
		Strategy:         strat,
		Vision:           c.Vision,
		Delta:            c.Delta,
		MaxEvents:        c.MaxEvents,
		SnapshotEvery:    c.SnapshotEvery,
		StopWhenGathered: c.StopWhenGathered,
	})
}

// CellResult pairs a cell with its simulation result.
type CellResult struct {
	// Index is the cell's position in the batch (results are always reported
	// in index order).
	Index int
	Cell  Cell
	// Result is the simulation outcome (zero when Err is non-nil).
	Result sim.Result
	// Err reports a cell that could not run (bad workload or adversary).
	Err error
	// Elapsed is the wall-clock time this cell took inside its worker.
	Elapsed time.Duration
}

// Options configures a batch execution.
type Options struct {
	// Workers is the size of the worker pool; <=0 means runtime.GOMAXPROCS(0).
	Workers int
	// OnResult, when non-nil, is invoked once per cell in strictly increasing
	// Index order as results become available (a streaming collector). It runs
	// on the goroutine that called Run, so it needs no locking.
	OnResult func(CellResult)
	// Workloads, when non-nil, replaces workload.Generate as the initial
	// placement generator for cells without an explicit Initial. It must be
	// deterministic and concurrency-safe (see WorkloadFunc); a memoizing
	// workload.Cache avoids regenerating identical placements across the
	// adversary and algorithm axes of a batch.
	Workloads WorkloadFunc
}

func (o Options) workers(ncells int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > ncells {
		w = ncells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every cell on a worker pool and returns the results in cell
// order. Results are bit-identical for any worker count, because each cell's
// randomness is self-contained.
//
// The expanded batch is validated up front: invalid cells (unknown workload
// kind or adversary, N < 1, negative MaxEvents/Delta) never reach a worker
// and instead report a CellResult.Err naming the offending cell's key.
func Run(cells []Cell, opts Options) []CellResult {
	n := len(cells)
	results := make([]CellResult, n)
	if n == 0 {
		return results
	}
	gen := opts.Workloads
	if gen == nil {
		gen = workload.Generate
	}
	valid := make([]int, 0, n)
	invalid := make([]int, 0)
	for i := range cells {
		if err := cells[i].Validate(); err != nil {
			results[i] = CellResult{
				Index: i,
				Cell:  cells[i],
				Err:   fmt.Errorf("engine: invalid cell [%s]: %w", cells[i].Key(), err),
			}
			obsCellErrors.Inc()
			invalid = append(invalid, i)
			continue
		}
		valid = append(valid, i)
	}
	workers := opts.workers(n)
	// Pool-shape gauges: utilization is cells_inflight / workers; queue depth
	// drains as workers pick cells up. Set, not Add, so the gauges describe
	// the most recent batch (concurrent batches are telemetry-racy but
	// result-safe).
	obsWorkers.Set(float64(workers))
	obsQueueDepth.Set(float64(len(valid)))

	jobs := make(chan int)
	done := make(chan int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				obsQueueDepth.Add(-1)
				obsCellsStarted.Inc()
				obsCellsInflight.Add(1)
				//gatherlint:ignore nondetsource Elapsed is wall-clock telemetry; it never feeds a cell key, pinned table or stored result identity
				start := time.Now()
				res, err := cells[i].runWith(gen)
				results[i] = CellResult{
					Index:  i,
					Cell:   cells[i],
					Result: res,
					Err:    err,
					//gatherlint:ignore nondetsource wall-clock telemetry only (see start above)
					Elapsed: time.Since(start),
				}
				obsCellsInflight.Add(-1)
				obsCellSeconds.Observe(results[i].Elapsed.Seconds())
				if err != nil {
					obsCellErrors.Inc()
				} else {
					obsCellsCompleted.Inc()
				}
				done <- i
			}
		}()
	}
	go func() {
		for _, i := range invalid {
			done <- i // pre-filled above; the done buffer holds all n indices
		}
		for _, i := range valid {
			jobs <- i
		}
		close(jobs)
	}()

	// Deliver results to the collector in cell order as they complete; the
	// done channel gives the happens-before edge for reading results[i].
	ready := make([]bool, n)
	next := 0
	for received := 0; received < n; received++ {
		i := <-done
		ready[i] = true
		for next < n && ready[next] {
			if opts.OnResult != nil {
				opts.OnResult(results[next])
			}
			next++
		}
	}
	wg.Wait()
	return results
}

// Batch is a declarative specification of a cell grid: the cross product of
// algorithms, workloads, robot counts, adversaries and a seed range.
type Batch struct {
	// Workloads defaults to {clustered}.
	Workloads []workload.Kind
	// Ns defaults to {8}.
	Ns []int
	// Adversaries defaults to {DefaultAdversary}. Entries are adversary spec
	// strings (adversary.ParseSpec), so fault decorations ride along in the
	// grid: "fair", "crash(2)", "random-async+noise=0.1".
	Adversaries []string
	// Algorithms defaults to {nil} (the paper's algorithm).
	Algorithms []sim.Algorithm
	// Seeds is the number of seeds per (algorithm, workload, n, adversary)
	// point; default 5. Workload seeds are SeedStart, SeedStart+1, ...
	Seeds int
	// SeedStart defaults to 1.
	SeedStart int64
	// Per-run knobs forwarded to every cell.
	Delta            float64
	MaxEvents        int
	SnapshotEvery    int
	StopWhenGathered bool
	Vision           *vision.Model
}

func (b Batch) withDefaults() Batch {
	if len(b.Workloads) == 0 {
		b.Workloads = []workload.Kind{workload.KindClustered}
	}
	if len(b.Ns) == 0 {
		b.Ns = []int{8}
	}
	if len(b.Adversaries) == 0 {
		b.Adversaries = []string{DefaultAdversary}
	}
	if len(b.Algorithms) == 0 {
		b.Algorithms = []sim.Algorithm{nil}
	}
	if b.Seeds <= 0 {
		b.Seeds = 5
	}
	if b.SeedStart == 0 {
		b.SeedStart = 1
	}
	return b
}

// Cells expands the batch into its cell grid in deterministic order:
// algorithm (outermost), then workload, n, adversary, seed (innermost).
// Each cell's adversary seed is derived from its own coordinates with
// DeriveSeed, so cells are decorrelated yet reproducible.
func (b Batch) Cells() []Cell {
	b = b.withDefaults()
	cells := make([]Cell, 0, len(b.Algorithms)*len(b.Workloads)*len(b.Ns)*len(b.Adversaries)*b.Seeds)
	for _, alg := range b.Algorithms {
		for _, wk := range b.Workloads {
			for _, n := range b.Ns {
				for _, adv := range b.Adversaries {
					for s := 0; s < b.Seeds; s++ {
						seed := b.SeedStart + int64(s)
						cell := Cell{
							Workload:         wk,
							N:                n,
							WorkloadSeed:     seed,
							Algorithm:        alg,
							Adversary:        adv,
							Delta:            b.Delta,
							MaxEvents:        b.MaxEvents,
							SnapshotEvery:    b.SnapshotEvery,
							StopWhenGathered: b.StopWhenGathered,
							Vision:           b.Vision,
						}
						// An adversary entry may be a full spec string; split
						// it into the cell's structured fields. An unparseable
						// entry is kept verbatim so Validate reports it by
						// cell.
						if spec, err := adversary.ParseSpec(cell.AdversaryName()); err == nil {
							cell.Adversary = spec.Strategy
							cell.Crash = spec.Crash
							cell.Noise = spec.Noise
							cell.Trunc = spec.Trunc
						}
						// The label (not the bare name) feeds the seed stream,
						// so fault variants of one strategy draw decorrelated
						// schedules; for fault-free cells label == name and
						// historic seeds are preserved.
						cell.AdversarySeed = DeriveSeed(seed,
							StreamOf(string(wk), cell.AdversaryLabel(), cell.AlgorithmName()),
							int64(n))
						cells = append(cells, cell)
					}
				}
			}
		}
	}
	return cells
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix with good statistical independence between nearby inputs.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives an independent RNG seed from a base
// seed and a sequence of stream coordinates. Nearby bases and streams yield
// decorrelated outputs (SplitMix64 mixing), and the result is always
// positive so downstream math/rand sources behave uniformly.
func DeriveSeed(base int64, streams ...int64) int64 {
	const gamma = 0x9e3779b97f4a7c15
	z := splitmix64(uint64(base) + gamma)
	for _, s := range streams {
		z = splitmix64(z + uint64(s)*gamma + gamma)
	}
	out := int64(z &^ (1 << 63))
	if out == 0 {
		out = 1
	}
	return out
}

// StreamOf hashes string labels (workload kind, adversary name, ...) into a
// stream coordinate for DeriveSeed. FNV-1a, stable across runs and builds.
func StreamOf(labels ...string) int64 {
	h := fnv.New64a()
	for _, l := range labels {
		_, _ = h.Write([]byte(l))
		_, _ = h.Write([]byte{0})
	}
	return int64(h.Sum64() &^ (1 << 63))
}

// Group is an aggregated summary over the cells that share a collector key.
type Group struct {
	// Key is the collector key of the group.
	Key string
	// Sample is the first cell of the group (handy for labeling report rows).
	Sample Cell
	// Runs counts cells that produced a result; Errors counts cells that
	// failed to run at all.
	Runs   int
	Errors int
	// Rates over the successful runs.
	GatheredRate   float64
	TerminatedRate float64
	ConnectedRate  float64
	// SurvivorsGatheredRate is the fraction of successful runs whose
	// non-crashed robots satisfied the gathering goal among themselves
	// (sim.Result.SurvivorsGathered); equal to GatheredRate for fault-free
	// groups.
	SurvivorsGatheredRate float64
	// StalledRate and LivelockedRate are the fractions of successful runs
	// that ended OutcomeStalled (adversary scheduled no robot) respectively
	// OutcomeLivelocked (certified zero-progress cycle). Together with the
	// rates above they give the per-group outcome taxonomy.
	StalledRate    float64
	LivelockedRate float64
	// Distributions over the successful runs.
	Events     metrics.Summary
	Cycles     metrics.Summary
	Distance   metrics.Summary
	Collisions metrics.Summary
	Stops      metrics.Summary
	// Elapsed is the summed worker wall-clock of the group's cells.
	Elapsed time.Duration
}

// accum is the running state behind a Group.
type accum struct {
	sample       Cell
	runs         int
	errors       int
	gathered     int
	terminated   int
	connected    int
	survGathered int
	stalled      int
	livelocked   int
	events       []float64
	cycles       []float64
	distance     []float64
	collisions   []float64
	stops        []float64
	elapsed      time.Duration
}

// Collector folds streaming cell results into per-key aggregates. It is not
// safe for concurrent use; with engine.Run it never needs to be, because
// OnResult is always invoked from a single goroutine.
type Collector struct {
	keyOf  func(CellResult) string
	order  []string
	groups map[string]*accum
}

// NewCollector returns a collector that groups results by keyOf.
func NewCollector(keyOf func(CellResult) string) *Collector {
	return &Collector{keyOf: keyOf, groups: make(map[string]*accum)}
}

// Add folds one result into its group. It is the natural Options.OnResult.
func (c *Collector) Add(r CellResult) {
	key := c.keyOf(r)
	a, ok := c.groups[key]
	if !ok {
		a = &accum{sample: r.Cell}
		c.groups[key] = a
		c.order = append(c.order, key)
	}
	a.elapsed += r.Elapsed
	if r.Err != nil {
		a.errors++
		return
	}
	res := r.Result
	a.runs++
	if res.Gathered() {
		a.gathered++
	}
	if res.Outcome == sim.OutcomeAllTerminated {
		a.terminated++
	}
	if res.Outcome == sim.OutcomeStalled {
		a.stalled++
	}
	if res.Outcome == sim.OutcomeLivelocked {
		a.livelocked++
	}
	if res.ConnectedAtEnd {
		a.connected++
	}
	if res.SurvivorsGathered {
		a.survGathered++
	}
	a.events = append(a.events, float64(res.Events))
	a.cycles = append(a.cycles, float64(res.Cycles))
	a.distance = append(a.distance, res.TotalDistance)
	a.collisions = append(a.collisions, float64(res.Collisions))
	a.stops = append(a.stops, float64(res.Stops))
}

// Groups returns the aggregates in first-appearance order (which equals cell
// order, since Add is called in cell order).
func (c *Collector) Groups() []Group {
	out := make([]Group, 0, len(c.order))
	for _, key := range c.order {
		a := c.groups[key]
		g := Group{
			Key:        key,
			Sample:     a.sample,
			Runs:       a.runs,
			Errors:     a.errors,
			Events:     metrics.Summarize(a.events),
			Cycles:     metrics.Summarize(a.cycles),
			Distance:   metrics.Summarize(a.distance),
			Collisions: metrics.Summarize(a.collisions),
			Stops:      metrics.Summarize(a.stops),
			Elapsed:    a.elapsed,
		}
		if a.runs > 0 {
			g.GatheredRate = float64(a.gathered) / float64(a.runs)
			g.TerminatedRate = float64(a.terminated) / float64(a.runs)
			g.ConnectedRate = float64(a.connected) / float64(a.runs)
			g.SurvivorsGatheredRate = float64(a.survGathered) / float64(a.runs)
			g.StalledRate = float64(a.stalled) / float64(a.runs)
			g.LivelockedRate = float64(a.livelocked) / float64(a.runs)
		}
		out = append(out, g)
	}
	return out
}

// Aggregate runs the cells and returns both the raw results and the grouped
// summaries: the one-call form of the engine + collector pipeline.
func Aggregate(cells []Cell, opts Options, keyOf func(CellResult) string) ([]CellResult, []Group) {
	col := NewCollector(keyOf)
	prev := opts.OnResult
	opts.OnResult = func(r CellResult) {
		col.Add(r)
		if prev != nil {
			prev(r)
		}
	}
	results := Run(cells, opts)
	return results, col.Groups()
}
