package core

import (
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/vision"
)

// visionModel is the visibility predicate the local algorithm uses to reason
// about occlusion within a view. It matches the model used by the Look state
// in the simulator (conservative sight lines over opaque unit discs).
var visionModel = vision.Default

// viewFullyVisible reports whether, treating the robots in the view as the
// only robots in the plane, every robot can see every other robot. This is
// the operative form of the paper's "all robots have full visibility
// according to Vi" check in Procedure OnConvexHull.
func (d *decider) viewFullyVisible() bool {
	all := d.hull.all
	return visionModel.FullyVisible(all)
}

// selfBlocksPair reports whether the observing robot occludes some pair of
// robots in its view: the pair cannot see each other with the observer
// present, but could if the observer were removed. It returns one such pair
// (preferring the pair whose chord the observer is closest to).
func (d *decider) selfBlocksPair() (a, b geom.Vec, blocks bool) {
	all := d.hull.all
	self := d.view.Self
	if len(all) < 3 {
		return geom.Vec{}, geom.Vec{}, false
	}
	bestDist := -1.0
	for i := 0; i < len(all); i++ {
		if all[i].EqWithin(self, geom.Eps) {
			continue
		}
		for j := i + 1; j < len(all); j++ {
			if all[j].EqWithin(self, geom.Eps) {
				continue
			}
			withSelf := obstaclesFor(all, all[i], all[j], geom.Vec{}, false)
			if visionModel.VisiblePair(all[i], all[j], withSelf) {
				continue
			}
			withoutSelf := obstaclesFor(all, all[i], all[j], self, true)
			if !visionModel.VisiblePair(all[i], all[j], withoutSelf) {
				continue // blocked by someone else too; not this robot's job
			}
			dist := geom.DistancePointSegment(self, all[i], all[j])
			if !blocks || dist < bestDist {
				a, b, blocks = all[i], all[j], true
				bestDist = dist
			}
		}
	}
	return a, b, blocks
}

// obstaclesFor returns the view points other than p and q, optionally also
// excluding the point `skip` (when exclude is true).
func obstaclesFor(all []geom.Vec, p, q, skip geom.Vec, exclude bool) []geom.Vec {
	out := make([]geom.Vec, 0, len(all))
	for _, c := range all {
		if c.EqWithin(p, geom.Eps) || c.EqWithin(q, geom.Eps) {
			continue
		}
		if exclude && c.EqWithin(skip, geom.Eps) {
			continue
		}
		out = append(out, c)
	}
	return out
}
