package core

import (
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/vision"
)

// visionModel is the visibility predicate the local algorithm uses to reason
// about occlusion within a view. It matches the model used by the Look state
// in the simulator (conservative sight lines over opaque unit discs).
var visionModel = vision.Default

// viewFullyVisible reports whether, treating the robots in the view as the
// only robots in the plane, every robot can see every other robot. This is
// the operative form of the paper's "all robots have full visibility
// according to Vi" check in Procedure OnConvexHull. Small views run the flat
// pair scan through the decider's reused scratch (identical verdicts and
// early-exit order to Model.FullyVisible, no per-pair allocation); large views
// keep the grid-indexed batch path.
func (d *decider) viewFullyVisible() bool {
	all := d.hull.all
	if len(all) >= vision.GridThreshold {
		return visionModel.FullyVisible(all)
	}
	for i := range all {
		for j := range all {
			if !visionModel.VisibleScratch(&d.vsc, all, i, j) {
				return false
			}
		}
	}
	return true
}

// selfBlocksPair reports whether the observing robot occludes some pair of
// robots in its view: the pair cannot see each other with the observer
// present, but could if the observer were removed. It returns one such pair
// (preferring the pair whose chord the observer is closest to).
func (d *decider) selfBlocksPair() (a, b geom.Vec, blocks bool) {
	all := d.hull.all
	self := d.view.Self
	if len(all) < 3 {
		return geom.Vec{}, geom.Vec{}, false
	}
	bestDist := -1.0
	for i := 0; i < len(all); i++ {
		if all[i].EqWithin(self, geom.Eps) {
			continue
		}
		for j := i + 1; j < len(all); j++ {
			if all[j].EqWithin(self, geom.Eps) {
				continue
			}
			d.obsBuf = appendObstaclesFor(d.obsBuf[:0], all, all[i], all[j], geom.Vec{}, false)
			if visionModel.VisiblePairScratch(&d.vsc, all[i], all[j], d.obsBuf) {
				continue
			}
			d.obsBuf = appendObstaclesFor(d.obsBuf[:0], all, all[i], all[j], self, true)
			if !visionModel.VisiblePairScratch(&d.vsc, all[i], all[j], d.obsBuf) {
				continue // blocked by someone else too; not this robot's job
			}
			dist := geom.DistancePointSegment(self, all[i], all[j])
			if !blocks || dist < bestDist {
				a, b, blocks = all[i], all[j], true
				bestDist = dist
			}
		}
	}
	return a, b, blocks
}

// appendObstaclesFor appends to dst the view points other than p and q,
// optionally also excluding the point `skip` (when exclude is true).
func appendObstaclesFor(dst, all []geom.Vec, p, q, skip geom.Vec, exclude bool) []geom.Vec {
	for _, c := range all {
		if c.EqWithin(p, geom.Eps) || c.EqWithin(q, geom.Eps) {
			continue
		}
		if exclude && c.EqWithin(skip, geom.Eps) {
			continue
		}
		dst = append(dst, c)
	}
	return dst
}
