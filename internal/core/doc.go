// Package core implements the paper's primary contribution: the local
// algorithm each fat robot runs while in its Compute state (Sections 3 and 4
// of "A Distributed Algorithm for Gathering Many Fat Mobile Robots in the
// Plane", Agathangelou, Georgiou, Mavronicolas, PODC 2013).
//
// The package has two layers:
//
//   - The geometric functions of Section 3 (On-Convex-Hull, Move-to-Point,
//     Find-Points, Connected-Components, How-Much-Distance,
//     In-Largest-Component, In-Smallest-Component, In-Straight-Line-2, and
//     the safe distance of Lemma 2), exposed as plain functions over point
//     sets.
//
//   - The 17-state local algorithm of Section 4, exposed as Decide: given a
//     robot's local view (the snapshot taken in its Look state) it walks the
//     algorithmic state machine of Figure 4 and returns either a target point
//     in the plane or the special "terminate" output (the paper's ⊥).
//
// # Conventions and documented deviations
//
// Chirality. The paper assumes robots agree on the orientation of their local
// axes. Here that shows up as a single global convention: hulls are ordered
// counter-clockwise and a robot's "right" neighbour is the next robot in that
// counter-clockwise order. Any consistent convention is equivalent; what
// matters is that all robots use the same one.
//
// Epsilon. The paper's procedures move by 1/(2n) − ε for an unspecified
// ε > 0. This implementation uses ε = 1/(8n) (see Epsilon), so the standard
// step is 3/(8n).
//
// Space for one more robot. The paper tests whether two hull neighbours are
// "at distance at least 2" to decide whether another unit-disc robot fits
// between them. Interpreted as center distance, 2 would make the incoming
// disc overlap both neighbours; this implementation uses the physically
// consistent reading: a robot fits when the neighbouring centers are at least
// MinGapForRobot = 4 apart (a free boundary-to-boundary gap of one disc
// diameter).
//
// On-hull slack. The paper's exact-geometry argument treats a robot that has
// converged inward by at most 1/(2n) as still being "on the convex hull".
// With floating point (and with the Move-to-Point construction, which places
// targets slightly inside the hull) an exact membership test would
// misclassify such robots and make them oscillate. OnHullSlack(n) = 1/(2n)
// is therefore used as the membership tolerance in the Compute algorithm.
//
// Connected-Components gaps. The paper's component walk tolerates up to two
// gaps of at most 1/(2m) inside a component. This implementation merges every
// gap of at most 1/(2m) (no cap on how many); the cap is an artifact of the
// paper's cursor-based traversal and the merge-all reading preserves the
// convergence argument while being considerably simpler.
package core
