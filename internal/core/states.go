package core

import "fmt"

// AlgState is one of the 17 algorithmic states of the local Compute algorithm
// (Section 4.1, Figure 4 of the paper). These are sub-states of the robot's
// Compute state, not to be confused with the five robot states of the outer
// state machine.
type AlgState int

// The 17 algorithmic states, in the order the paper lists them.
const (
	StateStart AlgState = iota + 1
	StateOnConvexHull
	StateAllOnConvexHull
	StateConnected
	StateNotConnected
	StateNotAllOnConvexHull
	StateNotOnStraightLine
	StateSpaceForMore
	StateNoSpaceForMore
	StateOnStraightLine
	StateSeeOneRobot
	StateSeeTwoRobot
	StateNotOnConvexHull
	StateIsTouching
	StateNotTouching
	StateToChange
	StateNotChange
)

// NumAlgStates is the number of algorithmic states.
const NumAlgStates = 17

// String implements fmt.Stringer.
func (s AlgState) String() string {
	switch s {
	case StateStart:
		return "Start"
	case StateOnConvexHull:
		return "OnConvexHull"
	case StateAllOnConvexHull:
		return "AllOnConvexHull"
	case StateConnected:
		return "Connected"
	case StateNotConnected:
		return "NotConnected"
	case StateNotAllOnConvexHull:
		return "NotAllOnConvexHull"
	case StateNotOnStraightLine:
		return "NotOnStraightLine"
	case StateSpaceForMore:
		return "SpaceForMore"
	case StateNoSpaceForMore:
		return "NoSpaceForMore"
	case StateOnStraightLine:
		return "OnStraightLine"
	case StateSeeOneRobot:
		return "SeeOneRobot"
	case StateSeeTwoRobot:
		return "SeeTwoRobot"
	case StateNotOnConvexHull:
		return "NotOnConvexHull"
	case StateIsTouching:
		return "IsTouching"
	case StateNotTouching:
		return "NotTouching"
	case StateToChange:
		return "ToChange"
	case StateNotChange:
		return "NotChange"
	default:
		return fmt.Sprintf("AlgState(%d)", int(s))
	}
}

// Valid reports whether s is one of the defined algorithmic states.
func (s AlgState) Valid() bool { return s >= StateStart && s <= StateNotChange }

// Terminal reports whether s is a terminal algorithmic state, i.e. one that
// produces an output (a target point or ⊥) rather than transitioning to
// another algorithmic state.
func (s AlgState) Terminal() bool {
	switch s {
	case StateConnected, StateNotConnected, StateSpaceForMore, StateNoSpaceForMore,
		StateSeeOneRobot, StateSeeTwoRobot, StateIsTouching, StateToChange, StateNotChange:
		return true
	default:
		return false
	}
}

// AllAlgStates returns all 17 algorithmic states in declaration order.
func AllAlgStates() []AlgState {
	out := make([]AlgState, 0, NumAlgStates)
	for s := StateStart; s <= StateNotChange; s++ {
		out = append(out, s)
	}
	return out
}
