package core

import (
	"math"
	"testing"

	"github.com/fatgather/fatgather/internal/geom"
)

// ringPositions returns n points evenly spaced on a circle of radius r.
func ringPositions(n int, r float64) []geom.Vec {
	pts := make([]geom.Vec, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geom.V(r*math.Cos(a), r*math.Sin(a))
	}
	return pts
}

func TestComponentGapTol(t *testing.T) {
	if ComponentGapTol(4) != 0.125 {
		t.Fatalf("tol(4) = %v", ComponentGapTol(4))
	}
	if ComponentGapTol(0) != 0.5 {
		t.Fatalf("tol(0) should treat m as 1, got %v", ComponentGapTol(0))
	}
}

func TestConnectedComponentsSingle(t *testing.T) {
	// A chain of tangent discs is a single component.
	pts := []geom.Vec{v(0, 0), v(2, 0), v(4, 0), v(6, 0)}
	comps := ConnectedComponents(pts, 4)
	if len(comps) != 1 {
		t.Fatalf("expected one component, got %d", len(comps))
	}
	if comps[0].Size() != 4 {
		t.Fatalf("component size = %d", comps[0].Size())
	}
}

func TestConnectedComponentsWidelySpread(t *testing.T) {
	// Points far apart: every robot is its own component.
	pts := ringPositions(6, 20)
	comps := ConnectedComponents(pts, 6)
	if len(comps) != 6 {
		t.Fatalf("expected 6 singleton components, got %d", len(comps))
	}
	for _, c := range comps {
		if c.Size() != 1 {
			t.Fatalf("expected singletons, got size %d", c.Size())
		}
		if !c.Leftmost().Eq(c.Rightmost()) {
			t.Fatal("singleton leftmost != rightmost")
		}
	}
}

func TestConnectedComponentsTwoGroups(t *testing.T) {
	// Two pairs of tangent discs far apart on a hull.
	pts := []geom.Vec{v(0, 0), v(2, 0), v(20, 0), v(22, 0), v(11, 15)}
	comps := ConnectedComponents(pts, 5)
	if len(comps) != 3 {
		t.Fatalf("expected 3 components, got %d: %+v", len(comps), comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[c.Size()]++
	}
	if sizes[2] != 2 || sizes[1] != 1 {
		t.Fatalf("unexpected sizes: %+v", comps)
	}
}

func TestConnectedComponentsSmallGapMerged(t *testing.T) {
	// A gap smaller than 1/(2m) does not split the component.
	m := 4
	gap := ComponentGapTol(m) / 2
	pts := []geom.Vec{v(0, 0), v(2+gap, 0), v(30, 0)}
	comps := ConnectedComponents(pts, m)
	if len(comps) != 2 {
		t.Fatalf("expected 2 components, got %d", len(comps))
	}
	found := false
	for _, c := range comps {
		if c.Size() == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("near-tangent pair should form one component")
	}
}

func TestConnectedComponentsEdgeCases(t *testing.T) {
	if comps := ConnectedComponents(nil, 3); comps != nil {
		t.Fatalf("empty input: %v", comps)
	}
	comps := ConnectedComponents([]geom.Vec{v(1, 1)}, 3)
	if len(comps) != 1 || comps[0].Size() != 1 {
		t.Fatalf("single point: %v", comps)
	}
	if comps[0].Contains(v(1, 1)) == false {
		t.Fatal("Contains should find the member")
	}
	if comps[0].Contains(v(9, 9)) {
		t.Fatal("Contains should reject non-members")
	}
	var empty Component
	if !empty.Leftmost().Eq(geom.Vec{}) || !empty.Rightmost().Eq(geom.Vec{}) {
		t.Fatal("empty component endpoints should be zero")
	}
}

func TestHowMuchDistance(t *testing.T) {
	// Three singleton components on a ring: all gaps equal -> 2 for everyone.
	ring := ringPositions(3, 10)
	for _, p := range ring {
		if got := HowMuchDistance(ring, p, 3); got != 2 {
			t.Fatalf("equal gaps: got %d want 2", got)
		}
	}
	// Single component -> 2.
	chain := []geom.Vec{v(0, 0), v(2, 0), v(4, 0)}
	if got := HowMuchDistance(chain, v(0, 0), 3); got != 2 {
		t.Fatalf("single component: got %d want 2", got)
	}
	// Unequal gaps: only the rightmost robot of the min-gap component gets 1.
	pts := []geom.Vec{v(0, 0), v(6, 0), v(6, 30), v(0, 36)}
	ones := 0
	for _, p := range pts {
		switch HowMuchDistance(pts, p, 4) {
		case 1:
			ones++
		case 2:
			t.Fatalf("gaps are unequal; nobody should get 2")
		}
	}
	if ones < 1 {
		t.Fatalf("expected at least one robot to be designated mover, got %d", ones)
	}
}

func TestInLargestAndSmallestComponent(t *testing.T) {
	// One pair and two singletons.
	pts := []geom.Vec{v(0, 0), v(2, 0), v(30, 0), v(15, 25)}
	m := len(pts)
	pairMember := v(0, 0)
	singleton := v(30, 0)

	if got := InLargestComponent(pts, pairMember, m); got != 1 {
		t.Fatalf("pair member in largest: got %d", got)
	}
	if got := InLargestComponent(pts, singleton, m); got != 3 {
		// Not in largest, and not every other component is larger (the other
		// singleton is equal).
		t.Fatalf("singleton in largest: got %d want 3", got)
	}
	if got := InSmallestComponent(pts, singleton, m); got != 1 {
		t.Fatalf("singleton in smallest: got %d", got)
	}
	if got := InSmallestComponent(pts, pairMember, m); got != 2 {
		// The pair is strictly larger than every other component.
		t.Fatalf("pair member in smallest: got %d want 2", got)
	}

	// Unique smallest among larger components -> InLargest returns 2.
	pts2 := []geom.Vec{v(0, 0), v(2, 0), v(40, 0), v(42, 0), v(21, 30)}
	if got := InLargestComponent(pts2, v(21, 30), len(pts2)); got != 2 {
		t.Fatalf("unique smallest: got %d want 2", got)
	}
	if got := InSmallestComponent(pts2, v(21, 30), len(pts2)); got != 1 {
		t.Fatalf("unique smallest is in smallest: got %d want 1", got)
	}

	// Unknown point -> 3.
	if got := InLargestComponent(pts, v(99, 99), m); got != 3 {
		t.Fatalf("unknown point: got %d", got)
	}
	if got := InSmallestComponent(pts, v(99, 99), m); got != 3 {
		t.Fatalf("unknown point: got %d", got)
	}
}

func TestComponentGaps(t *testing.T) {
	pts := []geom.Vec{v(0, 0), v(2, 0), v(10, 0), v(5, 8)}
	comps := ConnectedComponents(pts, len(pts))
	gaps := componentGaps(comps)
	if len(gaps) != len(comps) {
		t.Fatalf("gap count %d != component count %d", len(gaps), len(comps))
	}
	for _, g := range gaps {
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
	}
}
