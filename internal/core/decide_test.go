package core

import (
	"math"
	"testing"

	"github.com/fatgather/fatgather/internal/geom"
)

// viewOfAll builds a View for the robot at index i assuming it sees every
// robot in the configuration (full visibility).
func viewOfAll(all []geom.Vec, i int) View {
	others := make([]geom.Vec, 0, len(all)-1)
	for j, c := range all {
		if j != i {
			others = append(others, c)
		}
	}
	return NewView(all[i], others, len(all))
}

// tangentRing returns n unit discs tangent to their neighbours along a ring,
// i.e. centers on a circle of circumradius 1/sin(pi/n) (consecutive center
// distance exactly 2).
func tangentRing(n int) []geom.Vec {
	r := 1 / math.Sin(math.Pi/float64(n))
	return ringPositions(n, r)
}

func TestAlgStateStrings(t *testing.T) {
	for _, s := range AllAlgStates() {
		if s.String() == "" || !s.Valid() {
			t.Fatalf("state %d invalid", int(s))
		}
	}
	if AlgState(99).Valid() {
		t.Fatal("99 should be invalid")
	}
	if AlgState(99).String() == "" {
		t.Fatal("unknown state should still stringify")
	}
	if len(AllAlgStates()) != NumAlgStates {
		t.Fatalf("expected %d states", NumAlgStates)
	}
	if !StateConnected.Terminal() || StateStart.Terminal() || StateOnConvexHull.Terminal() {
		t.Fatal("Terminal misclassifies states")
	}
}

func TestDecideSingleRobotTerminates(t *testing.T) {
	d := Decide(NewView(v(0, 0), nil, 1))
	if !d.Terminate {
		t.Fatalf("single robot should terminate, got %+v", d)
	}
	if d.Final() != StateConnected {
		t.Fatalf("final state = %v", d.Final())
	}
}

func TestDecideTwoRobotsApart(t *testing.T) {
	all := []geom.Vec{v(0, 0), v(10, 0)}
	d := Decide(viewOfAll(all, 0))
	if d.Terminate {
		t.Fatal("distant robots should not terminate")
	}
	if d.Stays(all[0]) {
		t.Fatal("robot should move toward the other")
	}
	// The target should be in the direction of the other robot.
	if d.Target.X <= 0 {
		t.Fatalf("target %v should be toward the other robot", d.Target)
	}
}

func TestDecideTwoRobotsTangentTerminate(t *testing.T) {
	all := []geom.Vec{v(0, 0), v(2, 0)}
	for i := range all {
		d := Decide(viewOfAll(all, i))
		if !d.Terminate {
			t.Fatalf("robot %d should terminate in a tangent pair, got %+v", i, d)
		}
	}
}

func TestDecideConnectedRingTerminates(t *testing.T) {
	// A tangent ring is connected, all robots are hull corners, and with full
	// visibility every robot should terminate.
	all := tangentRing(6)
	for i := range all {
		d := Decide(viewOfAll(all, i))
		if !d.Terminate {
			t.Fatalf("robot %d in tangent ring should terminate; final=%v", i, d.Final())
		}
	}
}

func TestDecideSpreadRingConverges(t *testing.T) {
	// Robots spread on a big ring: fully visible, all on hull, not connected.
	// Nobody terminates, and nobody may move outward (the hull must not
	// grow: Lemma 21).
	all := ringPositions(6, 20)
	hullArea := geom.PolygonArea(geom.ConvexHull(all))
	for i := range all {
		d := Decide(viewOfAll(all, i))
		if d.Terminate {
			t.Fatalf("robot %d should not terminate", i)
		}
		if d.Final() != StateNotConnected {
			t.Fatalf("robot %d final state = %v want NotConnected", i, d.Final())
		}
		if !d.Stays(all[i]) {
			moved := append([]geom.Vec(nil), all...)
			moved[i] = d.Target
			newArea := geom.PolygonArea(geom.ConvexHull(moved))
			if newArea > hullArea+1e-6 {
				t.Fatalf("robot %d move grows the hull: %v -> %v", i, hullArea, newArea)
			}
		}
	}
}

func TestDecideInteriorRobotMovesTowardHull(t *testing.T) {
	// A robot strictly inside a large square hull, not touching anyone, with
	// plenty of space on the hull: it should head for the hull (NotChange).
	all := []geom.Vec{v(0, 0), v(20, 0), v(20, 20), v(0, 20), v(10, 9)}
	i := 4
	d := Decide(viewOfAll(all, i))
	if d.Terminate {
		t.Fatal("interior robot should not terminate")
	}
	if d.Final() != StateNotChange && d.Final() != StateToChange {
		t.Fatalf("final state = %v", d.Final())
	}
	if d.Stays(all[i]) {
		t.Fatal("interior robot with available space should move")
	}
	// Its target should be farther from the centroid than its current
	// position (heading outward toward the hull boundary).
	centroid := geom.Centroid(all[:4])
	if d.Target.Dist(centroid) <= all[i].Dist(centroid) {
		t.Fatalf("target %v should move toward the hull boundary", d.Target)
	}
}

func TestDecideHullRobotWithInteriorRobotsNoSpace(t *testing.T) {
	// A tight triangle hull with an interior robot and no room on the hull:
	// hull robots must step outward (NoSpaceForMore) to expand the hull.
	// (Equilateral side 3.8: the centroid is ~2.19 from every corner, so the
	// interior disc fits without overlap, but no side has room for it.)
	all := []geom.Vec{v(0, 0), v(3.8, 0), v(1.9, 3.29), v(1.9, 1.1)}
	hullArea := geom.PolygonArea(geom.ConvexHull(all[:3]))
	for i := 0; i < 3; i++ {
		d := Decide(viewOfAll(all, i))
		if d.Terminate {
			t.Fatalf("robot %d should not terminate", i)
		}
		if d.Final() != StateNoSpaceForMore {
			t.Fatalf("robot %d final = %v want NoSpaceForMore", i, d.Final())
		}
		moved := append([]geom.Vec(nil), all[:3]...)
		moved[i] = d.Target
		if geom.PolygonArea(geom.ConvexHull(moved)) < hullArea-1e-9 {
			t.Fatalf("robot %d outward move should not shrink the hull", i)
		}
	}
}

func TestDecideMiddleOfLineMovesOut(t *testing.T) {
	// Three robots on a line: the middle one is blocked between the other
	// two; it should step off the line (SeeTwoRobot). The end robots stay
	// (SeeOneRobot) because they cannot even see the far robot.
	all := []geom.Vec{v(0, 0), v(6, 0), v(12, 0)}
	// Middle robot sees both ends.
	dMid := Decide(viewOfAll(all, 1))
	if dMid.Final() != StateSeeTwoRobot {
		t.Fatalf("middle final = %v want SeeTwoRobot", dMid.Final())
	}
	if dMid.Stays(all[1]) {
		t.Fatal("middle robot should move off the line")
	}
	if math.Abs(dMid.Target.Y) <= 1e-12 {
		t.Fatalf("middle robot should leave the line, target %v", dMid.Target)
	}
	// End robot sees only the middle one (view of 2 robots out of 3). With
	// only two visible robots there is no hull triple, so depending on the
	// branch taken (SeeOneRobot in the paper's narrative, SpaceForMore by the
	// letter of the procedures) the robot must in any case stay put.
	dEnd := Decide(NewView(v(0, 0), []geom.Vec{v(6, 0)}, 3))
	if !dEnd.Stays(v(0, 0)) {
		t.Fatalf("end robot should stay, got %+v", dEnd)
	}
}

func TestDecideTouchingInteriorRobotContention(t *testing.T) {
	// Two interior robots touching each other inside a large hull with space:
	// exactly one of them (the one with higher proximity) should move.
	all := []geom.Vec{v(0, 0), v(30, 0), v(30, 30), v(0, 30), v(14, 10), v(16, 10)}
	d4 := Decide(viewOfAll(all, 4))
	d5 := Decide(viewOfAll(all, 5))
	if d4.Final() != StateIsTouching || d5.Final() != StateIsTouching {
		t.Fatalf("finals = %v %v want IsTouching", d4.Final(), d5.Final())
	}
	moves := 0
	if !d4.Stays(all[4]) {
		moves++
	}
	if !d5.Stays(all[5]) {
		moves++
	}
	if moves != 1 {
		t.Fatalf("exactly one of the touching robots should move, got %d", moves)
	}
}

func TestDecideStaysAreFinite(t *testing.T) {
	// Whatever the configuration, Decide must return a finite target.
	configs := [][]geom.Vec{
		{v(0, 0), v(2, 0), v(4, 0), v(6, 0)},
		{v(0, 0), v(5, 0), v(10, 0), v(15, 0)},
		{v(0, 0), v(2, 0), v(1, 1.8)},
		ringPositions(9, 12),
		tangentRing(8),
	}
	for ci, cfg := range configs {
		for i := range cfg {
			d := Decide(viewOfAll(cfg, i))
			if !d.Target.IsFinite() {
				t.Fatalf("config %d robot %d: non-finite target", ci, i)
			}
			if len(d.Trace) == 0 || d.Trace[0] != StateStart {
				t.Fatalf("config %d robot %d: trace must start at Start", ci, i)
			}
			for _, s := range d.Trace {
				if !s.Valid() {
					t.Fatalf("config %d robot %d: invalid state in trace", ci, i)
				}
			}
			if !d.Final().Terminal() {
				t.Fatalf("config %d robot %d: final state %v is not terminal", ci, i, d.Final())
			}
		}
	}
}

func TestDecideTargetNeverOverlapsImmediately(t *testing.T) {
	// The decision target itself may be unreachable (motion stops at
	// tangency), but a decision for a robot that is staying must coincide
	// with its position, and a moving decision must not be NaN.
	all := ringPositions(7, 15)
	for i := range all {
		d := Decide(viewOfAll(all, i))
		if d.Terminate {
			t.Fatal("spread ring should not terminate")
		}
		if !d.Target.IsFinite() {
			t.Fatal("target must be finite")
		}
	}
}

func TestDecisionHelpers(t *testing.T) {
	d := Decision{Target: v(1, 1), Trace: []AlgState{StateStart, StateNotOnConvexHull, StateNotTouching, StateNotChange}}
	if d.Final() != StateNotChange {
		t.Fatalf("final = %v", d.Final())
	}
	if d.Stays(v(2, 2)) {
		t.Fatal("different target should not be a stay")
	}
	if !d.Stays(v(1, 1)) {
		t.Fatal("same target should be a stay")
	}
	var empty Decision
	if empty.Final() != StateStart {
		t.Fatal("empty decision final should be Start")
	}
}

func TestRightmostTowardDeterminism(t *testing.T) {
	cands := []geom.Vec{v(0, 0), v(2, 0), v(1, 1.7)}
	target := v(1, 10)
	first := rightmostToward(cands, target)
	for i := 0; i < 5; i++ {
		if !rightmostToward(cands, target).Eq(first) {
			t.Fatal("rightmostToward should be deterministic")
		}
	}
	// Permuting the candidates must not change the winner.
	perm := []geom.Vec{cands[2], cands[0], cands[1]}
	if !rightmostToward(perm, target).Eq(first) {
		t.Fatal("rightmostToward should be order independent")
	}
}
