package core

import (
	"math"

	"github.com/fatgather/fatgather/internal/geom"
)

// OnConvexHull implements the paper's Function On-Convex-Hull (Section 3.1):
// it reports whether c lies on the convex hull of the given points and also
// returns the full ordered set of on-hull points onCH(points), counter-
// clockwise. Membership uses the exact (Eps) tolerance; callers inside the
// Compute algorithm use the slack-tolerant hullInfo instead.
func OnConvexHull(points []geom.Vec, c geom.Vec) (bool, []geom.Vec) {
	onCH := geom.ConvexHullWithCollinear(points)
	for _, p := range onCH {
		if p.EqWithin(c, geom.Eps) {
			return true, onCH
		}
	}
	return false, onCH
}

// MoveToPoint implements the paper's Function Move-to-Point (Section 3.2).
// c1 is the center of the moving robot, c2 the center of the robot it wants
// to touch, m the total number of robots, and interior a point inside the
// convex hull used to orient the construction (the paper's "direction inside
// of the convex hull").
//
// The construction: take the perpendicular to c1c2 at c2 pointing toward the
// hull interior, mark the point c at distance 1/(2m)−ε from c2 along it, and
// return µ, the intersection of segment c1–c with the unit circle around c2.
// µ is the point where the two discs will become tangent; the caller uses it
// as the Move target (the motion stops when the discs touch).
func MoveToPoint(c1, c2 geom.Vec, m int, interior geom.Vec) geom.Vec {
	if m < 1 {
		m = 1
	}
	dir := c2.Sub(c1)
	if dir.Norm() < geom.Eps {
		return c1
	}
	perp := dir.Unit().Perp()
	toInterior := interior.Sub(c2)
	if toInterior.Norm() > geom.Eps && perp.Dot(toInterior) < 0 {
		perp = perp.Neg()
	}
	offset := 1/(2*float64(m)) - Epsilon(m)
	c := c2.Add(perp.Scale(offset))
	circle := geom.UnitDisc(c2)
	pts := geom.SegmentCircleIntersections(c1, c, circle)
	if len(pts) == 0 {
		// c1 is inside (or numerically on) the unit circle around c2; fall
		// back to the offset point itself, which is inside the disc: motion
		// toward it stops at tangency anyway.
		return c
	}
	// Take the intersection closest to c1 (the first boundary crossing).
	best := pts[0]
	for _, p := range pts[1:] {
		if p.Dist(c1) < best.Dist(c1) {
			best = p
		}
	}
	return best
}

// TangencyTarget returns the center position a unit-disc robot starting at c1
// would occupy when its disc becomes tangent to the disc at c2 while moving
// toward the Move-to-Point target µ. It is provided for analysis and tests.
func TangencyTarget(c1, c2, mu geom.Vec) geom.Vec {
	dir := mu.Sub(c1)
	if dir.Norm() < geom.Eps {
		return c1
	}
	u := dir.Unit()
	// Solve |c1 + t*u - c2| = 2 for the smallest non-negative t.
	f := c1.Sub(c2)
	b := 2 * f.Dot(u)
	cc := f.Norm2() - 4*geom.UnitRadius*geom.UnitRadius
	disc := b*b - 4*cc
	if disc < 0 {
		return mu
	}
	sq := math.Sqrt(disc)
	t := (-b - sq) / 2
	if t < 0 {
		t = (-b + sq) / 2
	}
	if t < 0 {
		return mu
	}
	return c1.Add(u.Scale(t))
}

// FindPoints implements the paper's Function Find-Points (Section 3.3): given
// the ordered on-hull points (counter-clockwise) and the total number of
// robots n, it returns the candidate points at which a unit disc can be
// placed on the hull without changing onCH. For every neighbouring hull pair
// at center distance at least MinGapForRobot, the candidate is the midpoint
// of the pair pushed outward by 1/n; a candidate is kept only if adding it
// leaves every current on-hull point on the hull and it does not overlap any
// existing disc.
func FindPoints(onCH []geom.Vec, n int) []geom.Vec {
	if n < 1 {
		n = 1
	}
	m := len(onCH)
	if m < 2 {
		return nil
	}
	interior := geom.Centroid(onCH)
	pairs := m
	if m == 2 {
		pairs = 1 // a two-point "hull" has a single side, not a cycle
	}
	var out []geom.Vec
	for i := 0; i < pairs; i++ {
		cl := onCH[i]
		cr := onCH[(i+1)%m]
		if cl.Dist(cr) < MinGapForRobot {
			continue
		}
		mid := geom.Midpoint(cl, cr)
		dir := cr.Sub(cl)
		if dir.Norm() < geom.Eps {
			continue
		}
		outward := dir.Unit().Perp()
		toInterior := interior.Sub(mid)
		if toInterior.Norm() > geom.Eps && outward.Dot(toInterior) > 0 {
			outward = outward.Neg()
		}
		p := mid.Add(outward.Scale(1 / float64(n)))
		if !findPointValid(p, onCH) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// findPointValid reports whether placing a unit disc at p keeps every current
// on-hull point on the hull (Lemma 1) and does not overlap an existing disc.
func findPointValid(p geom.Vec, onCH []geom.Vec) bool {
	for _, q := range onCH {
		if p.Dist(q) < 2*geom.UnitRadius-geom.Eps {
			return false
		}
	}
	augmented := append(append([]geom.Vec(nil), onCH...), p)
	newOn := geom.ConvexHullWithCollinear(augmented)
	for _, q := range onCH {
		found := false
		for _, r := range newOn {
			if r.EqWithin(q, geom.Eps) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// InStraightLine2 implements the paper's Function In-Straight-Line-2
// (Section 3.8): it reports whether the three points lie on a single straight
// line (within the geometric tolerance).
func InStraightLine2(cl, cm, cr geom.Vec) bool {
	return geom.CollinearPts(cl, cm, cr)
}

// InStraightLineRect implements the rectangle test used by procedure
// NotAllOnConvexHull (Figure 5): the middle point cm counts as "on a straight
// line" with cl and cr when it lies within distance 1/n of the segment cl–cr.
func InStraightLineRect(cl, cm, cr geom.Vec, n int) bool {
	if n < 1 {
		n = 1
	}
	return geom.DistancePointSegment(cm, cl, cr) <= 1/float64(n)
}

// SafeDistance implements the bound of Lemma 2: the minimum center distance
// between two adjacent hull robots cl and cr (with hull neighbours prev
// before cl and next after cr) beyond which Find-Points is guaranteed to
// return a point between them. It returns +Inf when either adjacent edge is
// (numerically) collinear with cl–cr, in which case no finite expansion
// guarantees a valid point.
func SafeDistance(prev, cl, cr, next geom.Vec, n int) float64 {
	if n < 1 {
		n = 1
	}
	angleL := geom.AngleAt(prev, cl, cr)
	angleR := geom.AngleAt(cl, cr, next)
	// The relevant angle in the lemma's construction is the deviation of the
	// adjacent edge from the straight continuation of cl–cr.
	thetaL := math.Pi - angleL
	thetaR := math.Pi - angleR
	need := func(theta float64) float64 {
		if theta <= geom.Eps || theta >= math.Pi-geom.Eps {
			return math.Inf(1)
		}
		nf := float64(n)
		return 1/(nf*math.Tan(theta)) + 1/(nf*math.Sin(theta))
	}
	half := math.Max(need(thetaL), need(thetaR))
	return 2 * half
}
