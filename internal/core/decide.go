package core

import (
	"math"

	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/vision"
)

// Decision is the output of the local algorithm for one Compute phase.
type Decision struct {
	// Target is the point the robot should move to. When the robot decides to
	// stay, Target equals the robot's current center.
	Target geom.Vec
	// Terminate is true when the local algorithm returned the special point ⊥
	// (procedure Connected): the robot enters its Terminate state and takes
	// no further steps.
	Terminate bool
	// Trace is the sequence of algorithmic states visited, starting at
	// StateStart and ending at the terminal state that produced the output.
	Trace []AlgState
}

// Final returns the terminal algorithmic state of the decision.
func (d Decision) Final() AlgState {
	if len(d.Trace) == 0 {
		return StateStart
	}
	return d.Trace[len(d.Trace)-1]
}

// Stays reports whether the decision keeps the robot at its current position
// (and does not terminate).
func (d Decision) Stays(self geom.Vec) bool {
	return !d.Terminate && d.Target.EqWithin(self, geom.Eps)
}

// Decide runs the paper's 17-state local algorithm (Section 4) on the given
// view and returns the resulting decision. It is a pure function of the view:
// robots are oblivious, so nothing persists between calls.
func Decide(v View) Decision {
	d := &decider{view: v, hull: buildHullInfo(v)}
	return d.run()
}

// decider carries the per-decision derived data shared by the procedures,
// plus scratch buffers reused across the O(view^2) visibility queries a single
// decision can issue (viewFullyVisible, selfBlocksPair).
type decider struct {
	view View
	hull *hullInfo

	trace []AlgState

	vsc    vision.Scratch
	obsBuf []geom.Vec
}

func (d *decider) run() Decision {
	state := StateStart
	for iter := 0; iter < 4*NumAlgStates; iter++ {
		d.trace = append(d.trace, state)
		switch state {
		case StateStart:
			state = d.procStart()
		case StateOnConvexHull:
			state = d.procOnConvexHull()
		case StateAllOnConvexHull:
			state = d.procAllOnConvexHull()
		case StateConnected:
			return d.terminate()
		case StateNotConnected:
			return d.output(d.procNotConnected())
		case StateNotAllOnConvexHull:
			state = d.procNotAllOnConvexHull()
		case StateNotOnStraightLine:
			state = d.procNotOnStraightLine()
		case StateSpaceForMore:
			return d.output(d.procSpaceForMore())
		case StateNoSpaceForMore:
			return d.output(d.procNoSpaceForMore())
		case StateOnStraightLine:
			state = d.procOnStraightLine()
		case StateSeeOneRobot:
			return d.output(d.view.Self)
		case StateSeeTwoRobot:
			return d.output(d.procSeeTwoRobot())
		case StateNotOnConvexHull:
			state = d.procNotOnConvexHull()
		case StateIsTouching:
			return d.output(d.procIsTouching())
		case StateNotTouching:
			state = d.procNotTouching()
		case StateToChange:
			return d.output(d.procToChange())
		case StateNotChange:
			return d.output(d.procNotChange())
		default:
			return d.output(d.view.Self)
		}
	}
	// Unreachable with a correct transition graph; staying put is the safe
	// fallback.
	return d.output(d.view.Self)
}

func (d *decider) output(target geom.Vec) Decision {
	if !target.IsFinite() {
		target = d.view.Self
	}
	return Decision{Target: target, Trace: d.trace}
}

func (d *decider) terminate() Decision {
	return Decision{Target: d.view.Self, Terminate: true, Trace: d.trace}
}

// --- Non-terminal procedures (state transitions) ---

// procStart implements Procedure Start (4.2.1).
func (d *decider) procStart() AlgState {
	if d.hull.SelfOnHull() {
		return StateOnConvexHull
	}
	return StateNotOnConvexHull
}

// procOnConvexHull implements Procedure OnConvexHull (4.2.2): the robot is on
// the hull; it moves to AllOnConvexHull only if it sees all n robots, all of
// them are on the hull, and every robot in the view can see every other robot
// (the paper's "all robots have full visibility, according to Vi"). The paper
// expresses the last condition as "no three robots on a straight line"; with
// unit-disc robots the operative notion is occlusion, so the check is done
// with the same visibility predicate the Look state uses.
func (d *decider) procOnConvexHull() AlgState {
	v := d.view
	h := d.hull
	if !v.SeesAll() || len(h.onHull) < v.N {
		return StateNotAllOnConvexHull
	}
	if !d.viewFullyVisible() {
		return StateNotAllOnConvexHull
	}
	return StateAllOnConvexHull
}

// procAllOnConvexHull implements Procedure AllOnConvexHull (4.2.3): check
// whether the robots in the view form a single tangency-connected component.
func (d *decider) procAllOnConvexHull() AlgState {
	all := d.hull.all
	n := len(all)
	if n <= 1 {
		return StateConnected
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < n; j++ {
			if !seen[j] && tangent(all[cur], all[j]) {
				seen[j] = true
				count++
				stack = append(stack, j)
			}
		}
	}
	if count == n {
		return StateConnected
	}
	return StateNotConnected
}

// procNotAllOnConvexHull implements Procedure NotAllOnConvexHull (4.2.6): the
// robot checks whether it participates in a "straight line" situation: either
// it sits in the 1/n-wide rectangle of Figure 5 between two consecutive hull
// robots, or it actually occludes a pair of robots in its view (the condition
// the rectangle test stands in for with fat robots).
func (d *decider) procNotAllOnConvexHull() AlgState {
	if _, _, blocks := d.selfBlocksPair(); blocks {
		return StateOnStraightLine
	}
	if d.selfInFlatHullTriple(1 / float64(d.view.N)) {
		return StateOnStraightLine
	}
	return StateNotOnStraightLine
}

// procNotOnStraightLine implements Procedure NotOnStraightLine (4.2.7).
func (d *decider) procNotOnStraightLine() AlgState {
	v := d.view
	h := d.hull
	if len(h.onHull) >= v.N {
		return StateSpaceForMore
	}
	if v.SeesAll() {
		if hullHasGap(h.onHull, MinGapForRobot) {
			return StateSpaceForMore
		}
		return StateNoSpaceForMore
	}
	// The robot cannot see everyone: project the robots it can see that are
	// not on the hull onto the hull boundary (along the ray from the robot
	// itself) and check the augmented hull for space.
	augmented := append([]geom.Vec(nil), h.onHull...)
	for _, c := range h.all {
		if h.indexOf(c) >= 0 {
			continue
		}
		if proj, ok := projectOntoHull(d.view.Self, c, h.corners); ok {
			augmented = append(augmented, proj)
		}
	}
	augmented = orderOnHull(augmented, geom.ConvexHull(augmented), math.Inf(1), geom.Centroid(augmented))
	if hullHasGap(augmented, MinGapForRobot) {
		return StateSpaceForMore
	}
	return StateNoSpaceForMore
}

// procOnStraightLine implements Procedure OnStraightLine (4.2.10): the robot
// distinguishes being the one in the middle — it occludes two robots it can
// see, or sits between two hull neighbours in the Figure 5 rectangle — from
// being an endpoint of the line, which only sees one robot and stays.
func (d *decider) procOnStraightLine() AlgState {
	if _, _, blocks := d.selfBlocksPair(); blocks {
		return StateSeeTwoRobot
	}
	if d.selfMiddleOfFlatHullTriple(1 / float64(d.view.N)) {
		return StateSeeTwoRobot
	}
	return StateSeeOneRobot
}

// procNotOnConvexHull implements Procedure NotOnConvexHull (4.2.13).
func (d *decider) procNotOnConvexHull() AlgState {
	if touchingAny(d.view.Self, d.hull.all) {
		return StateIsTouching
	}
	return StateNotTouching
}

// procNotTouching implements Procedure NotTouching (4.2.15).
func (d *decider) procNotTouching() AlgState {
	if len(FindPoints(d.hull.onHull, d.view.N)) > 0 {
		return StateNotChange
	}
	return StateToChange
}

// --- Terminal procedures (produce a target point) ---

// procNotConnected implements Procedure NotConnected (4.2.5), the phase-2
// convergence step. Preconditions (established by the earlier states): the
// robot sees all n robots, all are on the convex hull, the configuration is
// fully visible but not tangency-connected.
func (d *decider) procNotConnected() geom.Vec {
	v := d.view
	h := d.hull
	self := v.Self
	n := v.N
	all := h.all

	if len(all) <= 2 {
		// Two robots: walk straight toward the other one; the motion stops
		// when the discs touch.
		for _, c := range all {
			if !c.EqWithin(self, geom.Eps) {
				return c
			}
		}
		return self
	}

	idx := h.indexOf(self)
	if idx < 0 {
		return self
	}
	left, right := h.neighbors(idx)
	inward := h.inwardNormal(left, right, self)

	touchLeft := tangent(self, left)
	touchRight := tangent(self, right)
	if touchLeft && touchRight {
		return self
	}

	comps := ConnectedComponents(all, n)
	if len(comps) == 1 {
		if !touchingAny(self, all) {
			// Sub-tangency gaps on both sides: converge inward.
			return self.Add(inward.Scale(1 / (2 * float64(n))))
		}
		if !touchRight {
			// Close the remaining small gap toward the right neighbour (see
			// package documentation on Connected-Components gaps).
			return MoveToPoint(self, right, n, h.interior)
		}
		return self
	}

	// Component priority rule. The paper's pseudocode expresses this through
	// In-Largest-Component / In-Smallest-Component / How-Much-Distance; the
	// authoritative statement of the intended behaviour is the three cases of
	// Lemma 23, which is what is implemented here:
	//
	//	(A) some component is strictly smaller than another: robots of the
	//	    smallest components slide toward their right neighbour component;
	//	(B) all components have equal size but the gaps differ: the rightmost
	//	    robot of the component with the smallest right-gap slides right;
	//	(C) all sizes and all gaps are equal: everyone converges inward by
	//	    1/(2n)−ε, preserving the hull shape.
	ci := componentIndexOf(comps, self)
	if ci < 0 {
		return self
	}
	minSize, maxSize := comps[0].Size(), comps[0].Size()
	for _, comp := range comps[1:] {
		if comp.Size() < minSize {
			minSize = comp.Size()
		}
		if comp.Size() > maxSize {
			maxSize = comp.Size()
		}
	}
	mySize := comps[ci].Size()
	if mySize > minSize {
		return self
	}
	if minSize < maxSize {
		// Case (A): member of a smallest component. Only the rightmost member
		// makes real progress (the others are already tangent to their right
		// neighbour), exactly as in the paper's cascading argument.
		return MoveToPoint(self, right, n, h.interior)
	}
	switch HowMuchDistance(all, self, n) {
	case 1:
		return MoveToPoint(self, right, n, h.interior) // case (B)
	case 2:
		return d.convergeStep(idx, comps, true) // case (C)
	default:
		return self
	}
}

// convergeStep implements the "all components equal" convergence move of
// Procedure NotConnected: step inward by 1/(2n)−ε, perpendicular to the
// chord of the robot's own component. The step is skipped (the robot stays)
// when it would flatten the robot below the 1/(2n) sagitta that the paper's
// guards preserve, so converging never degenerates the hull locally into a
// straight line. When checkTouch is set, the move is also suppressed if it
// would make the robot touch another member of its own component (unless the
// robot is an endpoint of the component).
func (d *decider) convergeStep(idx int, comps []Component, checkTouch bool) geom.Vec {
	self := d.view.Self
	n := d.view.N
	h := d.hull
	ci := componentIndexOf(comps, self)
	if ci < 0 {
		return self
	}
	comp := comps[ci]
	a, b := comp.Leftmost(), comp.Rightmost()
	if a.EqWithin(b, geom.Eps) {
		left, right := h.neighbors(idx)
		a, b = left, right
	}
	inward := h.inwardNormal(a, b, self)
	target := self.Add(inward.Scale(HalfStep(n)))
	// Flatness guard (paper, Procedure NotConnected, first bullets): do not
	// converge below sagitta 1/(2n) with respect to the hull neighbours.
	hl, hr := h.neighbors(idx)
	if geom.DistancePointLine(target, hl, hr) < 1/(2*float64(n)) &&
		geom.DistancePointLine(target, hl, hr) < geom.DistancePointLine(self, hl, hr) {
		return self
	}
	if checkTouch {
		isEndpoint := comp.Leftmost().EqWithin(self, geom.Eps) || comp.Rightmost().EqWithin(self, geom.Eps)
		if !isEndpoint {
			for _, q := range comp.Members {
				if q.EqWithin(self, geom.Eps) {
					continue
				}
				if target.Dist(q) < 2*geom.UnitRadius-geom.Eps {
					return self
				}
			}
		}
	}
	return target
}

// procSpaceForMore implements Procedure SpaceForMore (4.2.8): a hull robot
// that is tangent to a non-adjacent hull robot steps outward by 1/(2n)−ε so
// that it no longer obstructs views; otherwise it stays.
func (d *decider) procSpaceForMore() geom.Vec {
	h := d.hull
	self := d.view.Self
	idx := h.indexOf(self)
	if idx < 0 {
		return self
	}
	left, right := h.neighbors(idx)
	for _, q := range h.onHull {
		if q.EqWithin(self, geom.Eps) || q.EqWithin(left, geom.Eps) || q.EqWithin(right, geom.Eps) {
			continue
		}
		if tangent(self, q) {
			outward := h.outwardNormal(left, right, self)
			return self.Add(outward.Scale(HalfStep(d.view.N)))
		}
	}
	return self
}

// procNoSpaceForMore implements Procedure NoSpaceForMore (4.2.9): the hull
// robot steps outward by 1/(2n)−ε to expand the hull and make room for the
// robots that are still inside it.
func (d *decider) procNoSpaceForMore() geom.Vec {
	h := d.hull
	self := d.view.Self
	idx := h.indexOf(self)
	if idx < 0 {
		return self
	}
	left, right := h.neighbors(idx)
	outward := h.outwardNormal(left, right, self)
	return self.Add(outward.Scale(HalfStep(d.view.N)))
}

// procSeeTwoRobot implements Procedure SeeTwoRobot (4.2.12): the robot is in
// the middle of two robots it keeps from seeing each other; it steps outward
// (away from the hull interior, perpendicular to the chord of that pair) by
// at most 1/(2n)−ε per cycle until the obstruction is gone.
func (d *decider) procSeeTwoRobot() geom.Vec {
	h := d.hull
	self := d.view.Self
	n := d.view.N
	step := HalfStep(n)

	if a, b, blocks := d.selfBlocksPair(); blocks {
		outward := h.outwardNormal(a, b, self)
		return self.Add(outward.Scale(step))
	}

	idx := h.indexOf(self)
	if idx < 0 {
		return self
	}
	left, right := h.neighbors(idx)
	outward := h.outwardNormal(left, right, self)
	distToLine := geom.DistancePointLine(self, left, right)
	needed := 1/float64(n) - distToLine
	if needed > 0 && needed < step {
		step = needed
	}
	if step <= 0 {
		step = HalfStep(n)
	}
	return self.Add(outward.Scale(step))
}

// procIsTouching implements Procedure IsTouching (4.2.14): an interior robot
// that touches others competes with them for the nearest free spot on the
// hull; only the robot with the highest proximity moves.
func (d *decider) procIsTouching() geom.Vec {
	h := d.hull
	self := d.view.Self
	n := d.view.N
	touchers := touchingNeighbours(self, h.all)

	points := FindPoints(h.onHull, n)
	if len(points) > 0 {
		p := closestTo(points, self)
		return d.contendForTarget(p, touchers)
	}
	mid, ok := widestGapMidpointNear(h.onHull, self, MinGapForRobot)
	if !ok {
		return self
	}
	return d.contendForTarget(mid, touchers)
}

// contendForTarget applies the paper's proximity rule: the robot moves toward
// target only if no touching robot is strictly closer, and ties are broken in
// favour of the "rightmost" contender (a deterministic chirality-consistent
// tie-break all robots agree on).
func (d *decider) contendForTarget(target geom.Vec, touchers []geom.Vec) geom.Vec {
	self := d.view.Self
	dSelf := self.Dist(target)
	const tieTol = 1e-9
	var tied []geom.Vec
	for _, q := range touchers {
		dq := q.Dist(target)
		if dq < dSelf-tieTol {
			return self
		}
		if math.Abs(dq-dSelf) <= tieTol {
			tied = append(tied, q)
		}
	}
	if len(tied) > 0 {
		contenders := append([]geom.Vec{self}, tied...)
		if !rightmostToward(contenders, target).EqWithin(self, geom.Eps) {
			return self
		}
	}
	return d.towardHullBoundary(target)
}

// procToChange implements Procedure ToChange (4.2.16): the interior robot
// cannot reach the hull without changing it, so it heads for the midpoint of
// the nearest hull gap that can accommodate a robot (changing the hull, which
// in this situation is unavoidable).
func (d *decider) procToChange() geom.Vec {
	h := d.hull
	self := d.view.Self
	mid, ok := widestGapMidpointNear(h.onHull, self, MinGapForRobot)
	if !ok {
		return self
	}
	return mid
}

// procNotChange implements Procedure NotChange (4.2.17): move toward the
// closest Find-Points candidate, stopping on the hull boundary.
func (d *decider) procNotChange() geom.Vec {
	h := d.hull
	self := d.view.Self
	points := FindPoints(h.onHull, d.view.N)
	if len(points) == 0 {
		return self
	}
	x := closestTo(points, self)
	return d.towardHullBoundary(x)
}

// --- helpers ---

// flatTriples scans all consecutive hull triples containing the robot and
// reports whether any has sagitta below threshold, and whether the robot is
// the middle point of such a triple.
func (d *decider) flatTriples(threshold float64) (flat, selfMiddle bool) {
	h := d.hull
	n := len(h.onHull)
	if n < 3 {
		return false, false
	}
	idx := h.indexOf(d.view.Self)
	if idx < 0 {
		return false, false
	}
	for off := -2; off <= 0; off++ {
		a := h.onHull[(idx+off-1+2*n)%n]
		b := h.onHull[(idx+off+2*n)%n]
		c := h.onHull[(idx+off+1+2*n)%n]
		if !containsPoint([]geom.Vec{a, b, c}, d.view.Self) {
			continue
		}
		if geom.DistancePointLine(b, a, c) < threshold {
			flat = true
			if b.EqWithin(d.view.Self, geom.Eps) {
				selfMiddle = true
			}
		}
	}
	return flat, selfMiddle
}

// selfInFlatHullTriple reports whether the robot belongs to any consecutive
// hull triple whose middle point is within `width` of the chord of the outer
// two (the Figure 5 rectangle test).
func (d *decider) selfInFlatHullTriple(width float64) bool {
	h := d.hull
	n := len(h.onHull)
	if n < 3 {
		return false
	}
	idx := h.indexOf(d.view.Self)
	if idx < 0 {
		return false
	}
	for off := -1; off <= 1; off++ {
		a := h.onHull[(idx+off-1+2*n)%n]
		b := h.onHull[(idx+off+2*n)%n]
		c := h.onHull[(idx+off+1+2*n)%n]
		if !containsPoint([]geom.Vec{a, b, c}, d.view.Self) {
			continue
		}
		if InStraightLineRect(a, b, c, d.view.N) && geom.DistancePointSegment(b, a, c) <= width {
			return true
		}
	}
	return false
}

// selfMiddleOfFlatHullTriple reports whether the robot is the middle point of
// a flat consecutive hull triple.
func (d *decider) selfMiddleOfFlatHullTriple(width float64) bool {
	h := d.hull
	n := len(h.onHull)
	if n < 3 {
		return false
	}
	idx := h.indexOf(d.view.Self)
	if idx < 0 {
		return false
	}
	a := h.onHull[(idx-1+n)%n]
	c := h.onHull[(idx+1)%n]
	return geom.DistancePointSegment(d.view.Self, a, c) <= width
}

// maxInwardWithoutFlattening returns how far the robot can move inward
// (perpendicular to its neighbours' chord) while keeping the sagitta of every
// hull triple involving it at or above minSagitta. It is a conservative bound
// used by the flatness guard of Procedure NotConnected.
func (d *decider) maxInwardWithoutFlattening(idx int, minSagitta float64) float64 {
	h := d.hull
	n := len(h.onHull)
	if n < 3 {
		return HalfStep(d.view.N)
	}
	self := d.view.Self
	left, right := h.neighbors(idx)
	limit := HalfStep(d.view.N)
	// Check the two triples in which the robot is an outer point: moving
	// inward reduces the sagitta of the neighbouring middle robots.
	for _, tr := range [][3]geom.Vec{
		{h.onHull[(idx-2+2*n)%n], left, self},
		{self, right, h.onHull[(idx+2)%n]},
	} {
		a, b, c := tr[0], tr[1], tr[2]
		cur := geom.DistancePointLine(b, a, c)
		slack := cur - minSagitta
		if slack < limit {
			limit = slack
		}
	}
	if limit < 0 {
		return 0
	}
	return limit
}

// towardHullBoundary returns the point where the segment from the robot to
// target crosses the hull boundary; if the robot is already outside or the
// segment does not cross, target itself is returned.
func (d *decider) towardHullBoundary(target geom.Vec) geom.Vec {
	corners := d.hull.corners
	if len(corners) < 3 {
		return target
	}
	self := d.view.Self
	best := target
	bestDist := math.Inf(1)
	for i := range corners {
		a := corners[i]
		b := corners[(i+1)%len(corners)]
		if pt, ok := geom.SegmentIntersection(self, target, a, b); ok {
			if dd := self.Dist(pt); dd > geom.Eps && dd < bestDist {
				bestDist = dd
				best = pt
			}
		}
	}
	return best
}

// hullHasGap reports whether any pair of consecutive on-hull points is at
// center distance at least gap.
func hullHasGap(onHull []geom.Vec, gap float64) bool {
	m := len(onHull)
	if m < 2 {
		return true
	}
	pairs := m
	if m == 2 {
		pairs = 1
	}
	for i := 0; i < pairs; i++ {
		if onHull[i].Dist(onHull[(i+1)%m]) >= gap {
			return true
		}
	}
	return false
}

// projectOntoHull projects point c onto the hull boundary along the ray from
// origin through c, returning the boundary point farthest along the ray.
func projectOntoHull(origin, c geom.Vec, corners []geom.Vec) (geom.Vec, bool) {
	if len(corners) < 3 {
		return geom.Vec{}, false
	}
	dir := c.Sub(origin)
	if dir.Norm() < geom.Eps {
		return geom.Vec{}, false
	}
	far := origin.Add(dir.Unit().Scale(1e6))
	best := geom.Vec{}
	bestDist := -1.0
	for i := range corners {
		a := corners[i]
		b := corners[(i+1)%len(corners)]
		if pt, ok := geom.SegmentIntersection(origin, far, a, b); ok {
			if dd := origin.Dist(pt); dd > bestDist {
				bestDist = dd
				best = pt
			}
		}
	}
	if bestDist < 0 {
		return geom.Vec{}, false
	}
	return best, true
}

// widestGapMidpointNear returns the midpoint of the hull gap (consecutive
// on-hull pair at distance >= minGap) whose midpoint is closest to p.
func widestGapMidpointNear(onHull []geom.Vec, p geom.Vec, minGap float64) (geom.Vec, bool) {
	m := len(onHull)
	if m < 2 {
		return geom.Vec{}, false
	}
	pairs := m
	if m == 2 {
		pairs = 1
	}
	best := geom.Vec{}
	bestDist := math.Inf(1)
	found := false
	for i := 0; i < pairs; i++ {
		a := onHull[i]
		b := onHull[(i+1)%m]
		if a.Dist(b) < minGap {
			continue
		}
		mid := geom.Midpoint(a, b)
		if dd := p.Dist(mid); dd < bestDist {
			bestDist = dd
			best = mid
			found = true
		}
	}
	return best, found
}

// closestTo returns the point of pts closest to p.
func closestTo(pts []geom.Vec, p geom.Vec) geom.Vec {
	best := pts[0]
	bestDist := p.Dist(best)
	for _, q := range pts[1:] {
		if dd := p.Dist(q); dd < bestDist {
			bestDist = dd
			best = q
		}
	}
	return best
}

// rightmostToward returns, among the candidate centers, the one that is
// "rightmost" with respect to the direction toward target: the candidate with
// the largest component along the clockwise perpendicular of that direction
// (ties broken by progress toward the target, then lexicographically). All
// robots share chirality, so they all agree on the outcome.
func rightmostToward(cands []geom.Vec, target geom.Vec) geom.Vec {
	center := geom.Centroid(cands)
	dir := target.Sub(center)
	if dir.Norm() < geom.Eps {
		dir = geom.V(1, 0)
	}
	u := dir.Unit()
	right := u.PerpCW()
	best := cands[0]
	bestKey := scoreRightmost(best, right, u)
	for _, c := range cands[1:] {
		key := scoreRightmost(c, right, u)
		if key[0] > bestKey[0]+geom.Eps ||
			(math.Abs(key[0]-bestKey[0]) <= geom.Eps && key[1] > bestKey[1]+geom.Eps) ||
			(math.Abs(key[0]-bestKey[0]) <= geom.Eps && math.Abs(key[1]-bestKey[1]) <= geom.Eps && key[2] > bestKey[2]) {
			best = c
			bestKey = key
		}
	}
	return best
}

func scoreRightmost(c, right, forward geom.Vec) [3]float64 {
	return [3]float64{c.Dot(right), c.Dot(forward), c.X*1e-9 + c.Y}
}

// containsPoint reports whether pts contains p (within Eps).
func containsPoint(pts []geom.Vec, p geom.Vec) bool {
	for _, q := range pts {
		if q.EqWithin(p, geom.Eps) {
			return true
		}
	}
	return false
}
