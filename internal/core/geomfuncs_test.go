package core

import (
	"math"
	"testing"

	"github.com/fatgather/fatgather/internal/geom"
)

func v(x, y float64) geom.Vec { return geom.V(x, y) }

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEpsilonAndHalfStep(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10, 100} {
		eps := Epsilon(n)
		if eps <= 0 || eps >= 1/(2*float64(n)) {
			t.Fatalf("n=%d: epsilon %v out of range", n, eps)
		}
		hs := HalfStep(n)
		if hs <= 0 || hs >= 1/(2*float64(n)) {
			t.Fatalf("n=%d: halfstep %v out of range", n, hs)
		}
	}
	if Epsilon(0) <= 0 || HalfStep(-3) <= 0 || OnHullSlack(0) <= 0 {
		t.Fatal("degenerate n should still yield positive values")
	}
}

func TestOnConvexHull(t *testing.T) {
	pts := []geom.Vec{v(0, 0), v(10, 0), v(10, 10), v(0, 10), v(5, 5)}
	on, onCH := OnConvexHull(pts, v(10, 10))
	if !on {
		t.Fatal("corner should be on hull")
	}
	if len(onCH) != 4 {
		t.Fatalf("onCH size = %d", len(onCH))
	}
	on, _ = OnConvexHull(pts, v(5, 5))
	if on {
		t.Fatal("interior point should not be on hull")
	}
	// Point on a hull edge counts as on the hull.
	pts2 := append(pts, v(5, 0))
	on, onCH = OnConvexHull(pts2, v(5, 0))
	if !on {
		t.Fatal("edge point should be on hull")
	}
	if len(onCH) != 5 {
		t.Fatalf("onCH with edge point size = %d", len(onCH))
	}
}

func TestMoveToPoint(t *testing.T) {
	c1 := v(0, 0)
	c2 := v(10, 0)
	interior := v(5, 5) // hull interior above the segment
	n := 8
	mu := MoveToPoint(c1, c2, n, interior)
	// µ must be on the unit circle around c2.
	if !almostEq(mu.Dist(c2), 1, 1e-9) {
		t.Fatalf("mu %v not on unit circle of c2 (dist %v)", mu, mu.Dist(c2))
	}
	// µ must be on the c1 side of c2 and offset toward the interior side.
	if mu.X >= c2.X {
		t.Fatalf("mu %v should be between c1 and c2", mu)
	}
	if mu.Y <= 0 {
		t.Fatalf("mu %v should be offset toward the hull interior", mu)
	}
	// The offset at c2 is 1/(2n)-eps, so the angular offset of mu is small.
	if mu.Y > 1/(2*float64(n)) {
		t.Fatalf("mu offset %v larger than 1/2n", mu.Y)
	}
}

func TestMoveToPointDegenerate(t *testing.T) {
	c := v(3, 3)
	if got := MoveToPoint(c, c, 5, v(0, 0)); !got.Eq(c) {
		t.Fatalf("coincident centers should return c1, got %v", got)
	}
	// c1 inside the unit disc of c2: fall back to the offset point.
	got := MoveToPoint(v(10.5, 0), v(10, 0), 5, v(5, 5))
	if got.Dist(v(10, 0)) > 1+1e-9 {
		t.Fatalf("fallback point should stay within the unit disc, got %v", got)
	}
}

func TestTangencyTarget(t *testing.T) {
	c1 := v(0, 0)
	c2 := v(10, 0)
	mu := MoveToPoint(c1, c2, 8, v(5, 5))
	stop := TangencyTarget(c1, c2, mu)
	if !almostEq(stop.Dist(c2), 2, 1e-6) {
		t.Fatalf("tangency stop %v should be at distance 2 from c2, got %v", stop, stop.Dist(c2))
	}
	// Moving from c1 toward mu, the stop point lies on that ray.
	if geom.DistancePointLine(stop, c1, mu) > 1e-6 {
		t.Fatalf("stop point %v not on the motion ray", stop)
	}
}

func TestFindPointsSquareWithSpace(t *testing.T) {
	// A big square: every side has room for another robot.
	hull := []geom.Vec{v(0, 0), v(10, 0), v(10, 10), v(0, 10)}
	pts := FindPoints(hull, 4)
	if len(pts) != 4 {
		t.Fatalf("expected 4 candidate points, got %d: %v", len(pts), pts)
	}
	for _, p := range pts {
		// Each candidate is outside the hull by 1/n.
		if geom.PointInConvexPolygon(p, hull) {
			t.Fatalf("candidate %v should be outside the hull", p)
		}
		// And adding it must keep all hull points on the hull (Lemma 1).
		if !findPointValid(p, hull) {
			t.Fatalf("candidate %v reported invalid", p)
		}
		for _, q := range hull {
			if p.Dist(q) < 2 {
				t.Fatalf("candidate %v overlaps hull robot %v", p, q)
			}
		}
	}
}

func TestFindPointsNoSpace(t *testing.T) {
	// A tight triangle: sides are below the space threshold.
	hull := []geom.Vec{v(0, 0), v(2.5, 0), v(1.2, 2.2)}
	if pts := FindPoints(hull, 3); len(pts) != 0 {
		t.Fatalf("expected no candidates, got %v", pts)
	}
	if pts := FindPoints([]geom.Vec{v(0, 0)}, 3); pts != nil {
		t.Fatalf("single point hull should yield nil, got %v", pts)
	}
}

func TestFindPointsTwoPointHull(t *testing.T) {
	hull := []geom.Vec{v(0, 0), v(8, 0)}
	pts := FindPoints(hull, 2)
	if len(pts) != 1 {
		t.Fatalf("expected one candidate on the single side, got %v", pts)
	}
}

func TestInStraightLine2(t *testing.T) {
	if !InStraightLine2(v(0, 0), v(1, 0), v(2, 0)) {
		t.Fatal("collinear points should be on a line")
	}
	if InStraightLine2(v(0, 0), v(1, 0.5), v(2, 0)) {
		t.Fatal("bent points should not be on a line")
	}
}

func TestInStraightLineRect(t *testing.T) {
	n := 10
	if !InStraightLineRect(v(0, 0), v(5, 0.05), v(10, 0), n) {
		t.Fatal("point within 1/n of the chord is in the rectangle")
	}
	if InStraightLineRect(v(0, 0), v(5, 0.5), v(10, 0), n) {
		t.Fatal("point beyond 1/n of the chord is outside the rectangle")
	}
}

func TestSafeDistance(t *testing.T) {
	// A square corner sequence: right angles on both sides.
	d := SafeDistance(v(0, 10), v(0, 0), v(10, 0), v(10, 10), 8)
	if math.IsInf(d, 1) || d <= 0 {
		t.Fatalf("safe distance for right angles should be finite positive, got %v", d)
	}
	// Nearly straight continuation: safe distance explodes.
	d2 := SafeDistance(v(-10, 0), v(0, 0), v(10, 0), v(20, 0), 8)
	if !math.IsInf(d2, 1) {
		t.Fatalf("collinear continuation should give +Inf, got %v", d2)
	}
	// Sharper corners need less distance.
	dSharp := SafeDistance(v(0, 10), v(0, 0), v(4, 0), v(4, 10), 8)
	if dSharp > d+1e-9 {
		t.Fatalf("equal angles should give equal requirement, got %v vs %v", dSharp, d)
	}
	// Larger n shrinks the requirement.
	dBig := SafeDistance(v(0, 10), v(0, 0), v(10, 0), v(10, 10), 64)
	if dBig >= d {
		t.Fatalf("larger n should reduce safe distance: %v vs %v", dBig, d)
	}
}
