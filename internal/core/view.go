package core

import (
	"math"
	"sort"

	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
)

// View is the input to the local algorithm: the snapshot a robot took in its
// Look state. Self is the observing robot's own center, Others are the
// centers of the other robots it can see, and N is the total number of robots
// in the system (which the paper assumes every robot knows).
type View struct {
	Self   geom.Vec
	Others []geom.Vec
	N      int
}

// NewView builds a View, copying the slice of other centers.
func NewView(self geom.Vec, others []geom.Vec, n int) View {
	return View{Self: self, Others: append([]geom.Vec(nil), others...), N: n}
}

// All returns every visible center including Self (Self first).
func (v View) All() []geom.Vec {
	out := make([]geom.Vec, 0, len(v.Others)+1)
	out = append(out, v.Self)
	out = append(out, v.Others...)
	return out
}

// Count returns the number of robots visible in the view, including the
// observer itself.
func (v View) Count() int { return len(v.Others) + 1 }

// SeesAll reports whether the view contains all N robots.
func (v View) SeesAll() bool { return v.Count() >= v.N }

// Epsilon returns the ε used in the algorithm's 1/(2n)−ε constructions. The
// paper leaves ε unspecified; this implementation uses 1/(8n).
func Epsilon(n int) float64 {
	if n < 1 {
		n = 1
	}
	return 1 / (8 * float64(n))
}

// HalfStep returns 1/(2n) − ε, the standard small displacement used by the
// algorithm's procedures.
func HalfStep(n int) float64 {
	if n < 1 {
		n = 1
	}
	return 1/(2*float64(n)) - Epsilon(n)
}

// OnHullSlack returns the tolerance within which a robot counts as being on
// the convex hull boundary for the purposes of the Compute algorithm. See the
// package documentation for why this is 1/(2n) rather than an exact test.
func OnHullSlack(n int) float64 {
	if n < 1 {
		n = 1
	}
	return 1 / (2 * float64(n))
}

// MinGapForRobot is the minimum center distance between two neighbouring
// robots on the convex hull for a third unit-disc robot to fit between them
// without overlapping either (free gap of one disc diameter).
const MinGapForRobot = 4 * geom.UnitRadius

// hullInfo is the per-decision digest of the view's convex-hull structure.
type hullInfo struct {
	all      []geom.Vec // every visible center (self first)
	corners  []geom.Vec // convex hull corner vertices, CCW
	onHull   []geom.Vec // centers within slack of the hull boundary, CCW order
	selfIdx  int        // index of Self in onHull, or -1
	interior geom.Vec   // a point in the hull interior (centroid of all)
	slack    float64
}

// buildHullInfo computes the hull digest for a view.
func buildHullInfo(v View) *hullInfo {
	all := v.All()
	slack := OnHullSlack(v.N)
	corners := geom.ConvexHull(all)
	interior := geom.Centroid(all)
	onHull := orderOnHull(all, corners, slack, interior)
	selfIdx := -1
	for i, p := range onHull {
		if p.EqWithin(v.Self, geom.Eps) {
			selfIdx = i
			break
		}
	}
	return &hullInfo{
		all:      all,
		corners:  corners,
		onHull:   onHull,
		selfIdx:  selfIdx,
		interior: interior,
		slack:    slack,
	}
}

// orderOnHull returns the points of all that lie within slack of the boundary
// of the convex hull with the given corners, ordered counter-clockwise by
// angle around the interior point.
func orderOnHull(all, corners []geom.Vec, slack float64, interior geom.Vec) []geom.Vec {
	var onHull []geom.Vec
	switch len(corners) {
	case 0:
		return nil
	case 1:
		for _, p := range all {
			if p.Dist(corners[0]) <= slack {
				onHull = append(onHull, p)
			}
		}
		return onHull
	case 2:
		for _, p := range all {
			if geom.DistancePointSegment(p, corners[0], corners[1]) <= slack {
				onHull = append(onHull, p)
			}
		}
		axis := corners[1].Sub(corners[0])
		sort.Slice(onHull, func(i, j int) bool {
			return onHull[i].Sub(corners[0]).Dot(axis) < onHull[j].Sub(corners[0]).Dot(axis)
		})
		return onHull
	}
	for _, p := range all {
		if distToHullBoundary(p, corners) <= slack {
			onHull = append(onHull, p)
		}
	}
	// Order by position along the hull boundary (edge index plus the
	// fractional position on that edge). Unlike an angular sort around the
	// centroid, this stays stable for thin, nearly-collinear hulls.
	type keyed struct {
		p   geom.Vec
		key float64
	}
	items := make([]keyed, len(onHull))
	for i, p := range onHull {
		items[i] = keyed{p: p, key: boundaryKey(p, corners)}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].key < items[j].key })
	for i, it := range items {
		onHull[i] = it.p
	}
	return onHull
}

// boundaryKey maps a point near the hull boundary to a monotone parameter
// along the boundary: (index of the closest edge) + (fraction along it).
func boundaryKey(p geom.Vec, corners []geom.Vec) float64 {
	n := len(corners)
	bestEdge := 0
	bestDist := math.Inf(1)
	bestT := 0.0
	for i := 0; i < n; i++ {
		a := corners[i]
		b := corners[(i+1)%n]
		cp := geom.ClosestPointOnSegment(p, a, b)
		d := p.Dist(cp)
		if d < bestDist {
			bestDist = d
			bestEdge = i
			length := a.Dist(b)
			if length < geom.Eps {
				bestT = 0
			} else {
				bestT = geom.Clamp(cp.Sub(a).Dot(b.Sub(a))/(length*length), 0, 0.999999)
			}
		}
	}
	return float64(bestEdge) + bestT
}

// distToHullBoundary returns the distance from p to the boundary of the
// convex polygon given by its corner vertices.
func distToHullBoundary(p geom.Vec, corners []geom.Vec) float64 {
	n := len(corners)
	if n == 0 {
		return math.Inf(1)
	}
	if n == 1 {
		return p.Dist(corners[0])
	}
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		d := geom.DistancePointSegment(p, corners[i], corners[(i+1)%n])
		if d < best {
			best = d
		}
	}
	return best
}

// SelfOnHull reports whether the observer is on the hull boundary (within
// slack).
func (h *hullInfo) SelfOnHull() bool { return h.selfIdx >= 0 }

// neighbors returns the hull-order neighbours (left = previous CCW, right =
// next CCW) of the on-hull point at index i.
func (h *hullInfo) neighbors(i int) (left, right geom.Vec) {
	n := len(h.onHull)
	if n == 0 {
		return geom.Vec{}, geom.Vec{}
	}
	return h.onHull[(i-1+n)%n], h.onHull[(i+1)%n]
}

// indexOf returns the index of p in the on-hull ordering, or -1.
func (h *hullInfo) indexOf(p geom.Vec) int {
	for i, q := range h.onHull {
		if q.EqWithin(p, geom.Eps) {
			return i
		}
	}
	return -1
}

// inwardNormal returns the unit vector perpendicular to the segment (a, b)
// pointing from the observing robot (at `from`) toward the hull interior. If
// the perpendicular direction is degenerate it falls back to pointing from
// `from` toward the interior point, and as a last resort to the +90°
// perpendicular of (b-a).
func (h *hullInfo) inwardNormal(a, b, from geom.Vec) geom.Vec {
	dir := b.Sub(a)
	if dir.Norm() < geom.Eps {
		d := h.interior.Sub(from)
		if d.Norm() < geom.Eps {
			return geom.V(0, 1)
		}
		return d.Unit()
	}
	perp := dir.Unit().Perp()
	toInterior := h.interior.Sub(from)
	if toInterior.Norm() < geom.Eps {
		// Degenerate hull (all points collinear, observer at the centroid):
		// any perpendicular works; pick the +90° one deterministically so
		// that all robots that share the same view make the same choice.
		return perp
	}
	if perp.Dot(toInterior) < 0 {
		perp = perp.Neg()
	}
	return perp
}

// outwardNormal is the negation of inwardNormal.
func (h *hullInfo) outwardNormal(a, b, from geom.Vec) geom.Vec {
	return h.inwardNormal(a, b, from).Neg()
}

// tangent reports whether the unit discs centered at a and b touch.
func tangent(a, b geom.Vec) bool {
	return geom.DiscsTangent(a, b, geom.UnitRadius, config.ContactEps)
}

// touchingAny reports whether the disc at p touches any disc in pts other
// than itself.
func touchingAny(p geom.Vec, pts []geom.Vec) bool {
	for _, q := range pts {
		if q.EqWithin(p, geom.Eps) {
			continue
		}
		if tangent(p, q) {
			return true
		}
	}
	return false
}

// touchingNeighbours returns the centers in pts whose discs touch the disc at
// p (excluding p itself).
func touchingNeighbours(p geom.Vec, pts []geom.Vec) []geom.Vec {
	var out []geom.Vec
	for _, q := range pts {
		if q.EqWithin(p, geom.Eps) {
			continue
		}
		if tangent(p, q) {
			out = append(out, q)
		}
	}
	return out
}
