package core

import (
	"math"

	"github.com/fatgather/fatgather/internal/geom"
)

// Component is one connected component in the sense of the paper's Function
// Connected-Components (Section 3.4): a maximal run of consecutive robots
// around the convex hull in which every consecutive gap (free space between
// disc boundaries) is at most 1/(2m). Members are listed in counter-clockwise
// hull order; the component's "leftmost" robot is Members[0] and its
// "rightmost" robot is the last member (the one adjacent to the gap toward
// the next component counter-clockwise).
type Component struct {
	Members []geom.Vec
}

// Size returns the number of robots in the component.
func (c Component) Size() int { return len(c.Members) }

// Leftmost returns the first member in hull order.
func (c Component) Leftmost() geom.Vec {
	if len(c.Members) == 0 {
		return geom.Vec{}
	}
	return c.Members[0]
}

// Rightmost returns the last member in hull order.
func (c Component) Rightmost() geom.Vec {
	if len(c.Members) == 0 {
		return geom.Vec{}
	}
	return c.Members[len(c.Members)-1]
}

// Contains reports whether the component contains the given center.
func (c Component) Contains(p geom.Vec) bool {
	for _, q := range c.Members {
		if q.EqWithin(p, geom.Eps) {
			return true
		}
	}
	return false
}

// ComponentGapTol returns the paper's gap threshold 1/(2m): consecutive
// robots whose free gap is at most this are part of the same component.
func ComponentGapTol(m int) float64 {
	if m < 1 {
		m = 1
	}
	return 1 / (2 * float64(m))
}

// ConnectedComponents implements the paper's Function Connected-Components:
// it partitions the given points (assumed to all lie on the convex hull, as
// is the case when it is called by the algorithm) into components around the
// hull. Points are first ordered counter-clockwise around the hull; gaps of
// at most 1/(2m) between consecutive discs keep them in the same component,
// larger gaps split components. The components are returned in
// counter-clockwise order starting from an arbitrary but deterministic gap.
func ConnectedComponents(points []geom.Vec, m int) []Component {
	ordered := hullCycleOrder(points)
	n := len(ordered)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []Component{{Members: ordered}}
	}
	tol := ComponentGapTol(m)
	// gapAfter[i] is the free gap between ordered[i] and ordered[i+1 mod n].
	gapAfter := make([]float64, n)
	splitExists := false
	for i := range ordered {
		j := (i + 1) % n
		gapAfter[i] = ordered[i].Dist(ordered[j]) - 2*geom.UnitRadius
		if gapAfter[i] > tol {
			splitExists = true
		}
	}
	if !splitExists {
		return []Component{{Members: ordered}}
	}
	// Start right after the first splitting gap so components are contiguous.
	start := 0
	for i := range gapAfter {
		if gapAfter[i] > tol {
			start = (i + 1) % n
			break
		}
	}
	var comps []Component
	var cur []geom.Vec
	for k := 0; k < n; k++ {
		i := (start + k) % n
		cur = append(cur, ordered[i])
		if gapAfter[i] > tol {
			comps = append(comps, Component{Members: cur})
			cur = nil
		}
	}
	if len(cur) > 0 {
		comps = append(comps, Component{Members: cur})
	}
	return comps
}

// hullCycleOrder orders the points counter-clockwise around the centroid,
// which for points on (or near) a convex hull is the cyclic hull order. For a
// degenerate, collinear set the points are ordered along the line.
func hullCycleOrder(points []geom.Vec) []geom.Vec {
	corners := geom.ConvexHull(points)
	interior := geom.Centroid(points)
	slack := math.Inf(1) // include every point: callers guarantee on-hull
	return orderOnHull(points, corners, slack, interior)
}

// componentIndexOf returns the index of the component containing p, or -1.
func componentIndexOf(comps []Component, p geom.Vec) int {
	for i, c := range comps {
		if c.Contains(p) {
			return i
		}
	}
	return -1
}

// componentGaps returns, for each component i, the free gap between its
// rightmost robot and the leftmost robot of component (i+1) mod k.
func componentGaps(comps []Component) []float64 {
	k := len(comps)
	gaps := make([]float64, k)
	for i := range comps {
		next := comps[(i+1)%k]
		gaps[i] = comps[i].Rightmost().Dist(next.Leftmost()) - 2*geom.UnitRadius
	}
	return gaps
}

// gapEqualityTol is the tolerance used when comparing inter-component gaps
// and component sizes for the "all equal" cases of the paper's functions.
const gapEqualityTol = 1e-6

// HowMuchDistance implements the paper's Function How-Much-Distance
// (Section 3.5). It returns:
//
//	2 if all inter-component gaps are equal (within tolerance), including the
//	  degenerate single-component case;
//	1 if c is the rightmost robot of a component whose gap to its right
//	  neighbour component is the smallest gap;
//	3 otherwise.
func HowMuchDistance(points []geom.Vec, c geom.Vec, m int) int {
	comps := ConnectedComponents(points, m)
	if len(comps) <= 1 {
		return 2
	}
	gaps := componentGaps(comps)
	minGap, maxGap := math.Inf(1), math.Inf(-1)
	for _, g := range gaps {
		minGap = math.Min(minGap, g)
		maxGap = math.Max(maxGap, g)
	}
	if maxGap-minGap <= gapEqualityTol {
		return 2
	}
	idx := componentIndexOf(comps, c)
	if idx < 0 {
		return 3
	}
	if comps[idx].Rightmost().EqWithin(c, geom.Eps) && gaps[idx] <= minGap+gapEqualityTol {
		return 1
	}
	return 3
}

// InLargestComponent implements the paper's Function In-Largest-Component
// (Section 3.6). It returns 1 if c belongs to a component of maximum size, 2
// if every other component is strictly larger than c's, and 3 otherwise.
func InLargestComponent(points []geom.Vec, c geom.Vec, m int) int {
	comps := ConnectedComponents(points, m)
	idx := componentIndexOf(comps, c)
	if idx < 0 || len(comps) == 0 {
		return 3
	}
	mySize := comps[idx].Size()
	maxSize := 0
	allOthersLarger := true
	for i, comp := range comps {
		if comp.Size() > maxSize {
			maxSize = comp.Size()
		}
		if i != idx && comp.Size() <= mySize {
			allOthersLarger = false
		}
	}
	if mySize == maxSize {
		return 1
	}
	if allOthersLarger && len(comps) > 1 {
		return 2
	}
	return 3
}

// InSmallestComponent implements the paper's Function In-Smallest-Component
// (Section 3.7). It returns 1 if c belongs to a component of minimum size, 2
// if every other component is strictly smaller than c's, and 3 otherwise.
func InSmallestComponent(points []geom.Vec, c geom.Vec, m int) int {
	comps := ConnectedComponents(points, m)
	idx := componentIndexOf(comps, c)
	if idx < 0 || len(comps) == 0 {
		return 3
	}
	mySize := comps[idx].Size()
	minSize := math.MaxInt
	allOthersSmaller := true
	for i, comp := range comps {
		if comp.Size() < minSize {
			minSize = comp.Size()
		}
		if i != idx && comp.Size() >= mySize {
			allOthersSmaller = false
		}
	}
	if mySize == minSize {
		return 1
	}
	if allOthersSmaller && len(comps) > 1 {
		return 2
	}
	return 3
}
