package fatgather

// One benchmark per evaluation artifact (E1..E12); see the experiment
// index in README.md / internal/experiments. The benchmarks
// call the same drivers as cmd/gatherbench with a reduced budget so that
// `go test -bench=.` stays tractable; run cmd/gatherbench for the full-size
// tables.

import (
	"testing"

	"github.com/fatgather/fatgather/internal/experiments"
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/vision"
	"github.com/fatgather/fatgather/internal/workload"
)

// benchCfg is the reduced budget used by the benchmark harness.
var benchCfg = experiments.Config{Seeds: 1, MaxEvents: 30000}

func BenchmarkFig1StateCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E1StateCycle(benchCfg)
	}
}

func BenchmarkFig2MoveToPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E2MoveToPoint(benchCfg)
	}
}

func BenchmarkFig3FindPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E3FindPoints(benchCfg)
	}
}

func BenchmarkFig5StraightLine(b *testing.B) {
	// The straight-line rectangle test is part of the E3 driver; benchmark
	// the underlying simulation from a collinear start, which exercises it on
	// every Compute of the middle robots.
	cfg, err := GenerateWorkload(WorkloadCollinear, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(Options{Initial: cfg, MaxEvents: 2000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4StateCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E4StateCoverage(benchCfg)
	}
}

func BenchmarkGatheringVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E5GatheringVsN(benchCfg, []int{2, 4, 6})
	}
}

func BenchmarkTimeToFullVisibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E6PhaseOne(benchCfg, 5)
	}
}

func BenchmarkTimeToConnected(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E7PhaseTwo(benchCfg, []int{4, 6})
	}
}

func BenchmarkHullMonotonicity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E8HullMonotonicity(benchCfg, 5)
	}
}

func BenchmarkAdversaryStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E9Adversaries(benchCfg, 4)
	}
}

func BenchmarkVsBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E10Baselines(benchCfg, []int{3, 5})
	}
}

func BenchmarkDeltaSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E11Delta(benchCfg, 4)
	}
}

func BenchmarkGeometryPrimitives(b *testing.B) {
	pts := workload.Ring(128, 300)
	b.Run("convex-hull-128", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = geom.ConvexHull(pts)
		}
	})
	b.Run("visibility-pair-128", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = vision.Default.Visible(pts, 0, 64)
		}
	})
	b.Run("experiment-table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = experiments.E12Primitives(benchCfg)
		}
	})
}

// BenchmarkEndToEndGathering measures a complete run of the public API on a
// small clustered workload (the quickstart scenario).
func BenchmarkEndToEndGathering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Options{N: 4, Workload: WorkloadClustered, Seed: 1, MaxEvents: 120000})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Gathered {
			b.Fatal("benchmark run did not gather")
		}
	}
}
