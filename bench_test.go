package fatgather

// One benchmark per evaluation artifact (E1..E12); see the experiment
// index in README.md / internal/experiments. The benchmarks
// call the same drivers as cmd/gatherbench with a reduced budget so that
// `go test -bench=.` stays tractable; run cmd/gatherbench for the full-size
// tables.
//
// Hot-path microbenchmarks live next to their packages — BenchmarkConvexHull
// in internal/geom, BenchmarkVisibilityPair and the FullyVisible grid/flat
// sweeps in internal/vision — so they evolve with the code they measure; this
// file keeps only the end-to-end experiment drivers.
//
// To capture CPU and allocation profiles of the hot path (the basis of the
// before/after numbers recorded in ARCHITECTURE.md), profile the sequential
// engine benchmark:
//
//	go test -run XXX -bench 'BenchmarkE5EngineWorkers/sequential' -benchtime 1x \
//	    -cpuprofile cpu.prof -memprofile mem.prof ./internal/experiments/
//	go tool pprof -top cpu.prof
//	go tool pprof -top -sample_index=alloc_objects mem.prof
//
// scripts/bench-snapshot.sh records the ns/op + allocs/op fingerprint of every
// benchmark into BENCH_<rev>.json, and scripts/bench-compare.sh diffs the
// current tree against the latest committed snapshot (the CI regression gate).

import (
	"testing"

	"github.com/fatgather/fatgather/internal/experiments"
)

// benchCfg is the reduced budget used by the benchmark harness.
var benchCfg = experiments.Config{Seeds: 1, MaxEvents: 30000}

func BenchmarkFig1StateCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E1StateCycle(benchCfg)
	}
}

func BenchmarkFig2MoveToPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E2MoveToPoint(benchCfg)
	}
}

func BenchmarkFig3FindPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E3FindPoints(benchCfg)
	}
}

func BenchmarkFig5StraightLine(b *testing.B) {
	// The straight-line rectangle test is part of the E3 driver; benchmark
	// the underlying simulation from a collinear start, which exercises it on
	// every Compute of the middle robots.
	cfg, err := GenerateWorkload(WorkloadCollinear, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(Options{Initial: cfg, MaxEvents: 2000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4StateCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E4StateCoverage(benchCfg)
	}
}

func BenchmarkGatheringVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E5GatheringVsN(benchCfg, []int{2, 4, 6})
	}
}

func BenchmarkTimeToFullVisibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E6PhaseOne(benchCfg, 5)
	}
}

func BenchmarkTimeToConnected(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E7PhaseTwo(benchCfg, []int{4, 6})
	}
}

func BenchmarkHullMonotonicity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E8HullMonotonicity(benchCfg, 5)
	}
}

func BenchmarkAdversaryStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E9Adversaries(benchCfg, 4)
	}
}

func BenchmarkVsBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E10Baselines(benchCfg, []int{3, 5})
	}
}

func BenchmarkDeltaSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E11Delta(benchCfg, 4)
	}
}

func BenchmarkGeometryPrimitives(b *testing.B) {
	// The convex-hull and visibility-pair microbenchmarks moved next to their
	// packages (internal/geom, internal/vision), where they also measure the
	// scratch-buffer variants; only the end-to-end primitive table remains.
	b.Run("experiment-table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = experiments.E12Primitives(benchCfg)
		}
	})
}

// BenchmarkEndToEndGathering measures a complete run of the public API on a
// small clustered workload (the quickstart scenario).
func BenchmarkEndToEndGathering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Options{N: 4, Workload: WorkloadClustered, Seed: 1, MaxEvents: 120000})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Gathered {
			b.Fatal("benchmark run did not gather")
		}
	}
}
