package fatgather

import (
	"errors"
	"strings"
	"testing"
)

func TestRunQuickGathering(t *testing.T) {
	res, err := Run(Options{
		N:         4,
		Workload:  WorkloadClustered,
		Seed:      1,
		MaxEvents: 120000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Gathered {
		t.Fatalf("expected gathered result, got %+v", res)
	}
	if !res.AllTerminated {
		t.Fatal("expected every robot to terminate")
	}
	if res.Events <= 0 || res.Cycles <= 0 {
		t.Fatal("expected positive event and cycle counts")
	}
	if len(res.Final) != 4 {
		t.Fatalf("final has %d robots", len(res.Final))
	}
	if err := Validate(res.Final); err != nil {
		t.Fatalf("final configuration invalid: %v", err)
	}
	if !IsGathered(res.Final) {
		t.Fatal("IsGathered should agree with the result")
	}
}

func TestRunWithExplicitInitial(t *testing.T) {
	initial := []Point{{X: 0, Y: 0}, {X: 9, Y: 0}}
	res, err := Run(Options{Initial: initial, Adversary: AdversaryFair, MaxEvents: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Gathered {
		t.Fatal("two robots should gather")
	}
}

func TestRunBaselineAlgorithm(t *testing.T) {
	res, err := Run(Options{
		N:         5,
		Workload:  WorkloadClustered,
		Algorithm: AlgorithmGravity,
		Seed:      2,
		MaxEvents: 30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != string(AlgorithmGravity) {
		t.Fatalf("algorithm = %q", res.Algorithm)
	}
}

func TestRunOptionErrors(t *testing.T) {
	if _, err := Run(Options{}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("missing N should fail, got %v", err)
	}
	if _, err := Run(Options{N: 3, Workload: "bogus"}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad workload should fail, got %v", err)
	}
	if _, err := Run(Options{N: 3, Algorithm: "bogus"}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad algorithm should fail, got %v", err)
	}
	if _, err := Run(Options{N: 3, Adversary: "bogus"}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad adversary should fail, got %v", err)
	}
	if _, err := Run(Options{Initial: []Point{{0, 0}, {1, 0}}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("overlapping initial should fail, got %v", err)
	}
}

func TestGenerateWorkloadAndRender(t *testing.T) {
	for _, w := range Workloads() {
		pts, err := GenerateWorkload(w, 6, 3)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if len(pts) != 6 {
			t.Fatalf("%s: %d robots", w, len(pts))
		}
		if err := Validate(pts); err != nil {
			t.Fatalf("%s: invalid: %v", w, err)
		}
	}
	pts, _ := GenerateWorkload(WorkloadRing, 5, 1)
	svg := RenderSVG(pts)
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatal("RenderSVG should produce an SVG document")
	}
	art := RenderASCII(pts, 40, 12)
	if !strings.Contains(art, "o") {
		t.Fatal("RenderASCII should draw discs")
	}
}

func TestEnumerations(t *testing.T) {
	if len(Workloads()) < 5 || len(Adversaries()) < 4 || len(Algorithms()) != 4 {
		t.Fatal("unexpected enumeration sizes")
	}
}
