package fatgather

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/fatgather/fatgather/internal/adversary"
	"github.com/fatgather/fatgather/internal/baseline"
	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/obs"
	"github.com/fatgather/fatgather/internal/sim"
	"github.com/fatgather/fatgather/internal/vision"
	"github.com/fatgather/fatgather/internal/viz"
	"github.com/fatgather/fatgather/internal/workload"
)

// Point is a position in the plane (the center of a unit-disc robot).
type Point struct {
	X float64
	Y float64
}

// Workload names an initial-placement generator.
type Workload string

// Available workloads.
const (
	WorkloadRandom      Workload = Workload(workload.KindRandom)
	WorkloadClustered   Workload = Workload(workload.KindClustered)
	WorkloadCollinear   Workload = Workload(workload.KindCollinear)
	WorkloadGrid        Workload = Workload(workload.KindGrid)
	WorkloadRing        Workload = Workload(workload.KindRing)
	WorkloadTwoClusters Workload = Workload(workload.KindTwoClusters)
	WorkloadNestedHulls Workload = Workload(workload.KindNestedHulls)
)

// Workloads lists all built-in workload names.
func Workloads() []Workload {
	kinds := workload.Kinds()
	out := make([]Workload, len(kinds))
	for i, k := range kinds {
		out[i] = Workload(k)
	}
	return out
}

// AdversaryName names a scheduling strategy. Any value may also be a full
// adversary spec string composing fault injection onto a base strategy:
// "crash(2)" crash-stops two robots after their first move,
// "fair+noise=0.1" bounds sensor noise, "+trunc=0.2" truncates motion
// (see internal/adversary.ParseSpec for the grammar).
type AdversaryName string

// Available adversaries.
const (
	AdversaryFair         AdversaryName = "fair"
	AdversaryRandomAsync  AdversaryName = "random-async"
	AdversaryStopHappy    AdversaryName = "stop-happy"
	AdversarySlowRobot    AdversaryName = "slow-robot"
	AdversaryMoverStarver AdversaryName = "mover-starver"
	// AdversaryGreedyStall delays the robot whose move would shrink the
	// convex hull most.
	AdversaryGreedyStall AdversaryName = "greedy-stall"
	// AdversaryRoundRobinLag maximally skews activation phases: each robot
	// runs a full Look-Compute-Move cycle before the next robot acts.
	AdversaryRoundRobinLag AdversaryName = "round-robin-lag"
	// AdversaryCrash permanently stops one robot after its first completed
	// move (use the spec form "crash(k)" for k robots).
	AdversaryCrash AdversaryName = "crash"
)

// Adversaries lists all built-in base adversary names.
func Adversaries() []AdversaryName {
	names := adversary.Names()
	out := make([]AdversaryName, len(names))
	for i, n := range names {
		out[i] = AdversaryName(n)
	}
	return out
}

// AlgorithmName names a local algorithm.
type AlgorithmName string

// Available algorithms: the paper's algorithm plus the comparison baselines.
const (
	AlgorithmPaper       AlgorithmName = "agm-gathering"
	AlgorithmGravity     AlgorithmName = "baseline-gravity"
	AlgorithmSmallN      AlgorithmName = "baseline-smalln"
	AlgorithmTransparent AlgorithmName = "baseline-transparent"
)

// Algorithms lists all built-in algorithm names.
func Algorithms() []AlgorithmName {
	return []AlgorithmName{AlgorithmPaper, AlgorithmGravity, AlgorithmSmallN, AlgorithmTransparent}
}

// Options configures a gathering run.
type Options struct {
	// N is the number of robots (required unless Initial is given).
	N int
	// Workload selects the initial-placement generator (default
	// WorkloadRandom). Ignored when Initial is non-empty.
	Workload Workload
	// Initial, when non-empty, is used verbatim as the initial configuration
	// (centers of unit-disc robots; no two may overlap).
	Initial []Point
	// Seed drives both the workload generator and the adversary (default 1).
	Seed int64
	// AdversarySeed, when non-zero, seeds the adversary independently of
	// Seed (which then drives only the workload generator). RunBatch reports
	// each cell's derived adversary seed in BatchCell.AdversarySeed, so a
	// single batch cell can be replayed exactly with Run.
	AdversarySeed int64
	// Algorithm selects the local algorithm (default AlgorithmPaper).
	Algorithm AlgorithmName
	// Adversary selects the scheduler (default AdversaryRandomAsync).
	Adversary AdversaryName
	// Delta is the liveness minimum-progress distance (default 0.05).
	Delta float64
	// MaxEvents bounds the run (default 200000 events).
	MaxEvents int
	// StopWhenGathered stops as soon as the geometric goal holds rather than
	// waiting for every robot to terminate locally.
	StopWhenGathered bool
}

// Result reports a gathering run.
type Result struct {
	// Gathered is true when the final configuration is connected and fully
	// visible (Definition 1 of the paper).
	Gathered bool
	// AllTerminated is true when every robot reached its Terminate state.
	AllTerminated bool
	// Events, Cycles and DistanceTraveled measure the cost of the run.
	Events           int
	Cycles           int
	DistanceTraveled float64
	// EventsToGathered is the event index at which the gathering goal first
	// held (-1 if never).
	EventsToGathered int
	// EventsToFullVisibility is the event index at which all robots were on
	// the hull and mutually visible (-1 if never).
	EventsToFullVisibility int
	// Collisions counts motions truncated by touching another robot.
	Collisions int
	// Final is the final configuration.
	Final []Point
	// Algorithm and Adversary echo the names used.
	Algorithm string
	Adversary string
	// Outcome classifies how the run ended: "gathered", "all-terminated",
	// "stalled", "livelocked", "budget-exhausted" or "error". See the
	// outcome-taxonomy section of the README for the detection rules.
	Outcome string
	// LivelockTrace is a JSON-encoded bounded trace snippet of the certified
	// zero-progress cycle, nil unless Outcome is "livelocked". The document
	// can be replayed with gatherviz -trace.
	LivelockTrace []byte
}

// ErrBadOptions is returned for invalid option combinations.
var ErrBadOptions = errors.New("fatgather: invalid options")

// Run generates (or takes) an initial configuration and runs the selected
// algorithm under the selected adversary until termination, the gathering
// goal, or the event budget.
func Run(opts Options) (Result, error) {
	initial, err := initialConfig(opts)
	if err != nil {
		return Result{}, err
	}
	alg, err := algorithmFor(opts.Algorithm)
	if err != nil {
		return Result{}, err
	}
	advSeed := opts.AdversarySeed
	if advSeed == 0 {
		advSeed = opts.Seed
	}
	strat, err := adversaryFor(opts.Adversary, advSeed)
	if err != nil {
		return Result{}, err
	}
	res, err := sim.Run(initial, sim.Options{
		Algorithm:        alg,
		Strategy:         strat,
		Delta:            opts.Delta,
		MaxEvents:        opts.MaxEvents,
		StopWhenGathered: opts.StopWhenGathered,
	})
	if err != nil {
		return Result{}, err
	}
	return resultFromSim(res), nil
}

// resultFromSim converts a simulator result to the public Result form.
func resultFromSim(res sim.Result) Result {
	var llTrace []byte
	if res.LivelockTrace != nil {
		var buf bytes.Buffer
		if err := res.LivelockTrace.Encode(&buf); err == nil {
			llTrace = buf.Bytes()
		}
	}
	return Result{
		Gathered:               res.Gathered(),
		AllTerminated:          res.Outcome == sim.OutcomeAllTerminated,
		Events:                 res.Events,
		Cycles:                 res.Cycles,
		DistanceTraveled:       res.TotalDistance,
		EventsToGathered:       res.Milestones.Gathered,
		EventsToFullVisibility: res.Milestones.SafeConfig,
		Collisions:             res.Collisions,
		Final:                  toPoints(res.Final),
		Algorithm:              res.Algorithm,
		Adversary:              res.Adversary,
		Outcome:                res.Outcome.String(),
		LivelockTrace:          llTrace,
	}
}

// GenerateWorkload exposes the initial-placement generators.
func GenerateWorkload(kind Workload, n int, seed int64) ([]Point, error) {
	cfg, err := workload.Generate(workload.Kind(kind), n, seed)
	if err != nil {
		return nil, err
	}
	return toPoints(cfg), nil
}

// RenderSVG renders a configuration as an SVG document (with the convex hull
// of the centers drawn).
func RenderSVG(points []Point) string {
	return viz.SVG(fromPoints(points), viz.SVGOptions{DrawHull: true, Labels: true})
}

// RenderASCII renders a configuration as a coarse ASCII sketch.
func RenderASCII(points []Point, cols, rows int) string {
	return viz.ASCII(fromPoints(points), cols, rows)
}

// Validate checks that a configuration of robot centers is physically valid
// (no two unit discs overlap).
func Validate(points []Point) error {
	return fromPoints(points).Validate()
}

// IsGathered reports whether the configuration satisfies the paper's
// gathering goal: connected and fully visible.
func IsGathered(points []Point) bool {
	cfg := fromPoints(points)
	return cfg.Gathered(vision.Default)
}

// TelemetryJSON returns a JSON snapshot of the process-wide telemetry
// registry (internal/obs): counters such as simulation events and workload
// cache hits, gauges, and latency histograms accumulated by every Run and
// sweep in this process. The snapshot is advisory — telemetry is write-only
// for the simulation stack, so reading it (or not) never changes results,
// and snapshots are never part of a sweep store's identity.
func TelemetryJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := obs.Default.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func initialConfig(opts Options) (config.Geometric, error) {
	if len(opts.Initial) > 0 {
		cfg := fromPoints(opts.Initial)
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
		}
		return cfg, nil
	}
	if opts.N <= 0 {
		return nil, fmt.Errorf("%w: N must be positive (or Initial provided)", ErrBadOptions)
	}
	kind := opts.Workload
	if kind == "" {
		kind = WorkloadRandom
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	cfg, err := workload.Generate(workload.Kind(kind), opts.N, seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	return cfg, nil
}

func algorithmFor(name AlgorithmName) (sim.Algorithm, error) {
	switch name {
	case "", AlgorithmPaper:
		return sim.PaperAlgorithm{}, nil
	case AlgorithmGravity:
		return baseline.Gravity{}, nil
	case AlgorithmSmallN:
		return baseline.SmallN{}, nil
	case AlgorithmTransparent:
		return baseline.Transparent{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %q", ErrBadOptions, name)
	}
}

func adversaryFor(name AdversaryName, seed int64) (adversary.Strategy, error) {
	if seed == 0 {
		seed = 1
	}
	if name == "" {
		name = AdversaryRandomAsync
	}
	spec, err := adversary.ParseSpec(string(name))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	strat, err := adversary.New(spec, seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	return strat, nil
}

func toPoints(cfg config.Geometric) []Point {
	out := make([]Point, len(cfg))
	for i, c := range cfg {
		out[i] = Point{X: c.X, Y: c.Y}
	}
	return out
}

func fromPoints(points []Point) config.Geometric {
	out := make(config.Geometric, len(points))
	for i, p := range points {
		out[i] = geom.V(p.X, p.Y)
	}
	return out
}
