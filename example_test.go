package fatgather_test

import (
	"fmt"
	"log"
	"os"

	"github.com/fatgather/fatgather"
)

// ExampleRunBatch_sweepDir shows checkpointed, resumable batches: the first
// run streams every cell result to the sweep directory as workers finish;
// the second run with Resume restores all of them from disk instead of
// re-simulating, with bit-identical results.
func ExampleRunBatch_sweepDir() {
	dir, err := os.MkdirTemp("", "sweep")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := fatgather.BatchOptions{
		Workloads: []fatgather.Workload{fatgather.WorkloadClustered},
		Ns:        []int{3},
		Seeds:     2,
		MaxEvents: 500,
		SweepDir:  dir,
	}
	first, err := fatgather.RunBatch(opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.Resume = true
	second, err := fatgather.RunBatch(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first run: executed %d, restored %d\n", first.Executed, first.Restored)
	fmt.Printf("resumed:   executed %d, restored %d\n", second.Executed, second.Restored)
	// Output:
	// first run: executed 2, restored 0
	// resumed:   executed 0, restored 2
}

// ExampleRunBatch_adaptiveCI shows adaptive seed scheduling: instead of a
// fixed seed count per grid point, every (workload, n, adversary, algorithm)
// group keeps receiving seed replicas until the 95% confidence interval of
// its event count is tight enough — or until the cap. An unreachable target
// grows each group exactly to the cap, visible in BatchGroup.SeedsUsed.
func ExampleRunBatch_adaptiveCI() {
	result, err := fatgather.RunBatch(fatgather.BatchOptions{
		Workloads:        []fatgather.Workload{fatgather.WorkloadClustered, fatgather.WorkloadRing},
		Ns:               []int{3},
		Seeds:            2,
		MaxEvents:        500,
		AdaptiveCI:       1e-9, // unreachable: force every group to the cap
		AdaptiveMaxSeeds: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range result.Groups {
		fmt.Printf("%s n=%d used %d seeds\n", g.Workload, g.N, g.SeedsUsed)
	}
	// Output:
	// clustered n=3 used 3 seeds
	// ring n=3 used 3 seeds
}

// ExampleRunBatch_shardOwner shows cooperative sharding: a worker with a
// ShardOwner id claims cell groups through lease files in the shared
// SweepDir, so any number of such processes (one here) drain one sweep
// together and each returns the complete result set. Start the same program
// on several hosts sharing the directory to fan a sweep out.
func ExampleRunBatch_shardOwner() {
	dir, err := os.MkdirTemp("", "sweep")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	result, err := fatgather.RunBatch(fatgather.BatchOptions{
		Workloads:  []fatgather.Workload{fatgather.WorkloadClustered, fatgather.WorkloadRing},
		Ns:         []int{3},
		Seeds:      2,
		MaxEvents:  500,
		SweepDir:   dir,
		ShardOwner: "worker-1", // unique per process, e.g. hostname+pid
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claimed %d cell groups, %d cells total\n", result.Claimed, len(result.Cells))
	// Output:
	// claimed 2 cell groups, 4 cells total
}

// ExampleRunBatch_adaptiveSharded composes the two previous examples:
// AdaptiveCI with ShardOwner runs the cross-worker adaptive protocol, where
// a fleet coordinates the data-dependent seed grid through the shared store
// and converges on the same per-group seed counts as a single adaptive
// process. A solo worker is shown; peers with the same options would split
// the groups and print identical aggregates.
func ExampleRunBatch_adaptiveSharded() {
	dir, err := os.MkdirTemp("", "sweep")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	result, err := fatgather.RunBatch(fatgather.BatchOptions{
		Workloads:        []fatgather.Workload{fatgather.WorkloadClustered},
		Ns:               []int{3, 4},
		Seeds:            2,
		MaxEvents:        500,
		AdaptiveCI:       1e-9,
		AdaptiveMaxSeeds: 3,
		SweepDir:         dir,
		ShardOwner:       "worker-1",
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range result.Groups {
		fmt.Printf("%s n=%d used %d seeds\n", g.Workload, g.N, g.SeedsUsed)
	}
	fmt.Printf("claimed %d cell groups\n", result.Claimed)
	// Output:
	// clustered n=3 used 3 seeds
	// clustered n=4 used 3 seeds
	// claimed 2 cell groups
}
