#!/bin/sh
# check-package-comments.sh fails if any package in the module lacks a godoc
# package comment. Library packages must have a "// Package <name> ..."
# comment and package-main ones a "// Command <name> ..." comment (any .go
# file in the package may carry it; by repo convention it lives in doc.go for
# libraries and at the top of main.go for commands).
set -eu
cd "$(dirname "$0")/.."
fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
	if ! grep -l -E '^// (Package|Command) ' "$dir"/*.go >/dev/null 2>&1; then
		echo "missing package comment: $dir"
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	echo "every package needs a '// Package ...' (or '// Command ...') godoc comment" >&2
	exit 1
fi
echo "package comments: all $(go list ./... | wc -l | tr -d ' ') packages documented"
