#!/usr/bin/env bash
# bench-compare.sh — the benchmark-trajectory regression gate: compare a fresh
# benchmark snapshot against the most recently committed BENCH_<rev>.json and
# fail on regressions.
#
# allocs/op is deterministic (allocation counts do not jitter), so any
# benchmark whose allocs/op grew by more than BENCH_ALLOCS_THRESHOLD_PCT
# (default 15) fails the gate. ns/op from the -benchtime 1x smoke is
# indicative only — CI machines are shared and noisy — so the ns/op gate
# defaults to BENCH_NS_THRESHOLD_PCT=300: it catches order-of-magnitude
# slowdowns, not scheduler jitter. Tighten it (e.g. 15) locally on a quiet
# machine for real performance work. Benchmarks present on only one side
# (added or retired since the baseline) are reported and skipped.
#
# Usage: scripts/bench-compare.sh [new-snapshot.json]
#   With no argument, scripts/bench-snapshot.sh is run into a temp file first.
set -euo pipefail
cd "$(dirname "$0")/.."

allocs_pct="${BENCH_ALLOCS_THRESHOLD_PCT:-15}"
ns_pct="${BENCH_NS_THRESHOLD_PCT:-300}"

# Baseline: the BENCH_*.json most recently touched in git history that still
# exists in the tree (snapshot files are named by revision, so lexicographic
# order is meaningless).
base=""
while IFS= read -r f; do
  if [ -n "$f" ] && [ -f "$f" ]; then
    base="$f"
    break
  fi
done < <(git log --pretty=format: --name-only -- 'BENCH_*.json')
if [ -z "$base" ]; then
  echo "bench-compare: no committed BENCH_*.json baseline found" >&2
  exit 1
fi

new="${1:-}"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
if [ -z "$new" ]; then
  new="$tmpdir/new.json"
  scripts/bench-snapshot.sh "$new" > /dev/null
fi

# Flatten a snapshot into sorted "key<TAB>ns<TAB>allocs" lines.
extract() {
  awk '
    /"ns_per_op"/ {
      line = $0
      key = line; sub(/^[ ]*"/, "", key); sub(/".*/, "", key)
      ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
      al = line; sub(/.*"allocs_per_op": /, "", al); sub(/[^0-9].*/, "", al)
      printf "%s\t%s\t%s\n", key, ns, al
    }
  ' "$1" | sort
}
extract "$base" > "$tmpdir/base.tsv"
extract "$new" > "$tmpdir/new.tsv"

echo "bench-compare: $(basename "$new") vs $base"
echo "  thresholds: allocs/op +${allocs_pct}%, ns/op +${ns_pct}%"

comm -13 <(cut -f1 "$tmpdir/base.tsv") <(cut -f1 "$tmpdir/new.tsv") \
  | sed 's/^/  new (no baseline, skipped): /'
comm -23 <(cut -f1 "$tmpdir/base.tsv") <(cut -f1 "$tmpdir/new.tsv") \
  | sed 's/^/  retired (baseline only, skipped): /'

join -t "$(printf '\t')" "$tmpdir/base.tsv" "$tmpdir/new.tsv" \
  | awk -F '\t' -v allocsPct="$allocs_pct" -v nsPct="$ns_pct" '
  {
    key = $1; bns = $2 + 0; bal = $3 + 0; nns = $4 + 0; nal = $5 + 0
    if (bal > 0 && nal > bal * (1 + allocsPct / 100)) {
      printf "  FAIL %-60s allocs/op %d -> %d (+%.1f%%)\n", key, bal, nal, (nal / bal - 1) * 100
      fail = 1
    } else if (bal > 0 && nal < bal * 0.85) {
      if (nal > 0) {
        printf "  ok   %-60s allocs/op %d -> %d (%.1fx better)\n", key, bal, nal, bal / nal
      } else {
        printf "  ok   %-60s allocs/op %d -> 0\n", key, bal
      }
    }
    if (bns > 0 && nns > bns * (1 + nsPct / 100)) {
      printf "  FAIL %-60s ns/op %.0f -> %.0f (+%.1f%%)\n", key, bns, nns, (nns / bns - 1) * 100
      fail = 1
    }
  }
  END {
    if (fail) {
      print "bench-compare: regression beyond threshold (see FAIL lines above)"
      exit 1
    }
    print "bench-compare: no regressions beyond thresholds"
  }
'
