#!/bin/sh
# lint.sh is the single reproducible lint entry point: everything the CI lint
# job runs, runnable locally with no arguments. It gates on
#   - gofmt            (formatting, fixtures included)
#   - go vet           (the stock analyzers)
#   - package comments (scripts/check-package-comments.sh)
#   - gatherlint       (the repo's determinism-contract analyzers, standalone)
#   - staticcheck      (when installed; skipped with a notice otherwise)
#   - govulncheck      (when installed; skipped with a notice otherwise)
# staticcheck and govulncheck are optional because the pinned toolchain image
# used for hermetic runs has no network to install them; CI installs both, so
# they always run there.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== package comments"
./scripts/check-package-comments.sh

echo "== gatherlint"
go run ./cmd/gatherlint ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck"
	staticcheck ./...
else
	echo "== staticcheck: not installed, skipping (CI runs it)"
fi

if command -v govulncheck >/dev/null 2>&1; then
	echo "== govulncheck"
	govulncheck ./...
else
	echo "== govulncheck: not installed, skipping (CI runs it)"
fi

echo "lint: all gates passed"
