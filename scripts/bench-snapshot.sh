#!/usr/bin/env bash
# bench-snapshot.sh — run every benchmark once (the CI bench smoke, plus
# -benchmem) and write a machine-readable snapshot BENCH_<rev>.json mapping
# each benchmark to its ns/op and allocs/op.
#
# The snapshot is a coarse performance fingerprint of one revision, not a
# statistically careful measurement: -benchtime 1x keeps it cheap enough to
# run on every CI push, allocs/op is exact (allocation counts are
# deterministic), and ns/op is indicative only. Compare snapshots across
# revisions to spot allocation regressions and order-of-magnitude slowdowns;
# use `go test -bench . -benchtime 10s -count 10` + benchstat for real
# performance work.
#
# Usage: scripts/bench-snapshot.sh [output.json]
#   default output: BENCH_<git short rev>.json in the repo root
set -euo pipefail
cd "$(dirname "$0")/.."

rev=$(git rev-parse --short HEAD)
out="${1:-BENCH_${rev}.json}"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run XXX -bench . -benchtime 1x -benchmem ./... | tee "$raw"

# Benchmark result lines look like
#   BenchmarkName/sub-8   1   123456 ns/op   2048 B/op   12 allocs/op
# with the current package announced on preceding "pkg:" lines. Keys are
# "<package>:<name>" (GOMAXPROCS suffix stripped, package relative to the
# module root) so identically named benchmarks in different packages cannot
# collide; sorting keeps the file diffable across revisions.
awk -v rev="$rev" '
  $1 == "pkg:" {
    pkg = $2
    sub(/^github\.com\/fatgather\/fatgather\/?/, "", pkg)
    if (pkg == "") pkg = "."
    next
  }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; allocs = "0"
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i - 1)
      if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns != "") printf "%s:%s\t%s\t%s\n", pkg, name, ns, allocs
  }
' "$raw" | sort | awk -v rev="$rev" '
  BEGIN { printf "{\n  \"rev\": \"%s\",\n  \"benchmarks\": {\n", rev }
  {
    if (NR > 1) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", $1, $2, $3
  }
  END { printf "\n  }\n}\n" }
' > "$out"

count=$(grep -c '"ns_per_op"' "$out")
if [ "$count" -eq 0 ]; then
  echo "bench-snapshot: no benchmark results parsed" >&2
  exit 1
fi
echo "wrote $out ($count benchmarks)"
