#!/usr/bin/env bash
# bench-snapshot.sh — run every benchmark once (the CI bench smoke, plus
# -benchmem) and write a machine-readable snapshot BENCH_<rev>.json mapping
# each benchmark to its ns/op and allocs/op.
#
# The snapshot is a coarse performance fingerprint of one revision, not a
# statistically careful measurement: -benchtime 1x keeps it cheap enough to
# run on every CI push, allocs/op is exact (allocation counts are
# deterministic), and ns/op is indicative only. Compare snapshots across
# revisions to spot allocation regressions and order-of-magnitude slowdowns;
# use `go test -bench . -benchtime 10s -count 10` + benchstat for real
# performance work.
#
# Alongside the micro-benchmarks the snapshot carries an "obs" section: a
# small fixed gatherbench run dumps its internal/obs telemetry
# (-telemetry-out) and the macro rates derived from it — simulation
# events/sec and the workload-cache hit rate — land next to the ns/op
# numbers as an end-to-end throughput fingerprint. The obs keys
# deliberately avoid the "ns_per_op" substring bench-compare.sh greps for,
# so the regression gate ignores them.
#
# Usage: scripts/bench-snapshot.sh [output.json]
#   default output: BENCH_<git short rev>.json in the repo root
set -euo pipefail
cd "$(dirname "$0")/.."

rev=$(git rev-parse --short HEAD)
out="${1:-BENCH_${rev}.json}"
raw=$(mktemp)
telemetry=$(mktemp)
trap 'rm -f "$raw" "$telemetry"' EXIT

go test -run XXX -bench . -benchtime 1x -benchmem ./... | tee "$raw"

echo "obs fingerprint: gatherbench -only E5 -seeds 2 -max-events 1500"
go run ./cmd/gatherbench -only E5 -seeds 2 -max-events 1500 \
  -telemetry-out "$telemetry" > /dev/null

# Pull the raw numbers out of the snapshot JSON (stable indented layout,
# integer counters, float uptime) and derive the rates in awk.
snap_int() {
  sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "$telemetry" | head -1
}
obs_events=$(snap_int fatgather_sim_events_total); obs_events=${obs_events:-0}
obs_hits=$(snap_int fatgather_workload_cache_hits_total); obs_hits=${obs_hits:-0}
obs_misses=$(snap_int fatgather_workload_cache_misses_total); obs_misses=${obs_misses:-0}
obs_uptime=$(sed -n 's/.*"uptime_seconds": \([0-9.eE+-]*\).*/\1/p' "$telemetry" | head -1)
obs_uptime=${obs_uptime:-0}
obs_eps=$(awk -v e="$obs_events" -v u="$obs_uptime" \
  'BEGIN { printf "%.1f", (u > 0 ? e / u : 0) }')
obs_hit_rate=$(awk -v h="$obs_hits" -v m="$obs_misses" \
  'BEGIN { t = h + m; printf "%.4f", (t > 0 ? h / t : 0) }')

# Benchmark result lines look like
#   BenchmarkName/sub-8   1   123456 ns/op   2048 B/op   12 allocs/op
# with the current package announced on preceding "pkg:" lines. Keys are
# "<package>:<name>" (GOMAXPROCS suffix stripped, package relative to the
# module root) so identically named benchmarks in different packages cannot
# collide; sorting keeps the file diffable across revisions.
awk -v rev="$rev" '
  $1 == "pkg:" {
    pkg = $2
    sub(/^github\.com\/fatgather\/fatgather\/?/, "", pkg)
    if (pkg == "") pkg = "."
    next
  }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; allocs = "0"
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i - 1)
      if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns != "") printf "%s:%s\t%s\t%s\n", pkg, name, ns, allocs
  }
' "$raw" | sort | awk -v rev="$rev" \
    -v eps="$obs_eps" -v hit_rate="$obs_hit_rate" -v events="$obs_events" '
  BEGIN { printf "{\n  \"rev\": \"%s\",\n  \"benchmarks\": {\n", rev }
  {
    if (NR > 1) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", $1, $2, $3
  }
  END {
    printf "\n  },\n  \"obs\": {\n"
    printf "    \"sim_events_total\": %s,\n", events
    printf "    \"sim_events_per_sec\": %s,\n", eps
    printf "    \"workload_cache_hit_rate\": %s\n", hit_rate
    printf "  }\n}\n"
  }
' > "$out"

count=$(grep -c '"ns_per_op"' "$out")
if [ "$count" -eq 0 ]; then
  echo "bench-snapshot: no benchmark results parsed" >&2
  exit 1
fi
echo "wrote $out ($count benchmarks; obs: ${obs_eps} events/sec, cache hit rate ${obs_hit_rate})"
