// Command gatherlint statically enforces the repository's determinism
// contract. It runs the analyzer suite from internal/lint (detmaprange,
// nondetsource, floateq, publishdiscipline, errclose) in one of two modes:
//
// Standalone, against package patterns (the default is ./...):
//
//	go run ./cmd/gatherlint ./...
//
// findings are printed one per line and the exit status is 1 when any
// finding survives its //gatherlint:ignore directives.
//
// As a vet tool, speaking the cmd/vet unit-checker protocol:
//
//	go vet -vettool=$(go env GOPATH)/bin/gatherlint ./...
//
// In this mode vet invokes the binary once per package unit with a JSON
// config file; findings go to stderr and the exit status is 2, which vet
// reports as a failure of that package. Test files are excluded in both
// modes: the determinism contract binds result-producing code, and tests
// routinely (and legitimately) read clocks, write scratch files and discard
// Close errors on t.TempDir state.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"log"
	"os"
	"strings"

	"github.com/fatgather/fatgather/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gatherlint: ")
	version := flag.String("V", "", "print version and exit (the vet handshake passes -V=full)")
	printFlags := flag.Bool("flags", false, "print the analyzer flags as JSON and exit (vet handshake)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gatherlint [package pattern ...]\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=/path/to/gatherlint [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range lint.Analyzers() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, doc)
		}
	}
	flag.Parse()

	if *version != "" {
		// vet caches analysis results keyed on this line, so it must change
		// whenever the binary does: hash the executable itself.
		fmt.Printf("gatherlint version devel buildID=%s\n", selfID())
		return
	}
	if *printFlags {
		// None of the analyzers takes flags.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// runStandalone loads the patterns via the go command and lints every
// non-dependency package. Exit status: 0 clean, 1 findings, 2 failure.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		log.Print(err)
		return 2
	}
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		log.Print(err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the unit-checker configuration cmd/vet writes for each
// package unit. Only the fields gatherlint consumes are listed; unknown
// fields are ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one vet unit described by a .cfg file. Exit status: 0
// clean, 2 findings (the unit-checker convention), 1 failure.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("%s: %v", cfgPath, err)
		return 1
	}
	// vet always expects the facts file to appear; gatherlint's analyzers
	// exchange no facts, so it is empty.
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Print(err)
			return false
		}
		return true
	}
	// Test-expanded units ("p [p.test]" and friends) re-list the plain
	// sources plus _test.go files under an undecorated ImportPath. The plain
	// unit already covers the non-test sources, and test files are outside
	// the contract, so those units are inert here.
	if cfg.VetxOnly || strings.Contains(cfg.ID, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		if !writeVetx() {
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			log.Print(err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		if !writeVetx() {
			return 1
		}
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tpkg, info, err := lint.CheckFiles(fset, cfg.ImportPath, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			if !writeVetx() {
				return 1
			}
			return 0
		}
		log.Print(err)
		return 1
	}
	pkg := &lint.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	findings, err := lint.Apply(pkg, lint.Analyzers())
	if err != nil {
		log.Print(err)
		return 1
	}
	if !writeVetx() {
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// selfID returns a content hash of the running executable, so vet's result
// cache is invalidated whenever gatherlint is rebuilt.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
