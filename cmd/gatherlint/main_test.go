package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// gatherlintBin builds the gatherlint binary once per test run and returns
// its path.
func gatherlintBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "gatherlint-test")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "gatherlint")
		cmd := exec.Command("go", "build", "-o", buildBin, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			buildBin = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building gatherlint: %v\n%s", buildErr, buildBin)
	}
	return buildBin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// violationModule writes a throwaway module whose internal/sim package
// breaks the detmaprange and nondetsource invariants.
func violationModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "internal", "sim"), 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"go.mod": "module example.com/gatherlintfixture\n\ngo 1.22\n",
		filepath.Join("internal", "sim", "sim.go"): `// Package sim is a throwaway fixture exercising gatherlint.
package sim

import "time"

// Sum folds a map in iteration order.
func Sum(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runIn(t *testing.T, dir, bin string, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	err := cmd.Run()
	exit = 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s: %v", bin, err)
	}
	return outBuf.String(), errBuf.String(), exit
}

// The repository itself must be gatherlint-clean: the analyzers encode the
// determinism contract the codebase claims to honor.
func TestStandaloneRunsCleanOnRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	bin := gatherlintBin(t)
	stdout, stderr, exit := runIn(t, moduleRoot(t), bin, "./...")
	if exit != 0 {
		t.Fatalf("gatherlint ./... exited %d\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	if strings.TrimSpace(stdout) != "" {
		t.Fatalf("unexpected findings:\n%s", stdout)
	}
}

func TestStandaloneFlagsViolations(t *testing.T) {
	bin := gatherlintBin(t)
	dir := violationModule(t)
	stdout, stderr, exit := runIn(t, dir, bin, "./...")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	for _, want := range []string{"[detmaprange]", "[nondetsource]", "sim.go"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// The -V/-flags handshake is what lets `go vet -vettool=` drive gatherlint.
func TestVetHandshake(t *testing.T) {
	bin := gatherlintBin(t)
	stdout, _, exit := runIn(t, t.TempDir(), bin, "-V=full")
	if exit != 0 || !strings.HasPrefix(stdout, "gatherlint version ") || !strings.Contains(stdout, "buildID=") {
		t.Fatalf("-V=full: exit %d, output %q", exit, stdout)
	}
	stdout, _, exit = runIn(t, t.TempDir(), bin, "-flags")
	if exit != 0 || strings.TrimSpace(stdout) != "[]" {
		t.Fatalf("-flags: exit %d, output %q", exit, stdout)
	}
}

// End-to-end through the real driver: `go vet -vettool=` must surface the
// same findings and fail the build.
func TestGoVetVettool(t *testing.T) {
	bin := gatherlintBin(t)
	dir := violationModule(t)
	stdout, stderr, exit := runIn(t, dir, "go", "vet", "-vettool="+bin, "./...")
	if exit == 0 {
		t.Fatalf("go vet -vettool exited 0 on a module with violations\nstdout:\n%s\nstderr:\n%s", stdout, stderr)
	}
	for _, want := range []string{"[detmaprange]", "[nondetsource]"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("vet stderr missing %q:\n%s", want, stderr)
		}
	}
}
