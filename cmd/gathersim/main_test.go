package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/experiments"
	"github.com/fatgather/fatgather/internal/sim"
	"github.com/fatgather/fatgather/internal/trace"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-workload", "nope"},
		{"-adversary", "nope"},
		{"-algorithm", "nope"},
		{"-n", "0"},
	}
	for _, args := range cases {
		if err := run(args, os.Stderr); err == nil {
			t.Fatalf("args %v: expected an error", args)
		}
	}
}

func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-n", "3", "-workload", "clustered", "-seed", "1", "-max-events", "30000", "-ascii"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"outcome:", "gathered:", "events:", "algorithm:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary misses %q:\n%s", want, out)
		}
	}
}

func TestRunWritesSVG(t *testing.T) {
	svg := filepath.Join(t.TempDir(), "final.svg")
	var b strings.Builder
	if err := run([]string{"-n", "3", "-max-events", "20000", "-svg", svg}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("svg output misses <svg element")
	}
}

// TestRunRecordsLivelockTrace drives the known round-robin-lag livelock end
// to end through the CLI: the summary reports the livelocked outcome and the
// -livelock-trace file holds a valid replayable snippet.
func TestRunRecordsLivelockTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "livelock.json")
	var b strings.Builder
	err := run([]string{
		"-n", "6", "-workload", "nested-hulls", "-adversary", "round-robin-lag",
		"-seed", "1", "-max-events", "150000", "-livelock-trace", path,
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "outcome:              livelocked") {
		t.Fatalf("summary does not report the livelocked outcome:\n%s", b.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("recorded snippet invalid: %v", err)
	}
	if tr.N != 6 || tr.Len() == 0 {
		t.Fatalf("snippet n=%d frames=%d", tr.N, tr.Len())
	}
}

func TestRunReportsMissingLivelockTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "none.json")
	var b strings.Builder
	if err := run([]string{"-n", "3", "-max-events", "30000", "-livelock-trace", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no livelock trace recorded") {
		t.Fatalf("expected a no-trace notice:\n%s", b.String())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("no trace file should be written for a healthy run")
	}
}

// TestMaxEventsDefaultsPinned documents the intentional difference between
// the interactive single-run budget (this command, sim.DefaultMaxEvents) and
// the sweep budget (gatherbench, experiments.DefaultMaxEvents): drifting
// either is a conscious decision, not an accident.
func TestMaxEventsDefaultsPinned(t *testing.T) {
	// defaultMaxEvents is declared as sim.DefaultMaxEvents; pinning the value
	// here means changing either side is a conscious decision.
	if defaultMaxEvents != 200000 {
		t.Fatalf("gathersim default budget = %d, want sim.DefaultMaxEvents (200000)", defaultMaxEvents)
	}
	if sim.DefaultMaxEvents != 200000 {
		t.Fatalf("sim.DefaultMaxEvents = %d, want 200000", sim.DefaultMaxEvents)
	}
	if experiments.DefaultMaxEvents != 150000 {
		t.Fatalf("experiments.DefaultMaxEvents = %d, want 150000", experiments.DefaultMaxEvents)
	}
}
