// Command gathersim runs one gathering simulation and prints a summary (and
// optionally an ASCII sketch or SVG of the final configuration).
//
// Example:
//
//	gathersim -n 8 -workload clustered -adversary random-async -seed 3 -ascii
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	fatgather "github.com/fatgather/fatgather"
	"github.com/fatgather/fatgather/internal/sim"
)

// defaultMaxEvents is the interactive single-run budget: sim.DefaultMaxEvents
// (200000), deliberately larger than the experiment suite's
// experiments.DefaultMaxEvents (150000) that gatherbench uses — one run gets
// headroom for slow-converging seeds, a sweep trades that tail for cost. A
// test pins both defaults.
const defaultMaxEvents = sim.DefaultMaxEvents

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gathersim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gathersim", flag.ContinueOnError)
	n := fs.Int("n", 6, "number of robots")
	wl := fs.String("workload", "clustered", "workload kind (random, clustered, collinear, grid, ring, two-clusters, nested-hulls)")
	alg := fs.String("algorithm", "agm-gathering", "algorithm (agm-gathering, baseline-gravity, baseline-smalln, baseline-transparent)")
	adv := fs.String("adversary", "random-async", "adversary (fair, random-async, stop-happy, slow-robot, mover-starver)")
	seed := fs.Int64("seed", 1, "random seed (workload and adversary)")
	maxEvents := fs.Int("max-events", defaultMaxEvents, "event budget")
	delta := fs.Float64("delta", 0.05, "liveness minimum-progress distance")
	stopWhenGathered := fs.Bool("stop-when-gathered", false, "stop as soon as the geometric goal holds")
	ascii := fs.Bool("ascii", false, "print an ASCII sketch of the final configuration")
	svgPath := fs.String("svg", "", "write an SVG of the final configuration to this file")
	llTracePath := fs.String("livelock-trace", "", "write the livelock trace snippet (if the run ends livelocked) to this file as JSON")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gathersim: -memprofile:", err)
				return
			}
			runtime.GC() // materialize the live heap before snapshotting it
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gathersim: -memprofile:", err)
			}
			f.Close()
		}()
	}

	res, err := fatgather.Run(fatgather.Options{
		N:                *n,
		Workload:         fatgather.Workload(*wl),
		Algorithm:        fatgather.AlgorithmName(*alg),
		Adversary:        fatgather.AdversaryName(*adv),
		Seed:             *seed,
		Delta:            *delta,
		MaxEvents:        *maxEvents,
		StopWhenGathered: *stopWhenGathered,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "algorithm:            %s\n", res.Algorithm)
	fmt.Fprintf(out, "adversary:            %s\n", res.Adversary)
	fmt.Fprintf(out, "robots:               %d\n", *n)
	fmt.Fprintf(out, "outcome:              %s\n", res.Outcome)
	fmt.Fprintf(out, "gathered:             %v\n", res.Gathered)
	fmt.Fprintf(out, "all terminated:       %v\n", res.AllTerminated)
	fmt.Fprintf(out, "events:               %d\n", res.Events)
	fmt.Fprintf(out, "cycles:               %d\n", res.Cycles)
	fmt.Fprintf(out, "distance traveled:    %.2f\n", res.DistanceTraveled)
	fmt.Fprintf(out, "collisions:           %d\n", res.Collisions)
	fmt.Fprintf(out, "events to full vis.:  %d\n", res.EventsToFullVisibility)
	fmt.Fprintf(out, "events to gathered:   %d\n", res.EventsToGathered)

	if *ascii {
		fmt.Fprintln(out)
		fmt.Fprint(out, fatgather.RenderASCII(res.Final, 72, 24))
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(fatgather.RenderSVG(res.Final)), 0o644); err != nil {
			return fmt.Errorf("write svg: %w", err)
		}
		fmt.Fprintf(out, "wrote %s\n", *svgPath)
	}
	if *llTracePath != "" {
		if res.LivelockTrace == nil {
			fmt.Fprintf(out, "no livelock trace recorded (outcome %s)\n", res.Outcome)
		} else if err := os.WriteFile(*llTracePath, res.LivelockTrace, 0o644); err != nil {
			return fmt.Errorf("write livelock trace: %w", err)
		} else {
			fmt.Fprintf(out, "wrote %s\n", *llTracePath)
		}
	}
	return nil
}
