package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/adversary"
	"github.com/fatgather/fatgather/internal/sim"
	"github.com/fatgather/fatgather/internal/workload"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-figure", "fig99"},
		{"-workload", "nope"},
		{"-trace", filepath.Join(t.TempDir(), "missing.json")},
		{"-trace", "x.json", "-figure", "fig1"},
	}
	for _, args := range cases {
		if err := run(args, os.Stderr); err == nil {
			t.Fatalf("args %v: expected an error", args)
		}
	}
}

func TestRunRendersFiguresAndWorkloads(t *testing.T) {
	for _, args := range [][]string{
		{"-figure", "fig1"},
		{"-figure", "fig2"},
		{"-workload", "ring", "-n", "6", "-seed", "2"},
	} {
		var b strings.Builder
		if err := run(args, &b); err != nil {
			t.Fatalf("args %v: %v", args, err)
		}
		if !strings.Contains(b.String(), "<svg") {
			t.Fatalf("args %v: no <svg in output", args)
		}
	}
}

// recordedLivelockSnippet runs the known round-robin-lag livelock and writes
// its certified cycle snippet to a file, exactly like gathersim
// -livelock-trace does.
func recordedLivelockSnippet(t *testing.T) string {
	t.Helper()
	cfg, err := workload.Generate(workload.KindNestedHulls, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg, sim.Options{
		Strategy:  adversary.NewRoundRobinLag(),
		MaxEvents: 150000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != sim.OutcomeLivelocked || res.LivelockTrace == nil {
		t.Fatalf("outcome %v (trace %v): test needs a certified livelock", res.Outcome, res.LivelockTrace != nil)
	}
	path := filepath.Join(t.TempDir(), "livelock.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := res.LivelockTrace.Encode(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayLivelockSnippet is the replay smoke over a recorded livelock
// trace snippet: metadata, per-robot state lines, and an SVG of the frozen
// cycle configuration.
func TestReplayLivelockSnippet(t *testing.T) {
	path := recordedLivelockSnippet(t)
	var b strings.Builder
	if err := run([]string{"-trace", path}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"adversary round-robin-lag", "frames:", "rendering: frame", "robot 0:", "<svg"} {
		if !strings.Contains(out, want) {
			t.Fatalf("replay output misses %q:\n%s", want, out)
		}
	}
}

func TestReplayFrameSelection(t *testing.T) {
	path := recordedLivelockSnippet(t)
	outFile := filepath.Join(t.TempDir(), "frame0.svg")
	var b strings.Builder
	if err := run([]string{"-trace", path, "-frame", "0", "-out", outFile}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "rendering: frame 0") {
		t.Fatalf("frame selection ignored:\n%s", b.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("svg file misses <svg element")
	}
	// Out-of-range frames fail loudly.
	if err := run([]string{"-trace", path, "-frame", "9999"}, os.Stderr); err == nil {
		t.Fatal("expected an out-of-range frame error")
	}
}
