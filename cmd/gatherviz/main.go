// Command gatherviz renders configurations and the paper's figures as SVG,
// and replays recorded trace snippets (for example the livelock snippets
// gathersim -livelock-trace and gatherbench livelocks write).
//
// Example:
//
//	gatherviz -figure fig2 -out fig2.svg
//	gatherviz -workload nested-hulls -n 12 -seed 4 -out start.svg
//	gatherviz -trace livelock.json -frame -1 -out cycle.svg
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	fatgather "github.com/fatgather/fatgather"
	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/trace"
	"github.com/fatgather/fatgather/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gatherviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gatherviz", flag.ContinueOnError)
	figure := fs.String("figure", "", "paper figure to render: fig1, fig2, fig3, fig5 (empty: render a workload)")
	wl := fs.String("workload", "random", "workload kind to render when -figure is empty")
	n := fs.Int("n", 8, "number of robots")
	seed := fs.Int64("seed", 1, "workload seed")
	tracePath := fs.String("trace", "", "replay a recorded trace file (JSON) instead of rendering a figure or workload")
	frame := fs.Int("frame", -1, "frame index to render with -trace (negative: from the end, -1 is the last frame)")
	outPath := fs.String("out", "", "output SVG path (default: stdout)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the render to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gatherviz: -memprofile:", err)
				return
			}
			runtime.GC() // materialize the live heap before snapshotting it
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gatherviz: -memprofile:", err)
			}
			f.Close()
		}()
	}

	if *tracePath != "" {
		if *figure != "" {
			return fmt.Errorf("-trace and -figure are mutually exclusive")
		}
		return replayTrace(*tracePath, *frame, *outPath, out)
	}

	var svg string
	switch *figure {
	case "fig1":
		svg = viz.FigureStateCycle()
	case "fig2":
		svg = viz.FigureMoveToPoint(geom.V(0, 0), geom.V(8, 0), *n)
	case "fig3":
		hull := config.Geometric{geom.V(0, 0), geom.V(12, 0), geom.V(14, 9), geom.V(6, 14), geom.V(-2, 9)}
		svg = viz.FigureFindPoints(hull, *n)
	case "fig5":
		svg = viz.FigureStraightLine(geom.V(0, 0), geom.V(5, 0.08), geom.V(10, 0), *n)
	case "":
		pts, err := fatgather.GenerateWorkload(fatgather.Workload(*wl), *n, *seed)
		if err != nil {
			return err
		}
		svg = fatgather.RenderSVG(pts)
	default:
		return fmt.Errorf("unknown figure %q", *figure)
	}

	if *outPath == "" {
		fmt.Fprint(out, svg)
		return nil
	}
	if err := os.WriteFile(*outPath, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	return nil
}

// replayTrace renders one frame of a recorded trace as SVG and prints the
// snippet's metadata (frame count, event span, per-robot states of the
// rendered frame) so a livelock snippet is inspectable at a glance.
func replayTrace(path string, frame int, outPath string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("invalid trace: %w", err)
	}
	if tr.Len() == 0 {
		return fmt.Errorf("trace %s has no frames", path)
	}
	idx := frame
	if idx < 0 {
		idx = tr.Len() + idx
	}
	if idx < 0 || idx >= tr.Len() {
		return fmt.Errorf("frame %d out of range (trace has %d frames)", frame, tr.Len())
	}
	fr := tr.Frames[idx]
	fmt.Fprintf(out, "trace:     %s (algorithm %s, adversary %s, n=%d)\n", path, tr.Algorithm, tr.Adversary, tr.N)
	fmt.Fprintf(out, "frames:    %d (events %d..%d)\n", tr.Len(), tr.Frames[0].Event, tr.Frames[tr.Len()-1].Event)
	fmt.Fprintf(out, "rendering: frame %d (event %d)\n", idx, fr.Event)
	if len(fr.States) == len(fr.Centers) {
		for i, st := range fr.States {
			line := fmt.Sprintf("robot %d: %-7s at (%.3f, %.3f)", i, st, fr.Centers[i].X, fr.Centers[i].Y)
			if len(fr.Targets) == len(fr.Centers) && fr.Targets[i] != nil {
				line += fmt.Sprintf(" -> (%.3f, %.3f)", fr.Targets[i].X, fr.Targets[i].Y)
			}
			fmt.Fprintf(out, "  %s\n", line)
		}
	}
	svg := viz.SVG(tr.Config(idx), viz.SVGOptions{DrawHull: true, Labels: true})
	if outPath == "" {
		fmt.Fprint(out, svg)
		return nil
	}
	if err := os.WriteFile(outPath, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", outPath)
	return nil
}
