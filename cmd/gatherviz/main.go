// Command gatherviz renders configurations and the paper's figures as SVG.
//
// Example:
//
//	gatherviz -figure fig2 -out fig2.svg
//	gatherviz -workload nested-hulls -n 12 -seed 4 -out start.svg
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	fatgather "github.com/fatgather/fatgather"
	"github.com/fatgather/fatgather/internal/config"
	"github.com/fatgather/fatgather/internal/geom"
	"github.com/fatgather/fatgather/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gatherviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gatherviz", flag.ContinueOnError)
	figure := fs.String("figure", "", "paper figure to render: fig1, fig2, fig3, fig5 (empty: render a workload)")
	wl := fs.String("workload", "random", "workload kind to render when -figure is empty")
	n := fs.Int("n", 8, "number of robots")
	seed := fs.Int64("seed", 1, "workload seed")
	outPath := fs.String("out", "", "output SVG path (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var svg string
	switch *figure {
	case "fig1":
		svg = viz.FigureStateCycle()
	case "fig2":
		svg = viz.FigureMoveToPoint(geom.V(0, 0), geom.V(8, 0), *n)
	case "fig3":
		hull := config.Geometric{geom.V(0, 0), geom.V(12, 0), geom.V(14, 9), geom.V(6, 14), geom.V(-2, 9)}
		svg = viz.FigureFindPoints(hull, *n)
	case "fig5":
		svg = viz.FigureStraightLine(geom.V(0, 0), geom.V(5, 0.08), geom.V(10, 0), *n)
	case "":
		pts, err := fatgather.GenerateWorkload(fatgather.Workload(*wl), *n, *seed)
		if err != nil {
			return err
		}
		svg = fatgather.RenderSVG(pts)
	default:
		return fmt.Errorf("unknown figure %q", *figure)
	}

	if *outPath == "" {
		fmt.Fprint(out, svg)
		return nil
	}
	if err := os.WriteFile(*outPath, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	return nil
}
