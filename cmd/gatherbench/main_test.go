package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/fatgather/fatgather/internal/adversary"
	"github.com/fatgather/fatgather/internal/engine"
	"github.com/fatgather/fatgather/internal/experiments"
	"github.com/fatgather/fatgather/internal/sim"
	"github.com/fatgather/fatgather/internal/sweep"
	"github.com/fatgather/fatgather/internal/trace"
	"github.com/fatgather/fatgather/internal/workload"
)

// TestRunRejectsDegenerateFlags covers the error paths of run(): flag values
// that would silently render empty or degenerate tables must be rejected with
// a usage error before any experiment runs.
func TestRunRejectsDegenerateFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero seeds", []string{"-seeds", "0"}, "-seeds must be positive"},
		{"negative seeds", []string{"-seeds", "-2"}, "-seeds must be positive"},
		{"zero max-events", []string{"-max-events", "0"}, "-max-events must be positive"},
		{"negative max-events", []string{"-max-events", "-1"}, "-max-events must be positive"},
		{"negative workers", []string{"-workers", "-1"}, "-workers must be non-negative"},
		{"resume without out", []string{"-resume"}, "-resume requires -out"},
		{"coordinator with out", []string{"-coordinator", "http://localhost:9340", "-out", "sweep"}, "-coordinator and -out are mutually exclusive"},
		{"malformed coordinator URL", []string{"-coordinator", "localhost:9340"}, "coordinator URL must be http(s)"},
		{"negative adaptive-ci", []string{"-adaptive-ci", "-1"}, "-adaptive-ci must be non-negative"},
		{"negative adaptive cap", []string{"-adaptive-max-seeds", "-1"}, "-adaptive-max-seeds must be non-negative"},
		{"adaptive cap without target", []string{"-adaptive-max-seeds", "8"}, "-adaptive-max-seeds requires -adaptive-ci"},
		{"steal without owner", []string{"-steal"}, "-steal requires -shard-owner"},
		{"unknown experiment", []string{"-only", "E99"}, "unknown experiment id"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"unknown adversary", []string{"-adversary", "bogus"}, "unknown adversary strategy"},
		{"malformed adversary spec", []string{"-adversary", "fair+noise=abc"}, "bad noise bound"},
		{"negative crash", []string{"-crash", "-1"}, "-crash must be non-negative"},
		{"negative noise", []string{"-noise", "-0.1"}, "-noise must be non-negative"},
		{"full truncation", []string{"-trunc", "1"}, "-trunc must be in [0, 1)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q does not contain %q", tc.args, err, tc.want)
			}
			if out.Len() != 0 {
				t.Fatalf("run(%v) printed tables despite the error:\n%s", tc.args, out.String())
			}
		})
	}
}

func TestRunPrintsSelectedExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "e2,E3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "== E2:") || !strings.Contains(got, "== E3:") {
		t.Fatalf("selected experiments missing from output:\n%s", got)
	}
	if strings.Contains(got, "== E1:") {
		t.Fatalf("unselected experiment printed:\n%s", got)
	}
}

// TestRunSweepOutAndResume drives the new flags end to end: -out checkpoints
// the cells, -resume re-renders byte-identical output without re-running.
func TestRunSweepOutAndResume(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-only", "E5", "-seeds", "2", "-max-events", "1200", "-out", dir}

	var first strings.Builder
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "E5", "results.jsonl")
	before, err := os.ReadFile(store)
	if err != nil {
		t.Fatalf("store not written: %v", err)
	}

	var second strings.Builder
	if err := run(append(args, "-resume"), &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("resumed output differs:\n%s\nvs\n%s", first.String(), second.String())
	}
	after, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("resume re-ran cells: store grew from %d to %d bytes", len(before), len(after))
	}
}

func TestRunAdaptiveFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-only", "E5", "-seeds", "2", "-max-events", "1200",
		"-adaptive-ci", "0.000001", "-adaptive-max-seeds", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "consumed 3 seeds") {
		t.Fatalf("adaptive notes missing:\n%s", out.String())
	}
}

// TestRunRejectsBadShardFlags covers the sharding flag validation.
func TestRunRejectsBadShardFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"shard-owner without out", []string{"-shard-owner", "w"}, "-shard-owner requires -out"},
		{"lease-ttl without owner", []string{"-lease-ttl", "10s"}, "-lease-ttl requires -shard-owner"},
		{"negative lease-ttl", []string{"-shard-owner", "w", "-out", t.TempDir(), "-lease-ttl", "-1s"}, "-lease-ttl must be non-negative"},
		{"negative shards", []string{"-shards", "-1"}, "-shards must be non-negative"},
		{"shard-id equal to shards", []string{"-shards", "2", "-shard-id", "2"}, "-shard-id must be in [0, 2)"},
		{"shard-id above shards", []string{"-shards", "2", "-shard-id", "5"}, "-shard-id must be in [0, 2)"},
		{"negative shard-id", []string{"-shards", "2", "-shard-id", "-1"}, "-shard-id must be in [0, 2)"},
		{"bare shard-id", []string{"-shard-id", "1"}, "-shard-id requires -shards"},
		{"shard-id with shards=1", []string{"-shards", "1", "-shard-id", "1"}, "-shard-id requires -shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q does not contain %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestRunShardOwnerFlag drives cooperative sharding end to end through the
// CLI: a first worker drains the sweep, a second worker over the same
// directory restores everything from the shared store (sharded mode implies
// -resume) and prints byte-identical tables.
func TestRunShardOwnerFlag(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-only", "E5", "-seeds", "2", "-max-events", "1200", "-out", dir}

	var plain strings.Builder
	if err := run(base, &plain); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "E5", "results.jsonl")
	before, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}

	var second strings.Builder
	if err := run(append(base, "-shard-owner", "late-worker"), &second); err != nil {
		t.Fatal(err)
	}
	if plain.String() != second.String() {
		t.Fatalf("sharded worker output differs:\n%s\nvs\n%s", plain.String(), second.String())
	}
	after, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("sharded worker re-ran completed cells: store grew from %d to %d bytes", len(before), len(after))
	}
}

// TestRunStaticShardsFlag pins the static split: shard 0 checkpoints a
// strict subset, and shard 1 — run over the same directory — completes the
// sweep and, with the store to merge from, prints the full tables.
func TestRunStaticShardsFlag(t *testing.T) {
	refDir := t.TempDir()
	var want strings.Builder
	if err := run([]string{"-only", "E5", "-seeds", "2", "-max-events", "1200", "-out", refDir}, &want); err != nil {
		t.Fatal(err)
	}
	refData, err := os.ReadFile(filepath.Join(refDir, "E5", "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	totalRecords := strings.Count(string(refData), "\n")

	dir := t.TempDir()
	base := []string{"-only", "E5", "-seeds", "2", "-max-events", "1200", "-out", dir, "-resume", "-shards", "2"}
	var shard0 strings.Builder
	if err := run(append(base, "-shard-id", "0"), &shard0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "E5", "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	part := strings.Count(string(data), "\n")
	if part == 0 || part >= totalRecords {
		t.Fatalf("shard 0 checkpointed %d of %d records, want a strict non-empty subset", part, totalRecords)
	}

	// Shard 1 runs its own share and merges shard 0's from the store: the
	// output is the complete table set, byte-identical to the plain run.
	var shard1 strings.Builder
	if err := run(append(base, "-shard-id", "1"), &shard1); err != nil {
		t.Fatal(err)
	}
	if shard1.String() != want.String() {
		t.Fatalf("merged static shard output differs:\n%s\nvs\n%s", shard1.String(), want.String())
	}
}

// readStoreKeys parses a results.jsonl and returns every record's cell key
// (in file order, duplicates preserved).
func readStoreKeys(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("corrupt store line %q: %v", line, err)
		}
		keys = append(keys, rec.Key)
	}
	return keys
}

// TestRunAdaptiveComposesWithShardOwner drives -adaptive-ci and -shard-owner
// in one run: a solo cooperative worker walks the cross-worker adaptive
// protocol end to end (leases, shared store, adaptive-state records) and must
// print byte-identical tables to a plain single-process adaptive run, with no
// seed replica executed (checkpointed) twice.
func TestRunAdaptiveComposesWithShardOwner(t *testing.T) {
	adaptive := []string{"-only", "E5", "-seeds", "2", "-max-events", "1200",
		"-adaptive-ci", "0.000001", "-adaptive-max-seeds", "3"}

	var plain strings.Builder
	plainDir := t.TempDir()
	if err := run(append(adaptive, "-out", plainDir), &plain); err != nil {
		t.Fatal(err)
	}

	var sharded strings.Builder
	shardDir := t.TempDir()
	if err := run(append(adaptive, "-out", shardDir, "-shard-owner", "w1"), &sharded); err != nil {
		t.Fatal(err)
	}
	if plain.String() != sharded.String() {
		t.Fatalf("adaptive tables differ with -shard-owner:\n%s\nvs\n%s", plain.String(), sharded.String())
	}

	keys := readStoreKeys(t, filepath.Join(shardDir, "E5", "results.jsonl"))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("seed replica %q checkpointed twice (duplicated work)", k)
		}
		seen[k] = true
	}
	plainKeys := readStoreKeys(t, filepath.Join(plainDir, "E5", "results.jsonl"))
	if len(keys) != len(plainKeys) {
		t.Fatalf("sharded adaptive run executed %d cells, plain adaptive %d", len(keys), len(plainKeys))
	}
}

// TestMergeSubcommand pins the static-shard merge path end to end: two
// shards sweep disjoint cell groups into separate directories (no shared
// filesystem), merge combines them, and resuming from the merged store
// renders tables byte-identical to an unsharded run.
func TestMergeSubcommand(t *testing.T) {
	base := []string{"-only", "E5", "-seeds", "2", "-max-events", "1200"}

	refDir := t.TempDir()
	var want strings.Builder
	if err := run(append(base, "-out", refDir), &want); err != nil {
		t.Fatal(err)
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	var shard0, shard1 strings.Builder
	if err := run(append(base, "-out", dirA, "-shards", "2", "-shard-id", "0"), &shard0); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-out", dirB, "-shards", "2", "-shard-id", "1"), &shard1); err != nil {
		t.Fatal(err)
	}

	merged := t.TempDir()
	var mergeOut strings.Builder
	if err := run([]string{"merge", "-out", merged, dirA, dirB}, &mergeOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mergeOut.String(), "merged ") {
		t.Fatalf("merge printed no summary:\n%s", mergeOut.String())
	}

	mergedKeys := readStoreKeys(t, filepath.Join(merged, "E5", "results.jsonl"))
	refKeys := readStoreKeys(t, filepath.Join(refDir, "E5", "results.jsonl"))
	if len(mergedKeys) != len(refKeys) {
		t.Fatalf("merged store holds %d records, reference %d", len(mergedKeys), len(refKeys))
	}

	var resumed strings.Builder
	if err := run(append(base, "-out", merged, "-resume"), &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != want.String() {
		t.Fatalf("resume from merged store differs from unsharded run:\n%s\nvs\n%s", resumed.String(), want.String())
	}
	after := readStoreKeys(t, filepath.Join(merged, "E5", "results.jsonl"))
	if len(after) != len(mergedKeys) {
		t.Fatalf("resume from merged store re-ran cells: %d -> %d records", len(mergedKeys), len(after))
	}
}

// TestMergeRejectsMismatchedEngineVersion pins the version gate: a source
// store written by a different engine version contributes nothing.
func TestMergeRejectsMismatchedEngineVersion(t *testing.T) {
	src := filepath.Join(t.TempDir(), "E5")
	if err := os.MkdirAll(src, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := `{"schema":1,"engine":"fatgather-engine/0-stale","key":"k1","elapsed_ns":1}` + "\n"
	if err := os.WriteFile(filepath.Join(src, "results.jsonl"), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}

	merged := t.TempDir()
	var out strings.Builder
	if err := run([]string{"merge", "-out", merged, filepath.Dir(src)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "merged 0 records") {
		t.Fatalf("stale-version records were not rejected:\n%s", out.String())
	}
	// The rejected source must be left untouched for inspection.
	data, err := os.ReadFile(filepath.Join(src, "results.jsonl"))
	if err != nil || string(data) != stale {
		t.Fatalf("merge modified a rejected source store: %q, %v", data, err)
	}
}

// TestMergeRejectsBadUsage covers the merge subcommand's own flag errors.
func TestMergeRejectsBadUsage(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing out", []string{"merge", t.TempDir()}, "-out is required"},
		{"no sources", []string{"merge", "-out", t.TempDir()}, "no source directories"},
		{"source without store", []string{"merge", "-out", t.TempDir(), t.TempDir()}, "holds no sweep store"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tc.args, &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %v does not contain %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestSweepDefaultsPinned documents the intentional difference between the
// sweep budget (this command, experiments.DefaultMaxEvents) and the
// interactive single-run budget (gathersim, sim.DefaultMaxEvents): drifting
// either is a conscious decision, not an accident.
func TestSweepDefaultsPinned(t *testing.T) {
	// defaultMaxEvents is declared as experiments.DefaultMaxEvents; pinning
	// the value here makes changing either side a conscious decision.
	if defaultMaxEvents != 150000 {
		t.Fatalf("gatherbench default budget = %d, want experiments.DefaultMaxEvents (150000)", defaultMaxEvents)
	}
	if experiments.DefaultMaxEvents != 150000 {
		t.Fatalf("experiments.DefaultMaxEvents = %d, want 150000", experiments.DefaultMaxEvents)
	}
	if sim.DefaultMaxEvents != 200000 {
		t.Fatalf("sim.DefaultMaxEvents = %d, want 200000", sim.DefaultMaxEvents)
	}
}

// livelockStore builds a sweep store holding one certified livelocked cell
// (the known round-robin-lag cycle) and one healthy cell, and returns the
// store directory and the livelocked cell's key.
func livelockStore(t *testing.T) (string, string) {
	t.Helper()
	ll := engine.Cell{
		Workload:      workload.KindNestedHulls,
		N:             6,
		WorkloadSeed:  1,
		Adversary:     adversary.NameRoundRobinLag,
		AdversarySeed: 1,
		MaxEvents:     30000,
	}
	healthy := engine.Cell{
		Workload:     workload.KindClustered,
		N:            3,
		WorkloadSeed: 1,
		MaxEvents:    30000,
	}
	cells := []engine.Cell{ll, healthy}
	results := engine.Run(cells, engine.Options{})
	if results[0].Err != nil || results[0].Result.LivelockTrace == nil {
		t.Fatalf("setup needs a certified livelock: err=%v trace=%v",
			results[0].Err, results[0].Result.LivelockTrace != nil)
	}
	dir := t.TempDir()
	st, err := sweep.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range cells {
		if err := st.Append(cell.Key(), results[i]); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	return dir, ll.Key()
}

// TestLivelocksSubcommand drives the extraction path end to end: the
// subcommand lists the certified cell (and only it), writes its snippet, and
// the snippet decodes into a valid replayable trace.
func TestLivelocksSubcommand(t *testing.T) {
	dir, key := livelockStore(t)
	traces := t.TempDir()

	var out strings.Builder
	if err := run([]string{"livelocks", "-out", traces, dir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, key) {
		t.Fatalf("listing misses the livelocked key %q:\n%s", key, got)
	}
	if !strings.Contains(got, "1 livelocked cell(s)") {
		t.Fatalf("expected exactly one livelocked cell:\n%s", got)
	}
	path := filepath.Join(traces, "livelock-000.json")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("extracted snippet invalid: %v", err)
	}
	if tr.N != 6 || tr.Len() == 0 {
		t.Fatalf("snippet n=%d frames=%d", tr.N, tr.Len())
	}

	// The source store must survive untouched (read-only scan), and the
	// subcommand must also discover stores one directory below (the shape a
	// gatherbench -out directory has).
	if _, err := os.Stat(filepath.Join(dir, "results.jsonl")); err != nil {
		t.Fatalf("source store was disturbed: %v", err)
	}
	parent := t.TempDir()
	sub := filepath.Join(parent, "E13")
	if err := os.Rename(dir, sub); err != nil {
		t.Fatal(err)
	}
	var nested strings.Builder
	if err := run([]string{"livelocks", parent}, &nested); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nested.String(), "1 livelocked cell(s)") {
		t.Fatalf("nested discovery failed:\n%s", nested.String())
	}
}

// TestLivelocksRejectsBadUsage covers the livelocks subcommand's own errors.
func TestLivelocksRejectsBadUsage(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no sources", []string{"livelocks"}, "no sweep directories"},
		{"source without store", []string{"livelocks", t.TempDir()}, "holds no sweep store"},
		{"missing source", []string{"livelocks", filepath.Join(t.TempDir(), "nope")}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tc.args, &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %v does not contain %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestRunAdversaryAndFaultFlags drives the robustness flags end to end: the
// adversary override and each fault knob must change the E5 table (and the
// run must succeed), while an explicit fair override matches the fair spec.
func TestRunAdversaryAndFaultFlags(t *testing.T) {
	base := []string{"-only", "E5", "-seeds", "1", "-max-events", "800"}
	outputs := make(map[string]string)
	for name, extra := range map[string][]string{
		"default":      nil,
		"greedy-stall": {"-adversary", "greedy-stall"},
		"crash":        {"-crash", "2"},
		"noise":        {"-adversary", "fair", "-noise", "0.3"},
		"trunc":        {"-adversary", "fair+trunc=0.5"},
	} {
		var out strings.Builder
		if err := run(append(append([]string{}, base...), extra...), &out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out.String(), "== E5:") {
			t.Fatalf("%s: table missing:\n%s", name, out.String())
		}
		outputs[name] = out.String()
	}
	for name, got := range outputs {
		if name == "default" {
			continue
		}
		if got == outputs["default"] {
			t.Fatalf("%s: override did not change the E5 table", name)
		}
	}
}

// elapsedNsRe matches the wall-clock elapsed_ns field of a store record, the
// only byte sequence legitimately differing between two otherwise identical
// runs.
var elapsedNsRe = regexp.MustCompile(`"elapsed_ns":\d+`)

// TestTelemetryDoesNotPerturbResults pins the one-way telemetry contract end
// to end: a run with telemetry fully enabled (-telemetry-out snapshot and a
// live -http server scraping its own registry) renders byte-identical tables
// and a byte-identical sweep store — modulo the wall-clock elapsed_ns field —
// compared to a telemetry-off run of the same cells. E13 at this budget also
// crosses the livelock-certification path, so the certified-outcome counters
// are exercised, not just the happy path.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	plainDir, telDir := t.TempDir(), t.TempDir()
	telFile := filepath.Join(t.TempDir(), "telemetry.json")
	base := []string{"-only", "E13", "-seeds", "1", "-max-events", "2500"}

	var plain strings.Builder
	if err := run(append(append([]string{}, base...), "-out", plainDir), &plain); err != nil {
		t.Fatal(err)
	}

	var tel strings.Builder
	telArgs := append(append([]string{}, base...),
		"-out", telDir, "-telemetry-out", telFile, "-http", "127.0.0.1:0")
	if err := run(telArgs, &tel); err != nil {
		t.Fatal(err)
	}

	if plain.String() != tel.String() {
		t.Fatalf("tables differ under telemetry:\n%s\nvs\n%s", plain.String(), tel.String())
	}

	normalize := func(path string) string {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("store not written: %v", err)
		}
		return elapsedNsRe.ReplaceAllString(string(data), `"elapsed_ns":0`)
	}
	a := normalize(filepath.Join(plainDir, "E13", "results.jsonl"))
	b := normalize(filepath.Join(telDir, "E13", "results.jsonl"))
	if a != b {
		t.Fatalf("store bytes differ under telemetry (beyond elapsed_ns)")
	}

	// The snapshot itself must be a real observation of the run, not an empty
	// shell: the simulator counts events, and E13 certifies livelocks.
	snap, err := os.ReadFile(telFile)
	if err != nil {
		t.Fatalf("-telemetry-out not written: %v", err)
	}
	var decoded struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(snap, &decoded); err != nil {
		t.Fatalf("telemetry snapshot is not valid JSON: %v", err)
	}
	for _, name := range []string{
		"fatgather_sim_events_total",
		"fatgather_sweep_cells_executed_total",
	} {
		if decoded.Counters[name] == 0 {
			t.Fatalf("telemetry snapshot counter %s is zero or missing:\n%s", name, snap)
		}
	}
}

// TestTelemetryFlagValidation covers the telemetry flag error paths.
func TestTelemetryFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-http-linger", "5s"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-http-linger requires -http") {
		t.Fatalf("lone -http-linger not rejected: %v", err)
	}
	if err := run([]string{"-http", "127.0.0.1:0", "-http-linger", "-1s"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-http-linger must be non-negative") {
		t.Fatalf("negative -http-linger not rejected: %v", err)
	}
}
