package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunRejectsDegenerateFlags covers the error paths of run(): flag values
// that would silently render empty or degenerate tables must be rejected with
// a usage error before any experiment runs.
func TestRunRejectsDegenerateFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero seeds", []string{"-seeds", "0"}, "-seeds must be positive"},
		{"negative seeds", []string{"-seeds", "-2"}, "-seeds must be positive"},
		{"zero max-events", []string{"-max-events", "0"}, "-max-events must be positive"},
		{"negative max-events", []string{"-max-events", "-1"}, "-max-events must be positive"},
		{"negative workers", []string{"-workers", "-1"}, "-workers must be non-negative"},
		{"resume without out", []string{"-resume"}, "-resume requires -out"},
		{"negative adaptive-ci", []string{"-adaptive-ci", "-1"}, "-adaptive-ci must be non-negative"},
		{"negative adaptive cap", []string{"-adaptive-max-seeds", "-1"}, "-adaptive-max-seeds must be non-negative"},
		{"adaptive cap without target", []string{"-adaptive-max-seeds", "8"}, "-adaptive-max-seeds requires -adaptive-ci"},
		{"unknown experiment", []string{"-only", "E99"}, "unknown experiment id"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q does not contain %q", tc.args, err, tc.want)
			}
			if out.Len() != 0 {
				t.Fatalf("run(%v) printed tables despite the error:\n%s", tc.args, out.String())
			}
		})
	}
}

func TestRunPrintsSelectedExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "e2,E3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "== E2:") || !strings.Contains(got, "== E3:") {
		t.Fatalf("selected experiments missing from output:\n%s", got)
	}
	if strings.Contains(got, "== E1:") {
		t.Fatalf("unselected experiment printed:\n%s", got)
	}
}

// TestRunSweepOutAndResume drives the new flags end to end: -out checkpoints
// the cells, -resume re-renders byte-identical output without re-running.
func TestRunSweepOutAndResume(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-only", "E5", "-seeds", "2", "-max-events", "1200", "-out", dir}

	var first strings.Builder
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "E5", "results.jsonl")
	before, err := os.ReadFile(store)
	if err != nil {
		t.Fatalf("store not written: %v", err)
	}

	var second strings.Builder
	if err := run(append(args, "-resume"), &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("resumed output differs:\n%s\nvs\n%s", first.String(), second.String())
	}
	after, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("resume re-ran cells: store grew from %d to %d bytes", len(before), len(after))
	}
}

func TestRunAdaptiveFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-only", "E5", "-seeds", "2", "-max-events", "1200",
		"-adaptive-ci", "0.000001", "-adaptive-max-seeds", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "consumed 3 seeds") {
		t.Fatalf("adaptive notes missing:\n%s", out.String())
	}
}

// TestRunRejectsBadShardFlags covers the sharding flag validation.
func TestRunRejectsBadShardFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"shard-owner without out", []string{"-shard-owner", "w"}, "-shard-owner requires -out"},
		{"lease-ttl without owner", []string{"-lease-ttl", "10s"}, "-lease-ttl requires -shard-owner"},
		{"negative lease-ttl", []string{"-shard-owner", "w", "-out", t.TempDir(), "-lease-ttl", "-1s"}, "-lease-ttl must be non-negative"},
		{"negative shards", []string{"-shards", "-1"}, "-shards must be non-negative"},
		{"shard-id out of range", []string{"-shards", "2", "-shard-id", "2"}, "-shard-id must be in [0, 2)"},
		{"shard-id without shards", []string{"-shard-id", "1"}, "-shard-id requires -shards"},
		{"sharding with adaptive", []string{"-shard-owner", "w", "-out", t.TempDir(), "-adaptive-ci", "100"}, "does not compose with sharding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q does not contain %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestRunShardOwnerFlag drives cooperative sharding end to end through the
// CLI: a first worker drains the sweep, a second worker over the same
// directory restores everything from the shared store (sharded mode implies
// -resume) and prints byte-identical tables.
func TestRunShardOwnerFlag(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-only", "E5", "-seeds", "2", "-max-events", "1200", "-out", dir}

	var plain strings.Builder
	if err := run(base, &plain); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "E5", "results.jsonl")
	before, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}

	var second strings.Builder
	if err := run(append(base, "-shard-owner", "late-worker"), &second); err != nil {
		t.Fatal(err)
	}
	if plain.String() != second.String() {
		t.Fatalf("sharded worker output differs:\n%s\nvs\n%s", plain.String(), second.String())
	}
	after, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("sharded worker re-ran completed cells: store grew from %d to %d bytes", len(before), len(after))
	}
}

// TestRunStaticShardsFlag pins the static split: shard 0 checkpoints a
// strict subset, and shard 1 — run over the same directory — completes the
// sweep and, with the store to merge from, prints the full tables.
func TestRunStaticShardsFlag(t *testing.T) {
	refDir := t.TempDir()
	var want strings.Builder
	if err := run([]string{"-only", "E5", "-seeds", "2", "-max-events", "1200", "-out", refDir}, &want); err != nil {
		t.Fatal(err)
	}
	refData, err := os.ReadFile(filepath.Join(refDir, "E5", "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	totalRecords := strings.Count(string(refData), "\n")

	dir := t.TempDir()
	base := []string{"-only", "E5", "-seeds", "2", "-max-events", "1200", "-out", dir, "-resume", "-shards", "2"}
	var shard0 strings.Builder
	if err := run(append(base, "-shard-id", "0"), &shard0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "E5", "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	part := strings.Count(string(data), "\n")
	if part == 0 || part >= totalRecords {
		t.Fatalf("shard 0 checkpointed %d of %d records, want a strict non-empty subset", part, totalRecords)
	}

	// Shard 1 runs its own share and merges shard 0's from the store: the
	// output is the complete table set, byte-identical to the plain run.
	var shard1 strings.Builder
	if err := run(append(base, "-shard-id", "1"), &shard1); err != nil {
		t.Fatal(err)
	}
	if shard1.String() != want.String() {
		t.Fatalf("merged static shard output differs:\n%s\nvs\n%s", shard1.String(), want.String())
	}
}
