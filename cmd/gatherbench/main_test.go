package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunRejectsDegenerateFlags covers the error paths of run(): flag values
// that would silently render empty or degenerate tables must be rejected with
// a usage error before any experiment runs.
func TestRunRejectsDegenerateFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero seeds", []string{"-seeds", "0"}, "-seeds must be positive"},
		{"negative seeds", []string{"-seeds", "-2"}, "-seeds must be positive"},
		{"zero max-events", []string{"-max-events", "0"}, "-max-events must be positive"},
		{"negative max-events", []string{"-max-events", "-1"}, "-max-events must be positive"},
		{"negative workers", []string{"-workers", "-1"}, "-workers must be non-negative"},
		{"resume without out", []string{"-resume"}, "-resume requires -out"},
		{"negative adaptive-ci", []string{"-adaptive-ci", "-1"}, "-adaptive-ci must be non-negative"},
		{"negative adaptive cap", []string{"-adaptive-max-seeds", "-1"}, "-adaptive-max-seeds must be non-negative"},
		{"adaptive cap without target", []string{"-adaptive-max-seeds", "8"}, "-adaptive-max-seeds requires -adaptive-ci"},
		{"unknown experiment", []string{"-only", "E99"}, "unknown experiment id"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q does not contain %q", tc.args, err, tc.want)
			}
			if out.Len() != 0 {
				t.Fatalf("run(%v) printed tables despite the error:\n%s", tc.args, out.String())
			}
		})
	}
}

func TestRunPrintsSelectedExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "e2,E3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "== E2:") || !strings.Contains(got, "== E3:") {
		t.Fatalf("selected experiments missing from output:\n%s", got)
	}
	if strings.Contains(got, "== E1:") {
		t.Fatalf("unselected experiment printed:\n%s", got)
	}
}

// TestRunSweepOutAndResume drives the new flags end to end: -out checkpoints
// the cells, -resume re-renders byte-identical output without re-running.
func TestRunSweepOutAndResume(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-only", "E5", "-seeds", "2", "-max-events", "1200", "-out", dir}

	var first strings.Builder
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "E5", "results.jsonl")
	before, err := os.ReadFile(store)
	if err != nil {
		t.Fatalf("store not written: %v", err)
	}

	var second strings.Builder
	if err := run(append(args, "-resume"), &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("resumed output differs:\n%s\nvs\n%s", first.String(), second.String())
	}
	after, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("resume re-ran cells: store grew from %d to %d bytes", len(before), len(after))
	}
}

func TestRunAdaptiveFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-only", "E5", "-seeds", "2", "-max-events", "1200",
		"-adaptive-ci", "0.000001", "-adaptive-max-seeds", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "consumed 3 seeds") {
		t.Fatalf("adaptive notes missing:\n%s", out.String())
	}
}
