// Command gatherbench runs the experiment suite (E1..E12 from DESIGN.md /
// EXPERIMENTS.md) and prints each resulting table. Individual experiments can
// be selected by id; the multi-run experiments (E5, E7, E9, E10, E11) are
// executed on the parallel batch engine, whose results are bit-identical for
// any worker count.
//
// Example:
//
//	gatherbench -seeds 5                    # full suite, all cores
//	gatherbench -only E5,E10 -seeds 8       # selected experiments
//	gatherbench -workers 1 -timing -only E5 # sequential wall-clock baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/fatgather/fatgather/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gatherbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gatherbench", flag.ContinueOnError)
	seeds := fs.Int("seeds", 3, "seeds per experiment cell")
	maxEvents := fs.Int("max-events", 150000, "event budget per run")
	workers := fs.Int("workers", 0, "worker pool size for the batch engine (0 = all cores; results are identical for any value)")
	timing := fs.Bool("timing", false, "print wall-clock per experiment")
	only := fs.String("only", "", "comma-separated experiment ids to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Seeds: *seeds, MaxEvents: *maxEvents, Workers: *workers}

	suite := experiments.Suite()
	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			wanted[id] = true
		}
	}
	for id := range wanted {
		known := false
		for _, e := range suite {
			if e.ID == id {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown experiment id %q", id)
		}
	}

	for _, e := range suite {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		start := time.Now()
		table := e.Run(cfg)
		if *timing {
			fmt.Fprintf(out, "-- %s: %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		fmt.Fprintln(out, table.String())
	}
	return nil
}
