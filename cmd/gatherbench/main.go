// Command gatherbench runs the experiment suite (E1..E12 from DESIGN.md /
// EXPERIMENTS.md) and prints each resulting table. Individual experiments can
// be selected by id.
//
// Example:
//
//	gatherbench -seeds 5                 # full suite
//	gatherbench -only E5,E10 -seeds 3    # selected experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/fatgather/fatgather/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gatherbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gatherbench", flag.ContinueOnError)
	seeds := fs.Int("seeds", 3, "seeds per experiment cell")
	maxEvents := fs.Int("max-events", 150000, "event budget per run")
	only := fs.String("only", "", "comma-separated experiment ids to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Seeds: *seeds, MaxEvents: *maxEvents}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			wanted[id] = true
		}
	}

	for _, table := range experiments.All(cfg) {
		if len(wanted) > 0 && !wanted[strings.ToUpper(table.ID)] {
			continue
		}
		fmt.Fprintln(out, table.String())
	}
	return nil
}
