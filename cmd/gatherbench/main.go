// Command gatherbench runs the experiment suite (E1..E15, defined in
// internal/experiments — see the package's godoc for the index) and prints
// each resulting table. Individual experiments can be selected by id; the
// multi-run experiments (E5, E7, E9, E10, E11, E13, E14, E15) are executed
// on the parallel batch engine, whose results are bit-identical for any
// worker count, can checkpoint every cell result to disk so that a killed
// sweep resumes where it stopped, and can be sharded across processes (or
// hosts on a shared filesystem) that cooperatively drain one sweep
// directory.
//
// Example:
//
//	gatherbench -seeds 5                    # full suite, all cores
//	gatherbench -only E5,E10 -seeds 8       # selected experiments
//	gatherbench -workers 1 -timing -only E5 # sequential wall-clock baseline
//	gatherbench -out sweep/                 # checkpoint cell results to disk
//	gatherbench -out sweep/ -resume         # re-run only the missing cells
//	gatherbench -adaptive-ci 500            # grow seeds until CI is tight
//
// Robustness: the single-adversary experiments accept an adversary override
// and fault-injection knobs (crash-stop robots, bounded sensor noise,
// bounded movement truncation), composed into one adversary spec:
//
//	gatherbench -only E5 -adversary greedy-stall   # worst-case scheduling
//	gatherbench -only E5 -crash 2                  # 2 robots crash-stop
//	gatherbench -only E10 -adversary fair -noise 0.1 -trunc 0.2
//	gatherbench -only E13,E14,E15                  # the robustness suite
//
// Sharded: run one of these per terminal/host — they split the work through
// lease files in the shared sweep directory, re-run a killed peer's cells
// once its leases expire, and each print the same byte-identical tables:
//
//	gatherbench -only E5 -out sweep/ -shard-owner "$(hostname)-$$"
//	gatherbench -only E5 -shards 2 -shard-id 0   # static split, no shared dir
//
// Adaptive sharding: -adaptive-ci composes with -shard-owner. The fleet
// coordinates the data-dependent seed grid through the shared store plus
// per-group adaptive-state records (seeds consumed, CI half-width,
// open/closed) published next to the leases: any worker can pick up a group,
// run its next seed block, and re-evaluate the confidence interval against
// the merged cross-worker history. The trajectory is deterministic given the
// stored results, so every worker converges on the same per-group seed
// counts and prints tables byte-identical to a single adaptive process. With
// -shards, -steal lets a worker that drained its static share take over
// unclaimed or expired tail groups instead of idling:
//
//	gatherbench -only E14 -out sweep/ -adaptive-ci 800 -shard-owner w1
//	gatherbench -only E14 -out sweep/ -adaptive-ci 800 -shard-owner w2
//	gatherbench -only E5 -out sweep/ -shard-owner w1 -shards 2 -shard-id 0 -steal
//
// Network coordination: -coordinator replaces the shared sweep directory
// with a gatherd daemon (cmd/gatherd) — same leases, records and adaptive
// state, spoken over HTTP to per-experiment stores on the coordinator, so a
// fleet needs no shared mount. Coordinator runs always resume; the tables
// stay byte-identical to a filesystem or single-process run:
//
//	gatherd -addr :9340 -dir coord/ &
//	gatherbench -only E13 -coordinator http://localhost:9340 -shard-owner w1
//	gatherbench -only E13 -coordinator http://localhost:9340 -shard-owner w2
//
// Merge: static shards that ran WITHOUT a shared filesystem each hold a
// partial store; copy the sweep directories to one host and merge them
// (records from a different engine version are rejected), then resume from
// the merged store to render the full tables:
//
//	gatherbench merge -out merged/ sweepA/ sweepB/
//	gatherbench -only E5 -out merged/ -resume
//
// Livelocks: runs certified as zero-progress cycles (outcome "livelocked",
// see internal/sim/livelock.go) checkpoint a bounded trace snippet of the
// cycle with their store record; the livelocks subcommand lists them and
// extracts the snippets for replay with gatherviz -trace:
//
//	gatherbench -only E13 -out sweep/
//	gatherbench livelocks -out traces/ sweep/
//	gatherviz -trace traces/livelock-000.json
//
// Telemetry: every run feeds the internal/obs registry (event counts, cache
// hit rates, lease churn, adaptive CI state). The registry is write-only for
// the simulation stack — telemetry can never feed back into results, so a run
// with telemetry enabled is byte-identical to one without (a test pins this):
//
//	gatherbench -only E5 -telemetry-out telemetry.json   # JSON snapshot at exit
//	gatherbench -http :9090 &                            # live /metrics, /progress, /debug/pprof/
//	curl localhost:9090/progress                         # live sharded-sweep view
//	gatherbench -only E5 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"github.com/fatgather/fatgather/internal/adversary"
	"github.com/fatgather/fatgather/internal/experiments"
	"github.com/fatgather/fatgather/internal/obs"
	"github.com/fatgather/fatgather/internal/sweep"
)

// defaultMaxEvents is the per-run budget of the experiment suite:
// experiments.DefaultMaxEvents (150000), deliberately smaller than the
// interactive single-run default sim.DefaultMaxEvents (200000) that
// gathersim uses — a sweep multiplies the budget across thousands of cells.
// A test pins both defaults.
const defaultMaxEvents = experiments.DefaultMaxEvents

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gatherbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "merge" {
		return runMerge(args[1:], out)
	}
	if len(args) > 0 && args[0] == "livelocks" {
		return runLivelocks(args[1:], out)
	}
	fs := flag.NewFlagSet("gatherbench", flag.ContinueOnError)
	seeds := fs.Int("seeds", 3, "seeds per experiment cell (must be positive)")
	maxEvents := fs.Int("max-events", defaultMaxEvents, "event budget per run (must be positive)")
	workers := fs.Int("workers", 0, "worker pool size for the batch engine (0 = all cores; results are identical for any value)")
	timing := fs.Bool("timing", false, "print wall-clock per experiment")
	only := fs.String("only", "", "comma-separated experiment ids to run (default: all)")
	adv := fs.String("adversary", "", "adversary spec overriding the single-adversary experiments (E5, E7, E10, E11): a strategy name (fair, random-async, stop-happy, slow-robot, mover-starver, greedy-stall, round-robin-lag, crash) optionally decorated with faults, e.g. \"crash(2)\" or \"fair+noise=0.1+trunc=0.2\"")
	crash := fs.Int("crash", 0, "crash-stop fault: this many robots permanently stop after their first completed move (composes with -adversary; alone it implies the crash strategy over fair scheduling)")
	noise := fs.Float64("noise", 0, "sensor-noise fault: every sensed non-self center is displaced by a uniform offset of at most this distance (composes with -adversary)")
	trunc := fs.Float64("trunc", 0, "motion-truncation fault: each move grant is scaled by a uniform factor in (1-trunc, 1], possibly undercutting the liveness delta (composes with -adversary; must be < 1)")
	outDir := fs.String("out", "", "sweep directory: stream every cell result to <out>/<experiment> as workers finish")
	coordinator := fs.String("coordinator", "", "gatherd coordinator base URL (http://host:port): checkpoint and coordinate through per-experiment stores on the network coordinator instead of a shared -out directory (mutually exclusive with -out; implies -resume; composes with -shard-owner and -adaptive-ci)")
	resume := fs.Bool("resume", false, "re-use completed cells found in -out and run only the missing ones (requires -out)")
	adaptiveCI := fs.Float64("adaptive-ci", 0, "adaptive seed scheduling: grow each cell group's seeds until the 95% CI half-width of its event count falls below this target (0 = fixed seeds)")
	adaptiveMax := fs.Int("adaptive-max-seeds", 0, "seed cap per cell group in adaptive mode (0 = default cap)")
	shardOwner := fs.String("shard-owner", "", "cooperative sharding: this worker's unique id (e.g. host+pid); cell groups are claimed via lease files in the shared -out directory, so N such processes drain one sweep together (requires -out, implies -resume; composes with -adaptive-ci)")
	leaseTTL := fs.Duration("lease-ttl", 0, "lease expiry in cooperative sharding: a worker silent this long is presumed dead and its cells re-run (0 = 30s default; requires -shard-owner)")
	shards := fs.Int("shards", 0, "static sharding: total number of shards; this process runs only cell groups hashing to its -shard-id (works without a shared -out store, but then tables cover only this shard's cells)")
	shardID := fs.Int("shard-id", 0, "static sharding: this process's shard index in [0, shards)")
	steal := fs.Bool("steal", false, "lease-aware work stealing: once this worker's static share is drained, claim unclaimed or expired cell groups outside it instead of idling (requires -shard-owner; results are unchanged, only the work distribution)")
	telemetryOut := fs.String("telemetry-out", "", "write a JSON snapshot of all telemetry (counters, gauges, histograms) to this file when the suite finishes; advisory only, never part of the sweep store")
	httpAddr := fs.String("http", "", "serve live telemetry on this address (host:port; :0 picks a free port) for the duration of the run: /metrics (Prometheus text), /progress (sweep JSON), /debug/pprof/")
	httpLinger := fs.Duration("http-linger", 0, "keep the -http telemetry server alive this long after the suite finishes, so scrapers can collect the final state (requires -http)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file when the suite finishes (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be positive, got %d (a non-positive value would render empty tables)", *seeds)
	}
	if *maxEvents < 1 {
		return fmt.Errorf("-max-events must be positive, got %d (a run needs a positive event budget)", *maxEvents)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", *workers)
	}
	if *coordinator != "" && *outDir != "" {
		return fmt.Errorf("-coordinator and -out are mutually exclusive (pick one coordination medium)")
	}
	if *resume && *outDir == "" && *coordinator == "" {
		return fmt.Errorf("-resume requires -out or -coordinator (nothing to resume from)")
	}
	if *adaptiveCI < 0 {
		return fmt.Errorf("-adaptive-ci must be non-negative, got %g", *adaptiveCI)
	}
	if *adaptiveMax < 0 {
		return fmt.Errorf("-adaptive-max-seeds must be non-negative, got %d", *adaptiveMax)
	}
	if *adaptiveMax > 0 && *adaptiveCI == 0 {
		return fmt.Errorf("-adaptive-max-seeds requires -adaptive-ci (it only caps adaptive scheduling)")
	}
	if *shardOwner != "" && *outDir == "" && *coordinator == "" {
		return fmt.Errorf("-shard-owner requires -out or -coordinator (leases and results live in the shared sweep directory or on the coordinator)")
	}
	if *leaseTTL < 0 {
		return fmt.Errorf("-lease-ttl must be non-negative, got %v", *leaseTTL)
	}
	if *leaseTTL > 0 && *shardOwner == "" {
		return fmt.Errorf("-lease-ttl requires -shard-owner (it only configures cooperative sharding)")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", *shards)
	}
	if *shards > 1 && (*shardID < 0 || *shardID >= *shards) {
		return fmt.Errorf("-shard-id must be in [0, %d), got %d", *shards, *shardID)
	}
	if *shardID != 0 && *shards <= 1 {
		return fmt.Errorf("-shard-id requires -shards > 1")
	}
	if *steal && *shardOwner == "" {
		return fmt.Errorf("-steal requires -shard-owner (stealing is arbitrated through lease files)")
	}
	if *crash < 0 {
		return fmt.Errorf("-crash must be non-negative, got %d", *crash)
	}
	if *noise < 0 {
		return fmt.Errorf("-noise must be non-negative, got %g", *noise)
	}
	if *trunc < 0 || *trunc >= 1 {
		return fmt.Errorf("-trunc must be in [0, 1), got %g", *trunc)
	}
	if *httpLinger < 0 {
		return fmt.Errorf("-http-linger must be non-negative, got %v", *httpLinger)
	}
	if *httpLinger > 0 && *httpAddr == "" {
		return fmt.Errorf("-http-linger requires -http (there is no server to keep alive)")
	}
	advSpecStr, err := adversarySpecFromFlags(*adv, *crash, *noise, *trunc)
	if err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *httpAddr != "" {
		// The telemetry server is read-only over the obs registry: it never
		// feeds back into the run (one-way contract), so serving while the
		// sweep executes cannot perturb results.
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("-http: %w", err)
		}
		srv := &http.Server{Handler: obs.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		obs.Infof("gatherbench", "telemetry server listening on http://%s (/metrics /progress /debug/pprof/)", ln.Addr())
	}
	if *outDir != "" {
		// Fail before running anything if the sweep directory is unusable.
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("-out: %w", err)
		}
	}
	cfg := experiments.Config{
		Seeds:            *seeds,
		MaxEvents:        *maxEvents,
		Adversary:        advSpecStr,
		Workers:          *workers,
		SweepDir:         *outDir,
		Coordinator:      *coordinator,
		Resume:           *resume || *shardOwner != "" || *coordinator != "",
		AdaptiveCI:       *adaptiveCI,
		AdaptiveMaxSeeds: *adaptiveMax,
		ShardOwner:       *shardOwner,
		LeaseTTL:         *leaseTTL,
		Shards:           *shards,
		ShardIndex:       *shardID,
		Steal:            *steal,
		// All warnings funnel through the serialized obs logger: one writer on
		// stderr, machine-parseable logfmt lines, no interleaving between the
		// engine's worker warnings and the sweep layer's.
		Warnf: func(format string, args ...any) {
			obs.Warnf("gatherbench", format, args...)
		},
	}
	// Backstop: the flag checks above should leave no invalid combination,
	// but the library-level validation is the single source of truth.
	if err := cfg.Validate(); err != nil {
		return err
	}

	suite := experiments.Suite()
	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			wanted[id] = true
		}
	}
	for id := range wanted {
		known := false
		for _, e := range suite {
			if e.ID == id {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown experiment id %q", id)
		}
	}

	for _, e := range suite {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		start := time.Now()
		table := e.Run(cfg)
		if *timing {
			fmt.Fprintf(out, "-- %s: %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		fmt.Fprintln(out, table.String())
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		runtime.GC() // materialize the live heap before snapshotting it
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	if *telemetryOut != "" {
		if err := obs.Default.DumpJSON(*telemetryOut); err != nil {
			return fmt.Errorf("-telemetry-out: %w", err)
		}
	}
	if *httpLinger > 0 {
		obs.Infof("gatherbench", "suite done; telemetry server lingering for %v", *httpLinger)
		time.Sleep(*httpLinger)
	}
	return nil
}

// adversarySpecFromFlags composes -adversary with the fault flags into one
// canonical spec string ("" when no flag was given, so the experiments keep
// their per-driver defaults). Fault flags set to non-zero values override the
// same fault inside -adversary; -crash alone implies the crash strategy.
func adversarySpecFromFlags(adv string, crash int, noise, trunc float64) (string, error) {
	if adv == "" && crash == 0 && noise == 0 && trunc == 0 {
		return "", nil
	}
	var spec adversary.Spec
	if adv != "" {
		var err error
		spec, err = adversary.ParseSpec(adv)
		if err != nil {
			return "", fmt.Errorf("-adversary: %w", err)
		}
	} else if crash > 0 {
		spec.Strategy = adversary.NameCrash
	} else {
		// A bare fault flag perturbs the friendliest schedule, isolating the
		// fault from scheduling hostility (the E15 convention).
		spec.Strategy = adversary.NameFair
	}
	if crash > 0 {
		spec.Crash = crash
	}
	if noise > 0 {
		spec.Noise = noise
	}
	if trunc > 0 {
		spec.Trunc = trunc
	}
	if err := spec.Validate(); err != nil {
		return "", err
	}
	return spec.String(), nil
}

// runMerge implements the "merge" subcommand: combine the stores of sweep
// directories produced by static shards that ran without a shared filesystem.
// Each source may be a flat store (a directory holding results.jsonl) or a
// gatherbench -out directory (one store per experiment subdirectory); the
// layout is reproduced under -out. Records from a different engine or schema
// version are rejected with a warning. Merging is idempotent, and the merged
// directory is a normal sweep store: resume from it (-out merged/ -resume) to
// render the combined tables.
func runMerge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gatherbench merge", flag.ContinueOnError)
	outDir := fs.String("out", "", "destination sweep directory the sources are merged into (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srcs := fs.Args()
	if *outDir == "" {
		return fmt.Errorf("merge: -out is required (the directory to merge into)")
	}
	if len(srcs) == 0 {
		return fmt.Errorf("merge: no source directories given (usage: gatherbench merge -out merged/ dir1 dir2 ...)")
	}
	warnf := func(format string, args ...any) {
		obs.Warnf("merge", format, args...)
	}
	// Group the sources by store layout: a flat store merges into -out
	// directly; a per-experiment layout merges subdirectory-wise.
	flat := make([]string, 0, len(srcs))
	perExp := make(map[string][]string)
	var expOrder []string
	for _, src := range srcs {
		if _, err := os.Stat(filepath.Join(src, "results.jsonl")); err == nil {
			flat = append(flat, src)
			continue
		}
		entries, err := os.ReadDir(src)
		if err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		found := false
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			if _, err := os.Stat(filepath.Join(src, e.Name(), "results.jsonl")); err != nil {
				continue
			}
			if _, ok := perExp[e.Name()]; !ok {
				expOrder = append(expOrder, e.Name())
			}
			perExp[e.Name()] = append(perExp[e.Name()], filepath.Join(src, e.Name()))
			found = true
		}
		if !found {
			return fmt.Errorf("merge: %s holds no sweep store (no results.jsonl at the top level or one directory below)", src)
		}
	}
	sort.Strings(expOrder)
	report := func(dst string, st sweep.MergeStats) {
		fmt.Fprintf(out, "merged %d records into %s (%d already present, %d sources)\n",
			st.Added, dst, st.Skipped, st.Sources)
	}
	if len(flat) > 0 {
		st, err := sweep.MergeDirs(*outDir, flat, warnf)
		if err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		report(*outDir, st)
	}
	for _, exp := range expOrder {
		dst := filepath.Join(*outDir, exp)
		st, err := sweep.MergeDirs(dst, perExp[exp], warnf)
		if err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		report(dst, st)
	}
	return nil
}

// runLivelocks implements the "livelocks" subcommand: scan sweep stores for
// runs certified as zero-progress cycles and extract their bounded trace
// snippets for replay (gatherviz -trace). Each source may be a flat store or
// a gatherbench -out directory (one store per experiment subdirectory);
// stores are read without being compacted or rewritten. Without -out the
// livelocked cells are only listed.
func runLivelocks(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gatherbench livelocks", flag.ContinueOnError)
	outDir := fs.String("out", "", "directory to write the snippet files (livelock-NNN.json) into (empty: list only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srcs := fs.Args()
	if len(srcs) == 0 {
		return fmt.Errorf("livelocks: no sweep directories given (usage: gatherbench livelocks [-out traces/] sweep1/ sweep2/ ...)")
	}
	var stores []string
	for _, src := range srcs {
		if _, err := os.Stat(filepath.Join(src, "results.jsonl")); err == nil {
			stores = append(stores, src)
			continue
		}
		entries, err := os.ReadDir(src)
		if err != nil {
			return fmt.Errorf("livelocks: %w", err)
		}
		found := false
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			if _, err := os.Stat(filepath.Join(src, e.Name(), "results.jsonl")); err == nil {
				stores = append(stores, filepath.Join(src, e.Name()))
				found = true
			}
		}
		if !found {
			return fmt.Errorf("livelocks: %s holds no sweep store (no results.jsonl at the top level or one directory below)", src)
		}
	}
	sort.Strings(stores)
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("livelocks: -out: %w", err)
		}
	}
	count := 0
	for _, dir := range stores {
		st, err := sweep.OpenReadOnly(dir)
		if err != nil {
			return fmt.Errorf("livelocks: %w", err)
		}
		for _, warn := range st.Warnings() {
			obs.Warnf("livelocks", "%s", warn)
		}
		for _, key := range st.Keys() {
			stored, ok := st.Lookup(key)
			if !ok || stored.Err != nil || stored.Result.LivelockTrace == nil {
				continue
			}
			tr := stored.Result.LivelockTrace
			fmt.Fprintf(out, "%s: %s (adversary %s, n=%d, certified after %d events, %d frames)\n",
				dir, key, stored.Result.Adversary, stored.Result.N, stored.Result.Events, tr.Len())
			if *outDir != "" {
				path := filepath.Join(*outDir, fmt.Sprintf("livelock-%03d.json", count))
				f, err := os.Create(path)
				if err != nil {
					return fmt.Errorf("livelocks: %w", err)
				}
				if err := tr.Encode(f); err != nil {
					f.Close()
					return fmt.Errorf("livelocks: %w", err)
				}
				if err := f.Close(); err != nil {
					return fmt.Errorf("livelocks: %w", err)
				}
				fmt.Fprintf(out, "  wrote %s\n", path)
			}
			count++
		}
	}
	fmt.Fprintf(out, "%d livelocked cell(s)\n", count)
	return nil
}
