// Command gatherbench runs the experiment suite (E1..E12, defined in
// internal/experiments — see the package's godoc for the index) and prints
// each resulting table. Individual experiments can be selected by id; the
// multi-run experiments (E5, E7, E9, E10, E11) are executed on the parallel
// batch engine, whose results are bit-identical for any worker count, can
// checkpoint every cell result to disk so that a killed sweep resumes where
// it stopped, and can be sharded across processes (or hosts on a shared
// filesystem) that cooperatively drain one sweep directory.
//
// Example:
//
//	gatherbench -seeds 5                    # full suite, all cores
//	gatherbench -only E5,E10 -seeds 8       # selected experiments
//	gatherbench -workers 1 -timing -only E5 # sequential wall-clock baseline
//	gatherbench -out sweep/                 # checkpoint cell results to disk
//	gatherbench -out sweep/ -resume         # re-run only the missing cells
//	gatherbench -adaptive-ci 500            # grow seeds until CI is tight
//
// Sharded: run one of these per terminal/host — they split the work through
// lease files in the shared sweep directory, re-run a killed peer's cells
// once its leases expire, and each print the same byte-identical tables:
//
//	gatherbench -only E5 -out sweep/ -shard-owner "$(hostname)-$$"
//	gatherbench -only E5 -shards 2 -shard-id 0   # static split, no shared dir
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/fatgather/fatgather/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gatherbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gatherbench", flag.ContinueOnError)
	seeds := fs.Int("seeds", 3, "seeds per experiment cell (must be positive)")
	maxEvents := fs.Int("max-events", 150000, "event budget per run (must be positive)")
	workers := fs.Int("workers", 0, "worker pool size for the batch engine (0 = all cores; results are identical for any value)")
	timing := fs.Bool("timing", false, "print wall-clock per experiment")
	only := fs.String("only", "", "comma-separated experiment ids to run (default: all)")
	outDir := fs.String("out", "", "sweep directory: stream every cell result to <out>/<experiment> as workers finish")
	resume := fs.Bool("resume", false, "re-use completed cells found in -out and run only the missing ones (requires -out)")
	adaptiveCI := fs.Float64("adaptive-ci", 0, "adaptive seed scheduling: grow each cell group's seeds until the 95% CI half-width of its event count falls below this target (0 = fixed seeds)")
	adaptiveMax := fs.Int("adaptive-max-seeds", 0, "seed cap per cell group in adaptive mode (0 = default cap)")
	shardOwner := fs.String("shard-owner", "", "cooperative sharding: this worker's unique id (e.g. host+pid); cell groups are claimed via lease files in the shared -out directory, so N such processes drain one sweep together (requires -out, implies -resume)")
	leaseTTL := fs.Duration("lease-ttl", 0, "lease expiry in cooperative sharding: a worker silent this long is presumed dead and its cells re-run (0 = 30s default; requires -shard-owner)")
	shards := fs.Int("shards", 0, "static sharding: total number of shards; this process runs only cell groups hashing to its -shard-id (works without a shared -out store, but then tables cover only this shard's cells)")
	shardID := fs.Int("shard-id", 0, "static sharding: this process's shard index in [0, shards)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be positive, got %d (a non-positive value would render empty tables)", *seeds)
	}
	if *maxEvents < 1 {
		return fmt.Errorf("-max-events must be positive, got %d (a run needs a positive event budget)", *maxEvents)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", *workers)
	}
	if *resume && *outDir == "" {
		return fmt.Errorf("-resume requires -out (nothing to resume from)")
	}
	if *adaptiveCI < 0 {
		return fmt.Errorf("-adaptive-ci must be non-negative, got %g", *adaptiveCI)
	}
	if *adaptiveMax < 0 {
		return fmt.Errorf("-adaptive-max-seeds must be non-negative, got %d", *adaptiveMax)
	}
	if *adaptiveMax > 0 && *adaptiveCI == 0 {
		return fmt.Errorf("-adaptive-max-seeds requires -adaptive-ci (it only caps adaptive scheduling)")
	}
	if *shardOwner != "" && *outDir == "" {
		return fmt.Errorf("-shard-owner requires -out (leases and results live in the shared sweep directory)")
	}
	if *leaseTTL < 0 {
		return fmt.Errorf("-lease-ttl must be non-negative, got %v", *leaseTTL)
	}
	if *leaseTTL > 0 && *shardOwner == "" {
		return fmt.Errorf("-lease-ttl requires -shard-owner (it only configures cooperative sharding)")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", *shards)
	}
	if *shards > 1 && (*shardID < 0 || *shardID >= *shards) {
		return fmt.Errorf("-shard-id must be in [0, %d), got %d", *shards, *shardID)
	}
	if *shardID != 0 && *shards <= 1 {
		return fmt.Errorf("-shard-id requires -shards > 1")
	}
	if (*shardOwner != "" || *shards > 1) && *adaptiveCI > 0 {
		return fmt.Errorf("-adaptive-ci does not compose with sharding (shards could not agree on the data-dependent adaptive grid)")
	}
	if *outDir != "" {
		// Fail before running anything if the sweep directory is unusable.
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("-out: %w", err)
		}
	}
	cfg := experiments.Config{
		Seeds:            *seeds,
		MaxEvents:        *maxEvents,
		Workers:          *workers,
		SweepDir:         *outDir,
		Resume:           *resume || *shardOwner != "",
		AdaptiveCI:       *adaptiveCI,
		AdaptiveMaxSeeds: *adaptiveMax,
		ShardOwner:       *shardOwner,
		LeaseTTL:         *leaseTTL,
		Shards:           *shards,
		ShardIndex:       *shardID,
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gatherbench: "+format+"\n", args...)
		},
	}

	suite := experiments.Suite()
	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			wanted[id] = true
		}
	}
	for id := range wanted {
		known := false
		for _, e := range suite {
			if e.ID == id {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown experiment id %q", id)
		}
	}

	for _, e := range suite {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		start := time.Now()
		table := e.Run(cfg)
		if *timing {
			fmt.Fprintf(out, "-- %s: %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		fmt.Fprintln(out, table.String())
	}
	return nil
}
