// Command gatherd is the network sweep coordinator: it hands out cell-group
// claims with TTL leases, accepts streamed result records, and serves the
// merged record history back to workers for resume and adaptive
// re-evaluation — the same protocol the shared-filesystem sweep directory
// speaks, lifted onto HTTP so a fleet no longer needs a shared mount.
//
// Workers connect with gatherbench -coordinator http://host:9340; each
// experiment gets its own named store on the coordinator. The record log is
// the only ground truth: leases expire by design and adaptive state is
// recomputable, so killing and restarting gatherd mid-sweep costs at most
// duplicated (bit-identical) work — workers retry with backoff and re-append.
// With -dir, record logs persist across restarts in the same
// <dir>/<store>/results.jsonl layout a filesystem sweep uses, so gatherbench
// merge and a later FS resume understand them directly.
//
// The listener also serves the repo's standard observability surface:
// /metrics (coordination counters and gauges), /progress, /debug/pprof/, and
// /v1/status for a JSON inventory of stores, log sizes and live leases.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/fatgather/fatgather/internal/obs"
	"github.com/fatgather/fatgather/internal/sweep/netbackend"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "gatherd:", err)
		os.Exit(1)
	}
}

// run parses flags, builds the coordinator and serves until a SIGINT/SIGTERM
// (or, in tests, until stop closes). The listening line on out is the
// machine-readable readiness signal CI and tests wait for.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("gatherd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":9340", "listen address (host:port; :0 picks a free port)")
	dir := fs.String("dir", "", "persist record logs under this directory (<dir>/<store>/results.jsonl); empty keeps them in memory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv, err := netbackend.NewServer(*dir)
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	// One listener, two surfaces: the /v1 coordination API at the root, the
	// standard observability endpoints alongside it.
	obsHandler := obs.Handler()
	root := http.NewServeMux()
	root.Handle("/metrics", obsHandler)
	root.Handle("/progress", obsHandler)
	root.Handle("/debug/pprof/", obsHandler)
	root.Handle("/", srv.Handler())

	hs := &http.Server{Handler: root}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	fmt.Fprintf(out, "gatherd listening on http://%s\n", ln.Addr())
	obs.Infof("gatherd", "listening addr=%s dir=%q", ln.Addr(), *dir)

	if stop == nil {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigc)
		select {
		case err := <-errc:
			return err
		case <-sigc:
		}
	} else {
		select {
		case err := <-errc:
			return err
		case <-stop:
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		_ = hs.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
