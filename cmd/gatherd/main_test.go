package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// lineWriter hands the first full line written to it (the readiness line) to
// a channel, so the test learns the bound address of a :0 listener.
type lineWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	once  sync.Once
	linec chan string
}

func newLineWriter() *lineWriter { return &lineWriter{linec: make(chan string, 1)} }

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if s := w.buf.String(); strings.Contains(s, "\n") {
		w.once.Do(func() { w.linec <- strings.SplitN(s, "\n", 2)[0] })
	}
	return len(p), nil
}

// startGatherd runs the daemon with the given extra flags on a free port and
// returns its base URL plus a shutdown func that also propagates run errors.
func startGatherd(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	out := newLineWriter()
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- run(append([]string{"-addr", "127.0.0.1:0"}, extra...), out, stop) }()

	var line string
	select {
	case line = <-out.linec:
	case err := <-errc:
		t.Fatalf("gatherd exited before becoming ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("gatherd never printed its readiness line")
	}
	const prefix = "gatherd listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("readiness line %q does not start with %q", line, prefix)
	}
	base := strings.TrimPrefix(line, prefix)
	return base, func() {
		close(stop)
		if err := <-errc; err != nil {
			t.Errorf("gatherd shutdown: %v", err)
		}
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestGatherdServesCoordinationAndObservability boots the real daemon through
// run() and checks both surfaces on the one listener: the /v1 coordination
// API and the standard /metrics + /progress observability endpoints.
func TestGatherdServesCoordinationAndObservability(t *testing.T) {
	base, shutdown := startGatherd(t)
	defer shutdown()

	if code, body := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, base+"/v1/proto"); code != http.StatusOK || !strings.Contains(body, `"proto"`) {
		t.Fatalf("/v1/proto = %d %q", code, body)
	}
	if code, body := get(t, base+"/v1/status"); code != http.StatusOK || !strings.Contains(body, `"stores"`) {
		t.Fatalf("/v1/status = %d %q", code, body)
	}
	if code, body := get(t, base+"/metrics"); code != http.StatusOK || !strings.Contains(body, "fatgather_") {
		t.Fatalf("/metrics = %d, want the obs registry dump; got %q", code, body[:min(len(body), 200)])
	}
	if code, _ := get(t, base+"/progress"); code != http.StatusOK {
		t.Fatalf("/progress = %d", code)
	}
}

// TestGatherdPersistsRecordsAcrossRestart: with -dir, the record log written
// through one daemon incarnation is served by the next one — the layout is
// the sweep directory's own (<dir>/<store>/results.jsonl), so filesystem
// tools (gatherbench merge) understand a coordinator's data directory.
func TestGatherdPersistsRecordsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	line := `{"k":"v"}` + "\n"

	base, shutdown := startGatherd(t, "-dir", dir)
	resp, err := http.Post(base+"/v1/stores/smoke/records", "application/jsonl", strings.NewReader(line))
	if err != nil {
		t.Fatalf("POST records: %v", err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST records = %d", resp.StatusCode)
	}
	shutdown()

	onDisk, err := os.ReadFile(filepath.Join(dir, "smoke", "results.jsonl"))
	if err != nil || string(onDisk) != line {
		t.Fatalf("persisted log = (%q, %v), want %q", onDisk, err, line)
	}

	base2, shutdown2 := startGatherd(t, "-dir", dir)
	defer shutdown2()
	if code, body := get(t, base2+"/v1/stores/smoke/records?off=0"); code != http.StatusOK || body != line {
		t.Fatalf("records after restart = %d %q, want %q", code, body, line)
	}
}

// TestGatherdRejectsPositionalArgs pins the usage error.
func TestGatherdRejectsPositionalArgs(t *testing.T) {
	err := run([]string{"bogus"}, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("run with positional args = %v, want unexpected-arguments error", err)
	}
}
