module github.com/fatgather/fatgather

go 1.22

// The module deliberately has zero external dependencies so it builds
// hermetically. gatherlint (internal/lint) is written against the
// golang.org/x/tools/go/analysis API shape but ships a minimal stdlib-only
// stand-in (internal/lint/analysis); when taking a dependency becomes
// acceptable, pin golang.org/x/tools here and port per the notes in
// internal/lint/analysis/doc.go.
