module github.com/fatgather/fatgather

go 1.22
