package fatgather

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fatgather/fatgather/internal/sweep/netbackend"
)

func TestRunBatchShapeAndDeterminism(t *testing.T) {
	opts := BatchOptions{
		Workloads: []Workload{WorkloadClustered, WorkloadRing},
		Ns:        []int{3, 4},
		Seeds:     2,
		MaxEvents: 2500,
		Workers:   3,
	}
	got, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2; len(got.Cells) != want {
		t.Fatalf("expected %d cells, got %d", want, len(got.Cells))
	}
	if want := 2 * 2; len(got.Groups) != want {
		t.Fatalf("expected %d groups, got %d", want, len(got.Groups))
	}
	for _, c := range got.Cells {
		if c.Err != nil {
			t.Fatalf("cell %+v failed: %v", c.Cell, c.Err)
		}
		if c.Cell.Algorithm != AlgorithmPaper || c.Cell.Adversary != AdversaryRandomAsync {
			t.Fatalf("defaults not applied: %+v", c.Cell)
		}
		if c.Result.Events <= 0 {
			t.Fatalf("cell %+v ran no events", c.Cell)
		}
	}
	for _, g := range got.Groups {
		if g.Runs != 2 || g.Errors != 0 {
			t.Fatalf("group %+v has wrong run count", g)
		}
	}

	// The same batch with a different worker count is bit-identical.
	opts.Workers = 1
	sequential, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sequential) {
		t.Fatal("RunBatch results depend on worker count")
	}
}

// TestRunBatchCellReplaysWithRun pins the replay contract: a single batch
// cell, re-run through the public Run API with the cell's two seeds, must
// reproduce the batch result exactly.
func TestRunBatchCellReplaysWithRun(t *testing.T) {
	opts := BatchOptions{
		Workloads: []Workload{WorkloadClustered},
		Ns:        []int{4},
		Seeds:     3,
		MaxEvents: 2500,
	}
	batch, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range batch.Cells {
		replayed, err := Run(Options{
			N:             c.Cell.N,
			Workload:      c.Cell.Workload,
			Seed:          c.Cell.Seed,
			AdversarySeed: c.Cell.AdversarySeed,
			Adversary:     c.Cell.Adversary,
			Algorithm:     c.Cell.Algorithm,
			MaxEvents:     opts.MaxEvents,
		})
		if err != nil {
			t.Fatalf("replay %+v: %v", c.Cell, err)
		}
		if !reflect.DeepEqual(replayed, c.Result) {
			t.Fatalf("replay of cell %+v differs from batch result", c.Cell)
		}
	}
}

func TestRunBatchRejectsBadOptions(t *testing.T) {
	if _, err := RunBatch(BatchOptions{Adversaries: []AdversaryName{"nope"}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad adversary: got %v", err)
	}
	if _, err := RunBatch(BatchOptions{Algorithms: []AlgorithmName{"nope"}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad algorithm: got %v", err)
	}
	if _, err := RunBatch(BatchOptions{Ns: []int{0}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad n: got %v", err)
	}
	// A negative seed range could reach workload seed 0, which Run cannot
	// replay exactly; it must be rejected up front.
	if _, err := RunBatch(BatchOptions{SeedStart: -1, Seeds: 2}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("negative SeedStart: got %v", err)
	}
	if _, err := RunBatch(BatchOptions{SweepDir: "x", Coordinator: "http://localhost:9340"}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("SweepDir+Coordinator: got %v", err)
	}
	if _, err := RunBatch(BatchOptions{Coordinator: "localhost:9340"}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("malformed Coordinator URL: got %v", err)
	}
}

// TestRunBatchCoordinator runs a sharded batch through an in-process gatherd
// coordinator — no sweep directory — and checks it matches an in-memory run.
func TestRunBatchCoordinator(t *testing.T) {
	opts := BatchOptions{Ns: []int{3}, Seeds: 2, MaxEvents: 600}
	want, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := netbackend.NewServer("")
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		_ = srv.Close()
	}()

	opts.Coordinator = ts.URL
	opts.ShardOwner = "w1"
	got, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("coordinator batch ran %d cells, want %d", len(got.Cells), len(want.Cells))
	}
	for i := range got.Cells {
		if got.Cells[i].Cell != want.Cells[i].Cell || !reflect.DeepEqual(got.Cells[i].Result, want.Cells[i].Result) {
			t.Fatalf("cell %d differs via coordinator:\n%+v\nvs\n%+v", i, got.Cells[i], want.Cells[i])
		}
	}
	if got.Executed == 0 {
		t.Fatal("coordinator batch executed no cells")
	}
	// A second, resuming batch restores everything from the coordinator.
	again, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || again.Restored != len(want.Cells) {
		t.Fatalf("resumed coordinator batch executed %d / restored %d, want 0 / %d",
			again.Executed, again.Restored, len(want.Cells))
	}
}

// TestRunBatchValidatesExpandedCells pins the up-front batch validation:
// invalid per-cell knobs are rejected before any worker runs, with an error
// that names the offending cell.
func TestRunBatchValidatesExpandedCells(t *testing.T) {
	_, err := RunBatch(BatchOptions{Ns: []int{3}, Seeds: 1, MaxEvents: -5})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("negative MaxEvents: got %v", err)
	}
	if !strings.Contains(err.Error(), "cell 0 [") || !strings.Contains(err.Error(), "MaxEvents") {
		t.Fatalf("error does not name the offending cell: %v", err)
	}
	if _, err := RunBatch(BatchOptions{Ns: []int{3}, Seeds: 1, Delta: -0.1, MaxEvents: 100}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("negative Delta: got %v", err)
	}
}

// TestRunBatchResume pins the public resumable-sweep contract: a second
// RunBatch with Resume on a completed store executes zero cells and returns
// the identical BatchResult.
func TestRunBatchResume(t *testing.T) {
	dir := t.TempDir()
	opts := BatchOptions{
		Workloads: []Workload{WorkloadClustered},
		Ns:        []int{3, 4},
		Seeds:     2,
		MaxEvents: 1500,
		SweepDir:  dir,
	}
	first, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed != len(first.Cells) || first.Restored != 0 {
		t.Fatalf("fresh batch executed %d restored %d", first.Executed, first.Restored)
	}

	opts.Resume = true
	second, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 || second.Restored != len(first.Cells) {
		t.Fatalf("resumed batch executed %d restored %d, want 0/%d",
			second.Executed, second.Restored, len(first.Cells))
	}
	if !reflect.DeepEqual(first.Cells, second.Cells) || !reflect.DeepEqual(first.Groups, second.Groups) {
		t.Fatal("resumed batch differs from the fresh run")
	}
}

// TestRunBatchAdaptive pins the adaptive seed scheduling surface: a tight
// target with a small cap grows every group to the cap and reports the
// consumption in SeedsUsed.
func TestRunBatchAdaptive(t *testing.T) {
	got, err := RunBatch(BatchOptions{
		Workloads:        []Workload{WorkloadClustered},
		Ns:               []int{3},
		Seeds:            2,
		MaxEvents:        1200,
		AdaptiveCI:       1e-9,
		AdaptiveMaxSeeds: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != 1 {
		t.Fatalf("expected 1 group, got %d", len(got.Groups))
	}
	g := got.Groups[0]
	if g.SeedsUsed != 4 || g.Runs != 4 {
		t.Fatalf("adaptive group consumed %d seeds over %d runs, want 4/4", g.SeedsUsed, g.Runs)
	}
	if g.CIHalfWidth <= 0 {
		t.Fatalf("CIHalfWidth not reported: %v", g.CIHalfWidth)
	}
	if len(got.Cells) != 4 {
		t.Fatalf("adaptive replicas missing: %d cells", len(got.Cells))
	}
	// A loose target keeps the grid at its initial size.
	got, err = RunBatch(BatchOptions{
		Workloads:  []Workload{WorkloadClustered},
		Ns:         []int{3},
		Seeds:      2,
		MaxEvents:  1200,
		AdaptiveCI: 1e12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 2 || got.Groups[0].SeedsUsed != 2 {
		t.Fatalf("loose adaptive target changed the grid: %d cells, %d seeds",
			len(got.Cells), got.Groups[0].SeedsUsed)
	}
}

// TestRunBatchAdaptiveSharded pins the public cross-worker adaptive
// contract: two RunBatch workers given AdaptiveCI and ShardOwner over one
// SweepDir coordinate the data-dependent seed grid through the shared store,
// and each returns exactly what a single adaptive process produces — same
// cells, same groups, same per-group SeedsUsed — while the fleet executes
// every adaptive replica exactly once.
func TestRunBatchAdaptiveSharded(t *testing.T) {
	opts := BatchOptions{
		Workloads:        []Workload{WorkloadClustered, WorkloadRing},
		Ns:               []int{3, 4},
		Seeds:            2,
		MaxEvents:        1200,
		AdaptiveCI:       1e-9,
		AdaptiveMaxSeeds: 3,
	}
	want, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const workers = 2
	results := make([]BatchResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := opts
			sh.SweepDir = dir
			sh.ShardOwner = fmt.Sprintf("worker-%d", w)
			sh.LeaseTTL = 5 * time.Second
			results[w], errs[w] = RunBatch(sh)
		}(w)
	}
	wg.Wait()

	executed := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(results[w].Cells, want.Cells) || !reflect.DeepEqual(results[w].Groups, want.Groups) {
			t.Fatalf("worker %d adaptive result differs from the single-process batch", w)
		}
		executed += results[w].Executed
	}
	if executed != len(want.Cells) {
		t.Fatalf("fleet executed %d adaptive replicas, want exactly %d (no duplicated seeds)", executed, len(want.Cells))
	}
}

func TestRunBatchRejectsUnknownWorkload(t *testing.T) {
	_, err := RunBatch(BatchOptions{
		Workloads: []Workload{"no-such-workload"},
		Ns:        []int{3},
		Seeds:     1,
		MaxEvents: 100,
	})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad workload: got %v", err)
	}
}

// TestRunBatchShardedConcurrentWorkers pins the public sharding contract:
// two RunBatch workers cooperating over one SweepDir via leases both return
// the complete batch, identical to an unsharded run, and together execute
// every cell exactly once.
func TestRunBatchShardedConcurrentWorkers(t *testing.T) {
	opts := BatchOptions{
		Workloads: []Workload{WorkloadClustered, WorkloadRing},
		Ns:        []int{3, 4},
		Seeds:     2,
		MaxEvents: 1500,
	}
	want, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const workers = 2
	results := make([]BatchResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := opts
			sh.SweepDir = dir
			sh.ShardOwner = fmt.Sprintf("worker-%d", w)
			sh.LeaseTTL = 5 * time.Second
			results[w], errs[w] = RunBatch(sh)
		}(w)
	}
	wg.Wait()

	executed, claimed := 0, 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(results[w].Cells, want.Cells) || !reflect.DeepEqual(results[w].Groups, want.Groups) {
			t.Fatalf("worker %d result differs from the unsharded batch", w)
		}
		executed += results[w].Executed
		claimed += results[w].Claimed
		if results[w].Claimed+results[w].Skipped != 4 { // 2 workloads x 2 ns cell groups
			t.Fatalf("worker %d claimed %d + skipped %d groups, want 4 total",
				w, results[w].Claimed, results[w].Skipped)
		}
	}
	if executed != len(want.Cells) {
		t.Fatalf("fleet executed %d cells, want exactly %d", executed, len(want.Cells))
	}
	if claimed != 4 {
		t.Fatalf("fleet claimed %d groups, want exactly 4", claimed)
	}
}

// TestRunBatchStaticShardsPartition pins static mode: without a shared
// store the two shards return disjoint, complementary subsets of the batch.
func TestRunBatchStaticShardsPartition(t *testing.T) {
	opts := BatchOptions{
		Workloads: []Workload{WorkloadClustered, WorkloadRing},
		Ns:        []int{3, 4},
		Seeds:     2,
		MaxEvents: 1500,
	}
	want, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}

	seen := map[BatchCell]int{}
	total := 0
	for idx := 0; idx < 2; idx++ {
		sh := opts
		sh.Shards = 2
		sh.ShardIndex = idx
		got, err := RunBatch(sh)
		if err != nil {
			t.Fatal(err)
		}
		total += len(got.Cells)
		for _, c := range got.Cells {
			seen[c.Cell]++
		}
	}
	if total != len(want.Cells) {
		t.Fatalf("shards covered %d cells, want %d", total, len(want.Cells))
	}
	for _, c := range want.Cells {
		if seen[c.Cell] != 1 {
			t.Fatalf("cell %+v covered %d times, want exactly once", c.Cell, seen[c.Cell])
		}
	}
}

// TestRunBatchShardedRejectsBadOptions covers the sharding option validation.
func TestRunBatchShardedRejectsBadOptions(t *testing.T) {
	if _, err := RunBatch(BatchOptions{ShardOwner: "w"}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("ShardOwner without SweepDir: got %v", err)
	}
	if _, err := RunBatch(BatchOptions{Steal: true}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Steal without ShardOwner: got %v", err)
	}
	if _, err := RunBatch(BatchOptions{Shards: 2, ShardIndex: 2}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("ShardIndex out of range: got %v", err)
	}
	if _, err := RunBatch(BatchOptions{Shards: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("negative Shards: got %v", err)
	}
	if _, err := RunBatch(BatchOptions{ShardOwner: "w", SweepDir: t.TempDir(), LeaseTTL: -time.Second}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("negative LeaseTTL: got %v", err)
	}
}
