package fatgather

import (
	"errors"
	"reflect"
	"testing"
)

func TestRunBatchShapeAndDeterminism(t *testing.T) {
	opts := BatchOptions{
		Workloads: []Workload{WorkloadClustered, WorkloadRing},
		Ns:        []int{3, 4},
		Seeds:     2,
		MaxEvents: 2500,
		Workers:   3,
	}
	got, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2; len(got.Cells) != want {
		t.Fatalf("expected %d cells, got %d", want, len(got.Cells))
	}
	if want := 2 * 2; len(got.Groups) != want {
		t.Fatalf("expected %d groups, got %d", want, len(got.Groups))
	}
	for _, c := range got.Cells {
		if c.Err != nil {
			t.Fatalf("cell %+v failed: %v", c.Cell, c.Err)
		}
		if c.Cell.Algorithm != AlgorithmPaper || c.Cell.Adversary != AdversaryRandomAsync {
			t.Fatalf("defaults not applied: %+v", c.Cell)
		}
		if c.Result.Events <= 0 {
			t.Fatalf("cell %+v ran no events", c.Cell)
		}
	}
	for _, g := range got.Groups {
		if g.Runs != 2 || g.Errors != 0 {
			t.Fatalf("group %+v has wrong run count", g)
		}
	}

	// The same batch with a different worker count is bit-identical.
	opts.Workers = 1
	sequential, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sequential) {
		t.Fatal("RunBatch results depend on worker count")
	}
}

// TestRunBatchCellReplaysWithRun pins the replay contract: a single batch
// cell, re-run through the public Run API with the cell's two seeds, must
// reproduce the batch result exactly.
func TestRunBatchCellReplaysWithRun(t *testing.T) {
	opts := BatchOptions{
		Workloads: []Workload{WorkloadClustered},
		Ns:        []int{4},
		Seeds:     3,
		MaxEvents: 2500,
	}
	batch, err := RunBatch(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range batch.Cells {
		replayed, err := Run(Options{
			N:             c.Cell.N,
			Workload:      c.Cell.Workload,
			Seed:          c.Cell.Seed,
			AdversarySeed: c.Cell.AdversarySeed,
			Adversary:     c.Cell.Adversary,
			Algorithm:     c.Cell.Algorithm,
			MaxEvents:     opts.MaxEvents,
		})
		if err != nil {
			t.Fatalf("replay %+v: %v", c.Cell, err)
		}
		if !reflect.DeepEqual(replayed, c.Result) {
			t.Fatalf("replay of cell %+v differs from batch result", c.Cell)
		}
	}
}

func TestRunBatchRejectsBadOptions(t *testing.T) {
	if _, err := RunBatch(BatchOptions{Adversaries: []AdversaryName{"nope"}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad adversary: got %v", err)
	}
	if _, err := RunBatch(BatchOptions{Algorithms: []AlgorithmName{"nope"}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad algorithm: got %v", err)
	}
	if _, err := RunBatch(BatchOptions{Ns: []int{0}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad n: got %v", err)
	}
	// A negative seed range could reach workload seed 0, which Run cannot
	// replay exactly; it must be rejected up front.
	if _, err := RunBatch(BatchOptions{SeedStart: -1, Seeds: 2}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("negative SeedStart: got %v", err)
	}
}

func TestRunBatchRejectsUnknownWorkload(t *testing.T) {
	_, err := RunBatch(BatchOptions{
		Workloads: []Workload{"no-such-workload"},
		Ns:        []int{3},
		Seeds:     1,
		MaxEvents: 100,
	})
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad workload: got %v", err)
	}
}
